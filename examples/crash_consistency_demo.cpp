// Figure 2 walkthrough: dependency graphs for three puts, the staged writeback queue,
// and block-level crash states. Shows that a put only reports persistent once its
// shard data, index entry (run + metadata), and soft write pointers are all durable —
// and that after a crash, exactly the puts whose dependencies report persistent are
// readable.
//
//   $ ./build/examples/crash_consistency_demo

#include <cstdio>

#include "src/kv/shard_store.h"

using namespace ss;

namespace {

void Report(ShardStore& store, const std::vector<std::pair<ShardId, Dependency>>& puts,
            const char* when) {
  printf("%s: %zu writeback record(s) pending\n", when, store.scheduler().PendingCount());
  for (const auto& [id, dep] : puts) {
    printf("  put #%llu dependency: %s\n", static_cast<unsigned long long>(id),
           dep.IsPersistent() ? "PERSISTENT" : "pending");
  }
}

}  // namespace

int main() {
  printf("== Figure 2: dependency graphs for three puts ==\n\n");

  InMemoryDisk disk(DiskGeometry{.extent_count = 12, .pages_per_extent = 16,
                                 .page_size = 256});
  auto store = std::move(ShardStore::Open(&disk).value());

  // Three puts, as in the figure: #1 and #2 small (their chunks share an extent),
  // #3 larger (multiple chunks).
  std::vector<std::pair<ShardId, Dependency>> puts;
  puts.push_back({1, store->Put(1, Bytes(100, 0x11)).value()});
  puts.push_back({2, store->Put(2, Bytes(120, 0x22)).value()});
  puts.push_back({3, store->Put(3, Bytes(700, 0x33)).value()});

  printf("each put's dependency graph covers (paper Fig. 2):\n"
         "  (a) its shard data chunk(s)           -> data extents\n"
         "  (b) the index entry (run + metadata)  -> LSM tree extents\n"
         "  (c) soft write pointer updates        -> superblock\n\n");

  Report(*store, puts, "after the puts (nothing flushed)");

  // All three puts join the same LSM flush, like the figure's shared index flush.
  (void)store->FlushIndex();
  Report(*store, puts, "\nafter the shared LSM-tree flush (still queued)");

  printf("\npumping writebacks one at a time (the IO scheduler respects the graph):\n");
  size_t step = 0;
  while (store->scheduler().PendingCount() > 0) {
    store->PumpIo(1);
    ++step;
    size_t persistent = 0;
    for (const auto& [id, dep] : puts) {
      persistent += dep.IsPersistent() ? 1 : 0;
    }
    printf("  io %2zu issued; %zu/3 puts persistent\n", step, persistent);
  }
  Report(*store, puts, "\nafter draining");

  // Now the crash side: re-run the same workload, pump part of the queue, crash, and
  // show that recovery exposes exactly the persistent puts.
  printf("\nnote: all three puts share one LSM flush, so the shared metadata record\n"
         "is their common commit point — they become durable together at the last IO.\n");
  printf("\n== crash states ==\n");
  for (size_t prefix : {4ul, 10ul, 16ul, 17ul}) {
    InMemoryDisk disk2(DiskGeometry{.extent_count = 12, .pages_per_extent = 16,
                                    .page_size = 256});
    auto store2 = std::move(ShardStore::Open(&disk2).value());
    std::vector<std::pair<ShardId, Dependency>> puts2;
    puts2.push_back({1, store2->Put(1, Bytes(100, 0x11)).value()});
    puts2.push_back({2, store2->Put(2, Bytes(120, 0x22)).value()});
    puts2.push_back({3, store2->Put(3, Bytes(700, 0x33)).value()});
    (void)store2->FlushIndex();
    store2->PumpIo(prefix);
    store2->scheduler().CrashDropAll();  // fail-stop: unissued IO is lost
    store2.reset();

    auto recovered = std::move(ShardStore::Open(&disk2).value());
    printf("crash after %2zu IOs:", prefix);
    for (const auto& [id, dep] : puts2) {
      const bool readable = recovered->Get(id).ok();
      printf("  put#%llu %s/%s", static_cast<unsigned long long>(id),
             dep.IsPersistent() ? "persistent" : "pending",
             readable ? "readable" : "absent");
      // The persistence property: persistent => readable.
      if (dep.IsPersistent() && !readable) {
        printf("  <-- PERSISTENCE VIOLATION");
      }
    }
    printf("\n");
  }

  printf("\nevery persistent put was readable after its crash — the section 5\n"
         "persistence property, which the crash-consistency harness checks on\n"
         "millions of random histories.\n");
  return 0;
}
