// Concurrent stress: several writer/reader threads against one ShardStore while a
// maintenance thread runs flushes, compactions, and reclamation — the workload shape
// of Figure 4, on native threads (no model checker). Verifies read-after-write on every
// thread and full consistency at the end, then prints throughput.
//
//   $ ./build/examples/concurrent_stress [ops_per_thread]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/kv/shard_store.h"
#include "src/sync/sync.h"

using namespace ss;

namespace {

Bytes ValueFor(ShardId id, uint32_t version) {
  Bytes out(64 + (id * 37) % 400);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(id ^ version ^ i);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int ops_per_thread = argc > 1 ? atoi(argv[1]) : 2000;
  const int kWriters = 3;

  printf("== concurrent stress: %d writers x %d ops + maintenance thread ==\n\n",
         kWriters, ops_per_thread);

  InMemoryDisk disk(DiskGeometry{.extent_count = 64, .pages_per_extent = 64,
                                 .page_size = 256});
  ShardStoreOptions options;
  options.cache_pages = 512;
  auto opened = ShardStore::Open(&disk, options);
  if (!opened.ok()) {
    printf("open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<ShardStore> store(std::move(opened).value());

  Atomic<int> failures(0);
  Atomic<int> done_writers(0);

  const auto start = std::chrono::steady_clock::now();

  std::vector<Thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.push_back(Thread::Spawn([store, w, ops_per_thread, &failures, &done_writers] {
      Rng rng(1000 + w);
      for (int i = 0; i < ops_per_thread; ++i) {
        // Each writer owns a key range: read-after-write is checkable locally.
        const ShardId id = w * 100 + rng.Below(16);
        const uint32_t version = static_cast<uint32_t>(i);
        Bytes value = ValueFor(id, version);
        auto dep = store->Put(id, value);
        if (!dep.ok()) {
          if (dep.code() != StatusCode::kResourceExhausted) {
            failures.FetchAdd(1);
          }
          continue;
        }
        auto got = store->Get(id);
        if (!got.ok() || got.value() != value) {
          printf("read-after-write violation on shard %llu!\n",
                 static_cast<unsigned long long>(id));
          failures.FetchAdd(1);
        }
        if (rng.Chance(0.1)) {
          (void)store->Delete(id);
        }
      }
      done_writers.FetchAdd(1);
    }));
  }

  // Maintenance thread: the background tasks of section 6's harness.
  Thread maintenance = Thread::Spawn([store, &done_writers] {
    Rng rng(77);
    int rounds = 0;
    while (done_writers.Load() < kWriters) {
      (void)store->FlushIndex();
      (void)store->ReclaimAny();
      if (rng.Chance(0.2)) {
        (void)store->CompactIndex();
      }
      store->PumpIo(64);
      ++rounds;
      YieldThread();
    }
    printf("maintenance thread ran %d rounds\n", rounds);
  });

  for (Thread& t : writers) {
    t.Join();
  }
  maintenance.Join();

  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();

  if (Status s = store->FlushAll(); !s.ok()) {
    printf("final flush failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Final sweep: whatever the interleaving, the store must be self-consistent.
  auto listed = store->List();
  if (!listed.ok()) {
    printf("final list failed: %s\n", listed.status().ToString().c_str());
    return 1;
  }
  int unreadable = 0;
  for (ShardId id : listed.value()) {
    if (!store->Get(id).ok()) {
      ++unreadable;
    }
  }

  const MetricsSnapshot snap = store->metrics().Snapshot();
  const uint64_t puts = snap.counter("store.puts");
  const uint64_t gets = snap.counter("store.gets");
  const uint64_t deletes = snap.counter("store.deletes");
  printf("\nresults:\n");
  printf("  wall time               %.3f s\n", elapsed);
  printf("  puts/gets/deletes       %llu / %llu / %llu\n",
         static_cast<unsigned long long>(puts), static_cast<unsigned long long>(gets),
         static_cast<unsigned long long>(deletes));
  printf("  ops/sec                 %.0f\n",
         static_cast<double>(puts + gets + deletes) / elapsed);
  printf("  reclaim evac/drop       %llu / %llu\n",
         static_cast<unsigned long long>(snap.counter("chunk.evacuated")),
         static_cast<unsigned long long>(snap.counter("chunk.dropped")));
  printf("  live shards             %zu (unreadable: %d)\n", listed.value().size(),
         unreadable);
  printf("  read-after-write fails  %d\n", failures.Load());

  if (failures.Load() > 0 || unreadable > 0) {
    printf("\nFAILED\n");
    return 1;
  }
  printf("\nall consistent.\n");
  return 0;
}
