// Quickstart: open a ShardStore on an in-memory disk, store and fetch shards, watch a
// dependency become durable, crash, and recover.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/kv/shard_store.h"

using namespace ss;

int main() {
  printf("== ShardStore quickstart ==\n\n");

  // A disk is pure persistent state; everything volatile lives in the store.
  InMemoryDisk disk;
  auto store_or = ShardStore::Open(&disk);
  if (!store_or.ok()) {
    printf("open failed: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(store_or).value();

  // 1. Store a shard. Put returns a Dependency — the soft-updates handle that tells
  //    you when the write (data chunks + index entry + soft write pointers) is durable.
  Bytes value = BytesOf("hello, shardstore!");
  Dependency dep = store->Put(/*shard id=*/42, value).value();
  printf("put shard 42 (%zu bytes); persistent yet? %s\n", value.size(),
         dep.IsPersistent() ? "yes" : "no");

  // 2. Reads are served immediately, before durability.
  printf("get shard 42 -> \"%.*s\"\n", static_cast<int>(value.size()),
         reinterpret_cast<const char*>(store->Get(42).value().data()));

  // 3. Drive writebacks. PumpIo issues queued IO respecting the dependency graph;
  //    FlushAll drains everything (what a clean shutdown does).
  store->PumpIo(2);
  printf("after pumping 2 IOs: persistent? %s\n", dep.IsPersistent() ? "yes" : "no");
  if (Status s = store->FlushAll(); !s.ok()) {
    printf("flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("after FlushAll: persistent? %s\n", dep.IsPersistent() ? "yes" : "no");

  // 4. Store a second shard but crash before it persists.
  (void)store->Put(7, BytesOf("doomed"));
  Rng rng(2024);
  store->scheduler().Crash(rng, /*persist_bias=*/0.5);
  store.reset();  // the process "dies"

  // 5. Recovery = reopening over the same disk.
  store = std::move(ShardStore::Open(&disk).value());
  printf("\nafter crash + recovery:\n");
  auto survived = store->Get(42);
  printf("  shard 42: %s\n", survived.ok() ? "intact (was persistent)" : "LOST?!");
  auto doomed = store->Get(7);
  printf("  shard 7:  %s\n",
         doomed.ok() ? "survived (crash kept it)" : doomed.status().ToString().c_str());

  // 6. Delete and list.
  (void)store->Delete(42);
  auto listed = store->List().value();
  printf("  live shards after delete: %zu\n", listed.size());

  printf("\ndone.\n");
  return 0;
}
