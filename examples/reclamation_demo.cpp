// Figure 1 walkthrough: ShardStore's on-disk layout before and after chunk
// reclamation. Builds the paper's state (a) — an extent holding a hole left by a
// deleted shard — runs reclamation, and prints state (b): live chunks evacuated, the
// extent reset for reuse, index updated.
//
//   $ ./build/examples/reclamation_demo

#include <cstdio>

#include "src/kv/shard_store.h"

using namespace ss;

namespace {

// Prints each data extent as a row of page cells, reconstructed with the chunk
// store's scanner and the index's reverse lookups (like Figure 1's boxes).
void PrintLayout(ShardStore& store, const char* title) {
  printf("%s\n", title);
  const DiskGeometry& geo = store.extents().geometry();
  for (ExtentId e = 1; e < geo.extent_count; ++e) {
    const ExtentOwner owner = store.extents().Owner(e);
    if (owner == ExtentOwner::kFree) {
      continue;
    }
    const uint32_t wp = store.extents().WritePointer(e);
    printf("  extent %-2u [%s] wp=%-2u |", e,
           owner == ExtentOwner::kLsmMetadata ? "lsm-meta " : "chunk-data", wp);
    if (owner == ExtentOwner::kLsmMetadata) {
      printf(" %u metadata page(s) |\n", wp);
      continue;
    }
    auto scanned_or = store.chunks().ScanExtent(e);
    if (!scanned_or.ok()) {
      printf(" <scan failed: %s>\n", scanned_or.status().ToString().c_str());
      continue;
    }
    for (const auto& chunk : scanned_or.value()) {
      // Reverse lookup: shard chunk, index run chunk, or garbage.
      if (store.index().MetadataReferences(chunk.locator)) {
        printf(" LSM-run@p%u |", chunk.locator.first_page);
        continue;
      }
      auto owner_shard = store.index().FindShardReferencing(chunk.locator);
      if (owner_shard.ok() && owner_shard.value().has_value()) {
        printf(" shard 0x%llx@p%u |",
               static_cast<unsigned long long>(*owner_shard.value()),
               chunk.locator.first_page);
      } else {
        printf(" GARBAGE@p%u |", chunk.locator.first_page);
      }
    }
    printf("\n");
  }
  printf("  (disk: %llu live pages per the superblock)\n\n",
         static_cast<unsigned long long>(store.disk().LivePages()));
}

}  // namespace

int main() {
  printf("== Figure 1: chunk reclamation walkthrough ==\n\n");

  InMemoryDisk disk(DiskGeometry{.extent_count = 12, .pages_per_extent = 8,
                                 .page_size = 256});
  auto store = std::move(ShardStore::Open(&disk).value());

  // Build state (a): three shards; then delete one, leaving an unreferenced chunk
  // ("hole") on its extent.
  for (ShardId id : {0x13, 0x28, 0x75}) {
    if (!store->Put(id, Bytes(300, static_cast<uint8_t>(id))).ok()) {
      printf("put failed\n");
      return 1;
    }
  }
  (void)store->FlushIndex();
  (void)store->Delete(0x28);
  (void)store->FlushIndex();
  (void)store->FlushAll();

  PrintLayout(*store, "state (a): shard 0x28 deleted; its chunk is now a hole");

  // Run reclamation over every reclaimable extent (what the background task does).
  int reclaimed = 0;
  for (ExtentId e : store->chunks().ReclaimableExtents()) {
    if (store->ReclaimExtent(e).ok()) {
      ++reclaimed;
    }
  }
  (void)store->FlushAll();

  printf("ran reclamation on %d extent(s): live chunks evacuated, index updated,\n"
         "write pointers reset once the moves were durable\n\n",
         reclaimed);
  PrintLayout(*store, "state (b): after reclamation");

  // Everything still readable.
  for (ShardId id : {0x13, 0x75}) {
    auto got = store->Get(id);
    printf("get shard 0x%llx -> %s\n", static_cast<unsigned long long>(id),
           got.ok() ? "ok" : got.status().ToString().c_str());
  }
  auto gone = store->Get(0x28);
  printf("get shard 0x28 -> %s (deleted)\n", gone.status().ToString().c_str());

  const MetricsSnapshot snap = store->metrics().Snapshot();
  printf("\nreclaimer stats: %llu evacuated, %llu dropped, %llu reclaim passes\n",
         static_cast<unsigned long long>(snap.counter("chunk.evacuated")),
         static_cast<unsigned long long>(snap.counter("chunk.dropped")),
         static_cast<unsigned long long>(snap.counter("chunk.reclaims")));
  return 0;
}
