#include "src/pbt/pbt.h"

#include <algorithm>

namespace ss {

size_t BiasedValueSize(Rng& rng, uint32_t page_size, size_t frame_overhead, size_t max_size) {
  const size_t pick = rng.Below(100);
  if (pick < 45) {
    // Small values.
    return rng.Below(64);
  }
  if (pick < 80) {
    // Near a page boundary once framed. Two anchor families matter (the paper's
    // "read/write sizes close to the disk page size"):
    //   * k*page_size - frame_overhead: the whole frame ends exactly on a page boundary
    //     (the corner behind reclamation off-by-ones, issue #1),
    //   * k*page_size - (frame_overhead - 16): the 16-byte trailing UUID starts exactly
    //     on a page boundary, i.e. it spills onto the next page (the corner behind the
    //     UUID-collision issue #10).
    const uint64_t k = rng.Range(1, 3);
    const size_t anchor =
        rng.Chance(0.5) ? frame_overhead : (frame_overhead >= 16 ? frame_overhead - 16 : 0);
    const int64_t base = static_cast<int64_t>(k) * page_size - static_cast<int64_t>(anchor);
    const int64_t jitter = rng.RangeSigned(-3, 3);
    const int64_t size = std::max<int64_t>(0, base + jitter);
    return std::min<size_t>(static_cast<size_t>(size), max_size);
  }
  // Anything up to the maximum.
  return rng.Below(max_size + 1);
}

uint64_t BiasedKey(Rng& rng, const std::vector<uint64_t>& used, double reuse_p,
                   uint64_t fresh_bound) {
  if (!used.empty() && rng.Chance(reuse_p)) {
    return used[rng.Below(used.size())];
  }
  return rng.Below(fresh_bound);
}

}  // namespace ss
