// Property-based testing engine (paper section 4).
//
// The harness author supplies three callbacks over an operation type `Op`:
//   * gen(rng, prefix)  — draw the next operation, seeing the ops generated so far
//                         (this is where argument *biasing* lives: e.g. prefer keys
//                         that were Put earlier, sizes near the page size),
//   * run(ops)          — execute the whole sequence from a fresh system, returning a
//                         failure description or nullopt (must be deterministic),
//   * shrink_op(op)     — strictly simpler candidate replacements for one op.
//
// The runner draws `num_cases` random sequences (each from a per-case seed derived from
// the base seed, so any failure replays from two integers), and on failure minimizes:
// delta-debugging removal of operation chunks, then per-op simplification, to a local
// fixpoint — the same heuristics the paper describes ("remove an operation", "shrink an
// integer towards zero", prefer earlier enum variants; section 4.3).

#ifndef SS_PBT_PBT_H_
#define SS_PBT_PBT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/metrics.h"

namespace ss {

struct PbtConfig {
  uint64_t seed = 1;
  size_t num_cases = 200;
  size_t min_ops = 1;
  size_t max_ops = 60;
  // Cap on minimization executions (each shrink attempt re-runs the property).
  size_t max_shrink_runs = 4000;
  // Optional registry to mirror pbt.* progress counters into (cases, ops, failures,
  // shrink runs), so harness totals show up in the same snapshot as system metrics.
  MetricRegistry* metrics = nullptr;
};

template <typename Op>
struct PbtFailure {
  std::vector<Op> minimized;
  std::vector<Op> original;
  std::string message;            // failure from the minimized sequence
  std::string original_message;   // failure from the first failing sequence
  uint64_t case_seed = 0;
  size_t case_index = 0;
  size_t shrink_runs = 0;
};

template <typename Op>
struct PbtStats {
  size_t cases_run = 0;
  uint64_t ops_run = 0;
};

template <typename Op>
class PbtRunner {
 public:
  using GenFn = std::function<Op(Rng&, const std::vector<Op>&)>;
  using RunFn = std::function<std::optional<std::string>(const std::vector<Op>&)>;
  using ShrinkFn = std::function<std::vector<Op>(const Op&)>;

  PbtRunner(PbtConfig config, GenFn gen, RunFn run, ShrinkFn shrink_op = nullptr)
      : config_(config), gen_(std::move(gen)), run_(std::move(run)),
        shrink_op_(std::move(shrink_op)) {}

  // Runs all cases; returns the first failure (minimized) or nullopt.
  std::optional<PbtFailure<Op>> Run() {
    Rng seeder(config_.seed);
    for (size_t i = 0; i < config_.num_cases; ++i) {
      const uint64_t case_seed = seeder.Next();
      std::vector<Op> ops = Generate(case_seed);
      ++stats_.cases_run;
      stats_.ops_run += ops.size();
      if (config_.metrics != nullptr) {
        config_.metrics->counter("pbt.cases_run").Increment();
        config_.metrics->counter("pbt.ops_run").Increment(ops.size());
      }
      std::optional<std::string> error = run_(ops);
      if (error.has_value()) {
        PbtFailure<Op> failure;
        failure.original = ops;
        failure.original_message = *error;
        failure.case_seed = case_seed;
        failure.case_index = i;
        Minimize(ops, *error, failure);
        if (config_.metrics != nullptr) {
          config_.metrics->counter("pbt.failures").Increment();
          config_.metrics->counter("pbt.shrink_runs").Increment(failure.shrink_runs);
        }
        return failure;
      }
    }
    return std::nullopt;
  }

  // Deterministically regenerates the op sequence for a case seed.
  std::vector<Op> Generate(uint64_t case_seed) {
    Rng rng(case_seed);
    const size_t len = static_cast<size_t>(rng.Range(config_.min_ops, config_.max_ops));
    std::vector<Op> ops;
    ops.reserve(len);
    for (size_t k = 0; k < len; ++k) {
      ops.push_back(gen_(rng, ops));
    }
    return ops;
  }

  const PbtStats<Op>& stats() const { return stats_; }

 private:
  // Still failing? Counts against the shrink budget.
  bool Fails(const std::vector<Op>& ops, std::string* message, size_t* budget) {
    if (*budget == 0) {
      return false;
    }
    --*budget;
    std::optional<std::string> error = run_(ops);
    if (error.has_value()) {
      *message = *error;
      return true;
    }
    return false;
  }

  void Minimize(std::vector<Op> ops, std::string message, PbtFailure<Op>& failure) {
    size_t budget = config_.max_shrink_runs;
    bool progress = true;
    while (progress && budget > 0) {
      progress = false;
      // Phase 1: delta-debugging removal, halving chunk sizes down to single ops.
      for (size_t chunk = ops.size() / 2; chunk >= 1; chunk /= 2) {
        for (size_t start = 0; start + chunk <= ops.size();) {
          std::vector<Op> candidate;
          candidate.reserve(ops.size() - chunk);
          candidate.insert(candidate.end(), ops.begin(), ops.begin() + start);
          candidate.insert(candidate.end(), ops.begin() + start + chunk, ops.end());
          std::string msg;
          if (!candidate.empty() && Fails(candidate, &msg, &budget)) {
            ops = std::move(candidate);
            message = std::move(msg);
            progress = true;
            // Re-test the same start offset against the shorter sequence.
          } else {
            start += chunk;
          }
          if (budget == 0) {
            break;
          }
        }
        if (chunk == 1 || budget == 0) {
          break;
        }
      }
      // Phase 2: per-op simplification.
      if (shrink_op_ != nullptr) {
        for (size_t i = 0; i < ops.size() && budget > 0; ++i) {
          for (const Op& simpler : shrink_op_(ops[i])) {
            std::vector<Op> candidate = ops;
            candidate[i] = simpler;
            std::string msg;
            if (Fails(candidate, &msg, &budget)) {
              ops = std::move(candidate);
              message = std::move(msg);
              progress = true;
              break;  // re-shrink this op from its new value on the next sweep
            }
          }
        }
      }
    }
    failure.minimized = std::move(ops);
    failure.message = std::move(message);
    failure.shrink_runs = config_.max_shrink_runs - budget;
  }

  PbtConfig config_;
  GenFn gen_;
  RunFn run_;
  ShrinkFn shrink_op_;
  PbtStats<Op> stats_;
};

// --- Biasing helpers (section 4.2) ----------------------------------------------------

// Sizes biased toward "interesting" byte counts: mostly small, sometimes near multiples
// of the page size adjusted for the chunk frame overhead (the corner the paper calls
// out as a frequent source of bugs), occasionally large.
size_t BiasedValueSize(Rng& rng, uint32_t page_size, size_t frame_overhead, size_t max_size);

// Key biased toward reuse: with probability `reuse_p` picks one of `used` (if any),
// otherwise uniform in [0, fresh_bound).
uint64_t BiasedKey(Rng& rng, const std::vector<uint64_t>& used, double reuse_p,
                   uint64_t fresh_bound);

}  // namespace ss

#endif  // SS_PBT_PBT_H_
