#include "src/dep/dep_lint.h"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/sync/sync.h"

namespace ss {
namespace {

// Minimal JSON escaping for violation messages (they embed record labels only, but
// stay correct on quotes/backslashes).
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

bool DefaultEnabled() {
  const char* env = std::getenv("SS_DEPLINT");
  if (env != nullptr && env[0] != '\0') {
    return env[0] == '1';
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

std::atomic<int>& EnabledState() {
  // -1 = not yet resolved against the default; 0/1 = explicit.
  static std::atomic<int> state{-1};
  return state;
}

struct HandlerRegistry {
  // Leaf: handler bookkeeping is observability and must not become a model-checker
  // scheduling point. Unranked — fan-out happens with no scheduler lock held.
  Mutex mu{MutexAttr{"dep.lint", 0, /*leaf=*/true}};
  std::vector<std::pair<int, DepLintHandler>> handlers;
  int next_id = 1;
};

HandlerRegistry& Registry() {
  static HandlerRegistry* registry = new HandlerRegistry();
  return *registry;
}

}  // namespace

std::string_view DepLintKindName(DepLintViolation::Kind kind) {
  switch (kind) {
    case DepLintViolation::Kind::kCycle:
      return "cycle";
    case DepLintViolation::Kind::kOrphanData:
      return "orphan_data";
    case DepLintViolation::Kind::kPointerBeforeBarrier:
      return "pointer_before_barrier";
  }
  return "unknown";
}

std::string DepLintReport::Summary() const {
  if (violations.empty()) {
    return "clean";
  }
  std::ostringstream out;
  out << violations.size() << " violation(s); first: ["
      << DepLintKindName(violations.front().kind) << "] " << violations.front().message;
  return out.str();
}

std::string DepLintReport::ToString() const {
  std::ostringstream out;
  out << "dependency lint: " << violations.size() << " violation(s)";
  for (const DepLintViolation& v : violations) {
    out << "\n  [" << DepLintKindName(v.kind) << "] " << v.message;
  }
  return out.str();
}

std::string DepLintReport::ToJson() const {
  std::ostringstream out;
  out << "{\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    out << (i != 0 ? "," : "") << "{\"kind\":\"" << DepLintKindName(violations[i].kind)
        << "\",\"message\":\"" << Escape(violations[i].message) << "\"}";
  }
  out << "],\"dot\":\"" << Escape(dot) << "\"}";
  return out.str();
}

bool DepLintEnabled() {
  const int state = EnabledState().load(std::memory_order_relaxed);
  if (state >= 0) {
    return state != 0;
  }
  // Default-on applies only to native runs: a model-checked execution deterministically
  // explores the instant between a data enqueue and its covering pointer enqueue, where
  // a coverage snapshot is legitimately incomplete. Harnesses that want the lint under
  // the checker opt in explicitly (ScopedDepLint) at quiescent points.
  if (ActiveSchedHooks() != nullptr) {
    return false;
  }
  return DefaultEnabled();
}

void SetDepLintEnabled(bool enabled) {
  EnabledState().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

int AddDepLintHandler(DepLintHandler handler) {
  HandlerRegistry& registry = Registry();
  LockGuard lock(registry.mu);
  const int id = registry.next_id++;
  registry.handlers.emplace_back(id, std::move(handler));
  return id;
}

void RemoveDepLintHandler(int id) {
  HandlerRegistry& registry = Registry();
  LockGuard lock(registry.mu);
  for (auto it = registry.handlers.begin(); it != registry.handlers.end(); ++it) {
    if (it->first == id) {
      registry.handlers.erase(it);
      return;
    }
  }
}

void NotifyDepLintHandlers(const DepLintReport& report) {
  std::vector<std::pair<int, DepLintHandler>> handlers;
  {
    HandlerRegistry& registry = Registry();
    LockGuard lock(registry.mu);
    handlers = registry.handlers;
  }
  for (const auto& [id, handler] : handlers) {
    handler(report);
  }
}

}  // namespace ss
