#include "src/dep/io_scheduler.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ss {

IoScheduler::IoScheduler(Disk* disk, MetricRegistry* metrics) : disk_(disk) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  enqueued_ = &metrics->counter("io.enqueued");
  issued_ = &metrics->counter("io.issued");
  dropped_by_crash_ = &metrics->counter("io.dropped_by_crash");
  failed_io_ = &metrics->counter("io.failed");
  crashes_ = &metrics->counter("io.crashes");
  coalesced_pages_ = &metrics->counter("io.coalesced_pages");
  deplint_violations_ = &metrics->counter("io.deplint.violations");
}

uint64_t IoScheduler::DomainKey(Kind kind, ExtentId extent) const {
  // Data pages and reset markers share the extent's sequential-append domain; soft-wp
  // and ownership updates for an extent each form their own FIFO domain.
  switch (kind) {
    case Kind::kDataPage:
    case Kind::kReset:
      return uint64_t{extent} * 4 + 0;
    case Kind::kSoftWp:
      return uint64_t{extent} * 4 + 1;
    case Kind::kOwnership:
      return uint64_t{extent} * 4 + 2;
  }
  return 0;
}

Dependency IoScheduler::EnqueueLocked(Record record) {
  record.done = Dependency::MakeLeaf();
  record.seq = next_seq_++;
  Dependency done = record.done;
  queue_.push_back(std::move(record));
  enqueued_->Increment();
  return done;
}

Dependency IoScheduler::EnqueueDataPage(ExtentId extent, uint32_t page, Bytes data,
                                        std::vector<Dependency> inputs,
                                        const SpanScope& scope) {
  LockGuard lock(mu_);
  Dependency input = Dependency::AndAll(inputs);
  const uint64_t domain = DomainKey(Kind::kDataPage, extent);
  if (coalesce_depth_ > 0 && input.IsPersistent()) {
    // Merge into the newest pending data record of this extent when the page extends
    // it contiguously. The merged pages share one done leaf: they reach the disk (or
    // are dropped by a crash) as a single IO unit. Requiring the new page's input to
    // be persistent keeps the merge semantically neutral — the shared record's input
    // is unchanged, and the extra ordering it imposes on the new page is one the data
    // domain's FIFO already implies.
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
      if (it->domain != domain) {
        continue;
      }
      if (it->kind == Kind::kDataPage &&
          it->page + it->pages.size() == uint64_t{page}) {
        it->pages.push_back(std::move(data));
        coalesced_pages_->Increment();
        if (scope.active()) {
          Span span = scope.Child("io.coalesce");
        }
        return it->done;
      }
      break;  // newest record in the domain is not mergeable
    }
  }
  if (scope.active()) {
    Span span = scope.Child("io.submit");
  }
  Record r;
  r.kind = Kind::kDataPage;
  r.extent = extent;
  r.page = page;
  r.pages.push_back(std::move(data));
  r.input = std::move(input);
  r.domain = domain;
  return EnqueueLocked(std::move(r));
}

void IoScheduler::BeginCoalescing() {
  LockGuard lock(mu_);
  ++coalesce_depth_;
}

void IoScheduler::EndCoalescing() {
  LockGuard lock(mu_);
  if (coalesce_depth_ > 0) {
    --coalesce_depth_;
  }
}

Dependency IoScheduler::EnqueueSoftWp(ExtentId extent, uint32_t wp_pages,
                                      std::vector<Dependency> inputs,
                                      const SpanScope& scope) {
  LockGuard lock(mu_);
  if (scope.active()) {
    Span span = scope.Child("io.submit");
  }
  Record r;
  r.kind = Kind::kSoftWp;
  r.extent = extent;
  r.soft_wp = wp_pages;
  r.input = Dependency::AndAll(inputs);
  r.domain = DomainKey(r.kind, extent);
  return EnqueueLocked(std::move(r));
}

Dependency IoScheduler::EnqueueOwnership(ExtentId extent, ExtentOwner owner,
                                         std::vector<Dependency> inputs) {
  LockGuard lock(mu_);
  Record r;
  r.kind = Kind::kOwnership;
  r.extent = extent;
  r.owner = owner;
  r.input = Dependency::AndAll(inputs);
  r.domain = DomainKey(r.kind, extent);
  return EnqueueLocked(std::move(r));
}

Dependency IoScheduler::EnqueueReset(ExtentId extent, std::vector<Dependency> inputs) {
  LockGuard lock(mu_);
  Record r;
  r.kind = Kind::kReset;
  r.extent = extent;
  r.input = Dependency::AndAll(inputs);
  r.domain = DomainKey(r.kind, extent);
  return EnqueueLocked(std::move(r));
}

bool IoScheduler::ReadyLocked(const Record& record) const {
  if (!record.input.IsPersistent()) {
    return false;
  }
  // Must be the oldest pending record of its domain.
  for (const Record& other : queue_) {
    if (other.domain == record.domain && other.seq < record.seq) {
      return false;
    }
  }
  return true;
}

Status IoScheduler::IssueLocked(Record& record) {
  Status status = Status::Ok();
  switch (record.kind) {
    case Kind::kDataPage:
      for (size_t i = 0; i < record.pages.size(); ++i) {
        status = disk_->WritePage(record.extent, record.page + static_cast<uint32_t>(i),
                                  record.pages[i]);
        if (!status.ok()) {
          break;
        }
      }
      break;
    case Kind::kSoftWp:
      status = disk_->WriteSoftWp(record.extent, record.soft_wp);
      break;
    case Kind::kOwnership:
      status = disk_->WriteOwnership(record.extent, record.owner);
      break;
    case Kind::kReset:
      status = disk_->ResetExtentRegion(record.extent);
      break;
  }
  if (status.ok()) {
    record.done.MarkLeafPersistent();
    issued_->Increment();
  } else {
    record.done.MarkLeafFailed();
    failed_io_->Increment();
  }
  return status;
}

size_t IoScheduler::Pump(size_t max_records) {
  LockGuard lock(mu_);
  size_t issued = 0;
  while (issued < max_records) {
    bool progress = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (ReadyLocked(*it)) {
        IssueLocked(*it);  // Failed records are dropped; their deps report Failed().
        queue_.erase(it);
        ++issued;
        progress = true;
        break;
      }
    }
    if (!progress) {
      break;
    }
  }
  return issued;
}

Status IoScheduler::FlushAll(const SpanScope& scope) {
  Span span = scope.Child("io.barrier");
  if (DepLintEnabled()) {
    DepLintReport report = Lint();
    if (!report.ok()) {
      deplint_violations_->Increment(report.violations.size());
      NotifyDepLintHandlers(report);
      span.set_status(StatusCode::kInternal);
      return Status::Internal("dependency lint: " + report.Summary());
    }
  }
  // Bound iterations defensively; every Pump(1) that makes progress shrinks the queue.
  while (true) {
    {
      LockGuard lock(mu_);
      if (queue_.empty()) {
        return Status::Ok();
      }
    }
    if (Pump(1) == 0) {
      span.set_status(StatusCode::kInternal);
      return Status::Internal("io scheduler stuck: " + DescribeStuck());
    }
  }
}

void IoScheduler::Crash(Rng& rng, double persist_bias) {
  LockGuard lock(mu_);
  crashes_->Increment();
  std::set<uint64_t> stopped_domains;
  // Repeatedly find the first record that could legally be the next to reach the disk;
  // flip a coin to decide whether the crash happened before or after that IO.
  while (true) {
    Record* candidate = nullptr;
    for (Record& r : queue_) {
      if (stopped_domains.count(r.domain) != 0) {
        continue;
      }
      if (ReadyLocked(r)) {
        candidate = &r;
        break;
      }
    }
    if (candidate == nullptr) {
      break;
    }
    if (rng.Chance(persist_bias)) {
      IssueLocked(*candidate);
      // Erase the issued record.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (&*it == candidate) {
          queue_.erase(it);
          break;
        }
      }
    } else {
      // This IO (and everything behind it in its domain) never reached the disk.
      stopped_domains.insert(candidate->domain);
    }
  }
  dropped_by_crash_->Increment(queue_.size());
  // Dropped records leave their leaves unpersisted forever.
  queue_.clear();
}

void IoScheduler::CrashScripted(const std::vector<bool>& plan, size_t* decisions_used) {
  LockGuard lock(mu_);
  crashes_->Increment();
  std::set<uint64_t> stopped_domains;
  size_t decision = 0;
  while (true) {
    Record* candidate = nullptr;
    for (Record& r : queue_) {
      if (stopped_domains.count(r.domain) != 0) {
        continue;
      }
      if (ReadyLocked(r)) {
        candidate = &r;
        break;
      }
    }
    if (candidate == nullptr) {
      break;
    }
    const bool persist = decision < plan.size() && plan[decision];
    ++decision;
    if (persist) {
      IssueLocked(*candidate);
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (&*it == candidate) {
          queue_.erase(it);
          break;
        }
      }
    } else {
      stopped_domains.insert(candidate->domain);
    }
  }
  if (decisions_used != nullptr) {
    *decisions_used = decision;
  }
  dropped_by_crash_->Increment(queue_.size());
  queue_.clear();
}

void IoScheduler::CrashDropAll() {
  LockGuard lock(mu_);
  crashes_->Increment();
  dropped_by_crash_->Increment(queue_.size());
  queue_.clear();
}

size_t IoScheduler::PendingCount() const {
  LockGuard lock(mu_);
  return queue_.size();
}

std::string IoScheduler::LabelLocked(const Record& r) const {
  std::ostringstream label;
  switch (r.kind) {
    case Kind::kDataPage:
      label << "data ext=" << r.extent << " page=" << r.page << "+" << r.pages.size();
      break;
    case Kind::kSoftWp:
      label << "softwp ext=" << r.extent << " wp=" << r.soft_wp;
      break;
    case Kind::kOwnership:
      label << "own ext=" << r.extent;
      break;
    case Kind::kReset:
      label << "reset ext=" << r.extent;
      break;
  }
  label << " seq=" << r.seq;
  return label.str();
}

std::string IoScheduler::PendingDotLocked(std::string_view name_prefix) const {
  std::vector<std::pair<std::string, Dependency>> roots;
  for (const Record& r : queue_) {
    roots.emplace_back(std::string(name_prefix) + LabelLocked(r), r.input);
  }
  return Dependency::GraphDot(roots);
}

std::string IoScheduler::PendingDot(std::string_view name_prefix) const {
  LockGuard lock(mu_);
  return PendingDotLocked(name_prefix);
}

DepLintReport IoScheduler::Lint() const {
  DepLintReport report;
  LockGuard lock(mu_);
  const size_t n = queue_.size();
  if (n == 0) {
    return report;
  }

  // Record graph: edge i -> j means record i may not be issued before record j.
  // Dependency edges come from j's done leaf appearing in i's input closure; FIFO
  // edges from domain order. Soft-updates reasoning must use *this* graph — a
  // pointer update is ordered after a data page just as firmly by the softwp
  // domain's FIFO as by an explicit dependency.
  std::map<const void*, size_t> done_owner;
  for (size_t i = 0; i < n; ++i) {
    done_owner[queue_[i].done.raw()] = i;
  }
  std::vector<std::vector<size_t>> edges(n);
  std::vector<bool> input_unknown(n, false);  // input closure has an unresolved promise
  for (size_t i = 0; i < n; ++i) {
    std::vector<const void*> nodes;
    queue_[i].input.CollectNodes(nodes);
    for (const void* node : nodes) {
      auto it = done_owner.find(node);
      if (it != done_owner.end() && it->second != i) {
        edges[i].push_back(it->second);
      }
    }
    input_unknown[i] = queue_[i].input.HasUnresolvedPromise();
    for (size_t j = 0; j < n; ++j) {
      if (queue_[j].domain == queue_[i].domain && queue_[j].seq < queue_[i].seq) {
        edges[i].push_back(j);
      }
    }
  }

  // --- 1. Acyclicity -------------------------------------------------------------------
  // Colored DFS; on a back edge, the cycle is the stack suffix from the target.
  std::vector<uint8_t> color(n, 0);  // 0=white 1=on stack 2=done
  std::vector<size_t> stack;
  std::vector<size_t> cycle;
  std::function<bool(size_t)> dfs = [&](size_t v) {
    color[v] = 1;
    stack.push_back(v);
    for (size_t next : edges[v]) {
      if (color[next] == 1) {
        auto it = std::find(stack.begin(), stack.end(), next);
        cycle.assign(it, stack.end());
        return true;
      }
      if (color[next] == 0 && dfs(next)) {
        return true;
      }
    }
    color[v] = 2;
    stack.pop_back();
    return false;
  };
  for (size_t i = 0; i < n && cycle.empty(); ++i) {
    if (color[i] == 0) {
      stack.clear();
      dfs(i);
    }
  }
  if (!cycle.empty()) {
    std::ostringstream msg;
    msg << "record cycle (queue can never drain):";
    for (size_t idx : cycle) {
      msg << " [" << LabelLocked(queue_[idx]) << "] ->";
    }
    msg << " [" << LabelLocked(queue_[cycle.front()]) << "]";
    report.violations.push_back({DepLintViolation::Kind::kCycle, msg.str()});
  }

  // --- Per-extent epoch structure ------------------------------------------------------
  // A pending reset starts a new epoch for its extent: data enqueued before it is
  // deliberately being discarded (exempt from coverage), and pointer/data pairs are
  // only comparable within one epoch.
  std::set<ExtentId> extents;
  for (const Record& r : queue_) {
    extents.insert(r.extent);
  }
  auto epoch_of = [this](ExtentId extent, uint64_t seq) {
    size_t epoch = 0;
    for (const Record& r : queue_) {
      if (r.kind == Kind::kReset && r.extent == extent && r.seq < seq) {
        ++epoch;
      }
    }
    return epoch;
  };

  for (ExtentId extent : extents) {
    size_t last_epoch = 0;
    const Record* final_wp = nullptr;  // pending soft-wp with the highest seq
    for (const Record& r : queue_) {
      if (r.extent != extent) {
        continue;
      }
      if (r.kind == Kind::kReset) {
        ++last_epoch;
      }
      if (r.kind == Kind::kSoftWp) {
        final_wp = &r;  // queue_ is seq-ordered, so the last hit wins
      }
    }
    // The coverage every pointer update for this extent will have produced once the
    // queue drains: the last pending soft-wp (later FIFO entries overwrite earlier
    // ones), or the pointer already on disk when none is pending.
    const uint32_t final_cov =
        final_wp != nullptr ? final_wp->soft_wp : disk_->ReadSoftWp(extent);

    // --- 2. No orphan durable writes ---------------------------------------------------
    for (const Record& r : queue_) {
      if (r.kind != Kind::kDataPage || r.extent != extent) {
        continue;
      }
      if (epoch_of(extent, r.seq) != last_epoch) {
        continue;  // superseded: a pending reset discards this epoch's data
      }
      const uint64_t end_page = uint64_t{r.page} + r.pages.size();
      if (end_page > final_cov) {
        std::ostringstream msg;
        msg << "[" << LabelLocked(r) << "] persists pages the final write pointer ("
            << final_cov << ") never exposes: orphan durable write";
        report.violations.push_back({DepLintViolation::Kind::kOrphanData, msg.str()});
      }
    }

    // --- 3. Barrier-before-pointer -----------------------------------------------------
    // Every pending pointer update must be ordered (record-graph path) after every
    // same-epoch pending data page it exposes.
    for (size_t wi = 0; wi < n; ++wi) {
      const Record& w = queue_[wi];
      if (w.kind != Kind::kSoftWp || w.extent != extent) {
        continue;
      }
      const size_t w_epoch = epoch_of(extent, w.seq);
      // Reachability from w over the record graph.
      std::vector<bool> reach(n, false);
      std::vector<size_t> work = {wi};
      bool unknown = input_unknown[wi];
      while (!work.empty()) {
        const size_t v = work.back();
        work.pop_back();
        if (reach[v]) {
          continue;
        }
        reach[v] = true;
        unknown = unknown || input_unknown[v];
        for (size_t next : edges[v]) {
          work.push_back(next);
        }
      }
      for (size_t ri = 0; ri < n; ++ri) {
        const Record& r = queue_[ri];
        if (r.kind != Kind::kDataPage || r.extent != extent || r.seq >= w.seq ||
            r.page >= w.soft_wp || epoch_of(extent, r.seq) != w_epoch) {
          continue;
        }
        if (reach[ri]) {
          continue;
        }
        if (unknown) {
          continue;  // an unresolved promise may still supply the ordering
        }
        std::ostringstream msg;
        msg << "[" << LabelLocked(w) << "] can reach the disk before ["
            << LabelLocked(r) << "] it exposes: pointer before barrier";
        report.violations.push_back(
            {DepLintViolation::Kind::kPointerBeforeBarrier, msg.str()});
      }
    }
  }

  if (!report.ok()) {
    report.dot = PendingDotLocked("");
  }
  return report;
}

std::string IoScheduler::DescribeStuck() const {
  LockGuard lock(mu_);
  std::ostringstream out;
  out << queue_.size() << " pending record(s); head blocked records:";
  size_t shown = 0;
  for (const Record& r : queue_) {
    if (ReadyLocked(r)) {
      continue;
    }
    out << " [extent=" << r.extent << " kind=" << static_cast<int>(r.kind)
        << " input_persistent=" << (r.input.IsPersistent() ? "y" : "n") << "]";
    if (++shown == 4) {
      break;
    }
  }
  return out.str();
}

}  // namespace ss
