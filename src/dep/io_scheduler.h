// IO scheduler: orders writebacks to the disk according to the dependency graph.
//
// All persistence flows through here. Layers above enqueue writeback records; the
// scheduler issues a record to the Disk backend only when
//   (a) every input dependency of the record is already persistent, and
//   (b) all earlier records in the record's *sequence domain* have been issued.
// Sequence domains capture orderings the medium itself enforces: appends within one
// extent are sequential, and superblock updates for one extent apply in submission
// order (so soft write pointers move monotonically between resets).
//
// Crash simulation (paper section 5): Crash() applies a random dependency-closed,
// domain-FIFO-closed subset of the pending records to the disk and discards the rest —
// exactly the set of block-level crash states the dependency contract allows. Records
// dropped by a crash leave their dependency leaves unpersisted forever, which is what
// the persistence checker polls after recovery.

#ifndef SS_DEP_IO_SCHEDULER_H_
#define SS_DEP_IO_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dep/dep_lint.h"
#include "src/dep/dependency.h"
#include "src/disk/disk.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sync/sync.h"

namespace ss {

class IoScheduler {
 public:
  // Metrics land in `metrics` when provided; otherwise the scheduler owns a private
  // registry so direct construction keeps working in tests.
  explicit IoScheduler(Disk* disk, MetricRegistry* metrics = nullptr);

  // --- Enqueue (called by ExtentManager) ----------------------------------------------
  // Each call returns the leaf dependency of the new record. `scope`, when active,
  // receives an "io.submit" child span per new record ("io.coalesce" when the page
  // merged into an existing record instead).
  Dependency EnqueueDataPage(ExtentId extent, uint32_t page, Bytes data,
                             std::vector<Dependency> inputs, const SpanScope& scope = {});
  Dependency EnqueueSoftWp(ExtentId extent, uint32_t wp_pages, std::vector<Dependency> inputs,
                           const SpanScope& scope = {});
  Dependency EnqueueOwnership(ExtentId extent, ExtentOwner owner,
                              std::vector<Dependency> inputs);
  // A reset marker ordered within the extent's data domain. Issuing it has no direct
  // disk effect (the paired EnqueueSoftWp(extent, 0, ...) makes old data unreachable),
  // but FIFO ordering guarantees no post-reset append is issued before it.
  Dependency EnqueueReset(ExtentId extent, std::vector<Dependency> inputs);

  // --- Coalescing window (group commit) ------------------------------------------------
  // While at least one window is open, EnqueueDataPage merges a page into the newest
  // pending data record of the same extent when the pages are contiguous and the new
  // page's input is already persistent — adjacent appends from one batch become a
  // single multi-page IO unit (issued, or dropped by a crash, atomically). Merging is
  // restricted to persistent-input pages so the shared record never gains an input
  // that could cycle back through its own done leaf. Windows nest; ShardStore's
  // ApplyBatch brackets its staging phase with one.
  void BeginCoalescing();
  void EndCoalescing();

  // --- Issue ---------------------------------------------------------------------------
  // Issues up to `max_records` ready records in FIFO-scan order; returns how many were
  // issued. Records whose disk write fails are marked failed and dropped.
  size_t Pump(size_t max_records);

  // Pump until the queue drains. Fails with kInternal if no progress is possible while
  // records remain (an unresolved promise or dependency cycle — a forward-progress
  // violation), or with kIoError if a record failed. `scope`, when active, receives one
  // "io.barrier" child span covering the drain. When the dependency linter is enabled
  // (see dep_lint.h) the pending graph is linted first; a violation fails the flush
  // with kInternal after fanning the report out to the registered lint handlers and
  // bumping io.deplint.violations.
  Status FlushAll(const SpanScope& scope = {});

  // Soft-updates dependency lint over the pending queue (see dep_lint.h for the three
  // invariants). Read-only; callable at any point, not just barriers.
  DepLintReport Lint() const;

  // --- Crash ---------------------------------------------------------------------------
  // Simulates a fail-stop crash: persists a random allowed subset of pending records
  // (each candidate record survives with probability `persist_bias`), drops the rest,
  // and empties the queue. Deterministic given `rng` state.
  void Crash(Rng& rng, double persist_bias);

  // Convenience for tests: crash persisting nothing / everything eligible.
  void CrashDropAll();

  // Deterministic crash driven by a decision script instead of coin flips: decision i
  // persists (true) or cuts the domain of (false) the i-th candidate record, in the
  // same candidate order Crash() uses; an exhausted script drops everything remaining.
  // `decisions_used` (optional) reports how many decisions the crash consumed — the
  // branching factor an exhaustive enumerator needs (paper section 5's block-level
  // crash-state enumeration, in the style of BOB / CrashMonkey).
  void CrashScripted(const std::vector<bool>& plan, size_t* decisions_used = nullptr);

  size_t PendingCount() const;

  // Description of why the queue is stuck (for forward-progress diagnostics).
  std::string DescribeStuck() const;

  // Graphviz digraph of the pending queue's dependency structure: one labelled box per
  // unissued record pointing at the input dependency it is waiting on. `name_prefix`
  // (e.g. "disk0 ") distinguishes schedulers when several graphs are merged into one
  // flight-recorder artifact.
  std::string PendingDot(std::string_view name_prefix = "") const;

  // The io.* counters live in the registry passed at construction (or the private
  // one): read them via MetricRegistry::Snapshot().
  const MetricRegistry& metrics() const { return *metrics_; }

 private:
  enum class Kind : uint8_t { kDataPage, kSoftWp, kOwnership, kReset };

  struct Record {
    Kind kind;
    ExtentId extent;
    uint32_t page = 0;          // kDataPage: first page of the IO unit
    std::vector<Bytes> pages;   // kDataPage: one entry per page (coalescing grows this)
    uint32_t soft_wp = 0;   // kSoftWp
    ExtentOwner owner = ExtentOwner::kFree;  // kOwnership
    Dependency input;       // conjunction of the caller's input dependencies
    Dependency done;        // leaf marked persistent on issue
    uint64_t domain = 0;    // sequence domain key
    uint64_t seq = 0;       // global enqueue order (FIFO position within domain)
  };

  uint64_t DomainKey(Kind kind, ExtentId extent) const;
  // Human-readable record label shared by PendingDot and the lint messages.
  std::string LabelLocked(const Record& record) const;
  std::string PendingDotLocked(std::string_view name_prefix) const;
  Dependency EnqueueLocked(Record record);
  // True if `record` may be issued now: inputs persistent and it is the oldest
  // unissued record of its domain within `queue`.
  bool ReadyLocked(const Record& record) const;
  // Applies the record's effect to the disk. Returns the disk status.
  Status IssueLocked(Record& record);

  mutable Mutex mu_{MutexAttr{"io.scheduler", lockrank::kIo}};
  Disk* disk_;
  std::deque<Record> queue_;
  uint64_t next_seq_ = 0;
  uint32_t coalesce_depth_ = 0;
  std::unique_ptr<MetricRegistry> owned_metrics_;
  MetricRegistry* metrics_ = nullptr;  // the registry in use (owned or caller's)
  Counter* enqueued_;
  Counter* issued_;
  Counter* dropped_by_crash_;
  Counter* failed_io_;
  Counter* crashes_;
  Counter* coalesced_pages_;
  Counter* deplint_violations_;
};

}  // namespace ss

#endif  // SS_DEP_IO_SCHEDULER_H_
