// Crash-consistency dependencies (paper section 2.2).
//
// Every mutating operation returns a Dependency. The contract is exactly the paper's:
// a write is not issued to disk until its input dependencies have persisted, and a
// Dependency reports IsPersistent() only once the writes it stands for are durable.
// Dependencies compose with And() to build the dependency graphs of Figure 2.
//
// Three node flavours:
//   * leaf     — tied to one writeback record in the IoScheduler; the scheduler marks it
//                persistent when the record is issued to the disk,
//   * AND      — persistent when all inputs are persistent,
//   * promise  — a forward reference (e.g. "this LSM entry will be covered by some
//                future metadata flush"); starts unresolved and is later linked to the
//                dependency that fulfils it.
//
// Persistence flags are monotonic (false -> true) and may be polled from any thread.

#ifndef SS_DEP_DEPENDENCY_H_
#define SS_DEP_DEPENDENCY_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ss {

namespace dep_internal {

struct DepNode {
  // Monotonic "this node's own write is durable" flag (leaves) or cached AND result.
  std::atomic<bool> persistent{false};
  // The write this node stands for failed permanently (injected IO error); the node can
  // never become persistent.
  std::atomic<bool> failed{false};
  // Promise nodes start unlinked; IsPersistent is false until linked.
  std::atomic<bool> unresolved_promise{false};
  // Guarded by the owning scheduler / index: inputs are only mutated while the node is
  // unresolved or at construction.
  std::vector<std::shared_ptr<DepNode>> inputs;
};

bool NodePersistent(DepNode* node);

}  // namespace dep_internal

class Dependency {
 public:
  // The trivially-persistent dependency ("no ordering requirement").
  Dependency() = default;

  // True once every write this dependency stands for is durable on disk.
  bool IsPersistent() const;

  // True if some underlying write failed permanently; the dependency will never
  // become persistent.
  bool Failed() const;

  // The conjunction of this dependency and `other` (paper: dep1.and(dep2)).
  Dependency And(const Dependency& other) const;

  // --- Construction, used by the scheduler and the index ------------------------------

  static Dependency MakeLeaf();
  static Dependency MakePromise();
  // Combine an arbitrary set (empty set -> trivially persistent).
  static Dependency AndAll(const std::vector<Dependency>& deps);

  // Leaf control (scheduler only).
  void MarkLeafPersistent();
  void MarkLeafFailed();

  // Resolve a promise to follow `target`. No-op on non-promise nodes.
  void ResolvePromise(const Dependency& target);

  // Identity of the underlying node, for diagnostics.
  const void* raw() const { return node_.get(); }

  // Appends the identities of every node reachable from this dependency (including
  // itself) to `out`. Diagnostics only; duplicates are possible on shared subgraphs.
  void CollectNodes(std::vector<const void*>& out) const;

  // True if any reachable node is a still-unresolved promise — the dependency's
  // requirements are not fully known yet (the dependency linter skips reachability
  // conclusions it cannot yet prove).
  bool HasUnresolvedPromise() const;

  // Graphviz digraph of the union of the given labelled dependency graphs, for
  // flight-recorder artifacts. Roots render as labelled boxes pointing at their node;
  // interior nodes are coloured by state (persistent=green, failed=red, unresolved
  // promise=orange, pending=gray). Edges point from a node to its inputs.
  static std::string GraphDot(const std::vector<std::pair<std::string, Dependency>>& roots);

 private:
  explicit Dependency(std::shared_ptr<dep_internal::DepNode> node) : node_(std::move(node)) {}

  std::shared_ptr<dep_internal::DepNode> node_;
};

}  // namespace ss

#endif  // SS_DEP_DEPENDENCY_H_
