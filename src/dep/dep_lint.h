// Soft-updates dependency linter (static-analysis pass over the live write graph).
//
// The IoScheduler's pending queue *is* the soft-updates dependency structure: records
// carry input dependencies (writes they must follow) and done leaves (writes others
// may wait on), plus per-domain FIFO ordering the medium enforces. The linter walks
// that structure at every flush/barrier and checks the three invariants the
// crash-consistency argument rests on:
//
//   1. Acyclicity — the record graph (dependency edges plus domain-FIFO edges) has no
//      cycle; a cycle means the queue can never drain (forward-progress violation the
//      pump would otherwise only discover by getting stuck).
//   2. No orphan durable writes — every pending data-page write in an extent's
//      current reset epoch is covered by the epoch's final soft write pointer (the
//      latest pending soft-wp record, or the on-disk pointer when none is pending).
//      An uncovered write would persist bytes no pointer ever makes reachable:
//      leaked-on-crash storage, exactly the class seeded bug #7 plants.
//   3. Barrier-before-pointer — every pending soft-wp record that exposes a page has
//      a dependency path (record graph, so FIFO edges count) to that page's data
//      record: the pointer can never reach the disk before the data it points at.
//
// Violations render the pending queue as Graphviz DOT (flight-recorder artifact) and,
// when the lint runs from FlushAll, fail the flush with kInternal. The pass is on by
// default in debug (!NDEBUG) builds and in harnesses that opt in via ScopedDepLint
// (or SS_DEPLINT=1 in the environment); release builds skip it unless asked.

#ifndef SS_DEP_DEP_LINT_H_
#define SS_DEP_DEP_LINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ss {

struct DepLintViolation {
  enum class Kind : uint8_t { kCycle, kOrphanData, kPointerBeforeBarrier };
  Kind kind = Kind::kCycle;
  std::string message;
};

std::string_view DepLintKindName(DepLintViolation::Kind kind);

struct DepLintReport {
  std::vector<DepLintViolation> violations;
  // DOT rendering of the pending dependency graph at lint time (empty when clean).
  std::string dot;

  bool ok() const { return violations.empty(); }
  // One line: count + first violation.
  std::string Summary() const;
  std::string ToString() const;
  std::string ToJson() const;
};

// Global switch. Defaults to enabled in !NDEBUG builds or when SS_DEPLINT=1 is set
// in the environment; disabled otherwise. The default never applies under an active
// model-checker run (a mid-append coverage snapshot is legitimately incomplete at
// some explored scheduling points) — use ScopedDepLint to opt in there explicitly.
bool DepLintEnabled();
void SetDepLintEnabled(bool enabled);

// RAII enable/disable for harness scopes.
class ScopedDepLint {
 public:
  explicit ScopedDepLint(bool enabled = true) : prev_(DepLintEnabled()) {
    SetDepLintEnabled(enabled);
  }
  ~ScopedDepLint() { SetDepLintEnabled(prev_); }
  ScopedDepLint(const ScopedDepLint&) = delete;
  ScopedDepLint& operator=(const ScopedDepLint&) = delete;

 private:
  bool prev_;
};

// Handlers run synchronously for each failing report (flight recorder, test hooks).
using DepLintHandler = std::function<void(const DepLintReport&)>;
int AddDepLintHandler(DepLintHandler handler);
void RemoveDepLintHandler(int id);
// Fans `report` out to every registered handler (called by IoScheduler::FlushAll).
void NotifyDepLintHandlers(const DepLintReport& report);

class ScopedDepLintHandler {
 public:
  explicit ScopedDepLintHandler(DepLintHandler handler)
      : id_(AddDepLintHandler(std::move(handler))) {}
  ~ScopedDepLintHandler() { RemoveDepLintHandler(id_); }
  ScopedDepLintHandler(const ScopedDepLintHandler&) = delete;
  ScopedDepLintHandler& operator=(const ScopedDepLintHandler&) = delete;

 private:
  int id_;
};

}  // namespace ss

#endif  // SS_DEP_DEP_LINT_H_
