#include "src/dep/dependency.h"

#include <set>
#include <sstream>

namespace ss {

namespace dep_internal {

bool NodePersistent(DepNode* node) {
  if (node == nullptr) {
    return true;
  }
  if (node->persistent.load(std::memory_order_acquire)) {
    return true;
  }
  if (node->failed.load(std::memory_order_acquire)) {
    return false;
  }
  if (node->unresolved_promise.load(std::memory_order_acquire)) {
    return false;
  }
  if (node->inputs.empty()) {
    // A leaf that has not been issued yet.
    return false;
  }
  for (const auto& input : node->inputs) {
    if (!NodePersistent(input.get())) {
      return false;
    }
  }
  // Cache the result; persistence is monotonic.
  node->persistent.store(true, std::memory_order_release);
  return true;
}

namespace {

bool NodeFailed(DepNode* node) {
  if (node == nullptr) {
    return false;
  }
  if (node->failed.load(std::memory_order_acquire)) {
    return true;
  }
  if (node->persistent.load(std::memory_order_acquire)) {
    return false;
  }
  for (const auto& input : node->inputs) {
    if (NodeFailed(input.get())) {
      return true;
    }
  }
  return false;
}

}  // namespace

}  // namespace dep_internal

bool Dependency::IsPersistent() const { return dep_internal::NodePersistent(node_.get()); }

bool Dependency::Failed() const { return dep_internal::NodeFailed(node_.get()); }

Dependency Dependency::And(const Dependency& other) const {
  if (node_ == nullptr) {
    return other;
  }
  if (other.node_ == nullptr) {
    return *this;
  }
  auto node = std::make_shared<dep_internal::DepNode>();
  node->inputs = {node_, other.node_};
  return Dependency(std::move(node));
}

Dependency Dependency::MakeLeaf() {
  return Dependency(std::make_shared<dep_internal::DepNode>());
}

Dependency Dependency::MakePromise() {
  auto node = std::make_shared<dep_internal::DepNode>();
  node->unresolved_promise.store(true, std::memory_order_release);
  return Dependency(std::move(node));
}

Dependency Dependency::AndAll(const std::vector<Dependency>& deps) {
  Dependency out;
  for (const Dependency& d : deps) {
    out = out.And(d);
  }
  return out;
}

void Dependency::MarkLeafPersistent() {
  if (node_ != nullptr) {
    node_->persistent.store(true, std::memory_order_release);
  }
}

void Dependency::MarkLeafFailed() {
  if (node_ != nullptr) {
    node_->failed.store(true, std::memory_order_release);
  }
}

void Dependency::CollectNodes(std::vector<const void*>& out) const {
  std::set<const dep_internal::DepNode*> seen;
  std::vector<const dep_internal::DepNode*> stack;
  if (node_ != nullptr) {
    stack.push_back(node_.get());
  }
  while (!stack.empty()) {
    const dep_internal::DepNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) {
      continue;
    }
    out.push_back(node);
    for (const auto& input : node->inputs) {
      stack.push_back(input.get());
    }
  }
}

bool Dependency::HasUnresolvedPromise() const {
  std::set<const dep_internal::DepNode*> seen;
  std::vector<const dep_internal::DepNode*> stack;
  if (node_ != nullptr) {
    stack.push_back(node_.get());
  }
  while (!stack.empty()) {
    const dep_internal::DepNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) {
      continue;
    }
    if (node->unresolved_promise.load(std::memory_order_acquire)) {
      return true;
    }
    for (const auto& input : node->inputs) {
      stack.push_back(input.get());
    }
  }
  return false;
}

std::string Dependency::GraphDot(
    const std::vector<std::pair<std::string, Dependency>>& roots) {
  std::ostringstream out;
  out << "digraph deps {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  std::set<const dep_internal::DepNode*> seen;
  std::vector<const dep_internal::DepNode*> stack;
  size_t label_index = 0;
  for (const auto& [label, dep] : roots) {
    const auto* node = static_cast<const dep_internal::DepNode*>(dep.raw());
    out << "  root" << label_index << " [shape=box,label=\"" << label << "\"];\n";
    if (node != nullptr) {
      out << "  root" << label_index << " -> n" << node << ";\n";
      stack.push_back(node);
    }
    ++label_index;
  }
  while (!stack.empty()) {
    const dep_internal::DepNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) {
      continue;
    }
    const char* color = "gray";
    const char* state = "pending";
    if (node->failed.load(std::memory_order_acquire)) {
      color = "red";
      state = "failed";
    } else if (node->persistent.load(std::memory_order_acquire)) {
      color = "green";
      state = "persistent";
    } else if (node->unresolved_promise.load(std::memory_order_acquire)) {
      color = "orange";
      state = "promise";
    }
    const char* kind = node->inputs.empty() ? "leaf" : "and";
    out << "  n" << node << " [color=" << color << ",label=\"" << kind << "\\n" << state
        << "\"];\n";
    for (const auto& input : node->inputs) {
      out << "  n" << node << " -> n" << input.get() << ";\n";
      stack.push_back(input.get());
    }
  }
  out << "}\n";
  return out.str();
}

void Dependency::ResolvePromise(const Dependency& target) {
  if (node_ == nullptr || !node_->unresolved_promise.load(std::memory_order_acquire)) {
    return;
  }
  if (target.node_ != nullptr) {
    node_->inputs.push_back(target.node_);
  } else {
    // Resolved against "no requirement": the promise is immediately persistent.
    node_->persistent.store(true, std::memory_order_release);
  }
  node_->unresolved_promise.store(false, std::memory_order_release);
}

}  // namespace ss
