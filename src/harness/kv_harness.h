// Property-based conformance + crash-consistency harness for the full ShardStore stack
// (paper sections 4 and 5; the whole-store analogue of Figure 3).
//
// A test case is a sequence of operations drawn from the alphabet below. Each API
// operation is applied to both the implementation and the KvStoreModel and the results
// compared; background operations (flush, compaction, reclamation, IO pumping) are
// model no-ops that must not change the observable mapping. DirtyReboot crashes the
// IO scheduler at a random dependency-allowed block-level crash state, re-opens the
// store (recovery), collapses the model by dependency persistence, and sweeps every
// touched key — the persistence property. Clean Reboot additionally checks the
// forward-progress property: every dependency ever returned must report persistent
// after a clean shutdown.
//
// The alphabet is ordered by increasing complexity so the minimizer prefers simpler
// operations (section 4.3), and argument selection is biased (keys toward reuse,
// value sizes toward page-boundary corners; section 4.2).

#ifndef SS_HARNESS_KV_HARNESS_H_
#define SS_HARNESS_KV_HARNESS_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/kv/shard_store.h"
#include "src/model/models.h"
#include "src/pbt/pbt.h"

namespace ss {

class FlightRecorder;

enum class KvOpKind : uint8_t {
  kGet = 0,
  kPut,
  kDelete,
  kList,
  kPumpIo,
  kFlushIndex,
  kCompactIndex,
  kReclaim,
  kReboot,         // clean shutdown + recovery (forward progress)
  kDirtyReboot,    // crash + recovery (persistence)
  // Arm a transient read/write fault burst on an extent, sized to outlast the extent
  // layer's retry budget so the failure is guaranteed to surface to the operation
  // (single blips are absorbed transparently by the retry layer; the dedicated
  // failure harness exercises that axis).
  kFailReadOnce,
  kFailWriteOnce,
  kPutBatch,       // group-committed multi-put via ShardStore::ApplyBatch
  kScan,           // range scan [id, end) checked against the ordered-map oracle
  kCompactLevel,   // partial merge of one level (arg selects the level)
};

struct KvOp {
  KvOpKind kind = KvOpKind::kGet;
  ShardId id = 0;
  ShardId end = 0;   // kScan window end (half-open)
  Bytes value;       // kPut payload
  uint32_t arg = 0;  // pump count / crash seed / extent, candidate, or level selector
  std::vector<std::pair<ShardId, Bytes>> batch;  // kPutBatch items
  std::string ToString() const;
};

struct KvHarnessOptions {
  DiskGeometry geometry{.extent_count = 24, .pages_per_extent = 16, .page_size = 256};
  ShardStoreOptions store;
  bool crashes = false;            // include kDirtyReboot in generation
  bool failure_injection = false;  // include kFail* in generation
  // Argument biasing (section 4.2): key reuse and page-corner value sizes. Disabling
  // it (uniform arguments) is the ablation bench_bias_ablation measures.
  bool bias_arguments = true;
  uint64_t key_bound = 24;
  size_t max_value_bytes = 1200;
  // When set, any violation captures a flight-recorder artifact (metrics, span tree,
  // pending-writeback dependency DOT, persisted-vs-volatile extents). Leave null
  // during search/minimization — shrinking re-runs the property thousands of times —
  // and arm it on the one-shot re-run of the minimized sequence (see
  // FlightRecorder::set_case_seed).
  FlightRecorder* recorder = nullptr;
  // Which Disk backend a run executes against. Null constructs the default
  // InMemoryDisk; the cross-backend conformance tests supply a FileDisk factory and
  // run the identical op sequence through both. Crashes work on any backend: the
  // harness calls DropUnsynced() between the scheduler crash and recovery, which is a
  // no-op for the in-memory image.
  std::function<std::unique_ptr<disk::Disk>(const DiskGeometry&)> disk_factory;
};

// Generates one operation, biased by the prefix (key reuse, page-corner sizes).
KvOp GenKvOp(Rng& rng, const std::vector<KvOp>& prefix, const KvHarnessOptions& options);

// Simpler candidate replacements for one op (toward-zero ids/args, shorter values,
// earlier alphabet variants).
std::vector<KvOp> ShrinkKvOp(const KvOp& op);

// Executes one op sequence from a fresh disk. Returns a failure description, or
// nullopt if the sequence satisfies every property.
class KvConformanceHarness {
 public:
  explicit KvConformanceHarness(KvHarnessOptions options) : options_(options) {}

  std::optional<std::string> Run(const std::vector<KvOp>& ops);

  // Builds a ready-to-run PbtRunner over this harness.
  PbtRunner<KvOp> MakeRunner(PbtConfig config) const;

 private:
  KvHarnessOptions options_;
};

}  // namespace ss

#endif  // SS_HARNESS_KV_HARNESS_H_
