// Component-level conformance harnesses (paper Figure 3 and section 8.4's "model one
// component at a time" methodology).
//
//   * IndexConformanceHarness  — drives LsmIndex directly against IndexModel (a hash
//     map), with background Flush/Compact/Reclaim/Reboot operations that must not
//     change the mapping. This is the paper's Figure 3 harness.
//   * ChunkConformanceHarness  — drives ChunkStore against ChunkStoreModel, keeping the
//     implementation-locator <-> model-locator correspondence and checking it remains a
//     bijection (the invariant seeded model bug #15 violates).

#ifndef SS_HARNESS_COMPONENT_HARNESS_H_
#define SS_HARNESS_COMPONENT_HARNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/model/models.h"
#include "src/pbt/pbt.h"

namespace ss {

// --- Index harness (Figure 3) ------------------------------------------------------------

enum class IndexOpKind : uint8_t {
  kGet = 0,   // earliest variant: the minimizer prefers it (section 4.3)
  kPut,
  kDelete,
  kFlush,
  kCompact,
  kReclaim,
  kReboot,
  kScan,          // range scan [key, end) against the ordered-map oracle
  kCompactLevel,  // partial merge of one level (value_tag selects the level)
};

struct IndexOp {
  IndexOpKind kind = IndexOpKind::kGet;
  ShardId key = 0;
  ShardId end = 0;         // kScan window end (half-open)
  uint32_t value_tag = 0;  // deterministic record payload selector / level selector
  std::string ToString() const;
};

struct IndexHarnessOptions {
  DiskGeometry geometry{.extent_count = 16, .pages_per_extent = 16, .page_size = 256};
  uint64_t key_bound = 16;
  // Passed through to LsmIndex::Open — lets tests arm seeded LSM bugs (e.g. the
  // tombstone-drop-above-bottom variant) or tune level shape under the harness.
  LsmOptions lsm;
};

IndexOp GenIndexOp(Rng& rng, const std::vector<IndexOp>& prefix,
                   const IndexHarnessOptions& options);
std::vector<IndexOp> ShrinkIndexOp(const IndexOp& op);

class IndexConformanceHarness {
 public:
  explicit IndexConformanceHarness(IndexHarnessOptions options) : options_(options) {}
  std::optional<std::string> Run(const std::vector<IndexOp>& ops);
  PbtRunner<IndexOp> MakeRunner(PbtConfig config) const;

 private:
  IndexHarnessOptions options_;
};

// --- Chunk store harness ---------------------------------------------------------------

enum class ChunkOpKind : uint8_t {
  kGet = 0,
  kPut,
  kForget,   // drop our reference; the chunk becomes garbage
  kReclaim,
  kPumpIo,
};

struct ChunkOp {
  ChunkOpKind kind = ChunkOpKind::kGet;
  uint32_t pick = 0;      // which live chunk (modulo live count)
  uint32_t size = 0;      // put payload size
  uint64_t payload_seed = 0;
  std::string ToString() const;
};

struct ChunkHarnessOptions {
  DiskGeometry geometry{.extent_count = 16, .pages_per_extent = 16, .page_size = 256};
  size_t max_payload = 1024;
};

ChunkOp GenChunkOp(Rng& rng, const std::vector<ChunkOp>& prefix,
                   const ChunkHarnessOptions& options);
std::vector<ChunkOp> ShrinkChunkOp(const ChunkOp& op);

class ChunkConformanceHarness {
 public:
  explicit ChunkConformanceHarness(ChunkHarnessOptions options) : options_(options) {}
  std::optional<std::string> Run(const std::vector<ChunkOp>& ops);
  PbtRunner<ChunkOp> MakeRunner(PbtConfig config) const;

 private:
  ChunkHarnessOptions options_;
};

}  // namespace ss

#endif  // SS_HARNESS_COMPONENT_HARNESS_H_
