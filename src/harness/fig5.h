// Figure 5 reproduction harness: for each of the paper's 16 catalogued issues, enable
// the corresponding seeded bug and run the checker class the paper credits with
// preventing it (property-based conformance testing, crash-consistency checking with
// dirty reboots, failure injection, or stateless model checking). A bug counts as
// detected when the checker reports a failure within its budget; the harness also
// records the minimization statistics the paper highlights in section 4.3.

#ifndef SS_HARNESS_FIG5_H_
#define SS_HARNESS_FIG5_H_

#include <string>
#include <vector>

#include "src/faults/faults.h"

namespace ss {

struct Fig5Detection {
  SeededBug bug = SeededBug::kReclaimOffByOnePageSize;
  bool detected = false;
  std::string checker;        // which checker class caught it
  std::string message;        // failure description (truncated)
  size_t cases_or_execs = 0;  // PBT cases / MC executions until detection
  size_t original_ops = 0;    // failing sequence length before minimization (PBT only)
  size_t minimized_ops = 0;   // after minimization (PBT only)
  size_t shrink_runs = 0;     // property executions the minimizer spent
};

// Budgets so the whole catalog finishes quickly; raise them for a deeper hunt
// (pay-as-you-go, section 4.2).
struct Fig5Budget {
  size_t pbt_cases = 1500;
  size_t mc_iterations = 4000;
  uint64_t seed = 42;
};

// Runs the matching checker against one seeded bug (enabled for the duration).
Fig5Detection DetectSeededBug(SeededBug bug, const Fig5Budget& budget);

// The full catalog, in Figure 5 order.
std::vector<Fig5Detection> RunFig5Catalog(const Fig5Budget& budget);

// Sanity baseline: runs every checker with all bugs disabled; returns an error message
// if any checker reports a (spurious) failure.
std::string RunFig5Baseline(const Fig5Budget& budget);

}  // namespace ss

#endif  // SS_HARNESS_FIG5_H_
