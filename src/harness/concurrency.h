// Concurrency scenario bodies for the stateless model checker (paper section 6).
//
// Each Make*Body() returns a closure suitable for ss::McExplore: it builds fresh state,
// spawns ss::Thread workers exercising the real ShardStore stack, and asserts with
// MC_CHECK. The Figure 4 harness (index read-after-write under concurrent reclamation
// and compaction) is MakeFig4IndexBody.

#ifndef SS_HARNESS_CONCURRENCY_H_
#define SS_HARNESS_CONCURRENCY_H_

#include <functional>

#include "src/mc/mc.h"

namespace ss {

// Figure 4: put/get read-after-write ∥ chunk reclamation ∥ LSM compaction. Catches the
// locator race (#11) and the compaction/reclamation metadata race (#14).
std::function<void()> MakeFig4IndexBody();

// Narrow variant of the Figure 4 scenario focused on the index-flush/reclamation
// window (#14): one thread flushes the memtable into a new run chunk while another
// sweeps reclamation over the data extents. Small enough for exhaustive-ish search.
std::function<void()> MakeFlushReclaimBody();

// Range scan ∥ index flush: a scan races a Put+FlushIndex of a key inside the window.
// Every key persisted before the race must appear in the scan with its exact value;
// the in-flight key may appear or not, but never with a torn value, and a previously
// deleted key must never resurrect mid-scan.
std::function<void()> MakeScanFlushBody();

// Range scan ∥ CompactLevel: compaction rewrites runs (including dropping tombstones
// at the bottom) while a scan merges across the levels. Compaction never changes the
// logical mapping, so the scan must equal the exact expected live set under every
// interleaving. With `seeded_tombstone_bug` the compactor drops tombstones above the
// bottom level, resurrecting a deleted key — the checker finds the interleaving.
std::function<void()> MakeScanCompactBody(bool seeded_tombstone_bug = false);

// CompactLevel ∥ chunk reclamation: a partial level merge writes new run chunks whose
// extents must stay pinned until the metadata references them, while a reclamation
// sweep relocates/drops chunks underneath it (the #14 window, now on the leveled path).
std::function<void()> MakeCompactLevelReclaimBody();

// Two concurrent appends against a two-permit buffer pool. The correct atomic
// acquisition serializes; the split acquisition of seeded bug #12 deadlocks.
std::function<void()> MakeBufferPoolBody();

// Control-plane listing concurrent with shard removal (#13): shards that exist
// throughout must appear in the listing.
std::function<void()> MakeListRemoveBody();

// Bulk create ∥ bulk remove of the same batch (#16): observers must see the batch
// applied atomically (all-or-nothing).
std::function<void()> MakeBulkAtomicityBody();

// Records a small concurrent history of puts/gets/deletes and checks it is
// linearizable with respect to the sequential KV model.
std::function<void()> MakeLinearizabilityBody();

// Request plane ∥ control plane routing commit: a Put racing a MigrateShard of the
// same shard. The shard must remain reachable afterwards (with either the old or the
// new value). With `legacy_route_commit` the node uses the pre-fix unconditional
// directory commit, whose clobber leaves the directory pointing at the tombstoned
// source copy — the model checker finds the resulting kNotFound.
std::function<void()> MakePutMigrateBody(bool legacy_route_commit = false);

// Same race through the evacuation path: a Put racing EvacuateDisk of the shard's
// owning disk.
std::function<void()> MakePutEvacuateBody(bool legacy_route_commit = false);

// Batched variant of the routing-commit race: a PutBatch covering the migrating shard
// (plus a bystander) racing MigrateShard. Batch routing commits are always per-item
// and conditional (there is no legacy batch path), so every batch item must stay
// reachable afterwards, with a value some write produced.
std::function<void()> MakePutBatchMigrateBody();

}  // namespace ss

#endif  // SS_HARNESS_CONCURRENCY_H_
