#include "src/harness/fig5.h"

#include "src/harness/component_harness.h"
#include "src/harness/concurrency.h"
#include "src/harness/kv_harness.h"
#include "src/harness/rpc_harness.h"

namespace ss {

namespace {

// Which checker catches which bug (the paper's section per Figure 5 row).
enum class Checker {
  kPbtConformance,       // section 4: sequential conformance vs the reference model
  kPbtCrashConsistency,  // section 5: conformance with DirtyReboot crash states
  kPbtFailureInjection,  // section 4.4: conformance with injected IO failures
  kPbtChunkComponent,    // section 4: chunk-store component harness (model invariants)
  kMcFig4,               // section 6: Figure 4 index harness under the model checker
  kMcFlushReclaim,       // section 6: narrow flush/reclamation window harness
  kMcBufferPool,         // section 6: deadlock detection
  kMcListRemove,         // section 6: control-plane race
  kMcBulk,               // section 6: bulk-op atomicity
};

Checker CheckerFor(SeededBug bug) {
  switch (bug) {
    case SeededBug::kReclaimOffByOnePageSize:
    case SeededBug::kCacheNotDrainedOnReset:
    case SeededBug::kShutdownMetadataSkipAfterReset:
      return Checker::kPbtConformance;
    case SeededBug::kDiskRemovalLosesShards:
      return Checker::kPbtConformance;  // runs the RPC-level harness (see below)
    case SeededBug::kReclaimForgetsChunkOnReadError:
      return Checker::kPbtFailureInjection;
    case SeededBug::kSuperblockWrongOwnershipDep:
    case SeededBug::kSoftPointerNotResetPersisted:
    case SeededBug::kWriteMissingSoftPointerDep:
    case SeededBug::kRecoveryWritePointerPastCrash:
    case SeededBug::kReclaimUuidCollision:
      return Checker::kPbtCrashConsistency;
    case SeededBug::kLocatorInvalidOnWriteFlushRace:
      return Checker::kMcFig4;
    case SeededBug::kCompactReclaimMetadataRace:
      return Checker::kMcFlushReclaim;
    case SeededBug::kBufferPoolDeadlock:
      return Checker::kMcBufferPool;
    case SeededBug::kListRemoveRace:
      return Checker::kMcListRemove;
    case SeededBug::kModelLocatorReuse:
      return Checker::kPbtChunkComponent;
    case SeededBug::kBulkCreateRemoveRace:
      return Checker::kMcBulk;
  }
  return Checker::kPbtConformance;
}

std::string_view CheckerName(Checker checker) {
  switch (checker) {
    case Checker::kPbtConformance:
      return "property-based conformance (sec 4)";
    case Checker::kPbtCrashConsistency:
      return "crash-consistency conformance (sec 5)";
    case Checker::kPbtFailureInjection:
      return "failure-injection conformance (sec 4.4)";
    case Checker::kPbtChunkComponent:
      return "chunk-store component conformance (sec 4)";
    case Checker::kMcFig4:
      return "stateless model checking, Fig 4 harness (sec 6)";
    case Checker::kMcFlushReclaim:
      return "stateless model checking, flush/reclaim harness (sec 6)";
    case Checker::kMcBufferPool:
      return "stateless model checking, deadlock (sec 6)";
    case Checker::kMcListRemove:
      return "stateless model checking, list/remove (sec 6)";
    case Checker::kMcBulk:
      return "stateless model checking, bulk ops (sec 6)";
  }
  return "?";
}

template <typename Op>
void FillFromPbt(const std::optional<PbtFailure<Op>>& failure, size_t cases_run,
                 Fig5Detection& out) {
  out.cases_or_execs = cases_run;
  if (failure.has_value()) {
    out.detected = true;
    out.message = failure->message;
    out.original_ops = failure->original.size();
    out.minimized_ops = failure->minimized.size();
    out.shrink_runs = failure->shrink_runs;
  }
}

Fig5Detection RunChecker(SeededBug bug, Checker checker, const Fig5Budget& budget) {
  Fig5Detection out;
  out.bug = bug;
  out.checker = std::string(CheckerName(checker));

  switch (checker) {
    case Checker::kPbtConformance: {
      if (bug == SeededBug::kDiskRemovalLosesShards) {
        RpcConformanceHarness harness{RpcHarnessOptions{}};
        auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                                   .num_cases = budget.pbt_cases});
        auto failure = runner.Run();
        FillFromPbt(failure, runner.stats().cases_run, out);
        break;
      }
      KvHarnessOptions options;
      KvConformanceHarness harness(options);
      auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                                 .num_cases = budget.pbt_cases});
      auto failure = runner.Run();
      FillFromPbt(failure, runner.stats().cases_run, out);
      break;
    }
    case Checker::kPbtCrashConsistency: {
      KvHarnessOptions options;
      options.crashes = true;
      KvConformanceHarness harness(options);
      auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                                 .num_cases = budget.pbt_cases,
                                                 .max_ops = 80});
      auto failure = runner.Run();
      FillFromPbt(failure, runner.stats().cases_run, out);
      break;
    }
    case Checker::kPbtFailureInjection: {
      KvHarnessOptions options;
      options.failure_injection = true;
      KvConformanceHarness harness(options);
      auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                                 .num_cases = budget.pbt_cases});
      auto failure = runner.Run();
      FillFromPbt(failure, runner.stats().cases_run, out);
      break;
    }
    case Checker::kPbtChunkComponent: {
      ChunkConformanceHarness harness{ChunkHarnessOptions{}};
      auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                                 .num_cases = budget.pbt_cases});
      auto failure = runner.Run();
      FillFromPbt(failure, runner.stats().cases_run, out);
      break;
    }
    case Checker::kMcFig4:
    case Checker::kMcFlushReclaim:
    case Checker::kMcBufferPool:
    case Checker::kMcListRemove:
    case Checker::kMcBulk: {
      std::function<void()> body;
      if (checker == Checker::kMcFig4) {
        body = MakeFig4IndexBody();
      } else if (checker == Checker::kMcFlushReclaim) {
        body = MakeFlushReclaimBody();
      } else if (checker == Checker::kMcBufferPool) {
        body = MakeBufferPoolBody();
      } else if (checker == Checker::kMcListRemove) {
        body = MakeListRemoveBody();
      } else {
        body = MakeBulkAtomicityBody();
      }
      McOptions mc;
      mc.strategy = McOptions::Strategy::kPct;
      mc.iterations = budget.mc_iterations;
      // Decorrelate the PCT priority stream per bug.
      mc.seed = budget.seed + static_cast<uint64_t>(bug) * 1009;
      McResult result = McExplore(body, mc);
      out.cases_or_execs = result.executions;
      if (!result.ok) {
        out.detected = true;
        out.message = result.deadlock ? "deadlock: " + result.error : result.error;
      }
      break;
    }
  }
  if (out.message.size() > 160) {
    out.message.resize(160);
    out.message += "...";
  }
  return out;
}

}  // namespace

Fig5Detection DetectSeededBug(SeededBug bug, const Fig5Budget& budget) {
  ScopedBug scope(bug);
  return RunChecker(bug, CheckerFor(bug), budget);
}

std::vector<Fig5Detection> RunFig5Catalog(const Fig5Budget& budget) {
  std::vector<Fig5Detection> out;
  for (int b = 0; b < kSeededBugCount; ++b) {
    out.push_back(DetectSeededBug(static_cast<SeededBug>(b), budget));
  }
  return out;
}

std::string RunFig5Baseline(const Fig5Budget& budget) {
  FaultRegistry::Global().DisableAll();
  // Sequential conformance.
  {
    KvConformanceHarness harness{KvHarnessOptions{}};
    auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                               .num_cases = budget.pbt_cases});
    if (auto failure = runner.Run(); failure.has_value()) {
      return "baseline conformance failed: " + failure->message;
    }
  }
  // Crash consistency.
  {
    KvHarnessOptions options;
    options.crashes = true;
    KvConformanceHarness harness(options);
    auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                               .num_cases = budget.pbt_cases});
    if (auto failure = runner.Run(); failure.has_value()) {
      return "baseline crash consistency failed: " + failure->message;
    }
  }
  // Failure injection.
  {
    KvHarnessOptions options;
    options.failure_injection = true;
    KvConformanceHarness harness(options);
    auto runner = harness.MakeRunner(PbtConfig{.seed = budget.seed,
                                               .num_cases = budget.pbt_cases});
    if (auto failure = runner.Run(); failure.has_value()) {
      return "baseline failure injection failed: " + failure->message;
    }
  }
  // Model checking scenarios.
  for (auto& [name, body] :
       std::vector<std::pair<std::string, std::function<void()>>>{
           {"fig4", MakeFig4IndexBody()},
           {"flush-reclaim", MakeFlushReclaimBody()},
           {"buffer-pool", MakeBufferPoolBody()},
           {"list-remove", MakeListRemoveBody()},
           {"bulk", MakeBulkAtomicityBody()},
           {"linearizability", MakeLinearizabilityBody()}}) {
    McOptions mc;
    mc.strategy = McOptions::Strategy::kPct;
    mc.iterations = budget.mc_iterations / 10 + 1;
    mc.seed = budget.seed;
    McResult result = McExplore(body, mc);
    if (!result.ok) {
      return "baseline MC scenario '" + name + "' failed: " + result.error;
    }
  }
  return "";
}

}  // namespace ss
