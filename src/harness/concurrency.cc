#include "src/harness/concurrency.h"

#include <memory>

#include "src/kv/shard_store.h"
#include "src/mc/linearizability.h"
#include "src/rpc/node_server.h"

namespace ss {

namespace {

Bytes PatternValue(uint8_t tag, size_t size) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(tag + i);
  }
  return out;
}

DiskGeometry SmallGeometry() {
  return DiskGeometry{.extent_count = 12, .pages_per_extent = 8, .page_size = 256};
}

}  // namespace

std::function<void()> MakeFig4IndexBody() {
  return [] {
    std::shared_ptr<Disk> disk = std::make_shared<InMemoryDisk>(SmallGeometry());
    ShardStoreOptions options;
    options.chunk.max_payload_bytes = 400;
    auto store_or = ShardStore::Open(disk.get(), options);
    MC_CHECK(store_or.ok(), "open failed");
    std::shared_ptr<ShardStore> store(std::move(store_or).value());

    // Set up initial state: three shards, two index runs, and some garbage so both
    // reclamation and compaction have work to do.
    for (ShardId k = 0; k < 3; ++k) {
      MC_CHECK(store->Put(k, PatternValue(static_cast<uint8_t>(k), 200)).ok(), "setup put");
    }
    MC_CHECK(store->FlushIndex().ok(), "setup flush 1");
    MC_CHECK(store->Delete(1).ok(), "setup delete");
    MC_CHECK(store->FlushIndex().ok(), "setup flush 2");
    MC_CHECK(store->FlushAll().ok(), "setup flush all");

    // Background maintenance: chunk reclamation and LSM compaction (Figure 4). The
    // reclaimer sweeps every data extent (re-listing as it goes, so extents that gain
    // chunks concurrently — e.g. a compaction output — are considered too).
    Thread reclaimer = Thread::Spawn([store] {
      for (int pass = 0; pass < 2; ++pass) {
        for (ExtentId e : store->extents().ExtentsOwnedBy(ExtentOwner::kChunkData)) {
          if (store->extents().WritePointer(e) == 0) {
            continue;
          }
          Status status = store->ReclaimExtent(e);
          MC_CHECK(status.ok() || status.code() == StatusCode::kUnavailable,
                   "reclaim failed: " + status.ToString());
        }
      }
    });
    Thread compactor = Thread::Spawn([store] {
      Status status = store->CompactIndex();
      MC_CHECK(status.ok() || status.code() == StatusCode::kResourceExhausted,
               "compact failed: " + status.ToString());
    });

    // Foreground: overwrite keys and check the new value sticks (read-after-write).
    for (ShardId k : {ShardId{0}, ShardId{2}}) {
      Bytes value = PatternValue(static_cast<uint8_t>(0x40 + k), 180);
      MC_CHECK(store->Put(k, value).ok(), "overwrite put");
      auto got = store->Get(k);
      MC_CHECK(got.ok(), "read-after-write get failed: " + got.status().ToString());
      MC_CHECK(got.value() == value, "read-after-write returned stale/wrong data");
    }

    reclaimer.Join();
    compactor.Join();

    // Quiesce and re-validate every shard.
    Status status = store->FlushAll();
    MC_CHECK(status.ok(), "final flush failed: " + status.ToString());
    for (ShardId k : {ShardId{0}, ShardId{2}}) {
      auto got = store->Get(k);
      MC_CHECK(got.ok(), "final get failed: " + got.status().ToString());
    }
    auto deleted = store->Get(1);
    MC_CHECK(deleted.code() == StatusCode::kNotFound, "deleted shard resurrected");
  };
}

std::function<void()> MakeFlushReclaimBody() {
  return [] {
    std::shared_ptr<Disk> disk = std::make_shared<InMemoryDisk>(SmallGeometry());
    ShardStoreOptions options;
    options.chunk.max_payload_bytes = 400;
    auto store_or = ShardStore::Open(disk.get(), options);
    MC_CHECK(store_or.ok(), "open failed");
    std::shared_ptr<ShardStore> store(std::move(store_or).value());

    // One durable shard plus garbage so the sweep has something to reclaim.
    MC_CHECK(store->Put(0, PatternValue(0, 120)).ok(), "setup put");
    MC_CHECK(store->Put(1, PatternValue(1, 120)).ok(), "setup put");
    MC_CHECK(store->Delete(1).ok(), "setup delete");
    MC_CHECK(store->FlushAll().ok(), "setup flush");

    // The foreground writes a shard and flushes the index — creating a new run chunk
    // whose extent must stay pinned until the metadata references it.
    Thread sweeper = Thread::Spawn([store] {
      for (ExtentId e : store->extents().ExtentsOwnedBy(ExtentOwner::kChunkData)) {
        if (store->extents().WritePointer(e) == 0) {
          continue;
        }
        Status status = store->ReclaimExtent(e);
        MC_CHECK(status.ok() || status.code() == StatusCode::kUnavailable,
                 "reclaim failed: " + status.ToString());
      }
    });
    Bytes value = PatternValue(7, 150);
    MC_CHECK(store->Put(7, value).ok(), "put failed");
    Status flush = store->FlushIndex();
    MC_CHECK(flush.ok() || flush.code() == StatusCode::kResourceExhausted,
             "flush failed: " + flush.ToString());
    sweeper.Join();

    MC_CHECK(store->FlushAll().ok(), "final flush failed");
    auto got = store->Get(7);
    MC_CHECK(got.ok(), "flushed shard unreadable: " + got.status().ToString());
    MC_CHECK(got.value() == value, "flushed shard has wrong contents");
    MC_CHECK(store->Get(0).ok(), "old shard unreadable");
    MC_CHECK(store->Get(1).code() == StatusCode::kNotFound, "deleted shard resurrected");
    // A dead run chunk can hide from point lookups (an evacuation may have re-staged
    // the key in the memtable), but a listing must load every metadata-referenced run —
    // in a quiesced store it can only fail if the metadata references reclaimed space.
    auto listed = store->List();
    MC_CHECK(listed.ok(), "list failed after quiesce: " + listed.status().ToString());
  };
}

std::function<void()> MakeScanFlushBody() {
  return [] {
    std::shared_ptr<Disk> disk = std::make_shared<InMemoryDisk>(SmallGeometry());
    ShardStoreOptions options;
    options.chunk.max_payload_bytes = 400;
    auto store_or = ShardStore::Open(disk.get(), options);
    MC_CHECK(store_or.ok(), "open failed");
    std::shared_ptr<ShardStore> store(std::move(store_or).value());

    // Persisted baseline inside the scan window: keys 0 and 2 live, key 1 deleted.
    MC_CHECK(store->Put(0, PatternValue(0, 120)).ok(), "setup put");
    MC_CHECK(store->Put(1, PatternValue(1, 120)).ok(), "setup put");
    MC_CHECK(store->Put(2, PatternValue(2, 120)).ok(), "setup put");
    MC_CHECK(store->Delete(1).ok(), "setup delete");
    MC_CHECK(store->FlushAll().ok(), "setup flush");

    // Racing writer: lands a new key in the window and flushes it into a run.
    Bytes new_value = PatternValue(5, 150);
    Thread writer = Thread::Spawn([store, new_value] {
      MC_CHECK(store->Put(5, new_value).ok(), "racing put failed");
      Status flush = store->FlushIndex();
      MC_CHECK(flush.ok() || flush.code() == StatusCode::kResourceExhausted,
               "racing flush failed: " + flush.ToString());
    });

    auto scan_or = store->Scan(0, 10);
    MC_CHECK(scan_or.ok(), "scan failed: " + scan_or.status().ToString());
    bool saw0 = false, saw1 = false, saw2 = false;
    for (const ScanItem& item : scan_or.value()) {
      if (item.id == 0) {
        saw0 = true;
        MC_CHECK(item.value == PatternValue(0, 120), "scan returned wrong value for key 0");
      } else if (item.id == 1) {
        saw1 = true;
      } else if (item.id == 2) {
        saw2 = true;
        MC_CHECK(item.value == PatternValue(2, 120), "scan returned wrong value for key 2");
      } else if (item.id == 5) {
        // The in-flight key may or may not be visible, but never torn.
        MC_CHECK(item.value == new_value, "scan saw a torn in-flight value");
      } else {
        MC_CHECK(false, "scan invented key " + std::to_string(item.id));
      }
    }
    MC_CHECK(saw0 && saw2, "scan lost a persisted key");
    MC_CHECK(!saw1, "scan resurrected a deleted key");
    writer.Join();
  };
}

std::function<void()> MakeScanCompactBody(bool seeded_tombstone_bug) {
  return [seeded_tombstone_bug] {
    std::shared_ptr<Disk> disk = std::make_shared<InMemoryDisk>(SmallGeometry());
    ShardStoreOptions options;
    options.chunk.max_payload_bytes = 400;
    options.lsm.seeded_bug_drop_tombstones_above_bottom = seeded_tombstone_bug;
    auto store_or = ShardStore::Open(disk.get(), options);
    MC_CHECK(store_or.ok(), "open failed");
    std::shared_ptr<ShardStore> store(std::move(store_or).value());

    // Build a leveled shape where a tombstone sits above the live value it shadows:
    // run A (bottom after CompactLevel(0)+(1)) holds keys 0,1,2; a younger L0 run
    // holds the delete of key 1 plus an overwrite of key 2.
    Bytes v0 = PatternValue(0, 120);
    Bytes v2b = PatternValue(0x42, 120);
    MC_CHECK(store->Put(0, v0).ok(), "setup put");
    MC_CHECK(store->Put(1, PatternValue(1, 120)).ok(), "setup put");
    MC_CHECK(store->Put(2, PatternValue(2, 120)).ok(), "setup put");
    MC_CHECK(store->FlushIndex().ok(), "setup flush 1");
    MC_CHECK(store->CompactIndexLevel(0).ok(), "setup compact 0");
    MC_CHECK(store->CompactIndexLevel(1).ok(), "setup compact 1");
    MC_CHECK(store->Delete(1).ok(), "setup delete");
    MC_CHECK(store->Put(2, v2b).ok(), "setup overwrite");
    MC_CHECK(store->FlushIndex().ok(), "setup flush 2");
    MC_CHECK(store->FlushAll().ok(), "setup flush all");

    // Background: merge the young run one level down — NOT the bottom, so the
    // tombstone for key 1 must survive the merge.
    Thread compactor = Thread::Spawn([store] {
      Status status = store->CompactIndexLevel(0);
      MC_CHECK(status.ok() || status.code() == StatusCode::kResourceExhausted,
               "compact level failed: " + status.ToString());
    });

    // Foreground: the logical mapping never changes, so the scan must be exact.
    auto scan_or = store->Scan(0, 10);
    MC_CHECK(scan_or.ok(), "scan failed: " + scan_or.status().ToString());
    const std::vector<ScanItem>& items = scan_or.value();
    MC_CHECK(items.size() == 2, "scan resurrected or lost a key: expected exactly {0, 2}, saw " +
                                    std::to_string(items.size()) + " items");
    MC_CHECK(items[0].id == 0 && items[0].value == v0, "scan item 0 wrong");
    MC_CHECK(items[1].id == 2 && items[1].value == v2b, "scan item 1 wrong");
    compactor.Join();

    // After the dust settles the tombstone must still hold — the seeded bug drops it
    // during the non-bottom merge and resurrects key 1 here.
    MC_CHECK(store->Get(1).code() == StatusCode::kNotFound, "deleted shard resurrected");
    auto final_scan = store->Scan(0, 10);
    MC_CHECK(final_scan.ok(), "final scan failed");
    MC_CHECK(final_scan.value().size() == 2, "final scan resurrected or lost a key");
  };
}

std::function<void()> MakeCompactLevelReclaimBody() {
  return [] {
    std::shared_ptr<Disk> disk = std::make_shared<InMemoryDisk>(SmallGeometry());
    ShardStoreOptions options;
    options.chunk.max_payload_bytes = 400;
    auto store_or = ShardStore::Open(disk.get(), options);
    MC_CHECK(store_or.ok(), "open failed");
    std::shared_ptr<ShardStore> store(std::move(store_or).value());

    // Two runs (so CompactLevel(0) has a real merge) plus garbage for the sweep.
    MC_CHECK(store->Put(0, PatternValue(0, 120)).ok(), "setup put");
    MC_CHECK(store->Put(1, PatternValue(1, 120)).ok(), "setup put");
    MC_CHECK(store->FlushIndex().ok(), "setup flush 1");
    MC_CHECK(store->Put(2, PatternValue(2, 120)).ok(), "setup put");
    MC_CHECK(store->Delete(1).ok(), "setup delete");
    MC_CHECK(store->FlushIndex().ok(), "setup flush 2");
    MC_CHECK(store->FlushAll().ok(), "setup flush all");

    // Sweep reclamation over the data extents while the level merge writes its
    // output chunks: the outputs' extents must stay pinned until the metadata lands.
    Thread sweeper = Thread::Spawn([store] {
      for (ExtentId e : store->extents().ExtentsOwnedBy(ExtentOwner::kChunkData)) {
        if (store->extents().WritePointer(e) == 0) {
          continue;
        }
        Status status = store->ReclaimExtent(e);
        MC_CHECK(status.ok() || status.code() == StatusCode::kUnavailable,
                 "reclaim failed: " + status.ToString());
      }
    });
    Status compact = store->CompactIndexLevel(0);
    MC_CHECK(compact.ok() || compact.code() == StatusCode::kResourceExhausted,
             "compact level failed: " + compact.ToString());
    sweeper.Join();

    MC_CHECK(store->FlushAll().ok(), "final flush failed");
    auto got0 = store->Get(0);
    MC_CHECK(got0.ok() && got0.value() == PatternValue(0, 120), "key 0 lost or corrupt");
    auto got2 = store->Get(2);
    MC_CHECK(got2.ok() && got2.value() == PatternValue(2, 120), "key 2 lost or corrupt");
    MC_CHECK(store->Get(1).code() == StatusCode::kNotFound, "deleted shard resurrected");
  };
}

std::function<void()> MakeBufferPoolBody() {
  // This harness drives the extent layer directly — the paper's pattern of using the
  // sound checker on small correctness-critical code (custom concurrency primitives).
  // Two concurrent appends share a pool of exactly two staging permits; the correct
  // atomic two-permit acquisition serializes them, while the split acquisition of
  // seeded bug #12 deadlocks when each append grabs one permit.
  return [] {
    struct Stack {
      InMemoryDisk disk{SmallGeometry()};
      IoScheduler scheduler{&disk};
      ExtentManager extents{&disk, &scheduler, /*buffer_permits=*/2};
    };
    auto stack = std::make_shared<Stack>();
    auto claimed = stack->extents.ClaimExtent(ExtentOwner::kChunkData);
    MC_CHECK(claimed.ok(), "claim failed");
    const ExtentId extent = claimed.value();

    Thread writer = Thread::Spawn([stack, extent] {
      Bytes data = PatternValue(1, 64);
      MC_CHECK(stack->extents.Append(extent, data, Dependency()).ok(), "append 1 failed");
    });
    Bytes data = PatternValue(2, 64);
    MC_CHECK(stack->extents.Append(extent, data, Dependency()).ok(), "append 2 failed");
    writer.Join();

    MC_CHECK(stack->scheduler.FlushAll().ok(), "flush failed");
    MC_CHECK(stack->extents.WritePointer(extent) == 2, "both appends must land");
  };
}

std::function<void()> MakeListRemoveBody() {
  return [] {
    NodeServerOptions options;
    options.disk_count = 2;
    options.geometry = SmallGeometry();
    auto node_or = NodeServer::Create(options);
    MC_CHECK(node_or.ok(), "node create failed");
    std::shared_ptr<NodeServer> node(std::move(node_or).value());

    for (ShardId id : {ShardId{1}, ShardId{2}, ShardId{3}}) {
      MC_CHECK(node->Put(id, PatternValue(static_cast<uint8_t>(id), 32)).ok(), "setup put");
    }

    Thread lister = Thread::Spawn([node] {
      auto listed = node->ListShards();
      MC_CHECK(listed.ok(), "list failed");
      // Shards 2 and 3 exist throughout this execution; a correct listing must
      // include them no matter how the concurrent removal of shard 1 interleaves.
      bool has2 = false;
      bool has3 = false;
      for (ShardId id : listed.value()) {
        has2 |= (id == 2);
        has3 |= (id == 3);
      }
      MC_CHECK(has2 && has3, "listing missed a shard that was never removed");
    });
    MC_CHECK(node->Delete(1).ok(), "delete failed");
    lister.Join();
  };
}

std::function<void()> MakeBulkAtomicityBody() {
  return [] {
    NodeServerOptions options;
    options.disk_count = 1;
    options.geometry = SmallGeometry();
    auto node_or = NodeServer::Create(options);
    MC_CHECK(node_or.ok(), "node create failed");
    std::shared_ptr<NodeServer> node(std::move(node_or).value());

    Thread creator = Thread::Spawn([node] {
      std::vector<Status> statuses =
          node->BulkCreate({{5, PatternValue(5, 32)}, {6, PatternValue(6, 32)}});
      for (const Status& status : statuses) {
        MC_CHECK(status.ok(), "bulk create failed: " + status.ToString());
      }
    });
    std::vector<Status> statuses = node->BulkRemove({5, 6});
    for (const Status& status : statuses) {
      MC_CHECK(status.ok(), "bulk remove failed: " + status.ToString());
    }
    creator.Join();

    const bool have5 = node->Get(5).ok();
    const bool have6 = node->Get(6).ok();
    MC_CHECK(have5 == have6, "bulk operations interleaved non-atomically");
  };
}

std::function<void()> MakeLinearizabilityBody() {
  return [] {
    std::shared_ptr<Disk> disk = std::make_shared<InMemoryDisk>(SmallGeometry());
    auto store_or = ShardStore::Open(disk.get(), ShardStoreOptions{});
    MC_CHECK(store_or.ok(), "open failed");
    std::shared_ptr<ShardStore> store(std::move(store_or).value());
    auto history = std::make_shared<LinHistory>();

    auto do_put = [store, history](ShardId key, uint8_t tag) {
      Bytes value = PatternValue(tag, 24);
      const uint64_t t = history->Invoke();
      MC_CHECK(store->Put(key, value).ok(), "put failed");
      history->RecordPut(t, key, std::move(value));
    };
    auto do_get = [store, history](ShardId key) {
      const uint64_t t = history->Invoke();
      auto got = store->Get(key);
      if (got.ok()) {
        history->RecordGetFound(t, key, std::move(got).value());
      } else {
        MC_CHECK(got.code() == StatusCode::kNotFound,
                 "get failed: " + got.status().ToString());
        history->RecordGetMissing(t, key);
      }
    };
    auto do_delete = [store, history](ShardId key) {
      const uint64_t t = history->Invoke();
      MC_CHECK(store->Delete(key).ok(), "delete failed");
      history->RecordDelete(t, key);
    };

    Thread worker = Thread::Spawn([do_put, do_get] {
      do_put(1, 0x10);
      do_get(1);
    });
    do_put(1, 0x20);
    do_delete(1);
    do_get(1);
    worker.Join();

    std::string explanation;
    MC_CHECK(CheckLinearizable(history->Ops(), &explanation), explanation);
  };
}

std::function<void()> MakePutMigrateBody(bool legacy_route_commit) {
  return [legacy_route_commit] {
    NodeServerOptions options;
    options.disk_count = 2;
    options.geometry = SmallGeometry();
    options.legacy_unconditional_route_commit = legacy_route_commit;
    auto node_or = NodeServer::Create(options);
    MC_CHECK(node_or.ok(), "node create failed");
    std::shared_ptr<NodeServer> node(std::move(node_or).value());

    const ShardId id = 1;
    Bytes v1 = PatternValue(1, 64);
    Bytes v2 = PatternValue(2, 64);
    MC_CHECK(node->Put(id, v1).ok(), "setup put");
    const int source = node->DiskFor(id);
    const int target = 1 - source;

    // Writer races the migration's copy / routing-commit / tombstone sequence. Both
    // disks stay healthy and in service, so the Put itself must succeed wherever it
    // routes.
    Thread writer = Thread::Spawn([node, id, v2] {
      auto dep = node->Put(id, v2);
      MC_CHECK(dep.ok(), "concurrent put failed: " + dep.status().ToString());
    });
    Status migrated = node->MigrateShard(id, target);
    MC_CHECK(migrated.ok(), "migrate failed: " + migrated.ToString());
    writer.Join();

    // The shard must remain reachable wherever routing now points. The pre-fix commit
    // can leave the directory at the tombstoned source copy, surfacing kNotFound.
    auto got = node->Get(id);
    MC_CHECK(got.ok(), "shard lost after put ∥ migrate: " + got.status().ToString());
    MC_CHECK(got.value() == v1 || got.value() == v2,
             "put ∥ migrate returned a value neither write produced");
  };
}

std::function<void()> MakePutBatchMigrateBody() {
  return [] {
    NodeServerOptions options;
    options.disk_count = 2;
    options.geometry = SmallGeometry();
    auto node_or = NodeServer::Create(options);
    MC_CHECK(node_or.ok(), "node create failed");
    std::shared_ptr<NodeServer> node(std::move(node_or).value());

    const ShardId id = 1;
    Bytes v1 = PatternValue(1, 64);
    Bytes v2 = PatternValue(2, 64);
    Bytes v3 = PatternValue(3, 48);
    MC_CHECK(node->Put(id, v1).ok(), "setup put");
    const int source = node->DiskFor(id);
    const int target = 1 - source;

    // The batch covers the migrating shard plus a bystander key. Both disks stay
    // healthy and in service, so every item must succeed wherever it routes; the
    // migration's routing commit must survive a concurrent batch item commit.
    const ShardId bystander = 2;
    Thread writer = Thread::Spawn([node, id, bystander, v2, v3] {
      BatchResult result = node->PutBatch({{id, v2}, {bystander, v3}});
      MC_CHECK(result.items.size() == 2, "batch item count");
      for (const BatchItemResult& item : result.items) {
        MC_CHECK(item.status.ok(),
                 "concurrent batch item failed: " + item.status.ToString());
      }
    });
    Status migrated = node->MigrateShard(id, target);
    MC_CHECK(migrated.ok(), "migrate failed: " + migrated.ToString());
    writer.Join();

    auto got = node->Get(id);
    MC_CHECK(got.ok(), "shard lost after put-batch ∥ migrate: " + got.status().ToString());
    MC_CHECK(got.value() == v1 || got.value() == v2,
             "put-batch ∥ migrate returned a value neither write produced");
    auto bystander_got = node->Get(bystander);
    MC_CHECK(bystander_got.ok(),
             "bystander lost after put-batch ∥ migrate: " + bystander_got.status().ToString());
    MC_CHECK(bystander_got.value() == v3, "bystander value corrupted");
  };
}

std::function<void()> MakePutEvacuateBody(bool legacy_route_commit) {
  return [legacy_route_commit] {
    NodeServerOptions options;
    options.disk_count = 2;
    options.geometry = SmallGeometry();
    options.legacy_unconditional_route_commit = legacy_route_commit;
    auto node_or = NodeServer::Create(options);
    MC_CHECK(node_or.ok(), "node create failed");
    std::shared_ptr<NodeServer> node(std::move(node_or).value());

    const ShardId id = 1;
    Bytes v1 = PatternValue(1, 64);
    Bytes v2 = PatternValue(2, 64);
    MC_CHECK(node->Put(id, v1).ok(), "setup put");
    const int source = node->DiskFor(id);

    Thread writer = Thread::Spawn([node, id, v2] {
      auto dep = node->Put(id, v2);
      MC_CHECK(dep.ok(), "concurrent put failed: " + dep.status().ToString());
    });
    // Drains `source` through MigrateShardLocked, hitting the same routing-commit
    // window as MigrateShard.
    Status evacuated = node->EvacuateDisk(source);
    MC_CHECK(evacuated.ok(), "evacuate failed: " + evacuated.ToString());
    writer.Join();

    auto got = node->Get(id);
    MC_CHECK(got.ok(), "shard lost after put ∥ evacuate: " + got.status().ToString());
    MC_CHECK(got.value() == v1 || got.value() == v2,
             "put ∥ evacuate returned a value neither write produced");
  };
}

}  // namespace ss
