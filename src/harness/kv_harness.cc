#include "src/harness/kv_harness.h"

#include <algorithm>
#include <sstream>

#include "src/chunk/chunk_format.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/span.h"

namespace ss {

namespace {

std::string_view KindName(KvOpKind kind) {
  switch (kind) {
    case KvOpKind::kGet:
      return "Get";
    case KvOpKind::kPut:
      return "Put";
    case KvOpKind::kDelete:
      return "Delete";
    case KvOpKind::kList:
      return "List";
    case KvOpKind::kPumpIo:
      return "PumpIo";
    case KvOpKind::kFlushIndex:
      return "FlushIndex";
    case KvOpKind::kCompactIndex:
      return "CompactIndex";
    case KvOpKind::kReclaim:
      return "Reclaim";
    case KvOpKind::kReboot:
      return "Reboot";
    case KvOpKind::kDirtyReboot:
      return "DirtyReboot";
    case KvOpKind::kFailReadOnce:
      return "FailReadOnce";
    case KvOpKind::kFailWriteOnce:
      return "FailWriteOnce";
    case KvOpKind::kPutBatch:
      return "PutBatch";
    case KvOpKind::kScan:
      return "Scan";
    case KvOpKind::kCompactLevel:
      return "CompactLevel";
  }
  return "?";
}

Bytes RandomValue(Rng& rng, size_t size) {
  Bytes out(size);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Below(256));
  }
  return out;
}

std::vector<uint64_t> UsedKeys(const std::vector<KvOp>& prefix) {
  std::vector<uint64_t> used;
  for (const KvOp& op : prefix) {
    if (op.kind == KvOpKind::kPut || op.kind == KvOpKind::kDelete ||
        op.kind == KvOpKind::kGet) {
      used.push_back(op.id);
    }
    for (const auto& [id, value] : op.batch) {
      used.push_back(id);
    }
  }
  return used;
}

}  // namespace

std::string KvOp::ToString() const {
  std::ostringstream out;
  out << KindName(kind);
  switch (kind) {
    case KvOpKind::kGet:
    case KvOpKind::kDelete:
      out << "(" << id << ")";
      break;
    case KvOpKind::kPut:
      out << "(" << id << ", " << value.size() << "B)";
      break;
    case KvOpKind::kPumpIo:
    case KvOpKind::kReclaim:
    case KvOpKind::kDirtyReboot:
    case KvOpKind::kFailReadOnce:
    case KvOpKind::kFailWriteOnce:
    case KvOpKind::kCompactLevel:
      out << "(" << arg << ")";
      break;
    case KvOpKind::kScan:
      out << "(" << id << ", " << end << ")";
      break;
    case KvOpKind::kPutBatch: {
      out << "(";
      for (size_t i = 0; i < batch.size(); ++i) {
        out << (i ? ", " : "") << batch[i].first << ":" << batch[i].second.size() << "B";
      }
      out << ")";
      break;
    }
    default:
      break;
  }
  return out.str();
}

KvOp GenKvOp(Rng& rng, const std::vector<KvOp>& prefix, const KvHarnessOptions& options) {
  // Weights over the alphabet (order matches KvOpKind).
  std::vector<uint32_t> weights = {
      /*Get*/ 24, /*Put*/ 30, /*Delete*/ 10, /*List*/ 3,  /*PumpIo*/ 10,
      /*Flush*/ 8, /*Compact*/ 4, /*Reclaim*/ 10, /*Reboot*/ 2,
      /*DirtyReboot*/ options.crashes ? 6u : 0u,
      /*FailRead*/ options.failure_injection ? 3u : 0u,
      /*FailWrite*/ options.failure_injection ? 3u : 0u,
      /*PutBatch*/ 8,
      /*Scan*/ 8,
      /*CompactLevel*/ 5,
  };
  KvOp op;
  op.kind = static_cast<KvOpKind>(rng.WeightedIndex(weights));
  switch (op.kind) {
    case KvOpKind::kGet:
      // Bias toward keys already touched: a Get of a never-written key exercises only
      // the miss path (section 4.2's example).
      op.id = options.bias_arguments ? BiasedKey(rng, UsedKeys(prefix), 0.75, options.key_bound)
                                     : rng.Below(options.key_bound);
      break;
    case KvOpKind::kPut: {
      op.id = options.bias_arguments ? BiasedKey(rng, UsedKeys(prefix), 0.5, options.key_bound)
                                     : rng.Below(options.key_bound);
      const size_t size =
          options.bias_arguments
              ? BiasedValueSize(rng, options.geometry.page_size, kChunkOverheadBytes,
                                options.max_value_bytes)
              : rng.Below(options.max_value_bytes + 1);
      op.value = RandomValue(rng, size);
      break;
    }
    case KvOpKind::kDelete:
      op.id = options.bias_arguments ? BiasedKey(rng, UsedKeys(prefix), 0.8, options.key_bound)
                                     : rng.Below(options.key_bound);
      break;
    case KvOpKind::kPumpIo:
      op.arg = static_cast<uint32_t>(rng.Range(1, 8));
      break;
    case KvOpKind::kReclaim:
      op.arg = static_cast<uint32_t>(rng.Below(8));  // candidate selector
      break;
    case KvOpKind::kDirtyReboot:
      op.arg = static_cast<uint32_t>(rng.Next());  // crash-state seed
      break;
    case KvOpKind::kFailReadOnce:
    case KvOpKind::kFailWriteOnce:
      op.arg = static_cast<uint32_t>(
          rng.Range(1, options.geometry.extent_count - 1));
      break;
    case KvOpKind::kScan: {
      // Start biased toward touched keys; window length biased small and allowed to be
      // zero (empty window) or to run past key_bound (covers the open right edge).
      op.id = options.bias_arguments ? BiasedKey(rng, UsedKeys(prefix), 0.6, options.key_bound)
                                     : rng.Below(options.key_bound);
      op.end = op.id + rng.Below(options.key_bound / 2 + 2);
      break;
    }
    case KvOpKind::kCompactLevel:
      op.arg = static_cast<uint32_t>(rng.Below(4));  // level
      break;
    case KvOpKind::kPutBatch: {
      const size_t items = 2 + rng.Below(4);  // 2..5 items per batch
      for (size_t k = 0; k < items; ++k) {
        const ShardId id = options.bias_arguments
                               ? BiasedKey(rng, UsedKeys(prefix), 0.5, options.key_bound)
                               : rng.Below(options.key_bound);
        const size_t size =
            options.bias_arguments
                ? BiasedValueSize(rng, options.geometry.page_size, kChunkOverheadBytes,
                                  options.max_value_bytes)
                : rng.Below(options.max_value_bytes + 1);
        op.batch.emplace_back(id, RandomValue(rng, size));
      }
      break;
    }
    default:
      break;
  }
  return op;
}

std::vector<KvOp> ShrinkKvOp(const KvOp& op) {
  std::vector<KvOp> out;
  // Toward-zero numeric shrinks.
  if (op.id > 0) {
    KvOp smaller = op;
    smaller.id /= 2;
    out.push_back(smaller);
  }
  if (op.arg > 1) {
    KvOp smaller = op;
    smaller.arg /= 2;
    out.push_back(smaller);
  }
  // Shorter values.
  if (op.kind == KvOpKind::kPut && !op.value.empty()) {
    KvOp shorter = op;
    shorter.value.resize(op.value.size() / 2);
    out.push_back(shorter);
    KvOp tiny = op;
    tiny.value.resize(std::min<size_t>(op.value.size(), 1));
    out.push_back(tiny);
  }
  // A scan shrinks toward a narrower window (down to empty).
  if (op.kind == KvOpKind::kScan && op.end > op.id) {
    KvOp narrower = op;
    narrower.end = op.id + (op.end - op.id) / 2;
    out.push_back(narrower);
  }
  // A batch shrinks toward fewer items, and toward a plain Put of its first item.
  if (op.batch.size() > 1) {
    KvOp halved = op;
    halved.batch.resize(op.batch.size() / 2);
    out.push_back(halved);
  }
  if (!op.batch.empty()) {
    KvOp single;
    single.kind = KvOpKind::kPut;
    single.id = op.batch.front().first;
    single.value = op.batch.front().second;
    out.push_back(single);
  }
  // Earlier alphabet variant: anything can try to become a Get of the same key (the
  // minimizer keeps it only if the sequence still fails).
  if (op.kind != KvOpKind::kGet) {
    KvOp get;
    get.kind = KvOpKind::kGet;
    get.id = op.id;
    out.push_back(get);
  }
  return out;
}

std::optional<std::string> KvConformanceHarness::Run(const std::vector<KvOp>& ops) {
  // With the recorder armed this is the one-shot diagnostic re-run: turn the
  // dependency linter on for every barrier the run crosses and persist any analysis
  // report (lock-order witness, dep lint) as its own flight artifact.
  std::optional<ScopedDepLint> lint;
  std::optional<ScopedLockOrderFlightSink> lockorder_sink;
  std::optional<ScopedDepLintFlightSink> deplint_sink;
  if (options_.recorder != nullptr) {
    lint.emplace(true);
    lockorder_sink.emplace(options_.recorder);
    deplint_sink.emplace(options_.recorder);
  }
  std::unique_ptr<Disk> disk_owner =
      options_.disk_factory ? options_.disk_factory(options_.geometry)
                            : std::make_unique<InMemoryDisk>(options_.geometry);
  if (disk_owner == nullptr) {
    return "disk factory returned no disk";
  }
  Disk& disk = *disk_owner;
  ShardStoreOptions store_options = options_.store;
  auto store_or = ShardStore::Open(&disk, store_options);
  if (!store_or.ok()) {
    return "initial open failed: " + store_or.status().ToString();
  }
  std::unique_ptr<ShardStore> store = std::move(store_or).value();

  KvStoreModel model;
  // Every dependency returned by a mutating op, for the forward-progress property.
  std::vector<std::pair<size_t, Dependency>> dep_log;
  bool faults_armed = false;
  // Harness-local span tree: each data-plane op opens a root span threaded into the
  // store, so a violation's artifact carries the causal tree of the failing run. No
  // metric registry — the store's registry dies on reboot, and the tree outlives it.
  SpanTree spans;

  auto fail = [&](size_t i, const std::string& what) {
    std::ostringstream out;
    out << "op#" << i << " " << (i < ops.size() ? ops[i].ToString() : "<end>") << ": " << what;
    if (options_.recorder != nullptr) {
      FlightRecord record;
      record.harness = "kv_conformance";
      record.violation = out.str();
      record.ops.reserve(ops.size());
      for (const KvOp& o : ops) {
        record.ops.push_back(o.ToString());
      }
      if (store != nullptr) {
        CaptureStore(*store, record);
      }
      record.spans_json = spans.ToJson();
      (void)options_.recorder->Write(record);
    }
    return std::optional<std::string>(out.str());
  };

  // Post-recovery sweep: every touched key must read back exactly the model's value.
  auto sweep = [&](size_t i, const char* when) -> std::optional<std::string> {
    for (ShardId id : model.TouchedKeys()) {
      std::optional<Bytes> expected = model.Get(id);
      auto got = store->Get(id);
      if (got.ok()) {
        if (!expected.has_value()) {
          return fail(i, std::string(when) + ": shard " + std::to_string(id) +
                             " readable but expected absent (resurrection)");
        }
        if (got.value() != *expected) {
          return fail(i, std::string(when) + ": shard " + std::to_string(id) +
                             " has wrong contents");
        }
      } else if (got.code() == StatusCode::kNotFound) {
        if (expected.has_value()) {
          return fail(i, std::string(when) + ": shard " + std::to_string(id) +
                             " lost (expected " + std::to_string(expected->size()) + "B)");
        }
      } else {
        return fail(i, std::string(when) + ": unexpected error reading shard " +
                           std::to_string(id) + ": " + got.status().ToString());
      }
    }
    return std::nullopt;
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const KvOp& op = ops[i];
    switch (op.kind) {
      case KvOpKind::kGet: {
        Span span(&spans, &store->extents(), "harness.get");
        auto got = store->Get(op.id, span.scope());
        if (!got.ok()) {
          span.set_status(got.code());
        }
        std::optional<Bytes> expected = model.Get(op.id);
        if (got.ok()) {
          if (!expected.has_value()) {
            return fail(i, "returned data for a shard the model says is absent");
          }
          if (got.value() != *expected) {
            return fail(i, "returned wrong data");
          }
        } else if (got.code() == StatusCode::kNotFound) {
          if (expected.has_value()) {
            return fail(i, "NotFound for a shard the model says exists");
          }
        } else if (got.code() == StatusCode::kIoError && faults_armed) {
          // Allowed to fail under injected faults, never allowed to return wrong data
          // (section 4.4's relaxed check).
        } else {
          return fail(i, "unexpected error: " + got.status().ToString());
        }
        break;
      }
      case KvOpKind::kPut: {
        Span span(&spans, &store->extents(), "harness.put");
        auto dep_or = store->Put(op.id, op.value, span.scope());
        if (!dep_or.ok()) {
          span.set_status(dep_or.code());
        }
        if (dep_or.ok()) {
          model.Put(op.id, op.value, dep_or.value());
          dep_log.push_back({i, dep_or.value()});
        } else if (dep_or.code() == StatusCode::kResourceExhausted ||
                   (dep_or.code() == StatusCode::kIoError && faults_armed)) {
          // Failed puts must be atomic no-ops; the model stays unchanged.
        } else {
          return fail(i, "unexpected error: " + dep_or.status().ToString());
        }
        break;
      }
      case KvOpKind::kDelete: {
        Span span(&spans, &store->extents(), "harness.delete");
        auto dep_or = store->Delete(op.id, span.scope());
        if (!dep_or.ok()) {
          span.set_status(dep_or.code());
        }
        if (dep_or.ok()) {
          model.Delete(op.id, dep_or.value());
          dep_log.push_back({i, dep_or.value()});
        } else if (dep_or.code() == StatusCode::kIoError && faults_armed) {
        } else {
          return fail(i, "unexpected error: " + dep_or.status().ToString());
        }
        break;
      }
      case KvOpKind::kPutBatch: {
        std::vector<StoreBatchItem> items;
        items.reserve(op.batch.size());
        for (const auto& [id, value] : op.batch) {
          items.push_back({id, value});
        }
        Span span(&spans, &store->extents(), "harness.put_batch");
        StoreBatchResult result = store->ApplyBatch(items, span.scope());
        if (result.items.size() != op.batch.size()) {
          return fail(i, "batch returned wrong item count");
        }
        for (size_t k = 0; k < result.items.size(); ++k) {
          const StoreBatchItemResult& item = result.items[k];
          if (item.status.ok()) {
            model.Put(op.batch[k].first, op.batch[k].second, item.dep);
            dep_log.push_back({i, item.dep});
          } else if (item.status.code() == StatusCode::kResourceExhausted ||
                     (item.status.code() == StatusCode::kIoError && faults_armed)) {
            // A failed item must be an atomic no-op; the model stays unchanged.
          } else {
            return fail(i, "batch item " + std::to_string(k) +
                               " unexpected error: " + item.status.ToString());
          }
        }
        break;
      }
      case KvOpKind::kScan: {
        Span span(&spans, &store->extents(), "harness.scan");
        auto got = store->Scan(op.id, op.end, span.scope());
        if (!got.ok()) {
          span.set_status(got.code());
          if ((got.code() == StatusCode::kIoError || got.code() == StatusCode::kUnavailable) &&
              faults_armed) {
            break;
          }
          return fail(i, "unexpected error: " + got.status().ToString());
        }
        // Exact comparison against the ordered-map oracle: same keys, same order, same
        // values. After a DirtyReboot the model holds the adopted persisted state, so
        // this doubles as "a scan sees exactly the persisted prefix".
        std::vector<std::pair<ShardId, Bytes>> expected = model.Scan(op.id, op.end);
        const std::vector<ScanItem>& impl = got.value();
        bool match = impl.size() == expected.size();
        for (size_t k = 0; match && k < impl.size(); ++k) {
          match = impl[k].id == expected[k].first && impl[k].value == expected[k].second;
        }
        if (!match) {
          return fail(i, "scan disagrees with the ordered-map oracle (" +
                             std::to_string(impl.size()) + " items vs " +
                             std::to_string(expected.size()) + " expected)");
        }
        break;
      }
      case KvOpKind::kList: {
        auto listed = store->List();
        if (!listed.ok()) {
          if ((listed.code() == StatusCode::kIoError ||
               listed.code() == StatusCode::kUnavailable) &&
              faults_armed) {
            break;
          }
          return fail(i, "unexpected error: " + listed.status().ToString());
        }
        std::vector<ShardId> impl = listed.value();
        std::vector<ShardId> expected = model.List();
        std::sort(impl.begin(), impl.end());
        std::sort(expected.begin(), expected.end());
        if (impl != expected) {
          return fail(i, "listing disagrees with the model");
        }
        break;
      }
      case KvOpKind::kPumpIo:
        store->PumpIo(op.arg);
        break;
      case KvOpKind::kFlushIndex:
      case KvOpKind::kCompactIndex:
      case KvOpKind::kCompactLevel:
      case KvOpKind::kReclaim: {
        Status status;
        if (op.kind == KvOpKind::kFlushIndex) {
          status = store->FlushIndex();
        } else if (op.kind == KvOpKind::kCompactIndex) {
          status = store->CompactIndex();
        } else if (op.kind == KvOpKind::kCompactLevel) {
          status = store->CompactIndexLevel(static_cast<int>(op.arg % 4));
        } else {
          // Candidates include the active extent: reclamation may legally target it
          // (pinning is the protection for in-flight chunks), and several crash
          // scenarios — e.g. the UUID-collision issue #10 — need exactly that.
          std::vector<ExtentId> candidates;
          for (ExtentId e : store->extents().ExtentsOwnedBy(ExtentOwner::kChunkData)) {
            if (store->extents().WritePointer(e) > 0) {
              candidates.push_back(e);
            }
          }
          if (candidates.empty()) {
            break;
          }
          status = store->ReclaimExtent(candidates[op.arg % candidates.size()]);
        }
        if (!status.ok() && status.code() != StatusCode::kUnavailable &&
            status.code() != StatusCode::kResourceExhausted &&
            !(status.code() == StatusCode::kIoError && faults_armed)) {
          return fail(i, "maintenance failed: " + status.ToString());
        }
        break;
      }
      case KvOpKind::kReboot: {
        Status status = store->FlushAll();
        if (!status.ok()) {
          if (status.code() == StatusCode::kResourceExhausted ||
              (status.code() == StatusCode::kIoError && faults_armed)) {
            break;  // legitimate inability to persist; skip the reboot
          }
          return fail(i, "clean shutdown failed (forward progress): " + status.ToString());
        }
        // Forward-progress property: after a clean shutdown, every dependency persists.
        for (const auto& [op_index, dep] : dep_log) {
          if (!dep.IsPersistent() && !dep.Failed()) {
            return fail(i, "forward progress violated: dependency of op#" +
                               std::to_string(op_index) + " not persistent after clean shutdown");
          }
        }
        store.reset();
        disk.fault_injector().Clear();
        faults_armed = false;
        auto reopened = ShardStore::Open(&disk, store_options);
        if (!reopened.ok()) {
          return fail(i, "recovery failed: " + reopened.status().ToString());
        }
        store = std::move(reopened).value();
        if (auto err = sweep(i, "after clean reboot"); err.has_value()) {
          return err;
        }
        break;
      }
      case KvOpKind::kDirtyReboot: {
        Rng crash_rng(op.arg);
        // Coarse RebootType choice: sometimes flush the in-memory index section first,
        // so crash states interleave component flushes (section 5).
        if (crash_rng.Chance(0.35)) {
          (void)store->FlushIndex();
        }
        store->scheduler().Crash(crash_rng, /*persist_bias=*/0.6);
        store.reset();
        // Power cut: a buffered backend loses writebacks the crash issued but whose
        // covering barrier never fired (no-op for the in-memory image).
        disk.DropUnsynced();
        disk.fault_injector().Clear();
        faults_armed = false;
        auto reopened = ShardStore::Open(&disk, store_options);
        if (!reopened.ok()) {
          return fail(i, "crash recovery failed: " + reopened.status().ToString());
        }
        store = std::move(reopened).value();
        // Dependencies dropped by the crash legitimately never persist; forward
        // progress only constrains operations issued since the last crash.
        dep_log.clear();
        // Persistence + consistency sweep (section 5): every touched key must surface
        // a crash-allowed value — at least the latest mutation whose dependency
        // persisted (persistence), never anything older (consistency). The model then
        // adopts the observed durable state as its new baseline.
        for (ShardId id : model.TouchedKeys()) {
          std::optional<Bytes> observed;
          auto got = store->Get(id);
          if (got.ok()) {
            observed = std::move(got).value();
          } else if (got.code() != StatusCode::kNotFound) {
            return fail(i, "after crash: unexpected error reading shard " +
                               std::to_string(id) + ": " + got.status().ToString());
          }
          if (!model.AdoptPostCrash(id, observed)) {
            return fail(i, "after crash: shard " + std::to_string(id) +
                               (observed.has_value()
                                    ? " surfaced a value outside the crash-allowed set"
                                    : " lost: a persisted mutation is unreadable"));
          }
        }
        break;
      }
      case KvOpKind::kFailReadOnce:
        // Burst sized to outlast the retry budget: one logical IO's worth of attempts
        // all fail, so the error surfaces (a smaller burst would be absorbed).
        disk.fault_injector().FailReadTimes(op.arg % options_.geometry.extent_count,
                                            options_.store.retry.max_attempts);
        faults_armed = true;
        break;
      case KvOpKind::kFailWriteOnce:
        disk.fault_injector().FailWriteTimes(op.arg % options_.geometry.extent_count,
                                             options_.store.retry.max_attempts);
        faults_armed = true;
        break;
    }

    // Invariant check after every op (Figure 3 line 24): the mapping agrees.
    if (!faults_armed) {
      auto listed = store->List();
      if (!listed.ok()) {
        return fail(i, "post-op listing failed: " + listed.status().ToString());
      }
      std::vector<ShardId> impl = listed.value();
      std::vector<ShardId> expected = model.List();
      std::sort(impl.begin(), impl.end());
      std::sort(expected.begin(), expected.end());
      if (impl != expected) {
        return fail(i, "post-op key set disagrees with the model");
      }
    }
  }

  // End of sequence: clean shutdown, forward progress, final sweep.
  Status status = store->FlushAll();
  if (!status.ok()) {
    if (status.code() != StatusCode::kResourceExhausted &&
        !(status.code() == StatusCode::kIoError && faults_armed)) {
      return fail(ops.size(), "final shutdown failed: " + status.ToString());
    }
    return std::nullopt;
  }
  for (const auto& [op_index, dep] : dep_log) {
    if (!dep.IsPersistent() && !dep.Failed()) {
      return fail(ops.size(), "forward progress violated at end: dependency of op#" +
                                  std::to_string(op_index) + " not persistent");
    }
  }
  if (auto err = sweep(ops.size(), "final"); err.has_value()) {
    return err;
  }
  return std::nullopt;
}

PbtRunner<KvOp> KvConformanceHarness::MakeRunner(PbtConfig config) const {
  KvHarnessOptions options = options_;
  return PbtRunner<KvOp>(
      config,
      [options](Rng& rng, const std::vector<KvOp>& prefix) {
        return GenKvOp(rng, prefix, options);
      },
      [options](const std::vector<KvOp>& ops) {
        KvConformanceHarness harness(options);
        return harness.Run(ops);
      },
      [](const KvOp& op) { return ShrinkKvOp(op); });
}

}  // namespace ss
