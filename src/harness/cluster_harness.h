// Quorum-replication conformance harness for the cluster tier (the failure-injection
// methodology of section 4.4 lifted to the multi-node level), plus the model-checked
// cross-node linearizability bodies.
//
// The PBT alphabet interleaves client KV ops with cluster-level fault and membership
// actions: link partitions (node-node and client-node), whole-node crash/restart,
// heartbeat/maintenance ticks, and NodeJoin/NodeLeave rebalances. Three properties:
//
//   * Quorum conformance against ClusterModel: a reference model that tracks, per
//     key, the highest *committed* version (acked at W, or served by a read) plus the
//     set of *uncertain* writes (failed quorums whose partial footprints may still
//     surface). A served read must match the committed record or adopt exactly one
//     uncertain write; anything else — stale version, phantom version, wrong bytes —
//     is a violation.
//   * Fault-aware errors: a failed client op is legal only while the harness can
//     point at an active fault channel (lossy net configuration, a standing
//     partition, a crashed or suspect/down member, or a pending rebalance move).
//   * Forward progress: after the sequence every link heals, every node restarts,
//     the loss channels zero out, and maintenance ticks run until hinted handoff and
//     pending rebalance moves drain. Then every touched key must read back to the
//     model's committed record, and every owner replica must hold a record the model
//     can name (committed or uncertain) — which is exactly the check that catches
//     seeded bug #17's corrupt read-repair payloads.
//
// The MC bodies drive a small cluster from concurrent workload + adversary threads
// under ss::mc and check the recorded history with CheckLinearizable: with R+W>N the
// property holds across every explored interleaving of partitions, crashes, and
// heals; with the R+W<=N misconfiguration the checker finds the stale read, and the
// failing schedule replays via McReplay / a flight-recorder artifact.

#ifndef SS_HARNESS_CLUSTER_HARNESS_H_
#define SS_HARNESS_CLUSTER_HARNESS_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/pbt/pbt.h"

namespace ss {

class FlightRecorder;

// Ordered by increasing complexity so the minimizer prefers simpler operations.
enum class ClusterOpKind : uint8_t {
  kGet = 0,
  kPut,
  kDelete,
  kTick,         // maintenance rounds: heartbeats, hint replay, pending-move retries
  kHealAll,      // heal every link partition
  kHealLink,     // heal one link
  kRestartNode,  // clear a node's crash flag
  kPartitionLink,  // blackhole one link (node-node or client-node)
  kCrashNode,      // network-level crash; the node's disks and data survive
  kNodeJoin,       // add a fresh member and rebalance
  kNodeLeave,      // graceful decommission (may legally refuse)
};

struct ClusterOp {
  ClusterOpKind kind = ClusterOpKind::kGet;
  ShardId key = 0;
  Bytes value;       // kPut payload
  // Node *slots*, resolved against the live member list at execution time (so a
  // shrunk prefix with fewer joins still addresses valid nodes). -1 = the
  // coordinator/client endpoint (only meaningful for link ops).
  int a = 0;
  int b = 0;
  uint32_t count = 1;  // kTick rounds
  std::string ToString() const;
};

struct ClusterHarnessOptions {
  cluster::ClusterOptions cluster;
  uint64_t key_bound = 12;
  size_t max_value_bytes = 200;
  // Bound on post-sequence maintenance rounds for the hint/pending drain.
  uint64_t max_drain_rounds = 16;
  // Armed only for the one-shot re-run of a minimized counterexample.
  FlightRecorder* recorder = nullptr;

  ClusterHarnessOptions() {
    cluster.initial_nodes = 4;
    cluster.replication = 3;
    cluster.read_quorum = 2;
    cluster.write_quorum = 2;
    cluster.vnodes = 8;
    cluster.node.disk_count = 2;
    cluster.node.geometry = {.extent_count = 16, .pages_per_extent = 16, .page_size = 256};
    cluster.net.drop_rate = 0.05;
    cluster.net.duplicate_rate = 0.05;
    cluster.net.base_delay_ticks = 1;
    cluster.net.delay_jitter_ticks = 2;
    cluster.rpc_retry.max_attempts = 3;
    cluster.op_timeout_ticks = 64;
    cluster.heartbeat_period_ticks = 4;
  }
};

// Sequential reference model for quorum-replicated KV with write uncertainty.
// `committed` is the floor every read must reach; `uncertain` holds failed writes
// whose partial footprints may legally surface once — at which point the model
// adopts them (mirroring the coordinator's establish-overlap-then-serve rule).
class ClusterModel {
 public:
  struct Record {
    uint64_t version = 0;
    bool tombstone = false;
    Bytes value;
  };

  void OnWriteAck(ShardId key, uint64_t version, bool tombstone, const Bytes& value);
  void OnWriteFail(ShardId key, uint64_t version, bool tombstone, const Bytes& value);
  // Validates a *served* read (found/version/value as the coordinator returned them)
  // and adopts any uncertain write it surfaced. Returns a violation description, or
  // nullopt when the observation is legal.
  std::optional<std::string> OnRead(ShardId key, bool found, uint64_t version,
                                    const Bytes& value);

  const Record* Committed(ShardId key) const;
  const Record* Uncertain(ShardId key, uint64_t version) const;
  std::vector<ShardId> TouchedKeys() const;

 private:
  void Adopt(ShardId key, const Record& record);

  std::map<ShardId, Record> committed_;
  std::map<ShardId, std::map<uint64_t, Record>> uncertain_;
};

ClusterOp GenClusterOp(Rng& rng, const std::vector<ClusterOp>& prefix,
                       const ClusterHarnessOptions& options);
std::vector<ClusterOp> ShrinkClusterOp(const ClusterOp& op);

class ClusterConformanceHarness {
 public:
  explicit ClusterConformanceHarness(ClusterHarnessOptions options)
      : options_(options) {}
  std::optional<std::string> Run(const std::vector<ClusterOp>& ops);
  PbtRunner<ClusterOp> MakeRunner(PbtConfig config) const;

 private:
  ClusterHarnessOptions options_;
};

// Model-checked cross-node linearizability: a 3-node R=2/W=2 cluster, one concurrent
// writer, a reader, and an adversary injecting the chosen fault (0 = none,
// 1 = client-link partition + heal, 2 = node crash + restart). The recorded history
// must be linearizable on every explored schedule; failed writes enter the history
// as open invocations (they may or may not have taken effect).
std::function<void()> MakeClusterLinearizableBody(int adversary);

// The misconfiguration demo: 2 nodes, R=1/W=1 (R+W<=N, allow_unsafe_quorums), a
// partition racing a write. Some schedules serve a stale read after an acked newer
// write; McExplore finds them and the failing schedule replays deterministically.
std::function<void()> MakeClusterStaleReadBody();

}  // namespace ss

#endif  // SS_HARNESS_CLUSTER_HARNESS_H_
