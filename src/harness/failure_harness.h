// Fault-alphabet conformance harness for the disk failure domain (paper section 4.2's
// failure-injection mode, lifted to the node level).
//
// The alphabet interleaves KV operations with fault actions: arming transient
// read/write bursts (some shorter than the extent layer's retry budget — absorbed —
// and some longer — surfaced), arming permanent extent failures, control-plane
// degrade/evacuate/health-reset, clearing injectors, and whole-disk crash-reboots.
// Three properties are checked:
//
//   * No lost acknowledged writes: an operation that succeeded must be readable with
//     exactly the model's value; kNotFound against a model-present key is a violation
//     except where the crash extension explicitly allows it.
//   * Fault-aware conformance: request-plane errors are only legal when the oracle can
//     point at a cause — kUnavailable when the routed disk is out of service, failed,
//     or (for mutations) degraded; kIoError/kDiskFailed only while the routed disk has
//     injector faults armed. A healthy, un-faulted disk must behave exactly like the
//     model.
//   * Forward progress: after the sequence, every injector is cleared, every disk is
//     restored and its health reset, and everything is flushed. Then every surviving
//     dependency must report persistent and every touched key must match the model
//     exactly — faults may deny service while present, never after they clear.
//
// Crash-reboots collapse the model per key via KvStoreModel::AdoptPostCrash, the same
// persistence property the single-store harness checks, restricted to keys the crashed
// disk owned. Dependencies recorded for a crashed disk are dropped from the
// forward-progress log (their writebacks died with the scheduler).

#ifndef SS_HARNESS_FAILURE_HARNESS_H_
#define SS_HARNESS_FAILURE_HARNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/model/models.h"
#include "src/pbt/pbt.h"
#include "src/rpc/node_server.h"

namespace ss {

class FlightRecorder;

// Ordered by increasing complexity so the minimizer prefers simpler operations.
enum class FailureOpKind : uint8_t {
  kGet = 0,
  kPut,
  kDelete,
  kPumpIo,        // pump one disk's IO scheduler (model no-op)
  kFlushAll,      // flush every in-service disk (model no-op)
  kClearFaults,   // clear one disk's injector
  kResetHealth,   // operator: health back to healthy, fresh error budget
  kArmTransientRead,   // burst of read faults on one extent; may absorb or surface
  kArmTransientWrite,  // burst of write faults on one extent
  kArmPermanent,       // FailAlways on one extent: kDiskFailed until cleared
  kDegradeDisk,        // operator: mark read-only
  kEvacuateDisk,       // drain onto healthy peers
  kCrashReboot,        // crash the disk's scheduler, recover, reconcile routing
  kPutBatch,           // batched puts through the group-commit pipeline
};

struct FailureOp {
  FailureOpKind kind = FailureOpKind::kGet;
  ShardId id = 0;
  Bytes value;         // kPut payload
  uint32_t disk = 0;   // target disk for fault/control actions
  uint32_t extent = 1; // target extent for arm actions
  uint32_t count = 1;  // burst length (kArmTransient*) / pump count
  uint64_t seed = 0;   // kCrashReboot crash state seed
  std::vector<std::pair<ShardId, Bytes>> batch;  // kPutBatch items
  std::string ToString() const;
};

struct FailureHarnessOptions {
  NodeServerOptions node{.disk_count = 3,
                         .geometry = {.extent_count = 16, .pages_per_extent = 16,
                                      .page_size = 256}};
  uint64_t key_bound = 16;
  size_t max_value_bytes = 600;
  // When set, any violation captures a flight-recorder artifact from the node (metric
  // snapshot, rpc.* span trees, trace tail, per-disk dependency DOT and
  // persisted-vs-volatile extents). Arm only for the one-shot re-run of a minimized
  // counterexample, not during search/shrinking.
  FlightRecorder* recorder = nullptr;
};

FailureOp GenFailureOp(Rng& rng, const std::vector<FailureOp>& prefix,
                       const FailureHarnessOptions& options);
std::vector<FailureOp> ShrinkFailureOp(const FailureOp& op);

class FailureConformanceHarness {
 public:
  explicit FailureConformanceHarness(FailureHarnessOptions options) : options_(options) {}
  std::optional<std::string> Run(const std::vector<FailureOp>& ops);
  PbtRunner<FailureOp> MakeRunner(PbtConfig config) const;

 private:
  FailureHarnessOptions options_;
};

}  // namespace ss

#endif  // SS_HARNESS_FAILURE_HARNESS_H_
