// Node-level (RPC) conformance harness: the KV alphabet plus control-plane operations
// for taking disks out of service and returning them (paper section 2.1's control
// plane; seeded bug #4 loses shards across a remove/restore cycle).

#ifndef SS_HARNESS_RPC_HARNESS_H_
#define SS_HARNESS_RPC_HARNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/model/models.h"
#include "src/pbt/pbt.h"
#include "src/rpc/node_server.h"

namespace ss {

enum class RpcOpKind : uint8_t {
  kGet = 0,
  kPut,
  kDelete,
  kList,
  kRemoveDisk,
  kRestoreDisk,
  kFlushAll,
  kMigrate,  // control plane: move a shard to another disk (model no-op)
};

struct RpcOp {
  RpcOpKind kind = RpcOpKind::kGet;
  ShardId id = 0;
  Bytes value;
  uint32_t disk = 0;
  std::string ToString() const;
};

struct RpcHarnessOptions {
  NodeServerOptions node{.disk_count = 3,
                         .geometry = {.extent_count = 20, .pages_per_extent = 16,
                                      .page_size = 256}};
  uint64_t key_bound = 24;
  size_t max_value_bytes = 600;
};

RpcOp GenRpcOp(Rng& rng, const std::vector<RpcOp>& prefix, const RpcHarnessOptions& options);
std::vector<RpcOp> ShrinkRpcOp(const RpcOp& op);

class RpcConformanceHarness {
 public:
  explicit RpcConformanceHarness(RpcHarnessOptions options) : options_(options) {}
  std::optional<std::string> Run(const std::vector<RpcOp>& ops);
  PbtRunner<RpcOp> MakeRunner(PbtConfig config) const;

 private:
  RpcHarnessOptions options_;
};

}  // namespace ss

#endif  // SS_HARNESS_RPC_HARNESS_H_
