#include "src/harness/crash_enum.h"

#include <sstream>

#include "src/model/models.h"

namespace ss {

namespace {

// One deterministic run: apply the ops, crash with `plan`, recover, sweep. Returns the
// violation (if any) and reports the crash's decision count.
std::optional<std::string> RunOnce(const std::vector<KvOp>& ops,
                                   const CrashEnumOptions& options,
                                   const std::vector<bool>& plan, size_t* decisions_used) {
  InMemoryDisk disk(options.geometry);
  auto store_or = ShardStore::Open(&disk, options.store);
  if (!store_or.ok()) {
    return "open failed: " + store_or.status().ToString();
  }
  std::unique_ptr<ShardStore> store = std::move(store_or).value();
  KvStoreModel model;

  for (size_t i = 0; i < ops.size(); ++i) {
    const KvOp& op = ops[i];
    switch (op.kind) {
      case KvOpKind::kPut: {
        auto dep_or = store->Put(op.id, op.value);
        if (dep_or.ok()) {
          model.Put(op.id, op.value, dep_or.value());
        } else if (dep_or.code() != StatusCode::kResourceExhausted) {
          return "op#" + std::to_string(i) + " put failed: " + dep_or.status().ToString();
        }
        break;
      }
      case KvOpKind::kDelete: {
        auto dep_or = store->Delete(op.id);
        if (!dep_or.ok()) {
          return "op#" + std::to_string(i) + " delete failed";
        }
        model.Delete(op.id, dep_or.value());
        break;
      }
      case KvOpKind::kFlushIndex:
        (void)store->FlushIndex();
        break;
      case KvOpKind::kCompactIndex:
        (void)store->CompactIndex();
        break;
      case KvOpKind::kReclaim: {
        std::vector<ExtentId> candidates = store->chunks().ReclaimableExtents();
        if (!candidates.empty()) {
          (void)store->ReclaimExtent(candidates[op.arg % candidates.size()]);
        }
        break;
      }
      case KvOpKind::kPumpIo:
        store->PumpIo(op.arg);
        break;
      case KvOpKind::kPutBatch: {
        std::vector<StoreBatchItem> items;
        items.reserve(op.batch.size());
        for (const auto& [id, value] : op.batch) {
          items.push_back({id, value});
        }
        StoreBatchResult result = store->ApplyBatch(items);
        for (size_t k = 0; k < result.items.size(); ++k) {
          const StoreBatchItemResult& item = result.items[k];
          if (item.status.ok()) {
            model.Put(op.batch[k].first, op.batch[k].second, item.dep);
          } else if (item.status.code() != StatusCode::kResourceExhausted) {
            return "op#" + std::to_string(i) + " batch item " + std::to_string(k) +
                   " failed: " + item.status.ToString();
          }
        }
        break;
      }
      default:
        return "op kind not supported by the crash enumerator";
    }
  }

  store->scheduler().CrashScripted(plan, decisions_used);
  store.reset();
  disk.fault_injector().Clear();
  auto reopened = ShardStore::Open(&disk, options.store);
  if (!reopened.ok()) {
    return "crash recovery failed: " + reopened.status().ToString();
  }
  store = std::move(reopened).value();

  for (ShardId id : model.TouchedKeys()) {
    std::optional<Bytes> observed;
    auto got = store->Get(id);
    if (got.ok()) {
      observed = std::move(got).value();
    } else if (got.code() != StatusCode::kNotFound) {
      return "post-crash read error on shard " + std::to_string(id) + ": " +
             got.status().ToString();
    }
    if (!model.AdoptPostCrash(id, observed)) {
      return "shard " + std::to_string(id) +
             (observed.has_value() ? " surfaced a value outside the crash-allowed set"
                                   : " lost: a persisted mutation is unreadable");
    }
  }
  return std::nullopt;
}

}  // namespace

CrashEnumResult EnumerateCrashStates(const std::vector<KvOp>& ops,
                                     const CrashEnumOptions& options) {
  CrashEnumResult result;
  // DFS odometer over binary decision strings: false ("cut") is the first branch,
  // true ("persist") the second; depth adapts to the decisions each run consumes.
  std::vector<bool> plan;
  while (result.states_explored < options.max_states) {
    size_t used = 0;
    std::optional<std::string> violation = RunOnce(ops, options, plan, &used);
    ++result.states_explored;
    if (violation.has_value()) {
      result.violation = std::move(violation);
      result.violating_plan = plan;
      return result;
    }
    // Extend the path to the full decision depth of this run (unrecorded decisions
    // defaulted to false).
    while (plan.size() < used) {
      plan.push_back(false);
    }
    // Advance: deepest false -> true, truncating everything after it.
    while (!plan.empty() && plan.back()) {
      plan.pop_back();
    }
    if (plan.empty()) {
      result.exhausted = true;
      return result;
    }
    plan.back() = true;
  }
  return result;
}

}  // namespace ss
