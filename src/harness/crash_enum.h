// Exhaustive block-level crash-state enumeration (paper section 5, "Block-level crash
// states"): the BOB / CrashMonkey-style variant of DirtyReboot that enumerates *every*
// dependency-allowed crash state of a workload instead of sampling them. The paper
// implemented this, found no additional bugs over the coarse sampled approach, and
// measured it dramatically slower — bench/bench_crash_enumeration reproduces that
// comparison; this header provides the machinery.
//
// Enumeration works by re-running the (deterministic) workload once per crash decision
// script: the scheduler's crash procedure makes a sequence of binary persist/cut
// decisions, and a DFS odometer walks all decision strings (adaptive depth — persisting
// a record can unblock more candidates).

#ifndef SS_HARNESS_CRASH_ENUM_H_
#define SS_HARNESS_CRASH_ENUM_H_

#include <optional>
#include <string>
#include <vector>

#include "src/harness/kv_harness.h"

namespace ss {

struct CrashEnumResult {
  size_t states_explored = 0;
  bool exhausted = false;  // every crash state visited (vs. cap hit)
  // First violation found, if any.
  std::optional<std::string> violation;
  std::vector<bool> violating_plan;
};

struct CrashEnumOptions {
  DiskGeometry geometry{.extent_count = 24, .pages_per_extent = 16, .page_size = 256};
  ShardStoreOptions store;
  size_t max_states = 100000;
};

// Runs `ops` (puts/deletes/flushes/pumps only; reboot/crash ops are rejected) from a
// fresh store, then enumerates every crash state at the end of the sequence: for each,
// recovers and checks the section-5 persistence/consistency sweep against the
// crash-allowed sets of the reference model.
CrashEnumResult EnumerateCrashStates(const std::vector<KvOp>& ops,
                                     const CrashEnumOptions& options);

}  // namespace ss

#endif  // SS_HARNESS_CRASH_ENUM_H_
