#include "src/harness/rpc_harness.h"

#include <algorithm>
#include <sstream>

namespace ss {

std::string RpcOp::ToString() const {
  static const char* kNames[] = {"Get", "Put", "Delete", "List", "RemoveDisk", "RestoreDisk",
                                 "FlushAll", "Migrate"};
  std::ostringstream out;
  out << kNames[static_cast<int>(kind)];
  switch (kind) {
    case RpcOpKind::kGet:
    case RpcOpKind::kDelete:
      out << "(" << id << ")";
      break;
    case RpcOpKind::kPut:
      out << "(" << id << ", " << value.size() << "B)";
      break;
    case RpcOpKind::kRemoveDisk:
    case RpcOpKind::kRestoreDisk:
      out << "(disk " << disk << ")";
      break;
    case RpcOpKind::kMigrate:
      out << "(" << id << " -> disk " << disk << ")";
      break;
    default:
      break;
  }
  return out.str();
}

RpcOp GenRpcOp(Rng& rng, const std::vector<RpcOp>& prefix, const RpcHarnessOptions& options) {
  std::vector<uint32_t> weights = {/*Get*/ 25, /*Put*/ 30, /*Delete*/ 8, /*List*/ 6,
                                   /*Remove*/ 8, /*Restore*/ 10, /*FlushAll*/ 5,
                                   /*Migrate*/ 8};
  RpcOp op;
  op.kind = static_cast<RpcOpKind>(rng.WeightedIndex(weights));
  std::vector<uint64_t> used;
  for (const RpcOp& prev : prefix) {
    if (prev.kind == RpcOpKind::kPut) {
      used.push_back(prev.id);
    }
  }
  switch (op.kind) {
    case RpcOpKind::kGet:
      op.id = BiasedKey(rng, used, 0.75, options.key_bound);
      break;
    case RpcOpKind::kPut: {
      op.id = BiasedKey(rng, used, 0.5, options.key_bound);
      const size_t size = rng.Below(options.max_value_bytes + 1);
      op.value.resize(size);
      for (auto& b : op.value) {
        b = static_cast<uint8_t>(rng.Below(256));
      }
      break;
    }
    case RpcOpKind::kDelete:
      op.id = BiasedKey(rng, used, 0.8, options.key_bound);
      break;
    case RpcOpKind::kRemoveDisk:
    case RpcOpKind::kRestoreDisk:
      op.disk = static_cast<uint32_t>(rng.Below(options.node.disk_count));
      break;
    case RpcOpKind::kMigrate:
      op.id = BiasedKey(rng, used, 0.85, options.key_bound);
      op.disk = static_cast<uint32_t>(rng.Below(options.node.disk_count));
      break;
    default:
      break;
  }
  return op;
}

std::vector<RpcOp> ShrinkRpcOp(const RpcOp& op) {
  std::vector<RpcOp> out;
  if (op.id > 0) {
    RpcOp smaller = op;
    smaller.id /= 2;
    out.push_back(smaller);
  }
  if (!op.value.empty()) {
    RpcOp shorter = op;
    shorter.value.resize(op.value.size() / 2);
    out.push_back(shorter);
  }
  if (op.kind != RpcOpKind::kGet) {
    RpcOp get;
    get.kind = RpcOpKind::kGet;
    get.id = op.id;
    out.push_back(get);
  }
  return out;
}

std::optional<std::string> RpcConformanceHarness::Run(const std::vector<RpcOp>& ops) {
  auto node_or = NodeServer::Create(options_.node);
  if (!node_or.ok()) {
    return "node create failed: " + node_or.status().ToString();
  }
  std::unique_ptr<NodeServer> node = std::move(node_or).value();
  KvStoreModel model;

  auto fail = [&](size_t i, const std::string& what) {
    return std::optional<std::string>("op#" + std::to_string(i) + " " + ops[i].ToString() +
                                      ": " + what);
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const RpcOp& op = ops[i];
    const bool target_in_service =
        (op.kind == RpcOpKind::kGet || op.kind == RpcOpKind::kPut ||
         op.kind == RpcOpKind::kDelete)
            ? node->InService(node->DiskFor(op.id))
            : true;
    switch (op.kind) {
      case RpcOpKind::kGet: {
        auto got = node->Get(op.id);
        if (!target_in_service) {
          if (got.code() != StatusCode::kUnavailable) {
            return fail(i, "expected Unavailable for out-of-service disk");
          }
          break;
        }
        std::optional<Bytes> expected = model.Get(op.id);
        if (got.ok()) {
          if (!expected.has_value() || got.value() != *expected) {
            return fail(i, "wrong or phantom data");
          }
        } else if (got.code() == StatusCode::kNotFound) {
          if (expected.has_value()) {
            return fail(i, "shard lost");
          }
        } else {
          return fail(i, "unexpected error: " + got.status().ToString());
        }
        break;
      }
      case RpcOpKind::kPut: {
        auto dep_or = node->Put(op.id, op.value);
        if (!target_in_service) {
          if (dep_or.code() != StatusCode::kUnavailable) {
            return fail(i, "expected Unavailable for out-of-service disk");
          }
          break;
        }
        if (dep_or.ok()) {
          model.Put(op.id, op.value, dep_or.value());
        } else if (dep_or.code() != StatusCode::kResourceExhausted) {
          return fail(i, "unexpected error: " + dep_or.status().ToString());
        }
        break;
      }
      case RpcOpKind::kDelete: {
        auto dep_or = node->Delete(op.id);
        if (!target_in_service) {
          if (dep_or.code() != StatusCode::kUnavailable) {
            return fail(i, "expected Unavailable for out-of-service disk");
          }
          break;
        }
        if (dep_or.ok()) {
          model.Delete(op.id, dep_or.value());
        } else {
          return fail(i, "unexpected error: " + dep_or.status().ToString());
        }
        break;
      }
      case RpcOpKind::kList: {
        auto listed = node->ListShards();
        if (!listed.ok()) {
          return fail(i, "list failed: " + listed.status().ToString());
        }
        // Only shards on in-service disks are expected to appear.
        std::vector<ShardId> expected;
        for (ShardId id : model.List()) {
          if (node->InService(node->DiskFor(id))) {
            expected.push_back(id);
          }
        }
        std::vector<ShardId> impl = listed.value();
        std::sort(impl.begin(), impl.end());
        std::sort(expected.begin(), expected.end());
        if (impl != expected) {
          return fail(i, "listing disagrees with model");
        }
        break;
      }
      case RpcOpKind::kRemoveDisk: {
        Status status = node->RemoveDiskFromService(static_cast<int>(op.disk));
        if (!status.ok() && status.code() != StatusCode::kUnavailable &&
            status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "remove failed: " + status.ToString());
        }
        break;
      }
      case RpcOpKind::kRestoreDisk: {
        Status status = node->RestoreDisk(static_cast<int>(op.disk));
        if (!status.ok() && status.code() != StatusCode::kUnavailable) {
          return fail(i, "restore failed: " + status.ToString());
        }
        break;
      }
      case RpcOpKind::kFlushAll: {
        Status status = node->FlushAllDisks();
        if (!status.ok() && status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "flush failed: " + status.ToString());
        }
        break;
      }
      case RpcOpKind::kMigrate: {
        // A migration never changes the observable mapping: the shard's value must be
        // identical before and after (the model is untouched).
        Status status = node->MigrateShard(op.id, static_cast<int>(op.disk));
        if (!status.ok() && status.code() != StatusCode::kUnavailable &&
            status.code() != StatusCode::kNotFound &&
            status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "migrate failed: " + status.ToString());
        }
        if (status.ok()) {
          std::optional<Bytes> expected = model.Get(op.id);
          auto got = node->Get(op.id);
          if (expected.has_value()) {
            if (!got.ok() || got.value() != *expected) {
              return fail(i, "shard changed or vanished across migration");
            }
          }
        }
        break;
      }
    }
  }

  // Final sweep: restore every disk and read everything back.
  for (int d = 0; d < node->disk_count(); ++d) {
    if (!node->InService(d)) {
      if (Status status = node->RestoreDisk(d); !status.ok()) {
        return std::optional<std::string>("final restore of disk " + std::to_string(d) +
                                          " failed: " + status.ToString());
      }
    }
  }
  for (ShardId id : model.TouchedKeys()) {
    std::optional<Bytes> expected = model.Get(id);
    auto got = node->Get(id);
    if (got.ok()) {
      if (!expected.has_value() || got.value() != *expected) {
        return std::optional<std::string>("final sweep: shard " + std::to_string(id) +
                                          " wrong or phantom");
      }
    } else if (got.code() == StatusCode::kNotFound) {
      if (expected.has_value()) {
        return std::optional<std::string>("final sweep: shard " + std::to_string(id) +
                                          " lost after remove/restore cycle");
      }
    } else {
      return std::optional<std::string>("final sweep: error on shard " + std::to_string(id) +
                                        ": " + got.status().ToString());
    }
  }
  return std::nullopt;
}

PbtRunner<RpcOp> RpcConformanceHarness::MakeRunner(PbtConfig config) const {
  RpcHarnessOptions options = options_;
  return PbtRunner<RpcOp>(
      config,
      [options](Rng& rng, const std::vector<RpcOp>& prefix) {
        return GenRpcOp(rng, prefix, options);
      },
      [options](const std::vector<RpcOp>& ops) {
        RpcConformanceHarness harness(options);
        return harness.Run(ops);
      },
      [](const RpcOp& op) { return ShrinkRpcOp(op); });
}

}  // namespace ss
