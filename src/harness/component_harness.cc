#include "src/harness/component_harness.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/cache/buffer_cache.h"
#include "src/chunk/chunk_store.h"
#include "src/dep/io_scheduler.h"
#include "src/lsm/lsm_index.h"
#include "src/superblock/extent_manager.h"

namespace ss {

namespace {

// Deterministic fabricated shard record for the index harness: the locators are
// synthetic tokens (extent ids far outside the disk) — the index treats records as
// opaque values, which is exactly what a mock usage would do.
ShardRecord FabricatedRecord(ShardId key, uint32_t tag) {
  ShardRecord record;
  record.total_bytes = tag;
  const uint32_t chunk_count = tag % 3;
  for (uint32_t i = 0; i < chunk_count; ++i) {
    record.chunks.push_back(Locator{/*extent=*/100000 + static_cast<uint32_t>(key),
                                    /*first_page=*/tag + i, /*page_count=*/1,
                                    /*frame_bytes=*/64});
  }
  return record;
}

// The full lower stack the index needs.
struct IndexStack {
  InMemoryDisk disk;
  LsmOptions lsm_options;
  std::unique_ptr<IoScheduler> scheduler;
  std::unique_ptr<ExtentManager> extents;
  std::unique_ptr<BufferCache> cache;
  std::unique_ptr<ChunkStore> chunks;
  std::unique_ptr<LsmIndex> index;

  IndexStack(const DiskGeometry& geometry, const LsmOptions& lsm)
      : disk(geometry), lsm_options(lsm) {}

  Status Open() {
    scheduler = std::make_unique<IoScheduler>(&disk);
    extents = std::make_unique<ExtentManager>(&disk, scheduler.get());
    cache = std::make_unique<BufferCache>(extents.get(), 128);
    chunks = std::make_unique<ChunkStore>(extents.get(), cache.get(), ChunkStoreOptions{});
    auto index_or = LsmIndex::Open(extents.get(), chunks.get(), lsm_options);
    if (!index_or.ok()) {
      return index_or.status();
    }
    index = std::move(index_or).value();
    return Status::Ok();
  }
};

// Reclaim client for the index-only stack: references are the LSM's own (run chunks);
// fabricated shard locators never collide with real extents. Holds the stack, not the
// index: reboots replace the index object.
class IndexReclaimClient : public ReclaimClient {
 public:
  explicit IndexReclaimClient(IndexStack* stack) : stack_(stack) {}

  Result<bool> IsReferenced(const Locator& loc) override {
    if (stack_->index->MetadataReferences(loc)) {
      return true;
    }
    SS_ASSIGN_OR_RETURN(std::optional<ShardId> owner,
                        stack_->index->FindShardReferencing(loc));
    return owner.has_value();
  }

  Result<Dependency> UpdateReference(const Locator& old_loc, const Locator& new_loc,
                                     const Dependency& new_dep) override {
    if (stack_->index->MetadataReferences(old_loc)) {
      return stack_->index->RelocateRunChunk(old_loc, new_loc, new_dep);
    }
    return stack_->index->RelocateShardChunk(old_loc, new_loc, new_dep);
  }

  Dependency DropGate() override { return stack_->index->StateDurableGate(); }

 private:
  IndexStack* stack_;
};

}  // namespace

std::string IndexOp::ToString() const {
  static const char* kNames[] = {"Get",     "Put",    "Delete", "Flush",       "Compact",
                                 "Reclaim", "Reboot", "Scan",   "CompactLevel"};
  std::ostringstream out;
  out << kNames[static_cast<int>(kind)];
  if (kind == IndexOpKind::kGet || kind == IndexOpKind::kPut || kind == IndexOpKind::kDelete) {
    out << "(" << key << (kind == IndexOpKind::kPut ? ", #" + std::to_string(value_tag) : "")
        << ")";
  } else if (kind == IndexOpKind::kScan) {
    out << "(" << key << ", " << end << ")";
  } else if (kind == IndexOpKind::kCompactLevel) {
    out << "(" << value_tag << ")";
  }
  return out.str();
}

IndexOp GenIndexOp(Rng& rng, const std::vector<IndexOp>& prefix,
                   const IndexHarnessOptions& options) {
  std::vector<uint32_t> weights = {/*Get*/ 25,    /*Put*/ 30,     /*Delete*/ 10,
                                   /*Flush*/ 12,  /*Compact*/ 6,  /*Reclaim*/ 10,
                                   /*Reboot*/ 4,  /*Scan*/ 8,     /*CompactLevel*/ 5};
  IndexOp op;
  op.kind = static_cast<IndexOpKind>(rng.WeightedIndex(weights));
  std::vector<uint64_t> used;
  for (const IndexOp& prev : prefix) {
    if (prev.kind == IndexOpKind::kPut) {
      used.push_back(prev.key);
    }
  }
  if (op.kind == IndexOpKind::kGet || op.kind == IndexOpKind::kPut ||
      op.kind == IndexOpKind::kDelete) {
    op.key = BiasedKey(rng, used, 0.7, options.key_bound);
    op.value_tag = static_cast<uint32_t>(rng.Below(1000));
  } else if (op.kind == IndexOpKind::kScan) {
    op.key = BiasedKey(rng, used, 0.6, options.key_bound);
    op.end = op.key + rng.Below(options.key_bound / 2 + 2);  // allows an empty window
  } else if (op.kind == IndexOpKind::kCompactLevel) {
    op.value_tag = static_cast<uint32_t>(rng.Below(4));  // level
  }
  return op;
}

std::vector<IndexOp> ShrinkIndexOp(const IndexOp& op) {
  std::vector<IndexOp> out;
  if (op.key > 0) {
    IndexOp smaller = op;
    smaller.key /= 2;
    out.push_back(smaller);
  }
  if (op.value_tag > 0) {
    IndexOp smaller = op;
    smaller.value_tag /= 2;
    out.push_back(smaller);
  }
  if (op.kind == IndexOpKind::kScan && op.end > op.key) {
    IndexOp narrower = op;
    narrower.end = op.key + (op.end - op.key) / 2;
    out.push_back(narrower);
  }
  if (op.kind != IndexOpKind::kGet) {
    IndexOp get;
    get.kind = IndexOpKind::kGet;
    get.key = op.key;
    out.push_back(get);
  }
  return out;
}

std::optional<std::string> IndexConformanceHarness::Run(const std::vector<IndexOp>& ops) {
  IndexStack stack(options_.geometry, options_.lsm);
  if (Status status = stack.Open(); !status.ok()) {
    return "open failed: " + status.ToString();
  }
  IndexModel model;
  IndexReclaimClient client(&stack);

  auto fail = [&](size_t i, const std::string& what) {
    return std::optional<std::string>("op#" + std::to_string(i) + " " + ops[i].ToString() +
                                      ": " + what);
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const IndexOp& op = ops[i];
    switch (op.kind) {
      case IndexOpKind::kGet: {
        auto got = stack.index->Get(op.key);
        if (!got.ok()) {
          return fail(i, "error: " + got.status().ToString());
        }
        std::optional<ShardRecord> expected = model.Get(op.key);
        if (got.value().has_value() != expected.has_value() ||
            (expected.has_value() && !(*got.value() == *expected))) {
          return fail(i, "index and model disagree");
        }
        break;
      }
      case IndexOpKind::kPut:
        stack.index->Put(op.key, FabricatedRecord(op.key, op.value_tag), Dependency());
        model.Put(op.key, FabricatedRecord(op.key, op.value_tag));
        break;
      case IndexOpKind::kDelete:
        stack.index->Delete(op.key);
        model.Delete(op.key);
        break;
      case IndexOpKind::kFlush:
        if (Status status = stack.index->Flush();
            !status.ok() && status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "flush failed: " + status.ToString());
        }
        break;
      case IndexOpKind::kCompact:
        if (Status status = stack.index->Compact();
            !status.ok() && status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "compact failed: " + status.ToString());
        }
        break;
      case IndexOpKind::kReclaim: {
        std::vector<ExtentId> candidates = stack.chunks->ReclaimableExtents();
        if (candidates.empty()) {
          break;
        }
        Status status = stack.chunks->Reclaim(candidates[op.key % candidates.size()], &client);
        if (!status.ok() && status.code() != StatusCode::kUnavailable &&
            status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "reclaim failed: " + status.ToString());
        }
        break;
      }
      case IndexOpKind::kScan: {
        auto got = stack.index->Scan(op.key, op.end);
        if (!got.ok()) {
          return fail(i, "scan error: " + got.status().ToString());
        }
        std::vector<std::pair<ShardId, ShardRecord>> expected = model.Scan(op.key, op.end);
        const std::vector<LsmScanItem>& impl = got.value();
        bool match = impl.size() == expected.size();
        for (size_t k = 0; match && k < impl.size(); ++k) {
          match = impl[k].id == expected[k].first && impl[k].record == expected[k].second;
        }
        if (!match) {
          return fail(i, "scan and model disagree");
        }
        break;
      }
      case IndexOpKind::kCompactLevel:
        if (Status status = stack.index->CompactLevel(static_cast<int>(op.value_tag % 4));
            !status.ok() && status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "compact level failed: " + status.ToString());
        }
        break;
      case IndexOpKind::kReboot: {
        if (stack.index->NeedsShutdownFlush()) {
          if (Status status = stack.index->Flush();
              !status.ok() && status.code() != StatusCode::kResourceExhausted) {
            return fail(i, "shutdown flush failed: " + status.ToString());
          }
        }
        Status status = stack.scheduler->FlushAll();
        if (!status.ok()) {
          return fail(i, "clean shutdown failed: " + status.ToString());
        }
        if (status = stack.Open(); !status.ok()) {
          return fail(i, "recovery failed: " + status.ToString());
        }
        break;
      }
    }
    // Invariant: same key set after every op.
    auto keys_or = stack.index->Keys();
    if (!keys_or.ok()) {
      return fail(i, "keys failed: " + keys_or.status().ToString());
    }
    std::vector<ShardId> impl = keys_or.value();
    std::vector<ShardId> expected = model.Keys();
    std::sort(impl.begin(), impl.end());
    std::sort(expected.begin(), expected.end());
    if (impl != expected) {
      return fail(i, "key sets diverge");
    }
  }
  return std::nullopt;
}

PbtRunner<IndexOp> IndexConformanceHarness::MakeRunner(PbtConfig config) const {
  IndexHarnessOptions options = options_;
  return PbtRunner<IndexOp>(
      config,
      [options](Rng& rng, const std::vector<IndexOp>& prefix) {
        return GenIndexOp(rng, prefix, options);
      },
      [options](const std::vector<IndexOp>& ops) {
        IndexConformanceHarness harness(options);
        return harness.Run(ops);
      },
      [](const IndexOp& op) { return ShrinkIndexOp(op); });
}

// --- Chunk store harness ---------------------------------------------------------------

std::string ChunkOp::ToString() const {
  static const char* kNames[] = {"Get", "Put", "Forget", "Reclaim", "PumpIo"};
  std::ostringstream out;
  out << kNames[static_cast<int>(kind)] << "(pick=" << pick;
  if (kind == ChunkOpKind::kPut) {
    out << ", size=" << size;
  }
  out << ")";
  return out.str();
}

ChunkOp GenChunkOp(Rng& rng, const std::vector<ChunkOp>& prefix,
                   const ChunkHarnessOptions& options) {
  std::vector<uint32_t> weights = {/*Get*/ 25, /*Put*/ 30, /*Forget*/ 15, /*Reclaim*/ 15,
                                   /*Pump*/ 15};
  ChunkOp op;
  op.kind = static_cast<ChunkOpKind>(rng.WeightedIndex(weights));
  op.pick = static_cast<uint32_t>(rng.Below(64));
  if (op.kind == ChunkOpKind::kPut) {
    op.size = static_cast<uint32_t>(
        BiasedValueSize(rng, options.geometry.page_size, 43, options.max_payload));
    op.payload_seed = rng.Next();
  }
  return op;
}

std::vector<ChunkOp> ShrinkChunkOp(const ChunkOp& op) {
  std::vector<ChunkOp> out;
  if (op.pick > 0) {
    ChunkOp smaller = op;
    smaller.pick /= 2;
    out.push_back(smaller);
  }
  if (op.size > 0) {
    ChunkOp smaller = op;
    smaller.size /= 2;
    out.push_back(smaller);
  }
  if (op.kind != ChunkOpKind::kGet) {
    ChunkOp get = op;
    get.kind = ChunkOpKind::kGet;
    out.push_back(get);
  }
  return out;
}

namespace {

// The harness itself is the reclaim client: its live list is the reference set.
class HarnessReclaimClient : public ReclaimClient {
 public:
  struct LiveChunk {
    Locator impl;
    ChunkStoreModel::ModelLocator model;
  };

  std::vector<LiveChunk> live;

  Result<bool> IsReferenced(const Locator& loc) override {
    for (const LiveChunk& chunk : live) {
      if (chunk.impl == loc) {
        return true;
      }
    }
    return false;
  }

  Result<Dependency> UpdateReference(const Locator& old_loc, const Locator& new_loc,
                                     const Dependency& new_dep) override {
    for (LiveChunk& chunk : live) {
      if (chunk.impl == old_loc) {
        chunk.impl = new_loc;
      }
    }
    return Dependency();
  }

  Dependency DropGate() override { return Dependency(); }  // no crashes in this harness
};

}  // namespace

std::optional<std::string> ChunkConformanceHarness::Run(const std::vector<ChunkOp>& ops) {
  InMemoryDisk disk(options_.geometry);
  IoScheduler scheduler(&disk);
  ExtentManager extents(&disk, &scheduler);
  BufferCache cache(&extents, 128);
  ChunkStoreOptions chunk_options;
  chunk_options.max_payload_bytes = options_.max_payload;
  ChunkStore chunks(&extents, &cache, chunk_options);
  ChunkStoreModel model;
  HarnessReclaimClient client;
  std::set<ChunkStoreModel::ModelLocator> ever_issued;

  auto fail = [&](size_t i, const std::string& what) {
    return std::optional<std::string>("op#" + std::to_string(i) + " " + ops[i].ToString() +
                                      ": " + what);
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const ChunkOp& op = ops[i];
    switch (op.kind) {
      case ChunkOpKind::kGet: {
        if (client.live.empty()) {
          break;
        }
        const auto& chunk = client.live[op.pick % client.live.size()];
        auto impl_or = chunks.Get(chunk.impl);
        std::optional<Bytes> expected = model.Get(chunk.model);
        if (!impl_or.ok()) {
          return fail(i, "implementation get failed: " + impl_or.status().ToString());
        }
        if (!expected.has_value()) {
          return fail(i, "model lost a live chunk (locator bookkeeping broken)");
        }
        if (impl_or.value() != *expected) {
          return fail(i, "chunk contents diverge");
        }
        break;
      }
      case ChunkOpKind::kPut: {
        Rng payload_rng(op.payload_seed);
        Bytes data(op.size);
        for (auto& b : data) {
          b = static_cast<uint8_t>(payload_rng.Below(256));
        }
        auto put_or = chunks.Put(data, Dependency());
        if (!put_or.ok()) {
          if (put_or.code() == StatusCode::kResourceExhausted) {
            break;
          }
          return fail(i, "put failed: " + put_or.status().ToString());
        }
        chunks.Unpin(put_or.value().locator.extent);
        ChunkStoreModel::ModelLocator model_loc = model.Put(data);
        // Invariant: model locators are unique forever (seeded bug #15 violates this).
        if (!ever_issued.insert(model_loc).second) {
          return fail(i, "model re-used locator " + std::to_string(model_loc));
        }
        client.live.push_back({put_or.value().locator, model_loc});
        break;
      }
      case ChunkOpKind::kForget: {
        if (client.live.empty()) {
          break;
        }
        const size_t index = op.pick % client.live.size();
        model.Forget(client.live[index].model);
        client.live.erase(client.live.begin() + static_cast<ptrdiff_t>(index));
        break;
      }
      case ChunkOpKind::kReclaim: {
        std::vector<ExtentId> candidates = chunks.ReclaimableExtents();
        if (candidates.empty()) {
          break;
        }
        Status status = chunks.Reclaim(candidates[op.pick % candidates.size()], &client);
        if (!status.ok() && status.code() != StatusCode::kUnavailable &&
            status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "reclaim failed: " + status.ToString());
        }
        break;
      }
      case ChunkOpKind::kPumpIo:
        scheduler.Pump(1 + op.pick % 8);
        break;
    }
  }
  // Final sweep: every live chunk still readable with the right contents.
  for (size_t c = 0; c < client.live.size(); ++c) {
    auto impl_or = chunks.Get(client.live[c].impl);
    std::optional<Bytes> expected = model.Get(client.live[c].model);
    if (!impl_or.ok() || !expected.has_value() || impl_or.value() != *expected) {
      return std::optional<std::string>("final sweep: live chunk " + std::to_string(c) +
                                        " lost or corrupt");
    }
  }
  return std::nullopt;
}

PbtRunner<ChunkOp> ChunkConformanceHarness::MakeRunner(PbtConfig config) const {
  ChunkHarnessOptions options = options_;
  return PbtRunner<ChunkOp>(
      config,
      [options](Rng& rng, const std::vector<ChunkOp>& prefix) {
        return GenChunkOp(rng, prefix, options);
      },
      [options](const std::vector<ChunkOp>& ops) {
        ChunkConformanceHarness harness(options);
        return harness.Run(ops);
      },
      [](const ChunkOp& op) { return ShrinkChunkOp(op); });
}

}  // namespace ss
