#include "src/harness/failure_harness.h"

#include <algorithm>
#include <sstream>

#include "src/obs/flight_recorder.h"

namespace ss {

std::string FailureOp::ToString() const {
  static const char* kNames[] = {"Get",          "Put",          "Delete",
                                 "PumpIo",       "FlushAll",     "ClearFaults",
                                 "ResetHealth",  "ArmTransRead", "ArmTransWrite",
                                 "ArmPermanent", "DegradeDisk",  "EvacuateDisk",
                                 "CrashReboot",  "PutBatch"};
  std::ostringstream out;
  out << kNames[static_cast<int>(kind)];
  switch (kind) {
    case FailureOpKind::kGet:
    case FailureOpKind::kDelete:
      out << "(" << id << ")";
      break;
    case FailureOpKind::kPut:
      out << "(" << id << ", " << value.size() << "B)";
      break;
    case FailureOpKind::kPumpIo:
      out << "(disk " << disk << ", " << count << ")";
      break;
    case FailureOpKind::kClearFaults:
    case FailureOpKind::kResetHealth:
    case FailureOpKind::kDegradeDisk:
    case FailureOpKind::kEvacuateDisk:
      out << "(disk " << disk << ")";
      break;
    case FailureOpKind::kArmTransientRead:
    case FailureOpKind::kArmTransientWrite:
      out << "(disk " << disk << ", extent " << extent << ", x" << count << ")";
      break;
    case FailureOpKind::kArmPermanent:
      out << "(disk " << disk << ", extent " << extent << ")";
      break;
    case FailureOpKind::kCrashReboot:
      out << "(disk " << disk << ", seed " << seed << ")";
      break;
    case FailureOpKind::kPutBatch: {
      out << "(";
      for (size_t i = 0; i < batch.size(); ++i) {
        out << (i > 0 ? ", " : "") << batch[i].first << ":" << batch[i].second.size() << "B";
      }
      out << ")";
      break;
    }
    default:
      break;
  }
  return out.str();
}

FailureOp GenFailureOp(Rng& rng, const std::vector<FailureOp>& prefix,
                       const FailureHarnessOptions& options) {
  std::vector<uint32_t> weights = {/*Get*/ 20,      /*Put*/ 25,      /*Delete*/ 8,
                                   /*PumpIo*/ 5,    /*FlushAll*/ 5,  /*Clear*/ 6,
                                   /*ResetH*/ 4,    /*ArmRead*/ 9,   /*ArmWrite*/ 9,
                                   /*ArmPerm*/ 3,   /*Degrade*/ 4,   /*Evacuate*/ 4,
                                   /*Crash*/ 5,     /*PutBatch*/ 10};
  FailureOp op;
  op.kind = static_cast<FailureOpKind>(rng.WeightedIndex(weights));
  std::vector<uint64_t> used;
  for (const FailureOp& prev : prefix) {
    if (prev.kind == FailureOpKind::kPut) {
      used.push_back(prev.id);
    }
    for (const auto& [batch_id, batch_value] : prev.batch) {
      used.push_back(batch_id);
    }
  }
  const uint32_t disk_count = static_cast<uint32_t>(options.node.disk_count);
  switch (op.kind) {
    case FailureOpKind::kGet:
      op.id = BiasedKey(rng, used, 0.75, options.key_bound);
      break;
    case FailureOpKind::kPut: {
      op.id = BiasedKey(rng, used, 0.5, options.key_bound);
      op.value.resize(rng.Below(options.max_value_bytes + 1));
      for (auto& b : op.value) {
        b = static_cast<uint8_t>(rng.Below(256));
      }
      break;
    }
    case FailureOpKind::kDelete:
      op.id = BiasedKey(rng, used, 0.8, options.key_bound);
      break;
    case FailureOpKind::kPumpIo:
      op.disk = static_cast<uint32_t>(rng.Below(disk_count));
      op.count = 1 + static_cast<uint32_t>(rng.Below(4));
      break;
    case FailureOpKind::kArmTransientRead:
    case FailureOpKind::kArmTransientWrite:
      op.disk = static_cast<uint32_t>(rng.Below(disk_count));
      // Extent 0 is the superblock; data lives above it.
      op.extent = 1 + static_cast<uint32_t>(rng.Below(options.node.geometry.extent_count - 1));
      // Burst lengths straddle the retry budget: about half are absorbed
      // transparently, the rest surface as kIoError.
      op.count = 1 + static_cast<uint32_t>(
                         rng.Below(2ull * options.node.store.retry.max_attempts));
      break;
    case FailureOpKind::kArmPermanent:
      op.disk = static_cast<uint32_t>(rng.Below(disk_count));
      op.extent = 1 + static_cast<uint32_t>(rng.Below(options.node.geometry.extent_count - 1));
      break;
    case FailureOpKind::kClearFaults:
    case FailureOpKind::kResetHealth:
    case FailureOpKind::kDegradeDisk:
    case FailureOpKind::kEvacuateDisk:
      op.disk = static_cast<uint32_t>(rng.Below(disk_count));
      break;
    case FailureOpKind::kCrashReboot:
      op.disk = static_cast<uint32_t>(rng.Below(disk_count));
      op.seed = rng.Next();
      break;
    case FailureOpKind::kPutBatch: {
      const size_t items = 2 + rng.Below(5);  // 2..6 items, spread across disks
      for (size_t k = 0; k < items; ++k) {
        Bytes value(rng.Below(options.max_value_bytes + 1));
        for (auto& b : value) {
          b = static_cast<uint8_t>(rng.Below(256));
        }
        op.batch.emplace_back(BiasedKey(rng, used, 0.5, options.key_bound), std::move(value));
      }
      break;
    }
    default:
      break;
  }
  return op;
}

std::vector<FailureOp> ShrinkFailureOp(const FailureOp& op) {
  std::vector<FailureOp> out;
  if (op.id > 0) {
    FailureOp smaller = op;
    smaller.id /= 2;
    out.push_back(smaller);
  }
  if (!op.value.empty()) {
    FailureOp shorter = op;
    shorter.value.resize(op.value.size() / 2);
    out.push_back(shorter);
  }
  if (op.count > 1) {
    FailureOp fewer = op;
    fewer.count /= 2;
    out.push_back(fewer);
  }
  if (op.batch.size() > 1) {
    // Halve the batch, and try the single-Put equivalent of its first item.
    FailureOp fewer = op;
    fewer.batch.resize(op.batch.size() / 2);
    out.push_back(fewer);
    FailureOp single;
    single.kind = FailureOpKind::kPut;
    single.id = op.batch.front().first;
    single.value = op.batch.front().second;
    out.push_back(single);
  }
  if (op.kind != FailureOpKind::kGet) {
    FailureOp get;
    get.kind = FailureOpKind::kGet;
    get.id = op.id;
    out.push_back(get);
  }
  return out;
}

std::optional<std::string> FailureConformanceHarness::Run(const std::vector<FailureOp>& ops) {
  // Recorder armed means this is the diagnostic re-run of a minimized sequence: lint
  // the dependency graph at every barrier and persist analysis reports as artifacts.
  std::optional<ScopedDepLint> lint;
  std::optional<ScopedLockOrderFlightSink> lockorder_sink;
  std::optional<ScopedDepLintFlightSink> deplint_sink;
  if (options_.recorder != nullptr) {
    lint.emplace(true);
    lockorder_sink.emplace(options_.recorder);
    deplint_sink.emplace(options_.recorder);
  }
  auto node_or = NodeServer::Create(options_.node);
  if (!node_or.ok()) {
    return "node create failed: " + node_or.status().ToString();
  }
  std::unique_ptr<NodeServer> node = std::move(node_or).value();
  // Metric oracle: every request-plane call this harness issues must show up as
  // exactly one rpc.<op>.{ok,err} increment, and the trace ring must have recorded at
  // least that many events. Counted locally, checked against snapshot deltas at the end.
  const MetricsSnapshot metrics_before = node->MetricsSnapshot();
  uint64_t puts_issued = 0;
  uint64_t gets_issued = 0;
  uint64_t deletes_issued = 0;
  uint64_t batches_issued = 0;
  uint64_t batch_items_issued = 0;
  KvStoreModel model;
  // Forward-progress log: (owning disk at op time, dependency). Entries for a disk are
  // dropped when that disk crash-reboots — their writebacks died with the scheduler.
  std::vector<std::pair<int, Dependency>> dep_log;

  auto fail = [&](size_t i, const std::string& what) {
    const std::string message =
        "op#" + std::to_string(i) + " " + ops[i].ToString() + ": " + what;
    if (options_.recorder != nullptr) {
      FlightRecord record;
      record.harness = "failure_conformance";
      record.violation = message;
      record.ops.reserve(ops.size());
      for (const FailureOp& o : ops) {
        record.ops.push_back(o.ToString());
      }
      CaptureNode(*node, record);
      (void)options_.recorder->Write(record);
    }
    return std::optional<std::string>(message);
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const FailureOp& op = ops[i];
    // The fault-aware oracle for request-plane ops: what failures does the pre-op
    // state license for the disk this shard routes to?
    const int routed = node->DiskFor(op.id);
    const DiskHealth pre_health = node->Health(routed);
    const bool armed = node->disk(routed).fault_injector().AnyArmed();
    const bool read_gated = !node->InService(routed) || pre_health == DiskHealth::kFailed;
    const bool write_gated = read_gated || pre_health == DiskHealth::kDegraded;

    switch (op.kind) {
      case FailureOpKind::kGet: {
        auto got = node->Get(op.id);
        ++gets_issued;
        std::optional<Bytes> expected = model.Get(op.id);
        if (got.ok()) {
          if (!expected.has_value() || got.value() != *expected) {
            return fail(i, "wrong or phantom data");
          }
        } else if (got.code() == StatusCode::kNotFound) {
          if (expected.has_value()) {
            return fail(i, "acknowledged write lost");
          }
        } else if (got.code() == StatusCode::kUnavailable) {
          if (!read_gated) {
            return fail(i, "Unavailable without a service/health cause");
          }
        } else if (got.code() == StatusCode::kIoError ||
                   got.code() == StatusCode::kDiskFailed) {
          if (!armed) {
            return fail(i, "IO error with no fault armed: " + got.status().ToString());
          }
        } else {
          return fail(i, "unexpected error: " + got.status().ToString());
        }
        break;
      }
      case FailureOpKind::kPut: {
        auto dep_or = node->Put(op.id, op.value);
        ++puts_issued;
        if (dep_or.ok()) {
          model.Put(op.id, op.value, dep_or.value());
          dep_log.emplace_back(routed, dep_or.value());
        } else if (dep_or.code() == StatusCode::kUnavailable) {
          if (!write_gated) {
            return fail(i, "Unavailable without a service/health cause");
          }
        } else if (dep_or.code() == StatusCode::kIoError ||
                   dep_or.code() == StatusCode::kDiskFailed) {
          // A failed mutation must be an atomic no-op; the model keeps the old value
          // and the final sweep (plus any later Get) checks that is what is served.
          if (!armed) {
            return fail(i, "IO error with no fault armed: " + dep_or.status().ToString());
          }
        } else if (dep_or.code() != StatusCode::kResourceExhausted) {
          return fail(i, "unexpected error: " + dep_or.status().ToString());
        }
        break;
      }
      case FailureOpKind::kDelete: {
        auto dep_or = node->Delete(op.id);
        ++deletes_issued;
        if (dep_or.ok()) {
          model.Delete(op.id, dep_or.value());
          dep_log.emplace_back(routed, dep_or.value());
        } else if (dep_or.code() == StatusCode::kUnavailable) {
          if (!write_gated) {
            return fail(i, "Unavailable without a service/health cause");
          }
        } else if (dep_or.code() == StatusCode::kIoError ||
                   dep_or.code() == StatusCode::kDiskFailed) {
          if (!armed) {
            return fail(i, "IO error with no fault armed: " + dep_or.status().ToString());
          }
        } else {
          return fail(i, "unexpected error: " + dep_or.status().ToString());
        }
        break;
      }
      case FailureOpKind::kPumpIo: {
        std::shared_ptr<ShardStore> target = node->store(static_cast<int>(op.disk));
        if (target != nullptr) {
          target->PumpIo(op.count);
        }
        break;
      }
      case FailureOpKind::kFlushAll: {
        // Flushing an index writes LSM metadata through the extent layer, so armed
        // faults on any disk can surface here too.
        bool any_armed = false;
        for (int d = 0; d < node->disk_count(); ++d) {
          any_armed = any_armed || node->disk(d).fault_injector().AnyArmed();
        }
        Status status = node->FlushAllDisks();
        if (!status.ok() && status.code() != StatusCode::kResourceExhausted &&
            !(any_armed && (status.code() == StatusCode::kIoError ||
                            status.code() == StatusCode::kDiskFailed))) {
          return fail(i, "flush failed: " + status.ToString());
        }
        break;
      }
      case FailureOpKind::kClearFaults:
        node->disk(static_cast<int>(op.disk)).fault_injector().Clear();
        break;
      case FailureOpKind::kResetHealth: {
        Status status = node->ResetDiskHealth(static_cast<int>(op.disk));
        if (!status.ok() && status.code() != StatusCode::kUnavailable) {
          return fail(i, "reset health failed: " + status.ToString());
        }
        break;
      }
      case FailureOpKind::kArmTransientRead:
        node->disk(static_cast<int>(op.disk))
            .fault_injector()
            .FailReadTimes(op.extent, op.count);
        break;
      case FailureOpKind::kArmTransientWrite:
        node->disk(static_cast<int>(op.disk))
            .fault_injector()
            .FailWriteTimes(op.extent, op.count);
        break;
      case FailureOpKind::kArmPermanent:
        node->disk(static_cast<int>(op.disk)).fault_injector().FailAlways(op.extent, true);
        break;
      case FailureOpKind::kDegradeDisk: {
        Status status = node->MarkDiskDegraded(static_cast<int>(op.disk));
        if (!status.ok() && status.code() != StatusCode::kUnavailable) {
          return fail(i, "degrade failed: " + status.ToString());
        }
        break;
      }
      case FailureOpKind::kEvacuateDisk: {
        // Evacuation is best-effort under fire: it may abort on injected faults
        // (kIoError/kDiskFailed), a gated source, or full peers — each migrated shard
        // has already committed, so any abort leaves the node consistent. The model is
        // untouched either way; later Gets check the data survived the moves.
        Status status = node->EvacuateDisk(static_cast<int>(op.disk));
        if (!status.ok() && status.code() != StatusCode::kUnavailable &&
            status.code() != StatusCode::kIoError &&
            status.code() != StatusCode::kDiskFailed &&
            status.code() != StatusCode::kResourceExhausted) {
          return fail(i, "evacuate failed: " + status.ToString());
        }
        break;
      }
      case FailureOpKind::kCrashReboot: {
        // Snapshot which touched keys the disk owns before the crash rewrites routing.
        std::vector<ShardId> owned;
        for (ShardId id : model.TouchedKeys()) {
          if (node->DiskFor(id) == static_cast<int>(op.disk)) {
            owned.push_back(id);
          }
        }
        Status status = node->CrashAndRecoverDisk(static_cast<int>(op.disk), op.seed);
        if (!status.ok()) {
          return fail(i, "crash-reboot failed: " + status.ToString());
        }
        // The crashed scheduler dropped its pending writebacks: dependencies recorded
        // against this disk can never become persistent.
        dep_log.erase(std::remove_if(dep_log.begin(), dep_log.end(),
                                     [&](const auto& entry) {
                                       return entry.first == static_cast<int>(op.disk);
                                     }),
                      dep_log.end());
        // Collapse the model per owned key by the persistence property (injector was
        // cleared by the reboot, health is back to healthy: the observation is clean).
        for (ShardId id : owned) {
          auto got = node->Get(id);
          ++gets_issued;
          std::optional<Bytes> observed;
          if (got.ok()) {
            observed = got.value();
          } else if (got.code() != StatusCode::kNotFound) {
            return fail(i, "post-crash key " + std::to_string(id) +
                               " unobservable: " + got.status().ToString());
          }
          if (!model.AdoptPostCrash(id, observed)) {
            return fail(i, "crash consistency violation on key " + std::to_string(id));
          }
        }
        break;
      }
      case FailureOpKind::kPutBatch: {
        // Capture each item's routing and gating state before the call: the fault
        // oracle is per item, exactly as for a single Put.
        struct ItemState {
          int routed = -1;
          bool write_gated = false;
          bool armed = false;
        };
        std::vector<ItemState> pre(op.batch.size());
        for (size_t k = 0; k < op.batch.size(); ++k) {
          ItemState& st = pre[k];
          st.routed = node->DiskFor(op.batch[k].first);
          const DiskHealth h = node->Health(st.routed);
          st.write_gated = !node->InService(st.routed) || h == DiskHealth::kFailed ||
                           h == DiskHealth::kDegraded;
          st.armed = node->disk(st.routed).fault_injector().AnyArmed();
        }
        BatchResult batch = node->PutBatch(op.batch);
        ++batches_issued;
        batch_items_issued += op.batch.size();
        if (batch.items.size() != op.batch.size()) {
          return fail(i, "batch returned " + std::to_string(batch.items.size()) +
                             " results for " + std::to_string(op.batch.size()) + " items");
        }
        for (size_t k = 0; k < batch.items.size(); ++k) {
          const BatchItemResult& item = batch.items[k];
          if (item.status.ok()) {
            model.Put(op.batch[k].first, op.batch[k].second, item.dep);
            dep_log.emplace_back(item.disk, item.dep);
          } else if (item.status.code() == StatusCode::kUnavailable) {
            if (!pre[k].write_gated) {
              return fail(i, "batch item " + std::to_string(k) +
                                 " Unavailable without a service/health cause");
            }
          } else if (item.status.code() == StatusCode::kIoError ||
                     item.status.code() == StatusCode::kDiskFailed) {
            if (!pre[k].armed) {
              return fail(i, "batch item " + std::to_string(k) +
                                 " IO error with no fault armed: " + item.status.ToString());
            }
          } else if (item.status.code() != StatusCode::kResourceExhausted) {
            return fail(i, "batch item " + std::to_string(k) +
                               " unexpected error: " + item.status.ToString());
          }
        }
        break;
      }
    }
  }

  // --- Forward progress: all faults clear, everything must work again. ---------------
  for (int d = 0; d < node->disk_count(); ++d) {
    node->disk(d).fault_injector().Clear();
  }
  for (int d = 0; d < node->disk_count(); ++d) {
    if (!node->InService(d)) {
      if (Status status = node->RestoreDisk(d); !status.ok()) {
        return std::optional<std::string>("final restore of disk " + std::to_string(d) +
                                          " failed: " + status.ToString());
      }
    }
    // Reset unconditionally: even when the node-level health still reads healthy, the
    // store's tracker may hold a stale degraded/failed verdict (e.g. a flush hit a
    // permanent fault with no request-plane op afterwards to absorb it), and the first
    // sweep read would absorb it and gate the disk.
    if (Status status = node->ResetDiskHealth(d); !status.ok()) {
      return std::optional<std::string>("final health reset of disk " + std::to_string(d) +
                                        " failed: " + status.ToString());
    }
  }
  if (Status status = node->FlushAllDisks(); !status.ok()) {
    return std::optional<std::string>("final flush failed: " + status.ToString());
  }
  for (const auto& [disk, dep] : dep_log) {
    if (!dep.IsPersistent()) {
      return std::optional<std::string>(
          "forward progress: dependency on disk " + std::to_string(disk) +
          " not persistent after faults cleared and all disks flushed");
    }
  }
  for (ShardId id : model.TouchedKeys()) {
    std::optional<Bytes> expected = model.Get(id);
    auto got = node->Get(id);
    ++gets_issued;
    if (got.ok()) {
      if (!expected.has_value() || got.value() != *expected) {
        return std::optional<std::string>("final sweep: shard " + std::to_string(id) +
                                          " wrong or phantom");
      }
    } else if (got.code() == StatusCode::kNotFound) {
      if (expected.has_value()) {
        return std::optional<std::string>("final sweep: shard " + std::to_string(id) +
                                          " lost across the fault sequence");
      }
    } else {
      // With every fault cleared and health reset, errors are forward-progress
      // violations outright.
      return std::optional<std::string>("final sweep: error on shard " + std::to_string(id) +
                                        " after faults cleared: " + got.status().ToString());
    }
  }

  // --- Metric oracle: snapshot deltas must agree with the op count. ------------------
  const MetricsSnapshot metrics_after = node->MetricsSnapshot();
  const uint64_t put_delta = CounterDelta(metrics_before, metrics_after, "rpc.put.ok") +
                             CounterDelta(metrics_before, metrics_after, "rpc.put.err");
  const uint64_t get_delta = CounterDelta(metrics_before, metrics_after, "rpc.get.ok") +
                             CounterDelta(metrics_before, metrics_after, "rpc.get.err");
  const uint64_t delete_delta =
      CounterDelta(metrics_before, metrics_after, "rpc.delete.ok") +
      CounterDelta(metrics_before, metrics_after, "rpc.delete.err");
  if (put_delta != puts_issued || get_delta != gets_issued || delete_delta != deletes_issued) {
    return std::optional<std::string>(
        "metric oracle: rpc counter deltas put=" + std::to_string(put_delta) + "/" +
        std::to_string(puts_issued) + " get=" + std::to_string(get_delta) + "/" +
        std::to_string(gets_issued) + " delete=" + std::to_string(delete_delta) + "/" +
        std::to_string(deletes_issued) + " disagree with ops issued");
  }
  // Batched puts count in their own counters (never in rpc.put.*): one rpc.batch.puts
  // per call and exactly one item_ok/item_err per item.
  const uint64_t batch_delta = CounterDelta(metrics_before, metrics_after, "rpc.batch.puts");
  const uint64_t batch_item_delta =
      CounterDelta(metrics_before, metrics_after, "rpc.batch.item_ok") +
      CounterDelta(metrics_before, metrics_after, "rpc.batch.item_err");
  if (batch_delta != batches_issued || batch_item_delta != batch_items_issued) {
    return std::optional<std::string>(
        "metric oracle: batch counter deltas batches=" + std::to_string(batch_delta) + "/" +
        std::to_string(batches_issued) + " items=" + std::to_string(batch_item_delta) + "/" +
        std::to_string(batch_items_issued) + " disagree with ops issued");
  }
  // Every request-plane op records exactly one trace event; control-plane ops add more.
  const uint64_t request_events = puts_issued + gets_issued + deletes_issued + batches_issued;
  if (node->trace().total_recorded() < request_events) {
    return std::optional<std::string>(
        "metric oracle: trace ring recorded " + std::to_string(node->trace().total_recorded()) +
        " events, fewer than the " + std::to_string(request_events) + " request-plane ops");
  }
  return std::nullopt;
}

PbtRunner<FailureOp> FailureConformanceHarness::MakeRunner(PbtConfig config) const {
  FailureHarnessOptions options = options_;
  return PbtRunner<FailureOp>(
      config,
      [options](Rng& rng, const std::vector<FailureOp>& prefix) {
        return GenFailureOp(rng, prefix, options);
      },
      [options](const std::vector<FailureOp>& ops) {
        FailureConformanceHarness harness(options);
        return harness.Run(ops);
      },
      [](const FailureOp& op) { return ShrinkFailureOp(op); });
}

}  // namespace ss
