#include "src/harness/cluster_harness.h"

#include <algorithm>
#include <sstream>

#include "src/mc/linearizability.h"
#include "src/mc/mc.h"
#include "src/obs/flight_recorder.h"

namespace ss {

std::string ClusterOp::ToString() const {
  static const char* kNames[] = {"Get",      "Put",       "Delete",        "Tick",
                                 "HealAll",  "HealLink",  "RestartNode",   "PartitionLink",
                                 "CrashNode", "NodeJoin", "NodeLeave"};
  std::ostringstream out;
  out << kNames[static_cast<int>(kind)];
  auto endpoint = [](int slot) {
    return slot < 0 ? std::string("client") : "n" + std::to_string(slot);
  };
  switch (kind) {
    case ClusterOpKind::kGet:
    case ClusterOpKind::kDelete:
      out << "(" << key << ")";
      break;
    case ClusterOpKind::kPut:
      out << "(" << key << ", " << value.size() << "B)";
      break;
    case ClusterOpKind::kTick:
      out << "(x" << count << ")";
      break;
    case ClusterOpKind::kHealLink:
    case ClusterOpKind::kPartitionLink:
      out << "(" << endpoint(a) << ", " << endpoint(b) << ")";
      break;
    case ClusterOpKind::kRestartNode:
    case ClusterOpKind::kCrashNode:
    case ClusterOpKind::kNodeLeave:
      out << "(" << endpoint(a) << ")";
      break;
    default:
      break;
  }
  return out.str();
}

// --- ClusterModel ---------------------------------------------------------------------

void ClusterModel::Adopt(ShardId key, const Record& record) {
  Record& slot = committed_[key];
  if (slot.version <= record.version) {
    slot = record;
  }
  auto it = uncertain_.find(key);
  if (it != uncertain_.end()) {
    auto& writes = it->second;
    for (auto u = writes.begin(); u != writes.end() && u->first <= slot.version;) {
      u = writes.erase(u);
    }
    if (writes.empty()) {
      uncertain_.erase(it);
    }
  }
}

void ClusterModel::OnWriteAck(ShardId key, uint64_t version, bool tombstone,
                              const Bytes& value) {
  Adopt(key, Record{version, tombstone, value});
}

void ClusterModel::OnWriteFail(ShardId key, uint64_t version, bool tombstone,
                               const Bytes& value) {
  auto it = committed_.find(key);
  const uint64_t floor = it != committed_.end() ? it->second.version : 0;
  if (version > floor) {
    uncertain_[key][version] = Record{version, tombstone, value};
  }
}

std::optional<std::string> ClusterModel::OnRead(ShardId key, bool found, uint64_t version,
                                                const Bytes& value) {
  const Record* committed = Committed(key);
  if (version == 0) {
    if (found) {
      return "read claims a record at version 0";
    }
    if (committed != nullptr) {
      return "committed version " + std::to_string(committed->version) +
             " lost: read saw no record at all";
    }
    return std::nullopt;  // nothing ever committed; absence is the legal floor
  }
  if (committed != nullptr && version < committed->version) {
    return "stale read: served version " + std::to_string(version) +
           " below committed version " + std::to_string(committed->version);
  }
  if (committed != nullptr && version == committed->version) {
    if (found == committed->tombstone) {
      return "read at committed version " + std::to_string(version) +
             " disagrees on key presence";
    }
    if (found && value != committed->value) {
      return "wrong bytes served for committed version " + std::to_string(version);
    }
    return std::nullopt;
  }
  const Record* u = Uncertain(key, version);
  if (u == nullptr) {
    return "phantom version " + std::to_string(version) + ": no write produced it";
  }
  if (found == u->tombstone) {
    return "read at uncertain version " + std::to_string(version) +
           " disagrees on key presence";
  }
  if (found && value != u->value) {
    return "wrong bytes served for uncertain version " + std::to_string(version);
  }
  // The partial write surfaced; from here on it is the floor (the coordinator
  // re-established quorum overlap before serving it).
  const Record adopted = *u;
  Adopt(key, adopted);
  return std::nullopt;
}

const ClusterModel::Record* ClusterModel::Committed(ShardId key) const {
  auto it = committed_.find(key);
  return it == committed_.end() ? nullptr : &it->second;
}

const ClusterModel::Record* ClusterModel::Uncertain(ShardId key, uint64_t version) const {
  auto it = uncertain_.find(key);
  if (it == uncertain_.end()) {
    return nullptr;
  }
  auto u = it->second.find(version);
  return u == it->second.end() ? nullptr : &u->second;
}

std::vector<ShardId> ClusterModel::TouchedKeys() const {
  std::vector<ShardId> out;
  for (const auto& [key, record] : committed_) {
    out.push_back(key);
  }
  for (const auto& [key, writes] : uncertain_) {
    if (committed_.count(key) == 0) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- Generation / shrinking -----------------------------------------------------------

ClusterOp GenClusterOp(Rng& rng, const std::vector<ClusterOp>& prefix,
                       const ClusterHarnessOptions& options) {
  std::vector<uint32_t> weights = {/*Get*/ 22,     /*Put*/ 26,      /*Delete*/ 8,
                                   /*Tick*/ 10,    /*HealAll*/ 4,   /*HealLink*/ 4,
                                   /*Restart*/ 5,  /*Partition*/ 8, /*Crash*/ 5,
                                   /*Join*/ 4,     /*Leave*/ 4};
  ClusterOp op;
  op.kind = static_cast<ClusterOpKind>(rng.WeightedIndex(weights));
  std::vector<uint64_t> used;
  for (const ClusterOp& prev : prefix) {
    if (prev.kind == ClusterOpKind::kPut) {
      used.push_back(prev.key);
    }
  }
  switch (op.kind) {
    case ClusterOpKind::kGet:
      op.key = BiasedKey(rng, used, 0.75, options.key_bound);
      break;
    case ClusterOpKind::kPut: {
      op.key = BiasedKey(rng, used, 0.5, options.key_bound);
      op.value.resize(rng.Below(options.max_value_bytes + 1));
      for (auto& b : op.value) {
        b = static_cast<uint8_t>(rng.Below(256));
      }
      break;
    }
    case ClusterOpKind::kDelete:
      op.key = BiasedKey(rng, used, 0.8, options.key_bound);
      break;
    case ClusterOpKind::kTick:
      op.count = 1 + static_cast<uint32_t>(rng.Below(3));
      break;
    case ClusterOpKind::kHealLink:
    case ClusterOpKind::kPartitionLink:
      // Slot -1 targets the coordinator's own links: client-side partitions are the
      // split-brain-routing corner and deserve their share of the alphabet.
      op.a = rng.Chance(0.4) ? -1 : static_cast<int>(rng.Below(8));
      op.b = static_cast<int>(rng.Below(8));
      break;
    case ClusterOpKind::kRestartNode:
    case ClusterOpKind::kCrashNode:
    case ClusterOpKind::kNodeLeave:
      op.a = static_cast<int>(rng.Below(8));
      break;
    default:
      break;
  }
  return op;
}

std::vector<ClusterOp> ShrinkClusterOp(const ClusterOp& op) {
  std::vector<ClusterOp> out;
  if (op.key > 0) {
    ClusterOp smaller = op;
    smaller.key /= 2;
    out.push_back(smaller);
  }
  if (!op.value.empty()) {
    ClusterOp shorter = op;
    shorter.value.resize(op.value.size() / 2);
    out.push_back(shorter);
  }
  if (op.count > 1) {
    ClusterOp fewer = op;
    fewer.count /= 2;
    out.push_back(fewer);
  }
  if (op.a > 0 || op.b > 0) {
    ClusterOp lower = op;
    lower.a = op.a > 0 ? op.a / 2 : op.a;
    lower.b = op.b / 2;
    out.push_back(lower);
  }
  if (op.kind != ClusterOpKind::kGet) {
    ClusterOp get;
    get.kind = ClusterOpKind::kGet;
    get.key = op.key;
    out.push_back(get);
  }
  return out;
}

// --- Conformance run ------------------------------------------------------------------

namespace {

int ResolveSlot(const std::vector<int>& members, int slot) {
  if (slot < 0 || members.empty()) {
    return cluster::ClusterNet::kClientId;
  }
  return members[static_cast<size_t>(slot) % members.size()];
}

// Is any fault channel active that can legally fail a client op right now?
bool FaultsPossible(cluster::ClusterCoordinator& cluster,
                    const ClusterHarnessOptions& options) {
  const cluster::ClusterNetOptions& net = options.cluster.net;
  if (net.drop_rate > 0.0) {
    return true;  // the loss channel never sleeps
  }
  if (options.cluster.op_timeout_ticks > 0 &&
      net.base_delay_ticks + net.delay_jitter_ticks > options.cluster.op_timeout_ticks) {
    return true;  // deliveries can time out on delay alone
  }
  if (cluster.net().partitioned_link_count() > 0 || cluster.PendingKeyCount() > 0) {
    return true;
  }
  for (const int id : cluster.Nodes()) {
    if (cluster.net().Crashed(id) ||
        cluster.HealthOf(id) != cluster::NodeHealth::kHealthy) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<std::string> ClusterConformanceHarness::Run(const std::vector<ClusterOp>& ops) {
  std::optional<ScopedLockOrderFlightSink> lockorder_sink;
  if (options_.recorder != nullptr) {
    lockorder_sink.emplace(options_.recorder);
  }
  auto cluster_or = cluster::ClusterCoordinator::Create(options_.cluster);
  if (!cluster_or.ok()) {
    return "cluster create failed: " + cluster_or.status().ToString();
  }
  std::unique_ptr<cluster::ClusterCoordinator> cluster = std::move(cluster_or).value();
  const MetricsSnapshot metrics_before = cluster->MetricsSnapshot();
  uint64_t puts_issued = 0;
  uint64_t gets_issued = 0;
  uint64_t deletes_issued = 0;
  uint64_t last_trace_id = 0;  // root span id of the most recent client op
  ClusterModel model;

  auto record_failure = [&](const std::string& message) {
    if (options_.recorder != nullptr) {
      FlightRecord record;
      record.harness = "cluster_quorum";
      record.violation = message;
      record.ops.reserve(ops.size());
      for (const ClusterOp& o : ops) {
        record.ops.push_back(o.ToString());
      }
      record.metrics_json = cluster->MetricsSnapshot().ToJson();
      record.spans_json = cluster->spans().ToJson();
      record.cluster_json = cluster->ClusterSnapshotJson();
      if (last_trace_id != 0) {
        record.cluster_trace_json = cluster->AssembleTrace(last_trace_id).ToJson();
      }
      (void)options_.recorder->Write(record);
    }
    return std::optional<std::string>(message);
  };
  auto fail = [&](size_t i, const std::string& what) {
    return record_failure("op#" + std::to_string(i) + " " + ops[i].ToString() + ": " + what);
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const ClusterOp& op = ops[i];
    // Pre-op snapshot: the legality oracle judges a failure by the fault state the op
    // started under, not by whatever the op itself changed.
    const bool faults = FaultsPossible(*cluster, options_);
    const std::vector<int> members = cluster->Nodes();
    switch (op.kind) {
      case ClusterOpKind::kGet: {
        const cluster::QuorumResult r = cluster->Get(op.key);
        ++gets_issued;
        last_trace_id = r.trace_id;
        if (r.status.ok() || r.status.code() == StatusCode::kNotFound) {
          if (auto err = model.OnRead(op.key, r.found, r.version, r.value)) {
            return fail(i, *err);
          }
        } else if (r.status.code() == StatusCode::kUnavailable ||
                   r.status.code() == StatusCode::kIoError) {
          if (!faults) {
            return fail(i, "read failed with no fault active: " + r.status.ToString());
          }
        } else {
          return fail(i, "unexpected read error: " + r.status.ToString());
        }
        break;
      }
      case ClusterOpKind::kPut: {
        const cluster::QuorumResult r = cluster->Put(op.key, ByteSpan(op.value));
        ++puts_issued;
        last_trace_id = r.trace_id;
        if (r.ok()) {
          model.OnWriteAck(op.key, r.version, false, op.value);
        } else if (r.status.code() == StatusCode::kUnavailable ||
                   r.status.code() == StatusCode::kIoError) {
          if (!faults) {
            return fail(i, "write failed with no fault active: " + r.status.ToString());
          }
          model.OnWriteFail(op.key, r.version, false, op.value);
        } else {
          return fail(i, "unexpected write error: " + r.status.ToString());
        }
        break;
      }
      case ClusterOpKind::kDelete: {
        const cluster::QuorumResult r = cluster->Delete(op.key);
        ++deletes_issued;
        last_trace_id = r.trace_id;
        if (r.ok()) {
          model.OnWriteAck(op.key, r.version, true, Bytes{});
        } else if (r.status.code() == StatusCode::kUnavailable ||
                   r.status.code() == StatusCode::kIoError) {
          if (!faults) {
            return fail(i, "delete failed with no fault active: " + r.status.ToString());
          }
          model.OnWriteFail(op.key, r.version, true, Bytes{});
        } else {
          return fail(i, "unexpected delete error: " + r.status.ToString());
        }
        break;
      }
      case ClusterOpKind::kTick:
        cluster->Tick(op.count);
        break;
      case ClusterOpKind::kHealAll:
        cluster->net().HealAllLinks();
        break;
      case ClusterOpKind::kHealLink:
      case ClusterOpKind::kPartitionLink: {
        const int a = op.a < 0 ? cluster::ClusterNet::kClientId : ResolveSlot(members, op.a);
        const int b = ResolveSlot(members, op.b);
        if (a == b) {
          break;
        }
        if (op.kind == ClusterOpKind::kPartitionLink) {
          cluster->net().PartitionLink(a, b);
        } else {
          cluster->net().HealLink(a, b);
        }
        break;
      }
      case ClusterOpKind::kRestartNode: {
        const Status s = cluster->RestartNode(ResolveSlot(members, op.a));
        if (!s.ok()) {
          return fail(i, "restart failed: " + s.ToString());
        }
        break;
      }
      case ClusterOpKind::kCrashNode: {
        const Status s = cluster->CrashNode(ResolveSlot(members, op.a));
        if (!s.ok()) {
          return fail(i, "crash failed: " + s.ToString());
        }
        break;
      }
      case ClusterOpKind::kNodeJoin: {
        const int id = members.empty() ? 0 : members.back() + 1;
        const Status s = cluster->NodeJoin(id);
        if (!s.ok()) {
          return fail(i, "join failed: " + s.ToString());
        }
        break;
      }
      case ClusterOpKind::kNodeLeave: {
        const int id = ResolveSlot(members, op.a);
        const size_t pending = cluster->PendingKeyCount();
        const Status s = cluster->NodeLeave(id);
        if (s.ok()) {
          break;
        }
        if (s.code() == StatusCode::kInvalidArgument) {
          if (members.size() > options_.cluster.replication) {
            return fail(i, "leave refused without a membership cause: " + s.ToString());
          }
        } else if (s.code() == StatusCode::kUnavailable) {
          if (pending == 0 && !faults) {
            return fail(i, "leave aborted with no fault active: " + s.ToString());
          }
        } else {
          return fail(i, "unexpected leave error: " + s.ToString());
        }
        break;
      }
    }
  }

  // --- Forward progress: heal everything, drain, and everything must converge. --------
  cluster->net().HealAllLinks();
  cluster->net().SetLossRates(0.0, 0.0);
  for (const int id : cluster->Nodes()) {
    if (cluster->net().Crashed(id)) {
      if (const Status s = cluster->RestartNode(id); !s.ok()) {
        return record_failure("final restart of node " + std::to_string(id) +
                              " failed: " + s.ToString());
      }
    }
  }
  uint64_t rounds = 0;
  while ((cluster->HintCount() > 0 || cluster->PendingKeyCount() > 0) &&
         rounds < options_.max_drain_rounds) {
    cluster->Tick();
    ++rounds;
  }
  if (cluster->HintCount() > 0 || cluster->PendingKeyCount() > 0) {
    return record_failure(
        "forward progress: " + std::to_string(cluster->HintCount()) + " hints and " +
        std::to_string(cluster->PendingKeyCount()) +
        " pending rebalance moves failed to drain with all faults cleared");
  }
  for (const ShardId key : model.TouchedKeys()) {
    const cluster::QuorumResult r = cluster->Get(key);
    ++gets_issued;
    if (!r.status.ok() && r.status.code() != StatusCode::kNotFound) {
      return record_failure("final sweep: read of key " + std::to_string(key) +
                            " failed after faults cleared: " + r.status.ToString());
    }
    if (auto err = model.OnRead(key, r.found, r.version, r.value)) {
      return record_failure("final sweep: " + *err);
    }
  }
  // Replica convergence: every owner must hold a record the model can name. This is
  // the oracle that catches read repair writing the wrong payload (seeded bug #17) —
  // a replica carrying version v with bytes that neither the committed record nor
  // any uncertain write at v produced has been corrupted by the replication layer.
  for (const ShardId key : model.TouchedKeys()) {
    const ClusterModel::Record* committed = model.Committed(key);
    for (const int owner : cluster->OwnersOf(key)) {
      auto rec_or = cluster->DebugReplicaRead(owner, key);
      if (!rec_or.ok()) {
        return record_failure("convergence: replica read of key " + std::to_string(key) +
                              " on node " + std::to_string(owner) +
                              " failed: " + rec_or.status().ToString());
      }
      const std::optional<cluster::ReplicaRecord>& rec = rec_or.value();
      if (!rec.has_value()) {
        if (committed != nullptr) {
          return record_failure("convergence: node " + std::to_string(owner) +
                                " holds nothing for key " + std::to_string(key) +
                                " though version " + std::to_string(committed->version) +
                                " committed");
        }
        continue;
      }
      if (committed != nullptr && rec->version < committed->version) {
        return record_failure(
            "convergence: node " + std::to_string(owner) + " stale at version " +
            std::to_string(rec->version) + " for key " + std::to_string(key) +
            " (committed " + std::to_string(committed->version) + ")");
      }
      if (committed != nullptr && rec->version == committed->version) {
        if (rec->tombstone != committed->tombstone || rec->value != committed->value) {
          return record_failure("convergence: node " + std::to_string(owner) +
                                " diverges from the committed record of key " +
                                std::to_string(key) + " at version " +
                                std::to_string(rec->version));
        }
        continue;
      }
      const ClusterModel::Record* u = model.Uncertain(key, rec->version);
      if (u == nullptr) {
        return record_failure("convergence: node " + std::to_string(owner) +
                              " holds phantom version " + std::to_string(rec->version) +
                              " for key " + std::to_string(key));
      }
      if (rec->tombstone != u->tombstone || rec->value != u->value) {
        return record_failure("convergence: node " + std::to_string(owner) +
                              " corrupted uncertain version " +
                              std::to_string(rec->version) + " of key " +
                              std::to_string(key));
      }
    }
  }

  // --- Metric oracle ------------------------------------------------------------------
  const MetricsSnapshot metrics_after = cluster->MetricsSnapshot();
  const uint64_t put_delta =
      CounterDelta(metrics_before, metrics_after, "cluster.put.ok") +
      CounterDelta(metrics_before, metrics_after, "cluster.put.err");
  const uint64_t get_delta =
      CounterDelta(metrics_before, metrics_after, "cluster.get.ok") +
      CounterDelta(metrics_before, metrics_after, "cluster.get.err");
  const uint64_t delete_delta =
      CounterDelta(metrics_before, metrics_after, "cluster.delete.ok") +
      CounterDelta(metrics_before, metrics_after, "cluster.delete.err");
  if (put_delta != puts_issued || get_delta != gets_issued ||
      delete_delta != deletes_issued) {
    return record_failure(
        "metric oracle: cluster counter deltas put=" + std::to_string(put_delta) + "/" +
        std::to_string(puts_issued) + " get=" + std::to_string(get_delta) + "/" +
        std::to_string(gets_issued) + " delete=" + std::to_string(delete_delta) + "/" +
        std::to_string(deletes_issued) + " disagree with ops issued");
  }
  if (cluster->spans().total_started() < puts_issued + gets_issued + deletes_issued) {
    return record_failure("metric oracle: span tree recorded " +
                          std::to_string(cluster->spans().total_started()) +
                          " root spans, fewer than the client ops issued");
  }
  return std::nullopt;
}

PbtRunner<ClusterOp> ClusterConformanceHarness::MakeRunner(PbtConfig config) const {
  ClusterHarnessOptions options = options_;
  return PbtRunner<ClusterOp>(
      config,
      [options](Rng& rng, const std::vector<ClusterOp>& prefix) {
        return GenClusterOp(rng, prefix, options);
      },
      [options](const std::vector<ClusterOp>& ops) {
        ClusterConformanceHarness harness(options);
        return harness.Run(ops);
      },
      [](const ClusterOp& op) { return ShrinkClusterOp(op); });
}

// --- Model-checked bodies -------------------------------------------------------------

namespace {

struct PendingLinOps {
  // Unranked like the history lock: appended from model-checked workload threads.
  Mutex mu{MutexAttr{"mc.cluster.pending", 0}};
  std::vector<LinOp> ops;

  void Add(LinOp op) {
    LockGuard lock(mu);
    ops.push_back(std::move(op));
  }
};

cluster::ClusterOptions SmallClusterOptions() {
  cluster::ClusterOptions co;
  co.initial_nodes = 3;
  co.replication = 3;
  co.read_quorum = 2;
  co.write_quorum = 2;
  co.vnodes = 4;
  co.node.disk_count = 1;
  co.node.geometry = {.extent_count = 8, .pages_per_extent = 8, .page_size = 128};
  co.rpc_retry.max_attempts = 2;
  co.heartbeat_period_ticks = 1;
  return co;
}

// A write whose quorum failed may still have landed on some replicas: it enters the
// history as a still-open invocation, free to linearize anywhere after its invoke
// (or effectively never, by linearizing last).
LinOp OpenPut(uint64_t invoke, ShardId key, Bytes value) {
  LinOp op;
  op.kind = LinOp::Kind::kPut;
  op.key = key;
  op.value = std::move(value);
  op.invoke = invoke;
  op.response = UINT64_MAX;
  return op;
}

}  // namespace

std::function<void()> MakeClusterLinearizableBody(int adversary) {
  return [adversary] {
    auto cluster_or = cluster::ClusterCoordinator::Create(SmallClusterOptions());
    MC_CHECK(cluster_or.ok(), "cluster create failed: " + cluster_or.status().ToString());
    std::shared_ptr<cluster::ClusterCoordinator> cluster(std::move(cluster_or).value());
    auto history = std::make_shared<LinHistory>();
    auto pending = std::make_shared<PendingLinOps>();
    const ShardId key = 7;
    const Bytes v1(24, 0x11);
    const Bytes v2(24, 0x22);

    {
      const uint64_t t = history->Invoke();
      MC_CHECK(cluster->Put(key, ByteSpan(v1)).ok(), "setup put failed");
      history->RecordPut(t, key, v1);
    }
    const int victim = cluster->OwnersOf(key).front();

    Thread writer = Thread::Spawn([cluster, history, pending, key, v2] {
      const uint64_t t = history->Invoke();
      const cluster::QuorumResult r = cluster->Put(key, ByteSpan(v2));
      if (r.ok()) {
        history->RecordPut(t, key, v2);
      } else {
        pending->Add(OpenPut(t, key, v2));
      }
    });
    Thread saboteur = Thread::Spawn([cluster, adversary, victim] {
      if (adversary == 1) {
        cluster->net().PartitionLink(cluster::ClusterNet::kClientId, victim);
        cluster->Tick();
        cluster->net().HealLink(cluster::ClusterNet::kClientId, victim);
      } else if (adversary == 2) {
        MC_CHECK(cluster->CrashNode(victim).ok(), "crash failed");
        cluster->Tick();
        MC_CHECK(cluster->RestartNode(victim).ok(), "restart failed");
      }
    });
    for (int i = 0; i < 2; ++i) {
      const uint64_t t = history->Invoke();
      const cluster::QuorumResult r = cluster->Get(key);
      if (r.status.ok()) {
        history->RecordGetFound(t, key, r.value);
      } else if (r.status.code() == StatusCode::kNotFound) {
        history->RecordGetMissing(t, key);
      }
      // A failed read observed nothing and leaves no trace in the history.
    }
    writer.Join();
    saboteur.Join();

    std::vector<LinOp> ops = history->Ops();
    {
      LockGuard lock(pending->mu);
      ops.insert(ops.end(), pending->ops.begin(), pending->ops.end());
    }
    std::string explanation;
    MC_CHECK(CheckLinearizable(ops, &explanation), explanation);
  };
}

std::function<void()> MakeClusterStaleReadBody() {
  return [] {
    cluster::ClusterOptions co = SmallClusterOptions();
    co.initial_nodes = 2;
    co.replication = 2;
    co.read_quorum = 1;   // R + W <= N: read quorums need not meet write quorums
    co.write_quorum = 1;
    co.allow_unsafe_quorums = true;
    co.rpc_retry.max_attempts = 1;
    auto cluster_or = cluster::ClusterCoordinator::Create(co);
    MC_CHECK(cluster_or.ok(), "cluster create failed: " + cluster_or.status().ToString());
    std::shared_ptr<cluster::ClusterCoordinator> cluster(std::move(cluster_or).value());
    auto history = std::make_shared<LinHistory>();
    auto pending = std::make_shared<PendingLinOps>();
    const ShardId key = 3;
    const Bytes v1(16, 0x11);
    const Bytes v2(16, 0x22);

    {
      const uint64_t t = history->Invoke();
      MC_CHECK(cluster->Put(key, ByteSpan(v1)).ok(), "setup put failed");
      history->RecordPut(t, key, v1);
    }
    // Cut the coordinator off from the second replica, so the racing write acks at
    // W=1 off the first replica alone and the second stays at v1.
    const int lagger = cluster->OwnersOf(key).back();
    cluster->net().PartitionLink(cluster::ClusterNet::kClientId, lagger);

    Thread writer = Thread::Spawn([cluster, history, pending, key, v2] {
      const uint64_t t = history->Invoke();
      const cluster::QuorumResult r = cluster->Put(key, ByteSpan(v2));
      if (r.ok()) {
        history->RecordPut(t, key, v2);
      } else {
        pending->Add(OpenPut(t, key, v2));
      }
    });
    Thread healer = Thread::Spawn([cluster, lagger] {
      cluster->net().HealLink(cluster::ClusterNet::kClientId, lagger);
    });
    for (int i = 0; i < 2; ++i) {
      const uint64_t t = history->Invoke();
      const cluster::QuorumResult r = cluster->Get(key);
      if (r.status.ok()) {
        history->RecordGetFound(t, key, r.value);
      } else if (r.status.code() == StatusCode::kNotFound) {
        history->RecordGetMissing(t, key);
      }
    }
    writer.Join();
    healer.Join();

    std::vector<LinOp> ops = history->Ops();
    {
      LockGuard lock(pending->mu);
      ops.insert(ops.end(), pending->ops.begin(), pending->ops.end());
    }
    std::string explanation;
    MC_CHECK(CheckLinearizable(ops, &explanation), explanation);
  };
}

}  // namespace ss
