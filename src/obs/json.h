// Minimal append-only JSON writer for the observability layer's machine-readable
// exits (MetricsSnapshot::ToJson, SpanTree::ToJson, flight-recorder artifacts).
//
// Deliberately tiny: no DOM, no parsing — callers stream keys and values in order and
// the writer tracks nesting and comma placement. Output is compact (no whitespace)
// except that Raw() lets callers splice pre-serialized JSON fragments, so composite
// documents (e.g. NodeServer::DumpMetricsJson) can embed sub-objects built elsewhere.

#ifndef SS_OBS_JSON_H_
#define SS_OBS_JSON_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ss {

// Escapes `s` for inclusion inside a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key inside an object; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices `json` verbatim as one value; the caller guarantees it is valid JSON.
  JsonWriter& Raw(std::string_view json);

  std::string str() const { return out_.str(); }

 private:
  // Emits the separating comma if the current nesting level already holds a value.
  void BeforeValue();

  std::ostringstream out_;
  std::vector<bool> has_value_;  // per open container: a value was already emitted
  bool pending_key_ = false;     // last token was a key; the next value follows ':'
};

}  // namespace ss

#endif  // SS_OBS_JSON_H_
