// Hierarchical causal span tracing — the "where inside the node" side of the
// observability layer, complementing the flat per-RPC TraceRing.
//
// The node server opens one *root* span per RPC; every layer the request flows
// through (ShardStore, LsmIndex, ChunkStore, ExtentManager, BufferCache, IoScheduler)
// records *child* spans via a SpanScope handed down the call chain. The default
// SpanScope is inactive, so non-traced callers (component unit tests, direct store
// use) pay exactly one branch per potential span.
//
// Latency is measured in virtual-clock ticks (ExtentManager's retry-backoff clock) so
// recorded distributions are deterministic: a span's duration is the ticks the
// operation's retries consumed, not wall time. Spans without a clock (e.g. batch
// roots that fan out over several per-disk clocks) accumulate ticks explicitly via
// AddTicks.
//
// Like MetricRegistry and TraceRing, the tree's lock is a leaf-mode ss::Mutex:
// recording a span must never become a model-checker scheduling point, and the whole
// layer stays clean under TSan — yet the lock remains visible to the lock-order
// witness (EndSpan calls into the metric registry under it, so the nesting is
// checked). Retention is bounded (a ring keyed by span id), with total_started()
// keeping the lifetime count across wraparound.

#ifndef SS_OBS_SPAN_H_
#define SS_OBS_SPAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace ss {

class JsonWriter;

// Source of virtual-clock ticks for span latency. ExtentManager implements this over
// its retry-backoff clock (an atomic mirror, so reading it is never a scheduling
// point); tests can supply fake clocks.
class TickSource {
 public:
  virtual ~TickSource() = default;
  virtual uint64_t SpanTicksNow() const = 0;
};

// Wire form of a span's identity, carried across the cluster network so a receiving
// node's spans can adopt the sender's causal tree. `root`/`parent` are span ids in the
// *sender's* SpanTree (the cluster coordinator's); root == 0 means no context and the
// receiver roots its own tree as before. The ids are opaque to the receiver — it
// records them as remote linkage, never resolves them locally — which is what lets
// the cluster trace assembler stitch per-node trees back under the coordinator's root
// without any cross-tree id coordination.
struct TraceContext {
  uint64_t root = 0;    // sender's root span id
  uint64_t parent = 0;  // sender's span the message was sent under
  bool active() const { return root != 0; }
};

struct SpanRecord {
  uint64_t id = 0;      // 1-based, monotonically increasing for the tree's lifetime
  uint64_t parent = 0;  // 0 = root span
  uint64_t root = 0;    // id of the tree's root span (== id for roots)
  // Remote linkage for spans adopted from another tree's TraceContext: ids in the
  // *sender's* tree (0 = none). Only locally-rooted spans carry these; their local
  // children keep chaining through `parent`/`root` as usual.
  uint64_t remote_parent = 0;
  uint64_t remote_root = 0;
  std::string name;     // e.g. "rpc.put", "lsm.insert", "io.coalesce"
  uint64_t start_ticks = 0;
  uint64_t duration_ticks = 0;
  StatusCode status = StatusCode::kOk;
  bool open = true;  // still running (EndSpan not yet called)

  std::string ToString() const;
};

// Bounded store of span records with parent/child causality. Thread-safe; recording
// holds a leaf-mode lock so it never becomes a model-checker scheduling point.
class SpanTree {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  // When `metrics` is provided, every ended span additionally records its duration
  // into the histogram "span.<name>.ticks" — the per-stage latency surface the
  // benches export.
  explicit SpanTree(size_t capacity = kDefaultCapacity, MetricRegistry* metrics = nullptr);
  SpanTree(const SpanTree&) = delete;
  SpanTree& operator=(const SpanTree&) = delete;

  // Starts a span and returns its id. `root` 0 means the span is its own root.
  uint64_t StartSpan(std::string_view name, uint64_t parent = 0, uint64_t root = 0,
                     uint64_t start_ticks = 0);
  // Starts a *locally rooted* span that records `remote` as its causal origin in
  // another tree (the sender's). Children chain under it with plain StartSpan.
  uint64_t StartRemoteSpan(std::string_view name, TraceContext remote,
                           uint64_t start_ticks = 0);
  // Ends a span (no-op if the record was already overwritten by wraparound).
  void EndSpan(uint64_t id, StatusCode status, uint64_t duration_ticks);

  // Retained records, ascending id order. At most capacity() entries.
  std::vector<SpanRecord> Spans() const;
  // Retained records belonging to the tree rooted at `root`, ascending id order.
  std::vector<SpanRecord> Tree(uint64_t root) const;
  // Ids of retained local roots whose remote_root is `remote_root`, ascending — the
  // subtrees this tree contributed to a remote trace (cluster assembler input).
  std::vector<uint64_t> RemoteTrees(uint64_t remote_root) const;

  // Lifetime span count, unaffected by wraparound.
  uint64_t total_started() const;
  size_t capacity() const { return capacity_; }

  // Indented rendering of one tree (children under parents, depth-first).
  std::string ToString(uint64_t root) const;
  // JSON array of the tree rooted at `root` / of every retained span.
  std::string ToJson(uint64_t root) const;
  std::string ToJson() const;

 private:
  std::vector<SpanRecord> SpansLocked() const;  // caller holds mu_
  uint64_t InsertLocked(SpanRecord record);     // caller holds mu_; assigns the id

  // Ranked below the metric-registry shards: EndSpan publishes the duration
  // histogram while holding this lock.
  mutable Mutex mu_{MutexAttr{"obs.span", lockrank::kObs, /*leaf=*/true}};
  const size_t capacity_;
  MetricRegistry* metrics_ = nullptr;
  std::vector<SpanRecord> ring_;  // slot (id-1) % capacity_
  uint64_t next_id_ = 1;
  // Histogram lookup cache: EndSpan is on the per-page hot path, so the
  // "span.<name>.ticks" name is built (and the registry searched) once per distinct
  // span name, not once per span. Guarded by mu_; Histogram addresses are stable.
  std::map<std::string, Histogram*, std::less<>> histogram_cache_;
};

// Appends one span record as a JSON object to `w` (remote linkage included when
// present). Shared by SpanTree::ToJson and the cluster trace assembler.
void SpanRecordToJson(const SpanRecord& record, JsonWriter& w);

class Span;

// The handle threaded down the write/read path. Copyable value; the default instance
// is inactive and every recording site guards with one `active()` branch.
struct SpanScope {
  SpanTree* tree = nullptr;
  const TickSource* clock = nullptr;
  uint64_t span_id = 0;  // parent for child spans
  uint64_t root_id = 0;

  bool active() const { return tree != nullptr; }
  // Opens a child span of this scope (inactive scope -> inactive span).
  Span Child(std::string_view name) const;
};

// RAII span handle. Movable, not copyable; the destructor ends the span with the
// status set via set_status (kOk by default).
class Span {
 public:
  Span() = default;  // inactive
  // Opens a span in `tree`. `parent`/`root` 0 opens a root span. A null `clock`
  // yields durations from AddTicks only.
  Span(SpanTree* tree, const TickSource* clock, std::string_view name, uint64_t parent = 0,
       uint64_t root = 0);
  // Opens a locally rooted span adopting `remote` (another tree's TraceContext) as
  // its causal origin — the receive side of cross-node trace propagation.
  Span(SpanTree* tree, const TickSource* clock, std::string_view name, TraceContext remote);
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  // Ends the span (idempotent) and returns its duration in ticks: the clock delta
  // since construction plus any AddTicks contributions.
  uint64_t End();

  void set_status(StatusCode status) { status_ = status; }
  // Explicit tick contribution for spans without a clock (e.g. batch roots summing
  // per-disk clock deltas).
  void AddTicks(uint64_t ticks) { ticks_ += ticks; }
  // Ticks accumulated via AddTicks so far (excludes the clock delta added at End).
  uint64_t ticks() const { return ticks_; }

  bool active() const { return tree_ != nullptr; }
  uint64_t id() const { return id_; }
  uint64_t root() const { return root_; }
  // Scope for children of this span.
  SpanScope scope() const {
    return active() ? SpanScope{tree_, clock_, id_, root_} : SpanScope{};
  }

 private:
  SpanTree* tree_ = nullptr;
  const TickSource* clock_ = nullptr;
  uint64_t id_ = 0;
  uint64_t root_ = 0;
  uint64_t start_ = 0;
  uint64_t ticks_ = 0;
  StatusCode status_ = StatusCode::kOk;
  bool open_ = false;
};

inline Span SpanScope::Child(std::string_view name) const {
  if (!active()) {
    return Span();
  }
  return Span(tree, clock, name, span_id, root_id);
}

}  // namespace ss

#endif  // SS_OBS_SPAN_H_
