// Failure flight recorder: replayable counterexample artifacts (the observability
// tentpole's second half, next to span.h).
//
// When a harness oracle trips — conformance mismatch, lost acknowledged write,
// forward-progress violation, MC_CHECK failure — the raw failure string names the op
// that tripped, but diagnosing it needs the state the run died with: which writebacks
// were still pending and on what dependencies, what the disks had actually persisted
// versus what the volatile layers believed, which spans the failing operation
// recorded, and — above all — the two integers that re-create the run exactly
// (PBT case seed, or the model checker's schedule).
//
// The recorder bundles all of that into one JSON artifact per violation. Harness
// options carry an optional `FlightRecorder*`; the intended protocol is to leave it
// null during search and minimization (a shrink pass re-runs the property thousands
// of times and would spam one artifact per failing candidate), then re-run the
// minimized sequence once with the recorder armed. Artifacts land in a directory
// resolved as: constructor argument, else $SS_FLIGHT_DIR, else "flight" — CI points
// this at build/flight and uploads it when a test job fails.
//
// Replaying an artifact:
//   * PBT harnesses: `runner.Generate(case_seed)` regenerates the original op
//     sequence; the `ops` array is the minimized sequence, re-runnable through the
//     harness's Run directly.
//   * Model-checked bodies: `McReplay(body, mc_schedule)` re-executes the exact
//     failing interleaving.

#ifndef SS_OBS_FLIGHT_RECORDER_H_
#define SS_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dep/dep_lint.h"
#include "src/mc/mc.h"
#include "src/sync/witness.h"

namespace ss {

class NodeServer;
class ShardStore;

// One counterexample artifact. String members holding "_json" are pre-serialized
// JSON fragments spliced into the artifact verbatim (empty = field omitted);
// `dependency_dot` is a Graphviz document and is escaped as a JSON string.
struct FlightRecord {
  std::string harness;    // which harness tripped ("kv_conformance", "mc", ...)
  std::string violation;  // the oracle's failure message
  std::vector<std::string> ops;  // rendered (minimized) op sequence, one op per entry
  uint64_t case_seed = 0;        // PbtRunner::Generate(case_seed) -> original sequence
  std::vector<uint32_t> mc_schedule;  // McReplay schedule (MC failures only)
  std::string metrics_json;   // MetricsSnapshot::ToJson() at the moment of violation
  std::string spans_json;     // SpanTree::ToJson() — the run's causal span trees
  std::string trace_json;     // JSON array of TraceEvent::ToJson()
  std::string dependency_dot; // DOT graph of unpersisted writes (IoScheduler queue)
  std::string disks_json;     // persisted-vs-volatile extent summary per disk
  std::string analysis_json;  // static/dynamic analysis report (lock-order witness
                              // LockOrderReport::ToJson(), dep linter
                              // DepLintReport::ToJson())
  std::string cluster_json;        // ClusterCoordinator::ClusterSnapshotJson() — ring,
                                   // FD states, hints, pending moves, aggregated metrics
  std::string cluster_trace_json;  // ClusterTrace::ToJson() — the failing op's
                                   // assembled cross-node trace
};

// Fills `record` from a live single-disk store: metric snapshot, pending-writeback
// dependency DOT, and the persisted (superblock) vs volatile (ExtentManager) view of
// every non-free extent. Span JSON is the caller's to provide (the store itself owns
// no SpanTree; harnesses thread their own).
void CaptureStore(ShardStore& store, FlightRecord& record);

// Fills `record` from a live node: node-wide metric snapshot, the node's span tree
// and trace ring, plus per-disk dependency DOTs and extent summaries (out-of-service
// disks contribute their persisted side only).
void CaptureNode(NodeServer& node, FlightRecord& record);

// Builds a record for a failed model-checking result: the error message and the
// replayable schedule. `name` labels the body (e.g. "put_migrate_race").
FlightRecord MakeMcFlightRecord(const McResult& result, std::string_view name);

// Builds a record for a lock-order witness violation: the report (both acquisition
// stacks) lands in `analysis_json`.
FlightRecord MakeLockOrderFlightRecord(const LockOrderReport& report);

// Builds a record for a dependency-lint failure: the violation list lands in
// `analysis_json` and the offending pending graph in `dependency_dot`.
FlightRecord MakeDepLintFlightRecord(const DepLintReport& report);

// Writes artifacts. Not thread-safe; arm one recorder per (re-)run.
class FlightRecorder {
 public:
  // Directory resolution: `dir` if non-empty, else $SS_FLIGHT_DIR, else "flight".
  explicit FlightRecorder(std::string dir = "");

  // Annotates subsequent writes whose record carries no case seed of its own; set by
  // the driver before re-running a minimized PBT sequence (the harness capturing the
  // violation does not know which seed generated it).
  void set_case_seed(uint64_t seed) { case_seed_ = seed; }

  // Serializes `record` to <dir>/flight-<n>-<harness>.json (creating the directory)
  // and returns the path.
  Result<std::string> Write(const FlightRecord& record);

  const std::string& dir() const { return dir_; }
  size_t written() const { return written_; }

 private:
  std::string dir_;
  uint64_t case_seed_ = 0;
  size_t written_ = 0;
};

// RAII sink: while alive, every lock-order witness violation detected on a native run
// is written to `recorder` as a flight artifact. Harnesses arm one next to the
// recorder itself.
class ScopedLockOrderFlightSink {
 public:
  explicit ScopedLockOrderFlightSink(FlightRecorder* recorder);

 private:
  std::unique_ptr<ScopedLockOrderHandler> handler_;
};

// RAII sink: while alive, every dependency-lint failure reported at a flush/barrier
// is written to `recorder` as a flight artifact.
class ScopedDepLintFlightSink {
 public:
  explicit ScopedDepLintFlightSink(FlightRecorder* recorder);

 private:
  std::unique_ptr<ScopedDepLintHandler> handler_;
};

}  // namespace ss

#endif  // SS_OBS_FLIGHT_RECORDER_H_
