#include "src/obs/json.h"

#include <cstdio>

namespace ss {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) {
      out_ << ',';
    }
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ << '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ << '}';
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ << '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ << ']';
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_value_.empty() && has_value_.back()) {
    out_ << ',';
  }
  if (!has_value_.empty()) {
    has_value_.back() = true;
  }
  out_ << '"' << JsonEscape(key) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ << '"' << JsonEscape(value) << '"';
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ << json;
  return *this;
}

}  // namespace ss
