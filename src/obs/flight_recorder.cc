#include "src/obs/flight_recorder.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/obs/json.h"
#include "src/rpc/node_server.h"

namespace ss {

namespace {

// Persisted-vs-volatile view of one disk's extents. The persisted side is what
// recovery would trust (superblock soft pointers + ownership); the volatile side is
// what the running ExtentManager believes (null when the disk has no live store).
// The delta between the two is exactly the data a crash at this moment would lose.
void AppendExtentSummary(JsonWriter& w, Disk& disk, const ExtentManager* extents) {
  w.BeginObject();
  w.Key("epoch");
  w.UInt(disk.epoch());
  w.Key("extents");
  w.BeginArray();
  const uint32_t extent_count = disk.geometry().extent_count;
  for (ExtentId e = 1; e < extent_count; ++e) {
    const uint32_t persisted_wp = disk.ReadSoftWp(e);
    const ExtentOwner persisted_owner = disk.ReadOwnership(e);
    const bool live = extents != nullptr;
    const uint32_t volatile_wp = live ? extents->WritePointer(e) : 0;
    const ExtentOwner volatile_owner = live ? extents->Owner(e) : ExtentOwner::kFree;
    if (persisted_wp == 0 && persisted_owner == ExtentOwner::kFree && volatile_wp == 0 &&
        volatile_owner == ExtentOwner::kFree) {
      continue;  // never touched
    }
    w.BeginObject();
    w.Key("extent");
    w.UInt(e);
    w.Key("persisted_wp");
    w.UInt(persisted_wp);
    w.Key("persisted_owner");
    w.UInt(static_cast<uint64_t>(persisted_owner));
    if (live) {
      w.Key("volatile_wp");
      w.UInt(volatile_wp);
      w.Key("volatile_owner");
      w.UInt(static_cast<uint64_t>(volatile_owner));
      w.Key("unpersisted_pages");
      w.UInt(volatile_wp > persisted_wp ? volatile_wp - persisted_wp : 0);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void RawOrNull(JsonWriter& w, const std::string& fragment) {
  if (fragment.empty()) {
    w.Null();
  } else {
    w.Raw(fragment);
  }
}

}  // namespace

void CaptureStore(ShardStore& store, FlightRecord& record) {
  record.metrics_json = store.metrics().Snapshot().ToJson();
  record.dependency_dot = store.scheduler().PendingDot();
  JsonWriter w;
  w.BeginArray();
  AppendExtentSummary(w, store.disk(), &store.extents());
  w.EndArray();
  record.disks_json = w.str();
}

void CaptureNode(NodeServer& node, FlightRecord& record) {
  record.metrics_json = node.MetricsSnapshot().ToJson();
  record.spans_json = node.spans().ToJson();
  {
    JsonWriter w;
    w.BeginArray();
    for (const TraceEvent& event : node.trace().Events()) {
      w.Raw(event.ToJson());
    }
    w.EndArray();
    record.trace_json = w.str();
  }
  JsonWriter disks;
  disks.BeginArray();
  std::string dot;
  for (int d = 0; d < node.disk_count(); ++d) {
    std::shared_ptr<ShardStore> store = node.store(d);
    if (store != nullptr) {
      if (!dot.empty()) {
        dot += "\n";
      }
      dot += store->scheduler().PendingDot("disk" + std::to_string(d) + ".");
    }
    AppendExtentSummary(disks, node.disk(d),
                        store != nullptr ? &store->extents() : nullptr);
  }
  disks.EndArray();
  record.dependency_dot = std::move(dot);
  record.disks_json = disks.str();
}

FlightRecord MakeMcFlightRecord(const McResult& result, std::string_view name) {
  FlightRecord record;
  record.harness = "mc:" + std::string(name);
  record.violation = result.error;
  record.mc_schedule = result.failing_schedule;
  return record;
}

FlightRecord MakeLockOrderFlightRecord(const LockOrderReport& report) {
  FlightRecord record;
  record.harness = "lockorder";
  record.violation = report.message;
  record.analysis_json = report.ToJson();
  return record;
}

FlightRecord MakeDepLintFlightRecord(const DepLintReport& report) {
  FlightRecord record;
  record.harness = "deplint";
  record.violation = "dependency lint: " + report.Summary();
  record.analysis_json = report.ToJson();
  record.dependency_dot = report.dot;
  return record;
}

FlightRecorder::FlightRecorder(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    const char* env = std::getenv("SS_FLIGHT_DIR");
    dir_ = (env != nullptr && env[0] != '\0') ? env : "flight";
  }
}

Result<std::string> FlightRecorder::Write(const FlightRecord& record) {
  JsonWriter w;
  w.BeginObject();
  w.Key("harness");
  w.String(record.harness);
  w.Key("violation");
  w.String(record.violation);
  w.Key("ops");
  w.BeginArray();
  for (const std::string& op : record.ops) {
    w.String(op);
  }
  w.EndArray();
  w.Key("case_seed");
  w.UInt(record.case_seed != 0 ? record.case_seed : case_seed_);
  w.Key("mc_schedule");
  w.BeginArray();
  for (uint32_t step : record.mc_schedule) {
    w.UInt(step);
  }
  w.EndArray();
  w.Key("metrics");
  RawOrNull(w, record.metrics_json);
  w.Key("spans");
  RawOrNull(w, record.spans_json);
  w.Key("trace");
  RawOrNull(w, record.trace_json);
  w.Key("dependency_dot");
  w.String(record.dependency_dot);
  w.Key("disks");
  RawOrNull(w, record.disks_json);
  w.Key("analysis");
  RawOrNull(w, record.analysis_json);
  w.Key("cluster");
  RawOrNull(w, record.cluster_json);
  w.Key("cluster_trace");
  RawOrNull(w, record.cluster_trace_json);
  w.EndObject();

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create flight dir " + dir_ + ": " + ec.message());
  }
  std::string name = record.harness;
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_')) {
      c = '_';
    }
  }
  const std::string path =
      dir_ + "/flight-" + std::to_string(written_) + "-" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path);
  }
  out << w.str() << "\n";
  out.close();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  ++written_;
  return path;
}

ScopedLockOrderFlightSink::ScopedLockOrderFlightSink(FlightRecorder* recorder) {
  if (recorder == nullptr) {
    return;
  }
  handler_ = std::make_unique<ScopedLockOrderHandler>([recorder](const LockOrderReport& report) {
    (void)recorder->Write(MakeLockOrderFlightRecord(report));
  });
}

ScopedDepLintFlightSink::ScopedDepLintFlightSink(FlightRecorder* recorder) {
  if (recorder == nullptr) {
    return;
  }
  handler_ = std::make_unique<ScopedDepLintHandler>([recorder](const DepLintReport& report) {
    (void)recorder->Write(MakeDepLintFlightRecord(report));
  });
}

}  // namespace ss
