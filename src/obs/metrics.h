// Process-wide observability: a registry of named counters, gauges, and fixed-bucket
// histograms, designed so every per-component `Stats` struct in the tree can become a
// thin view over shared metric objects.
//
// Two properties drive the design:
//
//  * Metrics are observability, not behaviour. Like the `Coverage` singleton in
//    common/cover.cc, the registry's shard locks are *leaf-mode* ss::Mutex instances:
//    never a model-checker scheduling point, so incrementing a counter never perturbs
//    the interleavings the mc harness explores, yet still named and ranked for the
//    lock-order witness. Relaxed atomics keep the hot path to a single uncontended
//    RMW and keep the whole layer clean under TSan.
//  * Registration is rare, increments are hot. The registry shards its name map by
//    hash across a small fixed set of mutexes; callers look a metric up once at
//    construction time, hold the returned pointer (addresses are stable for the
//    registry's lifetime), and bump it lock-free thereafter.
//
// Histograms are virtual-clock-friendly: buckets are caller-supplied inclusive upper
// bounds over whatever unit the caller measures (we use virtual ticks, not wall time,
// so recorded distributions are deterministic under the simulated clock).

#ifndef SS_OBS_METRICS_H_
#define SS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sync/sync.h"

namespace ss {

// Monotonic event count. Relaxed ordering: totals are exact once the writing threads
// are quiesced (joined / completed), which is when harness oracles read them.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed value (queue depths, health states).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

struct HistogramSnapshot {
  // Inclusive upper bounds; an implicit +inf bucket follows the last bound.
  std::vector<uint64_t> bounds;
  // bounds.size() + 1 entries; counts[i] is the number of samples <= bounds[i],
  // counts.back() the overflow.
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  uint64_t sum = 0;

  // Upper bound of the bucket containing the q-quantile sample (q clamped to [0,1]).
  // Edge cases: an empty histogram returns 0; samples in the overflow bucket report
  // one past the largest bound (the histogram cannot resolve beyond it); a histogram
  // with no bounds at all falls back to the mean (sum/count).
  uint64_t ValueAtQuantile(double q) const;

  std::string ToString() const;
  // {"count":..,"sum":..,"bounds":[..],"counts":[..]}
  std::string ToJson() const;
};

// Fixed-bucket histogram. Bounds are frozen at registration; recording is a bucket
// search plus three relaxed RMWs.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Power-of-two tick buckets (1, 2, 4, ..., 1024) — the default latency shape for
// virtual-clock durations, which are small integers by construction.
std::vector<uint64_t> DefaultTickBuckets();

// A flattened, point-in-time copy of one or more registries. Snapshots from several
// registries (e.g. one per ShardStore plus the node-level one) accumulate: counters
// and gauges with the same name sum, histograms with identical bounds merge
// bucket-wise (mismatched bounds fold into count/sum only).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Value of a counter, or 0 if it was never registered. Harness oracles diff two
  // snapshots with this, so "absent" and "never incremented" must read the same.
  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;

  // Accumulates `other` into this snapshot: counters and gauges sum (uint64 wrap on
  // counter overflow is defined behaviour), histograms with identical bounds merge
  // bucket-wise, mismatched bounds fold into count/sum only (counts/bounds keep this
  // snapshot's shape). The cluster tier uses this to aggregate per-node snapshots.
  void MergeFrom(const MetricsSnapshot& other);

  std::string ToString() const;
  // Machine-readable form: {"counters":{..},"gauges":{..},"histograms":{..}}, the
  // exit the benches and the flight recorder consume.
  std::string ToJson() const;
};

// Delta of one counter between two snapshots taken from the same registry set.
uint64_t CounterDelta(const MetricsSnapshot& before, const MetricsSnapshot& after,
                      std::string_view name);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Find-or-create. Returned references are stable for the registry's lifetime; a
  // second call with the same name returns the same object.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // Bounds apply only on first registration; later calls with the same name return
  // the existing histogram regardless of the bounds argument.
  Histogram& histogram(std::string_view name, std::vector<uint64_t> bounds = DefaultTickBuckets());

  MetricsSnapshot Snapshot() const;
  // Accumulates this registry into `out` (see MetricsSnapshot merge semantics above).
  void SnapshotInto(MetricsSnapshot& out) const;

 private:
  struct Shard {
    mutable Mutex mu{MutexAttr{"obs.metrics.shard", lockrank::kObs + 5, /*leaf=*/true}};
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  };
  static constexpr size_t kShardCount = 8;

  Shard& ShardFor(std::string_view name) const;

  mutable std::array<Shard, kShardCount> shards_;
};

}  // namespace ss

#endif  // SS_OBS_METRICS_H_
