// Cluster trace assembly — merging per-process SpanTrees into one causal view.
//
// Every SpanTree numbers span ids from 1, so a node's spans can never literally
// adopt the coordinator's ids without colliding with its own. Instead the sender
// ships a TraceContext (its root + parent span ids) with each message, the receiver
// opens a *locally rooted* span carrying that context as `remote_root`/`remote_parent`
// (SpanTree::StartRemoteSpan), and assembly happens after the fact: for a given
// coordinator root id, AssembleClusterTrace collects the coordinator's tree plus, from
// each node tree, every local subtree whose remote_root matches, and stitches node
// subtrees under the coordinator span named by their remote_parent.
//
// The result is a plain value (source label + SpanRecord per entry) with ToString()
// for humans and ToJson() for flight-recorder artifacts. Because all spans run on the
// virtual clock, the assembled trace is deterministic under `ss::mc` replay.

#ifndef SS_OBS_CLUSTER_TRACE_H_
#define SS_OBS_CLUSTER_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/span.h"

namespace ss {

struct ClusterTraceEntry {
  std::string source;  // "coord" or "node-<id>"
  SpanRecord span;
};

// One assembled cross-process trace. Entries are grouped by source: the
// coordinator's tree first (ascending id), then each node's matching subtrees in
// the order the node trees were supplied.
struct ClusterTrace {
  uint64_t root = 0;  // coordinator root span id the trace is keyed by
  std::vector<ClusterTraceEntry> spans;

  // Distinct source labels in first-appearance order.
  std::vector<std::string> Sources() const;
  bool HasSource(std::string_view source) const;
  size_t CountFor(std::string_view source) const;

  // Indented cross-source rendering: node subtrees appear under the coordinator
  // span they were sent from, each line tagged with its source.
  std::string ToString() const;
  // {"root": N, "spans": [{"source": ..., <SpanRecord fields>}, ...]}
  std::string ToJson() const;
};

// Assembles the trace keyed by the coordinator root span id `root`. `nodes` supplies
// (label, tree) pairs for every process that may have adopted the coordinator's
// TraceContext. Trees are read via their own locks; none are held across each other.
ClusterTrace AssembleClusterTrace(
    uint64_t root, const SpanTree& coordinator,
    const std::vector<std::pair<std::string, const SpanTree*>>& nodes);

}  // namespace ss

#endif  // SS_OBS_CLUSTER_TRACE_H_
