#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>

#include "src/obs/json.h"

namespace ss {

std::string_view TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPut:
      return "Put";
    case TraceKind::kGet:
      return "Get";
    case TraceKind::kDelete:
      return "Delete";
    case TraceKind::kListShards:
      return "ListShards";
    case TraceKind::kFlush:
      return "Flush";
    case TraceKind::kMigrateShard:
      return "MigrateShard";
    case TraceKind::kEvacuateDisk:
      return "EvacuateDisk";
    case TraceKind::kCrashRecoverDisk:
      return "CrashRecoverDisk";
    case TraceKind::kRemoveDisk:
      return "RemoveDisk";
    case TraceKind::kRestoreDisk:
      return "RestoreDisk";
    case TraceKind::kMarkDegraded:
      return "MarkDegraded";
    case TraceKind::kResetHealth:
      return "ResetHealth";
    case TraceKind::kPutBatch:
      return "PutBatch";
    case TraceKind::kDeleteBatch:
      return "DeleteBatch";
    case TraceKind::kScan:
      return "Scan";
  }
  return "Unknown";
}

std::string TraceEvent::ToString() const {
  std::ostringstream out;
  out << "#" << seq << " " << TraceKindName(kind) << " shard=" << shard << " disk=" << disk
      << " status=" << StatusCodeName(status);
  if (duration_ticks > 0) {
    out << " ticks=" << duration_ticks;
  }
  if (root_span > 0) {
    out << " span=" << root_span;
  }
  return out.str();
}

std::string TraceEvent::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("seq").UInt(seq);
  w.Key("kind").String(TraceKindName(kind));
  w.Key("shard").UInt(shard);
  w.Key("disk").Int(disk);
  w.Key("status").String(StatusCodeName(status));
  w.Key("duration_ticks").UInt(duration_ticks);
  w.Key("root_span").UInt(root_span);
  w.EndObject();
  return w.str();
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

uint64_t TraceRing::Record(TraceKind kind, uint64_t shard, int32_t disk, StatusCode status,
                           uint64_t duration_ticks, uint64_t root_span) {
  LockGuard lock(mu_);
  TraceEvent event{next_seq_, kind, shard, disk, status, duration_ticks, root_span};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[static_cast<size_t>(next_seq_ % capacity_)] = event;
  }
  return next_seq_++;
}

std::vector<TraceEvent> TraceRing::Events() const {
  LockGuard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const size_t head = static_cast<size_t>(next_seq_ % capacity_);
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(head), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(head));
  }
  return out;
}

uint64_t TraceRing::total_recorded() const {
  LockGuard lock(mu_);
  return next_seq_;
}

std::string TraceRing::ToString(size_t max_events) const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream out;
  out << "== trace (last " << std::min(max_events, events.size()) << " of " << total_recorded()
      << ") ==\n";
  const size_t start = events.size() > max_events ? events.size() - max_events : 0;
  for (size_t i = start; i < events.size(); ++i) {
    out << "  " << events[i].ToString() << "\n";
  }
  return out.str();
}

}  // namespace ss
