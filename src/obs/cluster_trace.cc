#include "src/obs/cluster_trace.h"

#include <map>
#include <sstream>

#include "src/obs/json.h"

namespace ss {

std::vector<std::string> ClusterTrace::Sources() const {
  std::vector<std::string> out;
  for (const ClusterTraceEntry& entry : spans) {
    bool seen = false;
    for (const std::string& s : out) {
      if (s == entry.source) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.push_back(entry.source);
    }
  }
  return out;
}

bool ClusterTrace::HasSource(std::string_view source) const {
  for (const ClusterTraceEntry& entry : spans) {
    if (entry.source == source) {
      return true;
    }
  }
  return false;
}

size_t ClusterTrace::CountFor(std::string_view source) const {
  size_t n = 0;
  for (const ClusterTraceEntry& entry : spans) {
    if (entry.source == source) {
      ++n;
    }
  }
  return n;
}

std::string ClusterTrace::ToString() const {
  // Keys are (source, local id); node-local roots additionally attach under the
  // coordinator span named by their remote_parent.
  using Key = std::pair<std::string, uint64_t>;
  std::map<Key, const ClusterTraceEntry*> by_id;
  std::multimap<Key, const ClusterTraceEntry*> children;
  const ClusterTraceEntry* coord_root = nullptr;
  for (const ClusterTraceEntry& entry : spans) {
    by_id[{entry.source, entry.span.id}] = &entry;
  }
  for (const ClusterTraceEntry& entry : spans) {
    const SpanRecord& s = entry.span;
    if (entry.source == "coord" && s.id == root) {
      coord_root = &entry;
    } else if (s.id == s.root && s.remote_root == root) {
      children.emplace(Key{"coord", s.remote_parent}, &entry);  // cross-tree attach
    } else {
      children.emplace(Key{entry.source, s.parent}, &entry);
    }
  }
  std::ostringstream out;
  if (coord_root == nullptr) {
    out << "cluster trace root #" << root << " <not retained>\n";
    return out.str();
  }
  std::vector<std::pair<const ClusterTraceEntry*, int>> stack = {{coord_root, 0}};
  while (!stack.empty()) {
    auto [entry, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) {
      out << "  ";
    }
    if (entry->source != "coord") {
      out << "[" << entry->source << "] ";
    }
    out << entry->span.ToString() << "\n";
    auto [lo, hi] = children.equal_range({entry->source, entry->span.id});
    std::vector<const ClusterTraceEntry*> kids;
    for (auto it = lo; it != hi; ++it) {
      kids.push_back(it->second);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out.str();
}

std::string ClusterTrace::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("root").UInt(root);
  w.Key("spans");
  w.BeginArray();
  for (const ClusterTraceEntry& entry : spans) {
    // Same shape as SpanRecordToJson plus a leading "source".
    JsonWriter span_json;
    SpanRecordToJson(entry.span, span_json);
    std::string body = span_json.str();  // "{...}"
    w.Raw("{\"source\":\"" + JsonEscape(entry.source) + "\"," + body.substr(1));
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

ClusterTrace AssembleClusterTrace(
    uint64_t root, const SpanTree& coordinator,
    const std::vector<std::pair<std::string, const SpanTree*>>& nodes) {
  ClusterTrace trace;
  trace.root = root;
  for (SpanRecord& record : coordinator.Tree(root)) {
    trace.spans.push_back({"coord", std::move(record)});
  }
  for (const auto& [label, tree] : nodes) {
    if (tree == nullptr) {
      continue;
    }
    for (uint64_t local_root : tree->RemoteTrees(root)) {
      for (SpanRecord& record : tree->Tree(local_root)) {
        trace.spans.push_back({label, std::move(record)});
      }
    }
  }
  return trace;
}

}  // namespace ss
