// Bounded ring of structured trace events — the "what just happened" side of the
// observability layer, complementing the "how much" side in metrics.h.
//
// The node server records one event per request-plane and control-plane operation:
// kind, shard, disk, resulting status, and the virtual-clock ticks the operation
// consumed. The ring is bounded (old events are overwritten) so it is safe to leave
// recording on inside PBT harnesses that run hundreds of thousands of operations;
// `total_recorded()` keeps the lifetime count so oracles can still assert on exact
// event totals after wraparound.
//
// Like MetricRegistry, the ring's lock is a leaf-mode ss::Mutex: recording an event
// must not become a model-checker scheduling point, but the lock stays visible to the
// lock-order witness.

#ifndef SS_OBS_TRACE_H_
#define SS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sync/sync.h"

namespace ss {

enum class TraceKind : uint8_t {
  kPut = 0,
  kGet,
  kDelete,
  kListShards,
  kFlush,
  kMigrateShard,
  kEvacuateDisk,
  kCrashRecoverDisk,
  kRemoveDisk,
  kRestoreDisk,
  kMarkDegraded,
  kResetHealth,
  kPutBatch,
  kDeleteBatch,
  kScan,
};

std::string_view TraceKindName(TraceKind kind);

struct TraceEvent {
  uint64_t seq = 0;  // monotonically increasing across the ring's lifetime
  TraceKind kind = TraceKind::kGet;
  uint64_t shard = 0;  // shard id, or 0 for whole-disk operations
  int32_t disk = -1;   // disk index the operation touched / routed to, -1 if unknown
  StatusCode status = StatusCode::kOk;
  uint64_t duration_ticks = 0;  // virtual-clock ticks consumed, 0 if not measured
  // Root span id of the operation in the node's SpanTree (0 = no span recorded);
  // links the flat trace event to its causal span tree.
  uint64_t root_span = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit TraceRing(size_t capacity = kDefaultCapacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Returns the event's lifetime sequence number. (The typed RPC envelopes hand back
  // the operation's root span id as `trace_id`; `root_span` on the event links the
  // flat record to that tree.)
  uint64_t Record(TraceKind kind, uint64_t shard, int32_t disk, StatusCode status,
                  uint64_t duration_ticks = 0, uint64_t root_span = 0);

  // The retained events, oldest first. At most capacity() entries.
  std::vector<TraceEvent> Events() const;
  // Lifetime event count, unaffected by wraparound.
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

  std::string ToString(size_t max_events = 16) const;

 private:
  mutable Mutex mu_{MutexAttr{"obs.trace", lockrank::kObs, /*leaf=*/true}};
  const size_t capacity_;
  std::vector<TraceEvent> ring_;  // indexed by seq % capacity_ once full
  uint64_t next_seq_ = 0;
};

}  // namespace ss

#endif  // SS_OBS_TRACE_H_
