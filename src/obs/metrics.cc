#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/obs/json.h"

namespace ss {

namespace {

// FNV-1a; stable across platforms so shard assignment (and thus lock order within a
// single lookup) is deterministic.
size_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<uint64_t> DefaultTickBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) {
    return 0;
  }
  if (bounds.empty()) {
    return sum / count;  // a single +inf bucket cannot resolve any quantile
  }
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the quantile sample, 1-based: ceil(q * count), at least 1.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return bounds[i];
    }
  }
  return bounds.back() + 1;  // overflow bucket
}

std::string HistogramSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("count").UInt(count);
  w.Key("sum").UInt(sum);
  w.Key("bounds").BeginArray();
  for (uint64_t b : bounds) {
    w.UInt(b);
  }
  w.EndArray();
  w.Key("counts").BeginArray();
  for (uint64_t c : counts) {
    w.UInt(c);
  }
  w.EndArray();
  w.Key("p50").UInt(ValueAtQuantile(0.5));
  w.Key("p99").UInt(ValueAtQuantile(0.99));
  w.Key("p999").UInt(ValueAtQuantile(0.999));
  w.EndObject();
  return w.str();
}

std::string HistogramSnapshot::ToString() const {
  std::ostringstream out;
  out << "count=" << count << " sum=" << sum << " |";
  for (size_t i = 0; i < bounds.size(); ++i) {
    out << " <=" << bounds[i] << ":" << counts[i];
  }
  if (!counts.empty()) {
    out << " +inf:" << counts.back();
  }
  return out.str();
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << "== counters ==\n";
  for (const auto& [name, value] : counters) {
    out << "  " << name << " = " << value << "\n";
  }
  if (!gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& [name, value] : gauges) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!histograms.empty()) {
    out << "== histograms ==\n";
    for (const auto& [name, hist] : histograms) {
      out << "  " << name << " " << hist.ToString() << "\n";
    }
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name).UInt(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : histograms) {
    w.Key(name).Raw(hist.ToJson());
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;  // uint64 wraparound on overflow is intended
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] += value;
  }
  for (const auto& [name, theirs] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, theirs);
    if (inserted) {
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.bounds == theirs.bounds && mine.counts.size() == theirs.counts.size()) {
      for (size_t i = 0; i < mine.counts.size(); ++i) {
        mine.counts[i] += theirs.counts[i];
      }
    }  // mismatched shapes keep this snapshot's buckets; only the totals fold in
    mine.count += theirs.count;
    mine.sum += theirs.sum;
  }
}

uint64_t CounterDelta(const MetricsSnapshot& before, const MetricsSnapshot& after,
                      std::string_view name) {
  const uint64_t b = before.counter(name);
  const uint64_t a = after.counter(name);
  return a >= b ? a - b : 0;
}

MetricRegistry::Shard& MetricRegistry::ShardFor(std::string_view name) const {
  return shards_[HashName(name) % kShardCount];
}

Counter& MetricRegistry::counter(std::string_view name) {
  Shard& shard = ShardFor(name);
  LockGuard lock(shard.mu);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    it = shard.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  Shard& shard = ShardFor(name);
  LockGuard lock(shard.mu);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    it = shard.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name, std::vector<uint64_t> bounds) {
  Shard& shard = ShardFor(name);
  LockGuard lock(shard.mu);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot out;
  SnapshotInto(out);
  return out;
}

void MetricRegistry::SnapshotInto(MetricsSnapshot& out) const {
  for (const Shard& shard : shards_) {
    LockGuard lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      out.counters[name] += counter->Value();
    }
    for (const auto& [name, gauge] : shard.gauges) {
      out.gauges[name] += gauge->Value();
    }
    for (const auto& [name, hist] : shard.histograms) {
      HistogramSnapshot snap = hist->Snapshot();
      auto [it, inserted] = out.histograms.emplace(name, std::move(snap));
      if (!inserted) {
        HistogramSnapshot& merged = it->second;
        if (merged.bounds == hist->bounds()) {
          const HistogramSnapshot fresh = hist->Snapshot();
          for (size_t i = 0; i < merged.counts.size(); ++i) {
            merged.counts[i] += fresh.counts[i];
          }
          merged.count += fresh.count;
          merged.sum += fresh.sum;
        } else {
          // Different shapes can't merge bucket-wise; keep the first shape and fold
          // the totals so count/sum stay exact.
          merged.count += hist->Count();
          merged.sum += hist->Sum();
        }
      }
    }
  }
}

}  // namespace ss
