#include "src/obs/span.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/obs/json.h"

namespace ss {

std::string SpanRecord::ToString() const {
  std::ostringstream out;
  out << "#" << id << " " << name << " parent=" << parent << " root=" << root
      << " ticks=" << duration_ticks << " status=" << StatusCodeName(status);
  if (remote_root != 0) {
    out << " remote_parent=" << remote_parent << " remote_root=" << remote_root;
  }
  if (open) {
    out << " (open)";
  }
  return out.str();
}

SpanTree::SpanTree(size_t capacity, MetricRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics) {
  ring_.reserve(capacity_);
}

uint64_t SpanTree::InsertLocked(SpanRecord record) {
  const uint64_t id = next_id_++;
  record.id = id;
  if (record.root == 0) {
    record.root = id;
  }
  const size_t slot = static_cast<size_t>((id - 1) % capacity_);
  if (slot < ring_.size()) {
    ring_[slot] = std::move(record);
  } else {
    ring_.push_back(std::move(record));
  }
  return id;
}

uint64_t SpanTree::StartSpan(std::string_view name, uint64_t parent, uint64_t root,
                             uint64_t start_ticks) {
  LockGuard lock(mu_);
  SpanRecord record;
  record.parent = parent;
  record.root = root;
  record.name = std::string(name);
  record.start_ticks = start_ticks;
  return InsertLocked(std::move(record));
}

uint64_t SpanTree::StartRemoteSpan(std::string_view name, TraceContext remote,
                                   uint64_t start_ticks) {
  LockGuard lock(mu_);
  SpanRecord record;
  record.remote_parent = remote.parent;
  record.remote_root = remote.root;
  record.name = std::string(name);
  record.start_ticks = start_ticks;
  return InsertLocked(std::move(record));  // locally rooted: parent/root stay 0/self
}

std::vector<uint64_t> SpanTree::RemoteTrees(uint64_t remote_root) const {
  LockGuard lock(mu_);
  std::vector<uint64_t> out;
  for (const SpanRecord& record : SpansLocked()) {
    if (record.id == record.root && record.remote_root == remote_root) {
      out.push_back(record.id);
    }
  }
  return out;
}

void SpanTree::EndSpan(uint64_t id, StatusCode status, uint64_t duration_ticks) {
  Histogram* histogram = nullptr;
  {
    LockGuard lock(mu_);
    if (id == 0 || id >= next_id_) {
      return;
    }
    const size_t slot = static_cast<size_t>((id - 1) % capacity_);
    if (slot >= ring_.size() || ring_[slot].id != id) {
      return;  // overwritten by wraparound; the lifetime counter still covers it
    }
    SpanRecord& record = ring_[slot];
    record.status = status;
    record.duration_ticks = duration_ticks;
    record.open = false;
    if (metrics_ != nullptr) {
      auto it = histogram_cache_.find(record.name);
      if (it == histogram_cache_.end()) {
        it = histogram_cache_
                 .emplace(record.name,
                          &metrics_->histogram("span." + record.name + ".ticks"))
                 .first;
      }
      histogram = it->second;
    }
  }
  if (histogram != nullptr) {
    histogram->Record(duration_ticks);
  }
}

std::vector<SpanRecord> SpanTree::SpansLocked() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (const SpanRecord& record : ring_) {
    if (record.id != 0) {
      out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

std::vector<SpanRecord> SpanTree::Spans() const {
  LockGuard lock(mu_);
  return SpansLocked();
}

std::vector<SpanRecord> SpanTree::Tree(uint64_t root) const {
  std::vector<SpanRecord> all = Spans();
  std::vector<SpanRecord> out;
  for (SpanRecord& record : all) {
    if (record.root == root) {
      out.push_back(std::move(record));
    }
  }
  return out;
}

uint64_t SpanTree::total_started() const {
  LockGuard lock(mu_);
  return next_id_ - 1;
}

std::string SpanTree::ToString(uint64_t root) const {
  const std::vector<SpanRecord> spans = Tree(root);
  std::multimap<uint64_t, const SpanRecord*> children;
  const SpanRecord* root_record = nullptr;
  for (const SpanRecord& record : spans) {
    if (record.id == root) {
      root_record = &record;
    } else {
      children.emplace(record.parent, &record);
    }
  }
  std::ostringstream out;
  if (root_record == nullptr) {
    out << "span #" << root << " <not retained>\n";
    return out.str();
  }
  // Depth-first with an explicit stack; children sorted by id via the multimap.
  std::vector<std::pair<const SpanRecord*, int>> stack = {{root_record, 0}};
  while (!stack.empty()) {
    auto [record, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) {
      out << "  ";
    }
    out << record->ToString() << "\n";
    auto [lo, hi] = children.equal_range(record->id);
    std::vector<const SpanRecord*> kids;
    for (auto it = lo; it != hi; ++it) {
      kids.push_back(it->second);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out.str();
}

void SpanRecordToJson(const SpanRecord& record, JsonWriter& w) {
  w.BeginObject();
  w.Key("id").UInt(record.id);
  w.Key("parent").UInt(record.parent);
  w.Key("root").UInt(record.root);
  if (record.remote_root != 0) {
    w.Key("remote_parent").UInt(record.remote_parent);
    w.Key("remote_root").UInt(record.remote_root);
  }
  w.Key("name").String(record.name);
  w.Key("start_ticks").UInt(record.start_ticks);
  w.Key("duration_ticks").UInt(record.duration_ticks);
  w.Key("status").String(StatusCodeName(record.status));
  w.Key("open").Bool(record.open);
  w.EndObject();
}

namespace {

std::string SpansJson(const std::vector<SpanRecord>& spans) {
  JsonWriter w;
  w.BeginArray();
  for (const SpanRecord& record : spans) {
    SpanRecordToJson(record, w);
  }
  w.EndArray();
  return w.str();
}

}  // namespace

std::string SpanTree::ToJson(uint64_t root) const { return SpansJson(Tree(root)); }

std::string SpanTree::ToJson() const { return SpansJson(Spans()); }

Span::Span(SpanTree* tree, const TickSource* clock, std::string_view name, uint64_t parent,
           uint64_t root)
    : tree_(tree), clock_(clock) {
  if (tree_ == nullptr) {
    return;
  }
  start_ = clock_ != nullptr ? clock_->SpanTicksNow() : 0;
  id_ = tree_->StartSpan(name, parent, root, start_);
  root_ = root == 0 ? id_ : root;
  open_ = true;
}

Span::Span(SpanTree* tree, const TickSource* clock, std::string_view name, TraceContext remote)
    : tree_(tree), clock_(clock) {
  if (tree_ == nullptr) {
    return;
  }
  start_ = clock_ != nullptr ? clock_->SpanTicksNow() : 0;
  id_ = tree_->StartRemoteSpan(name, remote, start_);
  root_ = id_;  // locally rooted; the remote linkage lives in the record
  open_ = true;
}

Span::Span(Span&& other) noexcept
    : tree_(other.tree_),
      clock_(other.clock_),
      id_(other.id_),
      root_(other.root_),
      start_(other.start_),
      ticks_(other.ticks_),
      status_(other.status_),
      open_(other.open_) {
  other.tree_ = nullptr;
  other.open_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tree_ = other.tree_;
    clock_ = other.clock_;
    id_ = other.id_;
    root_ = other.root_;
    start_ = other.start_;
    ticks_ = other.ticks_;
    status_ = other.status_;
    open_ = other.open_;
    other.tree_ = nullptr;
    other.open_ = false;
  }
  return *this;
}

Span::~Span() { End(); }

uint64_t Span::End() {
  if (!open_) {
    return ticks_;
  }
  open_ = false;
  uint64_t duration = ticks_;
  if (clock_ != nullptr) {
    duration += clock_->SpanTicksNow() - start_;
  }
  ticks_ = duration;
  tree_->EndSpan(id_, status_, duration);
  return duration;
}

}  // namespace ss
