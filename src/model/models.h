// Executable reference models (paper section 3.2).
//
// Each ShardStore component gets a reference model: an executable specification with
// the same interface but a trivially simple implementation (a hash map instead of a
// persistent LSM tree). The conformance harnesses (src/harness) run implementation and
// model side by side and compare; the same models double as mocks in unit tests.
//
// KvStoreModel carries the section-5 crash extension: every mutation records the
// implementation-returned Dependency, and OnCrashRecovered() collapses each key's
// history to the latest mutation whose dependency reports persistent — the state the
// persistence property says a correct recovery must expose.
//
// Two of Figure 5's issues were bugs in the *models* themselves (#9, #15); both are
// seeded here.

#ifndef SS_MODEL_MODELS_H_
#define SS_MODEL_MODELS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/dep/dependency.h"
#include "src/lsm/lsm_index.h"

namespace ss {

// Reference model for the index component (paper Figure 3): a plain ordered map with
// the LsmIndex interface. Background operations (flush, compaction, reclamation,
// reboot) do not change the key-value mapping, so they have no model counterpart.
class IndexModel {
 public:
  void Put(ShardId id, ShardRecord record) { map_[id] = std::move(record); }
  void Delete(ShardId id) { map_.erase(id); }
  std::optional<ShardRecord> Get(ShardId id) const {
    auto it = map_.find(id);
    if (it == map_.end()) {
      return std::nullopt;
    }
    return it->second;
  }
  std::vector<ShardId> Keys() const {
    std::vector<ShardId> out;
    out.reserve(map_.size());
    for (const auto& [id, record] : map_) {
      out.push_back(id);
    }
    return out;
  }
  // Ordered-map scan oracle: the live entries in the half-open window [start, end).
  // What LsmIndex::Scan must produce after its merge, whatever the level layout.
  std::vector<std::pair<ShardId, ShardRecord>> Scan(ShardId start, ShardId end) const {
    std::vector<std::pair<ShardId, ShardRecord>> out;
    for (auto it = map_.lower_bound(start); it != map_.end() && it->first < end; ++it) {
      out.push_back(*it);
    }
    return out;
  }
  size_t size() const { return map_.size(); }

 private:
  std::map<ShardId, ShardRecord> map_;
};

// Reference model for the chunk store. Model locators are abstract tokens; the
// conformance harness maintains the correspondence between implementation locators and
// model locators and checks it stays a bijection. Seeded bug #15 makes the model re-use
// locator tokens, which breaks that uniqueness assumption — the paper's example of a
// bug found in a reference model itself.
class ChunkStoreModel {
 public:
  using ModelLocator = uint64_t;

  ModelLocator Put(Bytes data);
  // nullopt: unknown/forgotten locator.
  std::optional<Bytes> Get(ModelLocator loc) const;
  // Drop the mapping (the chunk becomes garbage; reclamation is a model no-op).
  void Forget(ModelLocator loc);
  size_t size() const { return map_.size(); }

 private:
  std::map<ModelLocator, Bytes> map_;
  std::vector<ModelLocator> free_list_;  // only used by the seeded model bug
  ModelLocator next_ = 1;
};

// Reference model for the whole key-value store, with the crash extension.
class KvStoreModel {
 public:
  void Put(ShardId id, Bytes value, Dependency dep);
  void Delete(ShardId id, Dependency dep);

  // Current (crash-free) expected value; nullopt = absent.
  std::optional<Bytes> Get(ShardId id) const;
  std::vector<ShardId> List() const;
  // Ordered scan oracle over the current state: live (id, value) pairs with id in the
  // half-open window [start, end), in key order.
  std::vector<std::pair<ShardId, Bytes>> Scan(ShardId start, ShardId end) const;

  // --- Crash extension (section 5) -------------------------------------------------------
  //
  // After a crash, the persistence property allows each key to surface the value of the
  // *latest mutation whose dependency persisted*, or any later in-flight mutation (an
  // operation may survive a crash even if its — possibly stronger-than-necessary —
  // dependency reports non-persistent; the property is an implication, not an
  // equivalence). What is never allowed: values from before the last persisted
  // mutation (resurrection) or losing the last persisted value without a later
  // surviving mutation.

  // The set of values a key may legally have after a crash. `allow_absent` covers
  // tombstones and never-persisted keys.
  struct CrashAllowed {
    bool allow_absent = false;
    std::vector<Bytes> values;

    bool Permits(const std::optional<Bytes>& observed) const;
  };
  CrashAllowed AllowedAfterCrash(ShardId id) const;

  // Adopt the implementation's observed post-crash state for `id` (the recovered state
  // is durable and becomes the new history baseline). Returns false — a consistency
  // violation — if the observation is not in the allowed set.
  bool AdoptPostCrash(ShardId id, const std::optional<Bytes>& observed);

  // Keys ever touched (for post-crash sweeps, including keys that should be absent).
  std::vector<ShardId> TouchedKeys() const;

 private:
  struct Version {
    std::optional<Bytes> value;  // nullopt = delete
    Dependency dep;
  };
  std::map<ShardId, std::vector<Version>> history_;
};

}  // namespace ss

#endif  // SS_MODEL_MODELS_H_
