#include "src/model/models.h"

#include "src/common/cover.h"
#include "src/faults/faults.h"

namespace ss {

ChunkStoreModel::ModelLocator ChunkStoreModel::Put(Bytes data) {
  ModelLocator loc;
  if (BugEnabled(SeededBug::kModelLocatorReuse) && !free_list_.empty()) {
    // Buggy model path: recycles locator tokens of forgotten chunks. Other harness code
    // assumes model locators are unique forever (paper issue #15).
    SS_COVER("model.bug15_locator_reuse");
    loc = free_list_.back();
    free_list_.pop_back();
  } else {
    loc = next_++;
  }
  map_[loc] = std::move(data);
  return loc;
}

std::optional<Bytes> ChunkStoreModel::Get(ModelLocator loc) const {
  auto it = map_.find(loc);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void ChunkStoreModel::Forget(ModelLocator loc) {
  if (map_.erase(loc) != 0) {
    free_list_.push_back(loc);
  }
}

void KvStoreModel::Put(ShardId id, Bytes value, Dependency dep) {
  history_[id].push_back(Version{std::move(value), std::move(dep)});
}

void KvStoreModel::Delete(ShardId id, Dependency dep) {
  history_[id].push_back(Version{std::nullopt, std::move(dep)});
}

std::optional<Bytes> KvStoreModel::Get(ShardId id) const {
  auto it = history_.find(id);
  if (it == history_.end() || it->second.empty()) {
    return std::nullopt;
  }
  return it->second.back().value;
}

std::vector<ShardId> KvStoreModel::List() const {
  std::vector<ShardId> out;
  for (const auto& [id, versions] : history_) {
    if (!versions.empty() && versions.back().value.has_value()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<std::pair<ShardId, Bytes>> KvStoreModel::Scan(ShardId start, ShardId end) const {
  std::vector<std::pair<ShardId, Bytes>> out;
  for (auto it = history_.lower_bound(start); it != history_.end() && it->first < end; ++it) {
    if (!it->second.empty() && it->second.back().value.has_value()) {
      out.push_back({it->first, *it->second.back().value});
    }
  }
  return out;
}

bool KvStoreModel::CrashAllowed::Permits(const std::optional<Bytes>& observed) const {
  if (!observed.has_value()) {
    return allow_absent;
  }
  for (const Bytes& value : values) {
    if (value == *observed) {
      return true;
    }
  }
  return false;
}

KvStoreModel::CrashAllowed KvStoreModel::AllowedAfterCrash(ShardId id) const {
  CrashAllowed allowed;
  auto it = history_.find(id);
  if (it == history_.end() || it->second.empty()) {
    allowed.allow_absent = true;
    return allowed;
  }
  const std::vector<Version>& versions = it->second;
  if (BugEnabled(SeededBug::kRecoveryWritePointerPastCrash)) {
    // Buggy model path (paper issue #9: "reference model was not updated correctly
    // after a crash"): if the latest in-flight mutation is a delete, the model assumes
    // the key is gone — forgetting that an unpersisted delete can be lost by the crash,
    // leaving the previously persisted value readable. A *correct* implementation then
    // fails the conformance check, which is how the paper's property test surfaced its
    // model bug (after the famous 61-op -> 6-op minimization).
    if (!versions.back().value.has_value()) {
      SS_COVER("model.bug9_wrong_rollback");
      allowed.allow_absent = true;
      return allowed;
    }
  }
  // Find the latest persisted mutation; everything from it onward is a legal survivor.
  size_t first_allowed = 0;
  bool any_persistent = false;
  for (size_t i = versions.size(); i-- > 0;) {
    if (versions[i].dep.IsPersistent()) {
      first_allowed = i;
      any_persistent = true;
      break;
    }
  }
  if (!any_persistent) {
    // Nothing durable was promised: the key may be absent or reflect any in-flight
    // mutation.
    allowed.allow_absent = true;
    first_allowed = 0;
  }
  for (size_t i = first_allowed; i < versions.size(); ++i) {
    if (versions[i].value.has_value()) {
      allowed.values.push_back(*versions[i].value);
    } else {
      allowed.allow_absent = true;
    }
  }
  return allowed;
}

bool KvStoreModel::AdoptPostCrash(ShardId id, const std::optional<Bytes>& observed) {
  if (!AllowedAfterCrash(id).Permits(observed)) {
    return false;
  }
  std::vector<Version>& versions = history_[id];
  versions.clear();
  if (observed.has_value()) {
    // The recovered state is on disk, hence durable.
    versions.push_back(Version{*observed, Dependency()});
  }
  return true;
}

std::vector<ShardId> KvStoreModel::TouchedKeys() const {
  std::vector<ShardId> out;
  out.reserve(history_.size());
  for (const auto& [id, versions] : history_) {
    out.push_back(id);
  }
  return out;
}

}  // namespace ss
