// Cluster tier: quorum replication across NodeServers (Dynamo-style, paper scope
// "beyond the single node" — ROADMAP item 1).
//
// A ClusterCoordinator owns a set of ClusterNodes (each a full NodeServer), a
// consistent-hash ring placing every key on N distinct members, a simulated network
// carrying all cross-node traffic, and a heartbeat failure detector. Client ops fan
// out to the key's N owners and succeed on configurable quorums:
//
//   * Put/Delete — coordinator assigns a monotonically increasing version, writes the
//     versioned record (tombstone for deletes) to all owners, acks at W. Unreachable
//     owners get a *hint* (sloppy handoff): the newest missed record per (node, key)
//     is kept and replayed by Tick() once the node is reachable again.
//   * Get — reads owners in rotating order until R replies, returns the newest
//     version among them, and *read-repairs* any contacted replica that returned an
//     older version (guarded by the replica version check, so repair races are
//     harmless). Divergence is possible exactly because Put acks at W < N.
//
// Per-replica RPCs run under the shared ss::common::RetryPolicy (same backoff
// semantics as ExtentManager's disk retries) with a per-op virtual-tick timeout:
// deliveries whose network delay exceeds it count as retryable timeouts. Degraded
// results are typed, not stringly: QuorumResult says how many acks out of how many
// required, and whether the op was clean (kOk), short of full replication but at
// quorum (kDegraded), or failed (kNoQuorum).
//
// Membership is dynamic. NodeJoin/NodeLeave rebalance the moved keys through the net
// (reads from old owners, version-guarded writes to new owners). A join that cannot
// read every old owner records the unread nodes in a *pending-moves* table; until a
// Tick drains the entry, reads of that key must also consult those pending sources —
// that is what keeps acked writes linearizable across a rebalance that raced a
// partition. A leave commits only when every moved key was cleanly re-replicated
// (otherwise the ring change is rolled back and the leave refused), so a departing
// node can never strand the sole copy of an acked write.
//
// Safety story (model-checked in tests/cluster_test.cc):
//   * R + W > N  =>  every read quorum intersects every write quorum, so reads see
//     the newest acked version — CheckLinearizable passes across every explored
//     interleaving of concurrent ops, partitions, crashes, and heals.
//   * R + W <= N (allow_unsafe_quorums) => ss::mc finds the stale read and the
//     failure surfaces as a replayable flight-recorder counterexample.
// Seeded bug #17 (seeded_bug_read_repair_wrong_value) makes read repair write the
// newest *version* with the first reply's *value*; the harness model catches the
// value/version mismatch and the PBT shrinker minimizes the trace.

#ifndef SS_CLUSTER_COORDINATOR_H_
#define SS_CLUSTER_COORDINATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster_net.h"
#include "src/cluster/failure_detector.h"
#include "src/cluster/hash_ring.h"
#include "src/cluster/replica.h"
#include "src/common/retry_policy.h"
#include "src/obs/cluster_trace.h"

namespace ss {
namespace cluster {

struct ClusterOptions {
  // Members created at startup, ids 0..initial_nodes-1. Must be >= replication.
  int initial_nodes = 3;
  uint32_t replication = 3;   // N: owners per key
  uint32_t read_quorum = 2;   // R: replies required to serve a Get
  uint32_t write_quorum = 2;  // W: acks required to ack a Put/Delete
  uint32_t vnodes = 16;       // ring points per member

  NodeServerOptions node;  // storage configuration of each member
  ClusterNetOptions net;   // fault surface of the simulated network

  // Retry policy for each per-replica RPC (drops and timeouts are retryable;
  // partitions and crashes are not). Backoff ticks are charged to the net's clock.
  common::RetryOptions rpc_retry{.max_attempts = 3, .backoff_base_ticks = 1};
  // A delivery whose network delay exceeds this counts as a (retryable) timeout.
  // 0 disables the timeout check.
  uint64_t op_timeout_ticks = 64;

  FailureDetectorOptions fd;
  // Virtual ticks charged per Tick() heartbeat round.
  uint64_t heartbeat_period_ticks = 4;

  size_t span_capacity = SpanTree::kDefaultCapacity;

  // Permit R + W <= N. Only the model-checker misconfiguration demo sets this; the
  // constructor otherwise rejects unsafe quorums with kInvalidArgument.
  bool allow_unsafe_quorums = false;
  // Seeded bug #17: read repair pushes the newest version number paired with the
  // *first* successful reply's value, silently corrupting the repaired replicas.
  bool seeded_bug_read_repair_wrong_value = false;
};

enum class QuorumOutcome : uint8_t {
  kOk = 0,        // every contacted owner acked
  kDegraded = 1,  // quorum met, but some owners missed (hinted / repair pending)
  kNoQuorum = 2,  // quorum not met; the op failed
};

const char* QuorumOutcomeName(QuorumOutcome outcome);

// Typed envelope for every client-facing cluster op (the cluster-tier analogue of
// rpc::PutResult): status plus the quorum arithmetic a caller or oracle needs to
// interpret it, never a bare error string.
struct QuorumResult {
  Status status;
  QuorumOutcome outcome = QuorumOutcome::kNoQuorum;
  int acks = 0;       // owner replies that succeeded
  int required = 0;   // quorum size (R or W)
  int contacted = 0;  // owners actually sent an RPC
  // Read payload (Get only): found == false for absent keys / tombstones.
  bool found = false;
  Bytes value;
  uint64_t version = 0;
  int read_repairs = 0;   // stale replicas repaired by this Get
  int hints_stored = 0;   // owners this write could not reach (hinted instead)
  uint64_t trace_id = 0;  // root span id in spans() for this op's causal tree

  bool ok() const { return status.ok(); }
};

class ClusterCoordinator {
 public:
  static Result<std::unique_ptr<ClusterCoordinator>> Create(ClusterOptions options = {});

  // --- Client request plane ------------------------------------------------------------
  QuorumResult Put(ShardId key, ByteSpan value);
  QuorumResult Get(ShardId key);
  QuorumResult Delete(ShardId key);

  // --- Background plane ----------------------------------------------------------------
  // One maintenance round: advances the cluster clock by heartbeat_period_ticks,
  // heartbeats every member (feeding the failure detector; partitions, crashes, and
  // drops all count as misses), replays stored hints toward reachable targets, and
  // retries pending rebalance moves.
  void Tick(uint64_t rounds = 1);

  // --- Membership ----------------------------------------------------------------------
  // Adds a new member and rebalances the keys it now owns. `id` must be fresh.
  Status NodeJoin(int id);
  // Gracefully removes a member. Commits only when every moved key was re-replicated
  // cleanly (all old owners read, all new owners written, no pending moves
  // outstanding); otherwise rolls the ring back and returns kUnavailable. Refuses
  // (kInvalidArgument) when the remaining membership could not hold N replicas.
  Status NodeLeave(int id);

  // --- Fault plane (network-level; the node's disks and data survive) ------------------
  Status CrashNode(int id);
  Status RestartNode(int id);

  // --- Introspection (tests / harness oracles) -----------------------------------------
  std::vector<int> Nodes() const;
  NodeHealth HealthOf(int node) const;
  std::vector<int> OwnersOf(ShardId key) const;
  // Nodes a Get of `key` must additionally read while its rebalance move is pending
  // (empty when none). PendingKeyCount is the number of keys with pending moves.
  std::vector<int> PendingSourcesOf(ShardId key) const;
  size_t PendingKeyCount() const;
  size_t HintCount() const;
  // Reads the replica's stored record directly, bypassing the network (divergence /
  // repair-convergence oracles).
  Result<std::optional<ReplicaRecord>> DebugReplicaRead(int node, ShardId key);

  ClusterNet& net() { return net_; }
  const HashRing& ring() const { return ring_; }
  MetricRegistry& metrics() { return metrics_; }
  SpanTree& spans() { return spans_; }
  ss::MetricsSnapshot MetricsSnapshot() const;
  std::string DumpMetrics() const;

  // Assembles the cross-node trace keyed by a coordinator root span id (a
  // QuorumResult::trace_id): the coordinator's tree plus every member subtree that
  // adopted the op's TraceContext, stitched under the per-replica RPC spans. A
  // replica a fault kept the message from shows up as a *missing* source — the
  // degraded path is visible as absence, not as an error entry.
  ClusterTrace AssembleTrace(uint64_t root_id) const;

  // Point-in-time cluster state as one JSON object: per-node failure-detector
  // health/misses/crash flag/hint-queue depth, ring membership + per-key ownership,
  // pending rebalance moves, the acked-version floor table, and a metrics block
  // holding the coordinator registry plus the per-node registries aggregated with
  // MetricsSnapshot::MergeFrom. Attached to every cluster-harness flight artifact.
  std::string ClusterSnapshotJson() const;

  const ClusterOptions& options() const { return options_; }

 private:
  explicit ClusterCoordinator(ClusterOptions options);

  // Moves one key's data from its pre-change owners to its post-change owners.
  // Returns true when the move was fully clean (every source read, every target
  // written); on a dirty move, records hints for unwritten targets and (when
  // `record_pending`) pending sources for unread old owners.
  bool RebalanceKey(ShardId key, const std::vector<int>& old_owners,
                    const std::vector<int>& new_owners, bool record_pending,
                    const SpanScope& scope);

  // One per-replica RPC with retry + timeout. Write: pushes `record`; read: fills
  // `out` (nullopt when the replica has no record). `phase` names the child span.
  Status ContactWrite(int node, ShardId key, const ReplicaRecord& record,
                      const SpanScope& scope, const char* phase);
  Status ContactRead(int node, ShardId key, std::optional<ReplicaRecord>* out,
                     const SpanScope& scope);
  // Shared fan-out body of Put/Delete (a delete is a tombstone write).
  QuorumResult WriteInternal(ShardId key, const ReplicaRecord& record, const char* op,
                             Counter* ok_counter, Counter* err_counter);

  std::shared_ptr<ClusterNode> NodeFor(int id) const;
  // Stores (newest-wins per target/key) a hint for an unreachable owner.
  void StoreHint(int node, ShardId key, const ReplicaRecord& record);
  // Replays every stored hint whose target is reachable; failed replays are kept.
  void ReplayHints(const SpanScope& scope);
  // Retries pending rebalance moves; entries drain once every source was read and
  // the newest record reached enough new owners to guarantee read-quorum overlap.
  void RetryPendingMoves(const SpanScope& scope);
  // One heartbeat round through the net, feeding the failure detector.
  void HeartbeatRound();

  ClusterOptions options_;

  // Construction order matters: metrics before the net and span tree (both record
  // into it), and all of them before the nodes.
  MetricRegistry metrics_;
  ClusterNet net_;
  SpanTree spans_;
  HashRing ring_;
  common::RetryPolicy rpc_policy_;

  // Coordinator-assigned record versions and the rotating Get start offset. Both are
  // ss::Atomic so every draw is a model-checker scheduling point: the checker can
  // order concurrent versions either way and can steer readers at different replicas
  // (which is how it reaches the stale-read interleavings under unsafe quorums).
  Atomic<uint64_t> version_counter_{0};
  Atomic<uint64_t> read_rotation_{0};

  // Membership, hints, pending moves, and the failure detector. Never held across a
  // net_.Deliver call: ops snapshot what they need, release, then fan out.
  mutable Mutex mu_{MutexAttr{"cluster.coord", lockrank::kClusterCoord}};
  std::map<int, std::shared_ptr<ClusterNode>> nodes_;
  FailureDetector fd_;
  // target node -> key -> newest missed record
  std::map<int, std::map<ShardId, ReplicaRecord>> hints_;
  // key -> old owners a Get must still read (rebalance raced a fault)
  std::map<ShardId, std::vector<int>> pending_moves_;
  // key -> highest version known committed (acked at W, or served by a read after
  // re-establishing quorum overlap). A Get that surfaces a version above this floor
  // must push it onto enough owners to guarantee future read quorums see it *before*
  // serving it — otherwise a failed write observed once could vanish from the next
  // read, which is exactly the non-linearizable anomaly the checker would flag.
  std::map<ShardId, uint64_t> acked_;
  // Every key a client ever wrote: the rebalance scan set. Bounded by the harness /
  // test keyspace; a production ring would walk the stores instead.
  std::set<ShardId> keys_;

  Counter* put_ok_;
  Counter* write_degraded_;
  Counter* put_err_;
  Counter* get_ok_;
  Counter* get_err_;
  Counter* delete_ok_;
  Counter* delete_err_;
  Counter* no_quorum_;
  Counter* read_repairs_;
  Counter* hints_stored_;
  Counter* hints_replayed_;
  Counter* hints_dropped_;
  Counter* rpc_retries_;
  Counter* rpc_timeouts_;
  Counter* heartbeats_;
  Counter* heartbeat_misses_;
  Counter* fd_suspects_;
  Counter* fd_downs_;
  Counter* fd_recoveries_;
  Counter* joins_;
  Counter* leaves_;
  Counter* leave_refused_;
  Counter* rebalance_moved_;
  Counter* rebalance_pending_;
  Counter* crashes_;
  Counter* restarts_;
};

}  // namespace cluster
}  // namespace ss

#endif  // SS_CLUSTER_COORDINATOR_H_
