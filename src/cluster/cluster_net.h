// Simulated message-passing network for the cluster tier.
//
// All cross-node traffic (quorum RPCs, heartbeats, hint replay, rebalance copies)
// flows through one ClusterNet, which owns the *cluster virtual clock* and the full
// fault surface:
//   * message drop        — per-delivery probability, deterministic ss::Rng,
//   * message delay       — base + jittered ticks charged to the virtual clock; the
//                           coordinator turns delays past its per-op timeout into
//                           retryable timeout failures,
//   * message duplication — the handler runs twice (receivers must be idempotent;
//                           replica writes are, by version guard),
//   * link partition      — symmetric per-pair blackhole until healed,
//   * node crash/restart  — the endpoint accepts nothing until restarted.
// Every decision is drawn from explicitly seeded state, so harness failures replay
// from their seeds and model-checked executions see identical network behaviour on
// every explored schedule. No wall clock anywhere: delays advance a tick counter
// (the same virtual-clock discipline as ExtentManager's retry clock), which also
// makes the net the cluster's span TickSource.
//
// Delivery is synchronous: the handler closure runs inline in the caller's thread,
// *outside* the net's lock, so the model checker can interleave concurrent quorum
// ops at every ss::sync point inside the receiving node.

#ifndef SS_CLUSTER_CLUSTER_NET_H_
#define SS_CLUSTER_CLUSTER_NET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sync/sync.h"

namespace ss {
namespace cluster {

struct ClusterNetOptions {
  // Per-delivery drop probability (0 disables). Dropped messages never reach the
  // handler and surface as retryable kIoError.
  double drop_rate = 0.0;
  // Per-delivery duplication probability (0 disables): the handler runs twice.
  double duplicate_rate = 0.0;
  // Ticks charged to the virtual clock per delivery, plus a uniform extra in
  // [0, delay_jitter_ticks].
  uint64_t base_delay_ticks = 0;
  uint64_t delay_jitter_ticks = 0;
  uint64_t rng_seed = 1;
};

class ClusterNet : public TickSource {
 public:
  // The coordinator's endpoint id on the star topology (it is not a ring member but
  // its links can partition too — that is the split-brain-routing surface).
  static constexpr int kClientId = -1;

  // cluster.net.* counters land in `metrics` when provided.
  explicit ClusterNet(ClusterNetOptions options = {}, MetricRegistry* metrics = nullptr);

  // --- Membership ----------------------------------------------------------------------
  void AddEndpoint(int id);
  void RemoveEndpoint(int id);
  bool HasEndpoint(int id) const;

  // --- Fault injection -----------------------------------------------------------------
  void SetCrashed(int id, bool crashed);
  bool Crashed(int id) const;
  // Re-tunes the probabilistic loss channels (drop/duplicate) on a live net. The
  // harness's forward-progress sweep zeroes them: faults may deny service while
  // present, never after they clear.
  void SetLossRates(double drop_rate, double duplicate_rate);
  // Symmetric link partition between `a` and `b` (either may be kClientId).
  void PartitionLink(int a, int b);
  void HealLink(int a, int b);
  void HealAllLinks();
  bool LinkPartitioned(int a, int b) const;
  size_t partitioned_link_count() const;

  // --- Delivery ------------------------------------------------------------------------
  // Delivers one message from -> to: consults crash state, the partition set, and the
  // drop/duplicate/delay draws; charges the delay to the virtual clock; then invokes
  // `handler` inline (twice under duplication) outside the net lock. Failures:
  //   * kUnavailable — endpoint missing/crashed or the link is partitioned (retrying
  //     without an external state change cannot help),
  //   * kIoError     — the message was dropped (transient; retry may succeed).
  // `delay_ticks`, when set, receives the delivery's charged delay even on failure —
  // the coordinator's per-op timeout check reads it.
  Status Deliver(int from, int to, const std::function<void()>& handler,
                 uint64_t* delay_ticks = nullptr);
  // Trace-carrying variant: `trace` (the sender's span identity) rides the message
  // and is handed to the handler on delivery, so receivers can open spans that adopt
  // the sender's causal tree (SpanTree::StartRemoteSpan). Fault semantics identical;
  // a dropped/partitioned message carries its context nowhere — exactly how a missing
  // replica subtree becomes visible in the assembled cluster trace.
  Status Deliver(int from, int to, const TraceContext& trace,
                 const std::function<void(const TraceContext&)>& handler,
                 uint64_t* delay_ticks = nullptr);

  // --- Virtual clock -------------------------------------------------------------------
  uint64_t Now() const;
  void AdvanceTicks(uint64_t ticks);
  // TickSource: lock-free mirror of the clock (span timestamping never locks).
  uint64_t SpanTicksNow() const override {
    return clock_ticks_.load(std::memory_order_relaxed);
  }

 private:
  static std::pair<int, int> LinkKey(int a, int b) {
    return a < b ? std::pair<int, int>{a, b} : std::pair<int, int>{b, a};
  }
  void AdvanceLocked(uint64_t ticks);  // caller holds mu_

  mutable Mutex mu_{MutexAttr{"cluster.net", lockrank::kClusterNet}};
  ClusterNetOptions options_;
  Rng rng_;                                // guarded by mu_
  std::set<int> endpoints_;                // guarded by mu_
  std::set<int> crashed_;                  // guarded by mu_
  std::set<std::pair<int, int>> partitions_;  // guarded by mu_, normalized pairs
  uint64_t clock_ = 0;                     // guarded by mu_
  std::atomic<uint64_t> clock_ticks_{0};   // relaxed mirror of clock_

  std::unique_ptr<MetricRegistry> owned_metrics_;
  Counter* delivered_;
  Counter* dropped_;
  Counter* duplicated_;
  Counter* partitioned_;
  Counter* to_crashed_;
  Histogram* delay_ticks_hist_;
};

}  // namespace cluster
}  // namespace ss

#endif  // SS_CLUSTER_CLUSTER_NET_H_
