#include "src/cluster/coordinator.h"

#include <algorithm>
#include <utility>

#include "src/obs/json.h"

namespace ss {
namespace cluster {

const char* QuorumOutcomeName(QuorumOutcome outcome) {
  switch (outcome) {
    case QuorumOutcome::kOk:
      return "ok";
    case QuorumOutcome::kDegraded:
      return "degraded";
    case QuorumOutcome::kNoQuorum:
      return "no-quorum";
  }
  return "unknown";
}

ClusterCoordinator::ClusterCoordinator(ClusterOptions options)
    : options_(options),
      net_(options.net, &metrics_),
      spans_(options.span_capacity, &metrics_),
      ring_(options.vnodes),
      rpc_policy_(options.rpc_retry),
      fd_(options.fd, &metrics_) {
  put_ok_ = &metrics_.counter("cluster.put.ok");
  write_degraded_ = &metrics_.counter("cluster.write.degraded");
  put_err_ = &metrics_.counter("cluster.put.err");
  get_ok_ = &metrics_.counter("cluster.get.ok");
  get_err_ = &metrics_.counter("cluster.get.err");
  delete_ok_ = &metrics_.counter("cluster.delete.ok");
  delete_err_ = &metrics_.counter("cluster.delete.err");
  no_quorum_ = &metrics_.counter("cluster.quorum.failed");
  read_repairs_ = &metrics_.counter("cluster.read_repairs");
  hints_stored_ = &metrics_.counter("cluster.hints.stored");
  hints_replayed_ = &metrics_.counter("cluster.hints.replayed");
  hints_dropped_ = &metrics_.counter("cluster.hints.dropped");
  rpc_retries_ = &metrics_.counter("cluster.rpc.retries");
  rpc_timeouts_ = &metrics_.counter("cluster.rpc.timeouts");
  heartbeats_ = &metrics_.counter("cluster.fd.heartbeats");
  heartbeat_misses_ = &metrics_.counter("cluster.fd.misses");
  fd_suspects_ = &metrics_.counter("cluster.fd.suspects");
  fd_downs_ = &metrics_.counter("cluster.fd.downs");
  fd_recoveries_ = &metrics_.counter("cluster.fd.recoveries");
  joins_ = &metrics_.counter("cluster.membership.joins");
  leaves_ = &metrics_.counter("cluster.membership.leaves");
  leave_refused_ = &metrics_.counter("cluster.membership.leave_refused");
  rebalance_moved_ = &metrics_.counter("cluster.rebalance.keys_moved");
  rebalance_pending_ = &metrics_.counter("cluster.rebalance.pending_recorded");
  crashes_ = &metrics_.counter("cluster.node.crashes");
  restarts_ = &metrics_.counter("cluster.node.restarts");
}

Result<std::unique_ptr<ClusterCoordinator>> ClusterCoordinator::Create(
    ClusterOptions options) {
  if (options.replication == 0) {
    return Status::InvalidArgument("cluster: replication must be >= 1");
  }
  if (options.read_quorum == 0 || options.read_quorum > options.replication ||
      options.write_quorum == 0 || options.write_quorum > options.replication) {
    return Status::InvalidArgument("cluster: quorums must be in [1, replication]");
  }
  if (!options.allow_unsafe_quorums &&
      options.read_quorum + options.write_quorum <= options.replication) {
    return Status::InvalidArgument(
        "cluster: R + W <= N permits stale reads (set allow_unsafe_quorums to demo)");
  }
  if (options.initial_nodes < static_cast<int>(options.replication)) {
    return Status::InvalidArgument("cluster: fewer initial nodes than replicas");
  }
  std::unique_ptr<ClusterCoordinator> cluster(new ClusterCoordinator(options));
  for (int id = 0; id < options.initial_nodes; ++id) {
    Result<std::unique_ptr<ClusterNode>> node = ClusterNode::Create(id, options.node);
    if (!node.ok()) {
      return node.status();
    }
    {
      LockGuard lock(cluster->mu_);
      cluster->nodes_[id] = std::shared_ptr<ClusterNode>(std::move(node.value()));
      cluster->fd_.AddNode(id);
    }
    cluster->net_.AddEndpoint(id);
    cluster->ring_.AddNode(id);
  }
  return cluster;
}

std::shared_ptr<ClusterNode> ClusterCoordinator::NodeFor(int id) const {
  LockGuard lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

Status ClusterCoordinator::ContactWrite(int node, ShardId key, const ReplicaRecord& record,
                                        const SpanScope& scope, const char* phase) {
  std::shared_ptr<ClusterNode> target = NodeFor(node);
  if (target == nullptr) {
    return Status::Unavailable("cluster: no such member");
  }
  Span span = scope.Child(phase);
  // The per-replica RPC span is the remote parent: the node's rpc.* spans land
  // directly under it in the assembled cluster trace.
  const TraceContext ctx{span.root(), span.id()};
  const common::RetryPolicy::RunResult run = rpc_policy_.Run(
      [&](uint32_t) -> Status {
        Status write_status = Status::Ok();
        uint64_t delay = 0;
        const Status net_status = net_.Deliver(
            ClusterNet::kClientId, node, ctx,
            [&](const TraceContext& trace) {
              const Status s = target->HandleWrite(key, record, trace);
              if (!s.ok()) {
                write_status = s;
              }
            },
            &delay);
        if (!net_status.ok()) {
          return net_status;
        }
        if (options_.op_timeout_ticks > 0 && delay > options_.op_timeout_ticks) {
          rpc_timeouts_->Increment();
          return Status::IoError("cluster: rpc timed out");
        }
        return write_status;
      },
      [&](uint64_t ticks) { net_.AdvanceTicks(ticks); });
  if (run.attempts > 1) {
    rpc_retries_->Increment(run.attempts - 1);
  }
  span.set_status(run.status.code());
  return run.status;
}

Status ClusterCoordinator::ContactRead(int node, ShardId key,
                                       std::optional<ReplicaRecord>* out,
                                       const SpanScope& scope) {
  std::shared_ptr<ClusterNode> target = NodeFor(node);
  if (target == nullptr) {
    return Status::Unavailable("cluster: no such member");
  }
  Span span = scope.Child("cluster.replica.read");
  const TraceContext ctx{span.root(), span.id()};
  const common::RetryPolicy::RunResult run = rpc_policy_.Run(
      [&](uint32_t) -> Status {
        Status read_status = Status::Ok();
        uint64_t delay = 0;
        const Status net_status = net_.Deliver(
            ClusterNet::kClientId, node, ctx,
            [&](const TraceContext& trace) {
              Result<std::optional<ReplicaRecord>> record = target->HandleRead(key, trace);
              if (record.ok()) {
                *out = std::move(record.value());
              } else {
                read_status = record.status();
              }
            },
            &delay);
        if (!net_status.ok()) {
          return net_status;
        }
        if (options_.op_timeout_ticks > 0 && delay > options_.op_timeout_ticks) {
          rpc_timeouts_->Increment();
          // The reply is late; discard it so a timed-out read never leaks data.
          *out = std::nullopt;
          return Status::IoError("cluster: rpc timed out");
        }
        return read_status;
      },
      [&](uint64_t ticks) { net_.AdvanceTicks(ticks); });
  if (run.attempts > 1) {
    rpc_retries_->Increment(run.attempts - 1);
  }
  span.set_status(run.status.code());
  return run.status;
}

void ClusterCoordinator::StoreHint(int node, ShardId key, const ReplicaRecord& record) {
  LockGuard lock(mu_);
  if (nodes_.count(node) == 0) {
    hints_dropped_->Increment();
    return;
  }
  ReplicaRecord& slot = hints_[node][key];
  if (slot.version < record.version) {
    slot = record;
  }
  hints_stored_->Increment();
}

QuorumResult ClusterCoordinator::WriteInternal(ShardId key, const ReplicaRecord& record,
                                               const char* op, Counter* ok_counter,
                                               Counter* err_counter) {
  Span root(&spans_, &net_, op);
  const SpanScope scope = root.scope();
  QuorumResult result;
  result.required = static_cast<int>(options_.write_quorum);
  result.version = record.version;
  result.trace_id = root.id();
  {
    LockGuard lock(mu_);
    keys_.insert(key);
  }
  const std::vector<int> owners = ring_.Owners(key, options_.replication);
  if (owners.empty()) {
    result.status = Status::Unavailable("cluster: no members");
    no_quorum_->Increment();
    err_counter->Increment();
    root.set_status(result.status.code());
    return result;
  }
  // Phase spans: "cluster.fanout" covers the whole owner sweep; "cluster.quorum.wait"
  // measures the virtual ticks from fan-out start until the W-th ack lands (it stays
  // open past the sweep only on the no-quorum path, where it closes with the fanout
  // span carrying kUnavailable).
  Span fanout = scope.Child("cluster.fanout");
  Span quorum_wait = scope.Child("cluster.quorum.wait");
  const SpanScope fanout_scope = fanout.scope();
  for (const int owner : owners) {
    NodeHealth health;
    {
      LockGuard lock(mu_);
      health = fd_.Health(owner);
    }
    if (health == NodeHealth::kDown) {
      // Sloppy handoff: don't burn the retry budget on a node the detector already
      // declared down — hint it and move on.
      StoreHint(owner, key, record);
      ++result.hints_stored;
      continue;
    }
    ++result.contacted;
    const Status s = ContactWrite(owner, key, record, fanout_scope, "cluster.replica.write");
    if (s.ok()) {
      ++result.acks;
      if (result.acks == result.required) {
        quorum_wait.End();
      }
    } else {
      StoreHint(owner, key, record);
      ++result.hints_stored;
    }
  }
  if (result.acks < result.required) {
    quorum_wait.set_status(StatusCode::kUnavailable);
  }
  quorum_wait.End();
  fanout.End();
  if (result.acks >= result.required) {
    result.status = Status::Ok();
    result.outcome = result.acks == static_cast<int>(owners.size()) ? QuorumOutcome::kOk
                                                                    : QuorumOutcome::kDegraded;
    if (result.outcome == QuorumOutcome::kDegraded) {
      write_degraded_->Increment();
    }
    ok_counter->Increment();
    // An acked write supersedes any pending rebalance move for the key: the new
    // version is on a write quorum, which every read quorum intersects.
    LockGuard lock(mu_);
    pending_moves_.erase(key);
    uint64_t& slot = acked_[key];
    if (slot < record.version) {
      slot = record.version;
    }
  } else {
    result.status = Status::Unavailable("cluster: write quorum not met");
    result.outcome = QuorumOutcome::kNoQuorum;
    no_quorum_->Increment();
    err_counter->Increment();
  }
  root.set_status(result.status.code());
  return result;
}

QuorumResult ClusterCoordinator::Put(ShardId key, ByteSpan value) {
  ReplicaRecord record;
  record.version = version_counter_.FetchAdd(1) + 1;
  record.value.assign(value.begin(), value.end());
  return WriteInternal(key, record, "cluster.put", put_ok_, put_err_);
}

QuorumResult ClusterCoordinator::Delete(ShardId key) {
  ReplicaRecord record;
  record.version = version_counter_.FetchAdd(1) + 1;
  record.tombstone = true;
  return WriteInternal(key, record, "cluster.delete", delete_ok_, delete_err_);
}

QuorumResult ClusterCoordinator::Get(ShardId key) {
  Span root(&spans_, &net_, "cluster.get");
  const SpanScope scope = root.scope();
  QuorumResult result;
  result.required = static_cast<int>(options_.read_quorum);
  result.trace_id = root.id();
  auto fail = [&](Status status) {
    result.status = std::move(status);
    result.outcome = QuorumOutcome::kNoQuorum;
    no_quorum_->Increment();
    get_err_->Increment();
    root.set_status(result.status.code());
    return result;
  };
  const std::vector<int> owners = ring_.Owners(key, options_.replication);
  if (owners.empty()) {
    return fail(Status::Unavailable("cluster: no members"));
  }
  std::vector<int> pending;
  {
    LockGuard lock(mu_);
    auto it = pending_moves_.find(key);
    if (it != pending_moves_.end()) {
      pending = it->second;
    }
  }

  struct Reply {
    int node = 0;
    std::optional<ReplicaRecord> record;
  };
  std::vector<Reply> replies;  // successful owner reads, contact order
  // Same phase pair as the write path: fan-out covers the replica sweep (pending
  // rebalance sources included), quorum wait ends at the R-th reply.
  Span fanout = scope.Child("cluster.fanout");
  Span quorum_wait = scope.Child("cluster.quorum.wait");
  const SpanScope fanout_scope = fanout.scope();
  // Rotating start: consecutive reads begin at different replicas, so divergence is
  // actually observable (and the model checker can steer a reader at a stale node).
  const size_t start = static_cast<size_t>(read_rotation_.FetchAdd(1)) % owners.size();
  for (size_t i = 0; i < owners.size() && replies.size() < options_.read_quorum; ++i) {
    const int node = owners[(start + i) % owners.size()];
    ++result.contacted;
    Reply reply{node, std::nullopt};
    const Status s = ContactRead(node, key, &reply.record, fanout_scope);
    if (s.ok()) {
      replies.push_back(std::move(reply));
    }
  }
  result.acks = static_cast<int>(replies.size());
  if (replies.size() < options_.read_quorum) {
    quorum_wait.set_status(StatusCode::kUnavailable);
    fanout.set_status(StatusCode::kUnavailable);
    return fail(Status::Unavailable("cluster: read quorum not met"));
  }
  quorum_wait.End();

  // While the key's rebalance move is pending, the old owners listed in the table
  // may hold a version the new owners never received: every one of them must answer
  // before the read can be served.
  std::vector<Reply> extras;
  for (const int src : pending) {
    bool already = false;
    for (const Reply& r : replies) {
      if (r.node == src) {
        already = true;
        break;
      }
    }
    if (already) {
      continue;
    }
    Reply reply{src, std::nullopt};
    const Status s = ContactRead(src, key, &reply.record, fanout_scope);
    if (!s.ok()) {
      fanout.set_status(StatusCode::kUnavailable);
      return fail(Status::Unavailable("cluster: pending rebalance source unreachable"));
    }
    extras.push_back(std::move(reply));
  }
  fanout.End();

  const ReplicaRecord* newest = nullptr;
  for (const Reply& r : replies) {
    if (r.record.has_value() && (newest == nullptr || r.record->version > newest->version)) {
      newest = &*r.record;
    }
  }
  for (const Reply& r : extras) {
    if (r.record.has_value() && (newest == nullptr || r.record->version > newest->version)) {
      newest = &*r.record;
    }
  }

  uint64_t floor = 0;
  {
    LockGuard lock(mu_);
    auto it = acked_.find(key);
    if (it != acked_.end()) {
      floor = it->second;
    }
  }

  if (newest != nullptr) {
    Span repair_span = scope.Child("cluster.read_repair");
    const SpanScope repair_scope = repair_span.scope();
    ReplicaRecord repair = *newest;
    if (options_.seeded_bug_read_repair_wrong_value) {
      // Seeded bug #17: the repair keeps the newest *version* but pairs it with the
      // first reply's payload — if a stale replica answered first, its old value is
      // pushed cluster-wide under the new version number.
      for (const Reply& r : replies) {
        if (r.record.has_value()) {
          repair.value = r.record->value;
          repair.tombstone = r.record->tombstone;
          break;
        }
      }
    }
    if (newest->version > floor) {
      // The newest version was never acked at W: it reached us off a failed write's
      // partial footprint (or a hint/rebalance copy of one). Serving it makes it
      // observable, so it must first reach enough owners that every future read
      // quorum intersects a holder — otherwise fail the read instead of serving a
      // value the next read could un-see.
      size_t holders = 0;
      for (const int owner : owners) {
        bool has = false;
        for (const Reply& r : replies) {
          if (r.node == owner && r.record.has_value() &&
              r.record->version >= newest->version) {
            has = true;
            break;
          }
        }
        if (has) {
          ++holders;
          continue;
        }
        const Status s = ContactWrite(owner, key, repair, repair_scope, "cluster.replica.repair");
        if (s.ok()) {
          ++holders;
          ++result.read_repairs;
          read_repairs_->Increment();
        }
      }
      const size_t need = owners.size() >= options_.read_quorum
                              ? owners.size() - options_.read_quorum + 1
                              : 1;
      if (holders < need) {
        repair_span.set_status(StatusCode::kUnavailable);
        return fail(Status::Unavailable(
            "cluster: divergent read could not re-establish quorum overlap"));
      }
      LockGuard lock(mu_);
      uint64_t& slot = acked_[key];
      if (slot < newest->version) {
        slot = newest->version;
      }
    } else {
      // Plain read repair: top up the contacted replicas that answered stale.
      for (const Reply& r : replies) {
        const uint64_t have = r.record.has_value() ? r.record->version : 0;
        if (have >= newest->version) {
          continue;
        }
        const Status s = ContactWrite(r.node, key, repair, repair_scope, "cluster.replica.repair");
        if (s.ok()) {
          ++result.read_repairs;
          read_repairs_->Increment();
        }
      }
    }
  }

  result.outcome = result.acks == result.contacted ? QuorumOutcome::kOk
                                                   : QuorumOutcome::kDegraded;
  if (newest != nullptr && !newest->tombstone) {
    result.found = true;
    result.value = newest->value;
    result.version = newest->version;
    result.status = Status::Ok();
  } else {
    result.version = newest != nullptr ? newest->version : 0;
    result.status = Status::NotFound("cluster: key absent");
  }
  get_ok_->Increment();  // quorum served, found or not
  root.set_status(result.status.code());
  return result;
}

void ClusterCoordinator::HeartbeatRound() {
  net_.AdvanceTicks(options_.heartbeat_period_ticks);
  std::vector<int> members;
  {
    LockGuard lock(mu_);
    for (const auto& [id, node] : nodes_) {
      members.push_back(id);
    }
  }
  for (const int id : members) {
    bool delivered = false;
    const Status s = net_.Deliver(ClusterNet::kClientId, id, [&] { delivered = true; });
    const bool alive = s.ok() && delivered;
    heartbeats_->Increment();
    if (!alive) {
      heartbeat_misses_->Increment();
    }
    LockGuard lock(mu_);
    for (const FailureDetector::Transition& t : fd_.Observe(id, alive)) {
      switch (t.to) {
        case NodeHealth::kSuspect:
          fd_suspects_->Increment();
          break;
        case NodeHealth::kDown:
          fd_downs_->Increment();
          break;
        case NodeHealth::kHealthy:
          fd_recoveries_->Increment();
          break;
      }
    }
  }
}

void ClusterCoordinator::ReplayHints(const SpanScope& scope) {
  std::map<int, std::map<ShardId, ReplicaRecord>> snapshot;
  {
    LockGuard lock(mu_);
    snapshot.swap(hints_);
  }
  for (auto& [target, records] : snapshot) {
    for (auto& [key, record] : records) {
      const Status s = ContactWrite(target, key, record, scope, "cluster.hint.replay");
      if (s.ok()) {
        hints_replayed_->Increment();
        continue;
      }
      // Still unreachable: keep the hint, merging newest-wins with any hint stored
      // while the snapshot was out.
      LockGuard lock(mu_);
      if (nodes_.count(target) == 0) {
        hints_dropped_->Increment();
        continue;
      }
      ReplicaRecord& slot = hints_[target][key];
      if (slot.version < record.version) {
        slot = std::move(record);
      }
    }
  }
}

void ClusterCoordinator::RetryPendingMoves(const SpanScope& scope) {
  std::map<ShardId, std::vector<int>> snapshot;
  {
    LockGuard lock(mu_);
    snapshot = pending_moves_;
  }
  for (const auto& [key, sources] : snapshot) {
    bool all_read = true;
    std::optional<ReplicaRecord> best;
    for (const int src : sources) {
      std::optional<ReplicaRecord> record;
      if (!ContactRead(src, key, &record, scope).ok()) {
        all_read = false;
        continue;
      }
      if (record.has_value() && (!best.has_value() || record->version > best->version)) {
        best = std::move(record);
      }
    }
    if (!all_read) {
      continue;
    }
    bool drained = true;
    if (best.has_value()) {
      const std::vector<int> owners = ring_.Owners(key, options_.replication);
      size_t ok_writes = 0;
      for (const int owner : owners) {
        if (ContactWrite(owner, key, *best, scope, "cluster.replica.rebalance").ok()) {
          ++ok_writes;
        }
      }
      // Overlap bound: every R-subset of the N owners intersects a set of
      // N - R + 1 owners, so once the newest record reached that many the pending
      // entry is no longer load-bearing.
      const size_t need = owners.size() >= options_.read_quorum
                              ? owners.size() - options_.read_quorum + 1
                              : 1;
      drained = ok_writes >= need;
    }
    if (!drained) {
      continue;
    }
    LockGuard lock(mu_);
    auto it = pending_moves_.find(key);
    if (it != pending_moves_.end() && it->second == sources) {
      pending_moves_.erase(it);
    }
  }
}

void ClusterCoordinator::Tick(uint64_t rounds) {
  for (uint64_t i = 0; i < rounds; ++i) {
    Span root(&spans_, &net_, "cluster.tick");
    const SpanScope scope = root.scope();
    HeartbeatRound();
    {
      // Hint replay gets its own phase span so drain latency is a first-class
      // histogram (span.cluster.hint.drain.ticks) the benches can export.
      Span drain = scope.Child("cluster.hint.drain");
      ReplayHints(drain.scope());
    }
    RetryPendingMoves(scope);
  }
}

bool ClusterCoordinator::RebalanceKey(ShardId key, const std::vector<int>& old_owners,
                                      const std::vector<int>& new_owners,
                                      bool record_pending, const SpanScope& scope) {
  std::optional<ReplicaRecord> best;
  int best_holder = -1;
  std::vector<int> unread;
  for (const int src : old_owners) {
    std::optional<ReplicaRecord> record;
    if (!ContactRead(src, key, &record, scope).ok()) {
      unread.push_back(src);
      continue;
    }
    if (record.has_value() && (!best.has_value() || record->version > best->version)) {
      best = std::move(record);
      best_holder = src;
    }
  }
  bool clean = unread.empty();
  size_t ok_writes = 0;
  if (best.has_value()) {
    for (const int target : new_owners) {
      const Status s =
          ContactWrite(target, key, *best, scope, "cluster.replica.rebalance");
      if (s.ok()) {
        ++ok_writes;
      } else {
        clean = false;
        StoreHint(target, key, *best);
      }
    }
  }
  if (record_pending) {
    // A pending entry lists nodes whose data future Gets must still consult: old
    // owners we could not read, plus — when the newest record did not reach enough
    // new owners to guarantee read-quorum overlap — a node known to hold it.
    std::vector<int> must_consult = unread;
    if (best.has_value() && best_holder >= 0) {
      const size_t need = new_owners.size() >= options_.read_quorum
                              ? new_owners.size() - options_.read_quorum + 1
                              : 1;
      if (ok_writes < need) {
        must_consult.push_back(best_holder);
      }
    }
    if (!must_consult.empty()) {
      LockGuard lock(mu_);
      std::vector<int>& entry = pending_moves_[key];
      for (const int src : must_consult) {
        if (std::find(entry.begin(), entry.end(), src) == entry.end()) {
          entry.push_back(src);
        }
      }
      rebalance_pending_->Increment();
    }
  }
  return clean;
}

Status ClusterCoordinator::NodeJoin(int id) {
  {
    LockGuard lock(mu_);
    if (nodes_.count(id) != 0) {
      return Status::InvalidArgument("cluster: member id already in use");
    }
  }
  Result<std::unique_ptr<ClusterNode>> node = ClusterNode::Create(id, options_.node);
  if (!node.ok()) {
    return node.status();
  }
  Span root(&spans_, &net_, "cluster.join");
  const SpanScope scope = root.scope();

  std::vector<ShardId> keys;
  {
    LockGuard lock(mu_);
    keys.assign(keys_.begin(), keys_.end());
  }
  std::map<ShardId, std::vector<int>> old_owners;
  for (const ShardId key : keys) {
    old_owners[key] = ring_.Owners(key, options_.replication);
  }
  {
    LockGuard lock(mu_);
    nodes_[id] = std::shared_ptr<ClusterNode>(std::move(node.value()));
    fd_.AddNode(id);
  }
  net_.AddEndpoint(id);
  ring_.AddNode(id);
  for (const ShardId key : keys) {
    const std::vector<int> now = ring_.Owners(key, options_.replication);
    if (now == old_owners[key]) {
      continue;
    }
    RebalanceKey(key, old_owners[key], now, /*record_pending=*/true, scope);
    rebalance_moved_->Increment();
  }
  joins_->Increment();
  return Status::Ok();
}

Status ClusterCoordinator::NodeLeave(int id) {
  {
    LockGuard lock(mu_);
    if (nodes_.count(id) == 0) {
      return Status::InvalidArgument("cluster: no such member");
    }
    if (nodes_.size() - 1 < options_.replication) {
      leave_refused_->Increment();
      return Status::InvalidArgument("cluster: leave would drop below replication");
    }
    if (!pending_moves_.empty()) {
      // A pending source may be the sole reachable holder of an acked write; never
      // let it walk away before the move drains.
      leave_refused_->Increment();
      return Status::Unavailable("cluster: rebalance moves still pending");
    }
  }
  Span root(&spans_, &net_, "cluster.leave");
  const SpanScope scope = root.scope();

  std::vector<ShardId> keys;
  {
    LockGuard lock(mu_);
    keys.assign(keys_.begin(), keys_.end());
  }
  std::map<ShardId, std::vector<int>> old_owners;
  for (const ShardId key : keys) {
    old_owners[key] = ring_.Owners(key, options_.replication);
  }
  ring_.RemoveNode(id);
  bool clean = true;
  for (const ShardId key : keys) {
    const std::vector<int> now = ring_.Owners(key, options_.replication);
    if (now == old_owners[key]) {
      continue;
    }
    clean &= RebalanceKey(key, old_owners[key], now, /*record_pending=*/false, scope);
    rebalance_moved_->Increment();
  }
  if (!clean) {
    // Same points, same positions: re-adding restores the exact ring, so the abort
    // is a true rollback.
    ring_.AddNode(id);
    leave_refused_->Increment();
    root.set_status(StatusCode::kUnavailable);
    return Status::Unavailable("cluster: leave aborted, re-replication incomplete");
  }
  size_t dropped = 0;
  {
    LockGuard lock(mu_);
    auto it = hints_.find(id);
    if (it != hints_.end()) {
      dropped = it->second.size();
      hints_.erase(it);
    }
    nodes_.erase(id);
    fd_.RemoveNode(id);
  }
  if (dropped > 0) {
    // Safe to drop: the clean rebalance above re-replicated everything the hints
    // were still owed (hint records are never newer than what the old owners hold).
    hints_dropped_->Increment(dropped);
  }
  net_.RemoveEndpoint(id);
  leaves_->Increment();
  return Status::Ok();
}

Status ClusterCoordinator::CrashNode(int id) {
  {
    LockGuard lock(mu_);
    if (nodes_.count(id) == 0) {
      return Status::InvalidArgument("cluster: no such member");
    }
  }
  net_.SetCrashed(id, true);
  crashes_->Increment();
  return Status::Ok();
}

Status ClusterCoordinator::RestartNode(int id) {
  {
    LockGuard lock(mu_);
    if (nodes_.count(id) == 0) {
      return Status::InvalidArgument("cluster: no such member");
    }
  }
  net_.SetCrashed(id, false);
  restarts_->Increment();
  return Status::Ok();
}

std::vector<int> ClusterCoordinator::Nodes() const {
  LockGuard lock(mu_);
  std::vector<int> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    out.push_back(id);
  }
  return out;
}

NodeHealth ClusterCoordinator::HealthOf(int node) const {
  LockGuard lock(mu_);
  return fd_.Health(node);
}

std::vector<int> ClusterCoordinator::OwnersOf(ShardId key) const {
  return ring_.Owners(key, options_.replication);
}

std::vector<int> ClusterCoordinator::PendingSourcesOf(ShardId key) const {
  LockGuard lock(mu_);
  auto it = pending_moves_.find(key);
  return it == pending_moves_.end() ? std::vector<int>{} : it->second;
}

size_t ClusterCoordinator::PendingKeyCount() const {
  LockGuard lock(mu_);
  return pending_moves_.size();
}

size_t ClusterCoordinator::HintCount() const {
  LockGuard lock(mu_);
  size_t total = 0;
  for (const auto& [target, records] : hints_) {
    total += records.size();
  }
  return total;
}

Result<std::optional<ReplicaRecord>> ClusterCoordinator::DebugReplicaRead(int node,
                                                                          ShardId key) {
  std::shared_ptr<ClusterNode> target = NodeFor(node);
  if (target == nullptr) {
    return Status::Unavailable("cluster: no such member");
  }
  return target->HandleRead(key);
}

ClusterTrace ClusterCoordinator::AssembleTrace(uint64_t root_id) const {
  // Hold the node refs so the span trees outlive the lock release; the trees are
  // read under their own leaf locks, never under mu_.
  std::vector<std::shared_ptr<ClusterNode>> hold;
  std::vector<std::pair<std::string, const SpanTree*>> trees;
  {
    LockGuard lock(mu_);
    hold.reserve(nodes_.size());
    trees.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) {
      hold.push_back(node);
      trees.emplace_back("node-" + std::to_string(id), &node->server().spans());
    }
  }
  return AssembleClusterTrace(root_id, spans_, trees);
}

std::string ClusterCoordinator::ClusterSnapshotJson() const {
  struct NodeInfo {
    int id = 0;
    std::shared_ptr<ClusterNode> node;
    const char* health = "";
    uint32_t misses = 0;
    size_t hint_depth = 0;
  };
  std::vector<NodeInfo> infos;
  std::map<ShardId, std::vector<int>> pending;
  std::map<ShardId, uint64_t> acked;
  std::vector<ShardId> keys;
  {
    LockGuard lock(mu_);
    for (const auto& [id, node] : nodes_) {
      NodeInfo info;
      info.id = id;
      info.node = node;
      info.health = NodeHealthName(fd_.Health(id));
      info.misses = fd_.Misses(id);
      auto it = hints_.find(id);
      if (it != hints_.end()) {
        info.hint_depth = it->second.size();
      }
      infos.push_back(std::move(info));
    }
    pending = pending_moves_;
    acked = acked_;
    keys.assign(keys_.begin(), keys_.end());
  }
  // Per-node metric snapshots are taken after mu_ is released — the coordinator
  // never calls into a member while holding its own lock (same discipline as the
  // fan-out paths).
  ss::MetricsSnapshot aggregated;
  JsonWriter w;
  w.BeginObject();
  w.Key("nodes").BeginObject();
  for (const NodeInfo& info : infos) {
    w.Key(std::to_string(info.id)).BeginObject();
    w.Key("health").String(info.health);
    w.Key("misses").UInt(info.misses);
    w.Key("crashed").Bool(net_.Crashed(info.id));
    w.Key("hint_queue_depth").UInt(info.hint_depth);
    w.EndObject();
    aggregated.MergeFrom(info.node->server().MetricsSnapshot());
  }
  w.EndObject();
  w.Key("ring").BeginObject();
  w.Key("members").BeginArray();
  for (const int id : ring_.Nodes()) {
    w.Int(id);
  }
  w.EndArray();
  w.Key("vnodes").UInt(options_.vnodes);
  w.Key("points").UInt(ring_.point_count());
  w.Key("ownership").BeginObject();
  for (const ShardId key : keys) {
    w.Key(std::to_string(key)).BeginArray();
    for (const int owner : ring_.Owners(key, options_.replication)) {
      w.Int(owner);
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();
  w.Key("pending_moves").BeginObject();
  for (const auto& [key, sources] : pending) {
    w.Key(std::to_string(key)).BeginArray();
    for (const int src : sources) {
      w.Int(src);
    }
    w.EndArray();
  }
  w.EndObject();
  w.Key("acked_floor").BeginObject();
  for (const auto& [key, version] : acked) {
    w.Key(std::to_string(key)).UInt(version);
  }
  w.EndObject();
  w.Key("metrics").BeginObject();
  w.Key("coordinator").Raw(metrics_.Snapshot().ToJson());
  w.Key("nodes_aggregated").Raw(aggregated.ToJson());
  w.EndObject();
  w.EndObject();
  return w.str();
}

ss::MetricsSnapshot ClusterCoordinator::MetricsSnapshot() const {
  return metrics_.Snapshot();
}

std::string ClusterCoordinator::DumpMetrics() const { return metrics_.Snapshot().ToString(); }

}  // namespace cluster
}  // namespace ss
