// Virtual-node consistent-hash ring: the cluster tier's placement function.
//
// Each member node projects `vnodes` points onto a 64-bit ring (SplitMix64 over
// (node, vnode)); a key's replica set is the first N *distinct* nodes clockwise from
// the key's own hash point. Virtual nodes smooth the load distribution and keep
// rebalance churn bounded: adding or removing one node moves only the keys whose
// clockwise walk crossed that node's points, so roughly 1/nodes of the keyspace per
// membership change instead of half of it (the classic consistent-hashing argument;
// the cluster_test RingRebalance* cases assert the bound empirically).
//
// The ring is deliberately dumb: no health, no network, no data. ClusterCoordinator
// composes it with the failure detector (who is *reachable*) and the hinted-handoff
// table (who is *owed* writes); the ring answers only "who owns this key right now".

#ifndef SS_CLUSTER_HASH_RING_H_
#define SS_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/sync/sync.h"

namespace ss {
namespace cluster {

class HashRing {
 public:
  // `vnodes` points per member; more points = smoother distribution, larger ring.
  explicit HashRing(uint32_t vnodes = 16) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

  // Adds/removes a member. Adding an existing member or removing an absent one is a
  // no-op (membership changes are idempotent so the coordinator can retry them).
  void AddNode(int node);
  void RemoveNode(int node);
  bool Contains(int node) const;

  // The first `replicas` distinct members clockwise from hash(key), in ring order
  // (the first entry is the key's primary). Returns fewer when the ring has fewer
  // members; empty when the ring is empty.
  std::vector<int> Owners(uint64_t key, uint32_t replicas) const;

  std::vector<int> Nodes() const;
  size_t node_count() const;
  size_t point_count() const;

  // The ring position of `key` (exposed for tests asserting placement stability).
  static uint64_t HashKey(uint64_t key);

 private:
  // Ranked between the coordinator (outer) and the network (inner): the coordinator
  // resolves owners while orchestrating an op but never calls back out of the ring.
  mutable Mutex mu_{MutexAttr{"cluster.ring", lockrank::kClusterRing}};
  uint32_t vnodes_;
  std::map<uint64_t, int> points_;  // ring position -> owning node
  std::map<int, uint32_t> members_; // node -> vnode count (for introspection)
};

}  // namespace cluster
}  // namespace ss

#endif  // SS_CLUSTER_HASH_RING_H_
