#include "src/cluster/hash_ring.h"

namespace ss {
namespace cluster {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// One ring point for (node, vnode). The node id is mixed twice so adjacent node ids
// land far apart on the ring.
uint64_t PointHash(int node, uint32_t vnode) {
  return SplitMix64(SplitMix64(static_cast<uint64_t>(static_cast<int64_t>(node))) ^
                    (0xd6e8feb86659fd93ull * (vnode + 1)));
}

}  // namespace

uint64_t HashRing::HashKey(uint64_t key) { return SplitMix64(key ^ 0xa0761d6478bd642full); }

void HashRing::AddNode(int node) {
  LockGuard lock(mu_);
  if (members_.count(node) != 0) {
    return;
  }
  members_[node] = vnodes_;
  for (uint32_t v = 0; v < vnodes_; ++v) {
    // Collisions across members are astronomically unlikely but must not silently
    // reassign an existing point; probe forward instead.
    uint64_t p = PointHash(node, v);
    while (points_.count(p) != 0) {
      ++p;
    }
    points_[p] = node;
  }
}

void HashRing::RemoveNode(int node) {
  LockGuard lock(mu_);
  if (members_.erase(node) == 0) {
    return;
  }
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == node) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HashRing::Contains(int node) const {
  LockGuard lock(mu_);
  return members_.count(node) != 0;
}

std::vector<int> HashRing::Owners(uint64_t key, uint32_t replicas) const {
  LockGuard lock(mu_);
  std::vector<int> owners;
  if (points_.empty() || replicas == 0) {
    return owners;
  }
  owners.reserve(replicas);
  auto it = points_.lower_bound(HashKey(key));
  // Walk clockwise (wrapping) collecting distinct nodes until we have `replicas` or
  // exhausted the membership.
  for (size_t steps = 0; steps < points_.size() && owners.size() < replicas; ++steps) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    const int node = it->second;
    bool seen = false;
    for (int o : owners) {
      seen = seen || (o == node);
    }
    if (!seen) {
      owners.push_back(node);
    }
    ++it;
  }
  return owners;
}

std::vector<int> HashRing::Nodes() const {
  LockGuard lock(mu_);
  std::vector<int> out;
  out.reserve(members_.size());
  for (const auto& [node, vnodes] : members_) {
    out.push_back(node);
  }
  return out;
}

size_t HashRing::node_count() const {
  LockGuard lock(mu_);
  return members_.size();
}

size_t HashRing::point_count() const {
  LockGuard lock(mu_);
  return points_.size();
}

}  // namespace cluster
}  // namespace ss
