#include "src/cluster/failure_detector.h"

namespace ss {
namespace cluster {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDown:
      return "down";
  }
  return "unknown";
}

FailureDetector::FailureDetector(FailureDetectorOptions options, MetricRegistry* metrics)
    : options_(options) {
  if (options_.suspect_after_misses == 0) {
    options_.suspect_after_misses = 1;
  }
  if (options_.down_after_misses <= options_.suspect_after_misses) {
    options_.down_after_misses = options_.suspect_after_misses + 1;
  }
  if (metrics != nullptr) {
    entered_healthy_ = &metrics->counter("cluster.fd.healthy");
    entered_suspect_ = &metrics->counter("cluster.fd.suspect");
    entered_down_ = &metrics->counter("cluster.fd.down");
  }
}

void FailureDetector::AddNode(int node) { nodes_.emplace(node, NodeState{}); }

void FailureDetector::RemoveNode(int node) { nodes_.erase(node); }

std::vector<FailureDetector::Transition> FailureDetector::Observe(int node,
                                                                  bool heartbeat_ok) {
  std::vector<Transition> out;
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return out;
  }
  NodeState& state = it->second;
  const NodeHealth before = state.health;
  if (heartbeat_ok) {
    state.misses = 0;
    state.health = NodeHealth::kHealthy;
  } else {
    ++state.misses;
    if (state.misses >= options_.down_after_misses) {
      state.health = NodeHealth::kDown;
    } else if (state.misses >= options_.suspect_after_misses) {
      state.health = NodeHealth::kSuspect;
    }
  }
  if (state.health != before) {
    out.push_back(Transition{node, before, state.health});
    Counter* entered = nullptr;
    switch (state.health) {
      case NodeHealth::kHealthy:
        entered = entered_healthy_;
        break;
      case NodeHealth::kSuspect:
        entered = entered_suspect_;
        break;
      case NodeHealth::kDown:
        entered = entered_down_;
        break;
    }
    if (entered != nullptr) {
      entered->Increment();
    }
  }
  return out;
}

NodeHealth FailureDetector::Health(int node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? NodeHealth::kDown : it->second.health;
}

uint32_t FailureDetector::Misses(int node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.misses;
}

std::vector<int> FailureDetector::Nodes() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  for (const auto& [node, state] : nodes_) {
    out.push_back(node);
  }
  return out;
}

}  // namespace cluster
}  // namespace ss
