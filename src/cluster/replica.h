// Per-node replica plane of the cluster tier.
//
// A ClusterNode wraps one ss::NodeServer (a whole storage host: N disks, LSM, chunk
// store, IO scheduler — everything the single-node paper validates) behind the two
// message handlers the quorum protocol needs:
//   * HandleWrite — last-write-wins by coordinator-assigned version: the record is
//     applied only if its version is newer than what the replica stores. The guard
//     makes writes idempotent (ClusterNet may duplicate deliveries) and makes read
//     repair, hinted-handoff replay, and rebalance copies all safely re-appliable.
//   * HandleRead  — returns the replica's current versioned record, if any.
// Values are stored in the node as an encoded ReplicaRecord (version + tombstone
// flag + payload): deletes are tombstones, not removals, because the version must
// survive for the quorum read to order replies.

#ifndef SS_CLUSTER_REPLICA_H_
#define SS_CLUSTER_REPLICA_H_

#include <memory>
#include <optional>

#include "src/rpc/node_server.h"

namespace ss {
namespace cluster {

// One versioned replica record. Versions are totally ordered per cluster (the
// coordinator hands them out from one monotonic counter), so "newest wins" is
// well-defined across replicas.
struct ReplicaRecord {
  uint64_t version = 0;
  bool tombstone = false;
  Bytes value;

  bool operator==(const ReplicaRecord& other) const {
    return version == other.version && tombstone == other.tombstone && value == other.value;
  }
};

// Wire/storage form: [version:8 LE][flags:1][payload]. Decode rejects short buffers
// with kCorruption (a replica never stores anything else under cluster keys).
Bytes EncodeReplicaRecord(const ReplicaRecord& record);
Result<ReplicaRecord> DecodeReplicaRecord(ByteSpan data);

class ClusterNode {
 public:
  static Result<std::unique_ptr<ClusterNode>> Create(int id, NodeServerOptions options);

  int id() const { return id_; }
  NodeServer& server() { return *server_; }

  // Applies `record` iff it is newer than the stored version (idempotent under
  // duplication and replay). Returns the storage status; version-stale applications
  // return Ok — the replica already has something at least as new, which is exactly
  // the state the sender wanted to reach. `trace` (when active) links the node's
  // rpc.* spans — both the version-guard read and the applying put — under the
  // sender's trace.
  Status HandleWrite(ShardId key, const ReplicaRecord& record, TraceContext trace = {});

  // The replica's current record, or nullopt when the key was never written here.
  Result<std::optional<ReplicaRecord>> HandleRead(ShardId key, TraceContext trace = {});

 private:
  ClusterNode(int id, std::unique_ptr<NodeServer> server)
      : id_(id), server_(std::move(server)) {}

  // Caller holds mu_. Reads the stored record for the version guard.
  Result<std::optional<ReplicaRecord>> ReadLocked(ShardId key, TraceContext trace = {});

  int id_;
  std::unique_ptr<NodeServer> server_;
  // Serializes the read-compare-write of the version guard against concurrent
  // quorum writes, repairs, and hint replays targeting this replica.
  Mutex mu_{MutexAttr{"cluster.replica", lockrank::kClusterReplica}};
};

}  // namespace cluster
}  // namespace ss

#endif  // SS_CLUSTER_REPLICA_H_
