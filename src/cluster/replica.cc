#include "src/cluster/replica.h"

#include <utility>

namespace ss {
namespace cluster {

namespace {
constexpr size_t kHeaderBytes = 9;  // version:8 + flags:1
constexpr uint8_t kTombstoneFlag = 0x01;
}  // namespace

Bytes EncodeReplicaRecord(const ReplicaRecord& record) {
  Bytes out;
  out.reserve(kHeaderBytes + record.value.size());
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<uint8_t>((record.version >> shift) & 0xff));
  }
  out.push_back(record.tombstone ? kTombstoneFlag : 0);
  out.insert(out.end(), record.value.begin(), record.value.end());
  return out;
}

Result<ReplicaRecord> DecodeReplicaRecord(ByteSpan data) {
  if (data.size() < kHeaderBytes) {
    return Status::Corruption("replica: record shorter than header");
  }
  ReplicaRecord record;
  for (int i = 0; i < 8; ++i) {
    record.version |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  const uint8_t flags = data[8];
  if ((flags & ~kTombstoneFlag) != 0) {
    return Status::Corruption("replica: unknown record flags");
  }
  record.tombstone = (flags & kTombstoneFlag) != 0;
  record.value.assign(data.begin() + kHeaderBytes, data.end());
  return record;
}

Result<std::unique_ptr<ClusterNode>> ClusterNode::Create(int id, NodeServerOptions options) {
  Result<std::unique_ptr<NodeServer>> server = NodeServer::Create(std::move(options));
  if (!server.ok()) {
    return server.status();
  }
  return std::unique_ptr<ClusterNode>(new ClusterNode(id, std::move(server.value())));
}

Result<std::optional<ReplicaRecord>> ClusterNode::ReadLocked(ShardId key, TraceContext trace) {
  Result<GetResult> raw = server_->Get(key, trace);
  if (!raw.ok()) {
    if (raw.status().code() == StatusCode::kNotFound) {
      return std::optional<ReplicaRecord>{};
    }
    return raw.status();
  }
  Result<ReplicaRecord> record = DecodeReplicaRecord(ByteSpan(raw.value().value));
  if (!record.ok()) {
    return record.status();
  }
  return std::optional<ReplicaRecord>(std::move(record.value()));
}

Status ClusterNode::HandleWrite(ShardId key, const ReplicaRecord& record, TraceContext trace) {
  LockGuard lock(mu_);
  Result<std::optional<ReplicaRecord>> current = ReadLocked(key, trace);
  if (!current.ok()) {
    return current.status();
  }
  if (current.value().has_value() && current.value()->version >= record.version) {
    // Already at least as new (duplicate delivery, replayed hint, stale rebalance
    // copy): the write's goal state is reached.
    return Status::Ok();
  }
  const Bytes encoded = EncodeReplicaRecord(record);
  Result<PutResult> put = server_->Put(key, ByteSpan(encoded), trace);
  return put.status();
}

Result<std::optional<ReplicaRecord>> ClusterNode::HandleRead(ShardId key, TraceContext trace) {
  LockGuard lock(mu_);
  return ReadLocked(key, trace);
}

}  // namespace cluster
}  // namespace ss
