#include "src/cluster/cluster_net.h"

#include <memory>

namespace ss {
namespace cluster {

ClusterNet::ClusterNet(ClusterNetOptions options, MetricRegistry* metrics)
    : options_(options),
      rng_(options.rng_seed),
      owned_metrics_(metrics == nullptr ? std::make_unique<MetricRegistry>() : nullptr) {
  MetricRegistry* reg = owned_metrics_ != nullptr ? owned_metrics_.get() : metrics;
  delivered_ = &reg->counter("cluster.net.delivered");
  dropped_ = &reg->counter("cluster.net.dropped");
  duplicated_ = &reg->counter("cluster.net.duplicated");
  partitioned_ = &reg->counter("cluster.net.partitioned_sends");
  to_crashed_ = &reg->counter("cluster.net.to_crashed_sends");
  delay_ticks_hist_ = &reg->histogram("cluster.net.delay_ticks");
}

void ClusterNet::AddEndpoint(int id) {
  LockGuard lock(mu_);
  endpoints_.insert(id);
  crashed_.erase(id);
}

void ClusterNet::RemoveEndpoint(int id) {
  LockGuard lock(mu_);
  endpoints_.erase(id);
  crashed_.erase(id);
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    if (it->first == id || it->second == id) {
      it = partitions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ClusterNet::HasEndpoint(int id) const {
  LockGuard lock(mu_);
  return endpoints_.count(id) != 0;
}

void ClusterNet::SetCrashed(int id, bool crashed) {
  LockGuard lock(mu_);
  if (crashed) {
    crashed_.insert(id);
  } else {
    crashed_.erase(id);
  }
}

bool ClusterNet::Crashed(int id) const {
  LockGuard lock(mu_);
  return crashed_.count(id) != 0;
}

void ClusterNet::SetLossRates(double drop_rate, double duplicate_rate) {
  LockGuard lock(mu_);
  options_.drop_rate = drop_rate;
  options_.duplicate_rate = duplicate_rate;
}

void ClusterNet::PartitionLink(int a, int b) {
  if (a == b) {
    return;
  }
  LockGuard lock(mu_);
  partitions_.insert(LinkKey(a, b));
}

void ClusterNet::HealLink(int a, int b) {
  LockGuard lock(mu_);
  partitions_.erase(LinkKey(a, b));
}

void ClusterNet::HealAllLinks() {
  LockGuard lock(mu_);
  partitions_.clear();
}

bool ClusterNet::LinkPartitioned(int a, int b) const {
  LockGuard lock(mu_);
  return partitions_.count(LinkKey(a, b)) != 0;
}

size_t ClusterNet::partitioned_link_count() const {
  LockGuard lock(mu_);
  return partitions_.size();
}

void ClusterNet::AdvanceLocked(uint64_t ticks) {
  clock_ += ticks;
  clock_ticks_.store(clock_, std::memory_order_relaxed);
}

uint64_t ClusterNet::Now() const {
  LockGuard lock(mu_);
  return clock_;
}

void ClusterNet::AdvanceTicks(uint64_t ticks) {
  LockGuard lock(mu_);
  AdvanceLocked(ticks);
}

Status ClusterNet::Deliver(int from, int to, const std::function<void()>& handler,
                           uint64_t* delay_ticks) {
  return Deliver(from, to, TraceContext{},
                 [&handler](const TraceContext&) { handler(); }, delay_ticks);
}

Status ClusterNet::Deliver(int from, int to, const TraceContext& trace,
                           const std::function<void(const TraceContext&)>& handler,
                           uint64_t* delay_ticks) {
  bool duplicate = false;
  {
    // All fault decisions happen under the lock; the handler runs after it is
    // released so concurrent deliveries interleave under the model checker.
    LockGuard lock(mu_);
    uint64_t delay = options_.base_delay_ticks;
    if (options_.delay_jitter_ticks > 0) {
      delay += rng_.Below(options_.delay_jitter_ticks + 1);
    }
    if (delay > 0) {
      AdvanceLocked(delay);
      delay_ticks_hist_->Record(delay);
    }
    if (delay_ticks != nullptr) {
      *delay_ticks = delay;
    }
    if (to != kClientId && endpoints_.count(to) == 0) {
      return Status::Unavailable("net: no such endpoint");
    }
    if (crashed_.count(to) != 0 || crashed_.count(from) != 0) {
      to_crashed_->Increment();
      return Status::Unavailable("net: endpoint crashed");
    }
    if (partitions_.count(LinkKey(from, to)) != 0) {
      partitioned_->Increment();
      return Status::Unavailable("net: link partitioned");
    }
    if (options_.drop_rate > 0.0 && rng_.Chance(options_.drop_rate)) {
      dropped_->Increment();
      return Status::IoError("net: message dropped");
    }
    duplicate = options_.duplicate_rate > 0.0 && rng_.Chance(options_.duplicate_rate);
    delivered_->Increment();
    if (duplicate) {
      duplicated_->Increment();
    }
  }
  handler(trace);
  if (duplicate) {
    handler(trace);  // receivers see the same trace context twice — idempotence is
                     // theirs to provide; the duplicate's spans show up honestly
  }
  return Status::Ok();
}

}  // namespace cluster
}  // namespace ss
