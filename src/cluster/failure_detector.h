// Heartbeat-driven per-node failure detector for the cluster tier.
//
// Mirrors PR 1's per-disk health ladder one level up: each member node walks
// healthy -> suspect -> down as consecutive heartbeat misses accumulate, and snaps
// back to healthy on the first successful heartbeat (triggering hinted-handoff
// replay in the coordinator). The detector itself is deliberately passive state — it
// neither sends heartbeats nor locks anything. ClusterCoordinator::Tick() drives one
// heartbeat round through ClusterNet (so partitions, crashes, and delays all count
// as misses) and feeds the observations in under its own lock; that keeps the
// detector trivially deterministic and lets the harness read a consistent ladder.

#ifndef SS_CLUSTER_FAILURE_DETECTOR_H_
#define SS_CLUSTER_FAILURE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/obs/metrics.h"

namespace ss {
namespace cluster {

enum class NodeHealth : uint8_t { kHealthy = 0, kSuspect = 1, kDown = 2 };

const char* NodeHealthName(NodeHealth health);

struct FailureDetectorOptions {
  // Consecutive misses before healthy -> suspect, and before suspect -> down.
  uint32_t suspect_after_misses = 2;
  uint32_t down_after_misses = 4;
};

class FailureDetector {
 public:
  // When `metrics` is provided, every ladder transition increments the counter named
  // for the state *entered*: cluster.fd.healthy (recovery), cluster.fd.suspect,
  // cluster.fd.down. Counter pointers are resolved once here (registration is rare,
  // transitions are hot-path under the coordinator lock).
  explicit FailureDetector(FailureDetectorOptions options = {},
                           MetricRegistry* metrics = nullptr);

  void AddNode(int node);     // starts healthy
  void RemoveNode(int node);

  struct Transition {
    int node = 0;
    NodeHealth from = NodeHealth::kHealthy;
    NodeHealth to = NodeHealth::kHealthy;
  };

  // Feeds one heartbeat observation; returns the ladder transition it caused, if
  // any. A success resets the miss count and recovers the node to healthy from any
  // state; a miss climbs the ladder at the configured thresholds.
  std::vector<Transition> Observe(int node, bool heartbeat_ok);

  NodeHealth Health(int node) const;  // kDown for unknown nodes
  uint32_t Misses(int node) const;
  std::vector<int> Nodes() const;

 private:
  struct NodeState {
    NodeHealth health = NodeHealth::kHealthy;
    uint32_t misses = 0;
  };
  FailureDetectorOptions options_;
  std::map<int, NodeState> nodes_;
  Counter* entered_healthy_ = nullptr;  // null when metrics were not supplied
  Counter* entered_suspect_ = nullptr;
  Counter* entered_down_ = nullptr;
};

}  // namespace cluster
}  // namespace ss

#endif  // SS_CLUSTER_FAILURE_DETECTOR_H_
