#include "src/superblock/extent_manager.h"

#include "src/common/cover.h"
#include "src/common/retry_policy.h"
#include "src/faults/faults.h"

namespace ss {

ExtentManager::ExtentManager(Disk* disk, IoScheduler* scheduler, uint32_t buffer_permits,
                             IoRetryOptions retry, MetricRegistry* metrics)
    : disk_(disk),
      scheduler_(scheduler),
      retry_(retry),
      buffer_pool_(buffer_permits),
      owned_metrics_(metrics == nullptr ? std::make_unique<MetricRegistry>() : nullptr),
      health_(DiskHealthOptions{}, metrics == nullptr ? owned_metrics_.get() : metrics) {
  MetricRegistry* reg = owned_metrics_ != nullptr ? owned_metrics_.get() : metrics;
  metrics_ = reg;
  batch_soft_wp_updates_ = &reg->counter("extent.batch.soft_wp_updates");
  retry_attempts_ = &reg->counter("extent.retry.attempts");
  retry_transient_ = &reg->counter("extent.retry.transient_faults");
  retry_absorbed_ = &reg->counter("extent.retry.absorbed");
  retry_exhausted_ = &reg->counter("extent.retry.exhausted");
  retry_permanent_ = &reg->counter("extent.retry.permanent_failures");
  retry_backoff_ticks_ = &reg->histogram("extent.retry.backoff_ticks");
  if (retry_.max_attempts == 0) {
    retry_.max_attempts = 1;
  }
  const DiskGeometry& geo = disk_->geometry();
  extents_.resize(geo.extent_count);
  for (ExtentId e = 0; e < geo.extent_count; ++e) {
    ExtentState& state = extents_[e];
    state.wp = disk_->ReadSoftWp(e);
    state.enqueued_soft_wp = state.wp;
    state.owner = disk_->ReadOwnership(e);
    state.ownership_dep = Dependency();  // persisted state needs no further ordering
    // Copy the full persistent image, including pages beyond the write pointer: a real
    // disk retains stale bytes there too, which is what makes write-pointer bugs
    // (e.g. #7) observable as resurrected data.
    state.image.resize(geo.pages_per_extent);
    for (uint32_t p = 0; p < geo.pages_per_extent; ++p) {
      auto page = disk_->PeekPage(e, p);
      state.image[p] = page.ok() ? std::move(page).value() : Bytes(geo.page_size, 0);
    }
  }
}

Status ExtentManager::CheckExtent(ExtentId extent) const {
  if (extent == 0 || extent >= disk_->geometry().extent_count) {
    return Status::InvalidArgument("extent out of range (extent 0 is the superblock)");
  }
  return Status::Ok();
}

Status ExtentManager::CheckIo(ExtentId extent, bool is_write, const SpanScope& scope) const {
  DiskFaultInjector& faults = disk_->fault_injector();
  // Retries that consumed backoff show up as an "extent.retry" span whose duration is
  // exactly the ticks charged; clean IOs record nothing.
  const auto record_retry_span = [&](uint64_t ticks, StatusCode code) {
    if (scope.active() && ticks > 0) {
      Span span = scope.Child("extent.retry");
      span.set_status(code);
      span.AddTicks(ticks);
    }
  };
  // Permanent failures are classified before any attempt: retrying a dead extent only
  // wastes the error budget that the health machinery spends on real transients.
  if (faults.IsPermanentlyFailed(extent)) {
    retry_attempts_->Increment();
    retry_permanent_->Increment();
    health_.RecordPermanentError();
    return Status::DiskFailed(is_write ? "append: extent failed permanently"
                                       : "read: extent failed permanently");
  }
  // Attempt/backoff semantics live in the shared policy (the cluster tier's quorum
  // RPC retries run the same code); this layer contributes the per-attempt fault
  // consultation, health accounting, and metric increments.
  const common::RetryPolicy policy(common::RetryOptions{
      .max_attempts = retry_.max_attempts, .backoff_base_ticks = retry_.backoff_base_ticks});
  const common::RetryPolicy::RunResult run = policy.Run(
      [&](uint32_t) {
        const bool failed =
            is_write ? faults.ShouldFailWrite(extent) : faults.ShouldFailRead(extent);
        retry_attempts_->Increment();
        if (failed) {
          retry_transient_->Increment();
          health_.RecordTransientError();
          return Status::IoError(is_write ? "append: transient write fault"
                                          : "read: transient read fault");
        }
        health_.RecordSuccess();
        return Status::Ok();
      },
      [&](uint64_t ticks) {
        // Deterministic exponential backoff on the virtual clock: 1, 2, 4, ... base
        // ticks. No wall-clock sleep — harness runs must stay instantaneous.
        LockGuard lock(retry_mu_);
        virtual_clock_ += ticks;
        clock_ticks_.store(virtual_clock_, std::memory_order_relaxed);
      });
  if (run.status.ok()) {
    if (run.attempts > 1) {
      retry_absorbed_->Increment();
      SS_COVER("extent_manager.retry_absorbed_fault");
      retry_backoff_ticks_->Record(run.backoff_ticks);
      record_retry_span(run.backoff_ticks, StatusCode::kOk);
    }
    return Status::Ok();
  }
  retry_exhausted_->Increment();
  retry_backoff_ticks_->Record(run.backoff_ticks);
  record_retry_span(run.backoff_ticks, StatusCode::kIoError);
  SS_COVER("extent_manager.retry_budget_exhausted");
  return Status::IoError(is_write ? "append: transient write faults outlasted retry budget"
                                  : "read: transient read faults outlasted retry budget");
}

uint64_t ExtentManager::VirtualNow() const {
  LockGuard lock(retry_mu_);
  return virtual_clock_;
}

uint32_t ExtentManager::PagesNeeded(size_t bytes) const {
  const uint32_t page_size = disk_->geometry().page_size;
  return static_cast<uint32_t>((bytes + page_size - 1) / page_size);
}

Result<AppendResult> ExtentManager::Append(ExtentId extent, ByteSpan data, Dependency input,
                                           const SpanScope& scope) {
  Span span = scope.Child("extent.append");
  const SpanScope child_scope = span.scope();
  if (Status check = CheckExtent(extent); !check.ok()) {
    span.set_status(check.code());
    return check;
  }
  if (data.empty()) {
    span.set_status(StatusCode::kInvalidArgument);
    return Status::InvalidArgument("append of zero bytes");
  }
  const DiskGeometry& geo = disk_->geometry();
  const uint32_t pages_needed = PagesNeeded(data.size());

  // Stage buffers for the data pages and the superblock update. The correct code takes
  // both permits atomically; seeded bug #12 splits the acquisition, which deadlocks
  // when two appends race on a nearly-exhausted pool.
  if (BugEnabled(SeededBug::kBufferPoolDeadlock)) {
    buffer_pool_.Acquire(1);
    YieldThread();  // the preemption window the model checker exploits
    buffer_pool_.Acquire(1);
  } else {
    buffer_pool_.Acquire(2);
  }

  LockGuard lock(mu_);
  ExtentState& state = extents_[extent];
  if (state.owner == ExtentOwner::kFree) {
    buffer_pool_.Release(2);
    span.set_status(StatusCode::kInvalidArgument);
    return Status::InvalidArgument("append to unowned extent");
  }
  if (uint64_t{state.wp} + pages_needed > geo.pages_per_extent) {
    buffer_pool_.Release(2);
    span.set_status(StatusCode::kResourceExhausted);
    return Status::ResourceExhausted("extent full");
  }
  // Synchronous write-failure surface: a failed append reports the classified error
  // (kIoError past the retry budget, kDiskFailed for permanent faults) to the caller
  // and stages nothing (section 4.4 failure injection).
  if (Status io = CheckIo(extent, /*is_write=*/true, child_scope); !io.ok()) {
    buffer_pool_.Release(2);
    span.set_status(io.code());
    return io;
  }

  AppendResult result;
  result.first_page = state.wp;
  result.page_count = pages_needed;

  std::vector<Dependency> data_deps;
  std::vector<Dependency> soft_wp_deps;
  for (uint32_t i = 0; i < pages_needed; ++i) {
    const size_t off = size_t{i} * geo.page_size;
    const size_t len = std::min<size_t>(geo.page_size, data.size() - off);
    Bytes page(data.begin() + static_cast<ptrdiff_t>(off),
               data.begin() + static_cast<ptrdiff_t>(off + len));
    page.resize(geo.page_size, 0);

    // Stage into the volatile image so the write is immediately readable.
    state.image[state.wp + i] = page;

    std::vector<Dependency> inputs = {input};
    if (!BugEnabled(SeededBug::kSuperblockWrongOwnershipDep)) {
      // Data on a freshly claimed extent must not persist before its ownership record.
      inputs.push_back(state.ownership_dep);
    }
    Dependency page_dep = scheduler_->EnqueueDataPage(extent, state.wp + i, std::move(page),
                                                      std::move(inputs), child_scope);
    data_deps.push_back(page_dep);

    // Soft-write-pointer update covering this page. Two rules:
    //  * it is *gated on the data write it covers*: a pointer that reached the disk
    //    ahead of its data would make recovery expose stale (possibly stale-but-valid)
    //    bytes below the write pointer — the core soft-updates ordering;
    //  * it is skipped when an update with an equal or higher value is already
    //    enqueued — which never happens in correct execution because appends advance
    //    monotonically and Reset() rewinds the tracker. Seeded bug #7 breaks the
    //    rewind, making this skip fire and leaving the persisted pointer stale
    //    relative to the data.
    //
    // Inside a write batch the update is deferred instead: the batch's appends to
    // this extent share one superblock update (enqueued at EndWriteBatch, gated on
    // all the pages it covers), and the append's dependency carries the pending
    // update's promise in its place.
    const uint32_t covered = state.wp + i + 1;
    if (batch_depth_ > 0) {
      auto [pend_it, inserted] = pending_soft_wp_.try_emplace(extent);
      if (inserted) {
        pend_it->second.promise = Dependency::MakePromise();
      }
      pend_it->second.covered = std::max(pend_it->second.covered, covered);
      pend_it->second.data_deps.push_back(page_dep);
      soft_wp_deps.push_back(pend_it->second.promise);
    } else if (covered > state.enqueued_soft_wp) {
      Dependency soft_dep = scheduler_->EnqueueSoftWp(extent, covered, {page_dep}, child_scope);
      state.last_soft_wp_dep = soft_dep;
      soft_wp_deps.push_back(std::move(soft_dep));
      state.enqueued_soft_wp = covered;
    } else {
      SS_COVER("extent_manager.soft_wp_skip");
    }
  }
  state.wp += pages_needed;

  result.dep = Dependency::AndAll(data_deps);
  if (!BugEnabled(SeededBug::kWriteMissingSoftPointerDep)) {
    result.dep = result.dep.And(Dependency::AndAll(soft_wp_deps));
  }
  buffer_pool_.Release(2);
  return result;
}

Result<Bytes> ExtentManager::Read(ExtentId extent, uint32_t first_page, uint32_t page_count,
                                  const SpanScope& scope) const {
  SS_RETURN_IF_ERROR(CheckExtent(extent));
  SS_RETURN_IF_ERROR(CheckIo(extent, /*is_write=*/false, scope));
  LockGuard lock(mu_);
  const ExtentState& state = extents_[extent];
  if (uint64_t{first_page} + page_count > state.wp) {
    // Reads beyond the write pointer are forbidden (paper section 2.1).
    return Status::InvalidArgument("read beyond write pointer");
  }
  const DiskGeometry& geo = disk_->geometry();
  Bytes out;
  out.reserve(uint64_t{page_count} * geo.page_size);
  for (uint32_t i = 0; i < page_count; ++i) {
    const Bytes& page = state.image[first_page + i];
    out.insert(out.end(), page.begin(), page.end());
  }
  return out;
}

Dependency ExtentManager::Reset(ExtentId extent, Dependency input) {
  if (!CheckExtent(extent).ok()) {
    return Dependency();
  }
  LockGuard lock(mu_);
  return ResetLocked(extent, std::move(input));
}

void ExtentManager::SettlePendingSoftWpLocked(ExtentId extent) {
  auto it = pending_soft_wp_.find(extent);
  if (it == pending_soft_wp_.end()) {
    return;
  }
  ExtentState& state = extents_[extent];
  PendingSoftWp& pend = it->second;
  if (pend.covered > state.enqueued_soft_wp) {
    Dependency dep = scheduler_->EnqueueSoftWp(extent, pend.covered, pend.data_deps);
    state.enqueued_soft_wp = pend.covered;
    state.last_soft_wp_dep = dep;
    pend.promise.ResolvePromise(dep);
    batch_soft_wp_updates_->Increment();
  } else {
    // A covering update is already enqueued (an interleaved unbatched append, or a
    // stale tracker under bug #7). The data domain's FIFO guarantees that update is
    // gated behind the batch's pages, so resolving to it preserves the ordering.
    SS_COVER("extent_manager.batch_soft_wp_covered");
    pend.promise.ResolvePromise(state.last_soft_wp_dep);
  }
  pending_soft_wp_.erase(it);
}

void ExtentManager::BeginWriteBatch() {
  LockGuard lock(mu_);
  ++batch_depth_;
  scheduler_->BeginCoalescing();
}

void ExtentManager::EndWriteBatch() {
  LockGuard lock(mu_);
  if (batch_depth_ == 0) {
    return;
  }
  scheduler_->EndCoalescing();
  if (--batch_depth_ > 0) {
    return;  // inner scope of a nested batch
  }
  while (!pending_soft_wp_.empty()) {
    SettlePendingSoftWpLocked(pending_soft_wp_.begin()->first);
  }
}

Dependency ExtentManager::ResetLocked(ExtentId extent, Dependency input) {
  ExtentState& state = extents_[extent];
  // A deferred batch update for this extent must settle first: left pending, it would
  // later move the persisted pointer forward over pages the reset rewinds.
  SettlePendingSoftWpLocked(extent);
  Dependency marker = scheduler_->EnqueueReset(extent, {input});
  Dependency zero = scheduler_->EnqueueSoftWp(extent, 0, {input});
  state.last_soft_wp_dep = zero;
  state.wp = 0;
  if (!BugEnabled(SeededBug::kSoftPointerNotResetPersisted)) {
    state.enqueued_soft_wp = 0;
  } else {
    SS_COVER("extent_manager.bug7_stale_tracker");
  }
  // The volatile image retains old contents, as a physical reset would.
  Dependency dep = marker.And(zero);
  state.last_reset_dep = dep;
  return dep;
}

bool ExtentManager::ResetSettled(ExtentId extent) const {
  LockGuard lock(mu_);
  if (extent >= extents_.size()) {
    return false;
  }
  return extents_[extent].last_reset_dep.IsPersistent();
}

Result<ExtentId> ExtentManager::ClaimExtent(ExtentOwner owner) {
  LockGuard lock(mu_);
  const DiskGeometry& geo = disk_->geometry();
  for (ExtentId e = 1; e < geo.extent_count; ++e) {
    ExtentState& state = extents_[e];
    if (state.owner == ExtentOwner::kFree) {
      if (state.wp != 0) {
        // A free extent with a nonzero write pointer holds stale data from a previous
        // life (unreachable in correct execution: data never persists before its
        // ownership record, so a crash cannot leave owned data on an unowned extent).
        // Claiming resets it — which is what destroys persisted-but-unowned data when
        // the ownership dependency was wrong (seeded bug #6).
        SS_COVER("extent_manager.claim_resets_stale_extent");
        ResetLocked(e, Dependency());
      }
      state.owner = owner;
      Dependency dep = scheduler_->EnqueueOwnership(e, owner, {});
      state.ownership_dep = dep;
      return e;
    }
  }
  return Status::ResourceExhausted("no free extents");
}

uint32_t ExtentManager::WritePointer(ExtentId extent) const {
  LockGuard lock(mu_);
  return extent < extents_.size() ? extents_[extent].wp : 0;
}

ExtentOwner ExtentManager::Owner(ExtentId extent) const {
  LockGuard lock(mu_);
  return extent < extents_.size() ? extents_[extent].owner : ExtentOwner::kFree;
}

uint32_t ExtentManager::PagesFree(ExtentId extent) const {
  LockGuard lock(mu_);
  if (extent == 0 || extent >= extents_.size()) {
    return 0;
  }
  return disk_->geometry().pages_per_extent - extents_[extent].wp;
}

std::vector<ExtentId> ExtentManager::ExtentsOwnedBy(ExtentOwner owner) const {
  LockGuard lock(mu_);
  std::vector<ExtentId> out;
  for (ExtentId e = 1; e < extents_.size(); ++e) {
    if (extents_[e].owner == owner) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace ss
