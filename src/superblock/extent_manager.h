// ExtentManager: append-only extent IO with soft write pointers (paper sections 2.1-2.2).
//
// This is the only layer that writes to the IoScheduler. It implements the paper's
// extent contract:
//   * writes within an extent are sequential at the write pointer; an extent must be
//     reset before its space is reused,
//   * reads beyond the (volatile) write pointer are forbidden,
//   * every append also updates the extent's *soft write pointer* in the superblock,
//     and the append's returned Dependency covers both the data pages and the soft
//     pointer update (Figure 2) — recovery only trusts data below the persisted soft
//     pointer, so an append may not report persistent before the pointer covering it is,
//   * resetting an extent persists a zero soft pointer, ordered after the caller's
//     input dependency (evacuations, index updates).
//
// The manager keeps a volatile image of all extents: reads during normal operation are
// served from it (the disk's persistent image only matters across a crash). A new
// ExtentManager constructed over a recovered disk rebuilds its image and write pointers
// from the superblock, which is exactly ShardStore recovery at this layer.
//
// Seeded bugs hosted here: #6 (ownership dependency omitted), #7 (soft-pointer tracking
// not reset), #8 (append dependency missing the soft-pointer update), #12 (split buffer
// pool acquisition that can deadlock).

#ifndef SS_SUPERBLOCK_EXTENT_MANAGER_H_
#define SS_SUPERBLOCK_EXTENT_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/dep/dependency.h"
#include "src/dep/io_scheduler.h"
#include "src/disk/disk.h"
#include "src/disk/disk_health.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sync/sync.h"

namespace ss {

struct AppendResult {
  uint32_t first_page = 0;
  uint32_t page_count = 0;
  // Persistent once the data pages and the covering soft-write-pointer update are
  // durable (and, for a freshly claimed extent, its ownership record).
  Dependency dep;
};

// Bounded-retry policy for transient IO faults. Backoff is driven by a *virtual*
// clock — a monotonic tick counter the manager advances by the backoff amount instead
// of sleeping — so harness runs stay deterministic and instantaneous while tests can
// still assert that escalation paid the full exponential schedule. The attempt and
// backoff semantics are implemented by the shared ss::common::RetryPolicy
// (src/common/retry_policy.h) — the same engine the cluster tier uses for quorum RPC
// retries — this struct just names the two knobs the extent layer exposes.
struct IoRetryOptions {
  // Total attempts per IO (1 initial + max_attempts-1 retries). 0 is treated as 1.
  uint32_t max_attempts = 3;
  // Virtual ticks charged before the first retry; doubles per subsequent retry.
  uint64_t backoff_base_ticks = 1;
};

// The manager is the write path's TickSource: span latency is measured on its
// virtual retry-backoff clock (see SpanTicksNow below).
class ExtentManager : public TickSource {
 public:
  // Buffer-pool permits available for in-flight superblock/data staging. Two permits are
  // needed per append; the default leaves headroom, while concurrency tests shrink it to
  // surface bug #12.
  static constexpr uint32_t kDefaultBufferPermits = 64;

  // Builds the manager over (possibly freshly recovered) disk state: write pointers come
  // from the persisted superblock soft pointers, extent images from the disk pages.
  // Retry/health metrics land in `metrics` (extent.retry.*, disk.health.*) when
  // provided; otherwise the manager owns a private registry so direct construction
  // keeps working in tests.
  ExtentManager(Disk* disk, IoScheduler* scheduler,
                uint32_t buffer_permits = kDefaultBufferPermits, IoRetryOptions retry = {},
                MetricRegistry* metrics = nullptr);

  // --- Data path ----------------------------------------------------------------------
  // Appends `data` (1..extent-size bytes) at the write pointer. The write is staged
  // immediately (readable through Read) and scheduled for writeback; it will not be
  // issued to disk before `input` persists. `scope`, when active, receives an
  // "extent.append" child span (plus "extent.retry" / "io.submit" grandchildren).
  Result<AppendResult> Append(ExtentId extent, ByteSpan data, Dependency input,
                              const SpanScope& scope = {});

  // Reads `page_count` pages starting at `first_page`. Fails with kInvalidArgument if
  // the range extends past the write pointer, kIoError under fault injection.
  Result<Bytes> Read(ExtentId extent, uint32_t first_page, uint32_t page_count,
                     const SpanScope& scope = {}) const;

  // Returns the write pointer (pages) to the start of the extent, making existing data
  // unreachable. The reset (and its zero soft pointer) is issued only after `input`
  // persists. Returns the reset's dependency.
  Dependency Reset(ExtentId extent, Dependency input);

  // --- Write batch (group commit) -----------------------------------------------------
  // Between BeginWriteBatch and the matching EndWriteBatch, Append defers each
  // extent's soft-write-pointer update: instead of one superblock update per page, the
  // appends of a batch share a single update per touched extent, enqueued at End and
  // gated on all the data pages it covers. Append results carry a promise for the
  // shared update, resolved at End — so no batch append can report persistent before
  // its covering pointer does, exactly as in the unbatched path. The scope also opens
  // the IoScheduler's coalescing window. Batches nest; inner Ends are no-ops.
  //
  // Interleaved non-batch appends on the same extent stay sound: their per-page
  // updates share the soft-wp FIFO domain, and any update covering a batch page is
  // gated (through the data domain's FIFO) on that page reaching the disk first.
  void BeginWriteBatch();
  void EndWriteBatch();

  // --- Ownership ----------------------------------------------------------------------
  // Claims a free extent for `owner`, persisting the ownership record in the superblock.
  // Data appended to the extent will not persist before the ownership record does.
  Result<ExtentId> ClaimExtent(ExtentOwner owner);

  // True once the extent's most recent reset (if any) has reached the disk. Space freed
  // by a reset may only be reused for new allocations after this point: otherwise a
  // write on the reused extent is queued behind a reset whose input dependency can
  // reach *forward* to that very write's flush (a scheduling cycle, i.e. a
  // forward-progress violation).
  bool ResetSettled(ExtentId extent) const;

  // --- Introspection ------------------------------------------------------------------
  uint32_t WritePointer(ExtentId extent) const;
  ExtentOwner Owner(ExtentId extent) const;
  uint32_t PagesFree(ExtentId extent) const;
  std::vector<ExtentId> ExtentsOwnedBy(ExtentOwner owner) const;
  const DiskGeometry& geometry() const { return disk_->geometry(); }
  uint32_t PagesNeeded(size_t bytes) const;

  IoScheduler& scheduler() { return *scheduler_; }
  Disk& disk() { return *disk_; }

  // --- Failure domain -----------------------------------------------------------------
  // Error-budget tracker fed by the retry loop; NodeServer's routing policy reads it.
  DiskHealthTracker& health() { return health_; }
  const DiskHealthTracker& health() const { return health_; }
  // Current virtual time (ticks charged by retry backoff so far).
  uint64_t VirtualNow() const;

  // TickSource: lock-free mirror of the virtual clock. A relaxed atomic load, so span
  // timestamping deep in the write path never takes the ss::sync retry mutex — reading
  // the clock is invisible to the model checker and adds no scheduling points.
  uint64_t SpanTicksNow() const override {
    return clock_ticks_.load(std::memory_order_relaxed);
  }

  // The extent.* / disk.health.* counters live in the registry passed at construction
  // (or the private one): read them via MetricRegistry::Snapshot().
  const MetricRegistry& metrics() const { return *metrics_; }

 private:
  struct ExtentState {
    uint32_t wp = 0;                 // volatile write pointer (pages)
    uint32_t enqueued_soft_wp = 0;   // highest soft-wp value already enqueued
    ExtentOwner owner = ExtentOwner::kFree;
    Dependency ownership_dep;        // trivially persistent unless freshly claimed
    Dependency last_reset_dep;       // trivially persistent unless a reset is in flight
    Dependency last_soft_wp_dep;     // dependency of the newest enqueued soft-wp update
    std::vector<Bytes> image;        // volatile page contents
  };

  // A deferred (batched) soft-wp update for one extent: the highest page it must
  // cover, the data pages gating it, and the promise appends handed out for it.
  struct PendingSoftWp {
    uint32_t covered = 0;
    std::vector<Dependency> data_deps;
    Dependency promise;
  };

  Status CheckExtent(ExtentId extent) const;
  Dependency ResetLocked(ExtentId extent, Dependency input);
  // Enqueues (or skips) the deferred update for `extent` and resolves its promise.
  // Caller holds mu_.
  void SettlePendingSoftWpLocked(ExtentId extent);
  // Consults the fault injector for one logical IO on `extent`, retrying transient
  // faults up to the attempt budget with exponential virtual-clock backoff. Returns
  // Ok, kDiskFailed (permanent, no retries), or kIoError (budget exhausted). When
  // retries occurred and `scope` is active, records an "extent.retry" child span whose
  // duration is the backoff ticks the IO consumed.
  Status CheckIo(ExtentId extent, bool is_write, const SpanScope& scope = {}) const;

  Disk* disk_;
  IoScheduler* scheduler_;
  IoRetryOptions retry_;
  mutable Mutex mu_{MutexAttr{"extent.manager", lockrank::kExtent}};
  std::vector<ExtentState> extents_;
  uint32_t batch_depth_ = 0;  // guarded by mu_
  std::map<ExtentId, PendingSoftWp> pending_soft_wp_;  // guarded by mu_
  Semaphore buffer_pool_;
  std::unique_ptr<MetricRegistry> owned_metrics_;
  MetricRegistry* metrics_ = nullptr;  // the registry in use (owned or caller's)
  mutable DiskHealthTracker health_;
  Counter* batch_soft_wp_updates_;
  Counter* retry_attempts_;
  Counter* retry_transient_;
  Counter* retry_absorbed_;
  Counter* retry_exhausted_;
  Counter* retry_permanent_;
  // Ticks a single IO spent in backoff before resolving; recorded only for IOs that
  // actually retried, so clean traffic doesn't flood the zero bucket.
  Histogram* retry_backoff_ticks_;
  mutable Mutex retry_mu_{MutexAttr{"extent.clock", lockrank::kClock}};  // guards the virtual clock
  mutable uint64_t virtual_clock_ = 0;
  // Mirror of virtual_clock_, updated wherever the clock advances (still under
  // retry_mu_); SpanTicksNow reads it without locking.
  mutable std::atomic<uint64_t> clock_ticks_{0};
};

}  // namespace ss

#endif  // SS_SUPERBLOCK_EXTENT_MANAGER_H_
