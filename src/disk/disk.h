// The disk seam: an abstract page/extent device plus the in-memory reference backend.
//
// The paper's harnesses run the real ShardStore stack against an in-memory disk for
// determinism and speed (section 4.1). This header defines the *interface* every
// backend must satisfy (`ss::disk::Disk`) and the reference implementation
// (`InMemoryDisk`). A second, file-backed implementation lives in file_disk.h; the
// conformance suite cross-validates that both produce identical persisted state for
// identical op sequences. The model:
//   * extents: contiguous page arrays with append-only write discipline,
//   * a *persistent image* only — volatile state (pending writebacks, caches, memtables)
//     lives in the layers above, so "crash" is simply "discard the layers above and
//     reopen the disk" (backends with a write buffer additionally drop their unsynced
//     tail — see the crash hooks on Disk),
//   * a superblock region holding per-extent soft write pointers and extent ownership
//     (the structured equivalent of extent 0 in Figure 2),
//   * injectable IO failures (FailDiskOnce-style, section 4.4).
//
// Extent 0 is reserved for the superblock region and is not available for data.

#ifndef SS_DISK_DISK_H_
#define SS_DISK_DISK_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sync/sync.h"

namespace ss {

using ExtentId = uint32_t;

// Which subsystem owns an extent's contents. Stored in the superblock region; recovery
// and reclamation dispatch reverse lookups on it.
enum class ExtentOwner : uint8_t {
  kFree = 0,
  kChunkData = 1,    // chunk-store data (shard chunks and LSM run chunks)
  kLsmMetadata = 2,  // reserved LSM metadata extents
};

struct DiskGeometry {
  uint32_t extent_count = 32;     // including reserved extent 0
  uint32_t pages_per_extent = 64;
  uint32_t page_size = 256;       // bytes

  uint64_t ExtentBytes() const { return uint64_t{pages_per_extent} * page_size; }
};

// Deterministic IO failure injection. The property-based failure tests (section 4.4)
// arm these from their operation alphabet. Three fault families:
//   * counted transients ("fail the next N attempts, then recover") — what a retry
//     layer is meant to absorb when N is below its attempt budget,
//   * probabilistic transients (each attempt fails with probability p, drawn from a
//     seeded generator so runs stay replayable),
//   * permanent failures (FailAlways) — the extent is gone; retries cannot help and
//     the error classification layer reports kDiskFailed instead of kIoError.
class DiskFaultInjector {
 public:
  // The next read touching `extent` fails once, then behaviour returns to normal.
  void FailReadOnce(ExtentId extent);
  // The next write touching `extent` fails once.
  void FailWriteOnce(ExtentId extent);
  // The next `times` reads/writes touching `extent` fail, then behaviour recovers.
  void FailReadTimes(ExtentId extent, uint32_t times);
  void FailWriteTimes(ExtentId extent, uint32_t times);
  // All IO to `extent` fails until cleared (permanent failure).
  void FailAlways(ExtentId extent, bool enabled);
  // Every read/write attempt (on any extent) additionally fails with the given
  // probability, drawn deterministically from `seed`. Rates are clamped to [0,1];
  // zero rates disable the mode. Replaces any previously armed rates.
  void SetFailureRates(double read_rate, double write_rate, uint64_t seed);
  void Clear();

  // Consume-and-report: true if this read/write should fail.
  bool ShouldFailRead(ExtentId extent);
  bool ShouldFailWrite(ExtentId extent);

  // Non-consuming: true if `extent` is armed to fail permanently (FailAlways).
  bool IsPermanentlyFailed(ExtentId extent) const;
  // Non-consuming: true if any fault (counted, probabilistic, or permanent) is armed.
  bool AnyArmed() const;

 private:
  mutable Mutex mu_{MutexAttr{"disk", lockrank::kDisk}};
  std::vector<ExtentId> read_once_;
  std::vector<ExtentId> write_once_;
  std::vector<ExtentId> always_;
  double read_rate_ = 0.0;
  double write_rate_ = 0.0;
  Rng rate_rng_{0};
};

// RAII guard: clears every fault armed on the injector when the scope exits, so a test
// cannot leak armed faults (or failure rates) into later tests sharing the disk.
class ScopedFault {
 public:
  explicit ScopedFault(DiskFaultInjector& injector) : injector_(injector) {}
  ~ScopedFault() { injector_.Clear(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  DiskFaultInjector& injector_;
};

namespace disk {

// Abstract page/extent device. All mutators are invoked by the IO scheduler when a
// writeback is issued (or by crash application); higher layers never write directly.
//
// Interface contract every backend must satisfy:
//   * WritePage writes exactly one page; shorter data is zero-padded to page_size.
//   * ReadPage/PeekPage return a full page (all zeros if never written). PeekPage is
//     the recovery read path: identical contents, but callers above never subject it
//     to fault injection (injected faults target the running system's IO, not the
//     post-reboot snapshot copy).
//   * Fault injection is enforced one layer up (ExtentManager::CheckIo), where
//     failures surface synchronously to the operation that caused the IO; the disk
//     itself only fails on real environmental errors (kDiskFailed from a file
//     backend) or caller misuse (kInvalidArgument).
//   * WriteSoftWp is the durability barrier: a backend with a write buffer must make
//     every previously written page of that extent durable before the new pointer is
//     persisted (soft-updates rule "data before the pointer that exposes it").
//   * Crash hooks: Sync() forces everything buffered durable; DropUnsynced() models a
//     power cut by discarding buffered-but-unsynced writes, restoring the last synced
//     image. For InMemoryDisk every write is durable on issue, so both are no-ops and
//     "crash" remains exactly IoScheduler::Crash + reopen. The crash-enumeration and
//     fault-injection harnesses call DropUnsynced() between scheduler crash and
//     recovery so they run unchanged against buffered backends.
class Disk {
 public:
  virtual ~Disk() = default;

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  virtual const DiskGeometry& geometry() const = 0;

  // --- Data pages -------------------------------------------------------------------
  virtual Status WritePage(ExtentId extent, uint32_t page, ByteSpan data) = 0;
  virtual Result<Bytes> ReadPage(ExtentId extent, uint32_t page) const = 0;
  virtual Result<Bytes> PeekPage(ExtentId extent, uint32_t page) const = 0;

  // Reads `count` consecutive pages into one buffer. Default: page-at-a-time loop.
  virtual Result<Bytes> ReadPages(ExtentId extent, uint32_t first_page,
                                  uint32_t count) const;

  // --- Superblock region ----------------------------------------------------------
  // Persisted soft write pointer (in pages) for an extent. Durability barrier: see
  // the class comment.
  virtual Status WriteSoftWp(ExtentId extent, uint32_t wp_pages) = 0;
  virtual uint32_t ReadSoftWp(ExtentId extent) const = 0;

  virtual Status WriteOwnership(ExtentId extent, ExtentOwner owner) = 0;
  virtual ExtentOwner ReadOwnership(ExtentId extent) const = 0;

  // --- Reset ------------------------------------------------------------------------
  // Applied when an extent-reset writeback is issued: page *contents are retained*
  // (nothing is physically erased) — only the superblock soft pointer write makes the
  // old data unreachable. This mirrors real extent resets and is what makes stale-data
  // resurrection bugs (#7) expressible.
  virtual Status ResetExtentRegion(ExtentId extent) = 0;

  // --- Crash hooks ------------------------------------------------------------------
  // Forces everything buffered durable (data pages and superblock records).
  virtual Status Sync() { return Status::Ok(); }
  // Crash simulation: discards buffered-but-unsynced writes, leaving the last synced
  // image. A no-op for backends whose writes are durable on issue.
  virtual void DropUnsynced() {}

  // Total pages with a nonzero persisted soft write pointer — diagnostics only.
  virtual uint64_t LivePages() const = 0;

  // Monotonic superblock epoch, bumped by recovery so tests can count reboots.
  void BumpEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  DiskFaultInjector& fault_injector() { return faults_; }

 protected:
  Disk() = default;

  uint64_t epoch_ = 0;
  mutable DiskFaultInjector faults_;
};

}  // namespace disk

using disk::Disk;

// The reference backend: a deterministic, purely in-memory persistent image. Every
// write is durable the moment it is issued, which keeps "crash" equal to the IO
// scheduler's dependency-closed writeback subsets with nothing extra to drop.
class InMemoryDisk final : public Disk {
 public:
  explicit InMemoryDisk(DiskGeometry geometry = {});

  const DiskGeometry& geometry() const override { return geometry_; }

  Status WritePage(ExtentId extent, uint32_t page, ByteSpan data) override;
  Result<Bytes> ReadPage(ExtentId extent, uint32_t page) const override;
  Result<Bytes> PeekPage(ExtentId extent, uint32_t page) const override;

  Status WriteSoftWp(ExtentId extent, uint32_t wp_pages) override;
  uint32_t ReadSoftWp(ExtentId extent) const override;

  Status WriteOwnership(ExtentId extent, ExtentOwner owner) override;
  ExtentOwner ReadOwnership(ExtentId extent) const override;

  Status ResetExtentRegion(ExtentId extent) override;

  uint64_t LivePages() const override;

 private:
  Status CheckRange(ExtentId extent, uint32_t page) const;

  DiskGeometry geometry_;
  // pages_[extent * pages_per_extent + page]
  std::vector<Bytes> pages_;
  std::vector<uint32_t> soft_wp_;
  std::vector<ExtentOwner> ownership_;
};

}  // namespace ss

#endif  // SS_DISK_DISK_H_
