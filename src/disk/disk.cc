#include "src/disk/disk.h"

#include <algorithm>

namespace ss {

namespace {
bool TakeOne(std::vector<ExtentId>& v, ExtentId extent) {
  auto it = std::find(v.begin(), v.end(), extent);
  if (it == v.end()) {
    return false;
  }
  v.erase(it);
  return true;
}
}  // namespace

void DiskFaultInjector::FailReadOnce(ExtentId extent) {
  LockGuard lock(mu_);
  read_once_.push_back(extent);
}

void DiskFaultInjector::FailWriteOnce(ExtentId extent) {
  LockGuard lock(mu_);
  write_once_.push_back(extent);
}

void DiskFaultInjector::FailReadTimes(ExtentId extent, uint32_t times) {
  LockGuard lock(mu_);
  for (uint32_t i = 0; i < times; ++i) {
    read_once_.push_back(extent);
  }
}

void DiskFaultInjector::FailWriteTimes(ExtentId extent, uint32_t times) {
  LockGuard lock(mu_);
  for (uint32_t i = 0; i < times; ++i) {
    write_once_.push_back(extent);
  }
}

void DiskFaultInjector::SetFailureRates(double read_rate, double write_rate, uint64_t seed) {
  LockGuard lock(mu_);
  read_rate_ = std::clamp(read_rate, 0.0, 1.0);
  write_rate_ = std::clamp(write_rate, 0.0, 1.0);
  rate_rng_.Seed(seed);
}

void DiskFaultInjector::FailAlways(ExtentId extent, bool enabled) {
  LockGuard lock(mu_);
  auto it = std::find(always_.begin(), always_.end(), extent);
  if (enabled && it == always_.end()) {
    always_.push_back(extent);
  } else if (!enabled && it != always_.end()) {
    always_.erase(it);
  }
}

void DiskFaultInjector::Clear() {
  LockGuard lock(mu_);
  read_once_.clear();
  write_once_.clear();
  always_.clear();
  read_rate_ = 0.0;
  write_rate_ = 0.0;
}

bool DiskFaultInjector::ShouldFailRead(ExtentId extent) {
  LockGuard lock(mu_);
  if (std::find(always_.begin(), always_.end(), extent) != always_.end()) {
    return true;
  }
  if (TakeOne(read_once_, extent)) {
    return true;
  }
  return read_rate_ > 0.0 && rate_rng_.Chance(read_rate_);
}

bool DiskFaultInjector::ShouldFailWrite(ExtentId extent) {
  LockGuard lock(mu_);
  if (std::find(always_.begin(), always_.end(), extent) != always_.end()) {
    return true;
  }
  if (TakeOne(write_once_, extent)) {
    return true;
  }
  return write_rate_ > 0.0 && rate_rng_.Chance(write_rate_);
}

bool DiskFaultInjector::IsPermanentlyFailed(ExtentId extent) const {
  LockGuard lock(mu_);
  return std::find(always_.begin(), always_.end(), extent) != always_.end();
}

bool DiskFaultInjector::AnyArmed() const {
  LockGuard lock(mu_);
  return !read_once_.empty() || !write_once_.empty() || !always_.empty() ||
         read_rate_ > 0.0 || write_rate_ > 0.0;
}

Result<Bytes> disk::Disk::ReadPages(ExtentId extent, uint32_t first_page,
                                    uint32_t count) const {
  Bytes out;
  out.reserve(uint64_t{count} * geometry().page_size);
  for (uint32_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(Bytes page, ReadPage(extent, first_page + i));
    out.insert(out.end(), page.begin(), page.end());
  }
  return out;
}

InMemoryDisk::InMemoryDisk(DiskGeometry geometry) : geometry_(geometry) {
  pages_.resize(uint64_t{geometry_.extent_count} * geometry_.pages_per_extent);
  soft_wp_.assign(geometry_.extent_count, 0);
  ownership_.assign(geometry_.extent_count, ExtentOwner::kFree);
}

Status InMemoryDisk::CheckRange(ExtentId extent, uint32_t page) const {
  if (extent >= geometry_.extent_count || page >= geometry_.pages_per_extent) {
    return Status::InvalidArgument("disk: extent/page out of range");
  }
  return Status::Ok();
}

Status InMemoryDisk::WritePage(ExtentId extent, uint32_t page, ByteSpan data) {
  SS_RETURN_IF_ERROR(CheckRange(extent, page));
  if (data.size() > geometry_.page_size) {
    return Status::InvalidArgument("disk: write larger than a page");
  }
  Bytes& slot = pages_[uint64_t{extent} * geometry_.pages_per_extent + page];
  slot.assign(data.begin(), data.end());
  slot.resize(geometry_.page_size, 0);
  return Status::Ok();
}

Result<Bytes> InMemoryDisk::ReadPage(ExtentId extent, uint32_t page) const {
  SS_RETURN_IF_ERROR(CheckRange(extent, page));
  const Bytes& slot = pages_[uint64_t{extent} * geometry_.pages_per_extent + page];
  if (slot.empty()) {
    return Bytes(geometry_.page_size, 0);
  }
  return slot;
}

Result<Bytes> InMemoryDisk::PeekPage(ExtentId extent, uint32_t page) const {
  SS_RETURN_IF_ERROR(CheckRange(extent, page));
  const Bytes& slot = pages_[uint64_t{extent} * geometry_.pages_per_extent + page];
  if (slot.empty()) {
    return Bytes(geometry_.page_size, 0);
  }
  return slot;
}

Status InMemoryDisk::WriteSoftWp(ExtentId extent, uint32_t wp_pages) {
  SS_RETURN_IF_ERROR(CheckRange(extent, 0));
  if (wp_pages > geometry_.pages_per_extent) {
    return Status::InvalidArgument("disk: soft wp out of range");
  }
  soft_wp_[extent] = wp_pages;
  return Status::Ok();
}

uint32_t InMemoryDisk::ReadSoftWp(ExtentId extent) const {
  return extent < soft_wp_.size() ? soft_wp_[extent] : 0;
}

Status InMemoryDisk::WriteOwnership(ExtentId extent, ExtentOwner owner) {
  SS_RETURN_IF_ERROR(CheckRange(extent, 0));
  ownership_[extent] = owner;
  return Status::Ok();
}

ExtentOwner InMemoryDisk::ReadOwnership(ExtentId extent) const {
  return extent < ownership_.size() ? ownership_[extent] : ExtentOwner::kFree;
}

Status InMemoryDisk::ResetExtentRegion(ExtentId extent) {
  SS_RETURN_IF_ERROR(CheckRange(extent, 0));
  // Intentionally does not clear page contents; see header comment.
  return Status::Ok();
}

uint64_t InMemoryDisk::LivePages() const {
  uint64_t total = 0;
  for (uint32_t wp : soft_wp_) {
    total += wp;
  }
  return total;
}

}  // namespace ss
