#include "src/disk/disk_health.h"

namespace ss {

std::string_view DiskHealthName(DiskHealth health) {
  switch (health) {
    case DiskHealth::kHealthy:
      return "healthy";
    case DiskHealth::kDegraded:
      return "degraded";
    case DiskHealth::kFailed:
      return "failed";
  }
  return "?";
}

DiskHealthTracker::DiskHealthTracker(DiskHealthOptions options, MetricRegistry* metrics)
    : options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  transient_total_ = &metrics->counter("disk.health.transient_total");
  permanent_total_ = &metrics->counter("disk.health.permanent_total");
  state_ = &metrics->gauge("disk.health.state");
  state_->Set(static_cast<int64_t>(health_));
}

void DiskHealthTracker::RecordTransientLocked() {
  transient_total_->Increment();
  success_streak_ = 0;
  ++windowed_errors_;
  if (health_ == DiskHealth::kHealthy && windowed_errors_ >= options_.degrade_after) {
    health_ = DiskHealth::kDegraded;
  } else if (health_ == DiskHealth::kDegraded && windowed_errors_ >= options_.fail_after) {
    health_ = DiskHealth::kFailed;
  }
  state_->Set(static_cast<int64_t>(health_));
}

void DiskHealthTracker::RecordTransientError() {
  LockGuard lock(mu_);
  RecordTransientLocked();
}

void DiskHealthTracker::RecordPermanentError() {
  LockGuard lock(mu_);
  permanent_total_->Increment();
  success_streak_ = 0;
  health_ = DiskHealth::kFailed;
  state_->Set(static_cast<int64_t>(health_));
}

void DiskHealthTracker::RecordSuccess() {
  LockGuard lock(mu_);
  if (windowed_errors_ == 0) {
    return;
  }
  if (++success_streak_ >= options_.success_decay) {
    success_streak_ = 0;
    --windowed_errors_;
  }
}

DiskHealth DiskHealthTracker::health() const {
  LockGuard lock(mu_);
  return health_;
}

uint32_t DiskHealthTracker::windowed_errors() const {
  LockGuard lock(mu_);
  return windowed_errors_;
}

uint32_t DiskHealthTracker::budget_remaining() const {
  LockGuard lock(mu_);
  switch (health_) {
    case DiskHealth::kHealthy:
      return windowed_errors_ >= options_.degrade_after
                 ? 0
                 : options_.degrade_after - windowed_errors_;
    case DiskHealth::kDegraded:
      return windowed_errors_ >= options_.fail_after ? 0
                                                     : options_.fail_after - windowed_errors_;
    case DiskHealth::kFailed:
      return 0;
  }
  return 0;
}

uint64_t DiskHealthTracker::transient_total() const { return transient_total_->Value(); }

uint64_t DiskHealthTracker::permanent_total() const { return permanent_total_->Value(); }

void DiskHealthTracker::Reset() {
  LockGuard lock(mu_);
  health_ = DiskHealth::kHealthy;
  windowed_errors_ = 0;
  success_streak_ = 0;
  state_->Set(static_cast<int64_t>(health_));
}

}  // namespace ss
