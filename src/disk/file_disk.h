// File-backed disk: the durable implementation of ss::disk::Disk.
//
// Layout is one append-only log file per extent plus one superblock log, all under a
// caller-chosen directory:
//
//   <dir>/superblock.log   geometry header, soft write pointers, ownership records
//   <dir>/extent-NNNN.log  page-write records for extent NNNN
//
// Every record uses the framing of SNIPPETS.md snippet 2 — 1-byte status, 2-byte key
// length, 8-byte value length, key bytes, value bytes — extended with a trailing
// crc32c over the whole record. Page writes append a new record (append-only page
// discipline; replay is last-record-wins), so rewriting a page never seeks.
//
// Durability rules:
//   * WritePage buffers the framed record in memory; nothing touches the file yet.
//   * WriteSoftWp is the fsync barrier: the extent's buffered records are written and
//     fsync'd *before* the new pointer is appended + fsync'd to the superblock log —
//     the soft-updates rule "data before the pointer that exposes it", now enforced
//     against a real file system.
//   * WriteOwnership and the geometry header are superblock records, appended and
//     fsync'd immediately.
//   * Sync() flushes everything buffered; the destructor Sync()s (clean shutdown).
//
// Crash-tail semantics: DropUnsynced() discards the buffered records and restores the
// last synced image — the user-space equivalent of a power cut taking the page cache.
// Recovery (reopening the directory) replays each log and stops at the first torn or
// checksum-corrupt record, truncating the file back to the valid prefix, so a torn
// tail can never resurrect as data. Pages beyond a persisted soft write pointer are
// never trusted by the layers above, which is why losing the unsynced tail is always
// recoverable.

#ifndef SS_DISK_FILE_DISK_H_
#define SS_DISK_FILE_DISK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/disk/disk.h"

namespace ss {

// Which Disk implementation a node (or harness) should construct.
enum class DiskBackendKind : uint8_t {
  kInMemory = 0,  // deterministic reference image (disk.h)
  kFile = 1,      // durable file-backed log (this header)
};

// Backend selection, carried by NodeServerOptions (and anything else that makes
// disks). For kFile, each disk index i lives under `<file_root>/disk-<i>/`.
struct DiskBackendConfig {
  DiskBackendKind kind = DiskBackendKind::kInMemory;
  std::string file_root;
};

class FileDisk final : public Disk {
 public:
  // Opens (or creates) a file disk under `dir`. Reopening an existing directory
  // replays the logs — that is the recovery path — and fails with kInvalidArgument
  // if the stored geometry disagrees with the requested one.
  static Result<std::unique_ptr<FileDisk>> Open(const std::string& dir,
                                                DiskGeometry geometry = {});

  // Clean shutdown: best-effort Sync(), then closes every fd.
  ~FileDisk() override;

  const DiskGeometry& geometry() const override { return geometry_; }

  Status WritePage(ExtentId extent, uint32_t page, ByteSpan data) override;
  Result<Bytes> ReadPage(ExtentId extent, uint32_t page) const override;
  Result<Bytes> PeekPage(ExtentId extent, uint32_t page) const override;

  Status WriteSoftWp(ExtentId extent, uint32_t wp_pages) override;
  uint32_t ReadSoftWp(ExtentId extent) const override;

  Status WriteOwnership(ExtentId extent, ExtentOwner owner) override;
  ExtentOwner ReadOwnership(ExtentId extent) const override;

  Status ResetExtentRegion(ExtentId extent) override;

  Status Sync() override;
  void DropUnsynced() override;

  uint64_t LivePages() const override;

  // --- Introspection (tests, tooling) -----------------------------------------------
  const std::string& dir() const { return dir_; }
  std::string ExtentFilePath(ExtentId extent) const;
  std::string SuperblockPath() const;
  // fsync calls issued so far — lets tests assert the barrier actually fired.
  uint64_t fsync_count() const;
  // Serialized bytes currently buffered (unsynced tail) across all extents.
  uint64_t pending_bytes() const;

 private:
  FileDisk(std::string dir, DiskGeometry geometry);

  Status CheckRange(ExtentId extent, uint32_t page) const;

  // Replays both logs into the in-memory mirrors; truncates torn tails.
  Status Recover();
  Status ReplaySuperblock(bool& found_geometry);
  Status ReplayExtent(ExtentId extent);

  // Appends `payload` + fsync to the superblock log and mirrors nothing — callers
  // update the in-memory superblock mirrors themselves. Caller holds mu_.
  Status AppendSuperblockLocked(uint8_t tag, ExtentId extent, ByteSpan value);

  // Writes the extent's buffered records and fsyncs its log. Caller holds mu_.
  Status FlushExtentLocked(ExtentId extent);

  Result<int> ExtentFdLocked(ExtentId extent);

  std::string dir_;
  DiskGeometry geometry_;

  // Serializes file and mirror state. Disk calls arrive already serialized by the
  // scheduler/manager locks above; this guard makes the backend safe regardless.
  mutable Mutex mu_{MutexAttr{"disk.file", lockrank::kDisk}};

  int super_fd_ = -1;
  std::vector<int> extent_fds_;  // -1 until first use

  // pages_[extent * pages_per_extent + page]: the logical view (pending over synced).
  std::vector<Bytes> pages_;
  // The durable view: what replaying the logs would reconstruct right now.
  std::vector<Bytes> synced_pages_;
  // Serialized, framed records not yet written + fsync'd, per extent.
  std::vector<Bytes> pending_;

  std::vector<uint32_t> soft_wp_;
  std::vector<ExtentOwner> ownership_;

  uint64_t fsyncs_ = 0;
};

// Constructs the configured backend for disk index `disk_index`. kFile requires a
// non-empty `file_root` and creates `<file_root>/disk-<index>/` as needed.
Result<std::unique_ptr<Disk>> MakeDisk(const DiskBackendConfig& config,
                                       const DiskGeometry& geometry, int disk_index);

}  // namespace ss

#endif  // SS_DISK_FILE_DISK_H_
