// Per-disk health state machine and error-budget tracking.
//
// The paper's failure-injection testing (section 4.4) checks that ShardStore degrades
// gracefully under injected IO faults; a production storage host additionally needs to
// *act* on those faults: classify them (transient vs permanent), spend a bounded error
// budget on retries, and take a disk that keeps misbehaving out of the write path
// before it can hurt new data. This module is the bookkeeping half of that machinery:
//
//   healthy ──(transient budget exhausted)──► degraded ──(budget exhausted again,
//       │                                         │        or any permanent error)
//       └──────────(any permanent error)──────────┴──────► failed
//
// Transitions are *sticky*: successes decay the error window (a disk that recovers
// stops burning budget) but never promote the state back toward healthy — returning a
// disk to service is an operator/control-plane decision (NodeServer::ResetDiskHealth),
// exactly like clearing a SMART trip in a real fleet. The tracker is fed by
// ExtentManager's retry loop and read by NodeServer's routing policy.

#ifndef SS_DISK_DISK_HEALTH_H_
#define SS_DISK_DISK_HEALTH_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "src/obs/metrics.h"
#include "src/sync/sync.h"

namespace ss {

enum class DiskHealth : uint8_t {
  kHealthy = 0,
  // Read-only: the disk still serves Get (its data is intact) but new writes are
  // refused with kUnavailable so the blast radius stops growing; the control plane is
  // expected to evacuate it.
  kDegraded = 1,
  // No request-plane traffic at all.
  kFailed = 2,
};

// "healthy", "degraded", "failed".
std::string_view DiskHealthName(DiskHealth health);

struct DiskHealthOptions {
  // Transient errors (after decay) that trip healthy -> degraded.
  uint32_t degrade_after = 8;
  // Transient errors (after decay) that trip degraded -> failed.
  uint32_t fail_after = 24;
  // Consecutive successes that forgive one windowed transient error.
  uint32_t success_decay = 4;
};

class DiskHealthTracker {
 public:
  // Lifetime counters land in `metrics` (disk.health.*) when provided; otherwise the
  // tracker owns a private registry so direct construction keeps working.
  explicit DiskHealthTracker(DiskHealthOptions options = {}, MetricRegistry* metrics = nullptr);

  // A transient IO fault was observed (each failed retry attempt counts: a disk that
  // needs three attempts per read is burning budget three times as fast).
  void RecordTransientError();
  // A permanent fault was observed; the disk fails immediately.
  void RecordPermanentError();
  // An IO completed successfully; decays the error window.
  void RecordSuccess();

  DiskHealth health() const;
  // Windowed (decayed) error count the next transition decision will use.
  uint32_t windowed_errors() const;
  // Transient errors remaining before the next state transition (0 once failed).
  uint32_t budget_remaining() const;
  // Lifetime counters, for diagnostics and benches.
  uint64_t transient_total() const;
  uint64_t permanent_total() const;

  // Operator action: return to healthy with a fresh error budget.
  void Reset();

 private:
  void RecordTransientLocked();

  mutable Mutex mu_{MutexAttr{"disk.health", lockrank::kHealth}};
  DiskHealthOptions options_;
  DiskHealth health_ = DiskHealth::kHealthy;
  uint32_t windowed_errors_ = 0;
  uint32_t success_streak_ = 0;
  std::unique_ptr<MetricRegistry> owned_metrics_;
  Counter* transient_total_;
  Counter* permanent_total_;
  Gauge* state_;  // DiskHealth as an integer, updated on every transition
};

}  // namespace ss

#endif  // SS_DISK_DISK_HEALTH_H_
