#include "src/disk/file_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/common/crc32c.h"

namespace ss {

namespace {

// Record framing (SNIPPETS.md snippet 2, plus a trailing crc32c):
//   1 byte  record status (2 = valid)
//   2 bytes key length   (LE)
//   8 bytes value length (LE)
//   key bytes, value bytes
//   4 bytes crc32c over everything above (LE)
constexpr size_t kHeaderSize = 11;
constexpr uint8_t kRecValid = 2;
constexpr size_t kCrcSize = 4;

// Superblock record tags (first key byte; the remaining 4 key bytes are the extent).
constexpr uint8_t kTagGeometry = 'g';
constexpr uint8_t kTagSoftWp = 'w';
constexpr uint8_t kTagOwnership = 'o';

// Extent-log keys are the 4-byte page index; superblock keys are tag + extent.
constexpr size_t kExtentKeySize = 4;
constexpr size_t kSuperKeySize = 5;

void PutU16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

// Appends one framed record (header + key + value + crc) to `out`.
void AppendRecord(Bytes& out, ByteSpan key, ByteSpan value) {
  const size_t start = out.size();
  out.push_back(kRecValid);
  PutU16(out, static_cast<uint16_t>(key.size()));
  PutU64(out, value.size());
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), value.begin(), value.end());
  const uint32_t crc = Crc32c(out.data() + start, out.size() - start);
  PutU32(out, crc);
}

// One parsed record; `key`/`value` point into the replay buffer.
struct ParsedRecord {
  ByteSpan key;
  ByteSpan value;
};

// Parses the record at `pos`. Returns false — without advancing — when the bytes at
// `pos` are not one complete, checksum-valid record (torn tail or corruption); replay
// stops there and truncates.
bool ParseRecord(const Bytes& buf, size_t pos, size_t max_value, ParsedRecord& rec,
                 size_t& next) {
  if (buf.size() - pos < kHeaderSize) {
    return false;
  }
  const uint8_t* p = buf.data() + pos;
  if (p[0] != kRecValid) {
    return false;
  }
  const uint16_t key_len = GetU16(p + 1);
  const uint64_t val_len = GetU64(p + 3);
  if (key_len > kSuperKeySize || val_len > max_value) {
    return false;
  }
  const size_t body = kHeaderSize + key_len + static_cast<size_t>(val_len);
  if (buf.size() - pos < body + kCrcSize) {
    return false;
  }
  const uint32_t want = GetU32(p + body);
  if (Crc32c(p, body) != want) {
    return false;
  }
  rec.key = ByteSpan(p + kHeaderSize, key_len);
  rec.value = ByteSpan(p + kHeaderSize + key_len, static_cast<size_t>(val_len));
  next = pos + body + kCrcSize;
  return true;
}

Status WriteAll(int fd, ByteSpan data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::DiskFailed(std::string("filedisk: write: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Bytes> ReadWholeFile(int fd) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    return Status::DiskFailed(std::string("filedisk: fstat: ") + std::strerror(errno));
  }
  Bytes buf(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::pread(fd, buf.data() + off, buf.size() - off,
                              static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::DiskFailed(std::string("filedisk: pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      buf.resize(off);  // short read: the tail vanished; replay treats it as torn
      break;
    }
    off += static_cast<size_t>(n);
  }
  return buf;
}

}  // namespace

Result<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& dir,
                                                 DiskGeometry geometry) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::DiskFailed("filedisk: create_directories(" + dir +
                              "): " + ec.message());
  }
  std::unique_ptr<FileDisk> disk(new FileDisk(dir, geometry));
  disk->super_fd_ = ::open(disk->SuperblockPath().c_str(),
                           O_CREAT | O_RDWR | O_APPEND | O_CLOEXEC, 0644);
  if (disk->super_fd_ < 0) {
    return Status::DiskFailed(std::string("filedisk: open superblock: ") +
                              std::strerror(errno));
  }
  SS_RETURN_IF_ERROR(disk->Recover());
  return disk;
}

FileDisk::FileDisk(std::string dir, DiskGeometry geometry)
    : dir_(std::move(dir)), geometry_(geometry) {
  const size_t total = size_t{geometry_.extent_count} * geometry_.pages_per_extent;
  pages_.resize(total);
  synced_pages_.resize(total);
  pending_.resize(geometry_.extent_count);
  extent_fds_.assign(geometry_.extent_count, -1);
  soft_wp_.assign(geometry_.extent_count, 0);
  ownership_.assign(geometry_.extent_count, ExtentOwner::kFree);
}

FileDisk::~FileDisk() {
  (void)Sync();  // clean shutdown; a simulated crash calls DropUnsynced() first
  for (int fd : extent_fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  if (super_fd_ >= 0) {
    ::close(super_fd_);
  }
}

std::string FileDisk::ExtentFilePath(ExtentId extent) const {
  char name[32];
  std::snprintf(name, sizeof(name), "extent-%04u.log", extent);
  return dir_ + "/" + name;
}

std::string FileDisk::SuperblockPath() const { return dir_ + "/superblock.log"; }

Status FileDisk::CheckRange(ExtentId extent, uint32_t page) const {
  if (extent >= geometry_.extent_count || page >= geometry_.pages_per_extent) {
    return Status::InvalidArgument("disk: extent/page out of range");
  }
  return Status::Ok();
}

Status FileDisk::Recover() {
  LockGuard lock(mu_);
  bool found_geometry = false;
  SS_RETURN_IF_ERROR(ReplaySuperblock(found_geometry));
  if (!found_geometry) {
    // Fresh directory: persist the geometry header so a later reopen can validate.
    Bytes value;
    PutU32(value, geometry_.extent_count);
    PutU32(value, geometry_.pages_per_extent);
    PutU32(value, geometry_.page_size);
    SS_RETURN_IF_ERROR(AppendSuperblockLocked(kTagGeometry, 0, value));
  }
  for (ExtentId e = 0; e < geometry_.extent_count; ++e) {
    SS_RETURN_IF_ERROR(ReplayExtent(e));
  }
  pages_ = synced_pages_;
  return Status::Ok();
}

Status FileDisk::ReplaySuperblock(bool& found_geometry) {
  SS_ASSIGN_OR_RETURN(Bytes buf, ReadWholeFile(super_fd_));
  size_t pos = 0;
  while (pos < buf.size()) {
    ParsedRecord rec;
    size_t next = 0;
    if (!ParseRecord(buf, pos, /*max_value=*/16, rec, next)) {
      break;  // torn tail: valid prefix ends here
    }
    if (rec.key.size() == kSuperKeySize) {
      const uint8_t tag = rec.key[0];
      const ExtentId extent = GetU32(rec.key.data() + 1);
      if (tag == kTagGeometry && rec.value.size() == 12) {
        found_geometry = true;
        const DiskGeometry stored{GetU32(rec.value.data()), GetU32(rec.value.data() + 4),
                                  GetU32(rec.value.data() + 8)};
        if (stored.extent_count != geometry_.extent_count ||
            stored.pages_per_extent != geometry_.pages_per_extent ||
            stored.page_size != geometry_.page_size) {
          return Status::InvalidArgument("filedisk: geometry mismatch on reopen");
        }
      } else if (tag == kTagSoftWp && rec.value.size() == 4 &&
                 extent < soft_wp_.size()) {
        soft_wp_[extent] = GetU32(rec.value.data());
      } else if (tag == kTagOwnership && rec.value.size() == 1 &&
                 extent < ownership_.size()) {
        ownership_[extent] = static_cast<ExtentOwner>(rec.value[0]);
      }
    }
    pos = next;
  }
  if (pos < buf.size()) {
    if (::ftruncate(super_fd_, static_cast<off_t>(pos)) != 0) {
      return Status::DiskFailed(std::string("filedisk: ftruncate superblock: ") +
                                std::strerror(errno));
    }
  }
  return Status::Ok();
}

Status FileDisk::ReplayExtent(ExtentId extent) {
  struct stat st{};
  if (::stat(ExtentFilePath(extent).c_str(), &st) != 0) {
    return Status::Ok();  // never written
  }
  SS_ASSIGN_OR_RETURN(int fd, ExtentFdLocked(extent));
  SS_ASSIGN_OR_RETURN(Bytes buf, ReadWholeFile(fd));
  size_t pos = 0;
  while (pos < buf.size()) {
    ParsedRecord rec;
    size_t next = 0;
    if (!ParseRecord(buf, pos, /*max_value=*/geometry_.page_size, rec, next)) {
      break;  // torn tail
    }
    if (rec.key.size() == kExtentKeySize) {
      const uint32_t page = GetU32(rec.key.data());
      if (page < geometry_.pages_per_extent) {
        Bytes& slot =
            synced_pages_[uint64_t{extent} * geometry_.pages_per_extent + page];
        slot.assign(rec.value.begin(), rec.value.end());
        slot.resize(geometry_.page_size, 0);
      }
    }
    pos = next;
  }
  if (pos < buf.size()) {
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0) {
      return Status::DiskFailed(std::string("filedisk: ftruncate extent: ") +
                                std::strerror(errno));
    }
  }
  return Status::Ok();
}

Result<int> FileDisk::ExtentFdLocked(ExtentId extent) {
  int& fd = extent_fds_[extent];
  if (fd < 0) {
    fd = ::open(ExtentFilePath(extent).c_str(),
                O_CREAT | O_RDWR | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::DiskFailed(std::string("filedisk: open extent: ") +
                                std::strerror(errno));
    }
  }
  return fd;
}

Status FileDisk::AppendSuperblockLocked(uint8_t tag, ExtentId extent, ByteSpan value) {
  Bytes key;
  key.push_back(tag);
  PutU32(key, extent);
  Bytes record;
  AppendRecord(record, key, value);
  SS_RETURN_IF_ERROR(WriteAll(super_fd_, record));
  if (::fsync(super_fd_) != 0) {
    return Status::DiskFailed(std::string("filedisk: fsync superblock: ") +
                              std::strerror(errno));
  }
  ++fsyncs_;
  return Status::Ok();
}

Status FileDisk::FlushExtentLocked(ExtentId extent) {
  Bytes& buf = pending_[extent];
  if (buf.empty()) {
    return Status::Ok();
  }
  SS_ASSIGN_OR_RETURN(int fd, ExtentFdLocked(extent));
  SS_RETURN_IF_ERROR(WriteAll(fd, buf));
  if (::fsync(fd) != 0) {
    return Status::DiskFailed(std::string("filedisk: fsync extent: ") +
                              std::strerror(errno));
  }
  ++fsyncs_;
  buf.clear();
  // The extent's logical pages are now the durable ones.
  const uint64_t base = uint64_t{extent} * geometry_.pages_per_extent;
  for (uint32_t p = 0; p < geometry_.pages_per_extent; ++p) {
    synced_pages_[base + p] = pages_[base + p];
  }
  return Status::Ok();
}

Status FileDisk::WritePage(ExtentId extent, uint32_t page, ByteSpan data) {
  SS_RETURN_IF_ERROR(CheckRange(extent, page));
  if (data.size() > geometry_.page_size) {
    return Status::InvalidArgument("disk: write larger than a page");
  }
  LockGuard lock(mu_);
  Bytes& slot = pages_[uint64_t{extent} * geometry_.pages_per_extent + page];
  slot.assign(data.begin(), data.end());
  slot.resize(geometry_.page_size, 0);
  Bytes key;
  PutU32(key, page);
  AppendRecord(pending_[extent], key, slot);
  return Status::Ok();
}

Result<Bytes> FileDisk::ReadPage(ExtentId extent, uint32_t page) const {
  SS_RETURN_IF_ERROR(CheckRange(extent, page));
  LockGuard lock(mu_);
  const Bytes& slot = pages_[uint64_t{extent} * geometry_.pages_per_extent + page];
  if (slot.empty()) {
    return Bytes(geometry_.page_size, 0);
  }
  return slot;
}

Result<Bytes> FileDisk::PeekPage(ExtentId extent, uint32_t page) const {
  return ReadPage(extent, page);
}

Status FileDisk::WriteSoftWp(ExtentId extent, uint32_t wp_pages) {
  SS_RETURN_IF_ERROR(CheckRange(extent, 0));
  if (wp_pages > geometry_.pages_per_extent) {
    return Status::InvalidArgument("disk: soft wp out of range");
  }
  LockGuard lock(mu_);
  // Barrier: the data a pointer advance exposes must be durable before the pointer.
  SS_RETURN_IF_ERROR(FlushExtentLocked(extent));
  Bytes value;
  PutU32(value, wp_pages);
  SS_RETURN_IF_ERROR(AppendSuperblockLocked(kTagSoftWp, extent, value));
  soft_wp_[extent] = wp_pages;
  return Status::Ok();
}

uint32_t FileDisk::ReadSoftWp(ExtentId extent) const {
  LockGuard lock(mu_);
  return extent < soft_wp_.size() ? soft_wp_[extent] : 0;
}

Status FileDisk::WriteOwnership(ExtentId extent, ExtentOwner owner) {
  SS_RETURN_IF_ERROR(CheckRange(extent, 0));
  LockGuard lock(mu_);
  Bytes value;
  value.push_back(static_cast<uint8_t>(owner));
  SS_RETURN_IF_ERROR(AppendSuperblockLocked(kTagOwnership, extent, value));
  ownership_[extent] = owner;
  return Status::Ok();
}

ExtentOwner FileDisk::ReadOwnership(ExtentId extent) const {
  LockGuard lock(mu_);
  return extent < ownership_.size() ? ownership_[extent] : ExtentOwner::kFree;
}

Status FileDisk::ResetExtentRegion(ExtentId extent) {
  SS_RETURN_IF_ERROR(CheckRange(extent, 0));
  // Page contents (and their log records) are retained, exactly like InMemoryDisk:
  // only the superblock soft-pointer write makes the old data unreachable.
  return Status::Ok();
}

Status FileDisk::Sync() {
  LockGuard lock(mu_);
  for (ExtentId e = 0; e < geometry_.extent_count; ++e) {
    SS_RETURN_IF_ERROR(FlushExtentLocked(e));
  }
  return Status::Ok();
}

void FileDisk::DropUnsynced() {
  LockGuard lock(mu_);
  for (Bytes& buf : pending_) {
    buf.clear();
  }
  pages_ = synced_pages_;
}

uint64_t FileDisk::LivePages() const {
  LockGuard lock(mu_);
  uint64_t total = 0;
  for (uint32_t wp : soft_wp_) {
    total += wp;
  }
  return total;
}

uint64_t FileDisk::fsync_count() const {
  LockGuard lock(mu_);
  return fsyncs_;
}

uint64_t FileDisk::pending_bytes() const {
  LockGuard lock(mu_);
  uint64_t total = 0;
  for (const Bytes& buf : pending_) {
    total += buf.size();
  }
  return total;
}

Result<std::unique_ptr<Disk>> MakeDisk(const DiskBackendConfig& config,
                                       const DiskGeometry& geometry, int disk_index) {
  switch (config.kind) {
    case DiskBackendKind::kInMemory:
      return std::unique_ptr<Disk>(std::make_unique<InMemoryDisk>(geometry));
    case DiskBackendKind::kFile: {
      if (config.file_root.empty()) {
        return Status::InvalidArgument("filedisk: DiskBackendConfig.file_root empty");
      }
      const std::string dir =
          config.file_root + "/disk-" + std::to_string(disk_index);
      SS_ASSIGN_OR_RETURN(std::unique_ptr<FileDisk> disk,
                          FileDisk::Open(dir, geometry));
      return std::unique_ptr<Disk>(std::move(disk));
    }
  }
  return Status::InvalidArgument("filedisk: unknown backend kind");
}

}  // namespace ss
