// Read-through page cache.
//
// Sits between the chunk store and the extent manager. Pages below an extent's write
// pointer are immutable, so the only invalidation event is an extent reset: the reset
// path must drain the extent's cached pages before its space is reused (seeded bug #2
// is precisely "cache was not correctly drained after resetting an extent" — stale
// cached pages then serve deleted data for whatever is written there next).

#ifndef SS_CACHE_BUFFER_CACHE_H_
#define SS_CACHE_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/superblock/extent_manager.h"
#include "src/sync/sync.h"

namespace ss {

class BufferCache {
 public:
  // Metrics land in `metrics` when provided; otherwise the cache owns a private
  // registry so direct construction keeps working in tests.
  BufferCache(ExtentManager* extents, size_t capacity_pages, MetricRegistry* metrics = nullptr);

  // Reads `count` pages starting at `first_page`, caching each page. Ranges past the
  // write pointer or injected IO failures propagate the underlying error; failed pages
  // are not cached. `scope`, when active, receives one child span per call: "cache.hit"
  // when every page was served from cache, "cache.miss" otherwise.
  Result<Bytes> ReadPages(ExtentId extent, uint32_t first_page, uint32_t count,
                          const SpanScope& scope = {});

  // Drops every cached page of `extent`. Must be called when the extent is reset.
  void DrainExtent(ExtentId extent);

  void Clear();
  size_t CachedPages() const;
  // The cache.* counters live in the registry passed at construction (or the private
  // one): read them via MetricRegistry::Snapshot(). `cache.invalidated_pages` counts
  // pages actually invalidated (drains that match nothing contribute 0; Clear()
  // counts every page it drops).
  const MetricRegistry& metrics() const { return *metrics_; }

 private:
  using Key = uint64_t;  // extent << 32 | page
  static Key MakeKey(ExtentId extent, uint32_t page) {
    return (uint64_t{extent} << 32) | page;
  }

  void TouchLocked(Key key);
  void InsertLocked(Key key, Bytes page);

  ExtentManager* extents_;
  size_t capacity_pages_;
  std::unique_ptr<MetricRegistry> owned_metrics_;  // set only when no registry was passed in
  MetricRegistry* metrics_ = nullptr;              // the registry in use (owned or caller's)
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* invalidated_pages_;
  mutable Mutex mu_{MutexAttr{"cache.buffer", lockrank::kCache}};
  std::map<Key, std::pair<Bytes, std::list<Key>::iterator>> pages_;
  std::list<Key> lru_;  // front = most recently used
};

}  // namespace ss

#endif  // SS_CACHE_BUFFER_CACHE_H_
