#include "src/cache/buffer_cache.h"

#include "src/common/cover.h"

namespace ss {

BufferCache::BufferCache(ExtentManager* extents, size_t capacity_pages, MetricRegistry* metrics)
    : extents_(extents), capacity_pages_(capacity_pages) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  hits_ = &metrics->counter("cache.hits");
  misses_ = &metrics->counter("cache.misses");
  evictions_ = &metrics->counter("cache.evictions");
  invalidated_pages_ = &metrics->counter("cache.invalidated_pages");
}

void BufferCache::TouchLocked(Key key) {
  auto it = pages_.find(key);
  lru_.erase(it->second.second);
  lru_.push_front(key);
  it->second.second = lru_.begin();
}

void BufferCache::InsertLocked(Key key, Bytes page) {
  while (pages_.size() >= capacity_pages_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    pages_.erase(victim);
    evictions_->Increment();
  }
  lru_.push_front(key);
  pages_[key] = {std::move(page), lru_.begin()};
}

Result<Bytes> BufferCache::ReadPages(ExtentId extent, uint32_t first_page, uint32_t count,
                                     const SpanScope& scope) {
  const uint32_t page_size = extents_->geometry().page_size;
  Bytes out;
  out.reserve(uint64_t{count} * page_size);
  bool missed = false;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t page = first_page + i;
    const Key key = MakeKey(extent, page);
    {
      LockGuard lock(mu_);
      auto it = pages_.find(key);
      if (it != pages_.end()) {
        hits_->Increment();
        TouchLocked(key);
        out.insert(out.end(), it->second.first.begin(), it->second.first.end());
        continue;
      }
      misses_->Increment();
    }
    missed = true;
    SS_COVER("buffer_cache.miss");
    auto data_or = extents_->Read(extent, page, 1, scope);
    if (!data_or.ok()) {
      if (scope.active()) {
        Span span = scope.Child("cache.miss");
        span.set_status(data_or.status().code());
      }
      return data_or.status();
    }
    Bytes data = std::move(data_or).value();
    {
      LockGuard lock(mu_);
      if (pages_.find(key) == pages_.end()) {
        InsertLocked(key, data);
      }
    }
    out.insert(out.end(), data.begin(), data.end());
  }
  if (scope.active()) {
    Span span = scope.Child(missed ? "cache.miss" : "cache.hit");
  }
  return out;
}

void BufferCache::DrainExtent(ExtentId extent) {
  uint64_t dropped = 0;
  {
    LockGuard lock(mu_);
    auto it = pages_.lower_bound(MakeKey(extent, 0));
    while (it != pages_.end() && (it->first >> 32) == extent) {
      lru_.erase(it->second.second);
      it = pages_.erase(it);
      ++dropped;
    }
  }
  // Count pages actually invalidated: a drain that matched nothing is not an
  // invalidation event, and conformance oracles diff this counter.
  if (dropped > 0) {
    invalidated_pages_->Increment(dropped);
  }
}

void BufferCache::Clear() {
  uint64_t dropped = 0;
  {
    LockGuard lock(mu_);
    dropped = pages_.size();
    pages_.clear();
    lru_.clear();
  }
  if (dropped > 0) {
    invalidated_pages_->Increment(dropped);
  }
}

size_t BufferCache::CachedPages() const {
  LockGuard lock(mu_);
  return pages_.size();
}

}  // namespace ss
