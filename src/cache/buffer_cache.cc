#include "src/cache/buffer_cache.h"

#include "src/common/cover.h"

namespace ss {

BufferCache::BufferCache(ExtentManager* extents, size_t capacity_pages)
    : extents_(extents), capacity_pages_(capacity_pages) {}

void BufferCache::TouchLocked(Key key) {
  auto it = pages_.find(key);
  lru_.erase(it->second.second);
  lru_.push_front(key);
  it->second.second = lru_.begin();
}

void BufferCache::InsertLocked(Key key, Bytes page) {
  while (pages_.size() >= capacity_pages_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    pages_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  pages_[key] = {std::move(page), lru_.begin()};
}

Result<Bytes> BufferCache::ReadPages(ExtentId extent, uint32_t first_page, uint32_t count) {
  const uint32_t page_size = extents_->geometry().page_size;
  Bytes out;
  out.reserve(uint64_t{count} * page_size);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t page = first_page + i;
    const Key key = MakeKey(extent, page);
    {
      LockGuard lock(mu_);
      auto it = pages_.find(key);
      if (it != pages_.end()) {
        ++stats_.hits;
        TouchLocked(key);
        out.insert(out.end(), it->second.first.begin(), it->second.first.end());
        continue;
      }
      ++stats_.misses;
    }
    SS_COVER("buffer_cache.miss");
    SS_ASSIGN_OR_RETURN(Bytes data, extents_->Read(extent, page, 1));
    {
      LockGuard lock(mu_);
      if (pages_.find(key) == pages_.end()) {
        InsertLocked(key, data);
      }
    }
    out.insert(out.end(), data.begin(), data.end());
  }
  return out;
}

void BufferCache::DrainExtent(ExtentId extent) {
  LockGuard lock(mu_);
  ++stats_.invalidations;
  auto it = pages_.lower_bound(MakeKey(extent, 0));
  while (it != pages_.end() && (it->first >> 32) == extent) {
    lru_.erase(it->second.second);
    it = pages_.erase(it);
  }
}

void BufferCache::Clear() {
  LockGuard lock(mu_);
  pages_.clear();
  lru_.clear();
}

BufferCacheStats BufferCache::stats() const {
  LockGuard lock(mu_);
  return stats_;
}

size_t BufferCache::CachedPages() const {
  LockGuard lock(mu_);
  return pages_.size();
}

}  // namespace ss
