#include "src/sync/sync.h"

namespace ss {
namespace {
// Plain global, not thread_local: exactly one model-checking run may be active in a
// process at a time, and it owns all threads it spawns. Native threads created outside
// the checker must not touch checker-instrumented objects while a run is active.
std::atomic<SchedHooks*> g_hooks{nullptr};
}  // namespace

SchedHooks* ActiveSchedHooks() { return g_hooks.load(std::memory_order_acquire); }

void SetActiveSchedHooks(SchedHooks* hooks) { g_hooks.store(hooks, std::memory_order_release); }

void Mutex::Lock() {
  // The witness observes the acquisition *attempt*: if the lock participates in a
  // cycle the report exists even when this particular interleaving deadlocks.
  LockWitness::Global().OnAcquire(attr_.name, attr_.rank);
  if (!attr_.leaf) {
    if (SchedHooks* hooks = ActiveSchedHooks()) {
      hooks->MutexLock(id());
      return;
    }
  }
  native_.lock();
}

void Mutex::Unlock() {
  LockWitness::Global().OnRelease(attr_.name);
  if (!attr_.leaf) {
    if (SchedHooks* hooks = ActiveSchedHooks()) {
      hooks->MutexUnlock(id());
      return;
    }
  }
  native_.unlock();
}

void CondVar::Wait(Mutex& mu) {
  // A wait releases the mutex and reacquires it on wake; the witness must see both
  // sides or the held-lock stack would stay stale across the sleep.
  LockWitness::Global().OnRelease(mu.attr_.name);
  if (!attr_.leaf && !mu.attr_.leaf) {
    if (SchedHooks* hooks = ActiveSchedHooks()) {
      hooks->CondWait(id(), mu.id());
      LockWitness::Global().OnAcquire(mu.attr_.name, mu.attr_.rank);
      return;
    }
  }
  native_.wait(mu.native_);
  LockWitness::Global().OnAcquire(mu.attr_.name, mu.attr_.rank);
}

void CondVar::NotifyOne() {
  if (!attr_.leaf) {
    if (SchedHooks* hooks = ActiveSchedHooks()) {
      hooks->CondNotifyOne(id());
      return;
    }
  }
  native_.notify_one();
}

void CondVar::NotifyAll() {
  if (!attr_.leaf) {
    if (SchedHooks* hooks = ActiveSchedHooks()) {
      hooks->CondNotifyAll(id());
      return;
    }
  }
  native_.notify_all();
}

Thread Thread::Spawn(std::function<void()> body) {
  Thread t;
  t.joined_ = false;
  if (SchedHooks* hooks = ActiveSchedHooks()) {
    t.managed_ = true;
    t.token_ = hooks->Spawn(std::move(body));
  } else {
    t.native_ = std::make_unique<std::thread>(std::move(body));
  }
  return t;
}

Thread Thread::SpawnNative(std::function<void()> body) {
  Thread t;
  t.joined_ = false;
  t.native_ = std::make_unique<std::thread>(std::move(body));
  return t;
}

void Thread::Join() {
  if (joined_) {
    return;
  }
  joined_ = true;
  if (managed_) {
    // The run that spawned this thread must still be active.
    ActiveSchedHooks()->Join(token_);
    return;
  }
  if (native_ != nullptr && native_->joinable()) {  // null after a move-from
    native_->join();
  }
}

Thread::~Thread() { Join(); }

void Semaphore::Acquire(uint32_t n) {
  LockGuard lock(mu_);
  while (available_ < n) {
    cv_.Wait(mu_);
  }
  available_ -= n;
}

void Semaphore::Release(uint32_t n) {
  LockGuard lock(mu_);
  available_ += n;
  cv_.NotifyAll();
}

bool Semaphore::TryAcquire(uint32_t n) {
  LockGuard lock(mu_);
  if (available_ < n) {
    return false;
  }
  available_ -= n;
  return true;
}

void YieldThread() {
  if (SchedHooks* hooks = ActiveSchedHooks()) {
    hooks->Yield();
    return;
  }
  std::this_thread::yield();
}

}  // namespace ss
