// Scheduler-aware synchronization primitives.
//
// Contract (enforced by scripts/check_sync_primitives.sh and the CI sync-lint job):
// no code under src/ outside src/sync/ may use the raw standard-library primitives
// (mutexes, lock guards, threads) directly — everything goes through the wrappers in
// this header. The rule exists because three analyses each need to see *every*
// synchronization event, and a single raw mutex is a blind spot for all of them:
//   * the model checker (ss::mc installs SchedHooks): every primitive becomes a
//     scheduling point routed through the checker, which serializes threads and
//     systematically explores interleavings — the same trick Loom and Shuttle use in
//     Rust (paper section 6),
//   * the lock-order witness (src/sync/witness.h): named locks feed a global
//     acquisition-order graph whose cycles are latent deadlocks,
//   * the TSan CI job: one primitive layer keeps suppressions and annotations in one
//     place.
// Locks that must *not* perturb model-checked interleavings (observability,
// checker-internal batons) are not exempt — they use leaf mode (MutexAttr::leaf),
// which always takes the native mutex but stays visible to the witness.

#ifndef SS_SYNC_SYNC_H_
#define SS_SYNC_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/sync/witness.h"

namespace ss {

// Interface the model checker implements. Ids are the addresses of the primitives —
// stable for the lifetime of an execution, reused across executions only after free.
class SchedHooks {
 public:
  virtual ~SchedHooks() = default;

  // Blocks until the mutex is granted to the calling thread.
  virtual void MutexLock(uintptr_t mutex_id) = 0;
  virtual void MutexUnlock(uintptr_t mutex_id) = 0;
  // Atomically: release `mutex_id`, sleep until notified on `cv_id`, reacquire.
  virtual void CondWait(uintptr_t cv_id, uintptr_t mutex_id) = 0;
  virtual void CondNotifyOne(uintptr_t cv_id) = 0;
  virtual void CondNotifyAll(uintptr_t cv_id) = 0;
  // Scheduling point before a shared-memory access (Atomic<T> load/store/rmw).
  virtual void SharedAccess(uintptr_t cell_id) = 0;
  virtual void Yield() = 0;
  // Spawns a checker-managed thread running `body`; returns a join token.
  virtual uint64_t Spawn(std::function<void()> body) = 0;
  virtual void Join(uint64_t token) = 0;
};

// The active hooks, or nullptr when running natively. Set only by ss::mc.
SchedHooks* ActiveSchedHooks();
void SetActiveSchedHooks(SchedHooks* hooks);

// Mutual exclusion. Non-recursive. The optional MutexAttr names the lock's class for
// the lock-order witness, assigns its layer rank, and selects leaf mode (never a
// model-checker scheduling point — for locks whose acquisition is observability, not
// behaviour).
class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const MutexAttr& attr) : attr_(attr) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock();
  void Unlock();

  const MutexAttr& attr() const { return attr_; }

 private:
  friend class CondVar;
  uintptr_t id() const { return reinterpret_cast<uintptr_t>(this); }
  MutexAttr attr_{};
  std::mutex native_;
};

// RAII lock holder.
class LockGuard {
 public:
  explicit LockGuard(Mutex& mu) : mu_(mu) { mu_.Lock(); }
  ~LockGuard() { mu_.Unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

// Condition-variable attributes: leaf mode mirrors MutexAttr::leaf — notifications
// never become scheduling points. A CondVar used with a leaf Mutex must itself be
// leaf (the checker cannot wake a native waiter).
struct CondVarAttr {
  bool leaf = false;
};

// Condition variable. As with the standard library's, always wait in a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  explicit CondVar(const CondVarAttr& attr) : attr_(attr) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Caller must hold `mu`.
  void Wait(Mutex& mu);
  void NotifyOne();
  void NotifyAll();

 private:
  uintptr_t id() const { return reinterpret_cast<uintptr_t>(this); }
  CondVarAttr attr_{};
  std::condition_variable_any native_;
};

// Shared cell whose accesses are visible to the model checker. Use for lock-free flags
// and counters shared between threads.
template <typename T>
class Atomic {
 public:
  Atomic() : value_(T{}) {}
  explicit Atomic(T v) : value_(v) {}
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T Load() const {
    SchedPoint();
    return value_.load(std::memory_order_seq_cst);
  }
  void Store(T v) {
    SchedPoint();
    value_.store(v, std::memory_order_seq_cst);
  }
  T FetchAdd(T delta) {
    SchedPoint();
    return value_.fetch_add(delta, std::memory_order_seq_cst);
  }
  // Returns true and installs `desired` iff the current value equals `expected`.
  bool CompareExchange(T expected, T desired) {
    SchedPoint();
    return value_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
  }

 private:
  void SchedPoint() const {
    if (SchedHooks* hooks = ActiveSchedHooks()) {
      hooks->SharedAccess(reinterpret_cast<uintptr_t>(this));
    }
  }
  mutable std::atomic<T> value_;
};

// A joinable thread. Under the model checker the body runs on a checker-managed thread.
class Thread {
 public:
  Thread() = default;
  static Thread Spawn(std::function<void()> body);
  // Always spawns a native OS thread, even while SchedHooks are installed. Only for
  // machinery that *implements* the checker (the managed-task carrier threads in
  // ss::mc) — everything else uses Spawn.
  static Thread SpawnNative(std::function<void()> body);

  Thread(Thread&& other) noexcept { *this = std::move(other); }
  Thread& operator=(Thread&& other) noexcept {
    native_ = std::move(other.native_);
    token_ = other.token_;
    managed_ = other.managed_;
    joined_ = other.joined_;
    other.joined_ = true;  // the moved-from handle owns nothing to join
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void Join();
  ~Thread();

 private:
  std::unique_ptr<std::thread> native_;
  uint64_t token_ = 0;
  bool managed_ = false;  // true when owned by the model checker
  bool joined_ = true;
};

// Counting semaphore built on Mutex/CondVar so it inherits model-checker awareness.
// Acquire(n) is atomic in n: it waits until n permits are available and takes them all,
// which is the idiom that avoids the classic split-acquire deadlock (seeded bug #12
// exercises the broken variant).
class Semaphore {
 public:
  explicit Semaphore(uint32_t permits) : available_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void Acquire(uint32_t n = 1);
  void Release(uint32_t n = 1);
  bool TryAcquire(uint32_t n = 1);

 private:
  Mutex mu_;
  CondVar cv_;
  uint32_t available_;
};

// Give other threads a chance to run (scheduling point under the checker, no-op /
// yield natively).
void YieldThread();

}  // namespace ss

#endif  // SS_SYNC_SYNC_H_
