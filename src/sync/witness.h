// Lock-order witness: an always-on dynamic analysis over ss::Mutex acquisitions,
// in the style of FreeBSD's witness(4).
//
// Every named ss::Mutex belongs to a *lock class* (its name). The witness keeps a
// per-thread stack of currently held classes and a global acquisition-order graph:
// acquiring class B while holding class A records the edge A -> B. Any cycle in that
// graph — even on runs that never actually deadlock — is a latent lock-order
// inversion, and the witness reports it eagerly with the held-lock stacks of *both*
// directions of the inversion, so a single lucky interleaving is enough to prove the
// deadlock exists.
//
// Classes may also carry a *rank*: locks must be acquired in non-decreasing rank
// order, and acquiring a strictly lower-ranked class while a higher-ranked one is
// held is reported immediately (no second thread needed). Ranks are the statically
// declared layer order of the storage stack (see lockrank below); the order graph is
// the dynamic check that the declaration matches reality.
//
// The witness itself synchronizes with raw standard-library primitives (this header
// is the one place allowed to) and is reentrancy-guarded, so violation handlers may
// take ss locks without recursing. Under an active model-checker run the witness
// still observes every acquisition — the mc harness asserts zero violations at the
// end of each explored execution, turning lock-order cycles into model-checking
// counterexamples — but handler callbacks are suppressed there to keep scheduling
// deterministic (the retained reports carry everything a handler would see).

#ifndef SS_SYNC_WITNESS_H_
#define SS_SYNC_WITNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ss {

// Construction-time attributes of an ss::Mutex.
struct MutexAttr {
  // Lock-class name (static storage). Null/empty = anonymous: the lock is invisible
  // to the witness (fine for strictly-local or instance-ephemeral locks).
  const char* name = nullptr;
  // Layer rank; 0 = unranked (participates in the order graph only). See lockrank.
  uint32_t rank = 0;
  // Leaf mode: the lock is never a model-checker scheduling point — it always takes
  // its native mutex, even while SchedHooks are installed. For observability and
  // scheduler-internal locks whose acquisition must not perturb explored
  // interleavings. Leaf locks are still witness-tracked.
  bool leaf = false;
};

// The storage stack's lock ranks, outermost (acquired first) to innermost. Gaps are
// deliberate so future layers can slot in. A thread may acquire a lock of rank >= the
// highest rank it holds; acquiring a lower rank is an inversion.
namespace lockrank {
// Cluster tier (src/cluster/): outermost of the whole stack — the coordinator fans
// quorum RPCs into NodeServers, so every cluster lock must rank below (numerically
// less than) the rpc.* locks it may hold across a replica call.
inline constexpr uint32_t kClusterCoord = 2;    // cluster.coord   (membership / hints / fd)
inline constexpr uint32_t kClusterRing = 4;     // cluster.ring    (consistent-hash ring)
inline constexpr uint32_t kClusterNet = 6;      // cluster.net     (links / crash / clock)
inline constexpr uint32_t kClusterReplica = 8;  // cluster.replica (per-node versioned RMW)
inline constexpr uint32_t kControl = 10;     // rpc.control        (NodeServer control plane)
inline constexpr uint32_t kNode = 20;        // rpc.node           (routing directory / health)
inline constexpr uint32_t kStoreBatch = 30;  // kv.store.batch     (ApplyBatch staging window)
inline constexpr uint32_t kLsmFlush = 40;    // lsm.flush          (one flush/compact at a time)
// Reclamation is an *outer* lock relative to the index: ChunkStore::Reclaim holds it
// across the ReclaimClient callbacks (IsReferenced / UpdateReference), which take
// lsm.index.
inline constexpr uint32_t kChunkReclaim = 42;  // chunk.reclaim    (one reclamation at a time)
inline constexpr uint32_t kLsm = 45;         // lsm.index          (memtable / runs / metadata)
inline constexpr uint32_t kChunk = 55;       // chunk.store        (allocator / pin set)
inline constexpr uint32_t kCache = 60;       // cache.buffer       (page map + LRU)
inline constexpr uint32_t kExtent = 65;      // extent.manager     (write pointers / images)
inline constexpr uint32_t kIo = 70;          // io.scheduler       (writeback queue)
inline constexpr uint32_t kDisk = 75;        // disk               (persistent image)
inline constexpr uint32_t kHealth = 80;      // disk.health        (error budget)
inline constexpr uint32_t kClock = 85;       // extent.clock       (virtual retry clock)
inline constexpr uint32_t kObs = 200;        // obs.*              (metrics / trace / spans)
inline constexpr uint32_t kCover = 210;      // common.cover       (coverage counters)
inline constexpr uint32_t kSched = 250;      // mc.*               (checker-internal batons)
}  // namespace lockrank

// One observed acquisition-order edge: class `to` was acquired while `from` (among
// others) was held. `held_stack` is the acquiring thread's named-lock stack at that
// moment, outermost first — the "acquisition stack" a report pairs across threads.
struct LockOrderEdge {
  std::string from;
  std::string to;
  std::vector<std::string> held_stack;
  uint64_t thread = 0;  // opaque id of the acquiring thread
  uint64_t seq = 0;     // global acquisition counter when the edge was first seen
};

// One violation: either a cycle in the order graph (`edges` walks the cycle, each
// entry carrying the acquisition stack that created it) or a rank inversion
// (`edges` holds the single offending acquisition).
struct LockOrderReport {
  enum class Kind : uint8_t { kCycle, kRankInversion };
  Kind kind = Kind::kCycle;
  std::vector<std::string> cycle;  // class names in cycle order (kCycle), or {from, to}
  std::vector<LockOrderEdge> edges;
  std::string message;

  std::string ToString() const;
  std::string ToJson() const;
};

// Process-wide witness singleton. ss::Mutex / ss::CondVar call the On* entry points;
// everything else is the read/installation surface.
class LockWitness {
 public:
  static LockWitness& Global();

  // --- Instrumentation entry points (called by ss::sync internals) --------------------
  void OnAcquire(const char* name, uint32_t rank);
  void OnRelease(const char* name);

  // --- Reports ------------------------------------------------------------------------
  // Lifetime count of distinct violations detected (cycles are deduplicated by their
  // class set, so a hot inverted pair counts once, not once per acquisition).
  uint64_t violation_count() const;
  // Retained reports, oldest first (bounded retention).
  std::vector<LockOrderReport> Reports() const;
  // The most recent report's message, or "" if none.
  std::string LastMessage() const;

  // Clears the order graph, reports, and dedup state (held-lock stacks are
  // per-thread and drain naturally). Call only while no instrumented lock is held;
  // tests use this for isolation.
  void Reset();

  // Enables/disables edge recording and checking globally (default on). Acquisition
  // bookkeeping stays correct while disabled.
  void set_enabled(bool enabled);
  bool enabled() const;

  // --- Handlers -----------------------------------------------------------------------
  // Called synchronously (outside witness-internal locks) for each new violation in
  // native runs; deferred under an active model-checker run. Returns a registration
  // id for RemoveHandler.
  using Handler = std::function<void(const LockOrderReport&)>;
  int AddHandler(Handler handler);
  void RemoveHandler(int id);

 private:
  LockWitness() = default;
};

// RAII handler registration.
class ScopedLockOrderHandler {
 public:
  explicit ScopedLockOrderHandler(LockWitness::Handler handler)
      : id_(LockWitness::Global().AddHandler(std::move(handler))) {}
  ~ScopedLockOrderHandler() { LockWitness::Global().RemoveHandler(id_); }
  ScopedLockOrderHandler(const ScopedLockOrderHandler&) = delete;
  ScopedLockOrderHandler& operator=(const ScopedLockOrderHandler&) = delete;

 private:
  int id_;
};

}  // namespace ss

#endif  // SS_SYNC_WITNESS_H_
