#include "src/sync/witness.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "src/sync/sync.h"

namespace ss {
namespace {

struct HeldLock {
  const char* name;
  uint32_t rank;
};

// Per-thread state. The held stack only contains *named* locks; anonymous locks are
// invisible to the witness by design.
struct ThreadState {
  std::vector<HeldLock> held;
  // (from, to) name-pointer pairs already pushed through the global graph, so hot
  // nesting pairs skip the global lock after their first acquisition. Invalidated by
  // epoch when the witness is Reset().
  std::unordered_set<uint64_t> seen_pairs;
  uint64_t seen_epoch = 0;
  uint64_t id = 0;
  bool in_witness = false;  // reentrancy guard: handlers may take ss locks
};

ThreadState& Tls() {
  static thread_local ThreadState state;
  return state;
}

uint64_t PairKey(const char* from, const char* to) {
  // Name pointers are static storage; mix the two addresses.
  const auto a = reinterpret_cast<uintptr_t>(from);
  const auto b = reinterpret_cast<uintptr_t>(to);
  return (uint64_t{a} * 0x9e3779b97f4a7c15ULL) ^ uint64_t{b};
}

// Minimal JSON string escaping (class names are identifiers, but messages embed them
// freely, so stay correct on quotes/backslashes/control bytes).
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct WitnessState {
  std::mutex mu;
  // Acquisition-order graph over lock classes: edges[from][to] = first observation.
  std::map<std::string, std::map<std::string, LockOrderEdge>, std::less<>> edges;
  std::set<std::string> reported;  // dedup keys of violations already reported
  std::deque<LockOrderReport> reports;
  std::vector<std::pair<int, LockWitness::Handler>> handlers;
  int next_handler_id = 1;
  uint64_t next_thread_id = 1;
  uint64_t acquire_seq = 0;
  uint64_t epoch = 1;  // bumped by Reset() to invalidate per-thread pair caches
  std::atomic<uint64_t> violations{0};
  std::atomic<bool> enabled{true};
};

WitnessState& State() {
  static WitnessState* state = new WitnessState();
  return *state;
}

constexpr size_t kMaxRetainedReports = 32;

// Finds a path `from_node` ... `to_node` in the order graph (DFS, iterative).
// Returns the node sequence including both endpoints, or empty if unreachable.
std::vector<std::string> FindPath(
    const std::map<std::string, std::map<std::string, LockOrderEdge>, std::less<>>& edges,
    const std::string& from_node, const std::string& to_node) {
  std::map<std::string, std::string> parent;  // child -> predecessor on the DFS tree
  std::vector<std::string> stack = {from_node};
  std::set<std::string> visited = {from_node};
  while (!stack.empty()) {
    std::string node = stack.back();
    stack.pop_back();
    if (node == to_node) {
      std::vector<std::string> path = {node};
      while (node != from_node) {
        node = parent.at(node);
        path.push_back(node);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto it = edges.find(node);
    if (it == edges.end()) {
      continue;
    }
    for (const auto& [next, edge] : it->second) {
      if (visited.insert(next).second) {
        parent[next] = node;
        stack.push_back(next);
      }
    }
  }
  return {};
}

}  // namespace

std::string LockOrderReport::ToString() const {
  std::ostringstream out;
  out << message;
  for (const LockOrderEdge& edge : edges) {
    out << "\n  " << edge.from << " -> " << edge.to << " (thread " << edge.thread
        << ", held:";
    for (const std::string& held : edge.held_stack) {
      out << " " << held;
    }
    out << ")";
  }
  return out.str();
}

std::string LockOrderReport::ToJson() const {
  std::ostringstream out;
  out << "{\"kind\":\"" << (kind == Kind::kCycle ? "cycle" : "rank_inversion") << "\"";
  out << ",\"message\":\"" << Escape(message) << "\"";
  out << ",\"cycle\":[";
  for (size_t i = 0; i < cycle.size(); ++i) {
    out << (i != 0 ? "," : "") << "\"" << Escape(cycle[i]) << "\"";
  }
  out << "],\"edges\":[";
  for (size_t i = 0; i < edges.size(); ++i) {
    const LockOrderEdge& edge = edges[i];
    out << (i != 0 ? "," : "") << "{\"from\":\"" << Escape(edge.from) << "\",\"to\":\""
        << Escape(edge.to) << "\",\"thread\":" << edge.thread << ",\"seq\":" << edge.seq
        << ",\"held_stack\":[";
    for (size_t j = 0; j < edge.held_stack.size(); ++j) {
      out << (j != 0 ? "," : "") << "\"" << Escape(edge.held_stack[j]) << "\"";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

LockWitness& LockWitness::Global() {
  static LockWitness* witness = new LockWitness();
  return *witness;
}

void LockWitness::set_enabled(bool enabled) { State().enabled.store(enabled); }

bool LockWitness::enabled() const { return State().enabled.load(); }

uint64_t LockWitness::violation_count() const { return State().violations.load(); }

std::vector<LockOrderReport> LockWitness::Reports() const {
  WitnessState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  return {st.reports.begin(), st.reports.end()};
}

std::string LockWitness::LastMessage() const {
  WitnessState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.reports.empty() ? "" : st.reports.back().message;
}

void LockWitness::Reset() {
  WitnessState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  st.edges.clear();
  st.reported.clear();
  st.reports.clear();
  ++st.epoch;
  st.violations.store(0);
}

int LockWitness::AddHandler(Handler handler) {
  WitnessState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  const int id = st.next_handler_id++;
  st.handlers.emplace_back(id, std::move(handler));
  return id;
}

void LockWitness::RemoveHandler(int id) {
  WitnessState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  for (auto it = st.handlers.begin(); it != st.handlers.end(); ++it) {
    if (it->first == id) {
      st.handlers.erase(it);
      return;
    }
  }
}

void LockWitness::OnAcquire(const char* name, uint32_t rank) {
  if (name == nullptr || name[0] == '\0') {
    return;
  }
  ThreadState& tls = Tls();
  if (tls.in_witness) {
    return;  // a violation handler is taking ss locks; don't recurse
  }
  tls.in_witness = true;
  WitnessState& st = State();
  if (!st.enabled.load(std::memory_order_relaxed) || tls.held.empty()) {
    tls.held.push_back({name, rank});
    tls.in_witness = false;
    return;
  }

  // Collect the (from -> name) pairs that need the global graph: every *distinct*
  // held class not yet pushed through by this thread. Rank inversions are checked
  // against the highest-ranked held lock.
  std::vector<const HeldLock*> new_from;
  const HeldLock* rank_clash = nullptr;
  for (const HeldLock& held : tls.held) {
    if (held.name == name || std::string_view(held.name) == name) {
      continue;  // same class: instance-level nesting is outside the class graph
    }
    if (rank != 0 && held.rank != 0 && rank < held.rank &&
        (rank_clash == nullptr || held.rank > rank_clash->rank)) {
      rank_clash = &held;
    }
    const uint64_t key = PairKey(held.name, name);
    if (tls.seen_epoch == st.epoch && tls.seen_pairs.count(key) != 0) {
      continue;
    }
    new_from.push_back(&held);
  }
  if (new_from.empty() && rank_clash == nullptr) {
    tls.held.push_back({name, rank});
    tls.in_witness = false;
    return;
  }

  std::vector<LockOrderReport> fresh;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (tls.seen_epoch != st.epoch) {
      tls.seen_pairs.clear();
      tls.seen_epoch = st.epoch;
    }
    if (tls.id == 0) {
      tls.id = st.next_thread_id++;
    }
    std::vector<std::string> held_names;
    held_names.reserve(tls.held.size() + 1);
    for (const HeldLock& held : tls.held) {
      held_names.emplace_back(held.name);
    }
    held_names.emplace_back(name);

    if (rank_clash != nullptr) {
      const std::string key =
          std::string("rank:") + rank_clash->name + ">" + name;
      if (st.reported.insert(key).second) {
        LockOrderReport report;
        report.kind = LockOrderReport::Kind::kRankInversion;
        report.cycle = {rank_clash->name, name};
        LockOrderEdge edge{rank_clash->name, name, held_names, tls.id, ++st.acquire_seq};
        report.edges.push_back(edge);
        std::ostringstream msg;
        msg << "lock rank inversion: acquiring \"" << name << "\" (rank " << rank
            << ") while holding \"" << rank_clash->name << "\" (rank " << rank_clash->rank
            << ")";
        report.message = msg.str();
        st.violations.fetch_add(1);
        st.reports.push_back(report);
        if (st.reports.size() > kMaxRetainedReports) {
          st.reports.pop_front();
        }
        fresh.push_back(std::move(report));
      }
    }

    for (const HeldLock* from : new_from) {
      tls.seen_pairs.insert(PairKey(from->name, name));
      auto& out_edges = st.edges[from->name];
      auto [edge_it, inserted] = out_edges.try_emplace(name);
      if (!inserted) {
        continue;  // edge already known (recorded by another thread)
      }
      edge_it->second =
          LockOrderEdge{from->name, name, held_names, tls.id, ++st.acquire_seq};
      // Lazy cycle detection: the new edge from->name closes a cycle iff `from` was
      // already reachable from `name`.
      std::vector<std::string> path = FindPath(st.edges, name, from->name);
      if (path.empty()) {
        continue;
      }
      LockOrderReport report;
      report.kind = LockOrderReport::Kind::kCycle;
      report.cycle = path;           // name ... from
      report.cycle.push_back(name);  // close the loop via the new edge
      // Dedup by the cycle's class set.
      std::set<std::string> classes(path.begin(), path.end());
      std::string key = "cycle:";
      for (const std::string& cls : classes) {
        key += cls + "|";
      }
      if (!st.reported.insert(key).second) {
        continue;
      }
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        report.edges.push_back(st.edges.at(path[i]).at(path[i + 1]));
      }
      report.edges.push_back(edge_it->second);  // from -> name, the closing edge
      std::ostringstream msg;
      msg << "lock-order cycle:";
      for (const std::string& cls : report.cycle) {
        msg << " " << cls << (cls == report.cycle.back() ? "" : " ->");
      }
      report.message = msg.str();
      st.violations.fetch_add(1);
      st.reports.push_back(report);
      if (st.reports.size() > kMaxRetainedReports) {
        st.reports.pop_front();
      }
      fresh.push_back(std::move(report));
    }
  }

  if (!fresh.empty() && ActiveSchedHooks() == nullptr) {
    // Native runs fan out to handlers (flight recorder, metrics) outside the witness
    // lock. Under the model checker the callbacks are suppressed: the run's harness
    // reads the retained reports, so the violation becomes a counterexample without
    // the handler perturbing the schedule.
    std::vector<std::pair<int, Handler>> handlers;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      handlers = st.handlers;
    }
    for (const LockOrderReport& report : fresh) {
      for (const auto& [id, handler] : handlers) {
        handler(report);
      }
    }
  }
  tls.held.push_back({name, rank});
  tls.in_witness = false;
}

void LockWitness::OnRelease(const char* name) {
  if (name == nullptr || name[0] == '\0') {
    return;
  }
  ThreadState& tls = Tls();
  if (tls.in_witness) {
    return;
  }
  // Locks are usually released in LIFO order, but out-of-order release is legal:
  // search from the top.
  for (auto it = tls.held.rbegin(); it != tls.held.rend(); ++it) {
    if (it->name == name || std::string_view(it->name) == name) {
      tls.held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace ss
