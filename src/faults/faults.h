// Seeded-bug registry.
//
// Figure 5 of the paper catalogues 16 real issues that the validation effort prevented
// from reaching production. To reproduce that result we re-implement each issue as a
// switchable code path *inside the real implementation*: enabling a SeededBug makes the
// corresponding module misbehave in the way the paper describes, and the matching
// checker (conformance / crash consistency / model checking) must then detect it.
// bench/bench_fig5_bug_catalog.cc drives the full table.
//
// All bugs default to off; production behaviour is the correct path.

#ifndef SS_FAULTS_FAULTS_H_
#define SS_FAULTS_FAULTS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace ss {

// One entry per Figure 5 row. Comments give the paper's description.
enum class SeededBug : uint8_t {
  // #1 Chunk store: off-by-one error in reclamation for chunks of size close to PAGE_SIZE.
  kReclaimOffByOnePageSize = 0,
  // #2 Buffer cache: cache was not correctly drained after resetting an extent.
  kCacheNotDrainedOnReset = 1,
  // #3 Index: metadata was not flushed correctly during shutdown if an extent was reset.
  kShutdownMetadataSkipAfterReset = 2,
  // #4 API: shards could be lost if a disk was removed from service and later returned.
  kDiskRemovalLosesShards = 3,
  // #5 Chunk store: reclamation could forget chunks after a transient read IO error.
  kReclaimForgetsChunkOnReadError = 4,
  // #6 Superblock: superblock Dependency for extent ownership was incorrect after reboot.
  kSuperblockWrongOwnershipDep = 5,
  // #7 Superblock: mismatch between soft and hard write pointers in a crash after reset.
  kSoftPointerNotResetPersisted = 6,
  // #8 Buffer cache: writes did not include a dependency on the soft write pointer update.
  kWriteMissingSoftPointerDep = 7,
  // #9 Chunk store: recovery trusted state that a crash during reclamation invalidated.
  kRecoveryWritePointerPastCrash = 8,
  // #10 Chunk store: reclamation could forget chunks after a crash and UUID collision.
  kReclaimUuidCollision = 9,
  // #11 Chunk store: chunk locators could become invalid after a race between write/flush.
  kLocatorInvalidOnWriteFlushRace = 10,
  // #12 Superblock: buffer pool exhaustion could deadlock threads waiting for an update.
  kBufferPoolDeadlock = 11,
  // #13 API: race between control plane listing and removal of shards.
  kListRemoveRace = 12,
  // #14 Index: race between reclamation and LSM compaction could lose index entries.
  kCompactReclaimMetadataRace = 13,
  // #15 Chunk store: reference model could re-use chunk locators.
  kModelLocatorReuse = 14,
  // #16 API: race between control plane bulk create and bulk remove of shards.
  kBulkCreateRemoveRace = 15,
};

inline constexpr int kSeededBugCount = 16;

// Short stable name ("#10 ReclaimUuidCollision") for reports.
std::string_view SeededBugName(SeededBug bug);
// Paper's one-line description.
std::string_view SeededBugDescription(SeededBug bug);
// The paper's component column ("Chunk store", "Index", ...).
std::string_view SeededBugComponent(SeededBug bug);

// Process-wide switchboard. Tests enable exactly one bug, run a checker, then disable.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  void Enable(SeededBug bug) { enabled_[Idx(bug)].store(true, std::memory_order_relaxed); }
  void Disable(SeededBug bug) { enabled_[Idx(bug)].store(false, std::memory_order_relaxed); }
  void DisableAll();
  bool IsEnabled(SeededBug bug) const {
    return enabled_[Idx(bug)].load(std::memory_order_relaxed);
  }

 private:
  static size_t Idx(SeededBug bug) { return static_cast<size_t>(bug); }
  std::array<std::atomic<bool>, kSeededBugCount> enabled_{};
};

// Convenience predicate used at injection sites:
//   if (BugEnabled(SeededBug::kReclaimOffByOnePageSize)) { ...buggy path... }
inline bool BugEnabled(SeededBug bug) { return FaultRegistry::Global().IsEnabled(bug); }

// RAII scope that enables a seeded bug for the duration of a test body and guarantees
// it cannot leak into later tests: the destructor disables the bug even if the test
// body exits early. Prefer this over raw Enable/Disable pairs in tests.
class ScopedSeededBug {
 public:
  explicit ScopedSeededBug(SeededBug bug) : bug_(bug) { FaultRegistry::Global().Enable(bug); }
  ~ScopedSeededBug() { FaultRegistry::Global().Disable(bug_); }
  ScopedSeededBug(const ScopedSeededBug&) = delete;
  ScopedSeededBug& operator=(const ScopedSeededBug&) = delete;

 private:
  SeededBug bug_;
};

// Historic name, kept so existing call sites read naturally.
using ScopedBug = ScopedSeededBug;

}  // namespace ss

#endif  // SS_FAULTS_FAULTS_H_
