#include "src/faults/faults.h"

namespace ss {
namespace {

struct BugInfo {
  std::string_view name;
  std::string_view component;
  std::string_view description;
};

constexpr std::array<BugInfo, kSeededBugCount> kBugInfo = {{
    {"#1 ReclaimOffByOnePageSize", "Chunk store",
     "Off-by-one error in reclamation for chunks of size close to PAGE_SIZE"},
    {"#2 CacheNotDrainedOnReset", "Buffer cache",
     "Cache was not correctly drained after resetting an extent"},
    {"#3 ShutdownMetadataSkipAfterReset", "Index",
     "Metadata was not flushed correctly during shutdown if an extent was reset"},
    {"#4 DiskRemovalLosesShards", "API",
     "Shards could be lost if a disk was removed from service and then later returned"},
    {"#5 ReclaimForgetsChunkOnReadError", "Chunk store",
     "Reclamation could forget chunks after a transient read IO error"},
    {"#6 SuperblockWrongOwnershipDep", "Superblock",
     "Superblock Dependency for extent ownership was incorrect after a reboot"},
    {"#7 SoftPointerNotResetPersisted", "Superblock",
     "Mismatch between soft and hard write pointers in a crash after an extent reset"},
    {"#8 WriteMissingSoftPointerDep", "Buffer cache",
     "Writes did not include a dependency on the soft write pointer update"},
    {"#9 RecoveryWritePointerPastCrash", "Chunk store",
     "Reference model was not updated correctly after a crash during reclamation"},
    {"#10 ReclaimUuidCollision", "Chunk store",
     "Reclamation could forget chunks after a crash and UUID collision"},
    {"#11 LocatorInvalidOnWriteFlushRace", "Chunk store",
     "Chunk locators could become invalid after a race between write and flush"},
    {"#12 BufferPoolDeadlock", "Superblock",
     "Buffer pool exhaustion could cause threads waiting for a superblock update to deadlock"},
    {"#13 ListRemoveRace", "API",
     "Race between control plane operations for listing and removal of shards"},
    {"#14 CompactReclaimMetadataRace", "Index",
     "Race between reclamation and LSM compaction could lose recent index entries"},
    {"#15 ModelLocatorReuse", "Chunk store",
     "Reference model could re-use chunk locators, which other code assumed were unique"},
    {"#16 BulkCreateRemoveRace", "API",
     "Race between control plane bulk operations for creating and removing shards"},
}};

}  // namespace

std::string_view SeededBugName(SeededBug bug) {
  return kBugInfo[static_cast<size_t>(bug)].name;
}

std::string_view SeededBugDescription(SeededBug bug) {
  return kBugInfo[static_cast<size_t>(bug)].description;
}

std::string_view SeededBugComponent(SeededBug bug) {
  return kBugInfo[static_cast<size_t>(bug)].component;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* instance = new FaultRegistry();
  return *instance;
}

void FaultRegistry::DisableAll() {
  for (auto& flag : enabled_) {
    flag.store(false, std::memory_order_relaxed);
  }
}

}  // namespace ss
