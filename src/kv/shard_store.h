// ShardStore: the per-disk key-value store (paper section 2).
//
// Composes the whole stack over one Disk backend:
//
//     ShardStore (shard put/get/delete, recovery, maintenance)
//       ├── LsmIndex        shard id -> ShardRecord (chunk locators)
//       ├── ChunkStore      chunk put/get + reclamation
//       ├── BufferCache     read-through page cache
//       ├── ExtentManager   append-only extents + soft write pointers + superblock
//       ├── IoScheduler     dependency-ordered writebacks
//       └── Disk            persistent image (owned by the caller, survives "crashes")
//
// A crash is simulated by IoScheduler::Crash() followed by destroying the ShardStore
// and calling Open() on the same disk — recovery is simply reconstruction from the
// persistent image, exactly as the paper's DirtyReboot harness does.

#ifndef SS_KV_SHARD_STORE_H_
#define SS_KV_SHARD_STORE_H_

#include <memory>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/chunk/chunk_store.h"
#include "src/dep/io_scheduler.h"
#include "src/disk/disk.h"
#include "src/lsm/lsm_index.h"
#include "src/obs/metrics.h"
#include "src/superblock/extent_manager.h"

namespace ss {

struct ShardStoreOptions {
  ChunkStoreOptions chunk;
  LsmOptions lsm;
  size_t cache_pages = 256;
  uint32_t buffer_permits = ExtentManager::kDefaultBufferPermits;
  // Largest accepted shard value (split across this many chunks at most).
  size_t max_chunks_per_shard = 16;
  // Transient-fault retry policy for the extent layer.
  IoRetryOptions retry;
};

// One live entry of a range scan: the shard id plus its fully assembled value.
struct ScanItem {
  ShardId id = 0;
  Bytes value;
};

// One mutation of a write batch: a put (value set) or a delete (value empty).
struct StoreBatchItem {
  ShardId id = 0;
  std::optional<Bytes> value;  // nullopt = delete
};

// Per-item outcome of ApplyBatch. `dep` is trivially persistent for failed items.
struct StoreBatchItemResult {
  Status status;
  Dependency dep;
};

struct StoreBatchResult {
  std::vector<StoreBatchItemResult> items;  // input order
  Dependency dep;  // join of the successful items' dependencies
};

class ShardStore : public ReclaimClient {
 public:
  // Opens (formatting a fresh disk, or recovering an existing image). The disk must
  // outlive the store.
  static Result<std::unique_ptr<ShardStore>> Open(Disk* disk,
                                                  ShardStoreOptions options = {});

  // --- Request plane ---------------------------------------------------------------------
  // Each operation takes an optional SpanScope: when active, the store records a
  // store.* child span with the full descendant chain (lsm.*, chunk.*, extent.*,
  // io.*, cache.*) under the caller's root span. The default inactive scope makes
  // tracing cost one branch.
  //
  // Stores `value` under `id`. Returns the operation's dependency: poll IsPersistent()
  // to learn when the put is durable (data chunks + index entry + soft pointers).
  Result<Dependency> Put(ShardId id, ByteSpan value, const SpanScope& scope = {});

  // Reads the current value. kNotFound if the shard does not exist.
  Result<Bytes> Get(ShardId id, const SpanScope& scope = {});

  // Removes the shard (tombstone). Returns the delete's dependency.
  Result<Dependency> Delete(ShardId id, const SpanScope& scope = {});

  // Group commit: stages every item's chunk writes inside one extent write-batch
  // scope (shared soft-pointer update per extent, coalesced data IO), then commits
  // all items under a single LSM batch insert — one durability barrier for the whole
  // batch instead of one per item. Items fail independently (per-item Status); the
  // batch dependency is the join of the successful items. Crash semantics: the batch
  // is atomic per item (never a torn value or an index entry without its chunks), and
  // a crash persists a prefix of the batch — with one shared metadata barrier that
  // prefix is in fact none-or-all of the items that reached the index.
  StoreBatchResult ApplyBatch(const std::vector<StoreBatchItem>& items,
                              const SpanScope& scope = {});

  // All live shards in the half-open window [start, end), in key order, each with its
  // assembled value — the LSM merge view (memtable and every level, newest shadows
  // oldest, tombstones suppress). Retries like Get when a concurrent reclamation moves
  // a chunk between the index scan and the value read.
  Result<std::vector<ScanItem>> Scan(ShardId start, ShardId end, const SpanScope& scope = {});

  // Live shard ids.
  Result<std::vector<ShardId>> List();

  // --- Maintenance -----------------------------------------------------------------------
  Status FlushIndex(const SpanScope& scope = {}) { return index_->Flush(scope); }
  Status CompactIndex() { return index_->Compact(); }
  // Partial index merge (background-eligible); see LsmIndex::CompactLevel.
  Status CompactIndexLevel(int level, const SpanScope& scope = {}) {
    return index_->CompactLevel(level, scope);
  }

  // Reclaims one specific extent / the first reclaimable extent (no-op if none).
  Status ReclaimExtent(ExtentId extent);
  Status ReclaimAny();

  // Issues up to n pending writebacks.
  size_t PumpIo(size_t n) { return scheduler_->Pump(n); }

  // Clean shutdown: flush the index if needed, then drain all writebacks. After this,
  // every dependency ever returned must report persistent (the paper's forward-progress
  // property). Serialized against ApplyBatch: draining mid-batch would find records
  // gated on the batch's still-unresolved soft-pointer promises and misreport a
  // forward-progress violation.
  Status FlushAll(const SpanScope& scope = {});

  // --- ReclaimClient ---------------------------------------------------------------------
  Result<bool> IsReferenced(const Locator& loc) override;
  Result<Dependency> UpdateReference(const Locator& old_loc, const Locator& new_loc,
                                     const Dependency& new_dep) override;
  Dependency DropGate() override;

  // --- Introspection ---------------------------------------------------------------------
  IoScheduler& scheduler() { return *scheduler_; }
  ExtentManager& extents() { return *extents_; }
  ChunkStore& chunks() { return *chunks_; }
  BufferCache& cache() { return *cache_; }
  LsmIndex& index() { return *index_; }
  Disk& disk() { return *disk_; }
  // The store-wide registry: every component of this store (cache, scheduler, extent
  // retry, LSM, chunk store, disk health) registers its metrics here, so one snapshot
  // covers the whole per-disk stack.
  MetricRegistry& metrics() { return *metrics_; }
  const MetricRegistry& metrics() const { return *metrics_; }

 private:
  ShardStore(Disk* disk, ShardStoreOptions options);

  Disk* disk_;
  ShardStoreOptions options_;
  std::unique_ptr<MetricRegistry> metrics_;  // declared before components so they can register
  std::unique_ptr<IoScheduler> scheduler_;
  std::unique_ptr<ExtentManager> extents_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<LsmIndex> index_;
  Counter* puts_;
  Counter* gets_;
  Counter* scans_;
  Counter* deletes_;
  Counter* reclaims_;
  Counter* batch_applies_;
  Counter* batch_items_;
  Counter* batch_flushes_;
  // Held across ApplyBatch's staging window (and FlushAll's drain): between
  // BeginWriteBatch and EndWriteBatch the scheduler holds records gated on promises
  // only the batch itself resolves, so a concurrent drain must wait.
  Mutex batch_mu_{MutexAttr{"kv.store.batch", lockrank::kStoreBatch}};
};

}  // namespace ss

#endif  // SS_KV_SHARD_STORE_H_
