#include "src/kv/shard_store.h"

#include "src/common/cover.h"

namespace ss {

ShardStore::ShardStore(Disk* disk, ShardStoreOptions options)
    : disk_(disk), options_(options) {
  metrics_ = std::make_unique<MetricRegistry>();
  scheduler_ = std::make_unique<IoScheduler>(disk_, metrics_.get());
  extents_ = std::make_unique<ExtentManager>(disk_, scheduler_.get(), options_.buffer_permits,
                                             options_.retry, metrics_.get());
  cache_ = std::make_unique<BufferCache>(extents_.get(), options_.cache_pages, metrics_.get());
  chunks_ = std::make_unique<ChunkStore>(extents_.get(), cache_.get(), options_.chunk,
                                         metrics_.get());
  puts_ = &metrics_->counter("store.puts");
  gets_ = &metrics_->counter("store.gets");
  scans_ = &metrics_->counter("store.scans");
  deletes_ = &metrics_->counter("store.deletes");
  reclaims_ = &metrics_->counter("store.reclaims");
  batch_applies_ = &metrics_->counter("store.batch.applies");
  batch_items_ = &metrics_->counter("store.batch.items");
  batch_flushes_ = &metrics_->counter("store.batch.flushes");
}

Result<std::unique_ptr<ShardStore>> ShardStore::Open(Disk* disk,
                                                     ShardStoreOptions options) {
  std::unique_ptr<ShardStore> store(new ShardStore(disk, options));
  SS_ASSIGN_OR_RETURN(store->index_,
                      LsmIndex::Open(store->extents_.get(), store->chunks_.get(), options.lsm,
                                     store->metrics_.get()));
  disk->BumpEpoch();
  return store;
}

Result<Dependency> ShardStore::Put(ShardId id, ByteSpan value, const SpanScope& scope) {
  Span span = scope.Child("store.put");
  const SpanScope child_scope = span.scope();
  puts_->Increment();
  const size_t max_payload = chunks_->max_payload_bytes();
  if (value.size() > max_payload * options_.max_chunks_per_shard) {
    span.set_status(StatusCode::kInvalidArgument);
    return Status::InvalidArgument("shard value too large");
  }
  ShardRecord record;
  record.total_bytes = value.size();
  std::vector<Dependency> data_deps;
  for (size_t off = 0; off < value.size(); off += max_payload) {
    const size_t len = std::min(max_payload, value.size() - off);
    auto chunk_or = chunks_->Put(value.subspan(off, len), Dependency(), child_scope);
    if (!chunk_or.ok()) {
      // Unpin the chunks already written; they are unreferenced garbage now and will
      // be reclaimed.
      for (const Locator& loc : record.chunks) {
        chunks_->Unpin(loc.extent);
      }
      span.set_status(chunk_or.code());
      return chunk_or.status();
    }
    record.chunks.push_back(chunk_or.value().locator);
    data_deps.push_back(chunk_or.value().dep);
  }
  std::vector<Locator> pinned = record.chunks;
  // A put is durable once the shard data and the index entry pointing at it are
  // (Figure 2): the index promise already implies the data, but we AND explicitly to
  // mirror the paper's dependency graph shape.
  Dependency data = Dependency::AndAll(data_deps);
  Dependency dep = index_->Put(id, std::move(record), data, child_scope).And(data);
  // The index now references the chunks; release their reclamation pins.
  for (const Locator& loc : pinned) {
    chunks_->Unpin(loc.extent);
  }
  return dep;
}

StoreBatchResult ShardStore::ApplyBatch(const std::vector<StoreBatchItem>& items,
                                        const SpanScope& scope) {
  StoreBatchResult result;
  result.items.resize(items.size());
  if (items.empty()) {
    return result;
  }
  Span span = scope.Child("store.apply_batch");
  const SpanScope child_scope = span.scope();
  LockGuard batch_lock(batch_mu_);
  batch_applies_->Increment();
  batch_items_->Increment(items.size());
  const size_t max_payload = chunks_->max_payload_bytes();

  // Stage every item's chunk writes inside one write-batch scope: appends to the same
  // extent coalesce into multi-page IO units and share one deferred soft-pointer
  // update. Items fail independently — a failed item's partial chunks are unpinned
  // (unreferenced garbage, reclaimed later) and the rest of the batch proceeds.
  struct Staged {
    size_t index = 0;
    LsmBatchItem lsm;
    std::vector<Locator> pinned;
  };
  std::vector<Staged> staged;
  staged.reserve(items.size());
  extents_->BeginWriteBatch();
  for (size_t i = 0; i < items.size(); ++i) {
    const StoreBatchItem& item = items[i];
    Staged s;
    s.index = i;
    s.lsm.id = item.id;
    if (!item.value.has_value()) {
      deletes_->Increment();
      staged.push_back(std::move(s));
      continue;
    }
    puts_->Increment();
    if (item.value->size() > max_payload * options_.max_chunks_per_shard) {
      result.items[i].status = Status::InvalidArgument("shard value too large");
      continue;
    }
    ShardRecord record;
    record.total_bytes = item.value->size();
    std::vector<Dependency> data_deps;
    Status status = Status::Ok();
    ByteSpan value(*item.value);
    for (size_t off = 0; off < value.size(); off += max_payload) {
      const size_t len = std::min(max_payload, value.size() - off);
      auto chunk_or = chunks_->Put(value.subspan(off, len), Dependency(), child_scope);
      if (!chunk_or.ok()) {
        status = chunk_or.status();
        break;
      }
      record.chunks.push_back(chunk_or.value().locator);
      data_deps.push_back(chunk_or.value().dep);
    }
    if (!status.ok()) {
      for (const Locator& loc : record.chunks) {
        chunks_->Unpin(loc.extent);
      }
      result.items[i].status = status;
      continue;
    }
    s.pinned = record.chunks;
    s.lsm.data_dep = Dependency::AndAll(data_deps);
    s.lsm.record = std::move(record);
    staged.push_back(std::move(s));
  }

  // Commit: one LSM batch insert — all items land in the same memtable generation and
  // resolve at one shared metadata barrier. The extent batch scope must close before
  // any flush so the deferred soft-pointer promises are resolved by the time the
  // metadata append depends on them.
  std::vector<LsmBatchItem> lsm_items;
  lsm_items.reserve(staged.size());
  for (Staged& s : staged) {
    lsm_items.push_back(std::move(s.lsm));
  }
  bool flush_wanted = false;
  std::vector<Dependency> deps =
      index_->ApplyBatch(std::move(lsm_items), &flush_wanted, child_scope);
  extents_->EndWriteBatch();
  std::vector<Dependency> ok_deps;
  for (size_t k = 0; k < staged.size(); ++k) {
    // Mirror Put: AND the item's data dependency explicitly (the promise implies it).
    Dependency dep = deps[k];
    result.items[staged[k].index].dep = dep;
    ok_deps.push_back(std::move(dep));
    for (const Locator& loc : staged[k].pinned) {
      chunks_->Unpin(loc.extent);
    }
  }
  result.dep = Dependency::AndAll(ok_deps);
  if (flush_wanted) {
    batch_flushes_->Increment();
    // Best-effort group flush, as in Put; errors surface on the next explicit flush.
    (void)index_->Flush(child_scope);
  }
  return result;
}

Result<Bytes> ShardStore::Get(ShardId id, const SpanScope& scope) {
  Span span = scope.Child("store.get");
  const SpanScope child_scope = span.scope();
  gets_->Increment();
  Status last_error = Status::Ok();
  for (int attempt = 0; attempt < 4; ++attempt) {
    auto record_or = index_->Get(id, child_scope);
    if (!record_or.ok()) {
      span.set_status(record_or.code());
      return record_or.status();
    }
    std::optional<ShardRecord> record = std::move(record_or).value();
    if (!record.has_value()) {
      span.set_status(StatusCode::kNotFound);
      return Status::NotFound("shard not found");
    }
    Bytes out;
    out.reserve(record->total_bytes);
    bool retry = false;
    for (const Locator& loc : record->chunks) {
      auto chunk_or = chunks_->Get(loc, child_scope);
      if (!chunk_or.ok()) {
        // A permanently failed extent cannot be read by trying again; surface it now
        // so the caller (and the health machinery above) can act on it.
        if (chunk_or.code() == StatusCode::kDiskFailed) {
          span.set_status(chunk_or.code());
          return chunk_or.status();
        }
        // A concurrent reclamation may have moved this chunk between the index lookup
        // and the read; refetch the record and try again. Persistent errors (injected
        // IO failures) surface after the retry budget.
        last_error = chunk_or.status();
        retry = true;
        break;
      }
      out.insert(out.end(), chunk_or.value().begin(), chunk_or.value().end());
    }
    if (retry) {
      YieldThread();
      continue;
    }
    if (out.size() != record->total_bytes) {
      span.set_status(StatusCode::kCorruption);
      return Status::Corruption("shard size mismatch across chunks");
    }
    return out;
  }
  SS_COVER("shard_store.get_retry_exhausted");
  span.set_status(last_error.code());
  return last_error;
}

Result<std::vector<ScanItem>> ShardStore::Scan(ShardId start, ShardId end,
                                               const SpanScope& scope) {
  Span span = scope.Child("store.scan");
  const SpanScope child_scope = span.scope();
  scans_->Increment();
  Status last_error = Status::Ok();
  for (int attempt = 0; attempt < 4; ++attempt) {
    auto items_or = index_->Scan(start, end, child_scope);
    if (!items_or.ok()) {
      span.set_status(items_or.code());
      return items_or.status();
    }
    std::vector<ScanItem> out;
    out.reserve(items_or.value().size());
    bool retry = false;
    for (const LsmScanItem& item : items_or.value()) {
      Bytes value;
      value.reserve(item.record.total_bytes);
      for (const Locator& loc : item.record.chunks) {
        auto chunk_or = chunks_->Get(loc, child_scope);
        if (!chunk_or.ok()) {
          // Same taxonomy as Get: a dead extent cannot be read by trying again, but a
          // chunk moved by concurrent reclamation can — rescan for the fresh locator.
          if (chunk_or.code() == StatusCode::kDiskFailed) {
            span.set_status(chunk_or.code());
            return chunk_or.status();
          }
          last_error = chunk_or.status();
          retry = true;
          break;
        }
        value.insert(value.end(), chunk_or.value().begin(), chunk_or.value().end());
      }
      if (retry) {
        break;
      }
      if (value.size() != item.record.total_bytes) {
        span.set_status(StatusCode::kCorruption);
        return Status::Corruption("shard size mismatch across chunks");
      }
      out.push_back(ScanItem{item.id, std::move(value)});
    }
    if (retry) {
      YieldThread();
      continue;
    }
    return out;
  }
  SS_COVER("shard_store.scan_retry_exhausted");
  span.set_status(last_error.code());
  return last_error;
}

Result<Dependency> ShardStore::Delete(ShardId id, const SpanScope& scope) {
  Span span = scope.Child("store.delete");
  deletes_->Increment();
  // Tombstone regardless of current existence: deleting a missing shard is a no-op
  // with a dependency that persists with the next metadata flush.
  return index_->Delete(id, span.scope());
}

Result<std::vector<ShardId>> ShardStore::List() { return index_->Keys(); }

Status ShardStore::ReclaimExtent(ExtentId extent) {
  reclaims_->Increment();
  return chunks_->Reclaim(extent, this);
}

Status ShardStore::ReclaimAny() {
  std::vector<ExtentId> candidates = chunks_->ReclaimableExtents();
  if (candidates.empty()) {
    return Status::Ok();
  }
  Status status = ReclaimExtent(candidates.front());
  if (status.code() == StatusCode::kUnavailable) {
    return Status::Ok();  // raced with a pin; benign, retry later
  }
  return status;
}

Status ShardStore::FlushAll(const SpanScope& scope) {
  Span span = scope.Child("store.flush");
  const SpanScope child_scope = span.scope();
  LockGuard batch_lock(batch_mu_);
  if (index_->NeedsShutdownFlush()) {
    SS_RETURN_IF_ERROR(index_->Flush(child_scope));
  }
  Status status = scheduler_->FlushAll(child_scope);
  span.set_status(status.code());
  return status;
}

Result<bool> ShardStore::IsReferenced(const Locator& loc) {
  if (index_->MetadataReferences(loc)) {
    return true;
  }
  SS_ASSIGN_OR_RETURN(std::optional<ShardId> owner, index_->FindShardReferencing(loc));
  return owner.has_value();
}

Result<Dependency> ShardStore::UpdateReference(const Locator& old_loc, const Locator& new_loc,
                                               const Dependency& new_dep) {
  if (index_->MetadataReferences(old_loc)) {
    return index_->RelocateRunChunk(old_loc, new_loc, new_dep);
  }
  return index_->RelocateShardChunk(old_loc, new_loc, new_dep);
}

Dependency ShardStore::DropGate() { return index_->StateDurableGate(); }

}  // namespace ss
