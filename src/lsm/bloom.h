// Blocked-free classic bloom filter for LSM run pruning.
//
// Each serialized run carries one of these in its chunk header so negative lookups can
// skip the chunk read entirely (the paper's read-amplification concern, ROADMAP "LSM
// read-path upgrades"). Sized at ~10 bits per key with 7 probes (~1% false positives).
// Deserialization follows the repo-wide panic-freedom rule: arbitrary bytes must decode
// to an error, never a crash (fuzzed alongside the other serde in tests/common_test.cc
// style from tests/lsm_test.cc).

#ifndef SS_LSM_BLOOM_H_
#define SS_LSM_BLOOM_H_

#include <cstdint>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"

namespace ss {

class BloomFilter {
 public:
  // An empty filter carries no information: MayContain() answers true for every key.
  BloomFilter() = default;

  // A filter sized for `expected_keys` insertions at kBitsPerKey bits each.
  static BloomFilter ForKeys(size_t expected_keys);

  void Add(uint64_t key);
  // False means the key is definitely absent; true means "maybe present".
  bool MayContain(uint64_t key) const;

  bool empty() const { return words_.empty(); }
  size_t bit_count() const { return words_.size() * 64; }
  size_t byte_size() const { return words_.size() * 8; }
  // Serialized size (word-count prefix + words) for `expected_keys` insertions; used by
  // the run partitioner to budget chunk payloads before building the filter.
  static size_t SerializedBytesForKeys(size_t expected_keys);

  void Serialize(Writer& w) const;
  static Result<BloomFilter> Deserialize(Reader& r);

  static constexpr size_t kBitsPerKey = 10;
  static constexpr int kProbes = 7;

 private:
  std::vector<uint64_t> words_;
};

}  // namespace ss

#endif  // SS_LSM_BLOOM_H_
