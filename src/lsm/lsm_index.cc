#include "src/lsm/lsm_index.h"

#include <algorithm>
#include <set>

#include "src/chunk/chunk_format.h"
#include "src/common/cover.h"
#include "src/faults/faults.h"

namespace ss {

namespace {
// Run chunk payload format:
//   v1 (historic): [count u32][entries]
//   v2: [format u8][min_key u64][max_key u64][bloom][count u32][entries]
// The v2 header is the run's read-path pruning metadata; it is decoded without reading
// the entries on recovery (LoadRun returns both, callers use what they need).
constexpr uint8_t kRunFormatVersion = 2;
// Serialized header bytes excluding the bloom filter: format + min + max + count.
constexpr size_t kRunHeaderBaseBytes = 1 + 8 + 8 + 4;
}  // namespace

void SerializeShardRecord(const ShardRecord& record, Writer& w) {
  w.PutU64(record.total_bytes);
  w.PutU32(static_cast<uint32_t>(record.chunks.size()));
  for (const Locator& loc : record.chunks) {
    SerializeLocator(loc, w);
  }
}

Result<ShardRecord> DeserializeShardRecord(Reader& r) {
  ShardRecord record;
  SS_ASSIGN_OR_RETURN(record.total_bytes, r.GetU64());
  SS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (uint64_t{count} * 16 > r.remaining()) {
    return Status::Corruption("shard record: chunk count exceeds input");
  }
  record.chunks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(Locator loc, DeserializeLocator(r));
    record.chunks.push_back(loc);
  }
  return record;
}

LsmIndex::LsmIndex(ExtentManager* extents, ChunkStore* chunks, LsmOptions options,
                   MetricRegistry* metrics)
    : extents_(extents), chunks_(chunks), options_(options), meta_rng_(options.meta_uuid_seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  puts_ = &metrics->counter("lsm.puts");
  deletes_ = &metrics->counter("lsm.deletes");
  gets_ = &metrics->counter("lsm.gets");
  scans_ = &metrics->counter("lsm.scans");
  scan_items_ = &metrics->counter("lsm.scan.items");
  flushes_ = &metrics->counter("lsm.flushes");
  compactions_ = &metrics->counter("lsm.compactions");
  level_compactions_ = &metrics->counter("lsm.level_compactions");
  tombstones_dropped_ = &metrics->counter("lsm.tombstones_dropped");
  metadata_writes_ = &metrics->counter("lsm.metadata_writes");
  batch_applies_ = &metrics->counter("lsm.batch.applies");
  batch_items_ = &metrics->counter("lsm.batch.items");
  bloom_hits_ = &metrics->counter("lsm.bloom.hit");
  bloom_misses_ = &metrics->counter("lsm.bloom.miss");
  bloom_false_positives_ = &metrics->counter("lsm.bloom.false_positive");
}

Result<std::unique_ptr<LsmIndex>> LsmIndex::Open(ExtentManager* extents, ChunkStore* chunks,
                                                 LsmOptions options, MetricRegistry* metrics) {
  std::unique_ptr<LsmIndex> index(new LsmIndex(extents, chunks, options, metrics));
  std::vector<ExtentId> meta = extents->ExtentsOwnedBy(ExtentOwner::kLsmMetadata);
  if (meta.size() > 2) {
    return Status::Corruption("more than two LSM metadata extents");
  }
  // Formatting is idempotent so it is crash-safe: a crash may persist zero, one, or two
  // of the metadata-extent ownership records, and recovery simply claims the missing
  // ones (any records on the surviving extents remain valid).
  while (meta.size() < 2) {
    SS_ASSIGN_OR_RETURN(ExtentId claimed, extents->ClaimExtent(ExtentOwner::kLsmMetadata));
    meta.push_back(claimed);
  }
  index->meta_extents_[0] = meta[0];
  index->meta_extents_[1] = meta[1];
  if (extents->WritePointer(meta[0]) == 0 && extents->WritePointer(meta[1]) == 0) {
    return index;  // nothing written yet: fresh (or crashed-before-first-flush) state
  }

  // Recovery: scan both metadata extents for framed records; adopt the highest version.
  bool found = false;
  uint64_t best_version = 0;
  for (int m = 0; m < 2; ++m) {
    const ExtentId e = index->meta_extents_[m];
    const uint32_t wp = extents->WritePointer(e);
    uint32_t page = 0;
    while (page < wp) {
      auto head_or = extents->Read(e, page, 1);
      if (!head_or.ok()) {
        return head_or.status();
      }
      auto header_or = ParseChunkHeader(head_or.value());
      if (!header_or.ok()) {
        ++page;
        continue;
      }
      const uint32_t frame_pages = extents->PagesNeeded(ChunkFrameBytes(header_or.value().payload_len));
      if (uint64_t{page} + frame_pages > wp) {
        ++page;
        continue;
      }
      auto full_or = extents->Read(e, page, frame_pages);
      if (!full_or.ok()) {
        return full_or.status();
      }
      auto payload_or = DecodeChunkFrame(
          ByteSpan(full_or.value().data(), ChunkFrameBytes(header_or.value().payload_len)));
      if (!payload_or.ok()) {
        ++page;
        continue;
      }
      // Parse the metadata record.
      Reader r(payload_or.value());
      auto version_or = r.GetU64();
      auto seq_or = r.GetU64();
      auto count_or = r.GetU32();
      if (version_or.ok() && seq_or.ok() && count_or.ok()) {
        std::vector<std::pair<Locator, int>> run_locs;
        bool parse_ok = true;
        for (uint32_t i = 0; i < count_or.value(); ++i) {
          auto loc_or = DeserializeLocator(r);
          if (!loc_or.ok()) {
            parse_ok = false;
            break;
          }
          auto level_or = r.GetU8();
          if (!level_or.ok()) {
            parse_ok = false;
            break;
          }
          run_locs.push_back({loc_or.value(), static_cast<int>(level_or.value())});
        }
        if (parse_ok && (!found || version_or.value() > best_version)) {
          found = true;
          best_version = version_or.value();
          index->version_ = version_or.value();
          index->next_seq_ = seq_or.value();
          index->runs_.clear();
          for (const auto& [loc, level] : run_locs) {
            // Recovered runs are durable by definition.
            index->runs_.push_back(RunRef{loc, Dependency(), level, nullptr});
          }
          index->active_meta_ = m;
        }
      }
      page += frame_pages;
    }
  }
  // Rebuild each recovered run's pruning filter from its chunk header. Best effort: a
  // run whose chunk cannot be read right now keeps a null filter (lookups fall back to
  // reading the chunk), so recovery itself never fails on the rebuild.
  for (RunRef& run : index->runs_) {
    auto run_or = index->LoadRun(run.loc);
    if (run_or.ok()) {
      run.filter = run_or.value().filter;
    }
  }
  SS_COVER(found ? "lsm.recover_with_metadata" : "lsm.recover_empty");
  return index;
}

Dependency LsmIndex::Put(ShardId id, ShardRecord record, Dependency data_dep,
                         const SpanScope& scope) {
  Dependency promise = Dependency::MakePromise();
  bool want_flush = false;
  {
    Span span = scope.Child("lsm.insert");
    LockGuard lock(mu_);
    puts_->Increment();
    Entry entry;
    entry.value = std::move(record);
    entry.data_dep = data_dep;
    entry.seq = next_seq_++;
    pending_promises_.push_back({entry.seq, promise});
    memtable_[id] = std::move(entry);
    api_dirty_ = true;
    want_flush = memtable_.size() >= options_.memtable_flush_entries;
  }
  if (want_flush) {
    // Best-effort background-style flush; errors surface on the next explicit flush.
    (void)Flush(scope);
  }
  return promise.And(data_dep);
}

std::vector<Dependency> LsmIndex::ApplyBatch(std::vector<LsmBatchItem> items,
                                             bool* flush_wanted, const SpanScope& scope) {
  std::vector<Dependency> deps;
  deps.reserve(items.size());
  if (flush_wanted != nullptr) {
    *flush_wanted = false;
  }
  if (items.empty()) {
    return deps;
  }
  Span span = scope.Child("lsm.insert");
  Dependency promise = Dependency::MakePromise();
  {
    LockGuard lock(mu_);
    batch_applies_->Increment();
    batch_items_->Increment(items.size());
    uint64_t max_seq = 0;
    for (LsmBatchItem& item : items) {
      (item.record.has_value() ? puts_ : deletes_)->Increment();
      Entry entry;
      entry.value = std::move(item.record);
      entry.data_dep = item.data_dep;
      entry.seq = next_seq_++;
      max_seq = entry.seq;
      memtable_[item.id] = std::move(entry);
      deps.push_back(promise.And(item.data_dep));
    }
    // One promise at the batch's highest sequence: the covering metadata flush
    // snapshots the whole memtable under mu_, so all of the batch's entries — inserted
    // atomically above — resolve together at that single barrier.
    pending_promises_.push_back({max_seq, promise});
    api_dirty_ = true;
    if (flush_wanted != nullptr) {
      *flush_wanted = memtable_.size() >= options_.memtable_flush_entries;
    }
  }
  return deps;
}

Dependency LsmIndex::Delete(ShardId id, const SpanScope& scope) {
  Dependency promise = Dependency::MakePromise();
  {
    Span span = scope.Child("lsm.insert");
    LockGuard lock(mu_);
    deletes_->Increment();
    Entry entry;
    entry.value = std::nullopt;
    entry.seq = next_seq_++;
    pending_promises_.push_back({entry.seq, promise});
    memtable_[id] = std::move(entry);
    api_dirty_ = true;
  }
  return promise;
}

LsmIndex::BuiltRun LsmIndex::BuildRun(const RunMap& entries) {
  auto filter = std::make_shared<RunFilter>();
  filter->bloom = BloomFilter::ForKeys(entries.size());
  if (!entries.empty()) {
    filter->min_key = entries.begin()->first;
    filter->max_key = entries.rbegin()->first;
  }
  for (const auto& [id, value] : entries) {
    filter->bloom.Add(id);
  }
  Writer w;
  w.PutU8(kRunFormatVersion);
  w.PutU64(filter->min_key);
  w.PutU64(filter->max_key);
  filter->bloom.Serialize(w);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [id, value] : entries) {
    w.PutU64(id);
    w.PutU8(value.has_value() ? 1 : 0);
    if (value.has_value()) {
      SerializeShardRecord(*value, w);
    }
  }
  return BuiltRun{std::move(w).Take(), std::move(filter)};
}

Result<LsmIndex::LoadedRun> LsmIndex::DeserializeRun(ByteSpan payload) {
  Reader r(payload);
  SS_ASSIGN_OR_RETURN(uint8_t format, r.GetU8());
  if (format != kRunFormatVersion) {
    return Status::Corruption("run: unknown format version");
  }
  auto filter = std::make_shared<RunFilter>();
  SS_ASSIGN_OR_RETURN(filter->min_key, r.GetU64());
  SS_ASSIGN_OR_RETURN(filter->max_key, r.GetU64());
  SS_ASSIGN_OR_RETURN(filter->bloom, BloomFilter::Deserialize(r));
  SS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (uint64_t{count} * 9 > r.remaining()) {
    return Status::Corruption("run: entry count exceeds input");
  }
  LoadedRun run;
  for (uint32_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(ShardId id, r.GetU64());
    SS_ASSIGN_OR_RETURN(uint8_t live, r.GetU8());
    if (live != 0) {
      SS_ASSIGN_OR_RETURN(ShardRecord record, DeserializeShardRecord(r));
      run.entries[id] = std::move(record);
    } else {
      run.entries[id] = std::nullopt;
    }
  }
  run.filter = std::move(filter);
  return run;
}

Result<LsmIndex::LoadedRun> LsmIndex::LoadRun(const Locator& loc, const SpanScope& scope) {
  SS_ASSIGN_OR_RETURN(Bytes payload, chunks_->Get(loc, scope));
  return DeserializeRun(payload);
}

Result<std::optional<ShardRecord>> LsmIndex::Get(ShardId id, const SpanScope& scope) {
  Span span = scope.Child("lsm.lookup");
  const SpanScope child_scope = span.scope();
  Status last_error = Status::Ok();
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<std::pair<Locator, std::shared_ptr<const RunFilter>>> runs_snapshot;
    {
      LockGuard lock(mu_);
      gets_->Increment();
      auto it = memtable_.find(id);
      if (it != memtable_.end()) {
        return it->second.value;
      }
      for (const RunRef& run : runs_) {
        runs_snapshot.push_back({run.loc, run.filter});
      }
    }
    bool retry = false;
    for (auto rit = runs_snapshot.rbegin(); rit != runs_snapshot.rend(); ++rit) {
      const auto& [loc, filter] = *rit;
      if (filter != nullptr && !filter->MayContainKey(id)) {
        // Definitely not in this run: the chunk read is skipped entirely.
        bloom_misses_->Increment();
        continue;
      }
      auto run_or = LoadRun(loc, child_scope);
      if (!run_or.ok()) {
        // A concurrent compaction/reclamation may have invalidated the snapshot;
        // re-snapshot and retry.
        last_error = run_or.status();
        retry = true;
        break;
      }
      auto it = run_or.value().entries.find(id);
      if (it != run_or.value().entries.end()) {
        if (filter != nullptr) {
          bloom_hits_->Increment();
        }
        return it->second;
      }
      if (filter != nullptr) {
        bloom_false_positives_->Increment();
      }
    }
    if (!retry) {
      return std::optional<ShardRecord>(std::nullopt);
    }
    YieldThread();
  }
  span.set_status(last_error.code());
  return last_error;
}

Result<std::vector<LsmScanItem>> LsmIndex::Scan(ShardId start, ShardId end,
                                                const SpanScope& scope) {
  Span span = scope.Child("lsm.scan");
  const SpanScope child_scope = span.scope();
  scans_->Increment();
  if (start >= end) {
    return std::vector<LsmScanItem>{};  // empty window
  }
  using Slice = std::vector<std::pair<ShardId, std::optional<ShardRecord>>>;
  Status last_error = Status::Ok();
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<std::pair<Locator, std::shared_ptr<const RunFilter>>> runs_snapshot;
    Slice memtable_slice;
    {
      // One mu_ hold for both snapshots: the memtable overlay and the run list are a
      // consistent point-in-time view (a racing flush moves entries run-ward, which
      // only makes both copies agree).
      LockGuard lock(mu_);
      for (const RunRef& run : runs_) {
        runs_snapshot.push_back({run.loc, run.filter});
      }
      for (auto it = memtable_.lower_bound(start); it != memtable_.end() && it->first < end;
           ++it) {
        memtable_slice.push_back({it->first, it->second.value});
      }
    }
    // Sources in age order, oldest first; the memtable is appended last so the merge's
    // "highest source index wins" rule implements newest-shadows-oldest.
    std::vector<Slice> sources;
    bool retry = false;
    for (const auto& [loc, filter] : runs_snapshot) {
      if (filter != nullptr && !filter->OverlapsRange(start, end)) {
        continue;  // the run's key range misses the window: no chunk read
      }
      auto run_or = LoadRun(loc, child_scope);
      if (!run_or.ok()) {
        last_error = run_or.status();
        retry = true;
        break;
      }
      Slice slice;
      const RunMap& entries = run_or.value().entries;
      for (auto it = entries.lower_bound(start); it != entries.end() && it->first < end; ++it) {
        slice.push_back({it->first, it->second});
      }
      if (!slice.empty()) {
        sources.push_back(std::move(slice));
      }
    }
    if (retry) {
      YieldThread();
      continue;
    }
    sources.push_back(std::move(memtable_slice));

    // K-way merge iterator: repeatedly emit the smallest key across all cursors; at
    // equal keys the newest source wins and every older cursor steps past (tombstones
    // are merged like values and suppress the key at the end).
    std::vector<size_t> cursor(sources.size(), 0);
    std::vector<LsmScanItem> out;
    for (;;) {
      bool any = false;
      ShardId next_key = 0;
      for (size_t s = 0; s < sources.size(); ++s) {
        if (cursor[s] < sources[s].size()) {
          const ShardId k = sources[s][cursor[s]].first;
          if (!any || k < next_key) {
            any = true;
            next_key = k;
          }
        }
      }
      if (!any) {
        break;
      }
      std::optional<ShardRecord> value;
      for (size_t s = 0; s < sources.size(); ++s) {  // ascending age rank: last wins
        if (cursor[s] < sources[s].size() && sources[s][cursor[s]].first == next_key) {
          value = std::move(sources[s][cursor[s]].second);
          ++cursor[s];
        }
      }
      if (value.has_value()) {
        out.push_back(LsmScanItem{next_key, std::move(*value)});
      }
    }
    scan_items_->Increment(out.size());
    return out;
  }
  span.set_status(last_error.code());
  return last_error;
}

Result<std::vector<ShardId>> LsmIndex::Keys() {
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<Locator> runs_snapshot;
    std::map<ShardId, bool> live;
    {
      LockGuard lock(mu_);
      for (const RunRef& run : runs_) {
        runs_snapshot.push_back(run.loc);
      }
    }
    bool retry = false;
    for (const Locator& loc : runs_snapshot) {  // oldest first; later entries override
      auto run_or = LoadRun(loc);
      if (!run_or.ok()) {
        retry = true;
        break;
      }
      for (const auto& [id, value] : run_or.value().entries) {
        live[id] = value.has_value();
      }
    }
    if (retry) {
      YieldThread();
      continue;
    }
    {
      LockGuard lock(mu_);
      for (const auto& [id, entry] : memtable_) {
        live[id] = entry.value.has_value();
      }
    }
    std::vector<ShardId> out;
    for (const auto& [id, is_live] : live) {
      if (is_live) {
        out.push_back(id);
      }
    }
    return out;
  }
  return Status::Unavailable("keys: persistent snapshot churn");
}

Result<Dependency> LsmIndex::WriteMetadataLocked(Dependency input, const SpanScope& scope) {
  ++version_;
  Writer w;
  w.PutU64(version_);
  w.PutU64(next_seq_);
  w.PutU32(static_cast<uint32_t>(runs_.size()));
  // The record must not reach the disk before every run chunk it references is durable;
  // gating only on the newest change is unsound because the two metadata extents do not
  // share a FIFO ordering across the ping-pong switch.
  for (const RunRef& run : runs_) {
    SerializeLocator(run.loc, w);
    w.PutU8(static_cast<uint8_t>(std::min(run.level, 255)));
    input = input.And(run.dep);
  }
  Bytes frame = EncodeChunkFrame(w.bytes(), Uuid::Random(meta_rng_));
  const uint32_t pages = extents_->PagesNeeded(frame.size());

  ExtentId target = meta_extents_[active_meta_];
  if (extents_->PagesFree(target) < pages) {
    // Ping-pong: write the record to the other extent, then reset this one once the
    // new record is durable.
    const ExtentId full = target;
    target = meta_extents_[1 - active_meta_];
    auto appended_or = extents_->Append(target, frame, input, scope);
    if (!appended_or.ok()) {
      // Nothing reached the disk: give the version number back so callers that roll
      // their state back (compaction) leave the index exactly as it was.
      --version_;
      return appended_or.status();
    }
    const AppendResult appended = appended_or.value();
    extents_->Reset(full, appended.dep);
    active_meta_ = 1 - active_meta_;
    metadata_writes_->Increment();
    last_meta_dep_ = appended.dep;
    api_dirty_ = false;
    internal_dirty_ = false;
    return appended.dep;
  }
  auto appended_or = extents_->Append(target, frame, input, scope);
  if (!appended_or.ok()) {
    --version_;
    return appended_or.status();
  }
  const AppendResult appended = appended_or.value();
  metadata_writes_->Increment();
  last_meta_dep_ = appended.dep;
  api_dirty_ = false;
  internal_dirty_ = false;
  return appended.dep;
}

void LsmIndex::ResolvePromisesLocked(uint64_t max_seq, const Dependency& meta_dep) {
  auto it = pending_promises_.begin();
  while (it != pending_promises_.end()) {
    if (it->first <= max_seq) {
      it->second.ResolvePromise(meta_dep);
      it = pending_promises_.erase(it);
    } else {
      ++it;
    }
  }
}

Status LsmIndex::Flush(const SpanScope& scope) {
  Span span = scope.Child("lsm.flush");
  LockGuard flush_lock(flush_mu_);
  Status status = FlushLocked(span.scope());
  if (status.ok() && options_.level0_compaction_trigger > 0) {
    MaybeCompactLevelsLocked(span.scope());
  }
  span.set_status(status.code());
  return status;
}

std::vector<LsmIndex::RunMap> LsmIndex::PartitionRun(const RunMap& entries,
                                                     size_t max_payload) {
  // Split a run into segments whose serialized form — header, bloom filter, and
  // entries — fits one chunk each. A segment always accepts at least one entry (a
  // single oversized entry is a configuration error caught by the chunk store).
  std::vector<RunMap> segments;
  RunMap current;
  size_t entry_bytes_sum = 0;
  auto projected_bytes = [](size_t count, size_t entry_sum) {
    return kRunHeaderBaseBytes + BloomFilter::SerializedBytesForKeys(count) + entry_sum;
  };
  for (const auto& [id, value] : entries) {
    size_t entry_bytes = 8 + 1;
    if (value.has_value()) {
      entry_bytes += 8 + 4 + value->chunks.size() * 16;
    }
    if (!current.empty() &&
        projected_bytes(current.size() + 1, entry_bytes_sum + entry_bytes) > max_payload) {
      segments.push_back(std::move(current));
      current = RunMap{};
      entry_bytes_sum = 0;
    }
    current[id] = value;
    entry_bytes_sum += entry_bytes;
  }
  if (!current.empty()) {
    segments.push_back(std::move(current));
  }
  return segments;
}

Status LsmIndex::FlushLocked(const SpanScope& scope) {
  RunMap entries;
  std::vector<Dependency> data_deps;
  uint64_t max_seq = 0;
  {
    LockGuard lock(mu_);
    if (memtable_.empty()) {
      return Status::Ok();
    }
    for (const auto& [id, entry] : memtable_) {
      entries[id] = entry.value;
      data_deps.push_back(entry.data_dep);
      max_seq = std::max(max_seq, entry.seq);
    }
  }
  // Serialize into one or more level-0 run chunks (a run larger than the chunk store's
  // max payload is split into segments). No run chunk may persist before the data its
  // entries point to (Figure 2's ordering), hence the input dependency. Put pins each
  // destination extent; the pins are held until the metadata references the runs.
  // Seeded bug #14 releases them immediately, reproducing the flush/compaction-vs-
  // reclamation race.
  const Dependency data_gate = Dependency::AndAll(data_deps);
  std::vector<ChunkPutResult> puts;
  std::vector<std::shared_ptr<const RunFilter>> filters;
  Status status = Status::Ok();
  for (const RunMap& segment : PartitionRun(entries, chunks_->max_payload_bytes())) {
    BuiltRun built = BuildRun(segment);
    auto put_or = chunks_->Put(std::move(built.payload), data_gate, scope);
    if (!put_or.ok()) {
      status = put_or.status();
      break;
    }
    puts.push_back(put_or.value());
    filters.push_back(std::move(built.filter));
    if (BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
      SS_COVER("lsm.bug14_early_unpin");
      chunks_->Unpin(put_or.value().locator.extent);
    }
  }
  if (!status.ok()) {
    for (const ChunkPutResult& put : puts) {
      if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
        chunks_->Unpin(put.locator.extent);
      }
    }
    return status;
  }
  YieldThread();  // the preemption window behind bug #14

  {
    LockGuard lock(mu_);
    Dependency runs_dep;
    for (size_t i = 0; i < puts.size(); ++i) {
      runs_.push_back(RunRef{puts[i].locator, puts[i].dep, 0, filters[i]});
      runs_dep = runs_dep.And(puts[i].dep);
    }
    auto meta_or = WriteMetadataLocked(runs_dep, scope);
    if (!meta_or.ok()) {
      for (size_t i = 0; i < puts.size(); ++i) {
        runs_.pop_back();
      }
      status = meta_or.status();
    } else {
      flushes_->Increment();
      ResolvePromisesLocked(max_seq, meta_or.value());
      // Drop only the entries the run covers; concurrent overwrites stay.
      auto it = memtable_.begin();
      while (it != memtable_.end()) {
        if (it->second.seq <= max_seq) {
          it = memtable_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
    for (const ChunkPutResult& put : puts) {
      chunks_->Unpin(put.locator.extent);
    }
  }
  return status;
}

Status LsmIndex::Compact() {
  LockGuard flush_lock(flush_mu_);
  return CompactInternal(std::nullopt, {});
}

Status LsmIndex::CompactLevel(int level, const SpanScope& scope) {
  if (level < 0) {
    return Status::InvalidArgument("compact: negative level");
  }
  Span span = scope.Child("lsm.compact_level");
  LockGuard flush_lock(flush_mu_);
  Status status = CompactInternal(level, span.scope());
  span.set_status(status.code());
  return status;
}

void LsmIndex::MaybeCompactLevelsLocked(const SpanScope& scope) {
  constexpr int kMaxLevels = 8;  // bounds the cascade; fanout^8 runs is out of reach
  size_t level0 = 0;
  {
    LockGuard lock(mu_);
    for (const RunRef& run : runs_) {
      level0 += run.level == 0 ? 1 : 0;
    }
  }
  if (level0 < options_.level0_compaction_trigger) {
    return;
  }
  // Best effort: a failed background merge surfaces through metrics and the next
  // explicit compaction, never through the flush that triggered it.
  if (!CompactInternal(0, scope).ok()) {
    return;
  }
  for (int level = 1; level < kMaxLevels; ++level) {
    size_t at_level = 0;
    {
      LockGuard lock(mu_);
      for (const RunRef& run : runs_) {
        at_level += run.level == level ? 1 : 0;
      }
    }
    if (at_level <= options_.level_fanout) {
      break;
    }
    if (!CompactInternal(level, scope).ok()) {
      return;
    }
  }
}

Status LsmIndex::CompactInternal(std::optional<int> level, const SpanScope& scope) {
  Status last_error = Status::Ok();
  for (int attempt = 0; attempt < 3; ++attempt) {
    size_t begin = 0;
    size_t count = 0;
    int out_level = 1;
    bool bottom = false;
    std::vector<Locator> input_locs;
    Dependency runs_durable;
    {
      LockGuard lock(mu_);
      if (level.has_value()) {
        // Levels are non-increasing along the oldest-first run list, so the runs at
        // {level, level+1} form one contiguous block; everything before it is deeper.
        while (begin < runs_.size() && runs_[begin].level > *level + 1) {
          ++begin;
        }
        size_t end = begin;
        size_t at_level = 0;
        while (end < runs_.size() && runs_[end].level >= *level) {
          at_level += runs_[end].level == *level ? 1 : 0;
          ++end;
        }
        if (at_level == 0) {
          return Status::Ok();  // nothing to merge at this level
        }
        count = end - begin;
        out_level = *level + 1;
        // The tombstone lifetime rule: dropping is safe only when no run deeper than
        // the merge's output remains to resurrect an older version.
        bottom = begin == 0;
      } else {
        if (runs_.size() <= 1) {
          return Status::Ok();
        }
        count = runs_.size();
        out_level = std::max(1, runs_.front().level);  // full merge: output is the bottom
        bottom = true;
      }
      for (size_t i = begin; i < begin + count; ++i) {
        input_locs.push_back(runs_[i].loc);
        runs_durable = runs_durable.And(runs_[i].dep);
      }
      runs_durable = runs_durable.And(last_meta_dep_);
    }
    RunMap merged;
    Status load_error = Status::Ok();
    for (const Locator& loc : input_locs) {  // oldest -> newest
      auto run_or = LoadRun(loc, scope);
      if (!run_or.ok()) {
        load_error = run_or.status();
        break;
      }
      for (auto& [id, value] : run_or.value().entries) {
        merged[id] = std::move(value);
      }
    }
    if (!load_error.ok()) {
      // A stale snapshot (reclamation moved or truncated a run under us) can surface as
      // almost any code — InvalidArgument, NotFound, Corruption — so those get a fresh
      // snapshot and another attempt. Only a permanently failed disk aborts
      // immediately, instead of burning the remaining attempts against dead hardware.
      // No chunk has been written yet on this path, so there are no pins or orphans to
      // clean up.
      if (load_error.code() == StatusCode::kDiskFailed) {
        return load_error;
      }
      last_error = load_error;
      YieldThread();
      continue;
    }
    if (bottom || options_.seeded_bug_drop_tombstones_above_bottom) {
      if (!bottom) {
        SS_COVER("lsm.seeded_tombstone_drop_above_bottom");
      }
      size_t dropped = 0;
      auto it = merged.begin();
      while (it != merged.end()) {
        if (!it->second.has_value()) {
          it = merged.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
      tombstones_dropped_->Increment(dropped);
    }
    std::vector<ChunkPutResult> puts;
    std::vector<std::shared_ptr<const RunFilter>> filters;
    Status status = Status::Ok();
    for (const RunMap& segment : PartitionRun(merged, chunks_->max_payload_bytes())) {
      BuiltRun built = BuildRun(segment);
      auto put_or = chunks_->Put(std::move(built.payload), runs_durable, scope);
      if (!put_or.ok()) {
        status = put_or.status();
        break;
      }
      puts.push_back(put_or.value());
      filters.push_back(std::move(built.filter));
      if (BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
        SS_COVER("lsm.bug14_early_unpin");
        chunks_->Unpin(put_or.value().locator.extent);
      }
    }
    if (!status.ok()) {
      for (const ChunkPutResult& put : puts) {
        if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
          chunks_->Unpin(put.locator.extent);
        }
      }
      return status;
    }
    YieldThread();  // the preemption window behind bug #14 (paper's issue example)

    {
      LockGuard lock(mu_);
      // Membership and order of runs_ are stable while flush_mu_ is held (relocations
      // may rewrite a locator/dep in place, which the merged content does not depend
      // on), so the snapshot's [begin, begin+count) block is still the merge's input.
      std::vector<RunRef> replaced(runs_.begin() + begin, runs_.begin() + begin + count);
      Dependency runs_dep;
      std::vector<RunRef> fresh;
      for (size_t i = 0; i < puts.size(); ++i) {
        fresh.push_back(RunRef{puts[i].locator, puts[i].dep, out_level, filters[i]});
        runs_dep = runs_dep.And(puts[i].dep);
      }
      runs_.erase(runs_.begin() + begin, runs_.begin() + begin + count);
      runs_.insert(runs_.begin() + begin, fresh.begin(), fresh.end());
      auto meta_or = WriteMetadataLocked(runs_dep, scope);
      if (!meta_or.ok()) {
        // The new run list never persisted. Roll the in-memory list back to the runs
        // the durable metadata still references: keeping the unreferenced new runs
        // would let reclamation treat the OLD chunks as garbage while a post-crash
        // recovery still points at them — silent data loss.
        runs_.erase(runs_.begin() + begin, runs_.begin() + begin + fresh.size());
        runs_.insert(runs_.begin() + begin, replaced.begin(), replaced.end());
        status = meta_or.status();
      } else if (level.has_value()) {
        level_compactions_->Increment();
      } else {
        compactions_->Increment();
      }
    }
    if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
      for (const ChunkPutResult& put : puts) {
        chunks_->Unpin(put.locator.extent);
      }
    }
    return status;
  }
  return last_error;
}

bool LsmIndex::NeedsShutdownFlush() const {
  LockGuard lock(mu_);
  if (BugEnabled(SeededBug::kShutdownMetadataSkipAfterReset)) {
    // Buggy path: trusts the API-mutation flag, missing memtables that only contain
    // internal mutations (e.g. reclamation relocations after an extent reset).
    SS_COVER("lsm.bug3_shutdown_flag");
    return api_dirty_;
  }
  return !memtable_.empty() || api_dirty_ || internal_dirty_;
}

Result<std::optional<ShardId>> LsmIndex::FindShardReferencing(const Locator& loc) {
  // Memtable first: most recent state wins.
  std::vector<Locator> runs_snapshot;
  {
    LockGuard lock(mu_);
    for (const auto& [id, entry] : memtable_) {
      if (entry.value.has_value()) {
        for (const Locator& c : entry.value->chunks) {
          if (c == loc) {
            return std::optional<ShardId>(id);
          }
        }
      }
    }
    for (const RunRef& run : runs_) {
      runs_snapshot.push_back(run.loc);
    }
  }
  // Then the runs, newest first. A shard's newest entry (memtable or newer run,
  // including tombstones) shadows older entries: a chunk referenced only by a
  // superseded record is garbage.
  std::set<ShardId> decided;
  {
    LockGuard lock(mu_);
    for (const auto& [id, entry] : memtable_) {
      decided.insert(id);
    }
  }
  for (auto rit = runs_snapshot.rbegin(); rit != runs_snapshot.rend(); ++rit) {
    SS_ASSIGN_OR_RETURN(LoadedRun run, LoadRun(*rit));
    for (const auto& [id, value] : run.entries) {
      if (!decided.insert(id).second) {
        continue;  // shadowed by a newer entry
      }
      if (!value.has_value()) {
        continue;  // tombstone: this shard references nothing
      }
      for (const Locator& c : value->chunks) {
        if (c == loc) {
          return std::optional<ShardId>(id);
        }
      }
    }
  }
  return std::optional<ShardId>(std::nullopt);
}

bool LsmIndex::MetadataReferences(const Locator& loc) const {
  LockGuard lock(mu_);
  for (const RunRef& run : runs_) {
    if (run.loc == loc) {
      return true;
    }
  }
  return false;
}

Result<Dependency> LsmIndex::RelocateShardChunk(const Locator& old_loc, const Locator& new_loc,
                                                const Dependency& new_dep) {
  SS_ASSIGN_OR_RETURN(std::optional<ShardId> owner, FindShardReferencing(old_loc));
  if (!owner.has_value()) {
    // The reference disappeared concurrently (overwrite/delete); nothing to update.
    return Dependency();
  }
  // Fetch the current record and rewrite the locator.
  SS_ASSIGN_OR_RETURN(std::optional<ShardRecord> record_opt, Get(*owner));
  if (!record_opt.has_value()) {
    return Dependency();
  }
  ShardRecord record = std::move(*record_opt);
  bool replaced = false;
  for (Locator& c : record.chunks) {
    if (c == old_loc) {
      c = new_loc;
      replaced = true;
    }
  }
  if (!replaced) {
    return Dependency();
  }
  Dependency promise = Dependency::MakePromise();
  {
    LockGuard lock(mu_);
    Entry entry;
    entry.value = std::move(record);
    entry.data_dep = new_dep;
    entry.seq = next_seq_++;
    pending_promises_.push_back({entry.seq, promise});
    memtable_[*owner] = std::move(entry);
    internal_dirty_ = true;  // deliberately *not* api_dirty_ (see bug #3)
  }
  SS_COVER("lsm.relocate_shard_chunk");
  return promise;
}

Result<Dependency> LsmIndex::RelocateRunChunk(const Locator& old_loc, const Locator& new_loc,
                                              const Dependency& new_dep) {
  LockGuard lock(mu_);
  bool replaced = false;
  for (RunRef& run : runs_) {
    if (run.loc == old_loc) {
      run.loc = new_loc;
      run.dep = new_dep;  // the evacuated copy is what the metadata now references
      replaced = true;
    }
  }
  if (!replaced) {
    return Dependency();
  }
  SS_COVER("lsm.relocate_run_chunk");
  // The new run list must be durable before the old chunk's extent is reset; the new
  // metadata record is gated on the evacuated copy.
  return WriteMetadataLocked(new_dep);
}

Dependency LsmIndex::StateDurableGate() {
  LockGuard lock(mu_);
  if (memtable_.empty()) {
    return last_meta_dep_;
  }
  Dependency promise = Dependency::MakePromise();
  pending_promises_.push_back({next_seq_ - 1, promise});
  return promise.And(last_meta_dep_);
}

size_t LsmIndex::MemtableEntries() const {
  LockGuard lock(mu_);
  return memtable_.size();
}

size_t LsmIndex::RunCount() const {
  LockGuard lock(mu_);
  return runs_.size();
}

size_t LsmIndex::RunCountAtLevel(int level) const {
  LockGuard lock(mu_);
  size_t count = 0;
  for (const RunRef& run : runs_) {
    count += run.level == level ? 1 : 0;
  }
  return count;
}

std::vector<int> LsmIndex::RunLevels() const {
  LockGuard lock(mu_);
  std::vector<int> out;
  out.reserve(runs_.size());
  for (const RunRef& run : runs_) {
    out.push_back(run.level);
  }
  return out;
}

uint64_t LsmIndex::MetadataVersion() const {
  LockGuard lock(mu_);
  return version_;
}

std::vector<Locator> LsmIndex::RunLocators() const {
  LockGuard lock(mu_);
  std::vector<Locator> out;
  out.reserve(runs_.size());
  for (const RunRef& run : runs_) {
    out.push_back(run.loc);
  }
  return out;
}

}  // namespace ss
