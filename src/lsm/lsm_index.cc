#include "src/lsm/lsm_index.h"

#include <algorithm>
#include <set>

#include "src/chunk/chunk_format.h"
#include "src/common/cover.h"
#include "src/faults/faults.h"

namespace ss {

void SerializeShardRecord(const ShardRecord& record, Writer& w) {
  w.PutU64(record.total_bytes);
  w.PutU32(static_cast<uint32_t>(record.chunks.size()));
  for (const Locator& loc : record.chunks) {
    SerializeLocator(loc, w);
  }
}

Result<ShardRecord> DeserializeShardRecord(Reader& r) {
  ShardRecord record;
  SS_ASSIGN_OR_RETURN(record.total_bytes, r.GetU64());
  SS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (uint64_t{count} * 16 > r.remaining()) {
    return Status::Corruption("shard record: chunk count exceeds input");
  }
  record.chunks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(Locator loc, DeserializeLocator(r));
    record.chunks.push_back(loc);
  }
  return record;
}

LsmIndex::LsmIndex(ExtentManager* extents, ChunkStore* chunks, LsmOptions options,
                   MetricRegistry* metrics)
    : extents_(extents), chunks_(chunks), options_(options), meta_rng_(options.meta_uuid_seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  puts_ = &metrics->counter("lsm.puts");
  deletes_ = &metrics->counter("lsm.deletes");
  gets_ = &metrics->counter("lsm.gets");
  flushes_ = &metrics->counter("lsm.flushes");
  compactions_ = &metrics->counter("lsm.compactions");
  metadata_writes_ = &metrics->counter("lsm.metadata_writes");
  batch_applies_ = &metrics->counter("lsm.batch.applies");
  batch_items_ = &metrics->counter("lsm.batch.items");
}

Result<std::unique_ptr<LsmIndex>> LsmIndex::Open(ExtentManager* extents, ChunkStore* chunks,
                                                 LsmOptions options, MetricRegistry* metrics) {
  std::unique_ptr<LsmIndex> index(new LsmIndex(extents, chunks, options, metrics));
  std::vector<ExtentId> meta = extents->ExtentsOwnedBy(ExtentOwner::kLsmMetadata);
  if (meta.size() > 2) {
    return Status::Corruption("more than two LSM metadata extents");
  }
  // Formatting is idempotent so it is crash-safe: a crash may persist zero, one, or two
  // of the metadata-extent ownership records, and recovery simply claims the missing
  // ones (any records on the surviving extents remain valid).
  while (meta.size() < 2) {
    SS_ASSIGN_OR_RETURN(ExtentId claimed, extents->ClaimExtent(ExtentOwner::kLsmMetadata));
    meta.push_back(claimed);
  }
  index->meta_extents_[0] = meta[0];
  index->meta_extents_[1] = meta[1];
  if (extents->WritePointer(meta[0]) == 0 && extents->WritePointer(meta[1]) == 0) {
    return index;  // nothing written yet: fresh (or crashed-before-first-flush) state
  }

  // Recovery: scan both metadata extents for framed records; adopt the highest version.
  bool found = false;
  uint64_t best_version = 0;
  for (int m = 0; m < 2; ++m) {
    const ExtentId e = index->meta_extents_[m];
    const uint32_t wp = extents->WritePointer(e);
    uint32_t page = 0;
    while (page < wp) {
      auto head_or = extents->Read(e, page, 1);
      if (!head_or.ok()) {
        return head_or.status();
      }
      auto header_or = ParseChunkHeader(head_or.value());
      if (!header_or.ok()) {
        ++page;
        continue;
      }
      const uint32_t frame_pages = extents->PagesNeeded(ChunkFrameBytes(header_or.value().payload_len));
      if (uint64_t{page} + frame_pages > wp) {
        ++page;
        continue;
      }
      auto full_or = extents->Read(e, page, frame_pages);
      if (!full_or.ok()) {
        return full_or.status();
      }
      auto payload_or = DecodeChunkFrame(
          ByteSpan(full_or.value().data(), ChunkFrameBytes(header_or.value().payload_len)));
      if (!payload_or.ok()) {
        ++page;
        continue;
      }
      // Parse the metadata record.
      Reader r(payload_or.value());
      auto version_or = r.GetU64();
      auto seq_or = r.GetU64();
      auto count_or = r.GetU32();
      if (version_or.ok() && seq_or.ok() && count_or.ok()) {
        std::vector<Locator> run_locs;
        bool parse_ok = true;
        for (uint32_t i = 0; i < count_or.value(); ++i) {
          auto loc_or = DeserializeLocator(r);
          if (!loc_or.ok()) {
            parse_ok = false;
            break;
          }
          run_locs.push_back(loc_or.value());
        }
        if (parse_ok && (!found || version_or.value() > best_version)) {
          found = true;
          best_version = version_or.value();
          index->version_ = version_or.value();
          index->next_seq_ = seq_or.value();
          index->runs_.clear();
          for (const Locator& loc : run_locs) {
            // Recovered runs are durable by definition.
            index->runs_.push_back(RunRef{loc, Dependency()});
          }
          index->active_meta_ = m;
        }
      }
      page += frame_pages;
    }
  }
  SS_COVER(found ? "lsm.recover_with_metadata" : "lsm.recover_empty");
  return index;
}

Dependency LsmIndex::Put(ShardId id, ShardRecord record, Dependency data_dep,
                         const SpanScope& scope) {
  Dependency promise = Dependency::MakePromise();
  bool want_flush = false;
  {
    Span span = scope.Child("lsm.insert");
    LockGuard lock(mu_);
    puts_->Increment();
    Entry entry;
    entry.value = std::move(record);
    entry.data_dep = data_dep;
    entry.seq = next_seq_++;
    pending_promises_.push_back({entry.seq, promise});
    memtable_[id] = std::move(entry);
    api_dirty_ = true;
    want_flush = memtable_.size() >= options_.memtable_flush_entries;
  }
  if (want_flush) {
    // Best-effort background-style flush; errors surface on the next explicit flush.
    (void)Flush(scope);
  }
  return promise.And(data_dep);
}

std::vector<Dependency> LsmIndex::ApplyBatch(std::vector<LsmBatchItem> items,
                                             bool* flush_wanted, const SpanScope& scope) {
  std::vector<Dependency> deps;
  deps.reserve(items.size());
  if (flush_wanted != nullptr) {
    *flush_wanted = false;
  }
  if (items.empty()) {
    return deps;
  }
  Span span = scope.Child("lsm.insert");
  Dependency promise = Dependency::MakePromise();
  {
    LockGuard lock(mu_);
    batch_applies_->Increment();
    batch_items_->Increment(items.size());
    uint64_t max_seq = 0;
    for (LsmBatchItem& item : items) {
      (item.record.has_value() ? puts_ : deletes_)->Increment();
      Entry entry;
      entry.value = std::move(item.record);
      entry.data_dep = item.data_dep;
      entry.seq = next_seq_++;
      max_seq = entry.seq;
      memtable_[item.id] = std::move(entry);
      deps.push_back(promise.And(item.data_dep));
    }
    // One promise at the batch's highest sequence: the covering metadata flush
    // snapshots the whole memtable under mu_, so all of the batch's entries — inserted
    // atomically above — resolve together at that single barrier.
    pending_promises_.push_back({max_seq, promise});
    api_dirty_ = true;
    if (flush_wanted != nullptr) {
      *flush_wanted = memtable_.size() >= options_.memtable_flush_entries;
    }
  }
  return deps;
}

Dependency LsmIndex::Delete(ShardId id, const SpanScope& scope) {
  Dependency promise = Dependency::MakePromise();
  {
    Span span = scope.Child("lsm.insert");
    LockGuard lock(mu_);
    deletes_->Increment();
    Entry entry;
    entry.value = std::nullopt;
    entry.seq = next_seq_++;
    pending_promises_.push_back({entry.seq, promise});
    memtable_[id] = std::move(entry);
    api_dirty_ = true;
  }
  return promise;
}

Bytes LsmIndex::SerializeRun(const RunMap& entries) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [id, value] : entries) {
    w.PutU64(id);
    w.PutU8(value.has_value() ? 1 : 0);
    if (value.has_value()) {
      SerializeShardRecord(*value, w);
    }
  }
  return std::move(w).Take();
}

Result<LsmIndex::RunMap> LsmIndex::DeserializeRun(ByteSpan payload) {
  Reader r(payload);
  SS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (uint64_t{count} * 9 > r.remaining()) {
    return Status::Corruption("run: entry count exceeds input");
  }
  RunMap entries;
  for (uint32_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(ShardId id, r.GetU64());
    SS_ASSIGN_OR_RETURN(uint8_t live, r.GetU8());
    if (live != 0) {
      SS_ASSIGN_OR_RETURN(ShardRecord record, DeserializeShardRecord(r));
      entries[id] = std::move(record);
    } else {
      entries[id] = std::nullopt;
    }
  }
  return entries;
}

Result<LsmIndex::RunMap> LsmIndex::LoadRun(const Locator& loc, const SpanScope& scope) {
  SS_ASSIGN_OR_RETURN(Bytes payload, chunks_->Get(loc, scope));
  return DeserializeRun(payload);
}

Result<std::optional<ShardRecord>> LsmIndex::Get(ShardId id, const SpanScope& scope) {
  Span span = scope.Child("lsm.lookup");
  const SpanScope child_scope = span.scope();
  Status last_error = Status::Ok();
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<Locator> runs_snapshot;
    {
      LockGuard lock(mu_);
      gets_->Increment();
      auto it = memtable_.find(id);
      if (it != memtable_.end()) {
        return it->second.value;
      }
      for (const RunRef& run : runs_) {
        runs_snapshot.push_back(run.loc);
      }
    }
    bool retry = false;
    for (auto rit = runs_snapshot.rbegin(); rit != runs_snapshot.rend(); ++rit) {
      auto run_or = LoadRun(*rit, child_scope);
      if (!run_or.ok()) {
        // A concurrent compaction/reclamation may have invalidated the snapshot;
        // re-snapshot and retry.
        last_error = run_or.status();
        retry = true;
        break;
      }
      auto it = run_or.value().find(id);
      if (it != run_or.value().end()) {
        return it->second;
      }
    }
    if (!retry) {
      return std::optional<ShardRecord>(std::nullopt);
    }
    YieldThread();
  }
  span.set_status(last_error.code());
  return last_error;
}

Result<std::vector<ShardId>> LsmIndex::Keys() {
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<Locator> runs_snapshot;
    std::map<ShardId, bool> live;
    {
      LockGuard lock(mu_);
      for (const RunRef& run : runs_) {
        runs_snapshot.push_back(run.loc);
      }
    }
    bool retry = false;
    for (const Locator& loc : runs_snapshot) {  // oldest first; later entries override
      auto run_or = LoadRun(loc);
      if (!run_or.ok()) {
        retry = true;
        break;
      }
      for (const auto& [id, value] : run_or.value()) {
        live[id] = value.has_value();
      }
    }
    if (retry) {
      YieldThread();
      continue;
    }
    {
      LockGuard lock(mu_);
      for (const auto& [id, entry] : memtable_) {
        live[id] = entry.value.has_value();
      }
    }
    std::vector<ShardId> out;
    for (const auto& [id, is_live] : live) {
      if (is_live) {
        out.push_back(id);
      }
    }
    return out;
  }
  return Status::Unavailable("keys: persistent snapshot churn");
}

Result<Dependency> LsmIndex::WriteMetadataLocked(Dependency input, const SpanScope& scope) {
  ++version_;
  Writer w;
  w.PutU64(version_);
  w.PutU64(next_seq_);
  w.PutU32(static_cast<uint32_t>(runs_.size()));
  // The record must not reach the disk before every run chunk it references is durable;
  // gating only on the newest change is unsound because the two metadata extents do not
  // share a FIFO ordering across the ping-pong switch.
  for (const RunRef& run : runs_) {
    SerializeLocator(run.loc, w);
    input = input.And(run.dep);
  }
  Bytes frame = EncodeChunkFrame(w.bytes(), Uuid::Random(meta_rng_));
  const uint32_t pages = extents_->PagesNeeded(frame.size());

  ExtentId target = meta_extents_[active_meta_];
  if (extents_->PagesFree(target) < pages) {
    // Ping-pong: write the record to the other extent, then reset this one once the
    // new record is durable.
    const ExtentId full = target;
    target = meta_extents_[1 - active_meta_];
    SS_ASSIGN_OR_RETURN(AppendResult appended, extents_->Append(target, frame, input, scope));
    extents_->Reset(full, appended.dep);
    active_meta_ = 1 - active_meta_;
    metadata_writes_->Increment();
    last_meta_dep_ = appended.dep;
    api_dirty_ = false;
    internal_dirty_ = false;
    return appended.dep;
  }
  SS_ASSIGN_OR_RETURN(AppendResult appended, extents_->Append(target, frame, input, scope));
  metadata_writes_->Increment();
  last_meta_dep_ = appended.dep;
  api_dirty_ = false;
  internal_dirty_ = false;
  return appended.dep;
}

void LsmIndex::ResolvePromisesLocked(uint64_t max_seq, const Dependency& meta_dep) {
  auto it = pending_promises_.begin();
  while (it != pending_promises_.end()) {
    if (it->first <= max_seq) {
      it->second.ResolvePromise(meta_dep);
      it = pending_promises_.erase(it);
    } else {
      ++it;
    }
  }
}

Status LsmIndex::Flush(const SpanScope& scope) {
  Span span = scope.Child("lsm.flush");
  LockGuard flush_lock(flush_mu_);
  Status status = FlushLocked(span.scope());
  span.set_status(status.code());
  return status;
}

std::vector<LsmIndex::RunMap> LsmIndex::PartitionRun(const RunMap& entries,
                                                     size_t max_payload) {
  // Split a run into segments whose serialized form fits one chunk each. A segment
  // always accepts at least one entry (a single oversized entry is a configuration
  // error caught by the chunk store).
  std::vector<RunMap> segments;
  RunMap current;
  size_t current_bytes = 4;  // entry-count prefix
  for (const auto& [id, value] : entries) {
    size_t entry_bytes = 8 + 1;
    if (value.has_value()) {
      entry_bytes += 8 + 4 + value->chunks.size() * 16;
    }
    if (!current.empty() && current_bytes + entry_bytes > max_payload) {
      segments.push_back(std::move(current));
      current = RunMap{};
      current_bytes = 4;
    }
    current[id] = value;
    current_bytes += entry_bytes;
  }
  if (!current.empty()) {
    segments.push_back(std::move(current));
  }
  return segments;
}

Status LsmIndex::FlushLocked(const SpanScope& scope) {
  RunMap entries;
  std::vector<Dependency> data_deps;
  uint64_t max_seq = 0;
  {
    LockGuard lock(mu_);
    if (memtable_.empty()) {
      return Status::Ok();
    }
    for (const auto& [id, entry] : memtable_) {
      entries[id] = entry.value;
      data_deps.push_back(entry.data_dep);
      max_seq = std::max(max_seq, entry.seq);
    }
  }
  // Serialize into one or more run chunks (a run larger than the chunk store's max
  // payload is split into segments). No run chunk may persist before the data its
  // entries point to (Figure 2's ordering), hence the input dependency. Put pins each
  // destination extent; the pins are held until the metadata references the runs.
  // Seeded bug #14 releases them immediately, reproducing the flush/compaction-vs-
  // reclamation race.
  const Dependency data_gate = Dependency::AndAll(data_deps);
  std::vector<ChunkPutResult> puts;
  Status status = Status::Ok();
  for (const RunMap& segment : PartitionRun(entries, chunks_->max_payload_bytes())) {
    auto put_or = chunks_->Put(SerializeRun(segment), data_gate, scope);
    if (!put_or.ok()) {
      status = put_or.status();
      break;
    }
    puts.push_back(put_or.value());
    if (BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
      SS_COVER("lsm.bug14_early_unpin");
      chunks_->Unpin(put_or.value().locator.extent);
    }
  }
  if (!status.ok()) {
    for (const ChunkPutResult& put : puts) {
      if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
        chunks_->Unpin(put.locator.extent);
      }
    }
    return status;
  }
  YieldThread();  // the preemption window behind bug #14

  {
    LockGuard lock(mu_);
    Dependency runs_dep;
    for (const ChunkPutResult& put : puts) {
      runs_.push_back(RunRef{put.locator, put.dep});
      runs_dep = runs_dep.And(put.dep);
    }
    auto meta_or = WriteMetadataLocked(runs_dep, scope);
    if (!meta_or.ok()) {
      for (size_t i = 0; i < puts.size(); ++i) {
        runs_.pop_back();
      }
      status = meta_or.status();
    } else {
      flushes_->Increment();
      ResolvePromisesLocked(max_seq, meta_or.value());
      // Drop only the entries the run covers; concurrent overwrites stay.
      auto it = memtable_.begin();
      while (it != memtable_.end()) {
        if (it->second.seq <= max_seq) {
          it = memtable_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
    for (const ChunkPutResult& put : puts) {
      chunks_->Unpin(put.locator.extent);
    }
  }
  return status;
}

Status LsmIndex::Compact() {
  LockGuard flush_lock(flush_mu_);
  Status last_error = Status::Ok();
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::vector<Locator> runs_snapshot;
    Dependency runs_durable;
    {
      LockGuard lock(mu_);
      if (runs_.size() <= 1) {
        return Status::Ok();
      }
      for (const RunRef& run : runs_) {
        runs_snapshot.push_back(run.loc);
        runs_durable = runs_durable.And(run.dep);
      }
      runs_durable = runs_durable.And(last_meta_dep_);
    }
    RunMap merged;
    bool retry = false;
    for (const Locator& loc : runs_snapshot) {  // oldest -> newest
      auto run_or = LoadRun(loc);
      if (!run_or.ok()) {
        last_error = run_or.status();
        retry = true;
        break;
      }
      for (auto& [id, value] : run_or.value()) {
        merged[id] = std::move(value);
      }
    }
    if (retry) {
      YieldThread();
      continue;
    }
    // Full-merge compaction may drop tombstones outright.
    auto it = merged.begin();
    while (it != merged.end()) {
      if (!it->second.has_value()) {
        it = merged.erase(it);
      } else {
        ++it;
      }
    }
    std::vector<ChunkPutResult> puts;
    Status status = Status::Ok();
    for (const RunMap& segment : PartitionRun(merged, chunks_->max_payload_bytes())) {
      auto put_or = chunks_->Put(SerializeRun(segment), runs_durable);
      if (!put_or.ok()) {
        status = put_or.status();
        break;
      }
      puts.push_back(put_or.value());
      if (BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
        SS_COVER("lsm.bug14_early_unpin");
        chunks_->Unpin(put_or.value().locator.extent);
      }
    }
    if (!status.ok()) {
      for (const ChunkPutResult& put : puts) {
        if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
          chunks_->Unpin(put.locator.extent);
        }
      }
      return status;
    }
    YieldThread();  // the preemption window behind bug #14 (paper's issue example)

    {
      LockGuard lock(mu_);
      // Runs cannot have grown (flush_mu_ is held); relocations may have changed
      // locators, but the merged content is unaffected.
      runs_.clear();
      Dependency runs_dep;
      for (const ChunkPutResult& put : puts) {
        runs_.push_back(RunRef{put.locator, put.dep});
        runs_dep = runs_dep.And(put.dep);
      }
      auto meta_or = WriteMetadataLocked(runs_dep);
      if (!meta_or.ok()) {
        status = meta_or.status();
      } else {
        compactions_->Increment();
      }
    }
    if (!BugEnabled(SeededBug::kCompactReclaimMetadataRace)) {
      for (const ChunkPutResult& put : puts) {
        chunks_->Unpin(put.locator.extent);
      }
    }
    return status;
  }
  return last_error;
}

bool LsmIndex::NeedsShutdownFlush() const {
  LockGuard lock(mu_);
  if (BugEnabled(SeededBug::kShutdownMetadataSkipAfterReset)) {
    // Buggy path: trusts the API-mutation flag, missing memtables that only contain
    // internal mutations (e.g. reclamation relocations after an extent reset).
    SS_COVER("lsm.bug3_shutdown_flag");
    return api_dirty_;
  }
  return !memtable_.empty() || api_dirty_ || internal_dirty_;
}

Result<std::optional<ShardId>> LsmIndex::FindShardReferencing(const Locator& loc) {
  // Memtable first: most recent state wins.
  std::vector<Locator> runs_snapshot;
  {
    LockGuard lock(mu_);
    for (const auto& [id, entry] : memtable_) {
      if (entry.value.has_value()) {
        for (const Locator& c : entry.value->chunks) {
          if (c == loc) {
            return std::optional<ShardId>(id);
          }
        }
      }
    }
    for (const RunRef& run : runs_) {
      runs_snapshot.push_back(run.loc);
    }
  }
  // Then the runs, newest first. A shard's newest entry (memtable or newer run,
  // including tombstones) shadows older entries: a chunk referenced only by a
  // superseded record is garbage.
  std::set<ShardId> decided;
  {
    LockGuard lock(mu_);
    for (const auto& [id, entry] : memtable_) {
      decided.insert(id);
    }
  }
  for (auto rit = runs_snapshot.rbegin(); rit != runs_snapshot.rend(); ++rit) {
    SS_ASSIGN_OR_RETURN(RunMap run, LoadRun(*rit));
    for (const auto& [id, value] : run) {
      if (!decided.insert(id).second) {
        continue;  // shadowed by a newer entry
      }
      if (!value.has_value()) {
        continue;  // tombstone: this shard references nothing
      }
      for (const Locator& c : value->chunks) {
        if (c == loc) {
          return std::optional<ShardId>(id);
        }
      }
    }
  }
  return std::optional<ShardId>(std::nullopt);
}

bool LsmIndex::MetadataReferences(const Locator& loc) const {
  LockGuard lock(mu_);
  for (const RunRef& run : runs_) {
    if (run.loc == loc) {
      return true;
    }
  }
  return false;
}

Result<Dependency> LsmIndex::RelocateShardChunk(const Locator& old_loc, const Locator& new_loc,
                                                const Dependency& new_dep) {
  SS_ASSIGN_OR_RETURN(std::optional<ShardId> owner, FindShardReferencing(old_loc));
  if (!owner.has_value()) {
    // The reference disappeared concurrently (overwrite/delete); nothing to update.
    return Dependency();
  }
  // Fetch the current record and rewrite the locator.
  SS_ASSIGN_OR_RETURN(std::optional<ShardRecord> record_opt, Get(*owner));
  if (!record_opt.has_value()) {
    return Dependency();
  }
  ShardRecord record = std::move(*record_opt);
  bool replaced = false;
  for (Locator& c : record.chunks) {
    if (c == old_loc) {
      c = new_loc;
      replaced = true;
    }
  }
  if (!replaced) {
    return Dependency();
  }
  Dependency promise = Dependency::MakePromise();
  {
    LockGuard lock(mu_);
    Entry entry;
    entry.value = std::move(record);
    entry.data_dep = new_dep;
    entry.seq = next_seq_++;
    pending_promises_.push_back({entry.seq, promise});
    memtable_[*owner] = std::move(entry);
    internal_dirty_ = true;  // deliberately *not* api_dirty_ (see bug #3)
  }
  SS_COVER("lsm.relocate_shard_chunk");
  return promise;
}

Result<Dependency> LsmIndex::RelocateRunChunk(const Locator& old_loc, const Locator& new_loc,
                                              const Dependency& new_dep) {
  LockGuard lock(mu_);
  bool replaced = false;
  for (RunRef& run : runs_) {
    if (run.loc == old_loc) {
      run.loc = new_loc;
      run.dep = new_dep;  // the evacuated copy is what the metadata now references
      replaced = true;
    }
  }
  if (!replaced) {
    return Dependency();
  }
  SS_COVER("lsm.relocate_run_chunk");
  // The new run list must be durable before the old chunk's extent is reset; the new
  // metadata record is gated on the evacuated copy.
  return WriteMetadataLocked(new_dep);
}

Dependency LsmIndex::StateDurableGate() {
  LockGuard lock(mu_);
  if (memtable_.empty()) {
    return last_meta_dep_;
  }
  Dependency promise = Dependency::MakePromise();
  pending_promises_.push_back({next_seq_ - 1, promise});
  return promise.And(last_meta_dep_);
}

size_t LsmIndex::MemtableEntries() const {
  LockGuard lock(mu_);
  return memtable_.size();
}

size_t LsmIndex::RunCount() const {
  LockGuard lock(mu_);
  return runs_.size();
}

uint64_t LsmIndex::MetadataVersion() const {
  LockGuard lock(mu_);
  return version_;
}

std::vector<Locator> LsmIndex::RunLocators() const {
  LockGuard lock(mu_);
  std::vector<Locator> out;
  out.reserve(runs_.size());
  for (const RunRef& run : runs_) {
    out.push_back(run.loc);
  }
  return out;
}

}  // namespace ss
