// Persistent LSM-tree index (paper section 2.1).
//
// Maps shard identifiers to shard records (the list of chunk locators holding the
// shard's data, WiscKey-style). Structure:
//   * a sorted in-memory memtable of recent mutations (values and tombstones),
//   * immutable sorted runs organized into levels (level 0 = freshest flushes, higher
//     levels = older, more-merged data), each run serialized into a single chunk written
//     through the chunk store (so the index's own storage is subject to reclamation),
//   * a metadata record — the run list with per-run levels + version — framed and
//     appended to one of two reserved metadata extents (ping-pong: when one fills, the
//     record moves to the other and the full one is reset once the move is durable).
//
// Every run chunk carries a header with the run's key range and a bloom filter, rebuilt
// into memory on recovery, so negative lookups and out-of-range scans skip the chunk
// read entirely.
//
// Tombstone lifetime rule: a partial merge (CompactLevel) may drop a tombstone ONLY
// when its output lands at the bottom level — otherwise an older version of the key in
// a deeper run would resurrect. Full merges see every run, so their output is by
// definition the bottom. See DESIGN.md "LSM read path".
//
// Dependency protocol (Figure 2): Put returns a *promise* dependency that resolves when
// a metadata record covering the entry persists. The run chunk's write is gated on the
// entries' data dependencies and the metadata record on the run write, so an index
// entry is never durable before the data it points to — which makes "visible after
// recovery" equivalent to "dependency reports persistent", the property the crash
// checker enforces.
//
// Seeded bugs hosted here: #3 (shutdown skips the flush when only internal mutations —
// e.g. reclamation relocations — are pending) and #14 (flush/compaction write their run
// chunk without pinning its extent). A third, option-gated seeded bug
// (LsmOptions::seeded_bug_drop_tombstones_above_bottom) re-enables unconditional
// tombstone dropping in partial merges; the PBT/MC harnesses exist to catch it.

#ifndef SS_LSM_LSM_INDEX_H_
#define SS_LSM_LSM_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/chunk/chunk_store.h"
#include "src/obs/metrics.h"
#include "src/chunk/locator.h"
#include "src/common/rng.h"
#include "src/dep/dependency.h"
#include "src/lsm/bloom.h"
#include "src/superblock/extent_manager.h"
#include "src/sync/sync.h"

namespace ss {

using ShardId = uint64_t;

// The index's value type: where a shard's data lives.
struct ShardRecord {
  uint64_t total_bytes = 0;
  std::vector<Locator> chunks;

  friend bool operator==(const ShardRecord& a, const ShardRecord& b) {
    return a.total_bytes == b.total_bytes && a.chunks == b.chunks;
  }
};

void SerializeShardRecord(const ShardRecord& record, Writer& w);
Result<ShardRecord> DeserializeShardRecord(Reader& r);

struct LsmOptions {
  // Flush automatically once the memtable holds this many entries (SIZE_MAX = manual
  // flushing only, which the deterministic test harnesses use).
  size_t memtable_flush_entries = SIZE_MAX;
  uint64_t meta_uuid_seed = 0x1e7a;
  // Leveled compaction trigger: when > 0, a successful flush that leaves at least this
  // many level-0 runs kicks off CompactLevel(0) inline (still under flush_mu_),
  // cascading downward while any deeper level holds more than `level_fanout` runs.
  // 0 = manual compaction only, which keeps the deterministic harnesses in charge.
  size_t level0_compaction_trigger = 0;
  size_t level_fanout = 4;
  // Seeded bug (option-gated like the cluster tier's read-repair bug rather than a
  // Figure-5 registry entry): partial merges drop tombstones even when deeper levels
  // remain, resurrecting deleted shards. Exists to prove the harnesses catch the class.
  bool seeded_bug_drop_tombstones_above_bottom = false;
};

// One mutation of a batched index commit (see LsmIndex::ApplyBatch).
struct LsmBatchItem {
  ShardId id = 0;
  std::optional<ShardRecord> record;  // nullopt = tombstone
  Dependency data_dep;                // trivially persistent for tombstones
};

// A run's read-path pruning metadata: key range + bloom filter, decoded from the run
// chunk's header (or rebuilt from it on recovery). Shared so snapshots are cheap.
struct RunFilter {
  ShardId min_key = 0;
  ShardId max_key = 0;
  BloomFilter bloom;

  bool MayContainKey(ShardId id) const {
    return id >= min_key && id <= max_key && bloom.MayContain(id);
  }
  // Whether the run's key range intersects the half-open scan window [start, end).
  bool OverlapsRange(ShardId start, ShardId end) const {
    return start < end && min_key < end && max_key >= start;
  }
};

// One live entry of a range scan, in key order.
struct LsmScanItem {
  ShardId id = 0;
  ShardRecord record;
};

class LsmIndex {
 public:
  // Opens over existing on-disk state (recovering the metadata record with the highest
  // version from the reserved metadata extents, then rebuilding each run's bloom
  // filter from its chunk header) or formats a fresh index: claims two metadata
  // extents and starts empty.
  // Metrics land in `metrics` (lsm.*) when provided; otherwise the index owns a
  // private registry so direct construction keeps working in tests.
  static Result<std::unique_ptr<LsmIndex>> Open(ExtentManager* extents, ChunkStore* chunks,
                                                LsmOptions options = {},
                                                MetricRegistry* metrics = nullptr);

  // --- API ------------------------------------------------------------------------------
  // Inserts/overwrites. `data_dep` is the dependency of the shard data the record points
  // to; the entry will not reach durable index storage before that data does. Returns
  // the entry's dependency (promise resolved by the covering metadata flush, combined
  // with `data_dep`). `scope`, when active, receives an "lsm.insert" child span.
  Dependency Put(ShardId id, ShardRecord record, Dependency data_dep,
                 const SpanScope& scope = {});

  // Tombstone. Returns the tombstone's dependency.
  Dependency Delete(ShardId id, const SpanScope& scope = {});

  // Group commit: inserts every item under one mu_ hold with consecutive sequence
  // numbers and ONE shared promise registered at the batch's highest sequence — the
  // whole batch rides a single durability barrier (the next covering metadata flush)
  // instead of one promise per item. Returns the per-item dependencies in input order
  // (shared promise ∧ the item's data_dep). Unlike Put, a threshold crossing is
  // reported through `flush_wanted` instead of flushing inline, so the caller
  // (ShardStore::ApplyBatch) can close its extent write-batch scope first.
  std::vector<Dependency> ApplyBatch(std::vector<LsmBatchItem> items, bool* flush_wanted,
                                     const SpanScope& scope = {});

  // nullopt: no live mapping (never written, deleted, or tombstoned). `scope`, when
  // active, receives an "lsm.lookup" child span (with chunk.read descendants for runs
  // the bloom filters could not rule out).
  Result<std::optional<ShardRecord>> Get(ShardId id, const SpanScope& scope = {});

  // All live entries in the half-open key window [start, end), in key order: a merge
  // across the memtable and every level, newest shadows oldest, tombstones suppress.
  // Runs whose key range misses the window are skipped without a chunk read. An empty
  // window (start >= end) returns an empty result. `scope`, when active, receives an
  // "lsm.scan" child span.
  Result<std::vector<LsmScanItem>> Scan(ShardId start, ShardId end,
                                        const SpanScope& scope = {});

  // All live shard ids (merged view of memtable and runs).
  Result<std::vector<ShardId>> Keys();

  // --- Maintenance ------------------------------------------------------------------------
  // Writes the memtable as a new level-0 run + metadata record. No-op when clean.
  // `scope`, when active, receives an "lsm.flush" child span covering the run and
  // metadata writes. When LsmOptions::level0_compaction_trigger is set, a successful
  // flush may cascade into level compactions before returning.
  Status Flush(const SpanScope& scope = {});

  // Merges all runs into one bottom-level run, dropping tombstones and superseded
  // versions (a full merge sees every run, so dropping is safe).
  Status Compact();

  // Partial merge: folds every run at `level` and `level + 1` into new runs at
  // `level + 1`. Background-eligible: serialized under flush_mu_ like Flush/Compact,
  // safe to call concurrently with reads and writes. Tombstones are dropped only when
  // the output is the bottom level (no deeper runs remain) — the tombstone lifetime
  // rule. No-op when `level` holds no runs.
  Status CompactLevel(int level, const SpanScope& scope = {});

  // True when a shutdown must still flush (bug #3 consults the wrong flag here).
  bool NeedsShutdownFlush() const;

  // --- Reclamation support -----------------------------------------------------------------
  // Which shard (if any) references `loc` in its record. Linear scan of the live view;
  // reclamation is a background task and the paper's reverse lookup is also index-wide.
  Result<std::optional<ShardId>> FindShardReferencing(const Locator& loc);

  // Whether `loc` is one of the live run chunks.
  bool MetadataReferences(const Locator& loc) const;

  // Rewrites the shard record containing `old_loc` to point at `new_loc` (no-op with a
  // trivially-persistent result if the reference disappeared concurrently). The entry
  // is gated on `new_dep`, the evacuated data's dependency.
  Result<Dependency> RelocateShardChunk(const Locator& old_loc, const Locator& new_loc,
                                        const Dependency& new_dep);

  // Replaces run chunk `old_loc` with `new_loc` in the run list (level and filter are
  // preserved — the evacuated copy has identical content) and persists a new metadata
  // record gated on `new_dep`. Returns that record's dependency.
  Result<Dependency> RelocateRunChunk(const Locator& old_loc, const Locator& new_loc,
                                      const Dependency& new_dep);

  // Dependency that persists once the current in-memory index state (memtable included)
  // is durable; see ReclaimClient::DropGate.
  Dependency StateDurableGate();

  // --- Introspection -----------------------------------------------------------------------
  size_t MemtableEntries() const;
  size_t RunCount() const;
  size_t RunCountAtLevel(int level) const;
  // Per-run levels, oldest run first (levels are non-increasing along the list).
  std::vector<int> RunLevels() const;
  uint64_t MetadataVersion() const;
  std::vector<Locator> RunLocators() const;
  // The lsm.* counters live in the registry passed at Open (or the private one): read
  // them via MetricRegistry::Snapshot().
  const MetricRegistry& metrics() const { return *metrics_; }

 private:
  struct Entry {
    std::optional<ShardRecord> value;  // nullopt = tombstone
    Dependency data_dep;
    uint64_t seq = 0;
  };
  // A run's decoded content.
  using RunMap = std::map<ShardId, std::optional<ShardRecord>>;
  // A run's serialized form plus the pruning header it embeds.
  struct BuiltRun {
    Bytes payload;
    std::shared_ptr<const RunFilter> filter;
  };
  // A run decoded from its chunk: entries + the header's pruning metadata.
  struct LoadedRun {
    RunMap entries;
    std::shared_ptr<const RunFilter> filter;
  };

  LsmIndex(ExtentManager* extents, ChunkStore* chunks, LsmOptions options,
           MetricRegistry* metrics);

  static BuiltRun BuildRun(const RunMap& entries);
  static Result<LoadedRun> DeserializeRun(ByteSpan payload);
  // Splits a run into segments that each fit one chunk (header included).
  static std::vector<RunMap> PartitionRun(const RunMap& entries, size_t max_payload);
  Result<LoadedRun> LoadRun(const Locator& loc, const SpanScope& scope = {});

  // Serializes and appends the metadata record (runs + counters). Caller holds mu_.
  // The record's write is gated on `input`.
  Result<Dependency> WriteMetadataLocked(Dependency input, const SpanScope& scope = {});

  // Resolves pending promises covered by `meta_dep` up to `max_seq`.
  void ResolvePromisesLocked(uint64_t max_seq, const Dependency& meta_dep);

  Status FlushLocked(const SpanScope& scope = {});  // caller holds flush_mu_ (not mu_)

  // The shared merge engine behind Compact and CompactLevel. Caller holds flush_mu_.
  // `level == nullopt` merges everything (full compaction); otherwise merges levels
  // {level, level+1} into level+1. Tombstones are dropped only when the output is the
  // bottom level (or unconditionally under the seeded bug).
  Status CompactInternal(std::optional<int> level, const SpanScope& scope);

  // Runs the level0_compaction_trigger / level_fanout cascade. Caller holds flush_mu_.
  void MaybeCompactLevelsLocked(const SpanScope& scope);

  ExtentManager* extents_;
  ChunkStore* chunks_;
  LsmOptions options_;
  Rng meta_rng_;

  mutable Mutex mu_{MutexAttr{"lsm.index", lockrank::kLsm}};      // memtable, runs, metadata state
  Mutex flush_mu_{MutexAttr{"lsm.flush", lockrank::kLsmFlush}};  // serializes Flush/Compact
  // A live run: its chunk locator, the dependency under which that chunk (or its most
  // recent evacuated copy) becomes durable, its level, and the pruning filter decoded
  // from its header (null = filter unavailable, read the chunk). Metadata records are
  // gated on the conjunction of the deps, so a persisted metadata record never
  // references a run chunk that is not itself durable.
  struct RunRef {
    Locator loc;
    Dependency dep;
    int level = 0;
    std::shared_ptr<const RunFilter> filter;
  };

  std::map<ShardId, Entry> memtable_;
  std::vector<RunRef> runs_;  // oldest first; levels non-increasing along the vector
  uint64_t version_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<std::pair<uint64_t, Dependency>> pending_promises_;
  Dependency last_meta_dep_;
  ExtentId meta_extents_[2] = {0, 0};
  int active_meta_ = 0;
  bool api_dirty_ = false;       // set by Put/Delete only (the flag bug #3 trusts)
  bool internal_dirty_ = false;  // set by relocations and other internal mutations
  std::unique_ptr<MetricRegistry> owned_metrics_;
  MetricRegistry* metrics_ = nullptr;  // the registry in use (owned or caller's)
  Counter* puts_;
  Counter* deletes_;
  Counter* gets_;
  Counter* scans_;
  Counter* scan_items_;
  Counter* flushes_;
  Counter* compactions_;
  Counter* level_compactions_;
  Counter* tombstones_dropped_;
  Counter* metadata_writes_;
  Counter* batch_applies_;
  Counter* batch_items_;
  Counter* bloom_hits_;
  Counter* bloom_misses_;
  Counter* bloom_false_positives_;
};

}  // namespace ss

#endif  // SS_LSM_LSM_INDEX_H_
