#include "src/lsm/bloom.h"

namespace ss {

namespace {

// splitmix64 finalizer: cheap, well-distributed, and deterministic across platforms
// (the filter bytes are persisted, so the hash is part of the on-disk format).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t WordsForKeys(size_t expected_keys) {
  const size_t bits = expected_keys * BloomFilter::kBitsPerKey;
  return bits == 0 ? 1 : (bits + 63) / 64;
}

}  // namespace

BloomFilter BloomFilter::ForKeys(size_t expected_keys) {
  BloomFilter f;
  f.words_.assign(WordsForKeys(expected_keys), 0);
  return f;
}

size_t BloomFilter::SerializedBytesForKeys(size_t expected_keys) {
  return 4 + WordsForKeys(expected_keys) * 8;
}

void BloomFilter::Add(uint64_t key) {
  if (words_.empty()) {
    return;
  }
  const uint64_t bits = words_.size() * 64;
  const uint64_t h1 = Mix(key);
  // Double hashing; the |1 keeps the stride odd so probes cover the whole table.
  const uint64_t h2 = Mix(key ^ 0xc3a5c85c97cb3127ULL) | 1;
  for (int i = 0; i < kProbes; ++i) {
    const uint64_t bit = (h1 + uint64_t(i) * h2) % bits;
    words_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  if (words_.empty()) {
    return true;  // no information
  }
  const uint64_t bits = words_.size() * 64;
  const uint64_t h1 = Mix(key);
  const uint64_t h2 = Mix(key ^ 0xc3a5c85c97cb3127ULL) | 1;
  for (int i = 0; i < kProbes; ++i) {
    const uint64_t bit = (h1 + uint64_t(i) * h2) % bits;
    if ((words_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
  }
  return true;
}

void BloomFilter::Serialize(Writer& w) const {
  w.PutU32(static_cast<uint32_t>(words_.size()));
  for (uint64_t word : words_) {
    w.PutU64(word);
  }
}

Result<BloomFilter> BloomFilter::Deserialize(Reader& r) {
  SS_ASSIGN_OR_RETURN(uint32_t words, r.GetU32());
  if (uint64_t{words} * 8 > r.remaining()) {
    return Status::Corruption("bloom filter: word count exceeds input");
  }
  BloomFilter f;
  f.words_.reserve(words);
  for (uint32_t i = 0; i < words; ++i) {
    SS_ASSIGN_OR_RETURN(uint64_t word, r.GetU64());
    f.words_.push_back(word);
  }
  return f;
}

}  // namespace ss
