// NodeServer: the storage host's RPC surface (paper section 2.1).
//
// A storage host runs one independent ShardStore per disk; the shared RPC layer steers
// request-plane calls (put/get/delete) to the owning disk by shard id and offers the
// control-plane operations S3 uses for migration and repair: listing shards, taking a
// disk out of service / returning it, and bulk create/remove.
//
// Seeded bugs hosted here: #4 (removal skips the clean shutdown, so a removed-and-
// returned disk loses recent shards), #13 (the shard listing releases its lock midway
// and resumes by element count, missing entries that a concurrent removal shifted), and
// #16 (bulk create/remove skip the control-plane lock that makes them atomic units).

#ifndef SS_RPC_NODE_SERVER_H_
#define SS_RPC_NODE_SERVER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/kv/shard_store.h"

namespace ss {

struct NodeServerOptions {
  int disk_count = 4;
  DiskGeometry geometry;
  ShardStoreOptions store;
};

class NodeServer {
 public:
  // Creates `disk_count` fresh disks and opens a store on each.
  static Result<std::unique_ptr<NodeServer>> Create(NodeServerOptions options = {});

  // --- Request plane -------------------------------------------------------------------
  Result<Dependency> Put(ShardId id, ByteSpan value);
  Result<Bytes> Get(ShardId id);
  Result<Dependency> Delete(ShardId id);

  // --- Control plane -------------------------------------------------------------------
  // All shards currently stored on in-service disks.
  Result<std::vector<ShardId>> ListShards();

  // Cleanly shuts the disk's store down and takes it out of service; requests for its
  // shards fail with kUnavailable until RestoreDisk.
  Status RemoveDiskFromService(int disk);

  // Reopens the store from the disk's persistent image and puts it back in service.
  Status RestoreDisk(int disk);

  // Migrates one shard to another in-service disk (the control plane's repair /
  // rebalance primitive): copy to the target, commit the routing change, tombstone the
  // source. Both disks must be in service; migrating to the current owner is a no-op.
  Status MigrateShard(ShardId id, int to_disk);

  // Atomic bulk operations: observers see either none or all of the batch applied
  // (relative to other bulk operations).
  Status BulkCreate(const std::vector<std::pair<ShardId, Bytes>>& items);
  Status BulkRemove(const std::vector<ShardId>& ids);

  // Clean shutdown of every in-service disk; afterwards all dependencies persist.
  Status FlushAllDisks();

  // The disk currently owning `id`: its directory entry if present (which migration
  // moves), otherwise the stable hash placement used for new shards.
  int DiskFor(ShardId id) const;
  int disk_count() const { return static_cast<int>(disks_.size()); }
  bool InService(int disk) const;
  // Per-disk access for tests/examples (nullptr when out of service).
  std::shared_ptr<ShardStore> store(int disk) const;

 private:
  explicit NodeServer(NodeServerOptions options);

  // Snapshot the store for a shard, checking service state.
  Result<std::shared_ptr<ShardStore>> Route(ShardId id) const;

  NodeServerOptions options_;
  std::vector<std::unique_ptr<InMemoryDisk>> disks_;

  mutable Mutex mu_;  // service state + directory
  std::vector<std::shared_ptr<ShardStore>> stores_;
  std::vector<bool> in_service_;
  std::map<ShardId, int> directory_;  // live shards -> owning disk

  Mutex control_mu_;  // serializes bulk control-plane operations
};

}  // namespace ss

#endif  // SS_RPC_NODE_SERVER_H_
