// NodeServer: the storage host's RPC surface (paper section 2.1).
//
// A storage host runs one independent ShardStore per disk; the shared RPC layer steers
// request-plane calls (put/get/delete) to the owning disk by shard id and offers the
// control-plane operations S3 uses for migration and repair: listing shards, taking a
// disk out of service / returning it, and bulk create/remove.
//
// Disk failure domain: each disk additionally carries a health state
// (healthy -> degraded -> failed) merged from its store's error-budget tracker and
// from explicit control-plane marks. Degraded disks are read-only — Get still serves,
// Put/Delete fail with kUnavailable — and EvacuateDisk drains their shards onto
// healthy peers with the same crash-safe commit order as MigrateShard (copy, commit
// the routing change, tombstone the source). Failed disks serve nothing.
//
// Seeded bugs hosted here: #4 (removal skips the clean shutdown, so a removed-and-
// returned disk loses recent shards), #13 (the shard listing releases its lock midway
// and resumes by element count, missing entries that a concurrent removal shifted), and
// #16 (bulk create/remove skip the control-plane lock that makes them atomic units).

#ifndef SS_RPC_NODE_SERVER_H_
#define SS_RPC_NODE_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/disk/file_disk.h"
#include "src/kv/shard_store.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace ss {

struct NodeServerOptions {
  int disk_count = 4;
  DiskGeometry geometry;
  // Which ss::disk::Disk implementation backs each store: the deterministic in-memory
  // image (default) or the durable file-backed log (kFile needs a non-empty
  // file_root; disk i lives under <file_root>/disk-<i>/). Everything above the disk
  // seam — stores, routing, crash recovery, conformance oracles — is backend-blind.
  DiskBackendConfig disk_backend;
  ShardStoreOptions store;
  // Retained trace events (see TraceRing); lifetime totals are unaffected.
  size_t trace_capacity = TraceRing::kDefaultCapacity;
  // Retained span records (see SpanTree); lifetime totals are unaffected.
  size_t span_capacity = SpanTree::kDefaultCapacity;
  // Regression knob: restores the pre-fix Put/Delete routing commit (capture the
  // routed disk before the store call, then write the directory unconditionally
  // afterwards), which lets a concurrent MigrateShard's routing commit be clobbered
  // with the stale source disk. Only the routing-race regression tests set this; see
  // tests/concurrency_test.cc.
  bool legacy_unconditional_route_commit = false;
};

// Typed request-plane envelopes: every mutating RPC returns the operation's durability
// dependency plus the routing and tracing context the node resolved for it — the disk
// the write landed on and the id of the operation's root span in the node's SpanTree
// (SpanTree::Tree(trace_id) yields the full causal tree; the flat trace-ring event
// carries the same id in its `root_span` field).
// The implicit Dependency conversion keeps pre-envelope call sites
// (`Dependency dep = node->Put(...).value()`) compiling unchanged.
struct PutResult {
  Dependency dep;
  int disk = -1;
  uint64_t trace_id = 0;

  operator Dependency() const { return dep; }  // NOLINT(google-explicit-constructor)
  const Dependency& dependency() const { return dep; }
};

struct DeleteResult {
  Dependency dep;
  int disk = -1;
  uint64_t trace_id = 0;

  operator Dependency() const { return dep; }  // NOLINT(google-explicit-constructor)
  const Dependency& dependency() const { return dep; }
};

// Read envelope, completing the typed-envelope surface: the assembled value plus the
// disk the read was served from and the root span id. The implicit Bytes conversion
// (and the Bytes comparisons) keep pre-envelope call sites
// (`Bytes v = node->Get(id).value()`) compiling unchanged.
struct GetResult {
  Bytes value;
  int disk = -1;
  uint64_t trace_id = 0;

  operator const Bytes&() const { return value; }  // NOLINT(google-explicit-constructor)
  friend bool operator==(const GetResult& a, const Bytes& b) { return a.value == b; }
  friend bool operator==(const Bytes& a, const GetResult& b) { return a == b.value; }
  friend bool operator!=(const GetResult& a, const Bytes& b) { return !(a == b); }
  friend bool operator!=(const Bytes& a, const GetResult& b) { return !(a == b); }
};

// Result envelope of a range scan: the merged, key-ordered live shards in the window
// plus the scan's root span id (SpanTree::Tree(trace_id) shows the per-disk store.scan
// and lsm.scan children).
struct ScanResult {
  std::vector<ScanItem> items;  // key order
  uint64_t trace_id = 0;
};

// Per-item outcome of a batched request-plane call. Failed items carry their status;
// their dependency is trivially persistent. `span_id` is the item's "rpc.batch.item"
// child span under the batch's root (0 when spans were not recorded for the item).
struct BatchItemResult {
  ShardId id = 0;
  Status status;
  Dependency dep;
  int disk = -1;
  uint64_t span_id = 0;
};

struct BatchResult {
  std::vector<BatchItemResult> items;  // input order
  Dependency dep;                      // join of the successful items' dependencies
  uint64_t trace_id = 0;

  bool all_ok() const {
    for (const BatchItemResult& item : items) {
      if (!item.status.ok()) {
        return false;
      }
    }
    return true;
  }
};

class NodeServer {
 public:
  // Creates `disk_count` fresh disks and opens a store on each.
  static Result<std::unique_ptr<NodeServer>> Create(NodeServerOptions options = {});

  // --- Request plane -------------------------------------------------------------------
  // `remote` is the optional cross-node trace context (a cluster coordinator's
  // root/parent span ids): when active, the RPC's root span records it as remote
  // linkage so the cluster trace assembler can stitch this node's subtree under
  // the coordinator's trace. Local callers leave it defaulted.
  Result<PutResult> Put(ShardId id, ByteSpan value, TraceContext remote = {});
  Result<GetResult> Get(ShardId id, TraceContext remote = {});
  Result<DeleteResult> Delete(ShardId id, TraceContext remote = {});

  // Merged range scan: every live shard with id in the half-open window [start, end),
  // in key order, fanned out across all in-service disks (a shard that transiently
  // exists on two disks mid-migration resolves to the directory's owner). Fails whole
  // if any disk's scan fails — a silent partial result would defeat the conformance
  // oracle. An empty window (start >= end) returns an empty result.
  Result<ScanResult> Scan(ShardId start, ShardId end);

  // Batched writes with group commit: items are routed and admission-checked
  // individually, grouped by owning disk, and each per-disk sub-batch commits through
  // ShardStore::ApplyBatch under one LSM barrier and one shared soft-pointer update
  // per extent. Items fail independently; the batch dependency is the join of the
  // successful items. Routing commits are per-item and conditional (the same
  // stale-commit skip as Put/Delete), so a concurrent MigrateShard is never clobbered.
  BatchResult PutBatch(const std::vector<std::pair<ShardId, Bytes>>& items);
  BatchResult DeleteBatch(const std::vector<ShardId>& ids);

  // --- Control plane -------------------------------------------------------------------
  // All shards currently stored on in-service disks.
  Result<std::vector<ShardId>> ListShards();

  // Cleanly shuts the disk's store down and takes it out of service; requests for its
  // shards fail with kUnavailable until RestoreDisk.
  Status RemoveDiskFromService(int disk);

  // Reopens the store from the disk's persistent image and puts it back in service.
  Status RestoreDisk(int disk);

  // Migrates one shard to another in-service disk (the control plane's repair /
  // rebalance primitive): copy to the target, commit the routing change, tombstone the
  // source. Both disks must be in service; the target must additionally be healthy
  // (never migrate onto a disk already burning error budget), while the source may be
  // degraded — that is exactly the evacuation path. Migrating to the current owner is
  // a no-op.
  Status MigrateShard(ShardId id, int to_disk);

  // --- Disk failure domain -------------------------------------------------------------
  // Current health of a disk (kFailed for out-of-range disks).
  DiskHealth Health(int disk) const;

  // Control-plane mark: healthy -> degraded (read-only). Idempotent on an already
  // degraded disk; refuses on a failed one.
  Status MarkDiskDegraded(int disk);

  // Operator action after repair: back to healthy with a fresh error budget (also
  // resets the store's tracker). The disk must be in service.
  Status ResetDiskHealth(int disk);

  // Drains every shard this disk owns onto healthy in-service peers (round-robin,
  // skipping peers that report full). The source must be readable (in service, not
  // failed); this is the expected follow-up to a degraded mark. Built on the
  // MigrateShard commit order, so a crash mid-evacuation never loses a shard.
  Status EvacuateDisk(int disk);

  // Dirty per-disk reboot: crashes the store's IO scheduler at a dependency-allowed
  // crash state drawn from `crash_seed`, then recovers from the persistent image.
  // Armed injector faults are cleared (they model conditions of the running
  // controller), health returns to healthy, and the routing directory is reconciled:
  // entries for shards the crash lost are dropped, survivors re-registered.
  Status CrashAndRecoverDisk(int disk, uint64_t crash_seed);

  // Atomic bulk operations: observers see either none or all of the batch applied
  // (relative to other bulk operations). Built on the batched write pipeline; each
  // item reports its own status (index i mirrors input item i).
  std::vector<Status> BulkCreate(const std::vector<std::pair<ShardId, Bytes>>& items);
  std::vector<Status> BulkRemove(const std::vector<ShardId>& ids);

  // Clean shutdown of every in-service disk; afterwards all dependencies persist.
  Status FlushAllDisks();

  // --- Observability -------------------------------------------------------------------
  // Point-in-time snapshot across the whole node: the node-level rpc.* registry plus
  // every in-service store's registry (counters sum across disks), with per-disk
  // rpc.disk.<d>.health / .in_service gauges mixed in. Harness oracles and benches
  // assert on deltas between two snapshots.
  ss::MetricsSnapshot MetricsSnapshot() const;
  // Human-readable snapshot + the tail of the trace ring.
  std::string DumpMetrics() const;
  // Machine-readable node state: {"metrics": ..., "spans": [...], "trace": [...]}.
  // This is the exit the flight recorder and external tooling scrape.
  std::string DumpMetricsJson() const;
  MetricRegistry& metrics() { return metrics_; }
  const TraceRing& trace() const { return trace_; }
  // The node-wide span tree: every request-plane and control-plane root span plus the
  // store-layer children recorded under it. Span duration histograms
  // ("span.<name>.ticks") land in metrics().
  SpanTree& spans() { return spans_; }
  const SpanTree& spans() const { return spans_; }

  // The disk currently owning `id`: its directory entry if present (which migration
  // moves), otherwise the stable hash placement used for new shards — skipping disks
  // that cannot accept new data (out of service / degraded / failed).
  int DiskFor(ShardId id) const;
  int disk_count() const { return static_cast<int>(disks_.size()); }
  bool InService(int disk) const;
  // Per-disk access for tests/examples (nullptr when out of service).
  std::shared_ptr<ShardStore> store(int disk) const;
  // The disk's persistent image + fault injector (valid even when out of service),
  // typed as the backend-blind interface.
  Disk& disk(int disk) { return *disks_[disk]; }
  // Test-only escape hatch: the concrete in-memory image, or nullptr when this node
  // runs a different backend. Production-path code must stay on disk().
  InMemoryDisk* in_memory_image(int disk) {
    return dynamic_cast<InMemoryDisk*>(disks_[disk].get());
  }

 private:
  explicit NodeServer(NodeServerOptions options);

  // DiskFor body; caller holds mu_.
  int DiskForLocked(ShardId id) const;

  // Snapshot the store for a shard under one mu_ hold, checking service state and
  // health (a degraded disk refuses mutating requests, a failed disk refuses
  // everything). `disk_out`, when set, receives the resolved disk even on failure.
  Result<std::shared_ptr<ShardStore>> Route(ShardId id, bool mutating,
                                            int* disk_out = nullptr) const;

  // Merge the store's error-budget tracker into the disk's health state (transitions
  // are sticky: the merge only ever moves health toward failed).
  void AbsorbTrackerHealth(int disk, ShardStore& target);

  // MigrateShard body; caller holds control_mu_. Store-layer children and the
  // virtual-clock ticks the migration consumed are recorded into `span` (the
  // "rpc.migrate_shard" root, or EvacuateDisk's "rpc.evacuate_disk" root).
  Status MigrateShardLocked(ShardId id, int to_disk, Span& span);

  // Opens a root span for one RPC (null clock: durations accumulate via AddTicks of
  // per-store virtual-clock deltas, since the owning disk is not known yet).
  Span RootSpan(std::string_view name, TraceContext remote = {}) {
    return remote.active() ? Span(&spans_, nullptr, name, remote)
                           : Span(&spans_, nullptr, name);
  }

  NodeServerOptions options_;
  std::vector<std::unique_ptr<Disk>> disks_;

  // Node-level observability. Leaf-mode locks / relaxed atomics inside: recording is
  // never a model-checker scheduling point.
  MetricRegistry metrics_;
  TraceRing trace_;
  SpanTree spans_;
  Counter* put_ok_;
  Counter* put_err_;
  Counter* get_ok_;
  Counter* get_err_;
  Counter* scan_ok_;
  Counter* scan_err_;
  Counter* delete_ok_;
  Counter* delete_err_;
  Counter* batch_puts_;
  Counter* batch_deletes_;
  Counter* batch_item_ok_;
  Counter* batch_item_err_;
  Counter* list_shards_;
  Counter* migrations_;
  Counter* evacuations_;
  Counter* crash_recoveries_;
  Counter* stale_commit_skipped_;
  Counter* placement_rerouted_;
  Counter* lockorder_violations_;
  Histogram* op_ticks_;
  // Feeds each lock-order witness report into the node's metrics (constructed after
  // metrics_, destroyed before it).
  std::unique_ptr<ScopedLockOrderHandler> lockorder_handler_;

  // service state + health + directory
  mutable Mutex mu_{MutexAttr{"rpc.node", lockrank::kNode}};
  std::vector<std::shared_ptr<ShardStore>> stores_;
  std::vector<bool> in_service_;
  std::vector<DiskHealth> health_;
  std::map<ShardId, int> directory_;  // live shards -> owning disk

  // serializes bulk control-plane operations
  Mutex control_mu_{MutexAttr{"rpc.control", lockrank::kControl}};
};

}  // namespace ss

#endif  // SS_RPC_NODE_SERVER_H_
