#include "src/rpc/node_server.h"

#include <algorithm>

#include "src/common/cover.h"
#include "src/common/rng.h"
#include "src/faults/faults.h"
#include "src/obs/json.h"

namespace ss {

NodeServer::NodeServer(NodeServerOptions options)
    : options_(options),
      trace_(options.trace_capacity),
      spans_(options.span_capacity, &metrics_) {
  put_ok_ = &metrics_.counter("rpc.put.ok");
  put_err_ = &metrics_.counter("rpc.put.err");
  get_ok_ = &metrics_.counter("rpc.get.ok");
  get_err_ = &metrics_.counter("rpc.get.err");
  scan_ok_ = &metrics_.counter("rpc.scan.ok");
  scan_err_ = &metrics_.counter("rpc.scan.err");
  delete_ok_ = &metrics_.counter("rpc.delete.ok");
  delete_err_ = &metrics_.counter("rpc.delete.err");
  batch_puts_ = &metrics_.counter("rpc.batch.puts");
  batch_deletes_ = &metrics_.counter("rpc.batch.deletes");
  batch_item_ok_ = &metrics_.counter("rpc.batch.item_ok");
  batch_item_err_ = &metrics_.counter("rpc.batch.item_err");
  list_shards_ = &metrics_.counter("rpc.list_shards");
  migrations_ = &metrics_.counter("rpc.migrations");
  evacuations_ = &metrics_.counter("rpc.evacuations");
  crash_recoveries_ = &metrics_.counter("rpc.crash_recoveries");
  stale_commit_skipped_ = &metrics_.counter("rpc.routing.stale_commit_skipped");
  placement_rerouted_ = &metrics_.counter("rpc.routing.placement_rerouted");
  lockorder_violations_ = &metrics_.counter("sync.lockorder.violations");
  op_ticks_ = &metrics_.histogram("rpc.op.backoff_ticks");
  lockorder_handler_ = std::make_unique<ScopedLockOrderHandler>(
      [this](const LockOrderReport&) { lockorder_violations_->Increment(); });
}

Result<std::unique_ptr<NodeServer>> NodeServer::Create(NodeServerOptions options) {
  if (options.disk_count < 1) {
    return Status::InvalidArgument("need at least one disk");
  }
  std::unique_ptr<NodeServer> node(new NodeServer(options));
  for (int d = 0; d < options.disk_count; ++d) {
    auto disk_or = MakeDisk(options.disk_backend, options.geometry, d);
    if (!disk_or.ok()) {
      return disk_or.status();
    }
    node->disks_.push_back(std::move(disk_or).value());
    auto store_or = ShardStore::Open(node->disks_.back().get(), options.store);
    if (!store_or.ok()) {
      return store_or.status();
    }
    node->stores_.push_back(std::shared_ptr<ShardStore>(std::move(store_or).value()));
    node->in_service_.push_back(true);
    node->health_.push_back(DiskHealth::kHealthy);
  }
  return node;
}

int NodeServer::DiskForLocked(ShardId id) const {
  auto it = directory_.find(id);
  if (it != directory_.end()) {
    return it->second;  // migrated / known placement
  }
  // Stable hash placement for shards without a directory entry. The hash only picks a
  // starting point: disks that are out of service are skipped in hash order, so a
  // removed disk does not make a deterministic 1/N slice of the key space unwritable.
  //
  // The fallback deliberately does NOT skip degraded or failed disks. Diverting the
  // hash route is only sound when the home disk cannot hold unguarded data, and only
  // removal from service (which follows evacuation) guarantees that. A sick disk may
  // still hold a flushed value whose delete tombstone is sitting in the memtable;
  // routing around it hides that copy from crash reconciliation, and the fault
  // harness finds the resurrection (minimized: Put, FlushAll, Delete, DegradeDisk,
  // CrashReboot — the crash drops the tombstone and the value returns as a phantom
  // once health resets). Sick-but-in-service homes therefore keep their hash route
  // and mutations surface kUnavailable until the operator evacuates or resets them.
  const int n = static_cast<int>(disks_.size());
  const int hashed = static_cast<int>((id * 0x9e3779b97f4a7c15ULL >> 32) % disks_.size());
  for (int k = 0; k < n; ++k) {
    const int d = (hashed + k) % n;
    if (in_service_[d]) {
      if (k > 0) {
        SS_COVER("rpc.placement_rerouted");
        placement_rerouted_->Increment();
      }
      return d;
    }
  }
  return hashed;  // no disk can take new shards; the caller surfaces kUnavailable
}

int NodeServer::DiskFor(ShardId id) const {
  LockGuard lock(mu_);
  return DiskForLocked(id);
}

bool NodeServer::InService(int disk) const {
  LockGuard lock(mu_);
  return disk >= 0 && disk < static_cast<int>(in_service_.size()) && in_service_[disk];
}

std::shared_ptr<ShardStore> NodeServer::store(int disk) const {
  LockGuard lock(mu_);
  if (disk < 0 || disk >= static_cast<int>(stores_.size())) {
    return nullptr;
  }
  return stores_[disk];
}

Result<std::shared_ptr<ShardStore>> NodeServer::Route(ShardId id, bool mutating,
                                                      int* disk_out) const {
  // Resolve and admission-check under one mu_ hold: resolving first and re-locking
  // would let a concurrent control-plane change invalidate the resolved disk.
  LockGuard lock(mu_);
  const int disk = DiskForLocked(id);
  if (disk_out != nullptr) {
    *disk_out = disk;
  }
  if (!in_service_[disk]) {
    return Status::Unavailable("disk out of service");
  }
  if (health_[disk] == DiskHealth::kFailed) {
    return Status::Unavailable("disk failed");
  }
  if (mutating && health_[disk] == DiskHealth::kDegraded) {
    // Read-only mode: the disk's data is intact and keeps serving, but new writes
    // would only grow the blast radius of a disk already burning error budget.
    return Status::Unavailable("disk degraded (read-only)");
  }
  return stores_[disk];
}

void NodeServer::AbsorbTrackerHealth(int disk, ShardStore& target) {
  const DiskHealth observed = target.extents().health().health();
  if (observed == DiskHealth::kHealthy) {
    return;
  }
  LockGuard lock(mu_);
  if (static_cast<int>(observed) > static_cast<int>(health_[disk])) {
    health_[disk] = observed;
    SS_COVER(observed == DiskHealth::kFailed ? "rpc.health_auto_failed"
                                             : "rpc.health_auto_degraded");
  }
}

Result<PutResult> NodeServer::Put(ShardId id, ByteSpan value, TraceContext remote) {
  Span span = RootSpan("rpc.put", remote);
  int disk = -1;
  auto routed = Route(id, /*mutating=*/true, &disk);
  if (!routed.ok()) {
    put_err_->Increment();
    span.set_status(routed.code());
    trace_.Record(TraceKind::kPut, id, disk, routed.code(), 0, span.id());
    return routed.status();
  }
  std::shared_ptr<ShardStore> target = std::move(routed).value();
  const uint64_t start_ticks = target->extents().VirtualNow();
  auto dep_or = target->Put(id, value, span.scope());
  AbsorbTrackerHealth(disk, *target);
  const uint64_t ticks = target->extents().VirtualNow() - start_ticks;
  span.AddTicks(ticks);
  op_ticks_->Record(ticks);
  trace_.Record(TraceKind::kPut, id, disk, dep_or.ok() ? StatusCode::kOk : dep_or.code(),
                ticks, span.id());
  if (!dep_or.ok()) {
    put_err_->Increment();
    span.set_status(dep_or.code());
    return dep_or.status();
  }
  put_ok_->Increment();
  PutResult result{std::move(dep_or).value(), disk, span.id()};
  if (options_.legacy_unconditional_route_commit) {
    // Pre-fix routing commit, preserved behind a test-only knob: `disk` was resolved
    // before the store call, so a MigrateShard that committed in between gets its
    // directory entry overwritten with the stale source disk and later Gets route to
    // the tombstoned copy. The yield is the preemption window the fix closes.
    YieldThread();
    LockGuard lock(mu_);
    directory_[id] = disk;
    return result;
  }
  {
    LockGuard lock(mu_);
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      directory_[id] = disk;
    } else if (it->second != disk) {
      // A concurrent migration committed new routing between our store write and this
      // commit; overwriting it would point the directory back at a copy the migration
      // tombstones.
      SS_COVER("rpc.put_stale_route_commit_skipped");
      stale_commit_skipped_->Increment();
    }
  }
  return result;
}

Result<GetResult> NodeServer::Get(ShardId id, TraceContext remote) {
  Span span = RootSpan("rpc.get", remote);
  int disk = -1;
  auto routed = Route(id, /*mutating=*/false, &disk);
  if (!routed.ok()) {
    get_err_->Increment();
    span.set_status(routed.code());
    trace_.Record(TraceKind::kGet, id, disk, routed.code(), 0, span.id());
    return routed.status();
  }
  std::shared_ptr<ShardStore> target = std::move(routed).value();
  const uint64_t start_ticks = target->extents().VirtualNow();
  auto got = target->Get(id, span.scope());
  AbsorbTrackerHealth(disk, *target);
  const uint64_t ticks = target->extents().VirtualNow() - start_ticks;
  span.AddTicks(ticks);
  if (!got.ok()) {
    span.set_status(got.code());
  }
  op_ticks_->Record(ticks);
  trace_.Record(TraceKind::kGet, id, disk, got.ok() ? StatusCode::kOk : got.code(), ticks,
                span.id());
  (got.ok() ? get_ok_ : get_err_)->Increment();
  if (!got.ok()) {
    return got.status();
  }
  return GetResult{std::move(got).value(), disk, span.id()};
}

Result<ScanResult> NodeServer::Scan(ShardId start, ShardId end) {
  Span span = RootSpan("rpc.scan");
  // Snapshot the scannable stores and the window's directory slice under one mu_
  // hold. Reads are allowed on degraded disks (same policy as Get's routing); failed
  // and out-of-service disks are invisible to scans, like they are to ListShards.
  std::vector<std::pair<int, std::shared_ptr<ShardStore>>> targets;
  std::map<ShardId, int> owners;
  {
    LockGuard lock(mu_);
    for (int d = 0; d < static_cast<int>(stores_.size()); ++d) {
      if (in_service_[d] && health_[d] != DiskHealth::kFailed && stores_[d] != nullptr) {
        targets.push_back({d, stores_[d]});
      }
    }
    for (auto it = directory_.lower_bound(start); it != directory_.end() && it->first < end;
         ++it) {
      owners[it->first] = it->second;
    }
  }
  uint64_t ticks = 0;
  std::map<ShardId, std::pair<int, Bytes>> merged;  // id -> (source disk, value)
  for (auto& [disk, target] : targets) {
    const uint64_t start_ticks = target->extents().VirtualNow();
    auto items_or = target->Scan(start, end, span.scope());
    AbsorbTrackerHealth(disk, *target);
    ticks += target->extents().VirtualNow() - start_ticks;
    if (!items_or.ok()) {
      span.AddTicks(ticks);
      span.set_status(items_or.code());
      op_ticks_->Record(ticks);
      trace_.Record(TraceKind::kScan, start, disk, items_or.code(), ticks, span.id());
      scan_err_->Increment();
      return items_or.status();
    }
    for (ScanItem& item : items_or.value()) {
      auto it = merged.find(item.id);
      if (it == merged.end()) {
        merged.emplace(item.id, std::make_pair(disk, std::move(item.value)));
      } else {
        // The same shard can transiently live on two disks mid-migration (the copy
        // lands before the source's tombstone commits); the directory is the
        // authority on which replica the request plane should see.
        auto owner = owners.find(item.id);
        if (owner != owners.end() && owner->second == disk) {
          it->second = std::make_pair(disk, std::move(item.value));
        }
      }
    }
  }
  ScanResult result;
  result.trace_id = span.id();
  result.items.reserve(merged.size());
  for (auto& [id, entry] : merged) {
    result.items.push_back(ScanItem{id, std::move(entry.second)});
  }
  span.AddTicks(ticks);
  op_ticks_->Record(ticks);
  trace_.Record(TraceKind::kScan, start, -1, StatusCode::kOk, ticks, span.id());
  scan_ok_->Increment();
  return result;
}

Result<DeleteResult> NodeServer::Delete(ShardId id, TraceContext remote) {
  Span span = RootSpan("rpc.delete", remote);
  int disk = -1;
  auto routed = Route(id, /*mutating=*/true, &disk);
  if (!routed.ok()) {
    delete_err_->Increment();
    span.set_status(routed.code());
    trace_.Record(TraceKind::kDelete, id, disk, routed.code(), 0, span.id());
    return routed.status();
  }
  std::shared_ptr<ShardStore> target = std::move(routed).value();
  const uint64_t start_ticks = target->extents().VirtualNow();
  auto dep_or = target->Delete(id, span.scope());
  AbsorbTrackerHealth(disk, *target);
  const uint64_t ticks = target->extents().VirtualNow() - start_ticks;
  span.AddTicks(ticks);
  op_ticks_->Record(ticks);
  trace_.Record(TraceKind::kDelete, id, disk,
                dep_or.ok() ? StatusCode::kOk : dep_or.code(), ticks, span.id());
  if (!dep_or.ok()) {
    delete_err_->Increment();
    span.set_status(dep_or.code());
    return dep_or.status();
  }
  delete_ok_->Increment();
  DeleteResult result{std::move(dep_or).value(), disk, span.id()};
  if (options_.legacy_unconditional_route_commit) {
    YieldThread();
    LockGuard lock(mu_);
    directory_.erase(id);
    return result;
  }
  {
    LockGuard lock(mu_);
    auto it = directory_.find(id);
    if (it != directory_.end()) {
      if (it->second == disk) {
        directory_.erase(it);
      } else {
        // The shard migrated while we tombstoned the old copy; the new owner's entry
        // must survive, or its live copy becomes unreachable.
        SS_COVER("rpc.delete_stale_route_erase_skipped");
        stale_commit_skipped_->Increment();
      }
    }
  }
  return result;
}

BatchResult NodeServer::PutBatch(const std::vector<std::pair<ShardId, Bytes>>& items) {
  batch_puts_->Increment();
  Span span = RootSpan("rpc.put_batch");
  BatchResult out;
  out.items.resize(items.size());
  out.trace_id = span.id();

  // Route and admission-check every item individually (same policy as Put), grouping
  // the admitted ones into per-disk sub-batches. Each item gets a child span under the
  // batch root; routing rejections close theirs immediately.
  struct Group {
    std::shared_ptr<ShardStore> store;
    std::vector<size_t> indices;  // positions in `items`
    std::vector<StoreBatchItem> batch;
  };
  std::map<int, Group> groups;
  for (size_t i = 0; i < items.size(); ++i) {
    out.items[i].id = items[i].first;
    out.items[i].span_id = spans_.StartSpan("rpc.batch.item", span.id(), span.id());
    int disk = -1;
    auto routed = Route(items[i].first, /*mutating=*/true, &disk);
    out.items[i].disk = disk;
    if (!routed.ok()) {
      out.items[i].status = routed.status();
      batch_item_err_->Increment();
      spans_.EndSpan(out.items[i].span_id, routed.code(), 0);
      continue;
    }
    Group& group = groups[disk];
    group.store = std::move(routed).value();
    group.indices.push_back(i);
    group.batch.push_back(StoreBatchItem{items[i].first, items[i].second});
  }

  // Fan out per disk: each sub-batch commits under one LSM barrier and one shared
  // soft-pointer update per extent (ShardStore::ApplyBatch), then commits its routing
  // entries per item — conditionally, so a migration that moved an item mid-batch
  // keeps its directory entry (the PR 2 stale-commit fix, item-granular here). The
  // store-layer children attach to the batch root (per-item attribution inside a group
  // commit is not meaningful: the items share one barrier).
  std::vector<Dependency> ok_deps;
  for (auto& [disk, group] : groups) {
    const uint64_t start_ticks = group.store->extents().VirtualNow();
    StoreBatchResult applied = group.store->ApplyBatch(group.batch, span.scope());
    AbsorbTrackerHealth(disk, *group.store);
    const uint64_t ticks = group.store->extents().VirtualNow() - start_ticks;
    span.AddTicks(ticks);
    op_ticks_->Record(ticks);
    LockGuard lock(mu_);
    for (size_t k = 0; k < group.indices.size(); ++k) {
      const size_t i = group.indices[k];
      out.items[i].status = applied.items[k].status;
      out.items[i].dep = applied.items[k].dep;
      spans_.EndSpan(out.items[i].span_id, applied.items[k].status.code(), 0);
      if (!applied.items[k].status.ok()) {
        batch_item_err_->Increment();
        continue;
      }
      batch_item_ok_->Increment();
      ok_deps.push_back(applied.items[k].dep);
      auto it = directory_.find(out.items[i].id);
      if (it == directory_.end()) {
        directory_[out.items[i].id] = disk;
      } else if (it->second != disk) {
        SS_COVER("rpc.batch_stale_route_commit_skipped");
        stale_commit_skipped_->Increment();
      }
    }
  }
  out.dep = Dependency::AndAll(ok_deps);
  if (!out.all_ok()) {
    span.set_status(StatusCode::kUnavailable);
  }
  trace_.Record(TraceKind::kPutBatch, items.size(), -1,
                out.all_ok() ? StatusCode::kOk : StatusCode::kUnavailable, span.ticks(),
                span.id());
  return out;
}

BatchResult NodeServer::DeleteBatch(const std::vector<ShardId>& ids) {
  batch_deletes_->Increment();
  Span span = RootSpan("rpc.delete_batch");
  BatchResult out;
  out.items.resize(ids.size());
  out.trace_id = span.id();
  struct Group {
    std::shared_ptr<ShardStore> store;
    std::vector<size_t> indices;
    std::vector<StoreBatchItem> batch;
  };
  std::map<int, Group> groups;
  for (size_t i = 0; i < ids.size(); ++i) {
    out.items[i].id = ids[i];
    out.items[i].span_id = spans_.StartSpan("rpc.batch.item", span.id(), span.id());
    int disk = -1;
    auto routed = Route(ids[i], /*mutating=*/true, &disk);
    out.items[i].disk = disk;
    if (!routed.ok()) {
      out.items[i].status = routed.status();
      batch_item_err_->Increment();
      spans_.EndSpan(out.items[i].span_id, routed.code(), 0);
      continue;
    }
    Group& group = groups[disk];
    group.store = std::move(routed).value();
    group.indices.push_back(i);
    group.batch.push_back(StoreBatchItem{ids[i], std::nullopt});
  }
  std::vector<Dependency> ok_deps;
  for (auto& [disk, group] : groups) {
    const uint64_t start_ticks = group.store->extents().VirtualNow();
    StoreBatchResult applied = group.store->ApplyBatch(group.batch, span.scope());
    AbsorbTrackerHealth(disk, *group.store);
    const uint64_t ticks = group.store->extents().VirtualNow() - start_ticks;
    span.AddTicks(ticks);
    op_ticks_->Record(ticks);
    LockGuard lock(mu_);
    for (size_t k = 0; k < group.indices.size(); ++k) {
      const size_t i = group.indices[k];
      out.items[i].status = applied.items[k].status;
      out.items[i].dep = applied.items[k].dep;
      spans_.EndSpan(out.items[i].span_id, applied.items[k].status.code(), 0);
      if (!applied.items[k].status.ok()) {
        batch_item_err_->Increment();
        continue;
      }
      batch_item_ok_->Increment();
      ok_deps.push_back(applied.items[k].dep);
      auto it = directory_.find(out.items[i].id);
      if (it != directory_.end()) {
        if (it->second == disk) {
          directory_.erase(it);
        } else {
          // The shard migrated mid-batch; the new owner's routing entry must survive.
          SS_COVER("rpc.batch_stale_route_erase_skipped");
          stale_commit_skipped_->Increment();
        }
      }
    }
  }
  out.dep = Dependency::AndAll(ok_deps);
  if (!out.all_ok()) {
    span.set_status(StatusCode::kUnavailable);
  }
  trace_.Record(TraceKind::kDeleteBatch, ids.size(), -1,
                out.all_ok() ? StatusCode::kOk : StatusCode::kUnavailable, span.ticks(),
                span.id());
  return out;
}

Result<std::vector<ShardId>> NodeServer::ListShards() {
  list_shards_->Increment();
  if (BugEnabled(SeededBug::kListRemoveRace)) {
    // Buggy path: the listing copies the directory in two batches, releasing the lock
    // in between and resuming *by element count*. A concurrent removal that deletes an
    // already-copied element shifts everything left, so the resume skips a live shard
    // (the paper's issue #13: list ∥ removal race).
    SS_COVER("rpc.bug13_chunked_list");
    std::vector<ShardId> out;
    size_t copied = 0;
    {
      LockGuard lock(mu_);
      const size_t half = directory_.size() / 2;
      for (const auto& [id, disk] : directory_) {
        if (copied >= half) {
          break;
        }
        if (in_service_[disk]) {
          out.push_back(id);
        }
        ++copied;
      }
    }
    YieldThread();  // the preemption window
    {
      LockGuard lock(mu_);
      size_t index = 0;
      for (const auto& [id, disk] : directory_) {
        if (index++ < copied) {
          continue;  // "already copied" — wrong if the map shifted underneath
        }
        if (in_service_[disk]) {
          out.push_back(id);
        }
      }
    }
    return out;
  }
  LockGuard lock(mu_);
  std::vector<ShardId> out;
  out.reserve(directory_.size());
  for (const auto& [id, disk] : directory_) {
    if (in_service_[disk]) {
      out.push_back(id);
    }
  }
  return out;
}

Status NodeServer::RemoveDiskFromService(int disk) {
  if (disk < 0 || disk >= static_cast<int>(disks_.size())) {
    return Status::InvalidArgument("no such disk");
  }
  std::shared_ptr<ShardStore> target;
  {
    LockGuard lock(mu_);
    if (!in_service_[disk]) {
      return Status::Unavailable("already out of service");
    }
    target = stores_[disk];
  }
  Span span = RootSpan("rpc.remove_disk");
  if (BugEnabled(SeededBug::kDiskRemovalLosesShards)) {
    // Buggy path: the store is discarded without a clean shutdown, dropping the
    // unflushed memtable and pending writebacks — "shards could be lost if a disk was
    // removed from service and then later returned" (paper issue #4).
    SS_COVER("rpc.bug4_remove_without_flush");
  } else {
    const uint64_t start_ticks = target->extents().VirtualNow();
    Status flushed = target->FlushAll(span.scope());
    span.AddTicks(target->extents().VirtualNow() - start_ticks);
    if (!flushed.ok()) {
      span.set_status(flushed.code());
      return flushed;
    }
  }
  LockGuard lock(mu_);
  in_service_[disk] = false;
  stores_[disk].reset();
  trace_.Record(TraceKind::kRemoveDisk, 0, disk, StatusCode::kOk, span.ticks(), span.id());
  return Status::Ok();
}

Status NodeServer::RestoreDisk(int disk) {
  if (disk < 0 || disk >= static_cast<int>(disks_.size())) {
    return Status::InvalidArgument("no such disk");
  }
  {
    LockGuard lock(mu_);
    if (in_service_[disk]) {
      return Status::Unavailable("already in service");
    }
  }
  Span span = RootSpan("rpc.restore_disk");
  SS_ASSIGN_OR_RETURN(std::unique_ptr<ShardStore> reopened,
                      ShardStore::Open(disks_[disk].get(), options_.store));
  std::shared_ptr<ShardStore> shared(std::move(reopened));
  SS_ASSIGN_OR_RETURN(std::vector<ShardId> ids, shared->List());
  LockGuard lock(mu_);
  stores_[disk] = shared;
  in_service_[disk] = true;
  health_[disk] = DiskHealth::kHealthy;  // operator returned a repaired disk
  // Rebuild the directory entries this disk owns.
  for (ShardId id : ids) {
    directory_[id] = disk;
  }
  trace_.Record(TraceKind::kRestoreDisk, 0, disk, StatusCode::kOk, 0, span.id());
  return Status::Ok();
}

Status NodeServer::MigrateShard(ShardId id, int to_disk) {
  if (to_disk < 0 || to_disk >= static_cast<int>(disks_.size())) {
    return Status::InvalidArgument("no such disk");
  }
  Span span = RootSpan("rpc.migrate_shard");
  LockGuard control(control_mu_);
  Status status = MigrateShardLocked(id, to_disk, span);
  span.set_status(status.code());
  return status;
}

Status NodeServer::MigrateShardLocked(ShardId id, int to_disk, Span& span) {
  const int from_disk = DiskFor(id);
  std::shared_ptr<ShardStore> source;
  std::shared_ptr<ShardStore> target;
  {
    LockGuard lock(mu_);
    if (!in_service_[from_disk] || !in_service_[to_disk]) {
      return Status::Unavailable("source or target disk out of service");
    }
    if (health_[from_disk] == DiskHealth::kFailed) {
      return Status::Unavailable("source disk failed; nothing readable to migrate");
    }
    if (from_disk != to_disk && health_[to_disk] != DiskHealth::kHealthy) {
      return Status::Unavailable("target disk is not healthy");
    }
    source = stores_[from_disk];
    target = stores_[to_disk];
  }
  if (from_disk == to_disk) {
    return Status::Ok();
  }
  // Sum the ticks both disks' virtual clocks consume: a migration's latency is the
  // source read + tombstone plus the target copy + flush.
  const uint64_t src_start = source->extents().VirtualNow();
  const uint64_t dst_start = target->extents().VirtualNow();
  const SpanScope scope = span.scope();
  uint64_t call_ticks = 0;  // this migration only (the span may cover an evacuation)
  auto add_ticks = [&] {
    call_ticks = (source->extents().VirtualNow() - src_start) +
                 (target->extents().VirtualNow() - dst_start);
    span.AddTicks(call_ticks);
  };
  auto value_or = source->Get(id, scope);
  if (!value_or.ok()) {
    add_ticks();
    return value_or.status();
  }
  Bytes value = std::move(value_or).value();
  // Copy first, commit the routing change, then tombstone the source — in that order a
  // crash of this control-plane step never loses the shard (at worst both copies
  // exist, and the directory decides which one serves).
  auto copied = target->Put(id, value, scope);
  if (!copied.ok()) {
    add_ticks();
    return copied.status();
  }
  // The copy must be durable before routing commits: otherwise a crash of the target
  // disk could lose a shard whose original write was already acknowledged persistent.
  Status flushed = target->FlushAll(scope);
  if (!flushed.ok()) {
    add_ticks();
    return flushed;
  }
  {
    LockGuard lock(mu_);
    if (!in_service_[to_disk]) {
      add_ticks();
      return Status::Unavailable("target removed during migration");
    }
    directory_[id] = to_disk;
  }
  auto dropped = source->Delete(id, scope);
  if (!dropped.ok()) {
    add_ticks();
    return dropped.status();
  }
  // The tombstone must be durable too: left memtable-only, a later crash of the source
  // would resurrect the stale copy and recovery could re-register it.
  Status drained = source->FlushAll(scope);
  if (!drained.ok()) {
    add_ticks();
    return drained;
  }
  add_ticks();
  SS_COVER("rpc.migrate_shard");
  migrations_->Increment();
  trace_.Record(TraceKind::kMigrateShard, id, to_disk, StatusCode::kOk, call_ticks,
                span.id());
  return Status::Ok();
}

DiskHealth NodeServer::Health(int disk) const {
  LockGuard lock(mu_);
  if (disk < 0 || disk >= static_cast<int>(health_.size())) {
    return DiskHealth::kFailed;
  }
  return health_[disk];
}

Status NodeServer::MarkDiskDegraded(int disk) {
  if (disk < 0 || disk >= static_cast<int>(disks_.size())) {
    return Status::InvalidArgument("no such disk");
  }
  LockGuard lock(mu_);
  if (!in_service_[disk]) {
    return Status::Unavailable("disk out of service");
  }
  if (health_[disk] == DiskHealth::kFailed) {
    return Status::Unavailable("disk already failed");
  }
  health_[disk] = DiskHealth::kDegraded;
  SS_COVER("rpc.mark_degraded");
  Span span = RootSpan("rpc.mark_degraded");
  trace_.Record(TraceKind::kMarkDegraded, 0, disk, StatusCode::kOk, 0, span.id());
  return Status::Ok();
}

Status NodeServer::ResetDiskHealth(int disk) {
  if (disk < 0 || disk >= static_cast<int>(disks_.size())) {
    return Status::InvalidArgument("no such disk");
  }
  LockGuard lock(mu_);
  if (!in_service_[disk]) {
    return Status::Unavailable("disk out of service");
  }
  health_[disk] = DiskHealth::kHealthy;
  stores_[disk]->extents().health().Reset();
  Span span = RootSpan("rpc.reset_health");
  trace_.Record(TraceKind::kResetHealth, 0, disk, StatusCode::kOk, 0, span.id());
  return Status::Ok();
}

Status NodeServer::EvacuateDisk(int disk) {
  if (disk < 0 || disk >= static_cast<int>(disks_.size())) {
    return Status::InvalidArgument("no such disk");
  }
  // One root for the whole evacuation: each shard's migration attaches its store-layer
  // children here, so the tree shows the full drain.
  Span span = RootSpan("rpc.evacuate_disk");
  LockGuard control(control_mu_);
  std::shared_ptr<ShardStore> source;
  {
    LockGuard lock(mu_);
    if (!in_service_[disk]) {
      return Status::Unavailable("disk out of service");
    }
    if (health_[disk] == DiskHealth::kFailed) {
      return Status::Unavailable("disk failed; nothing readable to evacuate");
    }
    source = stores_[disk];
  }
  SS_ASSIGN_OR_RETURN(std::vector<ShardId> ids, source->List());
  std::vector<int> peers;
  {
    LockGuard lock(mu_);
    for (int d = 0; d < static_cast<int>(disks_.size()); ++d) {
      if (d != disk && in_service_[d] && health_[d] == DiskHealth::kHealthy) {
        peers.push_back(d);
      }
    }
  }
  size_t next_peer = 0;
  for (ShardId id : ids) {
    if (DiskFor(id) != disk) {
      continue;  // the directory already routes this shard elsewhere
    }
    if (peers.empty()) {
      return Status::Unavailable("no healthy peer to evacuate onto");
    }
    // Round-robin over healthy peers; a full peer is skipped, any other failure
    // aborts the evacuation (each migrated shard has already committed, so stopping
    // midway leaves the node consistent — the disk is just not fully drained yet).
    Status last = Status::Ok();
    bool moved = false;
    for (size_t k = 0; k < peers.size(); ++k) {
      const int target = peers[(next_peer + k) % peers.size()];
      last = MigrateShardLocked(id, target, span);
      if (last.ok()) {
        next_peer = (next_peer + k + 1) % peers.size();
        moved = true;
        break;
      }
      if (last.code() != StatusCode::kResourceExhausted) {
        break;
      }
    }
    if (!moved) {
      span.set_status(last.code());
      return Status(last.code(), "evacuation stopped at shard " + std::to_string(id) +
                                     ": " + last.message());
    }
  }
  SS_COVER("rpc.evacuate_disk");
  evacuations_->Increment();
  trace_.Record(TraceKind::kEvacuateDisk, 0, disk, StatusCode::kOk, span.ticks(), span.id());
  return Status::Ok();
}

Status NodeServer::CrashAndRecoverDisk(int disk, uint64_t crash_seed) {
  if (disk < 0 || disk >= static_cast<int>(disks_.size())) {
    return Status::InvalidArgument("no such disk");
  }
  std::shared_ptr<ShardStore> target;
  {
    LockGuard lock(mu_);
    if (!in_service_[disk]) {
      return Status::Unavailable("disk out of service");
    }
    target = stores_[disk];
    stores_[disk].reset();
    in_service_[disk] = false;
  }
  Rng crash_rng(crash_seed);
  target->scheduler().Crash(crash_rng, /*persist_bias=*/0.6);
  target.reset();
  // Power-cut semantics for buffered backends: writebacks the crash issued but whose
  // covering barrier never fired are lost with the page cache (no-op for the
  // in-memory image, where issue == durable).
  disks_[disk]->DropUnsynced();
  // The reboot clears armed injector faults: they model conditions of the running
  // controller, and the recovery read path (PeekPage) is not subject to injection.
  disks_[disk]->fault_injector().Clear();
  auto reopened = ShardStore::Open(disks_[disk].get(), options_.store);
  if (!reopened.ok()) {
    return reopened.status();
  }
  std::shared_ptr<ShardStore> shared(std::move(reopened).value());
  SS_ASSIGN_OR_RETURN(std::vector<ShardId> ids, shared->List());
  LockGuard lock(mu_);
  stores_[disk] = shared;
  in_service_[disk] = true;
  health_[disk] = DiskHealth::kHealthy;
  // Directory reconciliation: entries for shards the crash lost are dropped (so later
  // puts fall back to hash placement), survivors re-registered.
  for (auto it = directory_.begin(); it != directory_.end();) {
    if (it->second == disk &&
        std::find(ids.begin(), ids.end(), it->first) == ids.end()) {
      it = directory_.erase(it);
    } else {
      ++it;
    }
  }
  // Survivors need no re-registration: their entries were kept above, and a survivor
  // *without* an entry is a deleted shard the crash resurrected (its tombstone lived
  // in the dropped memtable, with routing either already erased or pointing at the
  // disk that now owns the delete). Re-adding an entry would hand the stale copy the
  // routing back.
  SS_COVER("rpc.crash_recover_disk");
  crash_recoveries_->Increment();
  Span span = RootSpan("rpc.crash_recover_disk");
  trace_.Record(TraceKind::kCrashRecoverDisk, 0, disk, StatusCode::kOk, 0, span.id());
  return Status::Ok();
}

std::vector<Status> NodeServer::BulkCreate(const std::vector<std::pair<ShardId, Bytes>>& items) {
  if (BugEnabled(SeededBug::kBulkCreateRemoveRace)) {
    // Buggy path (paper issue #16), preserved as seeded: items go through the request
    // plane one by one with no control-plane lock, so another bulk operation can
    // interleave between them and observers see a half-applied batch.
    SS_COVER("rpc.bug16_unlocked_bulk");
    std::vector<Status> statuses;
    statuses.reserve(items.size());
    for (const auto& [id, value] : items) {
      auto put_or = Put(id, value);
      statuses.push_back(put_or.ok() ? Status::Ok() : put_or.status());
      YieldThread();
    }
    return statuses;
  }
  // Fixed path: the control-plane lock provides the documented none-or-all visibility
  // relative to other bulk operations; the batch pipeline underneath turns the items
  // into per-disk group commits.
  LockGuard guard(control_mu_);
  BatchResult batch = PutBatch(items);
  std::vector<Status> statuses;
  statuses.reserve(batch.items.size());
  for (const BatchItemResult& item : batch.items) {
    statuses.push_back(item.status);
  }
  return statuses;
}

std::vector<Status> NodeServer::BulkRemove(const std::vector<ShardId>& ids) {
  if (BugEnabled(SeededBug::kBulkCreateRemoveRace)) {
    SS_COVER("rpc.bug16_unlocked_bulk");
    std::vector<Status> statuses;
    statuses.reserve(ids.size());
    for (ShardId id : ids) {
      auto dep_or = Delete(id);
      statuses.push_back(dep_or.ok() ? Status::Ok() : dep_or.status());
      YieldThread();
    }
    return statuses;
  }
  LockGuard guard(control_mu_);
  BatchResult batch = DeleteBatch(ids);
  std::vector<Status> statuses;
  statuses.reserve(batch.items.size());
  for (const BatchItemResult& item : batch.items) {
    statuses.push_back(item.status);
  }
  return statuses;
}

Status NodeServer::FlushAllDisks() {
  Span span = RootSpan("rpc.flush_all");
  for (int d = 0; d < disk_count(); ++d) {
    std::shared_ptr<ShardStore> target = store(d);
    if (target != nullptr) {
      const uint64_t start_ticks = target->extents().VirtualNow();
      Status flushed = target->FlushAll(span.scope());
      span.AddTicks(target->extents().VirtualNow() - start_ticks);
      if (!flushed.ok()) {
        span.set_status(flushed.code());
        return flushed;
      }
    }
  }
  trace_.Record(TraceKind::kFlush, 0, -1, StatusCode::kOk, span.ticks(), span.id());
  return Status::Ok();
}

MetricsSnapshot NodeServer::MetricsSnapshot() const {
  ss::MetricsSnapshot out;
  metrics_.SnapshotInto(out);
  std::vector<std::shared_ptr<ShardStore>> stores;
  {
    LockGuard lock(mu_);
    for (int d = 0; d < static_cast<int>(stores_.size()); ++d) {
      if (stores_[d] != nullptr) {
        stores.push_back(stores_[d]);
      }
      const std::string prefix = "rpc.disk." + std::to_string(d);
      out.gauges[prefix + ".health"] = static_cast<int64_t>(health_[d]);
      out.gauges[prefix + ".in_service"] = in_service_[d] ? 1 : 0;
    }
  }
  // Store registries are read outside mu_: metric objects are leaf state, and the
  // shared_ptr keeps each store alive even if it is removed from service meanwhile.
  // Counters with the same name sum across disks, so the snapshot covers the whole
  // per-disk stack (cache, scheduler, extent retry, LSM, chunk store, disk health).
  for (const std::shared_ptr<ShardStore>& s : stores) {
    s->metrics().SnapshotInto(out);
  }
  return out;
}

std::string NodeServer::DumpMetrics() const { return MetricsSnapshot().ToString() + trace_.ToString(); }

std::string NodeServer::DumpMetricsJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics");
  w.Raw(MetricsSnapshot().ToJson());
  w.Key("spans");
  w.Raw(spans_.ToJson());
  w.Key("trace");
  w.BeginArray();
  for (const TraceEvent& event : trace_.Events()) {
    w.Raw(event.ToJson());
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace ss
