#include "src/chunk/chunk_store.h"

#include "src/common/cover.h"
#include "src/faults/faults.h"

namespace ss {

ChunkStore::ChunkStore(ExtentManager* extents, BufferCache* cache, ChunkStoreOptions options,
                       MetricRegistry* metrics)
    : extents_(extents), cache_(cache), options_(options), uuid_rng_(options.uuid_seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  puts_ = &metrics->counter("chunk.puts");
  gets_ = &metrics->counter("chunk.gets");
  reclaims_ = &metrics->counter("chunk.reclaims");
  chunks_evacuated_ = &metrics->counter("chunk.evacuated");
  chunks_dropped_ = &metrics->counter("chunk.dropped");
  corrupt_frames_skipped_ = &metrics->counter("chunk.corrupt_frames_skipped");
}

Result<ExtentId> ChunkStore::PickTargetLocked(uint32_t pages_needed,
                                              std::optional<ExtentId> exclude) {
  // 1. The active extent, if it still has room.
  if (active_.has_value() && active_ != exclude && reclaiming_.count(*active_) == 0 &&
      extents_->ResetSettled(*active_) && extents_->PagesFree(*active_) >= pages_needed) {
    return *active_;
  }
  // 2. Any owned extent with room (reclaimed extents have wp == 0 and are reused
  //    here). Extents mid-reclamation are never allocation targets, nor are extents
  //    whose reset has not yet reached the disk (reusing them early would queue new
  //    data behind a reset that may depend on that data's own future flush — a
  //    scheduling cycle). Pinned extents are fine: pins exclude reclamation, not
  //    appends.
  for (ExtentId e : extents_->ExtentsOwnedBy(ExtentOwner::kChunkData)) {
    if (exclude == e || reclaiming_.count(e) != 0 || !extents_->ResetSettled(e)) {
      continue;
    }
    if (extents_->PagesFree(e) >= pages_needed) {
      active_ = e;
      return e;
    }
  }
  // 3. Claim a fresh extent.
  SS_ASSIGN_OR_RETURN(ExtentId fresh, extents_->ClaimExtent(ExtentOwner::kChunkData));
  active_ = fresh;
  return fresh;
}

Result<ChunkPutResult> ChunkStore::PutInternal(ByteSpan data, Dependency input,
                                               std::optional<ExtentId> exclude,
                                               const SpanScope& scope) {
  Span span = scope.Child("chunk.write");
  const SpanScope child_scope = span.scope();
  if (data.size() > options_.max_payload_bytes) {
    span.set_status(StatusCode::kInvalidArgument);
    return Status::InvalidArgument("chunk payload too large");
  }
  Bytes frame;
  uint32_t pages_needed = 0;
  {
    LockGuard lock(mu_);
    frame = EncodeChunkFrame(data, Uuid::Random(uuid_rng_));
    pages_needed = extents_->PagesNeeded(frame.size());
    puts_->Increment();
  }

  if (BugEnabled(SeededBug::kLocatorInvalidOnWriteFlushRace)) {
    // Buggy path: the locator is computed from a write-pointer read taken *before* the
    // append, with a preemption window in between. A concurrent append to the same
    // extent makes the locator point at the wrong pages.
    ExtentId target = 0;
    uint32_t stale_wp = 0;
    {
      LockGuard lock(mu_);
      SS_ASSIGN_OR_RETURN(target, PickTargetLocked(pages_needed, exclude));
      ++pin_counts_[target];
      stale_wp = extents_->WritePointer(target);
    }
    YieldThread();
    auto appended_or = extents_->Append(target, frame, input, child_scope);
    if (!appended_or.ok()) {
      Unpin(target);
      span.set_status(appended_or.code());
      return appended_or.status();
    }
    ChunkPutResult result;
    result.locator = Locator{target, stale_wp, appended_or.value().page_count,
                             static_cast<uint32_t>(frame.size())};
    result.dep = appended_or.value().dep;
    return result;
  }

  LockGuard lock(mu_);
  SS_ASSIGN_OR_RETURN(ExtentId target, PickTargetLocked(pages_needed, exclude));
  ++pin_counts_[target];
  auto appended_or = extents_->Append(target, frame, input, child_scope);
  if (!appended_or.ok()) {
    if (--pin_counts_[target] == 0) {
      pin_counts_.erase(target);
    }
    span.set_status(appended_or.code());
    return appended_or.status();
  }
  const AppendResult& appended = appended_or.value();
  if (extents_->PagesFree(target) == 0 && active_ == target) {
    // A filled extent is sealed: it stops receiving appends and becomes eligible for
    // reclamation once its pins drop.
    active_.reset();
  }
  ChunkPutResult result;
  result.locator = Locator{target, appended.first_page, appended.page_count,
                           static_cast<uint32_t>(frame.size())};
  result.dep = appended.dep;
  return result;
}

Result<ChunkPutResult> ChunkStore::Put(ByteSpan data, Dependency input,
                                       const SpanScope& scope) {
  return PutInternal(data, input, std::nullopt, scope);
}

void ChunkStore::Unpin(ExtentId extent) {
  LockGuard lock(mu_);
  auto it = pin_counts_.find(extent);
  if (it == pin_counts_.end()) {
    return;
  }
  if (--it->second == 0) {
    pin_counts_.erase(it);
  }
}

Result<Bytes> ChunkStore::Get(const Locator& loc, const SpanScope& scope) {
  Span span = scope.Child("chunk.read");
  const SpanScope child_scope = span.scope();
  {
    LockGuard lock(mu_);
    gets_->Increment();
  }
  if (loc.frame_bytes < kChunkOverheadBytes ||
      loc.page_count != extents_->PagesNeeded(loc.frame_bytes)) {
    span.set_status(StatusCode::kCorruption);
    return Status::Corruption("locator inconsistent with frame size");
  }
  auto raw_or = cache_->ReadPages(loc.extent, loc.first_page, loc.page_count, child_scope);
  if (!raw_or.ok()) {
    span.set_status(raw_or.code());
    return raw_or.status();
  }
  const Bytes& raw = raw_or.value();
  if (loc.frame_bytes > raw.size()) {
    span.set_status(StatusCode::kCorruption);
    return Status::Corruption("locator frame larger than page span");
  }
  auto payload_or = DecodeChunkFrame(ByteSpan(raw.data(), loc.frame_bytes));
  if (!payload_or.ok()) {
    span.set_status(payload_or.code());
    return payload_or.status();
  }
  Bytes payload = std::move(payload_or).value();
  if (ChunkFrameBytes(payload.size()) != loc.frame_bytes) {
    span.set_status(StatusCode::kCorruption);
    return Status::Corruption("frame length disagrees with locator");
  }
  return payload;
}

Result<std::vector<ChunkStore::ScannedChunk>> ChunkStore::ScanExtent(ExtentId extent) {
  const uint32_t page_size = extents_->geometry().page_size;
  const uint32_t wp = extents_->WritePointer(extent);
  std::vector<ScannedChunk> found;
  uint32_t page = 0;
  while (page < wp) {
    auto head_or = cache_->ReadPages(extent, page, 1);
    if (!head_or.ok()) {
      if (head_or.code() == StatusCode::kIoError &&
          BugEnabled(SeededBug::kReclaimForgetsChunkOnReadError)) {
        // Buggy path: a transient read error makes the scan silently skip the page, so
        // any chunk that starts here is forgotten (and later destroyed by the reset).
        SS_COVER("chunk_store.bug5_skip_on_read_error");
        ++page;
        continue;
      }
      return head_or.status();  // correct: abort the reclaim, retry later
    }
    const Bytes& head = head_or.value();
    auto header_or = ParseChunkHeader(head);
    if (!header_or.ok()) {
      corrupt_frames_skipped_->Increment();
      ++page;
      continue;
    }
    const ChunkHeader& header = header_or.value();
    const size_t frame_bytes = ChunkFrameBytes(header.payload_len);
    const uint32_t frame_pages = extents_->PagesNeeded(frame_bytes);
    if (uint64_t{page} + frame_pages > wp) {
      corrupt_frames_skipped_->Increment();
      ++page;
      continue;
    }
    auto full_or = cache_->ReadPages(extent, page, frame_pages);
    if (!full_or.ok()) {
      if (full_or.code() == StatusCode::kIoError &&
          BugEnabled(SeededBug::kReclaimForgetsChunkOnReadError)) {
        SS_COVER("chunk_store.bug5_skip_on_read_error");
        ++page;
        continue;
      }
      return full_or.status();
    }
    const Bytes& full = full_or.value();

    // Validate trailer then CRC by hand so the seeded UUID-collision acceptance
    // (bug #10) has a precise injection point.
    ByteSpan trailer(full.data() + frame_bytes - kChunkTrailerBytes, kChunkTrailerBytes);
    bool trailer_ok = true;
    for (size_t i = 0; i < kChunkTrailerBytes; ++i) {
      if (trailer[i] != header.uuid.bytes[i]) {
        trailer_ok = false;
        break;
      }
    }
    bool accepted = false;
    Bytes payload;
    if (trailer_ok) {
      auto payload_or = DecodeChunkFrame(ByteSpan(full.data(), frame_bytes));
      if (payload_or.ok()) {
        payload = std::move(payload_or).value();
        accepted = true;
      }
    } else if (BugEnabled(SeededBug::kReclaimUuidCollision) &&
               trailer[0] == kChunkMagic0 && trailer[1] == kChunkMagic1) {
      // Buggy path: the trailing-UUID check is satisfied by bytes that merely *look
      // like* the start of a chunk (the magic), so a torn frame is accepted with its
      // claimed length and the scan strides over the live chunk that actually starts
      // inside that span (the paper's issue #10).
      SS_COVER("chunk_store.bug10_uuid_collision_accept");
      payload.assign(full.begin() + kChunkHeaderBytes,
                     full.begin() + static_cast<ptrdiff_t>(frame_bytes - kChunkTrailerBytes));
      accepted = true;
    }

    if (!accepted) {
      corrupt_frames_skipped_->Increment();
      ++page;
      continue;
    }

    found.push_back(ScannedChunk{
        Locator{extent, page, frame_pages, static_cast<uint32_t>(frame_bytes)},
        std::move(payload)});

    uint32_t advance = frame_pages;
    if (BugEnabled(SeededBug::kReclaimOffByOnePageSize)) {
      // Buggy path: classic off-by-one — when the frame ends exactly on a page
      // boundary the scan advances one page too far, skipping whatever starts there.
      advance = static_cast<uint32_t>((frame_bytes + page_size) / page_size);
      if (advance != frame_pages) {
        SS_COVER("chunk_store.bug1_overshoot");
      }
    }
    page += advance;
  }
  return found;
}

Status ChunkStore::Reclaim(ExtentId extent, ReclaimClient* client) {
  LockGuard reclaim_lock(reclaim_mu_);
  {
    LockGuard lock(mu_);
    if (extents_->Owner(extent) != ExtentOwner::kChunkData) {
      return Status::InvalidArgument("reclaim of extent not owned by chunk store");
    }
    if (pin_counts_.count(extent) != 0 || reclaiming_.count(extent) != 0) {
      return Status::Unavailable("extent is pinned or already being reclaimed");
    }
    reclaiming_.insert(extent);
    reclaims_->Increment();
  }
  // Ensure the reclamation marker is removed on every exit path. The lock acquisition
  // is fenced: under the model checker a poisoned teardown makes scheduling points
  // throw, and a destructor must never let that escape.
  struct ReclaimMarkGuard {
    ChunkStore* store;
    ExtentId extent;
    ~ReclaimMarkGuard() {
      try {
        LockGuard lock(store->mu_);
        store->reclaiming_.erase(extent);
      } catch (...) {
        // Model-checker teardown; the execution's state is being discarded anyway.
      }
    }
  } mark_guard{this, extent};

  SS_ASSIGN_OR_RETURN(std::vector<ScannedChunk> chunks, ScanExtent(extent));

  std::vector<Dependency> deps;
  bool dropped_any = false;
  for (ScannedChunk& chunk : chunks) {
    SS_ASSIGN_OR_RETURN(bool referenced, client->IsReferenced(chunk.locator));
    if (!referenced) {
      dropped_any = true;
      LockGuard lock(mu_);
      chunks_dropped_->Increment();
      continue;
    }
    SS_COVER("chunk_store.evacuate");
    SS_ASSIGN_OR_RETURN(ChunkPutResult moved, PutInternal(chunk.payload, Dependency(), extent));
    auto update_or = client->UpdateReference(chunk.locator, moved.locator, moved.dep);
    Unpin(moved.locator.extent);
    if (!update_or.ok()) {
      return update_or.status();
    }
    deps.push_back(moved.dep);
    deps.push_back(update_or.value());
    LockGuard lock(mu_);
    chunks_evacuated_->Increment();
  }

  if (dropped_any) {
    // Space of dropped chunks may only be destroyed once the index state that
    // unreferenced them is durable (see ReclaimClient::DropGate).
    deps.push_back(client->DropGate());
  }
  // The reset — which makes everything on the extent unreadable — must not reach the
  // disk before the evacuated copies and their reference updates are durable.
  extents_->Reset(extent, Dependency::AndAll(deps));
  if (!BugEnabled(SeededBug::kCacheNotDrainedOnReset)) {
    cache_->DrainExtent(extent);
  } else {
    SS_COVER("chunk_store.bug2_skip_drain");
  }
  return Status::Ok();
}

std::vector<ExtentId> ChunkStore::ReclaimableExtents() const {
  LockGuard lock(mu_);
  std::vector<ExtentId> out;
  for (ExtentId e : extents_->ExtentsOwnedBy(ExtentOwner::kChunkData)) {
    if (active_ == e || pin_counts_.count(e) != 0 || reclaiming_.count(e) != 0) {
      continue;
    }
    if (extents_->WritePointer(e) > 0) {
      out.push_back(e);
    }
  }
  return out;
}

const MetricRegistry& ChunkStore::metrics() const { return *metrics_; }

}  // namespace ss
