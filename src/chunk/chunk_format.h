// On-disk chunk framing (paper section 5, issue #10 diagram).
//
// A chunk frame is:
//     [magic 2B][version 1B][payload_len 4B][uuid 16B][crc32c 4B][payload][uuid 16B]
// The UUID is repeated at both ends so a scanner can validate the frame's claimed
// length; the CRC covers the payload. Frames are page-aligned: the next frame on an
// extent starts at the next page boundary after the previous frame's last byte.
//
// Decoding never trusts on-disk bytes: all lengths are bounds checked and validation
// failures surface as kCorruption (never a crash) — tests/chunk_test.cc fuzzes this.

#ifndef SS_CHUNK_CHUNK_FORMAT_H_
#define SS_CHUNK_CHUNK_FORMAT_H_

#include <cstdint>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/uuid.h"

namespace ss {

inline constexpr uint8_t kChunkMagic0 = 0x53;  // 'S'
inline constexpr uint8_t kChunkMagic1 = 0x43;  // 'C'
inline constexpr uint8_t kChunkVersion = 1;
inline constexpr size_t kChunkHeaderBytes = 2 + 1 + 4 + 16 + 4;  // = 27
inline constexpr size_t kChunkTrailerBytes = 16;
inline constexpr size_t kChunkOverheadBytes = kChunkHeaderBytes + kChunkTrailerBytes;

// Total frame size for a payload of `payload_len` bytes.
size_t ChunkFrameBytes(size_t payload_len);

// Encodes a frame.
Bytes EncodeChunkFrame(ByteSpan payload, const Uuid& uuid);

// Decodes and fully validates a frame that starts at byte 0 of `data`; trailing bytes
// beyond the frame are ignored. Returns the payload.
Result<Bytes> DecodeChunkFrame(ByteSpan data);

// Decoded header of a frame (before the trailer has been validated).
struct ChunkHeader {
  uint32_t payload_len = 0;
  Uuid uuid;
  uint32_t crc = 0;
};

// Parses just the fixed-size header. Fails with kCorruption on bad magic/version or
// truncated input.
Result<ChunkHeader> ParseChunkHeader(ByteSpan data);

}  // namespace ss

#endif  // SS_CHUNK_CHUNK_FORMAT_H_
