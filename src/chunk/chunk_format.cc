#include "src/chunk/chunk_format.h"

#include "src/common/crc32c.h"
#include "src/common/serde.h"

namespace ss {

size_t ChunkFrameBytes(size_t payload_len) { return kChunkOverheadBytes + payload_len; }

Bytes EncodeChunkFrame(ByteSpan payload, const Uuid& uuid) {
  Writer w;
  w.PutU8(kChunkMagic0);
  w.PutU8(kChunkMagic1);
  w.PutU8(kChunkVersion);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutUuid(uuid);
  w.PutU32(Crc32c(payload.data(), payload.size()));
  w.PutRaw(payload);
  w.PutUuid(uuid);
  return std::move(w).Take();
}

Result<ChunkHeader> ParseChunkHeader(ByteSpan data) {
  Reader r(data);
  SS_ASSIGN_OR_RETURN(uint8_t m0, r.GetU8());
  SS_ASSIGN_OR_RETURN(uint8_t m1, r.GetU8());
  if (m0 != kChunkMagic0 || m1 != kChunkMagic1) {
    return Status::Corruption("chunk: bad magic");
  }
  SS_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kChunkVersion) {
    return Status::Corruption("chunk: bad version");
  }
  ChunkHeader header;
  SS_ASSIGN_OR_RETURN(header.payload_len, r.GetU32());
  SS_ASSIGN_OR_RETURN(header.uuid, r.GetUuid());
  SS_ASSIGN_OR_RETURN(header.crc, r.GetU32());
  return header;
}

Result<Bytes> DecodeChunkFrame(ByteSpan data) {
  SS_ASSIGN_OR_RETURN(ChunkHeader header, ParseChunkHeader(data));
  const size_t frame_bytes = ChunkFrameBytes(header.payload_len);
  if (frame_bytes > data.size()) {
    return Status::Corruption("chunk: frame extends past buffer");
  }
  ByteSpan payload = data.subspan(kChunkHeaderBytes, header.payload_len);
  ByteSpan trailer = data.subspan(kChunkHeaderBytes + header.payload_len, kChunkTrailerBytes);
  for (size_t i = 0; i < kChunkTrailerBytes; ++i) {
    if (trailer[i] != header.uuid.bytes[i]) {
      return Status::Corruption("chunk: trailing uuid mismatch");
    }
  }
  if (Crc32c(payload.data(), payload.size()) != header.crc) {
    return Status::Corruption("chunk: payload crc mismatch");
  }
  return Bytes(payload.begin(), payload.end());
}

}  // namespace ss
