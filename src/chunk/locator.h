// Chunk locators: opaque pointers returned by the chunk store (paper section 2.1).
//
// A locator names the physical frame location of a chunk. Locators are stored inside
// LSM index values (shard records) and inside the LSM metadata (run list), so they are
// serializable. Code outside the chunk store treats them as opaque tokens.

#ifndef SS_CHUNK_LOCATOR_H_
#define SS_CHUNK_LOCATOR_H_

#include <cstdint>
#include <string>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/disk/disk.h"

namespace ss {

struct Locator {
  ExtentId extent = 0;
  uint32_t first_page = 0;
  uint32_t page_count = 0;
  uint32_t frame_bytes = 0;  // exact frame length within the page span

  friend bool operator==(const Locator& a, const Locator& b) {
    return a.extent == b.extent && a.first_page == b.first_page &&
           a.page_count == b.page_count && a.frame_bytes == b.frame_bytes;
  }
  friend bool operator!=(const Locator& a, const Locator& b) { return !(a == b); }
  friend bool operator<(const Locator& a, const Locator& b) {
    if (a.extent != b.extent) {
      return a.extent < b.extent;
    }
    if (a.first_page != b.first_page) {
      return a.first_page < b.first_page;
    }
    if (a.page_count != b.page_count) {
      return a.page_count < b.page_count;
    }
    return a.frame_bytes < b.frame_bytes;
  }

  std::string ToString() const {
    return "loc(e" + std::to_string(extent) + " p" + std::to_string(first_page) + "+" +
           std::to_string(page_count) + " b" + std::to_string(frame_bytes) + ")";
  }
};

inline void SerializeLocator(const Locator& loc, Writer& w) {
  w.PutU32(loc.extent);
  w.PutU32(loc.first_page);
  w.PutU32(loc.page_count);
  w.PutU32(loc.frame_bytes);
}

inline Result<Locator> DeserializeLocator(Reader& r) {
  Locator loc;
  SS_ASSIGN_OR_RETURN(loc.extent, r.GetU32());
  SS_ASSIGN_OR_RETURN(loc.first_page, r.GetU32());
  SS_ASSIGN_OR_RETURN(loc.page_count, r.GetU32());
  SS_ASSIGN_OR_RETURN(loc.frame_bytes, r.GetU32());
  return loc;
}

}  // namespace ss

#endif  // SS_CHUNK_LOCATOR_H_
