// Chunk store: PUT(data) -> locator / GET(locator) -> data over append-only extents,
// plus chunk reclamation (garbage collection) — paper section 2.1.
//
// The store owns a set of kChunkData extents. One is the *active* extent receiving new
// appends; when it fills, the store seals it and opens another (reusing a previously
// reclaimed extent or claiming a free one). Deletion is implicit: a chunk is garbage
// when no index reference to its locator remains, and Reclaim() recovers the space by
// scanning an extent, asking the ReclaimClient about each decoded chunk, evacuating the
// live ones, and resetting the extent — with the reset's dependency ordered after every
// evacuation write and reference update (section 2.2).
//
// Seeded bugs hosted here: #1 (scan advance off-by-one at page-size boundaries),
// #5 (transient read error treated as "unreferenced"), #10 (UUID-collision acceptance
// of a torn frame), #11 (locator computed from a racy write-pointer read), and the
// pinning that bug #14 bypasses.

#ifndef SS_CHUNK_CHUNK_STORE_H_
#define SS_CHUNK_CHUNK_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <map>
#include <set>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/chunk/chunk_format.h"
#include "src/chunk/locator.h"
#include "src/common/rng.h"
#include "src/dep/dependency.h"
#include "src/obs/metrics.h"
#include "src/superblock/extent_manager.h"
#include "src/sync/sync.h"

namespace ss {

struct ChunkPutResult {
  Locator locator;
  Dependency dep;
};

// How the reclaimer learns whether a chunk is live and how to repoint references.
class ReclaimClient {
 public:
  virtual ~ReclaimClient() = default;

  // True if some index structure still references `loc`.
  virtual Result<bool> IsReferenced(const Locator& loc) = 0;

  // The chunk at `old_loc` has been evacuated to `new_loc` (whose write persists once
  // `new_dep` does); update every reference and return a dependency that is persistent
  // once the updated references — gated on the evacuated data itself — are durable.
  virtual Result<Dependency> UpdateReference(const Locator& old_loc, const Locator& new_loc,
                                             const Dependency& new_dep) = 0;

  // Dependency that persists once the index state justifying "unreferenced" verdicts is
  // itself durable. Dropping a chunk is only safe after the delete/overwrite/compaction
  // that unreferenced it persists — otherwise a crash could recover an on-disk index
  // that still points into the reset extent. The reclaimer ANDs this into the reset's
  // input when it dropped anything.
  virtual Dependency DropGate() = 0;
};

struct ChunkStoreOptions {
  // Largest accepted payload per chunk; callers split larger values.
  size_t max_payload_bytes = 1024;
  uint64_t uuid_seed = 0x5eed;
};

class ChunkStore {
 public:
  // Metrics land in `metrics` (chunk.*) when provided; otherwise the store owns a
  // private registry so direct construction keeps working in tests.
  ChunkStore(ExtentManager* extents, BufferCache* cache, ChunkStoreOptions options = {},
             MetricRegistry* metrics = nullptr);

  // Stores `data`, framing it and appending to the active extent. The returned
  // dependency covers the frame's pages and soft-pointer updates; it will not be issued
  // before `input` persists.
  //
  // Pinning protocol: Put atomically *pins* the destination extent (a counted pin), and
  // the caller must call Unpin(locator.extent) once the new chunk is referenced by an
  // index structure. Until then the pin keeps concurrent reclamation away from a chunk
  // it would otherwise judge unreferenced and destroy — the race behind the paper's
  // issue #14, whose seeded variant unpins before the metadata update.
  // `scope`, when active, receives a "chunk.write" child span (with extent.append /
  // io.submit descendants).
  Result<ChunkPutResult> Put(ByteSpan data, Dependency input, const SpanScope& scope = {});
  void Unpin(ExtentId extent);

  // Reads and validates the chunk at `loc`. `scope`, when active, receives a
  // "chunk.read" child span (with cache.hit / cache.miss descendants).
  Result<Bytes> Get(const Locator& loc, const SpanScope& scope = {});

  // Garbage-collects `extent`: evacuates referenced chunks, drops the rest, resets the
  // extent and drains its cache pages. Fails with kUnavailable if the extent is pinned
  // or already being reclaimed, and aborts with the underlying error on IO failures.
  Status Reclaim(ExtentId extent, ReclaimClient* client);

  // Sealed, unpinned, non-empty extents eligible for reclamation.
  std::vector<ExtentId> ReclaimableExtents() const;

  size_t max_payload_bytes() const { return options_.max_payload_bytes; }
  // The chunk.* counters live in the registry passed at construction (or the private
  // one): read them via MetricRegistry::Snapshot().
  const MetricRegistry& metrics() const;

  // A scanned frame, as Reclaim sees it. Exposed for tests of the scan logic.
  struct ScannedChunk {
    Locator locator;
    Bytes payload;
  };
  // Scans [0, write pointer) of `extent`, returning the decodable frames. Corrupt pages
  // are skipped with single-page resynchronization.
  Result<std::vector<ScannedChunk>> ScanExtent(ExtentId extent);

 private:
  // Picks (and possibly claims) an extent with room for `pages_needed`, updating the
  // active extent. Returns the chosen extent. Never returns `exclude`.
  Result<ExtentId> PickTargetLocked(uint32_t pages_needed, std::optional<ExtentId> exclude);

  Result<ChunkPutResult> PutInternal(ByteSpan data, Dependency input,
                                     std::optional<ExtentId> exclude,
                                     const SpanScope& scope = {});

  ExtentManager* extents_;
  BufferCache* cache_;
  ChunkStoreOptions options_;

  mutable Mutex mu_{MutexAttr{"chunk.store", lockrank::kChunk}};  // allocator + pin-set state
  std::optional<ExtentId> active_;
  std::map<ExtentId, uint32_t> pin_counts_;
  std::set<ExtentId> reclaiming_;  // excluded from allocation while a reclaim runs
  Rng uuid_rng_;
  std::unique_ptr<MetricRegistry> owned_metrics_;
  MetricRegistry* metrics_ = nullptr;  // the registry in use (owned or caller's)
  Counter* puts_;
  Counter* gets_;
  Counter* reclaims_;
  Counter* chunks_evacuated_;
  Counter* chunks_dropped_;
  Counter* corrupt_frames_skipped_;

  Mutex reclaim_mu_{MutexAttr{"chunk.reclaim", lockrank::kChunkReclaim}};  // one reclamation at a time
};

}  // namespace ss

#endif  // SS_CHUNK_CHUNK_STORE_H_
