// Bounds-checked binary serialization.
//
// Everything that crosses the disk boundary is marshalled through Writer/Reader.
// Readers never trust lengths or offsets found in the input: every access is bounds
// checked and failure surfaces as kCorruption. This is the C++ analogue of the paper's
// panic-freedom requirement for deserializers (section 7): decoding arbitrary bytes must
// never crash, only return an error. tests/common_test.cc fuzzes this property.

#ifndef SS_COMMON_SERDE_H_
#define SS_COMMON_SERDE_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/uuid.h"

namespace ss {

// Appends little-endian fixed-width integers and length-prefixed blobs to a buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(Bytes initial) : buf_(std::move(initial)) {}

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutUuid(const Uuid& u);
  // Raw bytes, no length prefix.
  void PutRaw(ByteSpan data);
  // u32 length prefix followed by the bytes.
  void PutBlob(ByteSpan data);

  size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes Take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Reads the formats produced by Writer. All methods fail with kCorruption when the
// input is exhausted or a length prefix points outside the buffer.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<Uuid> GetUuid();
  // Exactly n raw bytes.
  Result<Bytes> GetRaw(size_t n);
  // u32 length prefix followed by the bytes. `max_len` bounds the accepted length so a
  // corrupt prefix cannot drive a huge allocation.
  Result<Bytes> GetBlob(size_t max_len = 1 << 26);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) const;

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace ss

#endif  // SS_COMMON_SERDE_H_
