#include "src/common/bytes.h"

namespace ss {

Bytes BytesOf(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string HexDump(ByteSpan data, size_t max_bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  const size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  out.reserve(n * 3 + 4);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += kHex[data[i] >> 4];
    out += kHex[data[i] & 0xf];
  }
  if (data.size() > max_bytes) {
    out += " ...";
  }
  return out;
}

}  // namespace ss
