#include "src/common/rng.h"

namespace ss {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
  // Avoid the (astronomically unlikely) all-zero state, which is a fixed point.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Debiased via rejection sampling on the tail.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

int64_t Rng::RangeSigned(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + Below(span + 1));
}

bool Rng::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

size_t Rng::WeightedIndex(const std::vector<uint32_t>& weights) {
  uint64_t total = 0;
  for (uint32_t w : weights) {
    total += w;
  }
  uint64_t pick = Below(total);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (pick < weights[i]) {
      return i;
    }
    pick -= weights[i];
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(Next() ^ 0xd3f2a1c4b5968778ULL); }

}  // namespace ss
