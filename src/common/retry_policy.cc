#include "src/common/retry_policy.h"

namespace ss {
namespace common {

namespace {

// SplitMix64 — the same stream-seeding mix ss::Rng uses, inlined so the jitter draw
// stays a pure function of (seed, attempt) with no shared RNG state.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

RetryPolicy::RetryPolicy(RetryOptions options) : options_(options) {
  if (options_.max_attempts == 0) {
    options_.max_attempts = 1;
  }
  if (options_.jitter < 0.0) {
    options_.jitter = 0.0;
  }
  if (options_.jitter > 1.0) {
    options_.jitter = 1.0;
  }
}

uint64_t RetryPolicy::BackoffTicks(uint32_t failed_attempts) const {
  if (failed_attempts == 0 || options_.backoff_base_ticks == 0) {
    return 0;
  }
  // Exponential schedule: base << (failed_attempts - 1), saturating instead of
  // shifting past 63 bits.
  const uint32_t shift = failed_attempts - 1;
  uint64_t ticks = shift >= 63 ? UINT64_MAX : options_.backoff_base_ticks << shift;
  if (shift < 63 && (ticks >> shift) != options_.backoff_base_ticks) {
    ticks = UINT64_MAX;  // the shift overflowed
  }
  if (options_.max_backoff_ticks != 0 && ticks > options_.max_backoff_ticks) {
    ticks = options_.max_backoff_ticks;
  }
  if (options_.jitter > 0.0) {
    // Deterministic multiplicative jitter in [1-jitter, 1+jitter]: the draw depends
    // only on (jitter_seed, failed_attempts), never on call order.
    const uint64_t draw = SplitMix64(options_.jitter_seed ^ (0x632be59bd9b4e019ull *
                                                            (failed_attempts + 1)));
    const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
    const double factor = 1.0 + options_.jitter * (2.0 * unit - 1.0);
    const double scaled = static_cast<double>(ticks) * factor;
    ticks = scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
  }
  return ticks;
}

RetryPolicy::RunResult RetryPolicy::Run(const std::function<Status(uint32_t)>& attempt,
                                        const std::function<void(uint64_t)>& charge) const {
  RunResult result;
  for (uint32_t i = 0; i < options_.max_attempts; ++i) {
    result.status = attempt(i);
    ++result.attempts;
    if (result.status.ok() || !result.status.retryable()) {
      return result;
    }
    if (i + 1 >= options_.max_attempts) {
      result.exhausted = true;
      return result;
    }
    const uint64_t wait = BackoffTicks(i + 1);
    if (options_.total_backoff_budget_ticks != 0 &&
        result.backoff_ticks + wait > options_.total_backoff_budget_ticks) {
      result.exhausted = true;
      return result;
    }
    result.backoff_ticks += wait;
    if (charge != nullptr && wait > 0) {
      charge(wait);
    }
  }
  return result;  // unreachable: the loop always returns
}

}  // namespace common
}  // namespace ss
