// Byte buffer aliases and small helpers shared across the code base.

#ifndef SS_COMMON_BYTES_H_
#define SS_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ss {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

// Bytes from a string literal / std::string, for tests and examples.
Bytes BytesOf(std::string_view s);

// Hex rendering ("de ad be ef") for diagnostics; truncates long buffers with "...".
std::string HexDump(ByteSpan data, size_t max_bytes = 64);

}  // namespace ss

#endif  // SS_COMMON_BYTES_H_
