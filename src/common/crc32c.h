// CRC32C (Castagnoli) checksum, software implementation.
//
// All on-disk payloads are checksummed: the system treats data read from disk as
// untrusted (paper section 7, "Serialization"), so readers validate CRCs and surface
// kCorruption rather than ever acting on damaged bytes.

#ifndef SS_COMMON_CRC32C_H_
#define SS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ss {

// CRC of `data[0, n)` with the given running value. Chain calls to checksum
// discontiguous regions: Crc32c(b, m, Crc32c(a, n)).
uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t crc = 0);

}  // namespace ss

#endif  // SS_COMMON_CRC32C_H_
