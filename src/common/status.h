// Error model for ShardStore-CPP.
//
// Every fallible operation returns ss::Status or ss::Result<T>. We deliberately avoid
// exceptions on IO paths: a production storage node must treat disk corruption, IO
// failure, and resource exhaustion as ordinary values that flow through the system
// (the paper's failure-injection testing, section 4.4, depends on this).

#ifndef SS_COMMON_STATUS_H_
#define SS_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ss {

// Canonical error codes. Kept intentionally small; the conformance harnesses compare
// codes (not messages) between implementation and reference model.
enum class StatusCode : uint8_t {
  kOk = 0,
  // The requested key / locator / extent does not exist.
  kNotFound = 1,
  // Data read from disk failed validation (bad magic, UUID mismatch, CRC mismatch,
  // impossible lengths). Reads beyond a write pointer also report corruption.
  kCorruption = 2,
  // The environment failed the operation (injected or simulated disk IO error).
  kIoError = 3,
  // Caller misuse: bad arguments, out-of-range offsets, zero-length values.
  kInvalidArgument = 4,
  // Out of disk space, buffer pool exhausted, too many extents.
  kResourceExhausted = 5,
  // The component is not in a state that allows the operation (e.g. disk removed
  // from service, store already shut down).
  kUnavailable = 6,
  // An internal invariant was violated. Seeing this code is itself a bug.
  kInternal = 7,
  // The disk (or an extent of it) has failed permanently: retries cannot help, the
  // data must be served from elsewhere. Distinguished from kIoError, which reports a
  // *transient* environmental failure that a bounded retry may clear.
  kDiskFailed = 8,
};

// Transient/permanent axis of the error taxonomy (the disk-failure-domain layer keys
// its retry and health decisions off this, not off individual codes):
//   * kIoError is transient — a retry with backoff may succeed,
//   * kUnavailable is transient at the *caller's* timescale (a degraded disk may be
//     evacuated and restored) but must not be retried inline, so it is not retryable,
//   * kDiskFailed and everything else are permanent for the issuing operation.
inline bool StatusCodeRetryable(StatusCode code) { return code == StatusCode::kIoError; }

// Human-readable name for a status code ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

// A status is a code plus an optional diagnostic message. Message content is for
// humans; equality and checker logic use only the code.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DiskFailed(std::string msg = "") {
    return Status(StatusCode::kDiskFailed, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  // True if the failure is transient and a bounded retry may clear it.
  bool retryable() const { return StatusCodeRetryable(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "Corruption: bad trailing uuid".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is a Status or a value. Modeled after absl::StatusOr.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return Status::NotFound();` or
  // `return value;` both work.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  Result(T value) : repr_(std::move(value)) {}         // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOkStatus = Status::Ok();
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(repr_);
  }
  StatusCode code() const { return ok() ? StatusCode::kOk : status().code(); }

  // Precondition: ok(). Checked in debug builds via the variant access.
  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<Status, T> repr_;
};

// Propagate a non-OK Status from an expression.
#define SS_RETURN_IF_ERROR(expr)        \
  do {                                  \
    ::ss::Status ss_status__ = (expr);  \
    if (!ss_status__.ok()) {            \
      return ss_status__;               \
    }                                   \
  } while (0)

// Evaluate a Result<T> expression, propagating errors, binding the value otherwise.
#define SS_CAT_INNER_(a, b) a##b
#define SS_CAT_(a, b) SS_CAT_INNER_(a, b)
#define SS_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  decl = std::move(tmp).value()
#define SS_ASSIGN_OR_RETURN(decl, expr) \
  SS_ASSIGN_OR_RETURN_IMPL_(SS_CAT_(ss_result_, __LINE__), decl, expr)

}  // namespace ss

#endif  // SS_COMMON_STATUS_H_
