// Deterministic random number generation.
//
// Every randomized piece of this repository (property-based test generation, crash-state
// selection, PCT scheduling) draws from ss::Rng seeded explicitly, so every failure is
// replayable from its seed — the paper's minimization workflow (section 4.3) depends on
// exact determinism. We use xoshiro256** seeded through SplitMix64.

#ifndef SS_COMMON_RNG_H_
#define SS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ss {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);
  int64_t RangeSigned(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool Chance(double p);

  // Uniform double in [0, 1).
  double NextDouble();

  // Pick an index with probability proportional to weights[i]. Requires a nonempty
  // weight vector with a positive sum.
  size_t WeightedIndex(const std::vector<uint32_t>& weights);

  // Fork a child generator whose stream is independent of subsequent draws from
  // this one. Used to give each test case its own stream.
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace ss

#endif  // SS_COMMON_RNG_H_
