#include "src/common/uuid.h"

namespace ss {

Uuid Uuid::Random(Rng& rng) {
  Uuid u;
  for (int i = 0; i < 16; i += 8) {
    const uint64_t r = rng.Next();
    for (int k = 0; k < 8; ++k) {
      u.bytes[i + k] = static_cast<uint8_t>(r >> (8 * k));
    }
  }
  return u;
}

std::string Uuid::ToString() const {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

}  // namespace ss
