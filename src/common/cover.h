// Lightweight coverage counters.
//
// The paper (section 4.2) monitors code coverage to detect when the property-based test
// harness stops reaching interesting implementation states. We provide an in-process
// analogue: implementation code marks interesting sites with SS_COVER("label"), and test
// harnesses can assert that labels were hit (or report which were not).

#ifndef SS_COMMON_COVER_H_
#define SS_COMMON_COVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ss {

class Coverage {
 public:
  // Global registry (single process-wide instance).
  static Coverage& Global();

  void Hit(const std::string& label);
  uint64_t Count(const std::string& label) const;
  void Reset();

  // All labels ever hit, with counts, sorted by label.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

 private:
  mutable std::map<std::string, uint64_t> counts_;
};

}  // namespace ss

// Count an execution of this site under the given label.
#define SS_COVER(label) ::ss::Coverage::Global().Hit(label)

#endif  // SS_COMMON_COVER_H_
