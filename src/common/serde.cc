#include "src/common/serde.h"

namespace ss {

void Writer::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void Writer::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void Writer::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void Writer::PutUuid(const Uuid& u) {
  buf_.insert(buf_.end(), u.bytes.begin(), u.bytes.end());
}

void Writer::PutRaw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void Writer::PutBlob(ByteSpan data) {
  PutU32(static_cast<uint32_t>(data.size()));
  PutRaw(data);
}

Status Reader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::Corruption("serde: input exhausted");
  }
  return Status::Ok();
}

Result<uint8_t> Reader::GetU8() {
  SS_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> Reader::GetU16() {
  SS_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) | static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Reader::GetU32() {
  SS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::GetU64() {
  SS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 8;
  return v;
}

Result<Uuid> Reader::GetUuid() {
  SS_RETURN_IF_ERROR(Need(16));
  Uuid u;
  for (int i = 0; i < 16; ++i) {
    u.bytes[static_cast<size_t>(i)] = data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 16;
  return u;
}

Result<Bytes> Reader::GetRaw(size_t n) {
  SS_RETURN_IF_ERROR(Need(n));
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<Bytes> Reader::GetBlob(size_t max_len) {
  SS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > max_len) {
    return Status::Corruption("serde: blob length exceeds bound");
  }
  return GetRaw(len);
}

}  // namespace ss
