#include "src/common/crc32c.h"

#include <array>

namespace ss {
namespace {

// Table generated at first use for the Castagnoli polynomial (reflected: 0x82f63b78).
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t crc) {
  const auto& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ss
