#include "src/common/status.h"

namespace ss {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDiskFailed:
      return "DiskFailed";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ss
