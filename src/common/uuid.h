// 128-bit identifiers used to frame chunks on disk.
//
// Chunk frames repeat the UUID at both ends so readers can validate a frame's claimed
// length (paper section 5, bug #10). UUIDs here are random, drawn from the test's
// deterministic Rng so failing histories replay exactly.

#ifndef SS_COMMON_UUID_H_
#define SS_COMMON_UUID_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/rng.h"

namespace ss {

struct Uuid {
  std::array<uint8_t, 16> bytes{};

  static Uuid Random(Rng& rng);
  static Uuid Zero() { return Uuid{}; }

  std::string ToString() const;

  friend bool operator==(const Uuid& a, const Uuid& b) { return a.bytes == b.bytes; }
  friend bool operator!=(const Uuid& a, const Uuid& b) { return !(a == b); }
};

}  // namespace ss

#endif  // SS_COMMON_UUID_H_
