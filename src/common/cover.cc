#include "src/common/cover.h"

#include <mutex>

namespace ss {
namespace {
// Leaf lock protecting the counter map. Deliberately a plain std::mutex (never a model-
// checker scheduling point): coverage is observability, not behaviour.
std::mutex& CoverMutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

Coverage& Coverage::Global() {
  static Coverage* instance = new Coverage();
  return *instance;
}

void Coverage::Hit(const std::string& label) {
  std::lock_guard<std::mutex> lock(CoverMutex());
  ++counts_[label];
}

uint64_t Coverage::Count(const std::string& label) const {
  std::lock_guard<std::mutex> lock(CoverMutex());
  auto it = counts_.find(label);
  return it == counts_.end() ? 0 : it->second;
}

void Coverage::Reset() {
  std::lock_guard<std::mutex> lock(CoverMutex());
  counts_.clear();
}

std::vector<std::pair<std::string, uint64_t>> Coverage::Snapshot() const {
  std::lock_guard<std::mutex> lock(CoverMutex());
  return {counts_.begin(), counts_.end()};
}

}  // namespace ss
