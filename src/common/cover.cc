#include "src/common/cover.h"

#include "src/sync/sync.h"

namespace ss {
namespace {
// Leaf lock protecting the counter map (never a model-checker scheduling point):
// coverage is observability, not behaviour. Still named for the lock-order witness.
Mutex& CoverMutex() {
  static Mutex* mu = new Mutex(MutexAttr{"common.cover", lockrank::kCover, /*leaf=*/true});
  return *mu;
}
}  // namespace

Coverage& Coverage::Global() {
  static Coverage* instance = new Coverage();
  return *instance;
}

void Coverage::Hit(const std::string& label) {
  LockGuard lock(CoverMutex());
  ++counts_[label];
}

uint64_t Coverage::Count(const std::string& label) const {
  LockGuard lock(CoverMutex());
  auto it = counts_.find(label);
  return it == counts_.end() ? 0 : it->second;
}

void Coverage::Reset() {
  LockGuard lock(CoverMutex());
  counts_.clear();
}

std::vector<std::pair<std::string, uint64_t>> Coverage::Snapshot() const {
  LockGuard lock(CoverMutex());
  return {counts_.begin(), counts_.end()};
}

}  // namespace ss
