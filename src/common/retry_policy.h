// Shared bounded-retry policy with deterministic virtual-clock backoff.
//
// Two layers retry transient failures: the extent layer (ExtentManager retries
// injected IO faults against one disk) and the cluster tier (ClusterCoordinator
// retries dropped or timed-out quorum RPCs against remote replicas). Both need the
// same semantics — a bounded attempt budget, exponential backoff charged to a
// *virtual* clock instead of a wall-clock sleep, optional deterministic jitter, and a
// cap on the total backoff an operation may spend — so those semantics are defined
// once here and tested once (tests/cluster_test.cc, RetryPolicy* cases) instead of
// drifting apart per call site.
//
// Determinism contract: everything the policy decides (wait lengths, jitter, when to
// give up) is a pure function of RetryOptions and the attempt index. No wall clock,
// no global RNG — harness runs replay exactly from their seeds, and model-checked
// executions see identical retry behaviour on every explored schedule.

#ifndef SS_COMMON_RETRY_POLICY_H_
#define SS_COMMON_RETRY_POLICY_H_

#include <cstdint>
#include <functional>

#include "src/common/status.h"

namespace ss {
namespace common {

struct RetryOptions {
  // Total attempts per operation (1 initial + max_attempts-1 retries). 0 is treated
  // as 1: the policy always runs the operation at least once.
  uint32_t max_attempts = 3;
  // Virtual ticks charged before the first retry; doubles per subsequent retry
  // (1, 2, 4, ... times the base).
  uint64_t backoff_base_ticks = 1;
  // Per-wait cap on the exponential schedule. 0 = uncapped.
  uint64_t max_backoff_ticks = 0;
  // Total-backoff budget across one operation's retries. Once the accumulated
  // backoff would exceed it, the policy stops retrying (the attempt budget may be
  // unspent). 0 = unlimited.
  uint64_t total_backoff_budget_ticks = 0;
  // Deterministic jitter: each wait is scaled by a factor drawn from
  // [1-jitter, 1+jitter] using SplitMix64 over (jitter_seed, attempt). 0 disables
  // jitter entirely (the wait is exactly the exponential schedule).
  double jitter = 0.0;
  uint64_t jitter_seed = 0;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options);

  // The effective attempt budget (>= 1 even when options said 0).
  uint32_t max_attempts() const { return options_.max_attempts; }
  const RetryOptions& options() const { return options_; }

  // Backoff charged after `failed_attempts` attempts have failed (1-based: the wait
  // before retry k is BackoffTicks(k)). Applies the exponential schedule, the
  // per-wait cap, and deterministic jitter. BackoffTicks(0) is 0.
  uint64_t BackoffTicks(uint32_t failed_attempts) const;

  struct RunResult {
    Status status;               // the final attempt's status (Ok on success)
    uint32_t attempts = 0;       // attempts actually made (>= 1)
    uint64_t backoff_ticks = 0;  // total ticks charged to `charge`
    // True when retries stopped because a budget ran out (attempts or total
    // backoff) while the failure was still transient.
    bool exhausted = false;
  };

  // Runs `attempt` (which receives the 0-based attempt index) until it succeeds,
  // fails non-retryably (Status::retryable() is false), or a budget runs out.
  // Between attempts the policy calls `charge(ticks)` so the caller can advance its
  // virtual clock; `charge` may be null when the caller does not track time.
  RunResult Run(const std::function<Status(uint32_t)>& attempt,
                const std::function<void(uint64_t)>& charge = nullptr) const;

 private:
  RetryOptions options_;
};

}  // namespace common
}  // namespace ss

#endif  // SS_COMMON_RETRY_POLICY_H_
