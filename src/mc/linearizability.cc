#include "src/mc/linearizability.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "src/common/crc32c.h"

namespace ss {

uint64_t LinHistory::Invoke() {
  LockGuard lock(mu_);
  return clock_++;
}

void LinHistory::Finish(uint64_t invoke, LinOp op) {
  LockGuard lock(mu_);
  op.invoke = invoke;
  op.response = clock_++;
  ops_.push_back(std::move(op));
}

void LinHistory::RecordPut(uint64_t invoke, uint64_t key, Bytes value) {
  LinOp op;
  op.kind = LinOp::Kind::kPut;
  op.key = key;
  op.value = std::move(value);
  Finish(invoke, std::move(op));
}

void LinHistory::RecordDelete(uint64_t invoke, uint64_t key) {
  LinOp op;
  op.kind = LinOp::Kind::kDelete;
  op.key = key;
  Finish(invoke, std::move(op));
}

void LinHistory::RecordGetFound(uint64_t invoke, uint64_t key, Bytes result) {
  LinOp op;
  op.kind = LinOp::Kind::kGet;
  op.key = key;
  op.found = true;
  op.result = std::move(result);
  Finish(invoke, std::move(op));
}

void LinHistory::RecordGetMissing(uint64_t invoke, uint64_t key) {
  LinOp op;
  op.kind = LinOp::Kind::kGet;
  op.key = key;
  op.found = false;
  Finish(invoke, std::move(op));
}

std::vector<LinOp> LinHistory::Ops() const {
  LockGuard lock(mu_);
  return ops_;
}

namespace {

using ModelState = std::map<uint64_t, Bytes>;

uint64_t HashState(const ModelState& state) {
  uint32_t h = 0;
  for (const auto& [key, value] : state) {
    h = Crc32c(reinterpret_cast<const uint8_t*>(&key), sizeof(key), h);
    h = Crc32c(value.data(), value.size(), h);
  }
  return h;
}

struct Searcher {
  const std::vector<LinOp>& ops;
  std::set<std::pair<uint64_t, uint64_t>> visited;  // (mask, state hash)

  // Applies `op` to `state` if legal; returns false when the op's result contradicts
  // the sequential semantics.
  static bool Apply(const LinOp& op, ModelState& state) {
    switch (op.kind) {
      case LinOp::Kind::kPut:
        state[op.key] = op.value;
        return true;
      case LinOp::Kind::kDelete:
        state.erase(op.key);
        return true;
      case LinOp::Kind::kGet: {
        auto it = state.find(op.key);
        if (op.found) {
          return it != state.end() && it->second == op.result;
        }
        return it == state.end();
      }
    }
    return false;
  }

  bool Search(uint64_t mask, const ModelState& state) {
    if (mask == (uint64_t{1} << ops.size()) - 1) {
      return true;
    }
    if (!visited.insert({mask, HashState(state)}).second) {
      return false;
    }
    // Candidate next ops: pending ops invoked before every pending op's response —
    // i.e. op X is a candidate unless some other pending op responded before X was
    // invoked (that op would have to linearize first).
    for (size_t i = 0; i < ops.size(); ++i) {
      if ((mask >> i) & 1) {
        continue;
      }
      bool minimal = true;
      for (size_t j = 0; j < ops.size(); ++j) {
        if (i == j || ((mask >> j) & 1)) {
          continue;
        }
        if (ops[j].response < ops[i].invoke) {
          minimal = false;
          break;
        }
      }
      if (!minimal) {
        continue;
      }
      ModelState next = state;
      if (!Apply(ops[i], next)) {
        continue;
      }
      if (Search(mask | (uint64_t{1} << i), next)) {
        return true;
      }
    }
    return false;
  }
};

std::string DescribeOp(const LinOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case LinOp::Kind::kPut:
      out << "Put(" << op.key << ", " << op.value.size() << "B)";
      break;
    case LinOp::Kind::kDelete:
      out << "Delete(" << op.key << ")";
      break;
    case LinOp::Kind::kGet:
      out << "Get(" << op.key << ") -> " << (op.found ? "found" : "missing");
      break;
  }
  out << " @[" << op.invoke << "," << op.response << "]";
  return out.str();
}

}  // namespace

bool CheckLinearizable(const std::vector<LinOp>& history, std::string* explanation) {
  if (history.size() > 62) {
    if (explanation != nullptr) {
      *explanation = "history too long for the checker (max 62 ops)";
    }
    return false;
  }
  Searcher searcher{history, {}};
  if (searcher.Search(0, ModelState{})) {
    return true;
  }
  if (explanation != nullptr) {
    std::ostringstream out;
    out << "no linearization exists for history:";
    for (const LinOp& op : history) {
      out << "\n  " << DescribeOp(op);
    }
    *explanation = out.str();
  }
  return false;
}

}  // namespace ss
