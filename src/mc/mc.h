// Stateless model checking (paper section 6).
//
// McExplore runs `body` many times, each under a controlled scheduler that serializes
// all ss::sync-instrumented threads and systematically varies the interleaving:
//   * kRandom — uniform random walk over runnable threads,
//   * kPct    — probabilistic concurrency testing (Burckhardt et al. [5]): random
//               priorities with `pct_depth` priority-change points; gives probabilistic
//               bug-finding guarantees on low-depth bugs (what Shuttle implements),
//   * kDfs    — exhaustive depth-first enumeration of schedules (what Loom-style sound
//               checking amounts to in a sequentially-consistent model); feasible only
//               for small harnesses.
//
// `body` creates fresh state, spawns ss::Thread workers, and asserts with MC_CHECK.
// Deadlocks (all live threads blocked) are detected and reported with the schedule.
// The schedule trace of a failing execution is returned for replay.

#ifndef SS_MC_MC_H_
#define SS_MC_MC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ss {

struct McOptions {
  enum class Strategy { kRandom, kPct, kDfs };
  Strategy strategy = Strategy::kRandom;
  // Number of executions for kRandom/kPct; an upper bound for kDfs.
  size_t iterations = 200;
  uint64_t seed = 1;
  int pct_depth = 3;
  // Per-execution step budget; exceeding it fails the execution (livelock suspicion).
  size_t max_steps = 200000;
  // Stop after the first failing execution (default) or keep counting failures.
  bool stop_on_failure = true;
  // Fail any execution during which the lock-order witness records a new violation,
  // so latent lock-order cycles surface as counterexamples with replayable schedules.
  bool check_lock_order = true;
};

struct McResult {
  bool ok = true;
  bool deadlock = false;
  bool exhausted = false;  // kDfs only: the full schedule space was covered
  std::string error;
  size_t executions = 0;
  size_t failures = 0;
  uint64_t total_steps = 0;
  std::vector<uint32_t> failing_schedule;  // task ids in scheduling order
};

// Fails the current model-checked execution with `message`. Must be called from inside
// a body running under McExplore.
[[noreturn]] void McFail(const std::string& message);

#define MC_CHECK(cond, msg)   \
  do {                        \
    if (!(cond)) {            \
      ::ss::McFail(msg);      \
    }                         \
  } while (0)

McResult McExplore(const std::function<void()>& body, const McOptions& options);

// Re-runs `body` once under the exact schedule of a previous failing execution
// (McResult::failing_schedule, also persisted in flight-recorder artifacts as
// `mc_schedule`). At each scheduling point the recorded task is chosen if runnable;
// once the schedule is exhausted — or the recorded task cannot run, which only
// happens if `body` is not the body that produced the schedule — the first runnable
// task is picked. A faithful replay reproduces the original failure deterministically.
McResult McReplay(const std::function<void()>& body, const std::vector<uint32_t>& schedule,
                  size_t max_steps = 200000);

}  // namespace ss

#endif  // SS_MC_MC_H_
