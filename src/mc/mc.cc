#include "src/mc/mc.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "src/common/rng.h"
#include "src/sync/sync.h"
#include "src/sync/witness.h"

namespace ss {
namespace {

// Thrown inside managed tasks to unwind them once the execution is over (failure seen
// or deadlock being cleaned up).
struct McKilled {};
// Thrown by McFail.
struct McFailureEx {
  std::string message;
};

enum class TaskState : uint8_t {
  kRunnable,
  kBlockedMutex,
  kBlockedCv,
  kBlockedJoin,
  kFinished,
};

struct Task {
  uint64_t id = 0;
  Thread thread;
  // Per-task baton. Leaf mode: these locks *implement* the scheduling points, so
  // routing them back through SchedHooks would recurse; they stay native but remain
  // visible to the lock-order witness like every other ss primitive.
  Mutex m{MutexAttr{"mc.task.baton", lockrank::kSched, /*leaf=*/true}};
  CondVar cv{CondVarAttr{/*leaf=*/true}};
  bool can_run = false;

  TaskState state = TaskState::kRunnable;
  uintptr_t wait_obj = 0;    // mutex or condvar id
  uintptr_t cv_mutex = 0;    // mutex to reacquire after a condvar wait
  uint64_t wait_join = 0;    // task id being joined
  bool started = false;
};

// One execution's scheduling policy.
class Strategy {
 public:
  virtual ~Strategy() = default;
  // Picks an index into `runnable` (task ids, ascending).
  virtual size_t Pick(const std::vector<uint64_t>& runnable, size_t step) = 0;
  virtual void OnSpawn(uint64_t task_id) {}
};

class RandomStrategy : public Strategy {
 public:
  explicit RandomStrategy(uint64_t seed) : rng_(seed) {}
  size_t Pick(const std::vector<uint64_t>& runnable, size_t step) override {
    return static_cast<size_t>(rng_.Below(runnable.size()));
  }

 private:
  Rng rng_;
};

class PctStrategy : public Strategy {
 public:
  PctStrategy(uint64_t seed, int depth, size_t horizon) : rng_(seed) {
    for (int i = 1; i < depth; ++i) {
      change_points_.insert(rng_.Below(horizon));
    }
  }
  void OnSpawn(uint64_t task_id) override {
    priority_[task_id] = rng_.NextDouble();
  }
  size_t Pick(const std::vector<uint64_t>& runnable, size_t step) override {
    size_t best = 0;
    for (size_t i = 1; i < runnable.size(); ++i) {
      if (priority_[runnable[i]] > priority_[runnable[best]]) {
        best = i;
      }
    }
    if (change_points_.count(step) != 0) {
      // Demote the currently-highest task below everything else.
      priority_[runnable[best]] = next_low_;
      next_low_ -= 1.0;
      best = 0;
      for (size_t i = 1; i < runnable.size(); ++i) {
        if (priority_[runnable[i]] > priority_[runnable[best]]) {
          best = i;
        }
      }
    }
    return best;
  }

 private:
  Rng rng_;
  std::map<uint64_t, double> priority_;
  std::set<size_t> change_points_;
  double next_low_ = -1.0;
};

// Deterministic replay of a recorded schedule (task ids in scheduling order). Picks
// the recorded task when it is runnable, the first runnable task otherwise.
class ReplayStrategy : public Strategy {
 public:
  explicit ReplayStrategy(const std::vector<uint32_t>* schedule) : schedule_(schedule) {}

  size_t Pick(const std::vector<uint64_t>& runnable, size_t step) override {
    if (step < schedule_->size()) {
      const uint64_t want = (*schedule_)[step];
      for (size_t i = 0; i < runnable.size(); ++i) {
        if (runnable[i] == want) {
          return i;
        }
      }
    }
    return 0;
  }

 private:
  const std::vector<uint32_t>* schedule_;
};

// Systematic enumeration: a schedule prefix to replay, then first-choice defaults; the
// driver advances the prefix like an odometer.
class DfsStrategy : public Strategy {
 public:
  struct Node {
    size_t chosen = 0;
    size_t num_choices = 0;
  };

  explicit DfsStrategy(std::vector<Node>* path) : path_(path) {}

  size_t Pick(const std::vector<uint64_t>& runnable, size_t step) override {
    if (step < path_->size()) {
      Node& node = (*path_)[step];
      node.num_choices = runnable.size();
      return std::min(node.chosen, runnable.size() - 1);
    }
    path_->push_back(Node{0, runnable.size()});
    return 0;
  }

 private:
  std::vector<Node>* path_;
};

class McRuntime : public SchedHooks {
 public:
  McRuntime(Strategy* strategy, size_t max_steps, bool check_lock_order = true)
      : strategy_(strategy), max_steps_(max_steps), check_lock_order_(check_lock_order) {}

  // --- Driver side --------------------------------------------------------------------

  // Runs `body` as task 0 and schedules until every task finished. Fills result fields.
  void Run(const std::function<void()>& body, McResult* result) {
    const uint64_t witness_before = LockWitness::Global().violation_count();
    SetActiveSchedHooks(this);
    SpawnInternal(body);
    ScheduleLoop();
    SetActiveSchedHooks(nullptr);
    // Reap threads.
    for (auto& task : tasks_) {
      task->thread.Join();
    }
    // Lock-order violations observed during this execution are counterexamples in
    // their own right, even when the explored schedule happened not to deadlock: the
    // failing schedule replays to the same inversion.
    if (check_lock_order_ && !failed_ &&
        LockWitness::Global().violation_count() > witness_before) {
      failed_ = true;
      error_ = "lock-order violation: " + LockWitness::Global().LastMessage();
    }
    result->total_steps += steps_;
    if (failed_) {
      result->ok = false;
      ++result->failures;
      if (result->error.empty()) {
        result->error = error_;
        result->deadlock = deadlock_;
        result->failing_schedule = trace_;
      }
    }
  }

  bool failed() const { return failed_; }

  // --- SchedHooks ------------------------------------------------------------------------

  void MutexLock(uintptr_t mutex_id) override {
    Task* self = Current();
    while (true) {
      SchedPoint(self);
      auto it = mutex_owner_.find(mutex_id);
      if (it == mutex_owner_.end()) {
        mutex_owner_[mutex_id] = self->id;
        return;
      }
      self->state = TaskState::kBlockedMutex;
      self->wait_obj = mutex_id;
      YieldToScheduler(self);
    }
  }

  void MutexUnlock(uintptr_t mutex_id) override {
    // Reached from destructors (LockGuard) — possibly during exception unwinding — so
    // this must never throw McKilled.
    Task* self = Current();
    mutex_owner_.erase(mutex_id);
    WakeBlocked(TaskState::kBlockedMutex, mutex_id);
    SchedPointNoKill(self);
  }

  void CondWait(uintptr_t cv_id, uintptr_t mutex_id) override {
    Task* self = Current();
    mutex_owner_.erase(mutex_id);
    WakeBlocked(TaskState::kBlockedMutex, mutex_id);
    self->state = TaskState::kBlockedCv;
    self->wait_obj = cv_id;
    self->cv_mutex = mutex_id;
    YieldToScheduler(self);
    // Woken: reacquire the mutex.
    MutexLock(mutex_id);
  }

  void CondNotifyOne(uintptr_t cv_id) override {
    // Conservative: wake every waiter (condition variables are used with predicate
    // loops, so spurious wakeups are benign and this keeps scheduling deterministic).
    CondNotifyAll(cv_id);
  }

  void CondNotifyAll(uintptr_t cv_id) override {
    // Also reachable from destructors; never throws.
    Task* self = Current();
    WakeBlocked(TaskState::kBlockedCv, cv_id);
    SchedPointNoKill(self);
  }

  void SharedAccess(uintptr_t cell_id) override { SchedPoint(Current()); }

  void Yield() override { SchedPoint(Current()); }

  uint64_t Spawn(std::function<void()> body) override {
    Task* self = Current();
    const uint64_t id = SpawnInternal(std::move(body));
    SchedPoint(self);
    return id;
  }

  void Join(uint64_t token) override {
    // Thread::~Thread joins, possibly during exception unwinding; never throws. During
    // poisoned teardown it returns immediately — the target task is force-woken by the
    // scheduler and unwinds on its own (shared state must be owned via shared_ptr,
    // which all harness bodies follow).
    Task* self = Current();
    while (true) {
      if (poisoned_) {
        return;
      }
      SchedPointNoKill(self);
      if (poisoned_) {
        return;
      }
      Task* target = FindTask(token);
      if (target == nullptr || target->state == TaskState::kFinished) {
        return;
      }
      self->state = TaskState::kBlockedJoin;
      self->wait_join = token;
      YieldToScheduler(self);
    }
  }

  // Called by McFail via the thread-local current task.
  [[noreturn]] void FailCurrent(const std::string& message) {
    if (!failed_) {
      failed_ = true;
      error_ = message;
    }
    poisoned_ = true;
    throw McFailureEx{message};
  }

 private:
  static thread_local Task* current_task_;

  Task* Current() { return current_task_; }

  Task* FindTask(uint64_t id) {
    for (auto& task : tasks_) {
      if (task->id == id) {
        return task.get();
      }
    }
    return nullptr;
  }

  uint64_t SpawnInternal(std::function<void()> body) {
    auto task = std::make_unique<Task>();
    task->id = next_id_++;
    Task* raw = task.get();
    if (strategy_ != nullptr) {
      strategy_->OnSpawn(raw->id);
    }
    tasks_.push_back(std::move(task));
    raw->thread = Thread::SpawnNative([this, raw, body = std::move(body)]() {
      current_task_ = raw;
      WaitForBaton(raw);
      try {
        if (poisoned_) {
          throw McKilled{};
        }
        body();
      } catch (const McKilled&) {
        // Normal teardown of a poisoned execution.
      } catch (const McFailureEx&) {
        // Failure already recorded by FailCurrent.
      } catch (const std::exception& e) {
        if (!failed_) {
          failed_ = true;
          error_ = std::string("uncaught exception: ") + e.what();
        }
        poisoned_ = true;
      }
      raw->state = TaskState::kFinished;
      // Unblock joiners.
      for (auto& t : tasks_) {
        if (t->state == TaskState::kBlockedJoin && t->wait_join == raw->id) {
          t->state = TaskState::kRunnable;
        }
      }
      HandBatonToScheduler();
    });
    return raw->id;
  }

  void WakeBlocked(TaskState state, uintptr_t obj) {
    for (auto& task : tasks_) {
      if (task->state == state && task->wait_obj == obj) {
        task->state = TaskState::kRunnable;
      }
    }
  }

  // A scheduling point: hand control back to the scheduler and wait to be rescheduled.
  void SchedPoint(Task* self) {
    if (poisoned_) {
      throw McKilled{};
    }
    YieldToScheduler(self);
    if (poisoned_) {
      throw McKilled{};
    }
  }

  // Scheduling point for paths reachable from (noexcept) destructors: identical
  // scheduling behaviour, but during poisoned teardown it simply returns.
  void SchedPointNoKill(Task* self) {
    if (poisoned_) {
      return;
    }
    YieldToScheduler(self);
  }

  void YieldToScheduler(Task* self) {
    HandBatonToScheduler();
    WaitForBaton(self);
  }

  void WaitForBaton(Task* task) {
    LockGuard lock(task->m);
    while (!task->can_run) {
      task->cv.Wait(task->m);
    }
    task->can_run = false;
  }

  void GiveBaton(Task* task) {
    {
      LockGuard lock(task->m);
      task->can_run = true;
    }
    task->cv.NotifyOne();
  }

  void HandBatonToScheduler() {
    {
      LockGuard lock(sched_m_);
      sched_turn_ = true;
    }
    sched_cv_.NotifyOne();
  }

  void WaitForSchedulerTurn() {
    LockGuard lock(sched_m_);
    while (!sched_turn_) {
      sched_cv_.Wait(sched_m_);
    }
    sched_turn_ = false;
  }

  void ScheduleLoop() {
    while (true) {
      std::vector<uint64_t> runnable;
      bool all_finished = true;
      for (auto& task : tasks_) {
        if (task->state != TaskState::kFinished) {
          all_finished = false;
        }
        if (task->state == TaskState::kRunnable) {
          runnable.push_back(task->id);
        }
      }
      if (all_finished) {
        return;
      }
      if (poisoned_ && runnable.empty()) {
        // Force-wake blocked tasks so they unwind via McKilled.
        for (auto& task : tasks_) {
          if (task->state != TaskState::kFinished) {
            task->state = TaskState::kRunnable;
            runnable.push_back(task->id);
          }
        }
      } else if (runnable.empty()) {
        // Deadlock: live tasks exist but none can run.
        failed_ = true;
        deadlock_ = true;
        std::ostringstream out;
        out << "deadlock:";
        for (auto& task : tasks_) {
          if (task->state == TaskState::kFinished) {
            continue;
          }
          out << " task" << task->id
              << (task->state == TaskState::kBlockedMutex  ? "(mutex)"
                  : task->state == TaskState::kBlockedCv   ? "(condvar)"
                                                           : "(join)");
        }
        error_ = out.str();
        poisoned_ = true;
        continue;
      }
      if (steps_ >= max_steps_ && !poisoned_) {
        failed_ = true;
        error_ = "step budget exceeded (possible livelock)";
        poisoned_ = true;
      }
      size_t pick = poisoned_ ? 0 : strategy_->Pick(runnable, steps_);
      Task* chosen = FindTask(runnable[pick]);
      trace_.push_back(static_cast<uint32_t>(chosen->id));
      ++steps_;
      GiveBaton(chosen);
      WaitForSchedulerTurn();
    }
  }

  Strategy* strategy_;
  size_t max_steps_;
  // When set, an execution fails if the lock-order witness records any new violation
  // during it — lock-order cycles become model-checking counterexamples.
  bool check_lock_order_;
  std::vector<std::unique_ptr<Task>> tasks_;
  uint64_t next_id_ = 0;
  std::map<uintptr_t, uint64_t> mutex_owner_;

  Mutex sched_m_{MutexAttr{"mc.sched", lockrank::kSched, /*leaf=*/true}};
  CondVar sched_cv_{CondVarAttr{/*leaf=*/true}};
  bool sched_turn_ = false;

  size_t steps_ = 0;
  std::vector<uint32_t> trace_;
  bool failed_ = false;
  bool deadlock_ = false;
  bool poisoned_ = false;
  std::string error_;

 public:
  McRuntime(const McRuntime&) = delete;
  McRuntime& operator=(const McRuntime&) = delete;
  ~McRuntime() override = default;
};

thread_local Task* McRuntime::current_task_ = nullptr;

McRuntime*& ActiveRuntime() {
  static McRuntime* active = nullptr;
  return active;
}

}  // namespace

void McFail(const std::string& message) {
  McRuntime* runtime = ActiveRuntime();
  if (runtime == nullptr) {
    // Outside a model-checked run (e.g. a plain unit test): abort loudly.
    throw std::runtime_error("MC_CHECK failed outside McExplore: " + message);
  }
  runtime->FailCurrent(message);
}

McResult McExplore(const std::function<void()>& body, const McOptions& options) {
  McResult result;
  if (options.strategy == McOptions::Strategy::kDfs) {
    std::vector<DfsStrategy::Node> path;
    for (size_t i = 0; i < options.iterations; ++i) {
      DfsStrategy strategy(&path);
      McRuntime runtime(&strategy, options.max_steps, options.check_lock_order);
      ActiveRuntime() = &runtime;
      runtime.Run(body, &result);
      ActiveRuntime() = nullptr;
      ++result.executions;
      if (!result.ok && options.stop_on_failure) {
        return result;
      }
      // Advance the odometer: find the deepest node with an unexplored sibling.
      while (!path.empty()) {
        DfsStrategy::Node& last = path.back();
        if (last.chosen + 1 < last.num_choices) {
          ++last.chosen;
          break;
        }
        path.pop_back();
      }
      if (path.empty()) {
        result.exhausted = true;
        return result;
      }
    }
    return result;
  }

  Rng seeder(options.seed);
  for (size_t i = 0; i < options.iterations; ++i) {
    const uint64_t exec_seed = seeder.Next();
    std::unique_ptr<Strategy> strategy;
    if (options.strategy == McOptions::Strategy::kPct) {
      strategy = std::make_unique<PctStrategy>(exec_seed, options.pct_depth,
                                               /*horizon=*/4096);
    } else {
      strategy = std::make_unique<RandomStrategy>(exec_seed);
    }
    McRuntime runtime(strategy.get(), options.max_steps, options.check_lock_order);
    ActiveRuntime() = &runtime;
    runtime.Run(body, &result);
    ActiveRuntime() = nullptr;
    ++result.executions;
    if (!result.ok && options.stop_on_failure) {
      return result;
    }
  }
  return result;
}

McResult McReplay(const std::function<void()>& body, const std::vector<uint32_t>& schedule,
                  size_t max_steps) {
  McResult result;
  ReplayStrategy strategy(&schedule);
  McRuntime runtime(&strategy, max_steps);
  ActiveRuntime() = &runtime;
  runtime.Run(body, &result);
  ActiveRuntime() = nullptr;
  ++result.executions;
  return result;
}

}  // namespace ss
