// Linearizability checking against the sequential reference model (paper section 6).
//
// Concurrent harnesses record a history of invocations/responses of key-value
// operations; CheckLinearizable searches for a legal sequential witness (Wing & Gong's
// algorithm with memoization on (linearized-set, model-state) pairs). The sequential
// semantics are those of the KV reference model: a map from key to value.

#ifndef SS_MC_LINEARIZABILITY_H_
#define SS_MC_LINEARIZABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/sync/sync.h"

namespace ss {

struct LinOp {
  enum class Kind : uint8_t { kPut, kGet, kDelete };
  Kind kind = Kind::kGet;
  uint64_t key = 0;
  Bytes value;           // put argument
  bool found = false;    // get result: key present?
  Bytes result;          // get result bytes when found
  uint64_t invoke = 0;   // logical invocation timestamp
  uint64_t response = 0; // logical response timestamp (> invoke)
};

// Thread-safe recorder; timestamps come from an internal logical clock, so histories
// are deterministic per model-checked schedule.
class LinHistory {
 public:
  // Returns the invocation timestamp.
  uint64_t Invoke();
  void RecordPut(uint64_t invoke, uint64_t key, Bytes value);
  void RecordDelete(uint64_t invoke, uint64_t key);
  void RecordGetFound(uint64_t invoke, uint64_t key, Bytes result);
  void RecordGetMissing(uint64_t invoke, uint64_t key);

  std::vector<LinOp> Ops() const;

 private:
  void Finish(uint64_t invoke, LinOp op);

  // Unranked on purpose: history recording happens from model-checked workload
  // threads at arbitrary points, so only the order graph constrains it.
  mutable Mutex mu_{MutexAttr{"mc.lin.history", 0}};
  uint64_t clock_ = 1;
  std::vector<LinOp> ops_;
};

// True if the history has a linearization legal for map semantics. On failure,
// `explanation` (optional) describes the obstruction.
bool CheckLinearizable(const std::vector<LinOp>& history, std::string* explanation);

}  // namespace ss

#endif  // SS_MC_LINEARIZABILITY_H_
