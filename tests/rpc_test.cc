// Unit tests for the NodeServer RPC layer: routing, control plane, bulk operations.

#include <gtest/gtest.h>

#include "src/faults/faults.h"
#include "src/rpc/node_server.h"

namespace ss {
namespace {

class NodeServerTest : public testing::Test {
 protected:
  NodeServerTest() {
    FaultRegistry::Global().DisableAll();
    NodeServerOptions options;
    options.disk_count = 3;
    options.geometry = DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                    .page_size = 256};
    node_ = std::move(NodeServer::Create(options).value());
  }

  std::unique_ptr<NodeServer> node_;
};

TEST_F(NodeServerTest, PutGetDeleteRoundTrip) {
  ASSERT_TRUE(node_->Put(1, BytesOf("one")).ok());
  EXPECT_EQ(node_->Get(1).value(), BytesOf("one"));
  ASSERT_TRUE(node_->Delete(1).ok());
  EXPECT_EQ(node_->Get(1).code(), StatusCode::kNotFound);
}

TEST_F(NodeServerTest, RoutingIsStable) {
  for (ShardId id = 0; id < 50; ++id) {
    EXPECT_EQ(node_->DiskFor(id), node_->DiskFor(id));
    EXPECT_LT(node_->DiskFor(id), 3);
  }
}

TEST_F(NodeServerTest, ShardsSpreadAcrossDisks) {
  std::set<int> used;
  for (ShardId id = 0; id < 50; ++id) {
    used.insert(node_->DiskFor(id));
  }
  EXPECT_EQ(used.size(), 3u);
}

TEST_F(NodeServerTest, ListShardsMergesDisks) {
  for (ShardId id = 0; id < 10; ++id) {
    ASSERT_TRUE(node_->Put(id, BytesOf("v")).ok());
  }
  ASSERT_TRUE(node_->Delete(4).ok());
  auto listed = node_->ListShards().value();
  EXPECT_EQ(listed.size(), 9u);
}

TEST_F(NodeServerTest, ScanMergesDisksInKeyOrderAndSkipsDeletes) {
  for (ShardId id = 0; id < 20; ++id) {
    ASSERT_TRUE(node_->Put(id, BytesOf("v" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(node_->Delete(5).ok());
  ASSERT_TRUE(node_->Delete(11).ok());
  MetricsSnapshot before = node_->MetricsSnapshot();
  ScanResult result = node_->Scan(3, 15).value();
  // Live keys of [3, 15) in key order, values intact, regardless of which of the
  // three disks each shard routed to.
  std::vector<ShardId> want = {3, 4, 6, 7, 8, 9, 10, 12, 13, 14};
  ASSERT_EQ(result.items.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.items[i].id, want[i]);
    EXPECT_EQ(result.items[i].value, BytesOf("v" + std::to_string(want[i])));
  }
  // The envelope links to the causal span tree, the ring has the flat event, and the
  // ok-counter moved.
  EXPECT_NE(result.trace_id, 0u);
  MetricsSnapshot after = node_->MetricsSnapshot();
  EXPECT_EQ(CounterDelta(before, after, "rpc.scan.ok"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "rpc.scan.err"), 0u);
  bool traced = false;
  for (const TraceEvent& event : node_->trace().Events()) {
    traced |= event.kind == TraceKind::kScan && event.root_span == result.trace_id &&
              event.status == StatusCode::kOk;
  }
  EXPECT_TRUE(traced);
}

TEST_F(NodeServerTest, ScanEmptyAndInvertedWindowsAreEmpty) {
  ASSERT_TRUE(node_->Put(7, BytesOf("seven")).ok());
  EXPECT_TRUE(node_->Scan(7, 7).value().items.empty());
  EXPECT_TRUE(node_->Scan(9, 2).value().items.empty());
  // A single-key window sees exactly that key.
  ScanResult single = node_->Scan(7, 8).value();
  ASSERT_EQ(single.items.size(), 1u);
  EXPECT_EQ(single.items[0].id, 7u);
}

TEST_F(NodeServerTest, ScanSkipsOutOfServiceDisks) {
  for (ShardId id = 0; id < 12; ++id) {
    ASSERT_TRUE(node_->Put(id, BytesOf("v")).ok());
  }
  ASSERT_TRUE(node_->RemoveDiskFromService(0).ok());
  // Like ListShards, the scan covers only in-service disks — shards homed on the
  // removed disk drop out of the window instead of failing the whole scan.
  ScanResult result = node_->Scan(0, 12).value();
  EXPECT_LT(result.items.size(), 12u);
  for (const ScanItem& item : result.items) {
    EXPECT_NE(node_->DiskFor(item.id), 0);
  }
  ASSERT_TRUE(node_->RestoreDisk(0).ok());
  EXPECT_EQ(node_->Scan(0, 12).value().items.size(), 12u);
}

TEST_F(NodeServerTest, RemovedDiskIsUnavailable) {
  // Find a shard on disk 0.
  ShardId victim = 0;
  while (node_->DiskFor(victim) != 0) {
    ++victim;
  }
  ASSERT_TRUE(node_->Put(victim, BytesOf("v")).ok());
  ASSERT_TRUE(node_->RemoveDiskFromService(0).ok());
  EXPECT_FALSE(node_->InService(0));
  EXPECT_EQ(node_->Get(victim).code(), StatusCode::kUnavailable);
  EXPECT_EQ(node_->Put(victim, BytesOf("w")).code(), StatusCode::kUnavailable);
  EXPECT_EQ(node_->Delete(victim).code(), StatusCode::kUnavailable);
}

TEST_F(NodeServerTest, RemoveRestoreCyclePreservesShards) {
  std::vector<ShardId> on_disk0;
  for (ShardId id = 0; id < 40; ++id) {
    if (node_->DiskFor(id) == 0) {
      on_disk0.push_back(id);
      ASSERT_TRUE(node_->Put(id, BytesOf("payload")).ok());
    }
  }
  ASSERT_FALSE(on_disk0.empty());
  ASSERT_TRUE(node_->RemoveDiskFromService(0).ok());
  ASSERT_TRUE(node_->RestoreDisk(0).ok());
  for (ShardId id : on_disk0) {
    EXPECT_EQ(node_->Get(id).value(), BytesOf("payload")) << "shard " << id;
  }
}

TEST_F(NodeServerTest, Bug4RemovalLosesUnflushedShards) {
  ScopedBug bug(SeededBug::kDiskRemovalLosesShards);
  ShardId victim = 0;
  while (node_->DiskFor(victim) != 0) {
    ++victim;
  }
  ASSERT_TRUE(node_->Put(victim, BytesOf("will be lost")).ok());
  ASSERT_TRUE(node_->RemoveDiskFromService(0).ok());
  ASSERT_TRUE(node_->RestoreDisk(0).ok());
  EXPECT_EQ(node_->Get(victim).code(), StatusCode::kNotFound);
}

TEST_F(NodeServerTest, DoubleRemoveAndDoubleRestoreRejected) {
  ASSERT_TRUE(node_->RemoveDiskFromService(1).ok());
  EXPECT_EQ(node_->RemoveDiskFromService(1).code(), StatusCode::kUnavailable);
  ASSERT_TRUE(node_->RestoreDisk(1).ok());
  EXPECT_EQ(node_->RestoreDisk(1).code(), StatusCode::kUnavailable);
}

TEST_F(NodeServerTest, InvalidDiskIndexRejected) {
  EXPECT_EQ(node_->RemoveDiskFromService(9).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(node_->RestoreDisk(-1).code(), StatusCode::kInvalidArgument);
}

TEST_F(NodeServerTest, ListSkipsOutOfServiceDisks) {
  ShardId on0 = 0;
  while (node_->DiskFor(on0) != 0) {
    ++on0;
  }
  ShardId on1 = 0;
  while (node_->DiskFor(on1) != 1) {
    ++on1;
  }
  ASSERT_TRUE(node_->Put(on0, BytesOf("a")).ok());
  ASSERT_TRUE(node_->Put(on1, BytesOf("b")).ok());
  ASSERT_TRUE(node_->RemoveDiskFromService(0).ok());
  auto listed = node_->ListShards().value();
  EXPECT_EQ(listed, (std::vector<ShardId>{on1}));
}

TEST_F(NodeServerTest, BulkCreateThenRemove) {
  std::vector<std::pair<ShardId, Bytes>> batch = {{1, BytesOf("a")}, {2, BytesOf("b")}};
  std::vector<Status> created = node_->BulkCreate(batch);
  ASSERT_EQ(created.size(), 2u);
  EXPECT_TRUE(created[0].ok());
  EXPECT_TRUE(created[1].ok());
  EXPECT_TRUE(node_->Get(1).ok());
  EXPECT_TRUE(node_->Get(2).ok());
  std::vector<Status> removed = node_->BulkRemove({1, 2});
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_TRUE(removed[0].ok());
  EXPECT_TRUE(removed[1].ok());
  EXPECT_EQ(node_->Get(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(node_->Get(2).code(), StatusCode::kNotFound);
}

TEST_F(NodeServerTest, FlushAllPersistsDependencies) {
  Dependency dep = node_->Put(1, BytesOf("v")).value();
  EXPECT_FALSE(dep.IsPersistent());
  ASSERT_TRUE(node_->FlushAllDisks().ok());
  EXPECT_TRUE(dep.IsPersistent());
}

TEST_F(NodeServerTest, MigrateMovesShardAndPreservesValue) {
  ASSERT_TRUE(node_->Put(5, BytesOf("cargo")).ok());
  const int from = node_->DiskFor(5);
  const int to = (from + 1) % node_->disk_count();
  ASSERT_TRUE(node_->MigrateShard(5, to).ok());
  EXPECT_EQ(node_->DiskFor(5), to);
  EXPECT_EQ(node_->Get(5).value(), BytesOf("cargo"));
  // The source no longer holds it.
  EXPECT_EQ(node_->store(from)->Get(5).code(), StatusCode::kNotFound);
  EXPECT_EQ(node_->store(to)->Get(5).value(), BytesOf("cargo"));
}

TEST_F(NodeServerTest, MigrateToSameDiskIsNoOp) {
  ASSERT_TRUE(node_->Put(5, BytesOf("v")).ok());
  ASSERT_TRUE(node_->MigrateShard(5, node_->DiskFor(5)).ok());
  EXPECT_EQ(node_->Get(5).value(), BytesOf("v"));
}

TEST_F(NodeServerTest, MigrateMissingShardIsNotFound) {
  EXPECT_EQ(node_->MigrateShard(404, 0).code(), StatusCode::kNotFound);
}

TEST_F(NodeServerTest, MigrateToRemovedDiskIsUnavailable) {
  ASSERT_TRUE(node_->Put(5, BytesOf("v")).ok());
  const int to = (node_->DiskFor(5) + 1) % node_->disk_count();
  ASSERT_TRUE(node_->RemoveDiskFromService(to).ok());
  EXPECT_EQ(node_->MigrateShard(5, to).code(), StatusCode::kUnavailable);
  EXPECT_EQ(node_->Get(5).value(), BytesOf("v"));
}

TEST_F(NodeServerTest, MigratedShardSurvivesRemoveRestoreOfNewHome) {
  ASSERT_TRUE(node_->Put(5, BytesOf("v")).ok());
  const int to = (node_->DiskFor(5) + 1) % node_->disk_count();
  ASSERT_TRUE(node_->MigrateShard(5, to).ok());
  ASSERT_TRUE(node_->RemoveDiskFromService(to).ok());
  EXPECT_EQ(node_->Get(5).code(), StatusCode::kUnavailable);
  ASSERT_TRUE(node_->RestoreDisk(to).ok());
  EXPECT_EQ(node_->Get(5).value(), BytesOf("v"));
  EXPECT_EQ(node_->DiskFor(5), to);
}

// Regression: the hash fallback used to route fresh shards straight onto an
// out-of-service disk, making a deterministic 1/N slice of the key space
// unwritable. Fresh placements must skip removed disks in hash order.
TEST_F(NodeServerTest, FreshPlacementSkipsOutOfServiceDisk) {
  ASSERT_TRUE(node_->RemoveDiskFromService(0).ok());
  MetricsSnapshot before = node_->MetricsSnapshot();
  // Every fresh shard — including the ones that hash to the removed disk — must
  // still accept a Put and serve it back.
  for (ShardId id = 100; id < 160; ++id) {
    ASSERT_TRUE(node_->Put(id, BytesOf("fresh-" + std::to_string(id))).ok())
        << "shard " << id;
    EXPECT_NE(node_->DiskFor(id), 0) << "shard " << id << " placed on removed disk";
    EXPECT_EQ(node_->Get(id).value(), BytesOf("fresh-" + std::to_string(id)));
  }
  // ~1/3 of the range hashed to disk 0 and was rerouted; the diversion is visible.
  MetricsSnapshot after = node_->MetricsSnapshot();
  EXPECT_GT(CounterDelta(before, after, "rpc.routing.placement_rerouted"), 0u);
  // Restoring the disk re-exposes its (empty) hash routes without disturbing the
  // directory entries the rerouted shards acquired.
  ASSERT_TRUE(node_->RestoreDisk(0).ok());
  for (ShardId id = 100; id < 160; ++id) {
    EXPECT_EQ(node_->Get(id).value(), BytesOf("fresh-" + std::to_string(id)));
  }
}

TEST_F(NodeServerTest, AllDisksOutOfServiceRefusesFreshPuts) {
  for (int d = 0; d < 3; ++d) {
    ASSERT_TRUE(node_->RemoveDiskFromService(d).ok());
  }
  EXPECT_EQ(node_->Put(100, BytesOf("v")).code(), StatusCode::kUnavailable);
}

// Sick-but-in-service disks deliberately keep their hash routes: a degraded or
// failed disk may still hold data (a flushed value whose delete tombstone is in
// flight), and routing around it would hide that copy from crash reconciliation —
// the fault-alphabet harness finds the resurrection. Mutations gate instead.
TEST_F(NodeServerTest, SickInServiceDiskKeepsItsHashRouteAndGates) {
  ShardId fresh = 100;
  while (node_->DiskFor(fresh) != 0) {
    ++fresh;
  }
  ASSERT_TRUE(node_->MarkDiskDegraded(0).ok());
  EXPECT_EQ(node_->DiskFor(fresh), 0);
  EXPECT_EQ(node_->Put(fresh, BytesOf("v")).code(), StatusCode::kUnavailable);
  // The degraded disk still serves reads of its (absent) keys as NotFound.
  EXPECT_EQ(node_->Get(fresh).code(), StatusCode::kNotFound);
}

TEST_F(NodeServerTest, StoreAccessor) {
  EXPECT_NE(node_->store(0), nullptr);
  EXPECT_EQ(node_->store(7), nullptr);
  ASSERT_TRUE(node_->RemoveDiskFromService(0).ok());
  EXPECT_EQ(node_->store(0), nullptr);
}

}  // namespace
}  // namespace ss
