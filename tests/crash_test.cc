// Section 5 crash-consistency checking: the DirtyReboot harness passes on the correct
// implementation across seeds and geometries, and the two crash properties
// (persistence, forward progress) hold on targeted scenarios.

#include <gtest/gtest.h>

#include "src/faults/faults.h"
#include "src/harness/kv_harness.h"
#include "src/kv/shard_store.h"

namespace ss {
namespace {

class CrashSeeds : public testing::TestWithParam<uint64_t> {
 protected:
  CrashSeeds() { FaultRegistry::Global().DisableAll(); }
};

TEST_P(CrashSeeds, CrashHarnessPasses) {
  KvHarnessOptions options;
  options.crashes = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 250, .max_ops = 80});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSeeds, testing::Values(1, 7, 42, 777, 31337));

class CrashGeometries
    : public testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(CrashGeometries, CrashHarnessPassesAcrossGeometries) {
  FaultRegistry::Global().DisableAll();
  auto [extents, pages, page_size] = GetParam();
  KvHarnessOptions options;
  options.crashes = true;
  options.geometry = DiskGeometry{extents, pages, page_size};
  options.max_value_bytes = page_size * 3;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = 5, .num_cases = 120, .max_ops = 50});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

INSTANTIATE_TEST_SUITE_P(Geometries, CrashGeometries,
                         testing::Values(std::tuple{16u, 8u, 128u},
                                         std::tuple{24u, 16u, 256u},
                                         std::tuple{12u, 32u, 512u},
                                         std::tuple{32u, 8u, 64u}));

// Targeted persistence property: once a dependency reports persistent, the data
// survives any crash, at every pump prefix.
TEST(CrashProperties, PersistentDependencyImpliesDurability) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    InMemoryDisk disk(DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                   .page_size = 256});
    ShardStoreOptions options;
    auto store = std::move(ShardStore::Open(&disk, options).value());
    Bytes value(300, 0x3c);
    Dependency dep = store->Put(1, value).value();
    ASSERT_TRUE(store->FlushIndex().ok());
    Rng rng(seed);
    // Pump a random number of writebacks, then crash with random bias.
    store->PumpIo(rng.Below(12));
    const bool was_persistent = dep.IsPersistent();
    store->scheduler().Crash(rng, 0.5);
    store.reset();
    auto recovered = std::move(ShardStore::Open(&disk, options).value());
    auto got = recovered->Get(1);
    if (was_persistent) {
      ASSERT_TRUE(got.ok()) << "seed " << seed << ": persisted put lost";
      EXPECT_EQ(got.value(), value);
    }
    // Post-crash, the dependency flag must agree with an honest re-poll.
    if (dep.IsPersistent()) {
      ASSERT_TRUE(got.ok()) << "seed " << seed;
    }
  }
}

// Forward progress: after a clean shutdown every dependency reports persistent, for a
// variety of workloads including reclamation and compaction.
TEST(CrashProperties, ForwardProgressAfterCleanShutdown) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    InMemoryDisk disk(DiskGeometry{.extent_count = 20, .pages_per_extent = 16,
                                   .page_size = 256});
    ShardStoreOptions options;
    auto store = std::move(ShardStore::Open(&disk, options).value());
    Rng rng(seed);
    std::vector<Dependency> deps;
    for (int i = 0; i < 25; ++i) {
      const ShardId id = rng.Below(8);
      switch (rng.Below(5)) {
        case 0:
        case 1:
        case 2: {
          auto dep = store->Put(id, Bytes(rng.Below(600), 0x11));
          if (dep.ok()) {
            deps.push_back(dep.value());
          }
          break;
        }
        case 3:
          deps.push_back(store->Delete(id).value());
          break;
        default:
          (void)store->FlushIndex();
          (void)store->ReclaimAny();
          break;
      }
    }
    ASSERT_TRUE(store->FlushAll().ok()) << "seed " << seed;
    for (size_t i = 0; i < deps.size(); ++i) {
      EXPECT_TRUE(deps[i].IsPersistent()) << "seed " << seed << " dep " << i;
    }
  }
}

// The paper's issue #10 scenario, reconstructed deterministically: a torn chunk whose
// trailing UUID spills onto the next page, a crash that loses exactly that page, a new
// chunk written into the gap, and a reclamation pass. Correct code must keep the second
// chunk alive.
TEST(CrashScenarios, TornUuidSpillThenReclaim) {
  FaultRegistry::Global().DisableAll();
  InMemoryDisk disk(DiskGeometry{.extent_count = 12, .pages_per_extent = 16,
                                 .page_size = 256});
  ShardStoreOptions options;
  auto store = std::move(ShardStore::Open(&disk, options).value());
  // Payload chosen so the frame's trailing UUID starts exactly at the page boundary:
  // header(27) + 229 = 256.
  Bytes first_value(229, 0xaa);
  ASSERT_TRUE(store->Put(1, first_value).ok());
  ASSERT_TRUE(store->FlushIndex().ok());
  // Crash persisting a prefix: iterate pump counts to find the torn state (page 0
  // persisted, page 1 lost). Trying all prefixes keeps the test deterministic.
  for (size_t prefix = 0; prefix < 14; ++prefix) {
    InMemoryDisk d2(DiskGeometry{.extent_count = 12, .pages_per_extent = 16,
                                 .page_size = 256});
    auto s2 = std::move(ShardStore::Open(&d2, options).value());
    ASSERT_TRUE(s2->Put(1, first_value).ok());
    ASSERT_TRUE(s2->FlushIndex().ok());
    s2->PumpIo(prefix);
    s2->scheduler().CrashDropAll();
    s2.reset();
    auto recovered = std::move(ShardStore::Open(&d2, options).value());
    // Write a second (small) chunk, which may land in the torn gap.
    Bytes second_value(50, 0xbb);
    ASSERT_TRUE(recovered->Put(2, second_value).ok());
    ASSERT_TRUE(recovered->FlushAll().ok());
    // Reclaim every data extent; the second shard must survive.
    for (ExtentId e : recovered->extents().ExtentsOwnedBy(ExtentOwner::kChunkData)) {
      Status status = recovered->ReclaimExtent(e);
      ASSERT_TRUE(status.ok() || status.code() == StatusCode::kUnavailable)
          << status.ToString();
    }
    ASSERT_TRUE(recovered->FlushAll().ok());
    auto got = recovered->Get(2);
    ASSERT_TRUE(got.ok()) << "prefix " << prefix << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), second_value);
  }
}

// Repeated crash/recover cycles accumulate no corruption.
TEST(CrashScenarios, RepeatedCrashesStayConsistent) {
  FaultRegistry::Global().DisableAll();
  InMemoryDisk disk(DiskGeometry{.extent_count = 24, .pages_per_extent = 16,
                                 .page_size = 256});
  ShardStoreOptions options;
  auto store = std::move(ShardStore::Open(&disk, options).value());
  Rng rng(4242);
  Bytes stable_value(100, 0x7e);
  ASSERT_TRUE(store->Put(0, stable_value).ok());
  ASSERT_TRUE(store->FlushAll().ok());
  for (int round = 0; round < 25; ++round) {
    (void)store->Put(1 + rng.Below(5), Bytes(rng.Below(400), static_cast<uint8_t>(round)));
    (void)store->FlushIndex();
    store->PumpIo(rng.Below(10));
    store->scheduler().Crash(rng, 0.5);
    store.reset();
    auto reopened = ShardStore::Open(&disk, options);
    ASSERT_TRUE(reopened.ok()) << "round " << round;
    store = std::move(reopened).value();
    // The initially persisted shard must always be intact.
    auto got = store->Get(0);
    ASSERT_TRUE(got.ok()) << "round " << round;
    EXPECT_EQ(got.value(), stable_value);
  }
}

}  // namespace
}  // namespace ss
