// Unit tests for the disk backends (in-memory and file-backed) and fault injector.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/disk/disk.h"
#include "src/disk/file_disk.h"

namespace ss {
namespace {

TEST(Disk, GeometryDefaults) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.geometry().extent_count, 32u);
  EXPECT_EQ(disk.geometry().ExtentBytes(), 64u * 256u);
}

TEST(Disk, WriteReadPage) {
  InMemoryDisk disk;
  Bytes data = BytesOf("page contents");
  ASSERT_TRUE(disk.WritePage(3, 0, data).ok());
  Bytes read = disk.ReadPage(3, 0).value();
  ASSERT_EQ(read.size(), disk.geometry().page_size);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), read.begin()));
  // Zero padding beyond the written bytes.
  EXPECT_EQ(read[data.size()], 0);
}

TEST(Disk, UnwrittenPagesReadAsZeros) {
  InMemoryDisk disk;
  Bytes read = disk.ReadPage(5, 7).value();
  EXPECT_EQ(read, Bytes(disk.geometry().page_size, 0));
}

TEST(Disk, OutOfRangeIsInvalidArgument) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.WritePage(99, 0, BytesOf("x")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.ReadPage(0, 9999).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.WriteSoftWp(99, 0).code(), StatusCode::kInvalidArgument);
}

TEST(Disk, OversizedWriteRejected) {
  InMemoryDisk disk;
  Bytes big(disk.geometry().page_size + 1, 0xff);
  EXPECT_EQ(disk.WritePage(1, 0, big).code(), StatusCode::kInvalidArgument);
}

TEST(Disk, SoftWpRoundTrip) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.ReadSoftWp(4), 0u);
  ASSERT_TRUE(disk.WriteSoftWp(4, 17).ok());
  EXPECT_EQ(disk.ReadSoftWp(4), 17u);
  EXPECT_EQ(disk.WriteSoftWp(4, disk.geometry().pages_per_extent + 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(Disk, OwnershipRoundTrip) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.ReadOwnership(6), ExtentOwner::kFree);
  ASSERT_TRUE(disk.WriteOwnership(6, ExtentOwner::kChunkData).ok());
  EXPECT_EQ(disk.ReadOwnership(6), ExtentOwner::kChunkData);
}

TEST(Disk, ResetRetainsPageContents) {
  // A reset must not physically erase data: stale bytes remain readable, which is what
  // makes write-pointer bugs observable (header comment in disk.h).
  InMemoryDisk disk;
  ASSERT_TRUE(disk.WritePage(2, 0, BytesOf("stale")).ok());
  ASSERT_TRUE(disk.ResetExtentRegion(2).ok());
  Bytes read = disk.ReadPage(2, 0).value();
  EXPECT_EQ(read[0], 's');
}

TEST(Disk, ReadPagesConcatenates) {
  InMemoryDisk disk;
  ASSERT_TRUE(disk.WritePage(1, 0, BytesOf("aa")).ok());
  ASSERT_TRUE(disk.WritePage(1, 1, BytesOf("bb")).ok());
  Bytes read = disk.ReadPages(1, 0, 2).value();
  EXPECT_EQ(read.size(), 2u * disk.geometry().page_size);
  EXPECT_EQ(read[0], 'a');
  EXPECT_EQ(read[disk.geometry().page_size], 'b');
}

TEST(Disk, EpochBumps) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.epoch(), 0u);
  disk.BumpEpoch();
  disk.BumpEpoch();
  EXPECT_EQ(disk.epoch(), 2u);
}

TEST(Disk, LivePagesSumsSoftPointers) {
  InMemoryDisk disk;
  ASSERT_TRUE(disk.WriteSoftWp(1, 3).ok());
  ASSERT_TRUE(disk.WriteSoftWp(2, 4).ok());
  EXPECT_EQ(disk.LivePages(), 7u);
}

TEST(FaultInjector, ReadOnceFiresExactlyOnce) {
  DiskFaultInjector injector;
  injector.FailReadOnce(5);
  EXPECT_FALSE(injector.ShouldFailRead(4));  // different extent unaffected
  EXPECT_TRUE(injector.ShouldFailRead(5));
  EXPECT_FALSE(injector.ShouldFailRead(5));
}

TEST(FaultInjector, WriteOnceIndependentOfReads) {
  DiskFaultInjector injector;
  injector.FailWriteOnce(3);
  EXPECT_FALSE(injector.ShouldFailRead(3));
  EXPECT_TRUE(injector.ShouldFailWrite(3));
  EXPECT_FALSE(injector.ShouldFailWrite(3));
}

TEST(FaultInjector, FailAlwaysUntilCleared) {
  DiskFaultInjector injector;
  injector.FailAlways(2, true);
  EXPECT_TRUE(injector.ShouldFailRead(2));
  EXPECT_TRUE(injector.ShouldFailRead(2));
  EXPECT_TRUE(injector.ShouldFailWrite(2));
  injector.FailAlways(2, false);
  EXPECT_FALSE(injector.ShouldFailRead(2));
}

TEST(FaultInjector, ClearDropsEverything) {
  DiskFaultInjector injector;
  injector.FailReadOnce(1);
  injector.FailWriteOnce(1);
  injector.FailAlways(1, true);
  injector.Clear();
  EXPECT_FALSE(injector.ShouldFailRead(1));
  EXPECT_FALSE(injector.ShouldFailWrite(1));
}

TEST(FaultInjector, MultipleOneShotsQueue) {
  DiskFaultInjector injector;
  injector.FailReadOnce(7);
  injector.FailReadOnce(7);
  EXPECT_TRUE(injector.ShouldFailRead(7));
  EXPECT_TRUE(injector.ShouldFailRead(7));
  EXPECT_FALSE(injector.ShouldFailRead(7));
}

// Geometry sweep: writes land and read back across configurations.
class DiskGeometrySweep : public testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(DiskGeometrySweep, FillAndReadBack) {
  auto [extents, pages, page_size] = GetParam();
  InMemoryDisk disk(DiskGeometry{extents, pages, page_size});
  for (ExtentId e = 0; e < extents; ++e) {
    for (uint32_t p = 0; p < pages; ++p) {
      Bytes data = {static_cast<uint8_t>(e), static_cast<uint8_t>(p)};
      ASSERT_TRUE(disk.WritePage(e, p, data).ok());
    }
  }
  for (ExtentId e = 0; e < extents; ++e) {
    for (uint32_t p = 0; p < pages; ++p) {
      Bytes read = disk.ReadPage(e, p).value();
      EXPECT_EQ(read[0], static_cast<uint8_t>(e));
      EXPECT_EQ(read[1], static_cast<uint8_t>(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, DiskGeometrySweep,
                         testing::Values(std::tuple{4u, 4u, 64u}, std::tuple{8u, 16u, 128u},
                                         std::tuple{16u, 8u, 512u}, std::tuple{2u, 64u, 256u}));

// --- FileDisk -------------------------------------------------------------------------

constexpr DiskGeometry kFileGeo{.extent_count = 4, .pages_per_extent = 8, .page_size = 128};

// Fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "filedisk_unit" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::unique_ptr<FileDisk> MustOpen(const std::string& dir, DiskGeometry geometry = kFileGeo) {
  Result<std::unique_ptr<FileDisk>> disk = FileDisk::Open(dir, geometry);
  EXPECT_TRUE(disk.ok()) << disk.status().ToString();
  return std::move(disk).value();
}

TEST(FileDisk, WriteReadRoundTrip) {
  auto disk = MustOpen(FreshDir("roundtrip"));
  Bytes data = BytesOf("file-backed page");
  ASSERT_TRUE(disk->WritePage(2, 3, data).ok());
  Bytes read = disk->ReadPage(2, 3).value();
  ASSERT_EQ(read.size(), kFileGeo.page_size);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), read.begin()));
  EXPECT_EQ(read[data.size()], 0);  // zero padding
  EXPECT_EQ(disk->ReadPage(1, 0).value(), Bytes(kFileGeo.page_size, 0));
}

TEST(FileDisk, SoftWpIsTheFsyncBarrier) {
  auto disk = MustOpen(FreshDir("barrier"));
  const uint64_t baseline = disk->fsync_count();
  ASSERT_TRUE(disk->WritePage(0, 0, BytesOf("buffered")).ok());
  // WritePage only buffers: nothing reached the file, no fsync fired.
  EXPECT_GT(disk->pending_bytes(), 0u);
  EXPECT_EQ(disk->fsync_count(), baseline);
  // The pointer advance flushes+fsyncs the data log, then fsyncs the superblock.
  ASSERT_TRUE(disk->WriteSoftWp(0, 1).ok());
  EXPECT_EQ(disk->pending_bytes(), 0u);
  EXPECT_GE(disk->fsync_count(), baseline + 2);
}

TEST(FileDisk, DropUnsyncedDiscardsOnlyTheTail) {
  auto disk = MustOpen(FreshDir("droptail"));
  ASSERT_TRUE(disk->WritePage(1, 0, BytesOf("durable")).ok());
  ASSERT_TRUE(disk->WriteSoftWp(1, 1).ok());
  ASSERT_TRUE(disk->WritePage(1, 1, BytesOf("in flight")).ok());
  disk->DropUnsynced();  // power cut: the unsynced tail evaporates
  Bytes durable = disk->ReadPage(1, 0).value();
  EXPECT_TRUE(std::equal(durable.begin(), durable.begin() + 7, BytesOf("durable").begin()));
  EXPECT_EQ(disk->ReadPage(1, 1).value(), Bytes(kFileGeo.page_size, 0));
  EXPECT_EQ(disk->ReadSoftWp(1), 1u);
}

TEST(FileDisk, ReopenRecoversPersistedState) {
  const std::string dir = FreshDir("reopen");
  {
    auto disk = MustOpen(dir);
    ASSERT_TRUE(disk->WritePage(0, 0, BytesOf("first")).ok());
    ASSERT_TRUE(disk->WritePage(0, 1, BytesOf("second")).ok());
    ASSERT_TRUE(disk->WriteSoftWp(0, 2).ok());
    ASSERT_TRUE(disk->WriteOwnership(0, ExtentOwner::kLsmMetadata).ok());
  }  // clean shutdown syncs
  auto disk = MustOpen(dir);
  Bytes first = disk->ReadPage(0, 0).value();
  Bytes second = disk->ReadPage(0, 1).value();
  EXPECT_TRUE(std::equal(first.begin(), first.begin() + 5, BytesOf("first").begin()));
  EXPECT_TRUE(std::equal(second.begin(), second.begin() + 6, BytesOf("second").begin()));
  EXPECT_EQ(disk->ReadSoftWp(0), 2u);
  EXPECT_EQ(disk->ReadOwnership(0), ExtentOwner::kLsmMetadata);
}

// A page record appended after the last barrier whose crc is damaged (torn write) must
// be dropped by replay, restoring the previous version of the page.
TEST(FileDisk, RecoveryDropsCorruptTailRecord) {
  const std::string dir = FreshDir("corrupt_tail");
  std::string extent_log;
  {
    auto disk = MustOpen(dir);
    ASSERT_TRUE(disk->WritePage(0, 0, BytesOf("old version")).ok());
    ASSERT_TRUE(disk->WriteSoftWp(0, 1).ok());
    ASSERT_TRUE(disk->WritePage(0, 0, BytesOf("new version")).ok());
    ASSERT_TRUE(disk->WriteSoftWp(0, 1).ok());
    extent_log = disk->ExtentFilePath(0);
  }
  const uintmax_t full_size = std::filesystem::file_size(extent_log);
  {
    // Flip the final byte — the trailing crc32c of the last record.
    std::fstream f(extent_log, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-1, std::ios::end);
    char last = 0;
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0xff));
  }
  auto disk = MustOpen(dir);
  Bytes read = disk->ReadPage(0, 0).value();
  EXPECT_TRUE(std::equal(read.begin(), read.begin() + 11, BytesOf("old version").begin()));
  // Replay truncated the log back to the valid prefix.
  EXPECT_LT(std::filesystem::file_size(extent_log), full_size);
}

// A record cut short mid-frame (short read at the tail) must also be truncated away.
TEST(FileDisk, RecoveryTruncatesShortTailRecord) {
  const std::string dir = FreshDir("short_tail");
  std::string extent_log;
  {
    auto disk = MustOpen(dir);
    ASSERT_TRUE(disk->WritePage(2, 0, BytesOf("kept")).ok());
    ASSERT_TRUE(disk->WriteSoftWp(2, 1).ok());
    ASSERT_TRUE(disk->WritePage(2, 1, BytesOf("torn")).ok());
    ASSERT_TRUE(disk->WriteSoftWp(2, 2).ok());
    extent_log = disk->ExtentFilePath(2);
  }
  const uintmax_t full_size = std::filesystem::file_size(extent_log);
  std::filesystem::resize_file(extent_log, full_size - 3);
  auto disk = MustOpen(dir);
  Bytes kept = disk->ReadPage(2, 0).value();
  EXPECT_TRUE(std::equal(kept.begin(), kept.begin() + 4, BytesOf("kept").begin()));
  EXPECT_EQ(disk->ReadPage(2, 1).value(), Bytes(kFileGeo.page_size, 0));
  EXPECT_EQ(std::filesystem::file_size(extent_log), full_size / 2);
}

TEST(FileDisk, GeometryMismatchRejectedOnReopen) {
  const std::string dir = FreshDir("geometry_mismatch");
  { auto disk = MustOpen(dir); }
  DiskGeometry other = kFileGeo;
  other.pages_per_extent = 16;
  Result<std::unique_ptr<FileDisk>> reopened = FileDisk::Open(dir, other);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(FileDisk, MakeDiskFactorySelectsBackend) {
  Result<std::unique_ptr<Disk>> mem =
      MakeDisk(DiskBackendConfig{}, kFileGeo, /*disk_index=*/0);
  ASSERT_TRUE(mem.ok());
  EXPECT_NE(dynamic_cast<InMemoryDisk*>(mem.value().get()), nullptr);

  // kFile without a root is a configuration error, not a crash.
  DiskBackendConfig no_root{.kind = DiskBackendKind::kFile};
  EXPECT_FALSE(MakeDisk(no_root, kFileGeo, 0).ok());

  DiskBackendConfig file_cfg{.kind = DiskBackendKind::kFile,
                             .file_root = FreshDir("factory")};
  Result<std::unique_ptr<Disk>> file = MakeDisk(file_cfg, kFileGeo, /*disk_index=*/3);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  auto* fd = dynamic_cast<FileDisk*>(file.value().get());
  ASSERT_NE(fd, nullptr);
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(fd->dir())));
  EXPECT_NE(fd->dir().find("disk-3"), std::string::npos);
}

}  // namespace
}  // namespace ss
