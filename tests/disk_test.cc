// Unit tests for the in-memory disk and fault injector.

#include <gtest/gtest.h>

#include "src/disk/disk.h"

namespace ss {
namespace {

TEST(Disk, GeometryDefaults) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.geometry().extent_count, 32u);
  EXPECT_EQ(disk.geometry().ExtentBytes(), 64u * 256u);
}

TEST(Disk, WriteReadPage) {
  InMemoryDisk disk;
  Bytes data = BytesOf("page contents");
  ASSERT_TRUE(disk.WritePage(3, 0, data).ok());
  Bytes read = disk.ReadPage(3, 0).value();
  ASSERT_EQ(read.size(), disk.geometry().page_size);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), read.begin()));
  // Zero padding beyond the written bytes.
  EXPECT_EQ(read[data.size()], 0);
}

TEST(Disk, UnwrittenPagesReadAsZeros) {
  InMemoryDisk disk;
  Bytes read = disk.ReadPage(5, 7).value();
  EXPECT_EQ(read, Bytes(disk.geometry().page_size, 0));
}

TEST(Disk, OutOfRangeIsInvalidArgument) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.WritePage(99, 0, BytesOf("x")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.ReadPage(0, 9999).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.WriteSoftWp(99, 0).code(), StatusCode::kInvalidArgument);
}

TEST(Disk, OversizedWriteRejected) {
  InMemoryDisk disk;
  Bytes big(disk.geometry().page_size + 1, 0xff);
  EXPECT_EQ(disk.WritePage(1, 0, big).code(), StatusCode::kInvalidArgument);
}

TEST(Disk, SoftWpRoundTrip) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.ReadSoftWp(4), 0u);
  ASSERT_TRUE(disk.WriteSoftWp(4, 17).ok());
  EXPECT_EQ(disk.ReadSoftWp(4), 17u);
  EXPECT_EQ(disk.WriteSoftWp(4, disk.geometry().pages_per_extent + 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(Disk, OwnershipRoundTrip) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.ReadOwnership(6), ExtentOwner::kFree);
  ASSERT_TRUE(disk.WriteOwnership(6, ExtentOwner::kChunkData).ok());
  EXPECT_EQ(disk.ReadOwnership(6), ExtentOwner::kChunkData);
}

TEST(Disk, ResetRetainsPageContents) {
  // A reset must not physically erase data: stale bytes remain readable, which is what
  // makes write-pointer bugs observable (header comment in disk.h).
  InMemoryDisk disk;
  ASSERT_TRUE(disk.WritePage(2, 0, BytesOf("stale")).ok());
  ASSERT_TRUE(disk.ResetExtentRegion(2).ok());
  Bytes read = disk.ReadPage(2, 0).value();
  EXPECT_EQ(read[0], 's');
}

TEST(Disk, ReadPagesConcatenates) {
  InMemoryDisk disk;
  ASSERT_TRUE(disk.WritePage(1, 0, BytesOf("aa")).ok());
  ASSERT_TRUE(disk.WritePage(1, 1, BytesOf("bb")).ok());
  Bytes read = disk.ReadPages(1, 0, 2).value();
  EXPECT_EQ(read.size(), 2u * disk.geometry().page_size);
  EXPECT_EQ(read[0], 'a');
  EXPECT_EQ(read[disk.geometry().page_size], 'b');
}

TEST(Disk, EpochBumps) {
  InMemoryDisk disk;
  EXPECT_EQ(disk.epoch(), 0u);
  disk.BumpEpoch();
  disk.BumpEpoch();
  EXPECT_EQ(disk.epoch(), 2u);
}

TEST(Disk, LivePagesSumsSoftPointers) {
  InMemoryDisk disk;
  ASSERT_TRUE(disk.WriteSoftWp(1, 3).ok());
  ASSERT_TRUE(disk.WriteSoftWp(2, 4).ok());
  EXPECT_EQ(disk.LivePages(), 7u);
}

TEST(FaultInjector, ReadOnceFiresExactlyOnce) {
  DiskFaultInjector injector;
  injector.FailReadOnce(5);
  EXPECT_FALSE(injector.ShouldFailRead(4));  // different extent unaffected
  EXPECT_TRUE(injector.ShouldFailRead(5));
  EXPECT_FALSE(injector.ShouldFailRead(5));
}

TEST(FaultInjector, WriteOnceIndependentOfReads) {
  DiskFaultInjector injector;
  injector.FailWriteOnce(3);
  EXPECT_FALSE(injector.ShouldFailRead(3));
  EXPECT_TRUE(injector.ShouldFailWrite(3));
  EXPECT_FALSE(injector.ShouldFailWrite(3));
}

TEST(FaultInjector, FailAlwaysUntilCleared) {
  DiskFaultInjector injector;
  injector.FailAlways(2, true);
  EXPECT_TRUE(injector.ShouldFailRead(2));
  EXPECT_TRUE(injector.ShouldFailRead(2));
  EXPECT_TRUE(injector.ShouldFailWrite(2));
  injector.FailAlways(2, false);
  EXPECT_FALSE(injector.ShouldFailRead(2));
}

TEST(FaultInjector, ClearDropsEverything) {
  DiskFaultInjector injector;
  injector.FailReadOnce(1);
  injector.FailWriteOnce(1);
  injector.FailAlways(1, true);
  injector.Clear();
  EXPECT_FALSE(injector.ShouldFailRead(1));
  EXPECT_FALSE(injector.ShouldFailWrite(1));
}

TEST(FaultInjector, MultipleOneShotsQueue) {
  DiskFaultInjector injector;
  injector.FailReadOnce(7);
  injector.FailReadOnce(7);
  EXPECT_TRUE(injector.ShouldFailRead(7));
  EXPECT_TRUE(injector.ShouldFailRead(7));
  EXPECT_FALSE(injector.ShouldFailRead(7));
}

// Geometry sweep: writes land and read back across configurations.
class DiskGeometrySweep : public testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(DiskGeometrySweep, FillAndReadBack) {
  auto [extents, pages, page_size] = GetParam();
  InMemoryDisk disk(DiskGeometry{extents, pages, page_size});
  for (ExtentId e = 0; e < extents; ++e) {
    for (uint32_t p = 0; p < pages; ++p) {
      Bytes data = {static_cast<uint8_t>(e), static_cast<uint8_t>(p)};
      ASSERT_TRUE(disk.WritePage(e, p, data).ok());
    }
  }
  for (ExtentId e = 0; e < extents; ++e) {
    for (uint32_t p = 0; p < pages; ++p) {
      Bytes read = disk.ReadPage(e, p).value();
      EXPECT_EQ(read[0], static_cast<uint8_t>(e));
      EXPECT_EQ(read[1], static_cast<uint8_t>(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, DiskGeometrySweep,
                         testing::Values(std::tuple{4u, 4u, 64u}, std::tuple{8u, 16u, 128u},
                                         std::tuple{16u, 8u, 512u}, std::tuple{2u, 64u, 256u}));

}  // namespace
}  // namespace ss
