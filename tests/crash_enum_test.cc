// Tests for the exhaustive block-level crash-state enumerator (paper section 5's
// BOB/CrashMonkey-style DirtyReboot variant).

#include <gtest/gtest.h>

#include "src/faults/faults.h"
#include "src/harness/crash_enum.h"

namespace ss {
namespace {

KvOp Put(ShardId id, size_t size, uint8_t tag) {
  KvOp op;
  op.kind = KvOpKind::kPut;
  op.id = id;
  op.value = Bytes(size, tag);
  return op;
}

KvOp Op(KvOpKind kind, uint32_t arg = 0) {
  KvOp op;
  op.kind = kind;
  op.arg = arg;
  return op;
}

class CrashEnumTest : public testing::Test {
 protected:
  CrashEnumTest() { FaultRegistry::Global().DisableAll(); }

  CrashEnumOptions options_;
};

TEST_F(CrashEnumTest, EmptyWorkloadHasOneCrashState) {
  CrashEnumResult result = EnumerateCrashStates({}, options_);
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.violation.has_value());
  // Formatting IO is pending even with no ops, so a handful of states exist; the
  // all-dropped state is always one of them.
  EXPECT_GE(result.states_explored, 1u);
}

TEST_F(CrashEnumTest, SinglePutExhaustsAndPasses) {
  CrashEnumResult result =
      EnumerateCrashStates({Put(1, 100, 0xaa), Op(KvOpKind::kFlushIndex)}, options_);
  EXPECT_TRUE(result.exhausted) << result.states_explored;
  EXPECT_FALSE(result.violation.has_value()) << *result.violation;
  // More than one crash state: partial persistence is enumerated.
  EXPECT_GT(result.states_explored, 10u);
}

TEST_F(CrashEnumTest, MultiPutWithDeleteExhaustsAndPasses) {
  CrashEnumResult result = EnumerateCrashStates(
      {Put(1, 80, 1), Put(2, 300, 2), Op(KvOpKind::kFlushIndex), Op(KvOpKind::kDelete)},
      options_);
  // (kDelete above has id 0 — a delete of a never-written key; also legal.)
  EXPECT_FALSE(result.violation.has_value()) << *result.violation;
}

TEST_F(CrashEnumTest, CapIsRespected) {
  CrashEnumOptions capped = options_;
  capped.max_states = 5;
  CrashEnumResult result =
      EnumerateCrashStates({Put(1, 400, 1), Put(2, 400, 2), Op(KvOpKind::kFlushIndex)},
                           capped);
  EXPECT_EQ(result.states_explored, 5u);
  EXPECT_FALSE(result.exhausted);
}

TEST_F(CrashEnumTest, DetectsSeededBug8) {
  ScopedBug bug(SeededBug::kWriteMissingSoftPointerDep);
  CrashEnumResult result =
      EnumerateCrashStates({Put(1, 100, 0xaa), Op(KvOpKind::kFlushIndex)}, options_);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_NE(result.violation->find("lost"), std::string::npos);
  EXPECT_FALSE(result.violating_plan.empty());
}

TEST_F(CrashEnumTest, DetectsSeededBug6) {
  ScopedBug bug(SeededBug::kSuperblockWrongOwnershipDep);
  // Ownership-dependency bugs need a workload that claims an extent, persists data,
  // crashes losing the ownership record, and reuses the extent after recovery — the
  // enumerator's post-crash sweep plus a reclaim makes the stale state visible.
  CrashEnumResult result = EnumerateCrashStates(
      {Put(1, 600, 1), Op(KvOpKind::kFlushIndex), Op(KvOpKind::kPumpIo, 8)}, options_);
  // Not every workload exposes #6 through enumeration alone; accept either detection
  // or clean exhaustion, but the run must never crash or hang.
  if (result.violation.has_value()) {
    SUCCEED();
  } else {
    EXPECT_TRUE(result.exhausted || result.states_explored == options_.max_states);
  }
}

TEST_F(CrashEnumTest, ViolatingPlanReplaysDeterministically) {
  ScopedBug bug(SeededBug::kWriteMissingSoftPointerDep);
  std::vector<KvOp> ops = {Put(1, 100, 0xaa), Op(KvOpKind::kFlushIndex)};
  CrashEnumResult first = EnumerateCrashStates(ops, options_);
  CrashEnumResult second = EnumerateCrashStates(ops, options_);
  ASSERT_TRUE(first.violation.has_value());
  ASSERT_TRUE(second.violation.has_value());
  EXPECT_EQ(first.states_explored, second.states_explored);
  EXPECT_EQ(first.violating_plan, second.violating_plan);
}

KvOp PutBatch(std::vector<std::pair<ShardId, size_t>> items) {
  KvOp op;
  op.kind = KvOpKind::kPutBatch;
  for (const auto& [id, size] : items) {
    op.batch.emplace_back(id, Bytes(size, static_cast<uint8_t>(0x40 + id)));
  }
  return op;
}

// The batch crash contract: every enumerated crash state surfaces, per item, either
// the item's exact value or nothing — never a torn value, never an index entry whose
// chunks are missing. EnumerateCrashStates' sweep checks exactly that per key.
TEST_F(CrashEnumTest, BatchPrefixOnlyPersistence) {
  CrashEnumResult result = EnumerateCrashStates(
      {PutBatch({{1, 80}, {2, 300}, {3, 120}}), Op(KvOpKind::kFlushIndex)}, options_);
  EXPECT_TRUE(result.exhausted) << result.states_explored;
  EXPECT_FALSE(result.violation.has_value()) << *result.violation;
  EXPECT_GT(result.states_explored, 10u);
}

// A batch overwriting an already-flushed key must never surface anything outside the
// {old value, new value} set for that key, in any crash state.
TEST_F(CrashEnumTest, BatchOverwriteStaysInAllowedSet) {
  CrashEnumResult result = EnumerateCrashStates(
      {Put(1, 100, 0xaa), Op(KvOpKind::kFlushIndex),
       PutBatch({{1, 200}, {2, 90}}), Op(KvOpKind::kFlushIndex)},
      options_);
  EXPECT_FALSE(result.violation.has_value()) << *result.violation;
}

// Regression against the dependency bug the paper's Figure 6 family targets: a batch
// whose soft-pointer dependency is dropped must be caught by enumeration, proving the
// enumerator still has teeth through the group-commit path.
TEST_F(CrashEnumTest, BatchDetectsSeededBug8) {
  ScopedBug bug(SeededBug::kWriteMissingSoftPointerDep);
  CrashEnumResult result = EnumerateCrashStates(
      {PutBatch({{1, 100}, {2, 100}}), Op(KvOpKind::kFlushIndex)}, options_);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_FALSE(result.violating_plan.empty());
}

TEST_F(CrashEnumTest, RejectsUnsupportedOps) {
  KvOp reboot;
  reboot.kind = KvOpKind::kReboot;
  CrashEnumResult result = EnumerateCrashStates({reboot}, options_);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_NE(result.violation->find("not supported"), std::string::npos);
}

}  // namespace
}  // namespace ss
