// Tests for the concurrency & crash-ordering analysis passes: the lock-order witness
// (inversion detection, acquisition stacks, flight artifacts, model-checker
// integration) and the soft-updates dependency linter (seeded bug #7's orphaned
// writes, pointer-before-barrier, DOT rendering into flight artifacts).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/dep/dep_lint.h"
#include "src/faults/faults.h"
#include "src/mc/mc.h"
#include "src/obs/flight_recorder.h"
#include "src/superblock/extent_manager.h"
#include "src/sync/sync.h"
#include "src/sync/witness.h"

namespace ss {
namespace {

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A fresh artifact directory under the test temp root; removed first so written()
// and file names start from zero.
std::string FreshFlightDir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + "analysis_" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- Lock-order witness --------------------------------------------------------------

// The regression the witness exists for: two threads take the same pair of locks in
// opposite orders. Neither run deadlocks (the threads are serialized), but the order
// graph closes a cycle and the report pairs the acquisition stacks of both directions.
TEST(LockWitness, TwoThreadInvertedOrderReportsCycleWithBothStacks) {
  LockWitness::Global().Reset();
  Mutex a{MutexAttr{"analysis.order.a", 0}};
  Mutex b{MutexAttr{"analysis.order.b", 0}};

  Thread forward = Thread::Spawn([&] {
    LockGuard la(a);
    LockGuard lb(b);
  });
  forward.Join();
  EXPECT_EQ(LockWitness::Global().violation_count(), 0u);  // one order alone is fine

  Thread backward = Thread::Spawn([&] {
    LockGuard lb(b);
    LockGuard la(a);
  });
  backward.Join();

  EXPECT_EQ(LockWitness::Global().violation_count(), 1u);
  std::vector<LockOrderReport> reports = LockWitness::Global().Reports();
  ASSERT_EQ(reports.size(), 1u);
  const LockOrderReport& report = reports.front();
  EXPECT_EQ(report.kind, LockOrderReport::Kind::kCycle);
  EXPECT_NE(report.message.find("analysis.order.a"), std::string::npos) << report.message;
  EXPECT_NE(report.message.find("analysis.order.b"), std::string::npos) << report.message;

  // Both directions of the inversion, each with the acquiring thread's held stack.
  ASSERT_EQ(report.edges.size(), 2u);
  EXPECT_NE(report.edges[0].thread, report.edges[1].thread);
  for (const LockOrderEdge& edge : report.edges) {
    ASSERT_FALSE(edge.held_stack.empty());
  }
  // The same inversion again is deduplicated, not re-reported.
  Thread again = Thread::Spawn([&] {
    LockGuard lb(b);
    LockGuard la(a);
  });
  again.Join();
  EXPECT_EQ(LockWitness::Global().violation_count(), 1u);
}

// Rank inversions need no second thread: taking a lower-ranked (outer) lock while an
// inner one is held contradicts the declared layer order immediately.
TEST(LockWitness, RankInversionReportedOnSingleThread) {
  LockWitness::Global().Reset();
  Mutex inner{MutexAttr{"analysis.rank.inner", 90}};
  Mutex outer{MutexAttr{"analysis.rank.outer", 15}};
  {
    LockGuard hold(inner);
    LockGuard oops(outer);
  }
  EXPECT_EQ(LockWitness::Global().violation_count(), 1u);
  std::vector<LockOrderReport> reports = LockWitness::Global().Reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports.front().kind, LockOrderReport::Kind::kRankInversion);
  EXPECT_NE(reports.front().message.find("rank"), std::string::npos)
      << reports.front().message;
}

// Round trip through the flight recorder: a violation detected while a sink is armed
// lands on disk as a lockorder artifact whose analysis payload carries the cycle and
// both acquisition stacks.
TEST(LockWitness, ViolationWritesFlightArtifact) {
  LockWitness::Global().Reset();
  const std::string dir = FreshFlightDir("lockorder_flight");
  FlightRecorder recorder(dir);
  ScopedLockOrderFlightSink sink(&recorder);

  Mutex a{MutexAttr{"analysis.flight.a", 0}};
  Mutex b{MutexAttr{"analysis.flight.b", 0}};
  Thread forward = Thread::Spawn([&] {
    LockGuard la(a);
    LockGuard lb(b);
  });
  forward.Join();
  Thread backward = Thread::Spawn([&] {
    LockGuard lb(b);
    LockGuard la(a);
  });
  backward.Join();

  ASSERT_EQ(recorder.written(), 1u);
  const std::string text = ReadFileText(dir + "/flight-0-lockorder.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"harness\":\"lockorder\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"kind\":\"cycle\""), std::string::npos) << text;
  EXPECT_NE(text.find("analysis.flight.a"), std::string::npos) << text;
  EXPECT_NE(text.find("analysis.flight.b"), std::string::npos) << text;
  EXPECT_NE(text.find("\"held_stack\""), std::string::npos) << text;
}

// --- Witness under the model checker -------------------------------------------------

// A lock-order cycle inside a model-checked body fails the execution and hands back a
// replayable schedule, exactly like any other MC_CHECK violation.
TEST(LockWitnessMc, CycleBecomesModelCheckingCounterexample) {
  LockWitness::Global().Reset();
  auto body = [] {
    auto a = std::make_shared<Mutex>(MutexAttr{"analysis.mc.a", 0});
    auto b = std::make_shared<Mutex>(MutexAttr{"analysis.mc.b", 0});
    Thread t = Thread::Spawn([a, b] {
      LockGuard la(*a);
      LockGuard lb(*b);
    });
    t.Join();
    LockGuard lb(*b);
    LockGuard la(*a);
  };

  McOptions options;
  options.strategy = McOptions::Strategy::kRandom;
  options.iterations = 20;
  options.seed = 1;
  McResult result = McExplore(body, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("lock-order violation"), std::string::npos) << result.error;
  ASSERT_FALSE(result.failing_schedule.empty());

  // The schedule replays to the same counterexample (after clearing dedup state).
  LockWitness::Global().Reset();
  McResult replay = McReplay(body, result.failing_schedule);
  EXPECT_FALSE(replay.ok);
  EXPECT_NE(replay.error.find("lock-order violation"), std::string::npos) << replay.error;

  // Opting out per exploration ignores the witness (e.g. a body that tests the
  // witness itself).
  LockWitness::Global().Reset();
  options.check_lock_order = false;
  McResult unchecked = McExplore(body, options);
  EXPECT_TRUE(unchecked.ok) << unchecked.error;
}

// --- Soft-updates dependency linter --------------------------------------------------

DiskGeometry SmallGeo() {
  return DiskGeometry{.extent_count = 8, .pages_per_extent = 8, .page_size = 64};
}

// Seeded bug #7 (stale soft-pointer tracker after reset) leaves post-reset appends
// with no covering soft-wp update: the linter flags the orphaned pages at the flush
// barrier, fails the flush, and renders the offending subgraph as DOT into a flight
// artifact. The healthy path before the bug passes the same lint.
TEST(DepLint, CatchesSeededBug7OrphanedWritesAtBarrier) {
  FaultRegistry::Global().DisableAll();
  InMemoryDisk disk(SmallGeo());
  IoScheduler scheduler(&disk);
  ExtentManager extents(&disk, &scheduler);

  ScopedDepLint lint(true);
  const std::string dir = FreshFlightDir("deplint_flight");
  FlightRecorder recorder(dir);
  ScopedDepLintFlightSink sink(&recorder);
  DepLintReport captured;
  bool saw_report = false;
  ScopedDepLintHandler capture([&](const DepLintReport& report) {
    captured = report;
    saw_report = true;
  });

  const ExtentId e = extents.ClaimExtent(ExtentOwner::kChunkData).value();
  ASSERT_TRUE(extents.Append(e, Bytes(300, 1), Dependency()).ok());
  ASSERT_TRUE(scheduler.FlushAll().ok());  // healthy graph passes the lint
  EXPECT_FALSE(saw_report);

  {
    ScopedBug bug(SeededBug::kSoftPointerNotResetPersisted);
    extents.Reset(e, Dependency());
    ASSERT_TRUE(extents.Append(e, Bytes(64, 2), Dependency()).ok());
  }
  Status flush = scheduler.FlushAll();
  ASSERT_FALSE(flush.ok());
  EXPECT_EQ(flush.code(), StatusCode::kInternal);
  EXPECT_NE(flush.message().find("dependency lint"), std::string::npos) << flush.ToString();

  ASSERT_TRUE(saw_report);
  ASSERT_FALSE(captured.violations.empty());
  EXPECT_EQ(captured.violations.front().kind, DepLintViolation::Kind::kOrphanData)
      << captured.ToString();
  EXPECT_NE(captured.dot.find("digraph"), std::string::npos);

  // The artifact carries the DOT subgraph and the violation list.
  ASSERT_EQ(recorder.written(), 1u);
  const std::string text = ReadFileText(dir + "/flight-0-deplint.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"harness\":\"deplint\""), std::string::npos) << text;
  EXPECT_NE(text.find("orphan_data"), std::string::npos) << text;
  EXPECT_NE(text.find("digraph"), std::string::npos) << text;

  // The counter moved with the violation.
  EXPECT_GE(scheduler.metrics().Snapshot().counter("io.deplint.violations"), 1u);
}

// A soft write pointer enqueued with no dependency path to the data it exposes is the
// barrier-before-pointer violation: the pointer could reach the disk first.
TEST(DepLint, FlagsPointerWithNoBarrierToItsData) {
  InMemoryDisk disk(SmallGeo());
  IoScheduler scheduler(&disk);
  scheduler.EnqueueDataPage(1, 0, Bytes(64, 3), {});
  scheduler.EnqueueSoftWp(1, 1, {});  // exposes page 0, no dependency on it

  DepLintReport report = scheduler.Lint();
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const DepLintViolation& v : report.violations) {
    found = found || v.kind == DepLintViolation::Kind::kPointerBeforeBarrier;
  }
  EXPECT_TRUE(found) << report.ToString();
  EXPECT_NE(report.dot.find("digraph"), std::string::npos);
}

// The correctly-wired enqueue (pointer depends on its data) is lint-clean.
TEST(DepLint, AcceptsPointerWithBarrierDependency) {
  InMemoryDisk disk(SmallGeo());
  IoScheduler scheduler(&disk);
  Dependency data = scheduler.EnqueueDataPage(1, 0, Bytes(64, 3), {});
  scheduler.EnqueueSoftWp(1, 1, {data});
  DepLintReport report = scheduler.Lint();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.dot.empty());
}

}  // namespace
}  // namespace ss
