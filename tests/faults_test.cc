// Unit tests for the seeded-bug registry and the disk fault injector, plus
// fault-injection regressions for the compaction retry loop.

#include <gtest/gtest.h>

#include "src/sync/sync.h"

#include "src/cache/buffer_cache.h"
#include "src/chunk/chunk_store.h"
#include "src/dep/io_scheduler.h"
#include "src/disk/disk.h"
#include "src/faults/faults.h"
#include "src/lsm/lsm_index.h"
#include "src/superblock/extent_manager.h"

namespace ss {
namespace {

TEST(Faults, AllDisabledByDefault) {
  FaultRegistry::Global().DisableAll();
  for (int b = 0; b < kSeededBugCount; ++b) {
    EXPECT_FALSE(BugEnabled(static_cast<SeededBug>(b)));
  }
}

TEST(Faults, EnableDisableRoundTrip) {
  FaultRegistry::Global().Enable(SeededBug::kReclaimUuidCollision);
  EXPECT_TRUE(BugEnabled(SeededBug::kReclaimUuidCollision));
  EXPECT_FALSE(BugEnabled(SeededBug::kCacheNotDrainedOnReset));
  FaultRegistry::Global().Disable(SeededBug::kReclaimUuidCollision);
  EXPECT_FALSE(BugEnabled(SeededBug::kReclaimUuidCollision));
}

TEST(Faults, ScopedBugRestoresState) {
  {
    ScopedBug scope(SeededBug::kBufferPoolDeadlock);
    EXPECT_TRUE(BugEnabled(SeededBug::kBufferPoolDeadlock));
  }
  EXPECT_FALSE(BugEnabled(SeededBug::kBufferPoolDeadlock));
}

TEST(Faults, MetadataTablesComplete) {
  for (int b = 0; b < kSeededBugCount; ++b) {
    const auto bug = static_cast<SeededBug>(b);
    EXPECT_FALSE(SeededBugName(bug).empty());
    EXPECT_FALSE(SeededBugDescription(bug).empty());
    EXPECT_FALSE(SeededBugComponent(bug).empty());
    // Names carry the Figure 5 row number.
    EXPECT_EQ(SeededBugName(bug)[0], '#');
  }
}

TEST(Faults, ComponentsMatchFigure5) {
  EXPECT_EQ(SeededBugComponent(SeededBug::kReclaimOffByOnePageSize), "Chunk store");
  EXPECT_EQ(SeededBugComponent(SeededBug::kCacheNotDrainedOnReset), "Buffer cache");
  EXPECT_EQ(SeededBugComponent(SeededBug::kShutdownMetadataSkipAfterReset), "Index");
  EXPECT_EQ(SeededBugComponent(SeededBug::kDiskRemovalLosesShards), "API");
  EXPECT_EQ(SeededBugComponent(SeededBug::kSuperblockWrongOwnershipDep), "Superblock");
}

TEST(Faults, DisableAllClearsEverything) {
  for (int b = 0; b < kSeededBugCount; ++b) {
    FaultRegistry::Global().Enable(static_cast<SeededBug>(b));
  }
  FaultRegistry::Global().DisableAll();
  for (int b = 0; b < kSeededBugCount; ++b) {
    EXPECT_FALSE(BugEnabled(static_cast<SeededBug>(b)));
  }
}

TEST(Faults, ScopedSeededBugSurvivesEarlyExit) {
  // The guard must clean up even when the scope unwinds through a return/throw path.
  auto body = [] {
    ScopedSeededBug scope(SeededBug::kListRemoveRace);
    EXPECT_TRUE(BugEnabled(SeededBug::kListRemoveRace));
    return;  // early exit; destructor still runs
  };
  body();
  EXPECT_FALSE(BugEnabled(SeededBug::kListRemoveRace));
}

// --- DiskFaultInjector edge cases ----------------------------------------------------

TEST(FaultInjector, PermanentBeatsOneShotOnSameExtent) {
  DiskFaultInjector injector;
  injector.FailReadOnce(3);
  injector.FailAlways(3, true);
  // FailAlways wins on every attempt; the one-shot entry is not what gates the extent.
  EXPECT_TRUE(injector.IsPermanentlyFailed(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  // Disarming the permanent fault exposes the (still armed) one-shot, which then
  // consumes itself.
  injector.FailAlways(3, false);
  EXPECT_FALSE(injector.IsPermanentlyFailed(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  EXPECT_FALSE(injector.ShouldFailRead(3));
}

TEST(FaultInjector, ClearMidSequenceDropsRemainingBurst) {
  DiskFaultInjector injector;
  injector.FailReadTimes(2, 4);
  EXPECT_TRUE(injector.ShouldFailRead(2));
  EXPECT_TRUE(injector.ShouldFailRead(2));
  injector.Clear();
  // The two unconsumed entries are gone, as is everything else armed.
  EXPECT_FALSE(injector.ShouldFailRead(2));
  EXPECT_FALSE(injector.AnyArmed());
}

TEST(FaultInjector, ReadAndWriteBurstsAreIndependent) {
  DiskFaultInjector injector;
  injector.FailReadTimes(1, 2);
  injector.FailWriteTimes(1, 1);
  EXPECT_TRUE(injector.ShouldFailWrite(1));
  EXPECT_FALSE(injector.ShouldFailWrite(1));  // write burst exhausted
  EXPECT_TRUE(injector.ShouldFailRead(1));    // read burst untouched by write consumption
  EXPECT_TRUE(injector.ShouldFailRead(1));
  EXPECT_FALSE(injector.ShouldFailRead(1));
}

TEST(FaultInjector, ConcurrentArmingFromTwoThreadsLosesNothing) {
  DiskFaultInjector injector;
  constexpr int kPerThread = 200;
  Thread a = Thread::Spawn([&] {
    for (int i = 0; i < kPerThread; ++i) {
      injector.FailReadOnce(1);
    }
  });
  Thread b = Thread::Spawn([&] {
    for (int i = 0; i < kPerThread; ++i) {
      injector.FailReadOnce(1);
    }
  });
  a.Join();
  b.Join();
  // Every armed entry is consumable exactly once.
  int fired = 0;
  while (injector.ShouldFailRead(1)) {
    ++fired;
  }
  EXPECT_EQ(fired, 2 * kPerThread);
  EXPECT_FALSE(injector.AnyArmed());
}

TEST(FaultInjector, ScopedFaultClearsOnScopeExit) {
  DiskFaultInjector injector;
  {
    ScopedFault guard(injector);
    injector.FailAlways(5, true);
    injector.FailWriteTimes(2, 3);
    EXPECT_TRUE(injector.AnyArmed());
  }
  EXPECT_FALSE(injector.AnyArmed());
  EXPECT_FALSE(injector.IsPermanentlyFailed(5));
}

// --- Compaction retry-loop fault injection ---------------------------------------------

ShardRecord FaultTestRecord(uint32_t tag) {
  ShardRecord record;
  record.total_bytes = tag;
  record.chunks.push_back(Locator{90000 + tag, tag, 1, 64});
  return record;
}

struct LsmFaultStack {
  InMemoryDisk disk{DiskGeometry{.extent_count = 12, .pages_per_extent = 16,
                                 .page_size = 128}};
  std::unique_ptr<IoScheduler> scheduler;
  std::unique_ptr<ExtentManager> extents;
  std::unique_ptr<BufferCache> cache;
  std::unique_ptr<ChunkStore> chunks;
  std::unique_ptr<LsmIndex> index;

  void Open() {
    index.reset();
    scheduler = std::make_unique<IoScheduler>(&disk);
    extents = std::make_unique<ExtentManager>(&disk, scheduler.get());
    cache = std::make_unique<BufferCache>(extents.get(), 64);
    chunks = std::make_unique<ChunkStore>(extents.get(), cache.get(), ChunkStoreOptions{});
    index = std::move(LsmIndex::Open(extents.get(), chunks.get(), LsmOptions{}).value());
  }

  // Two flushed runs so compaction has a real merge to do.
  void SeedTwoRuns() {
    index->Put(1, FaultTestRecord(1), Dependency());
    index->Put(2, FaultTestRecord(2), Dependency());
    ASSERT_TRUE(index->Flush().ok());
    index->Put(3, FaultTestRecord(3), Dependency());
    ASSERT_TRUE(index->Flush().ok());
    ASSERT_TRUE(scheduler->FlushAll().ok());
  }
};

// A permanently failed run extent must abort Compact() on the first attempt with
// kDiskFailed — not burn the remaining retries — and must leave nothing behind: no
// output chunks were written (no orphans to reclaim), no extent stays pinned, and the
// committed state is untouched. After the extent recovers, compaction succeeds.
TEST(CompactionFaults, PermanentRunLoadFailureAbortsCleanlyWithoutOrphans) {
  FaultRegistry::Global().DisableAll();
  LsmFaultStack stack;
  stack.Open();
  stack.SeedTwoRuns();
  ASSERT_EQ(stack.index->RunCount(), 2u);
  const uint64_t version = stack.index->MetadataVersion();
  const uint64_t puts_before = stack.chunks->metrics().Snapshot().counter("chunk.puts");

  const Locator run = stack.index->RunLocators()[0];
  {
    ScopedFault guard(stack.disk.fault_injector());
    stack.disk.fault_injector().FailAlways(run.extent, true);
    stack.cache->DrainExtent(run.extent);  // force the read through to the failed disk
    Status status = stack.index->Compact();
    EXPECT_EQ(status.code(), StatusCode::kDiskFailed) << status.ToString();
    // Aborted before writing any output: no orphaned chunks, no metadata churn.
    EXPECT_EQ(stack.chunks->metrics().Snapshot().counter("chunk.puts"), puts_before);
    EXPECT_EQ(stack.index->MetadataVersion(), version);
    EXPECT_EQ(stack.index->RunCount(), 2u);
  }
  // The failed attempt pinned nothing: with the fault cleared the same compaction (and
  // a reclamation sweep over the data extents) go through unobstructed.
  ASSERT_TRUE(stack.index->Compact().ok());
  EXPECT_EQ(stack.index->RunCount(), 1u);
  EXPECT_TRUE(stack.index->Get(1).value().has_value());
  EXPECT_TRUE(stack.index->Get(3).value().has_value());
}

// A metadata-write failure mid-compaction must roll the in-memory run list back to the
// committed inputs. The pre-fix code left the never-persisted outputs in place, so the
// in-memory index diverged from durable metadata: recovery (or a reclamation keyed off
// the durable state) then served the wrong runs.
TEST(CompactionFaults, MetadataWriteFailureRestoresCommittedRuns) {
  FaultRegistry::Global().DisableAll();
  LsmFaultStack stack;
  stack.Open();
  stack.SeedTwoRuns();
  const uint64_t version = stack.index->MetadataVersion();
  const std::vector<Locator> committed = stack.index->RunLocators();

  {
    ScopedFault guard(stack.disk.fault_injector());
    for (ExtentId e : stack.extents->ExtentsOwnedBy(ExtentOwner::kLsmMetadata)) {
      stack.disk.fault_injector().FailAlways(e, true);
    }
    Status status = stack.index->Compact();
    ASSERT_FALSE(status.ok());
    // Rollback: the committed runs are back in place, in order, and every key is
    // still served from them.
    EXPECT_EQ(stack.index->RunLocators(), committed);
    EXPECT_EQ(stack.index->MetadataVersion(), version);
    for (ShardId id = 1; id <= 3; ++id) {
      EXPECT_TRUE(stack.index->Get(id).value().has_value()) << "key " << id;
    }
  }
  // The in-memory state matches durable metadata again, so a crash-free reopen (and a
  // later successful compaction) both see the full mapping.
  ASSERT_TRUE(stack.scheduler->FlushAll().ok());
  stack.Open();
  EXPECT_EQ(stack.index->Keys().value().size(), 3u);
  ASSERT_TRUE(stack.index->Compact().ok());
  EXPECT_EQ(stack.index->Keys().value().size(), 3u);
}

TEST(FaultInjector, FailureRatesAreDeterministicPerSeed) {
  DiskFaultInjector injector;
  injector.SetFailureRates(/*read_rate=*/0.5, /*write_rate=*/0.0, /*seed=*/42);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(injector.ShouldFailRead(1));
  }
  // Same seed, same coin flips.
  injector.SetFailureRates(0.5, 0.0, 42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(injector.ShouldFailRead(1), first[i]) << "flip " << i;
  }
  // Writes never fail at rate 0; Clear() zeroes the rates.
  EXPECT_FALSE(injector.ShouldFailWrite(1));
  injector.Clear();
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(injector.ShouldFailRead(1));
  }
}

}  // namespace
}  // namespace ss
