// Unit tests for the seeded-bug registry and the disk fault injector.

#include <gtest/gtest.h>

#include "src/sync/sync.h"

#include "src/disk/disk.h"
#include "src/faults/faults.h"

namespace ss {
namespace {

TEST(Faults, AllDisabledByDefault) {
  FaultRegistry::Global().DisableAll();
  for (int b = 0; b < kSeededBugCount; ++b) {
    EXPECT_FALSE(BugEnabled(static_cast<SeededBug>(b)));
  }
}

TEST(Faults, EnableDisableRoundTrip) {
  FaultRegistry::Global().Enable(SeededBug::kReclaimUuidCollision);
  EXPECT_TRUE(BugEnabled(SeededBug::kReclaimUuidCollision));
  EXPECT_FALSE(BugEnabled(SeededBug::kCacheNotDrainedOnReset));
  FaultRegistry::Global().Disable(SeededBug::kReclaimUuidCollision);
  EXPECT_FALSE(BugEnabled(SeededBug::kReclaimUuidCollision));
}

TEST(Faults, ScopedBugRestoresState) {
  {
    ScopedBug scope(SeededBug::kBufferPoolDeadlock);
    EXPECT_TRUE(BugEnabled(SeededBug::kBufferPoolDeadlock));
  }
  EXPECT_FALSE(BugEnabled(SeededBug::kBufferPoolDeadlock));
}

TEST(Faults, MetadataTablesComplete) {
  for (int b = 0; b < kSeededBugCount; ++b) {
    const auto bug = static_cast<SeededBug>(b);
    EXPECT_FALSE(SeededBugName(bug).empty());
    EXPECT_FALSE(SeededBugDescription(bug).empty());
    EXPECT_FALSE(SeededBugComponent(bug).empty());
    // Names carry the Figure 5 row number.
    EXPECT_EQ(SeededBugName(bug)[0], '#');
  }
}

TEST(Faults, ComponentsMatchFigure5) {
  EXPECT_EQ(SeededBugComponent(SeededBug::kReclaimOffByOnePageSize), "Chunk store");
  EXPECT_EQ(SeededBugComponent(SeededBug::kCacheNotDrainedOnReset), "Buffer cache");
  EXPECT_EQ(SeededBugComponent(SeededBug::kShutdownMetadataSkipAfterReset), "Index");
  EXPECT_EQ(SeededBugComponent(SeededBug::kDiskRemovalLosesShards), "API");
  EXPECT_EQ(SeededBugComponent(SeededBug::kSuperblockWrongOwnershipDep), "Superblock");
}

TEST(Faults, DisableAllClearsEverything) {
  for (int b = 0; b < kSeededBugCount; ++b) {
    FaultRegistry::Global().Enable(static_cast<SeededBug>(b));
  }
  FaultRegistry::Global().DisableAll();
  for (int b = 0; b < kSeededBugCount; ++b) {
    EXPECT_FALSE(BugEnabled(static_cast<SeededBug>(b)));
  }
}

TEST(Faults, ScopedSeededBugSurvivesEarlyExit) {
  // The guard must clean up even when the scope unwinds through a return/throw path.
  auto body = [] {
    ScopedSeededBug scope(SeededBug::kListRemoveRace);
    EXPECT_TRUE(BugEnabled(SeededBug::kListRemoveRace));
    return;  // early exit; destructor still runs
  };
  body();
  EXPECT_FALSE(BugEnabled(SeededBug::kListRemoveRace));
}

// --- DiskFaultInjector edge cases ----------------------------------------------------

TEST(FaultInjector, PermanentBeatsOneShotOnSameExtent) {
  DiskFaultInjector injector;
  injector.FailReadOnce(3);
  injector.FailAlways(3, true);
  // FailAlways wins on every attempt; the one-shot entry is not what gates the extent.
  EXPECT_TRUE(injector.IsPermanentlyFailed(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  // Disarming the permanent fault exposes the (still armed) one-shot, which then
  // consumes itself.
  injector.FailAlways(3, false);
  EXPECT_FALSE(injector.IsPermanentlyFailed(3));
  EXPECT_TRUE(injector.ShouldFailRead(3));
  EXPECT_FALSE(injector.ShouldFailRead(3));
}

TEST(FaultInjector, ClearMidSequenceDropsRemainingBurst) {
  DiskFaultInjector injector;
  injector.FailReadTimes(2, 4);
  EXPECT_TRUE(injector.ShouldFailRead(2));
  EXPECT_TRUE(injector.ShouldFailRead(2));
  injector.Clear();
  // The two unconsumed entries are gone, as is everything else armed.
  EXPECT_FALSE(injector.ShouldFailRead(2));
  EXPECT_FALSE(injector.AnyArmed());
}

TEST(FaultInjector, ReadAndWriteBurstsAreIndependent) {
  DiskFaultInjector injector;
  injector.FailReadTimes(1, 2);
  injector.FailWriteTimes(1, 1);
  EXPECT_TRUE(injector.ShouldFailWrite(1));
  EXPECT_FALSE(injector.ShouldFailWrite(1));  // write burst exhausted
  EXPECT_TRUE(injector.ShouldFailRead(1));    // read burst untouched by write consumption
  EXPECT_TRUE(injector.ShouldFailRead(1));
  EXPECT_FALSE(injector.ShouldFailRead(1));
}

TEST(FaultInjector, ConcurrentArmingFromTwoThreadsLosesNothing) {
  DiskFaultInjector injector;
  constexpr int kPerThread = 200;
  Thread a = Thread::Spawn([&] {
    for (int i = 0; i < kPerThread; ++i) {
      injector.FailReadOnce(1);
    }
  });
  Thread b = Thread::Spawn([&] {
    for (int i = 0; i < kPerThread; ++i) {
      injector.FailReadOnce(1);
    }
  });
  a.Join();
  b.Join();
  // Every armed entry is consumable exactly once.
  int fired = 0;
  while (injector.ShouldFailRead(1)) {
    ++fired;
  }
  EXPECT_EQ(fired, 2 * kPerThread);
  EXPECT_FALSE(injector.AnyArmed());
}

TEST(FaultInjector, ScopedFaultClearsOnScopeExit) {
  DiskFaultInjector injector;
  {
    ScopedFault guard(injector);
    injector.FailAlways(5, true);
    injector.FailWriteTimes(2, 3);
    EXPECT_TRUE(injector.AnyArmed());
  }
  EXPECT_FALSE(injector.AnyArmed());
  EXPECT_FALSE(injector.IsPermanentlyFailed(5));
}

TEST(FaultInjector, FailureRatesAreDeterministicPerSeed) {
  DiskFaultInjector injector;
  injector.SetFailureRates(/*read_rate=*/0.5, /*write_rate=*/0.0, /*seed=*/42);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(injector.ShouldFailRead(1));
  }
  // Same seed, same coin flips.
  injector.SetFailureRates(0.5, 0.0, 42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(injector.ShouldFailRead(1), first[i]) << "flip " << i;
  }
  // Writes never fail at rate 0; Clear() zeroes the rates.
  EXPECT_FALSE(injector.ShouldFailWrite(1));
  injector.Clear();
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(injector.ShouldFailRead(1));
  }
}

}  // namespace
}  // namespace ss
