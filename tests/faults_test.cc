// Unit tests for the seeded-bug registry.

#include <gtest/gtest.h>

#include "src/faults/faults.h"

namespace ss {
namespace {

TEST(Faults, AllDisabledByDefault) {
  FaultRegistry::Global().DisableAll();
  for (int b = 0; b < kSeededBugCount; ++b) {
    EXPECT_FALSE(BugEnabled(static_cast<SeededBug>(b)));
  }
}

TEST(Faults, EnableDisableRoundTrip) {
  FaultRegistry::Global().Enable(SeededBug::kReclaimUuidCollision);
  EXPECT_TRUE(BugEnabled(SeededBug::kReclaimUuidCollision));
  EXPECT_FALSE(BugEnabled(SeededBug::kCacheNotDrainedOnReset));
  FaultRegistry::Global().Disable(SeededBug::kReclaimUuidCollision);
  EXPECT_FALSE(BugEnabled(SeededBug::kReclaimUuidCollision));
}

TEST(Faults, ScopedBugRestoresState) {
  {
    ScopedBug scope(SeededBug::kBufferPoolDeadlock);
    EXPECT_TRUE(BugEnabled(SeededBug::kBufferPoolDeadlock));
  }
  EXPECT_FALSE(BugEnabled(SeededBug::kBufferPoolDeadlock));
}

TEST(Faults, MetadataTablesComplete) {
  for (int b = 0; b < kSeededBugCount; ++b) {
    const auto bug = static_cast<SeededBug>(b);
    EXPECT_FALSE(SeededBugName(bug).empty());
    EXPECT_FALSE(SeededBugDescription(bug).empty());
    EXPECT_FALSE(SeededBugComponent(bug).empty());
    // Names carry the Figure 5 row number.
    EXPECT_EQ(SeededBugName(bug)[0], '#');
  }
}

TEST(Faults, ComponentsMatchFigure5) {
  EXPECT_EQ(SeededBugComponent(SeededBug::kReclaimOffByOnePageSize), "Chunk store");
  EXPECT_EQ(SeededBugComponent(SeededBug::kCacheNotDrainedOnReset), "Buffer cache");
  EXPECT_EQ(SeededBugComponent(SeededBug::kShutdownMetadataSkipAfterReset), "Index");
  EXPECT_EQ(SeededBugComponent(SeededBug::kDiskRemovalLosesShards), "API");
  EXPECT_EQ(SeededBugComponent(SeededBug::kSuperblockWrongOwnershipDep), "Superblock");
}

TEST(Faults, DisableAllClearsEverything) {
  for (int b = 0; b < kSeededBugCount; ++b) {
    FaultRegistry::Global().Enable(static_cast<SeededBug>(b));
  }
  FaultRegistry::Global().DisableAll();
  for (int b = 0; b < kSeededBugCount; ++b) {
    EXPECT_FALSE(BugEnabled(static_cast<SeededBug>(b)));
  }
}

}  // namespace
}  // namespace ss
