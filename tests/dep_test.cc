// Unit + property tests for the dependency graph and the IO scheduler: ordering
// guarantees, crash-state legality, forward progress.

#include <gtest/gtest.h>

#include "src/dep/dependency.h"
#include "src/dep/io_scheduler.h"

namespace ss {
namespace {

TEST(Dependency, DefaultIsPersistent) {
  Dependency dep;
  EXPECT_TRUE(dep.IsPersistent());
  EXPECT_FALSE(dep.Failed());
}

TEST(Dependency, LeafLifecycle) {
  Dependency leaf = Dependency::MakeLeaf();
  EXPECT_FALSE(leaf.IsPersistent());
  leaf.MarkLeafPersistent();
  EXPECT_TRUE(leaf.IsPersistent());
}

TEST(Dependency, FailedLeafNeverPersists) {
  Dependency leaf = Dependency::MakeLeaf();
  leaf.MarkLeafFailed();
  EXPECT_FALSE(leaf.IsPersistent());
  EXPECT_TRUE(leaf.Failed());
}

TEST(Dependency, AndRequiresBoth) {
  Dependency a = Dependency::MakeLeaf();
  Dependency b = Dependency::MakeLeaf();
  Dependency both = a.And(b);
  EXPECT_FALSE(both.IsPersistent());
  a.MarkLeafPersistent();
  EXPECT_FALSE(both.IsPersistent());
  b.MarkLeafPersistent();
  EXPECT_TRUE(both.IsPersistent());
}

TEST(Dependency, AndWithTrivialIsIdentity) {
  Dependency a = Dependency::MakeLeaf();
  Dependency combined = a.And(Dependency());
  a.MarkLeafPersistent();
  EXPECT_TRUE(combined.IsPersistent());
}

TEST(Dependency, AndAllEmptyIsPersistent) {
  EXPECT_TRUE(Dependency::AndAll({}).IsPersistent());
}

TEST(Dependency, FailurePropagatesThroughAnd) {
  Dependency a = Dependency::MakeLeaf();
  Dependency b = Dependency::MakeLeaf();
  Dependency both = a.And(b);
  a.MarkLeafPersistent();
  b.MarkLeafFailed();
  EXPECT_TRUE(both.Failed());
  EXPECT_FALSE(both.IsPersistent());
}

TEST(Dependency, PromiseUnresolvedIsNotPersistent) {
  Dependency promise = Dependency::MakePromise();
  EXPECT_FALSE(promise.IsPersistent());
}

TEST(Dependency, PromiseResolvesToTarget) {
  Dependency promise = Dependency::MakePromise();
  Dependency target = Dependency::MakeLeaf();
  promise.ResolvePromise(target);
  EXPECT_FALSE(promise.IsPersistent());
  target.MarkLeafPersistent();
  EXPECT_TRUE(promise.IsPersistent());
}

TEST(Dependency, PromiseResolvedToNothingIsPersistent) {
  Dependency promise = Dependency::MakePromise();
  promise.ResolvePromise(Dependency());
  EXPECT_TRUE(promise.IsPersistent());
}

class IoSchedulerTest : public testing::Test {
 protected:
  InMemoryDisk disk_{DiskGeometry{.extent_count = 8, .pages_per_extent = 8, .page_size = 64}};
  IoScheduler scheduler_{&disk_};
};

TEST_F(IoSchedulerTest, PumpIssuesInOrder) {
  Dependency d0 = scheduler_.EnqueueDataPage(1, 0, Bytes(64, 0xaa), {});
  Dependency d1 = scheduler_.EnqueueDataPage(1, 1, Bytes(64, 0xbb), {});
  EXPECT_EQ(scheduler_.PendingCount(), 2u);
  EXPECT_EQ(scheduler_.Pump(1), 1u);
  EXPECT_TRUE(d0.IsPersistent());
  EXPECT_FALSE(d1.IsPersistent());
  EXPECT_EQ(scheduler_.Pump(10), 1u);
  EXPECT_TRUE(d1.IsPersistent());
  EXPECT_EQ(disk_.ReadPage(1, 1).value()[0], 0xbb);
}

TEST_F(IoSchedulerTest, InputDependencyGatesIssue) {
  Dependency gate = Dependency::MakeLeaf();
  Dependency write = scheduler_.EnqueueDataPage(1, 0, Bytes(64, 1), {gate});
  EXPECT_EQ(scheduler_.Pump(10), 0u);  // blocked on gate
  EXPECT_FALSE(write.IsPersistent());
  gate.MarkLeafPersistent();
  EXPECT_EQ(scheduler_.Pump(10), 1u);
  EXPECT_TRUE(write.IsPersistent());
}

TEST_F(IoSchedulerTest, CrossExtentWritesAreIndependent) {
  Dependency gate = Dependency::MakeLeaf();
  scheduler_.EnqueueDataPage(1, 0, Bytes(64, 1), {gate});
  Dependency other = scheduler_.EnqueueDataPage(2, 0, Bytes(64, 2), {});
  EXPECT_EQ(scheduler_.Pump(10), 1u);  // extent 2's write is not blocked by extent 1's
  EXPECT_TRUE(other.IsPersistent());
}

TEST_F(IoSchedulerTest, SoftWpDomainIsFifo) {
  Dependency gate = Dependency::MakeLeaf();
  Dependency first = scheduler_.EnqueueSoftWp(1, 1, {gate});
  Dependency second = scheduler_.EnqueueSoftWp(1, 2, {});
  // The second update may not overtake the first even though its inputs are ready.
  EXPECT_EQ(scheduler_.Pump(10), 0u);
  gate.MarkLeafPersistent();
  EXPECT_EQ(scheduler_.Pump(10), 2u);
  EXPECT_TRUE(first.IsPersistent());
  EXPECT_TRUE(second.IsPersistent());
  EXPECT_EQ(disk_.ReadSoftWp(1), 2u);
}

TEST_F(IoSchedulerTest, ResetOrdersWithinExtentDataDomain) {
  Dependency data_before = scheduler_.EnqueueDataPage(1, 0, Bytes(64, 1), {});
  Dependency gate = Dependency::MakeLeaf();
  Dependency reset = scheduler_.EnqueueReset(1, {gate});
  Dependency data_after = scheduler_.EnqueueDataPage(1, 0, Bytes(64, 2), {});
  EXPECT_EQ(scheduler_.Pump(10), 1u);  // only the pre-reset write can issue
  EXPECT_TRUE(data_before.IsPersistent());
  EXPECT_FALSE(data_after.IsPersistent());
  gate.MarkLeafPersistent();
  EXPECT_EQ(scheduler_.Pump(10), 2u);
  EXPECT_TRUE(reset.IsPersistent());
  EXPECT_TRUE(data_after.IsPersistent());
}

TEST_F(IoSchedulerTest, FlushAllDrainsEverything) {
  for (uint32_t p = 0; p < 4; ++p) {
    scheduler_.EnqueueDataPage(1, p, Bytes(64, static_cast<uint8_t>(p)), {});
    scheduler_.EnqueueSoftWp(1, p + 1, {});
  }
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  EXPECT_EQ(scheduler_.PendingCount(), 0u);
  EXPECT_EQ(disk_.ReadSoftWp(1), 4u);
}

TEST_F(IoSchedulerTest, FlushAllDetectsStuckQueue) {
  Dependency never = Dependency::MakePromise();  // unresolved forever
  scheduler_.EnqueueDataPage(1, 0, Bytes(64, 1), {never});
  Status status = scheduler_.FlushAll();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("stuck"), std::string::npos);
}

TEST_F(IoSchedulerTest, CrashDropAllLeavesNothingPersistent) {
  Dependency d = scheduler_.EnqueueDataPage(1, 0, Bytes(64, 1), {});
  scheduler_.CrashDropAll();
  EXPECT_EQ(scheduler_.PendingCount(), 0u);
  EXPECT_FALSE(d.IsPersistent());
  EXPECT_EQ(disk_.ReadPage(1, 0).value()[0], 0);
}

TEST_F(IoSchedulerTest, StatsAccumulate) {
  scheduler_.EnqueueDataPage(1, 0, Bytes(64, 1), {});
  scheduler_.EnqueueDataPage(1, 1, Bytes(64, 2), {});
  scheduler_.Pump(1);
  Rng rng(1);
  scheduler_.Crash(rng, 0.0);
  MetricsSnapshot snap = scheduler_.metrics().Snapshot();
  EXPECT_EQ(snap.counter("io.enqueued"), 2u);
  EXPECT_EQ(snap.counter("io.issued"), 1u);
  EXPECT_EQ(snap.counter("io.dropped_by_crash"), 1u);
  EXPECT_EQ(snap.counter("io.crashes"), 1u);
}

// Property: every crash state respects (a) per-domain FIFO prefixes and (b) input
// dependencies. We enqueue a chain data(p0) <- softwp(1) <- [input] data2 on another
// extent and check all observed crash states are among the legal ones.
class CrashStateProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(CrashStateProperty, OnlyLegalStates) {
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    InMemoryDisk disk(DiskGeometry{.extent_count = 4, .pages_per_extent = 4, .page_size = 32});
    IoScheduler scheduler(&disk);
    Dependency p0 = scheduler.EnqueueDataPage(1, 0, Bytes(32, 0xa1), {});
    Dependency wp1 = scheduler.EnqueueSoftWp(1, 1, {p0});
    Dependency dependent = scheduler.EnqueueDataPage(2, 0, Bytes(32, 0xb2), {wp1});
    scheduler.Crash(rng, 0.5);

    const bool have_p0 = disk.ReadPage(1, 0).value()[0] == 0xa1;
    const bool have_wp1 = disk.ReadSoftWp(1) == 1;
    const bool have_dep = disk.ReadPage(2, 0).value()[0] == 0xb2;
    // softwp(1) requires p0; dependent requires softwp(1).
    if (have_wp1) {
      EXPECT_TRUE(have_p0);
    }
    if (have_dep) {
      EXPECT_TRUE(have_wp1);
    }
    // Dependency polling agrees with the disk.
    EXPECT_EQ(p0.IsPersistent(), have_p0);
    EXPECT_EQ(wp1.IsPersistent(), have_wp1);
    EXPECT_EQ(dependent.IsPersistent(), have_dep);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashStateProperty, testing::Values(1, 22, 333, 4444));

// Property: a crash with bias 1.0 behaves like FlushAll for records whose inputs are
// already persistent.
TEST(CrashBias, FullBiasPersistsEverythingEligible) {
  InMemoryDisk disk(DiskGeometry{.extent_count = 4, .pages_per_extent = 4, .page_size = 32});
  IoScheduler scheduler(&disk);
  Dependency a = scheduler.EnqueueDataPage(1, 0, Bytes(32, 1), {});
  Dependency b = scheduler.EnqueueSoftWp(1, 1, {a});
  Rng rng(9);
  scheduler.Crash(rng, 1.0);
  EXPECT_TRUE(a.IsPersistent());
  EXPECT_TRUE(b.IsPersistent());
}

}  // namespace
}  // namespace ss
