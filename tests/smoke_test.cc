// End-to-end smoke tests: the fastest way to see the whole stack working.

#include <gtest/gtest.h>

#include "src/harness/kv_harness.h"
#include "src/kv/shard_store.h"

namespace ss {
namespace {

TEST(Smoke, PutGetDeleteFlushRecover) {
  InMemoryDisk disk;
  auto store_or = ShardStore::Open(&disk);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();

  Bytes value = BytesOf("hello shardstore");
  auto dep_or = store->Put(7, value);
  ASSERT_TRUE(dep_or.ok()) << dep_or.status().ToString();
  EXPECT_FALSE(dep_or.value().IsPersistent());

  auto got = store->Get(7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), value);

  // Clean shutdown persists everything.
  ASSERT_TRUE(store->FlushAll().ok());
  EXPECT_TRUE(dep_or.value().IsPersistent());

  // Recovery from the persistent image.
  store.reset();
  auto reopened = ShardStore::Open(&disk);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  got = std::move(reopened).value()->Get(7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), value);
}

TEST(Smoke, CrashLosesUnflushedPut) {
  InMemoryDisk disk;
  auto store = std::move(ShardStore::Open(&disk).value());
  ASSERT_TRUE(store->Put(1, BytesOf("one")).ok());
  ASSERT_TRUE(store->FlushAll().ok());
  auto dep2 = store->Put(2, BytesOf("two"));
  ASSERT_TRUE(dep2.ok());

  // Crash before anything else is pumped: the second put must vanish cleanly.
  store->scheduler().CrashDropAll();
  store.reset();
  auto reopened = std::move(ShardStore::Open(&disk).value());
  EXPECT_TRUE(reopened->Get(1).ok());
  EXPECT_EQ(reopened->Get(2).code(), StatusCode::kNotFound);
  EXPECT_FALSE(dep2.value().IsPersistent());
}

TEST(Smoke, ConformanceHarnessShortRun) {
  KvHarnessOptions options;
  options.crashes = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner(PbtConfig{.seed = 7, .num_cases = 25, .max_ops = 40});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

}  // namespace
}  // namespace ss
