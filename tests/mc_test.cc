// Unit tests for the stateless model checker and the linearizability checker.

#include <gtest/gtest.h>

#include <memory>

#include "src/mc/linearizability.h"
#include "src/mc/mc.h"
#include "src/sync/sync.h"

namespace ss {
namespace {

McOptions Opts(McOptions::Strategy strategy, size_t iterations, uint64_t seed = 1) {
  McOptions options;
  options.strategy = strategy;
  options.iterations = iterations;
  options.seed = seed;
  return options;
}

TEST(Mc, TrivialBodyPasses) {
  McResult result = McExplore([] {}, Opts(McOptions::Strategy::kRandom, 10));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.executions, 10u);
}

TEST(Mc, McFailIsReported) {
  McResult result = McExplore([] { McFail("boom"); }, Opts(McOptions::Strategy::kRandom, 5));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "boom");
  EXPECT_EQ(result.executions, 1u);  // stop_on_failure
  EXPECT_FALSE(result.failing_schedule.empty());
}

TEST(Mc, UncaughtExceptionIsReported) {
  McResult result = McExplore([] { throw std::runtime_error("oops"); },
                              Opts(McOptions::Strategy::kRandom, 3));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("oops"), std::string::npos);
}

TEST(Mc, MutexProvidesMutualExclusion) {
  McResult result = McExplore(
      [] {
        auto mu = std::make_shared<Mutex>();
        auto counter = std::make_shared<int>(0);
        auto in_section = std::make_shared<bool>(false);
        auto body = [mu, counter, in_section] {
          for (int i = 0; i < 3; ++i) {
            LockGuard lock(*mu);
            MC_CHECK(!*in_section, "two threads inside the critical section");
            *in_section = true;
            ++*counter;
            YieldThread();  // tempt the scheduler
            *in_section = false;
          }
        };
        Thread t = Thread::Spawn(body);
        body();
        t.Join();
        MC_CHECK(*counter == 6, "lost update");
      },
      Opts(McOptions::Strategy::kRandom, 100));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Mc, FindsUnsynchronizedLostUpdate) {
  // Classic read-modify-write race on an Atomic cell without a lock.
  McResult result = McExplore(
      [] {
        auto cell = std::make_shared<Atomic<int>>(0);
        auto bump = [cell] {
          const int seen = cell->Load();
          cell->Store(seen + 1);
        };
        Thread t = Thread::Spawn(bump);
        bump();
        t.Join();
        MC_CHECK(cell->Load() == 2, "lost update");
      },
      Opts(McOptions::Strategy::kRandom, 500));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "lost update");
}

TEST(Mc, DfsFindsLostUpdateAndCanExhaust) {
  size_t executions_to_find = 0;
  McResult result = McExplore(
      [] {
        auto cell = std::make_shared<Atomic<int>>(0);
        auto bump = [cell] {
          const int seen = cell->Load();
          cell->Store(seen + 1);
        };
        Thread t = Thread::Spawn(bump);
        bump();
        t.Join();
        MC_CHECK(cell->Load() == 2, "lost update");
      },
      Opts(McOptions::Strategy::kDfs, 100000));
  executions_to_find = result.executions;
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "lost update");
  EXPECT_GT(executions_to_find, 0u);

  // A correct (atomic) version lets DFS exhaust the schedule space.
  McResult correct = McExplore(
      [] {
        auto cell = std::make_shared<Atomic<int>>(0);
        auto bump = [cell] { cell->FetchAdd(1); };
        Thread t = Thread::Spawn(bump);
        bump();
        t.Join();
        MC_CHECK(cell->Load() == 2, "lost update");
      },
      Opts(McOptions::Strategy::kDfs, 100000));
  EXPECT_TRUE(correct.ok) << correct.error;
  EXPECT_TRUE(correct.exhausted);
  EXPECT_GT(correct.executions, 1u);
}

TEST(Mc, DetectsDeadlock) {
  McResult result = McExplore(
      [] {
        auto a = std::make_shared<Mutex>();
        auto b = std::make_shared<Mutex>();
        Thread t = Thread::Spawn([a, b] {
          a->Lock();
          YieldThread();
          b->Lock();
          b->Unlock();
          a->Unlock();
        });
        b->Lock();
        YieldThread();
        a->Lock();
        a->Unlock();
        b->Unlock();
        t.Join();
      },
      Opts(McOptions::Strategy::kRandom, 300));
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.deadlock);
  EXPECT_NE(result.error.find("deadlock"), std::string::npos);
}

TEST(Mc, CondVarWakeups) {
  McResult result = McExplore(
      [] {
        auto mu = std::make_shared<Mutex>();
        auto cv = std::make_shared<CondVar>();
        auto ready = std::make_shared<bool>(false);
        Thread waiter = Thread::Spawn([mu, cv, ready] {
          LockGuard lock(*mu);
          while (!*ready) {
            cv->Wait(*mu);
          }
        });
        {
          LockGuard lock(*mu);
          *ready = true;
        }
        cv->NotifyOne();
        waiter.Join();
      },
      Opts(McOptions::Strategy::kRandom, 200));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Mc, SemaphoreAtomicAcquireIsDeadlockFree) {
  McResult result = McExplore(
      [] {
        auto sem = std::make_shared<Semaphore>(2);
        auto worker = [sem] {
          sem->Acquire(2);
          YieldThread();
          sem->Release(2);
        };
        Thread t = Thread::Spawn(worker);
        worker();
        t.Join();
      },
      Opts(McOptions::Strategy::kRandom, 200));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Mc, SemaphoreSplitAcquireDeadlocks) {
  McResult result = McExplore(
      [] {
        auto sem = std::make_shared<Semaphore>(2);
        auto worker = [sem] {
          sem->Acquire(1);
          YieldThread();
          sem->Acquire(1);
          sem->Release(2);
        };
        Thread t = Thread::Spawn(worker);
        worker();
        t.Join();
      },
      Opts(McOptions::Strategy::kRandom, 500));
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.deadlock);
}

TEST(Mc, PctFindsRareOrdering) {
  // A bug that manifests only if the spawned thread runs to completion before the main
  // body performs any of its three steps — rare under uniform random, likely under PCT.
  auto body = [] {
    auto stage = std::make_shared<Atomic<int>>(0);
    Thread t = Thread::Spawn([stage] {
      if (stage->Load() == 0) {
        stage->Store(100);
      }
    });
    for (int i = 0; i < 3; ++i) {
      stage->FetchAdd(1);
    }
    t.Join();
    MC_CHECK(stage->Load() != 103, "rare ordering hit");
  };
  McResult pct = McExplore(body, Opts(McOptions::Strategy::kPct, 500, 3));
  EXPECT_FALSE(pct.ok);
}

TEST(Mc, StopOnFailureFalseCountsFailures) {
  McOptions options = Opts(McOptions::Strategy::kRandom, 20);
  options.stop_on_failure = false;
  McResult result = McExplore([] { McFail("always"); }, options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.executions, 20u);
  EXPECT_EQ(result.failures, 20u);
}

TEST(Mc, McFailOutsideExploreThrows) {
  EXPECT_THROW(McFail("not running"), std::runtime_error);
}

// --- Linearizability checker -------------------------------------------------------------

LinOp Op(LinOp::Kind kind, uint64_t key, uint64_t invoke, uint64_t response,
         const char* value = nullptr, bool found = false) {
  LinOp op;
  op.kind = kind;
  op.key = key;
  op.invoke = invoke;
  op.response = response;
  if (value != nullptr) {
    if (kind == LinOp::Kind::kPut) {
      op.value = BytesOf(value);
    } else {
      op.result = BytesOf(value);
    }
  }
  op.found = found;
  return op;
}

TEST(Linearizability, SequentialHistoryIsLinearizable) {
  std::vector<LinOp> history = {
      Op(LinOp::Kind::kPut, 1, 1, 2, "a"),
      Op(LinOp::Kind::kGet, 1, 3, 4, "a", true),
      Op(LinOp::Kind::kDelete, 1, 5, 6),
      Op(LinOp::Kind::kGet, 1, 7, 8, nullptr, false),
  };
  EXPECT_TRUE(CheckLinearizable(history, nullptr));
}

TEST(Linearizability, StaleReadAfterResponseIsNotLinearizable) {
  // Put(a) completes, then a later Get misses: no linearization exists.
  std::vector<LinOp> history = {
      Op(LinOp::Kind::kPut, 1, 1, 2, "a"),
      Op(LinOp::Kind::kGet, 1, 3, 4, nullptr, false),
  };
  std::string explanation;
  EXPECT_FALSE(CheckLinearizable(history, &explanation));
  EXPECT_NE(explanation.find("no linearization"), std::string::npos);
}

TEST(Linearizability, ConcurrentOpsMayReorder) {
  // Get overlaps the Put, so both miss and hit are legal.
  std::vector<LinOp> miss = {
      Op(LinOp::Kind::kPut, 1, 1, 4, "a"),
      Op(LinOp::Kind::kGet, 1, 2, 3, nullptr, false),
  };
  EXPECT_TRUE(CheckLinearizable(miss, nullptr));
  std::vector<LinOp> hit = {
      Op(LinOp::Kind::kPut, 1, 1, 4, "a"),
      Op(LinOp::Kind::kGet, 1, 2, 3, "a", true),
  };
  EXPECT_TRUE(CheckLinearizable(hit, nullptr));
}

TEST(Linearizability, WrongValueRejected) {
  std::vector<LinOp> history = {
      Op(LinOp::Kind::kPut, 1, 1, 2, "a"),
      Op(LinOp::Kind::kGet, 1, 3, 4, "zzz", true),
  };
  EXPECT_FALSE(CheckLinearizable(history, nullptr));
}

TEST(Linearizability, TwoWritersAndReader) {
  // Reader sees "b" although "a"'s put responded later — legal only because the puts
  // overlap each other and the read.
  std::vector<LinOp> history = {
      Op(LinOp::Kind::kPut, 1, 1, 6, "a"),
      Op(LinOp::Kind::kPut, 1, 2, 5, "b"),
      Op(LinOp::Kind::kGet, 1, 3, 4, "b", true),
  };
  EXPECT_TRUE(CheckLinearizable(history, nullptr));
}

TEST(Linearizability, RecorderTimestampsNest) {
  LinHistory history;
  const uint64_t t1 = history.Invoke();
  const uint64_t t2 = history.Invoke();
  history.RecordPut(t2, 1, BytesOf("x"));
  history.RecordGetMissing(t1, 1);
  auto ops = history.Ops();
  ASSERT_EQ(ops.size(), 2u);
  for (const LinOp& op : ops) {
    EXPECT_LT(op.invoke, op.response);
  }
}

TEST(Linearizability, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(CheckLinearizable({}, nullptr));
}

}  // namespace
}  // namespace ss
