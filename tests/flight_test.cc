// Flight recorder end-to-end: a seeded harness violation produces one structured JSON
// artifact (metric snapshot, span tree, pending-writeback dependency DOT,
// persisted-vs-volatile disk summary, case seed / MC schedule), and the replay
// handles in the artifact — PbtRunner::Generate(case_seed), re-running the minimized
// sequence, McReplay(mc_schedule) — reproduce the failure deterministically.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/faults/faults.h"
#include "src/harness/kv_harness.h"
#include "src/mc/mc.h"
#include "src/obs/flight_recorder.h"
#include "src/rpc/node_server.h"
#include "src/sync/sync.h"

namespace ss {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> Rendered(const std::vector<KvOp>& ops) {
  std::vector<std::string> out;
  out.reserve(ops.size());
  for (const KvOp& op : ops) {
    out.push_back(op.ToString());
  }
  return out;
}

class FlightTest : public testing::Test {
 protected:
  FlightTest() { FaultRegistry::Global().DisableAll(); }
};

// The full protocol from the flight_recorder.h doc comment: search with the recorder
// disarmed, then re-run the minimized counterexample once with it armed; the artifact
// must carry everything needed to reproduce the failure from two integers.
TEST_F(FlightTest, KvHarnessViolationWritesAReplayableArtifact) {
  ScopedSeededBug bug(SeededBug::kReclaimOffByOnePageSize);

  KvHarnessOptions options;
  KvConformanceHarness harness(options);
  PbtRunner<KvOp> runner =
      harness.MakeRunner(PbtConfig{.seed = 42, .num_cases = 1500});
  std::optional<PbtFailure<KvOp>> failure = runner.Run();
  ASSERT_TRUE(failure.has_value()) << "seeded bug not detected";
  ASSERT_FALSE(failure->minimized.empty());

  // Replay handle 1: the case seed regenerates the original failing sequence, and
  // running it reproduces the original violation verbatim.
  EXPECT_EQ(Rendered(runner.Generate(failure->case_seed)), Rendered(failure->original));
  std::optional<std::string> original_again =
      KvConformanceHarness(options).Run(failure->original);
  ASSERT_TRUE(original_again.has_value());
  EXPECT_EQ(*original_again, failure->original_message);

  // One-shot re-run of the minimized sequence with the recorder armed.
  FlightRecorder recorder("flight");
  recorder.set_case_seed(failure->case_seed);
  KvHarnessOptions armed = options;
  armed.recorder = &recorder;
  std::optional<std::string> replayed = KvConformanceHarness(armed).Run(failure->minimized);
  ASSERT_TRUE(replayed.has_value()) << "minimized sequence stopped failing";
  EXPECT_EQ(*replayed, failure->message);
  ASSERT_EQ(recorder.written(), 1u);

  // The artifact exists and carries every section plus the replay seed.
  std::string json = ReadFile("flight/flight-0-kv_conformance.json");
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"harness\":\"kv_conformance\""), std::string::npos);
  EXPECT_NE(json.find("\"violation\":\"op#"), std::string::npos);
  EXPECT_NE(json.find("\"case_seed\":" + std::to_string(failure->case_seed)),
            std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"harness."), std::string::npos);
  EXPECT_NE(json.find("digraph"), std::string::npos);  // pending-writeback DOT
  EXPECT_NE(json.find("\"disks\":["), std::string::npos);
  EXPECT_NE(json.find("\"persisted_wp\""), std::string::npos);
  // The rendered op list matches the sequence that was re-run.
  for (const KvOp& op : failure->minimized) {
    EXPECT_NE(json.find(op.ToString()), std::string::npos) << op.ToString();
  }
}

// Node-level capture: CaptureNode snapshots metrics, the rpc.* span trees, the trace
// tail, and per-disk dependency/extent state from a live NodeServer.
TEST_F(FlightTest, CaptureNodeSnapshotsEverySection) {
  NodeServerOptions options;
  options.disk_count = 2;
  options.geometry = DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                  .page_size = 256};
  std::unique_ptr<NodeServer> node = std::move(NodeServer::Create(options).value());
  ASSERT_TRUE(node->Put(1, Bytes(300, 0x5a)).ok());
  ASSERT_TRUE(node->Get(1).ok());

  FlightRecord record;
  record.harness = "failure_conformance";
  record.violation = "synthetic";
  CaptureNode(*node, record);
  FlightRecorder recorder("flight");
  auto path_or = recorder.Write(record);
  ASSERT_TRUE(path_or.ok()) << path_or.status().ToString();

  std::string json = ReadFile(path_or.value());
  EXPECT_NE(json.find("\"rpc.put.ok\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rpc.put\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"Put\""), std::string::npos);
  // The routed disk's pending writebacks appear under its per-disk DOT prefix.
  EXPECT_NE(json.find("disk" + std::to_string(node->DiskFor(1)) + "."), std::string::npos);
  // Unflushed writes show up as a persisted-vs-volatile delta.
  EXPECT_NE(json.find("\"unpersisted_pages\""), std::string::npos);
}

// An MC counterexample's schedule, persisted through the artifact, replays the exact
// interleaving: the same violation, deterministically, on the first execution.
TEST_F(FlightTest, McScheduleFromArtifactReplaysDeterministically) {
  // Classic lost update: unsynchronized read-modify-write on an instrumented cell
  // (Load/Store are the scheduling points the checker interleaves).
  auto body = []() {
    auto cell = std::make_shared<Atomic<int>>(0);
    auto bump = [cell]() {
      const int seen = cell->Load();
      cell->Store(seen + 1);
    };
    Thread t = Thread::Spawn(bump);
    bump();
    t.Join();
    MC_CHECK(cell->Load() == 2, "lost update: shared != 2");
  };

  McOptions options;
  options.strategy = McOptions::Strategy::kRandom;
  options.iterations = 2000;
  options.seed = 7;
  McResult result = McExplore(body, options);
  ASSERT_FALSE(result.ok) << "interleaving search missed the lost update";
  ASSERT_FALSE(result.failing_schedule.empty());

  FlightRecord record = MakeMcFlightRecord(result, "lost_update");
  EXPECT_EQ(record.harness, "mc:lost_update");
  FlightRecorder recorder("flight");
  auto path_or = recorder.Write(record);
  ASSERT_TRUE(path_or.ok()) << path_or.status().ToString();
  std::string json = ReadFile(path_or.value());
  EXPECT_NE(json.find("\"mc_schedule\":["), std::string::npos);
  EXPECT_NE(json.find("lost update"), std::string::npos);

  // Feed the schedule back: one execution, same failure.
  McResult replayed = McReplay(body, result.failing_schedule);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.executions, 1u);
  EXPECT_EQ(replayed.error, result.error);
}

}  // namespace
}  // namespace ss
