// Disk-failure-domain tests: the fault-alphabet PBT harness (transient bursts,
// permanent faults, degrade/evacuate, crash-reboots) plus directed scenarios for the
// health state machine, read-only degradation, and evacuation.

#include <gtest/gtest.h>

#include "src/common/cover.h"
#include "src/faults/faults.h"
#include "src/harness/failure_harness.h"

namespace ss {
namespace {

// --- Directed scenarios -------------------------------------------------------------

class DiskFailureDomainTest : public testing::Test {
 protected:
  DiskFailureDomainTest() {
    FaultRegistry::Global().DisableAll();
    NodeServerOptions options;
    options.disk_count = 3;
    options.geometry = DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                    .page_size = 256};
    node_ = std::move(NodeServer::Create(options).value());
  }

  // A shard id routed to `disk`.
  ShardId ShardOn(int disk) {
    ShardId id = 0;
    while (node_->DiskFor(id) != disk) {
      ++id;
    }
    return id;
  }

  std::unique_ptr<NodeServer> node_;
};

TEST_F(DiskFailureDomainTest, DegradedDiskIsReadOnly) {
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("before")).ok());
  ASSERT_TRUE(node_->MarkDiskDegraded(0).ok());
  EXPECT_EQ(node_->Health(0), DiskHealth::kDegraded);
  // Reads still serve; mutations are refused.
  EXPECT_EQ(node_->Get(id).value(), BytesOf("before"));
  EXPECT_EQ(node_->Put(id, BytesOf("after")).code(), StatusCode::kUnavailable);
  EXPECT_EQ(node_->Delete(id).code(), StatusCode::kUnavailable);
  // Back to healthy: mutations work again.
  ASSERT_TRUE(node_->ResetDiskHealth(0).ok());
  EXPECT_TRUE(node_->Put(id, BytesOf("after")).ok());
  EXPECT_EQ(node_->Get(id).value(), BytesOf("after"));
}

TEST_F(DiskFailureDomainTest, EvacuateDegradedDiskKeepsServingEveryShard) {
  std::map<ShardId, Bytes> contents;
  for (ShardId id = 0; id < 24; ++id) {
    Bytes value = BytesOf("value-" + std::to_string(id));
    ASSERT_TRUE(node_->Put(id, value).ok());
    contents[id] = value;
  }
  ASSERT_TRUE(node_->MarkDiskDegraded(0).ok());
  ASSERT_TRUE(node_->EvacuateDisk(0).ok());
  // Nothing routes to the degraded disk any more and every shard still serves.
  for (const auto& [id, value] : contents) {
    EXPECT_NE(node_->DiskFor(id), 0) << "shard " << id << " left on the degraded disk";
    EXPECT_EQ(node_->Get(id).value(), value);
  }
  // The drained disk's store is empty.
  EXPECT_EQ(node_->store(0)->List().value().size(), 0u);
}

TEST_F(DiskFailureDomainTest, PermanentFaultFailsHealthAndGatesTheDisk) {
  const ShardId id = ShardOn(1);
  ASSERT_TRUE(node_->Put(id, BytesOf("v")).ok());
  // Fail every extent: whichever chunk the shard landed in is dead.
  ScopedFault guard(node_->disk_image(1).fault_injector());
  for (ExtentId e = 1; e < 16; ++e) {
    node_->disk_image(1).fault_injector().FailAlways(e, true);
  }
  EXPECT_EQ(node_->Get(id).code(), StatusCode::kDiskFailed);
  // The error-budget tracker propagated into the node's health state.
  EXPECT_EQ(node_->Health(1), DiskHealth::kFailed);
  // A failed disk serves nothing, reads included.
  EXPECT_EQ(node_->Get(id).code(), StatusCode::kUnavailable);
  EXPECT_EQ(node_->Put(id, BytesOf("w")).code(), StatusCode::kUnavailable);
  // Repair: clear the faults, reset health — data was never lost.
  node_->disk_image(1).fault_injector().Clear();
  ASSERT_TRUE(node_->ResetDiskHealth(1).ok());
  EXPECT_EQ(node_->Get(id).value(), BytesOf("v"));
}

TEST_F(DiskFailureDomainTest, CrashRebootKeepsFlushedDataAndClearsFaults) {
  const ShardId id = ShardOn(2);
  ASSERT_TRUE(node_->Put(id, BytesOf("durable")).ok());
  ASSERT_TRUE(node_->FlushAllDisks().ok());
  node_->disk_image(2).fault_injector().FailAlways(3, true);
  ASSERT_TRUE(node_->CrashAndRecoverDisk(2, /*crash_seed=*/7).ok());
  EXPECT_EQ(node_->Health(2), DiskHealth::kHealthy);
  EXPECT_FALSE(node_->disk_image(2).fault_injector().AnyArmed());
  EXPECT_EQ(node_->Get(id).value(), BytesOf("durable"));
}

TEST_F(DiskFailureDomainTest, MigrationIsDurableAgainstTargetCrash) {
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("moved")).ok());
  ASSERT_TRUE(node_->MigrateShard(id, 1).ok());
  ASSERT_EQ(node_->DiskFor(id), 1);
  // The migrated copy was flushed before the routing commit: an immediate crash of
  // the target cannot lose it.
  ASSERT_TRUE(node_->CrashAndRecoverDisk(1, /*crash_seed=*/11).ok());
  EXPECT_EQ(node_->DiskFor(id), 1);
  EXPECT_EQ(node_->Get(id).value(), BytesOf("moved"));
}

TEST_F(DiskFailureDomainTest, SourceCrashDoesNotResurrectMigratedShard) {
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("v1")).ok());
  ASSERT_TRUE(node_->MigrateShard(id, 1).ok());
  ASSERT_TRUE(node_->Put(id, BytesOf("v2")).ok());  // newer value on the target
  // Crash the source: its flushed tombstone must keep the stale v1 copy from
  // stealing routing back.
  ASSERT_TRUE(node_->CrashAndRecoverDisk(0, /*crash_seed=*/13).ok());
  EXPECT_EQ(node_->DiskFor(id), 1);
  EXPECT_EQ(node_->Get(id).value(), BytesOf("v2"));
}

// --- The fault-alphabet property ----------------------------------------------------

std::string Describe(const PbtFailure<FailureOp>& failure) {
  std::string out = failure.message + "\n  minimized:";
  for (const FailureOp& op : failure.minimized) {
    out += "\n    " + op.ToString();
  }
  return out;
}

class FailureSeeds : public testing::TestWithParam<uint64_t> {
 protected:
  FailureSeeds() { FaultRegistry::Global().DisableAll(); }
};

TEST_P(FailureSeeds, FaultAlphabetHarnessPasses) {
  FailureConformanceHarness harness{FailureHarnessOptions{}};
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 170, .max_ops = 50});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << Describe(*failure);
  // Three seeds x 170 cases = 510 mixed op/fault cases with zero violations.
  EXPECT_EQ(runner.stats().cases_run, 170u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSeeds, testing::Values(1u, 2u, 3u));

TEST(FailureCoverage, HarnessReachesTheInterestingPaths) {
  Coverage::Global().Reset();
  FailureConformanceHarness harness{FailureHarnessOptions{}};
  auto runner = harness.MakeRunner({.seed = 99, .num_cases = 120, .max_ops = 50});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << Describe(*failure);
  // Retries both absorbed blips and exhausted budgets; health auto-transitions,
  // evacuations and crash-reboots all actually happened.
  EXPECT_GT(Coverage::Global().Count("extent_manager.retry_absorbed_fault"), 0u);
  EXPECT_GT(Coverage::Global().Count("extent_manager.retry_budget_exhausted"), 0u);
  EXPECT_GT(Coverage::Global().Count("rpc.evacuate_disk"), 0u);
  EXPECT_GT(Coverage::Global().Count("rpc.crash_recover_disk"), 0u);
  EXPECT_GT(Coverage::Global().Count("rpc.migrate_shard"), 0u);
}

}  // namespace
}  // namespace ss
