// Disk-failure-domain tests: the fault-alphabet PBT harness (transient bursts,
// permanent faults, degrade/evacuate, crash-reboots) plus directed scenarios for the
// health state machine, read-only degradation, and evacuation.

#include <gtest/gtest.h>

#include "src/common/cover.h"
#include "src/faults/faults.h"
#include "src/harness/failure_harness.h"

namespace ss {
namespace {

// --- Directed scenarios -------------------------------------------------------------

class DiskFailureDomainTest : public testing::Test {
 protected:
  DiskFailureDomainTest() {
    FaultRegistry::Global().DisableAll();
    NodeServerOptions options;
    options.disk_count = 3;
    options.geometry = DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                    .page_size = 256};
    node_ = std::move(NodeServer::Create(options).value());
  }

  // A shard id routed to `disk`.
  ShardId ShardOn(int disk) {
    ShardId id = 0;
    while (node_->DiskFor(id) != disk) {
      ++id;
    }
    return id;
  }

  std::unique_ptr<NodeServer> node_;
};

TEST_F(DiskFailureDomainTest, DegradedDiskIsReadOnly) {
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("before")).ok());
  ASSERT_TRUE(node_->MarkDiskDegraded(0).ok());
  EXPECT_EQ(node_->Health(0), DiskHealth::kDegraded);
  // Reads still serve; mutations are refused.
  EXPECT_EQ(node_->Get(id).value(), BytesOf("before"));
  EXPECT_EQ(node_->Put(id, BytesOf("after")).code(), StatusCode::kUnavailable);
  EXPECT_EQ(node_->Delete(id).code(), StatusCode::kUnavailable);
  // Back to healthy: mutations work again.
  ASSERT_TRUE(node_->ResetDiskHealth(0).ok());
  EXPECT_TRUE(node_->Put(id, BytesOf("after")).ok());
  EXPECT_EQ(node_->Get(id).value(), BytesOf("after"));
}

TEST_F(DiskFailureDomainTest, EvacuateDegradedDiskKeepsServingEveryShard) {
  std::map<ShardId, Bytes> contents;
  for (ShardId id = 0; id < 24; ++id) {
    Bytes value = BytesOf("value-" + std::to_string(id));
    ASSERT_TRUE(node_->Put(id, value).ok());
    contents[id] = value;
  }
  ASSERT_TRUE(node_->MarkDiskDegraded(0).ok());
  ASSERT_TRUE(node_->EvacuateDisk(0).ok());
  // Nothing routes to the degraded disk any more and every shard still serves.
  for (const auto& [id, value] : contents) {
    EXPECT_NE(node_->DiskFor(id), 0) << "shard " << id << " left on the degraded disk";
    EXPECT_EQ(node_->Get(id).value(), value);
  }
  // The drained disk's store is empty.
  EXPECT_EQ(node_->store(0)->List().value().size(), 0u);
}

TEST_F(DiskFailureDomainTest, PermanentFaultFailsHealthAndGatesTheDisk) {
  const ShardId id = ShardOn(1);
  ASSERT_TRUE(node_->Put(id, BytesOf("v")).ok());
  // Fail every extent: whichever chunk the shard landed in is dead.
  ScopedFault guard(node_->disk(1).fault_injector());
  for (ExtentId e = 1; e < 16; ++e) {
    node_->disk(1).fault_injector().FailAlways(e, true);
  }
  EXPECT_EQ(node_->Get(id).code(), StatusCode::kDiskFailed);
  // The error-budget tracker propagated into the node's health state.
  EXPECT_EQ(node_->Health(1), DiskHealth::kFailed);
  // A failed disk serves nothing, reads included.
  EXPECT_EQ(node_->Get(id).code(), StatusCode::kUnavailable);
  EXPECT_EQ(node_->Put(id, BytesOf("w")).code(), StatusCode::kUnavailable);
  // Repair: clear the faults, reset health — data was never lost.
  node_->disk(1).fault_injector().Clear();
  ASSERT_TRUE(node_->ResetDiskHealth(1).ok());
  EXPECT_EQ(node_->Get(id).value(), BytesOf("v"));
}

TEST_F(DiskFailureDomainTest, CrashRebootKeepsFlushedDataAndClearsFaults) {
  const ShardId id = ShardOn(2);
  ASSERT_TRUE(node_->Put(id, BytesOf("durable")).ok());
  ASSERT_TRUE(node_->FlushAllDisks().ok());
  node_->disk(2).fault_injector().FailAlways(3, true);
  ASSERT_TRUE(node_->CrashAndRecoverDisk(2, /*crash_seed=*/7).ok());
  EXPECT_EQ(node_->Health(2), DiskHealth::kHealthy);
  EXPECT_FALSE(node_->disk(2).fault_injector().AnyArmed());
  EXPECT_EQ(node_->Get(id).value(), BytesOf("durable"));
}

TEST_F(DiskFailureDomainTest, MigrationIsDurableAgainstTargetCrash) {
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("moved")).ok());
  ASSERT_TRUE(node_->MigrateShard(id, 1).ok());
  ASSERT_EQ(node_->DiskFor(id), 1);
  // The migrated copy was flushed before the routing commit: an immediate crash of
  // the target cannot lose it.
  ASSERT_TRUE(node_->CrashAndRecoverDisk(1, /*crash_seed=*/11).ok());
  EXPECT_EQ(node_->DiskFor(id), 1);
  EXPECT_EQ(node_->Get(id).value(), BytesOf("moved"));
}

TEST_F(DiskFailureDomainTest, SourceCrashDoesNotResurrectMigratedShard) {
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("v1")).ok());
  ASSERT_TRUE(node_->MigrateShard(id, 1).ok());
  ASSERT_TRUE(node_->Put(id, BytesOf("v2")).ok());  // newer value on the target
  // Crash the source: its flushed tombstone must keep the stale v1 copy from
  // stealing routing back.
  ASSERT_TRUE(node_->CrashAndRecoverDisk(0, /*crash_seed=*/13).ok());
  EXPECT_EQ(node_->DiskFor(id), 1);
  EXPECT_EQ(node_->Get(id).value(), BytesOf("v2"));
}

// --- Metric-delta oracles -----------------------------------------------------------

// A storm of N one-shot transient read faults is absorbed entirely by the retry
// layer: exactly N extent.retry.absorbed increments, zero exhausted budgets, and N
// successful Gets — asserted on MetricsSnapshot() deltas, not ad-hoc struct reads.
TEST_F(DiskFailureDomainTest, AbsorbedFaultStormCountsExactlyInMetrics) {
  constexpr int kStorm = 5;
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("stormy")).ok());
  // No flush: the index entry stays in the memtable, so each Get below performs
  // exactly one extent read (the chunk frame) once the cache is dropped.
  const MetricsSnapshot before = node_->MetricsSnapshot();
  ScopedFault guard(node_->disk(0).fault_injector());
  for (int i = 0; i < kStorm; ++i) {
    node_->store(0)->cache().Clear();  // force the read through to the extent layer
    for (ExtentId e = 1; e < 16; ++e) {
      node_->disk(0).fault_injector().FailReadTimes(e, 1);
    }
    ASSERT_EQ(node_->Get(id).value(), BytesOf("stormy")) << "storm iteration " << i;
    node_->disk(0).fault_injector().Clear();
  }
  const MetricsSnapshot after = node_->MetricsSnapshot();
  EXPECT_EQ(CounterDelta(before, after, "extent.retry.absorbed"), kStorm);
  EXPECT_EQ(CounterDelta(before, after, "extent.retry.exhausted"), 0u);
  EXPECT_EQ(CounterDelta(before, after, "extent.retry.transient_faults"), kStorm);
  EXPECT_EQ(CounterDelta(before, after, "rpc.get.ok"), kStorm);
  EXPECT_EQ(CounterDelta(before, after, "rpc.get.err"), 0u);
  // The storm stayed inside the error budget: the disk never left healthy.
  EXPECT_EQ(node_->Health(0), DiskHealth::kHealthy);
}

// A transient burst longer than the attempt budget exhausts it: the IO escalates to
// kIoError and the snapshot shows exactly one exhausted budget and zero absorptions.
TEST_F(DiskFailureDomainTest, ExhaustedRetryBudgetCountsExactlyInMetrics) {
  const ShardId id = ShardOn(0);
  ASSERT_TRUE(node_->Put(id, BytesOf("doomed")).ok());
  const MetricsSnapshot before = node_->MetricsSnapshot();
  ScopedFault guard(node_->disk(0).fault_injector());
  node_->store(0)->cache().Clear();
  for (ExtentId e = 1; e < 16; ++e) {
    // The extent layer makes 3 attempts per IO (default IoRetryOptions) and the
    // store layer retries the whole read 4 times against reclamation races: 12 armed
    // failures outlast both budgets.
    node_->disk(0).fault_injector().FailReadTimes(e, 12);
  }
  EXPECT_EQ(node_->Get(id).code(), StatusCode::kIoError);
  const MetricsSnapshot after = node_->MetricsSnapshot();
  EXPECT_EQ(CounterDelta(before, after, "extent.retry.exhausted"), 4u);
  EXPECT_EQ(CounterDelta(before, after, "extent.retry.absorbed"), 0u);
  EXPECT_EQ(CounterDelta(before, after, "extent.retry.transient_faults"), 12u);
  EXPECT_EQ(CounterDelta(before, after, "rpc.get.err"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "rpc.get.ok"), 0u);
  // 12 windowed transient errors burned through the degrade budget.
  EXPECT_EQ(node_->Health(0), DiskHealth::kDegraded);
}

// --- The fault-alphabet property ----------------------------------------------------

std::string Describe(const PbtFailure<FailureOp>& failure) {
  std::string out = failure.message + "\n  minimized:";
  for (const FailureOp& op : failure.minimized) {
    out += "\n    " + op.ToString();
  }
  return out;
}

class FailureSeeds : public testing::TestWithParam<uint64_t> {
 protected:
  FailureSeeds() { FaultRegistry::Global().DisableAll(); }
};

TEST_P(FailureSeeds, FaultAlphabetHarnessPasses) {
  FailureConformanceHarness harness{FailureHarnessOptions{}};
  MetricRegistry pbt_metrics;
  auto runner = harness.MakeRunner(
      {.seed = GetParam(), .num_cases = 170, .max_ops = 50, .metrics = &pbt_metrics});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << Describe(*failure);
  // Three seeds x 170 cases = 510 mixed op/fault cases with zero violations.
  EXPECT_EQ(runner.stats().cases_run, 170u);
  // The runner mirrors its progress into the registry: same totals, one snapshot.
  MetricsSnapshot snap = pbt_metrics.Snapshot();
  EXPECT_EQ(snap.counter("pbt.cases_run"), 170u);
  EXPECT_EQ(snap.counter("pbt.ops_run"), runner.stats().ops_run);
  EXPECT_EQ(snap.counter("pbt.failures"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSeeds, testing::Values(1u, 2u, 3u));

TEST(FailureCoverage, HarnessReachesTheInterestingPaths) {
  Coverage::Global().Reset();
  FailureConformanceHarness harness{FailureHarnessOptions{}};
  auto runner = harness.MakeRunner({.seed = 99, .num_cases = 120, .max_ops = 50});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << Describe(*failure);
  // Retries both absorbed blips and exhausted budgets; health auto-transitions,
  // evacuations and crash-reboots all actually happened.
  EXPECT_GT(Coverage::Global().Count("extent_manager.retry_absorbed_fault"), 0u);
  EXPECT_GT(Coverage::Global().Count("extent_manager.retry_budget_exhausted"), 0u);
  EXPECT_GT(Coverage::Global().Count("rpc.evacuate_disk"), 0u);
  EXPECT_GT(Coverage::Global().Count("rpc.crash_recover_disk"), 0u);
  EXPECT_GT(Coverage::Global().Count("rpc.migrate_shard"), 0u);
}

}  // namespace
}  // namespace ss
