// Cross-backend conformance (disk seam, PR 8): the file-backed disk must be
// observationally equivalent to the in-memory reference image. Two full ShardStore
// stacks are driven in lockstep — one over InMemoryDisk, one over FileDisk — with the
// identical operation sequence; because every layer above the disk is deterministic
// (virtual clocks, seeded uuid rng), the persisted state the two backends accumulate
// must be byte-identical.
//
// "Persisted state" is exactly what recovery trusts: per extent, the ownership record,
// the soft write pointer, and the pages below it. Pages beyond the pointer may
// legitimately differ (the in-memory image retains issued-but-uncovered writes, the
// file backend loses its unsynced tail at a power cut) and no correct layer reads them.
//
// The property-based KV harness also runs here with a FileDisk factory, so the whole
// generated alphabet — crashes and fault injection included — exercises the file
// backend, not just the scripted sequences.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/disk/disk.h"
#include "src/disk/file_disk.h"
#include "src/faults/faults.h"
#include "src/harness/kv_harness.h"
#include "src/kv/shard_store.h"

namespace ss {
namespace {

DiskGeometry SmallGeo() {
  return DiskGeometry{.extent_count = 24, .pages_per_extent = 16, .page_size = 256};
}

// Fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "filedisk_conformance" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// Deterministic value payload for a key.
Bytes ValueOf(uint64_t key, size_t size) {
  Bytes v(size);
  for (size_t i = 0; i < size; ++i) {
    v[i] = static_cast<uint8_t>((key * 131 + i * 7) & 0xff);
  }
  return v;
}

// Serializes the state recovery trusts: per extent, the ownership byte, the soft
// write pointer (little endian), and every page below the pointer.
Bytes PersistedFingerprint(Disk& disk) {
  Bytes out;
  const DiskGeometry& geo = disk.geometry();
  for (ExtentId e = 0; e < geo.extent_count; ++e) {
    out.push_back(static_cast<uint8_t>(disk.ReadOwnership(e)));
    const uint32_t wp = disk.ReadSoftWp(e);
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<uint8_t>((wp >> shift) & 0xff));
    }
    for (uint32_t p = 0; p < wp; ++p) {
      Bytes page = disk.PeekPage(e, p).value();
      out.insert(out.end(), page.begin(), page.end());
    }
  }
  return out;
}

// Two full stacks, one per backend, driven with the same operations. Every mutation
// asserts the two implementations agree on the observable outcome as it goes.
class LockstepStores {
 public:
  explicit LockstepStores(const std::string& file_dir) : mem_disk_(SmallGeo()) {
    Result<std::unique_ptr<FileDisk>> file = FileDisk::Open(file_dir, SmallGeo());
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    file_disk_ = std::move(file).value();
    Reopen();
  }

  void Reopen() {
    Result<std::unique_ptr<ShardStore>> mem = ShardStore::Open(&mem_disk_);
    Result<std::unique_ptr<ShardStore>> file = ShardStore::Open(file_disk_.get());
    ASSERT_TRUE(mem.ok()) << mem.status().ToString();
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    mem_store_ = std::move(mem).value();
    file_store_ = std::move(file).value();
  }

  void Put(ShardId id, const Bytes& value) {
    Result<Dependency> a = mem_store_->Put(id, ByteSpan(value));
    Result<Dependency> b = file_store_->Put(id, ByteSpan(value));
    ASSERT_EQ(a.ok(), b.ok()) << "put " << id;
  }

  void Delete(ShardId id) {
    Result<Dependency> a = mem_store_->Delete(id);
    Result<Dependency> b = file_store_->Delete(id);
    ASSERT_EQ(a.ok(), b.ok()) << "delete " << id;
  }

  void ApplyBatch(const std::vector<StoreBatchItem>& items) {
    StoreBatchResult a = mem_store_->ApplyBatch(items);
    StoreBatchResult b = file_store_->ApplyBatch(items);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      ASSERT_EQ(a.items[i].status.ok(), b.items[i].status.ok()) << "batch item " << i;
    }
  }

  void FlushIndex() {
    ASSERT_TRUE(mem_store_->FlushIndex().ok());
    ASSERT_TRUE(file_store_->FlushIndex().ok());
  }

  void FlushAll() {
    ASSERT_TRUE(mem_store_->FlushAll().ok());
    ASSERT_TRUE(file_store_->FlushAll().ok());
  }

  // Both implementations answer every read identically.
  void ExpectSameVisibleState() {
    Result<std::vector<ShardId>> a = mem_store_->List();
    Result<std::vector<ShardId>> b = file_store_->List();
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value(), b.value());
    for (ShardId id : a.value()) {
      Result<Bytes> va = mem_store_->Get(id);
      Result<Bytes> vb = file_store_->Get(id);
      ASSERT_TRUE(va.ok()) << "mem get " << id << ": " << va.status().ToString();
      ASSERT_TRUE(vb.ok()) << "file get " << id << ": " << vb.status().ToString();
      ASSERT_EQ(va.value(), vb.value()) << "value mismatch for " << id;
    }
  }

  void ExpectIdenticalPersistedState() {
    EXPECT_EQ(PersistedFingerprint(mem_disk_), PersistedFingerprint(*file_disk_));
  }

  // Power cut on both stacks: identical scripted crash plan, then the file backend
  // loses its unsynced tail, then both recover from their disks.
  void CrashBoth(const std::vector<bool>& plan) {
    mem_store_->scheduler().CrashScripted(plan);
    file_store_->scheduler().CrashScripted(plan);
    mem_store_.reset();
    file_store_.reset();
    mem_disk_.DropUnsynced();  // no-op: issue == durable for the reference image
    file_disk_->DropUnsynced();
    Reopen();
  }

  ShardStore& mem_store() { return *mem_store_; }
  ShardStore& file_store() { return *file_store_; }
  InMemoryDisk& mem_disk() { return mem_disk_; }
  FileDisk& file_disk() { return *file_disk_; }

 private:
  InMemoryDisk mem_disk_;
  std::unique_ptr<FileDisk> file_disk_;
  std::unique_ptr<ShardStore> mem_store_;
  std::unique_ptr<ShardStore> file_store_;
};

class FileDiskConformance : public testing::Test {
 protected:
  FileDiskConformance() { FaultRegistry::Global().DisableAll(); }
};

TEST_F(FileDiskConformance, IdenticalPersistedStateForIdenticalOps) {
  LockstepStores stores(FreshDir("identical_ops"));
  // A workload that crosses page and chunk boundaries, rewrites, deletes, batches,
  // and forces index flushes — enough to move soft pointers on several extents.
  for (uint64_t k = 0; k < 12; ++k) {
    stores.Put(k, ValueOf(k, 40 + k * 97));
  }
  stores.FlushIndex();
  for (uint64_t k = 0; k < 12; k += 3) {
    stores.Put(k, ValueOf(k + 100, 700));  // rewrite with multi-page values
  }
  stores.Delete(5);
  stores.Delete(11);
  std::vector<StoreBatchItem> batch;
  for (uint64_t k = 20; k < 26; ++k) {
    batch.push_back({.id = k, .value = ValueOf(k, 256 * (k % 3) + 17)});
  }
  batch.push_back({.id = 3, .value = std::nullopt});  // batched delete
  stores.ApplyBatch(batch);
  stores.FlushAll();

  stores.ExpectSameVisibleState();
  stores.ExpectIdenticalPersistedState();
}

TEST_F(FileDiskConformance, IdenticalPersistedStateAfterScriptedCrash) {
  LockstepStores stores(FreshDir("scripted_crash"));
  // Durable prefix, then in-flight writes the crash will partially persist.
  for (uint64_t k = 0; k < 8; ++k) {
    stores.Put(k, ValueOf(k, 120 + k * 33));
  }
  stores.FlushAll();
  for (uint64_t k = 8; k < 20; ++k) {
    stores.Put(k, ValueOf(k, 64 + k * 51));
  }
  stores.Put(2, ValueOf(777, 900));
  stores.Delete(6);
  stores.FlushIndex();

  // Same dependency-respecting persist/drop plan for both schedulers: both stacks
  // enqueued the identical writeback sequence, so the plan selects the identical
  // block-level crash state.
  std::vector<bool> plan;
  for (int i = 0; i < 256; ++i) {
    plan.push_back(i % 3 != 0);
  }
  stores.CrashBoth(plan);

  stores.ExpectIdenticalPersistedState();
  stores.ExpectSameVisibleState();

  // And the recovered stores keep agreeing under further writes + a clean flush.
  for (uint64_t k = 30; k < 36; ++k) {
    stores.Put(k, ValueOf(k, 300));
  }
  stores.FlushAll();
  stores.ExpectSameVisibleState();
  stores.ExpectIdenticalPersistedState();
}

// Clean-shutdown durability through a real reopen: destroy the FileDisk itself (not
// just the store), replay the logs from disk, and the full contents come back.
TEST_F(FileDiskConformance, ShardStoreSurvivesFileDiskReopen) {
  const std::string dir = FreshDir("store_reopen");
  std::vector<std::pair<ShardId, Bytes>> expected;
  {
    Result<std::unique_ptr<FileDisk>> disk = FileDisk::Open(dir, SmallGeo());
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    Result<std::unique_ptr<ShardStore>> store = ShardStore::Open(disk.value().get());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (uint64_t k = 0; k < 10; ++k) {
      Bytes value = ValueOf(k, 90 + k * 61);
      ASSERT_TRUE(store.value()->Put(k, ByteSpan(value)).ok());
      expected.emplace_back(k, std::move(value));
    }
    ASSERT_TRUE(store.value()->Delete(4).ok());
    expected.erase(expected.begin() + 4);
    ASSERT_TRUE(store.value()->FlushAll().ok());
  }  // store then disk destroyed: clean shutdown syncs the logs

  Result<std::unique_ptr<FileDisk>> disk = FileDisk::Open(dir, SmallGeo());
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  Result<std::unique_ptr<ShardStore>> store = ShardStore::Open(disk.value().get());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Result<std::vector<ShardId>> listed = store.value()->List();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value().size(), expected.size());
  for (const auto& [id, value] : expected) {
    Result<Bytes> got = store.value()->Get(id);
    ASSERT_TRUE(got.ok()) << "get " << id << " after reopen: " << got.status().ToString();
    EXPECT_EQ(got.value(), value) << "shard " << id;
  }
}

// The generated property-based alphabet against the file backend: model conformance,
// crash persistence, and forward progress all hold when every disk the harness builds
// is a FileDisk. Case counts are modest — each case pays real file IO and fsyncs.
class FileDiskHarnessSeeds : public testing::TestWithParam<uint64_t> {
 protected:
  FileDiskHarnessSeeds() { FaultRegistry::Global().DisableAll(); }

  static KvHarnessOptions FileBackedOptions(const std::string& tag) {
    KvHarnessOptions options;
    auto counter = std::make_shared<int>(0);
    options.disk_factory = [tag, counter](const DiskGeometry& geometry) {
      const std::string dir = FreshDir(tag + "_case_" + std::to_string((*counter)++));
      Result<std::unique_ptr<FileDisk>> disk = FileDisk::Open(dir, geometry);
      return disk.ok() ? std::move(disk).value() : nullptr;
    };
    return options;
  }
};

TEST_P(FileDiskHarnessSeeds, KvHarnessPassesOnFileDisk) {
  KvHarnessOptions options = FileBackedOptions("plain");
  options.crashes = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 30});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

TEST_P(FileDiskHarnessSeeds, KvHarnessWithFailureInjectionPassesOnFileDisk) {
  KvHarnessOptions options = FileBackedOptions("faults");
  options.failure_injection = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 30});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileDiskHarnessSeeds, testing::Values(1, 42, 99999));

}  // namespace
}  // namespace ss
