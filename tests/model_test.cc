// Unit tests for the reference models, including the crash-allowed-set semantics and
// the models' use as mocks (paper section 3.2).

#include <gtest/gtest.h>

#include <map>

#include "src/faults/faults.h"
#include "src/model/models.h"

namespace ss {
namespace {

TEST(IndexModel, BasicMapSemantics) {
  IndexModel model;
  ShardRecord record;
  record.total_bytes = 9;
  model.Put(1, record);
  ASSERT_TRUE(model.Get(1).has_value());
  EXPECT_EQ(model.Get(1)->total_bytes, 9u);
  EXPECT_FALSE(model.Get(2).has_value());
  model.Delete(1);
  EXPECT_FALSE(model.Get(1).has_value());
  EXPECT_EQ(model.size(), 0u);
}

TEST(IndexModel, KeysSorted) {
  IndexModel model;
  model.Put(5, {});
  model.Put(1, {});
  model.Put(3, {});
  EXPECT_EQ(model.Keys(), (std::vector<ShardId>{1, 3, 5}));
}

// The reference model doubles as a mock (paper: "we also use them as mocks during unit
// testing"): this test exercises API-layer logic against IndexModel instead of the
// real LSM tree.
TEST(IndexModel, UsableAsMock) {
  IndexModel mock_index;
  auto put_through_api = [&mock_index](ShardId id, uint64_t size) {
    ShardRecord record;
    record.total_bytes = size;
    mock_index.Put(id, record);
  };
  put_through_api(1, 100);
  put_through_api(2, 200);
  uint64_t total = 0;
  for (ShardId id : mock_index.Keys()) {
    total += mock_index.Get(id)->total_bytes;
  }
  EXPECT_EQ(total, 300u);
}

// Section 3.2 "model verification": the paper experiments with Prusti proofs that the
// reference model itself is right — e.g. "the LSM-tree reference model removes a
// key-value mapping if and only if it receives a delete operation for that key". The
// dynamic substitution: a randomized property sweep over model histories.
class IndexModelVerification : public testing::TestWithParam<uint64_t> {};

TEST_P(IndexModelVerification, MappingRemovedIffDeleted) {
  Rng rng(GetParam());
  IndexModel model;
  std::map<ShardId, bool> oracle;  // live?
  for (int step = 0; step < 2000; ++step) {
    const ShardId id = rng.Below(12);
    if (rng.Chance(0.6)) {
      ShardRecord record;
      record.total_bytes = rng.Next();
      model.Put(id, record);
      oracle[id] = true;
    } else {
      model.Delete(id);
      oracle[id] = false;
    }
    // The mapping exists iff the last operation on the key was not a delete, and a
    // key never touched is never present.
    for (ShardId k = 0; k < 12; ++k) {
      const bool expected = oracle.count(k) != 0 && oracle[k];
      EXPECT_EQ(model.Get(k).has_value(), expected) << "key " << k << " step " << step;
    }
  }
  // Keys() agrees with the membership predicate.
  size_t live = 0;
  for (const auto& [k, alive] : oracle) {
    live += alive ? 1 : 0;
  }
  EXPECT_EQ(model.Keys().size(), live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexModelVerification, testing::Values(3, 5, 8, 13));

TEST(ChunkStoreModel, PutGetForget) {
  ChunkStoreModel model;
  auto loc = model.Put(BytesOf("data"));
  EXPECT_EQ(model.Get(loc), BytesOf("data"));
  model.Forget(loc);
  EXPECT_EQ(model.Get(loc), std::nullopt);
}

TEST(ChunkStoreModel, LocatorsUniqueForever) {
  FaultRegistry::Global().DisableAll();
  ChunkStoreModel model;
  std::set<ChunkStoreModel::ModelLocator> seen;
  for (int i = 0; i < 50; ++i) {
    auto loc = model.Put(BytesOf("x"));
    EXPECT_TRUE(seen.insert(loc).second);
    if (i % 3 == 0) {
      model.Forget(loc);
    }
  }
}

TEST(ChunkStoreModel, Bug15ReusesLocators) {
  ScopedBug bug(SeededBug::kModelLocatorReuse);
  ChunkStoreModel model;
  auto first = model.Put(BytesOf("a"));
  model.Forget(first);
  auto second = model.Put(BytesOf("b"));
  EXPECT_EQ(first, second);  // the seeded model bug
}

class KvModelTest : public testing::Test {
 protected:
  KvModelTest() { FaultRegistry::Global().DisableAll(); }

  Dependency Persistent() {
    Dependency leaf = Dependency::MakeLeaf();
    leaf.MarkLeafPersistent();
    return leaf;
  }
  Dependency Pending() { return Dependency::MakeLeaf(); }

  KvStoreModel model_;
};

TEST_F(KvModelTest, CrashFreeSemantics) {
  model_.Put(1, BytesOf("a"), Pending());
  EXPECT_EQ(model_.Get(1), BytesOf("a"));
  model_.Put(1, BytesOf("b"), Pending());
  EXPECT_EQ(model_.Get(1), BytesOf("b"));
  model_.Delete(1, Pending());
  EXPECT_EQ(model_.Get(1), std::nullopt);
  EXPECT_TRUE(model_.List().empty());
}

TEST_F(KvModelTest, AllowedAfterCrashKeepsPersistedValue) {
  model_.Put(1, BytesOf("durable"), Persistent());
  model_.Put(1, BytesOf("inflight"), Pending());
  auto allowed = model_.AllowedAfterCrash(1);
  EXPECT_FALSE(allowed.allow_absent);  // the durable put must not be lost
  EXPECT_TRUE(allowed.Permits(Bytes(BytesOf("durable"))));
  EXPECT_TRUE(allowed.Permits(Bytes(BytesOf("inflight"))));  // lucky survival is legal
  EXPECT_FALSE(allowed.Permits(Bytes(BytesOf("other"))));
  EXPECT_FALSE(allowed.Permits(std::nullopt));
}

TEST_F(KvModelTest, AllowedAfterCrashForbidsResurrection) {
  model_.Put(1, BytesOf("old"), Persistent());
  model_.Put(1, BytesOf("new"), Persistent());
  auto allowed = model_.AllowedAfterCrash(1);
  EXPECT_TRUE(allowed.Permits(Bytes(BytesOf("new"))));
  EXPECT_FALSE(allowed.Permits(Bytes(BytesOf("old"))));  // superseded by a persisted op
}

TEST_F(KvModelTest, AllowedAfterCrashWithNothingPersisted) {
  model_.Put(1, BytesOf("a"), Pending());
  model_.Put(1, BytesOf("b"), Pending());
  auto allowed = model_.AllowedAfterCrash(1);
  EXPECT_TRUE(allowed.allow_absent);
  EXPECT_TRUE(allowed.Permits(Bytes(BytesOf("a"))));
  EXPECT_TRUE(allowed.Permits(Bytes(BytesOf("b"))));
}

TEST_F(KvModelTest, PersistedDeleteAllowsAbsent) {
  model_.Put(1, BytesOf("a"), Persistent());
  model_.Delete(1, Persistent());
  auto allowed = model_.AllowedAfterCrash(1);
  EXPECT_TRUE(allowed.allow_absent);
  EXPECT_FALSE(allowed.Permits(Bytes(BytesOf("a"))));
}

TEST_F(KvModelTest, UnpersistedDeleteMayBeLost) {
  model_.Put(1, BytesOf("a"), Persistent());
  model_.Delete(1, Pending());
  auto allowed = model_.AllowedAfterCrash(1);
  EXPECT_TRUE(allowed.allow_absent);                     // the delete may have made it
  EXPECT_TRUE(allowed.Permits(Bytes(BytesOf("a"))));     // or been lost
}

TEST_F(KvModelTest, UntouchedKeyAllowsOnlyAbsent) {
  auto allowed = model_.AllowedAfterCrash(42);
  EXPECT_TRUE(allowed.allow_absent);
  EXPECT_TRUE(allowed.values.empty());
}

TEST_F(KvModelTest, AdoptCollapsesHistory) {
  model_.Put(1, BytesOf("a"), Persistent());
  model_.Put(1, BytesOf("b"), Pending());
  EXPECT_TRUE(model_.AdoptPostCrash(1, Bytes(BytesOf("a"))));
  EXPECT_EQ(model_.Get(1), BytesOf("a"));
  // Adopted state is durable: a second crash cannot roll it back further.
  auto allowed = model_.AllowedAfterCrash(1);
  EXPECT_FALSE(allowed.allow_absent);
}

TEST_F(KvModelTest, AdoptRejectsIllegalObservation) {
  model_.Put(1, BytesOf("durable"), Persistent());
  EXPECT_FALSE(model_.AdoptPostCrash(1, std::nullopt));              // data loss
  EXPECT_FALSE(model_.AdoptPostCrash(1, Bytes(BytesOf("garbage"))));  // wrong bytes
}

TEST_F(KvModelTest, Bug9ForgetsThatDeletesCanBeLost) {
  ScopedBug bug(SeededBug::kRecoveryWritePointerPastCrash);
  model_.Put(1, BytesOf("a"), Persistent());
  model_.Delete(1, Pending());
  auto allowed = model_.AllowedAfterCrash(1);
  // The buggy model insists the key is gone; a correct implementation that kept the
  // persisted value then fails the check — how the paper's model bug surfaced.
  EXPECT_FALSE(allowed.Permits(Bytes(BytesOf("a"))));
}

TEST_F(KvModelTest, TouchedKeysIncludesDeleted) {
  model_.Put(1, BytesOf("a"), Pending());
  model_.Delete(1, Pending());
  model_.Put(2, BytesOf("b"), Pending());
  EXPECT_EQ(model_.TouchedKeys().size(), 2u);
}

}  // namespace
}  // namespace ss
