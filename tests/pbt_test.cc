// Unit tests for the property-based testing engine: determinism, replay, failure
// detection, minimization quality, biasing helpers (paper sections 4.1-4.3).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/pbt/pbt.h"

namespace ss {
namespace {

// A toy op type: integers. The "system under test" fails when the sequence contains a
// value >= 50 after a value >= 20 — requiring the minimizer to keep two ops.
struct ToyOp {
  int value = 0;
};

PbtRunner<ToyOp> MakeToyRunner(PbtConfig config, int* runs = nullptr) {
  return PbtRunner<ToyOp>(
      config,
      [](Rng& rng, const std::vector<ToyOp>&) {
        return ToyOp{static_cast<int>(rng.Below(100))};
      },
      [runs](const std::vector<ToyOp>& ops) -> std::optional<std::string> {
        if (runs != nullptr) {
          ++*runs;
        }
        bool armed = false;
        for (const ToyOp& op : ops) {
          if (armed && op.value >= 50) {
            return "armed failure";
          }
          if (op.value >= 20) {
            armed = true;
          }
        }
        return std::nullopt;
      },
      [](const ToyOp& op) {
        std::vector<ToyOp> out;
        if (op.value > 0) {
          out.push_back(ToyOp{op.value / 2});
        }
        return out;
      });
}

TEST(Pbt, FindsSeededFailure) {
  auto runner = MakeToyRunner({.seed = 1, .num_cases = 200, .max_ops = 30});
  auto failure = runner.Run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_FALSE(failure->minimized.empty());
  EXPECT_EQ(failure->message, "armed failure");
}

TEST(Pbt, MinimizesToTwoEssentialOps) {
  auto runner = MakeToyRunner({.seed = 1, .num_cases = 200, .max_ops = 30});
  auto failure = runner.Run();
  ASSERT_TRUE(failure.has_value());
  // The property needs exactly two ops: one >= 20 (arming) and one >= 50.
  ASSERT_EQ(failure->minimized.size(), 2u);
  EXPECT_GE(failure->minimized[0].value, 20);
  EXPECT_GE(failure->minimized[1].value, 50);
  // Argument shrinking drove both toward the thresholds.
  EXPECT_LT(failure->minimized[0].value, 40);
  EXPECT_LT(failure->minimized[1].value, 100);
  EXPECT_LE(failure->minimized.size(), failure->original.size());
}

TEST(Pbt, DeterministicAcrossRuns) {
  auto first = MakeToyRunner({.seed = 77, .num_cases = 100, .max_ops = 20}).Run();
  auto second = MakeToyRunner({.seed = 77, .num_cases = 100, .max_ops = 20}).Run();
  ASSERT_EQ(first.has_value(), second.has_value());
  if (first.has_value()) {
    EXPECT_EQ(first->case_index, second->case_index);
    EXPECT_EQ(first->case_seed, second->case_seed);
    EXPECT_EQ(first->minimized.size(), second->minimized.size());
  }
}

TEST(Pbt, GenerateReplaysFromCaseSeed) {
  auto runner = MakeToyRunner({.seed = 5, .num_cases = 10, .max_ops = 20});
  auto ops_a = runner.Generate(12345);
  auto ops_b = runner.Generate(12345);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].value, ops_b[i].value);
  }
}

TEST(Pbt, PassingPropertyRunsAllCases) {
  PbtConfig config{.seed = 3, .num_cases = 50, .max_ops = 10};
  PbtRunner<ToyOp> runner(
      config, [](Rng& rng, const std::vector<ToyOp>&) { return ToyOp{1}; },
      [](const std::vector<ToyOp>&) { return std::nullopt; });
  EXPECT_FALSE(runner.Run().has_value());
  EXPECT_EQ(runner.stats().cases_run, 50u);
  EXPECT_GT(runner.stats().ops_run, 0u);
}

TEST(Pbt, ShrinkBudgetRespected) {
  int runs = 0;
  PbtConfig config{.seed = 1, .num_cases = 200, .max_ops = 30, .max_shrink_runs = 10};
  auto runner = MakeToyRunner(config, &runs);
  auto failure = runner.Run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_LE(failure->shrink_runs, 10u);
}

TEST(Pbt, SequenceLengthWithinBounds) {
  PbtConfig config{.seed = 9, .num_cases = 1, .min_ops = 5, .max_ops = 8};
  PbtRunner<ToyOp> runner(
      config, [](Rng& rng, const std::vector<ToyOp>&) { return ToyOp{0}; },
      [](const std::vector<ToyOp>&) { return std::nullopt; });
  for (uint64_t seed = 1; seed < 40; ++seed) {
    const size_t len = runner.Generate(seed).size();
    EXPECT_GE(len, 5u);
    EXPECT_LE(len, 8u);
  }
}

TEST(Pbt, GeneratorSeesPrefix) {
  // A generator that echoes the prefix length lets us verify incremental generation.
  PbtConfig config{.seed = 2, .num_cases = 1, .min_ops = 6, .max_ops = 6};
  PbtRunner<ToyOp> runner(
      config,
      [](Rng&, const std::vector<ToyOp>& prefix) {
        return ToyOp{static_cast<int>(prefix.size())};
      },
      [](const std::vector<ToyOp>&) { return std::nullopt; });
  auto ops = runner.Generate(99);
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].value, static_cast<int>(i));
  }
}

TEST(BiasedKey, ReusesUsedKeys) {
  Rng rng(4);
  std::vector<uint64_t> used = {7, 9};
  int reused = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t key = BiasedKey(rng, used, 0.8, 1000);
    if (key == 7 || key == 9) {
      ++reused;
    }
  }
  EXPECT_GT(reused, 700);
  EXPECT_LT(reused, 900);
}

TEST(BiasedKey, EmptyUsedFallsBackToFresh) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BiasedKey(rng, {}, 0.9, 10), 10u);
  }
}

TEST(BiasedValueSize, HitsPageCorners) {
  Rng rng(6);
  const uint32_t page = 256;
  const size_t overhead = 43;
  int frame_aligned = 0;
  int trailer_aligned = 0;
  for (int i = 0; i < 5000; ++i) {
    const size_t size = BiasedValueSize(rng, page, overhead, 1500);
    EXPECT_LE(size, 1500u);
    if ((size + overhead) % page == 0) {
      ++frame_aligned;
    }
    if ((size + overhead - 16) % page == 0) {
      ++trailer_aligned;
    }
  }
  // Both corner families must be hit regularly (the biasing that finds issues #1/#10).
  EXPECT_GT(frame_aligned, 100);
  EXPECT_GT(trailer_aligned, 100);
}

}  // namespace
}  // namespace ss
