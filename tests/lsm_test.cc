// Unit tests for the LSM index: memtable/run/metadata lifecycle, dependencies,
// compaction, recovery, reverse lookups, relocations.

#include <gtest/gtest.h>

#include "src/cache/buffer_cache.h"
#include "src/faults/faults.h"
#include "src/lsm/lsm_index.h"

namespace ss {
namespace {

ShardRecord MakeRecord(uint32_t tag) {
  ShardRecord record;
  record.total_bytes = tag;
  record.chunks.push_back(Locator{90000 + tag, tag, 1, 64});
  return record;
}

class LsmTest : public testing::Test {
 protected:
  LsmTest() { Reopen(/*fresh=*/true); }

  void Reopen(bool fresh = false) {
    index_.reset();
    scheduler_ = std::make_unique<IoScheduler>(&disk_);
    extents_ = std::make_unique<ExtentManager>(&disk_, scheduler_.get());
    cache_ = std::make_unique<BufferCache>(extents_.get(), 64);
    chunks_ = std::make_unique<ChunkStore>(extents_.get(), cache_.get(), ChunkStoreOptions{});
    index_ = std::move(LsmIndex::Open(extents_.get(), chunks_.get(), LsmOptions{}).value());
    (void)fresh;
  }

  InMemoryDisk disk_{DiskGeometry{.extent_count = 12, .pages_per_extent = 16, .page_size = 128}};
  std::unique_ptr<IoScheduler> scheduler_;
  std::unique_ptr<ExtentManager> extents_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<ChunkStore> chunks_;
  std::unique_ptr<LsmIndex> index_;
};

TEST_F(LsmTest, FreshIndexIsEmpty) {
  EXPECT_EQ(index_->Get(1).value(), std::nullopt);
  EXPECT_TRUE(index_->Keys().value().empty());
  EXPECT_EQ(index_->RunCount(), 0u);
}

TEST_F(LsmTest, PutGetFromMemtable) {
  index_->Put(1, MakeRecord(7), Dependency());
  auto got = index_->Get(1).value();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, MakeRecord(7));
  EXPECT_EQ(index_->MemtableEntries(), 1u);
}

TEST_F(LsmTest, OverwriteTakesLatest) {
  index_->Put(1, MakeRecord(7), Dependency());
  index_->Put(1, MakeRecord(9), Dependency());
  EXPECT_EQ(*index_->Get(1).value(), MakeRecord(9));
}

TEST_F(LsmTest, DeleteShadowsOlderRuns) {
  index_->Put(1, MakeRecord(7), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  index_->Delete(1);
  EXPECT_EQ(index_->Get(1).value(), std::nullopt);
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_EQ(index_->Get(1).value(), std::nullopt);
  EXPECT_TRUE(index_->Keys().value().empty());
}

TEST_F(LsmTest, FlushMovesEntriesToRun) {
  for (ShardId id = 0; id < 5; ++id) {
    index_->Put(id, MakeRecord(static_cast<uint32_t>(id)), Dependency());
  }
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_EQ(index_->MemtableEntries(), 0u);
  EXPECT_EQ(index_->RunCount(), 1u);
  for (ShardId id = 0; id < 5; ++id) {
    EXPECT_EQ(*index_->Get(id).value(), MakeRecord(static_cast<uint32_t>(id)));
  }
  EXPECT_EQ(index_->Keys().value().size(), 5u);
}

TEST_F(LsmTest, FlushOnEmptyMemtableIsNoOp) {
  const uint64_t version = index_->MetadataVersion();
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_EQ(index_->MetadataVersion(), version);
}

TEST_F(LsmTest, PutDependencyPersistsAfterFlushAndPump) {
  Dependency data_dep = Dependency::MakeLeaf();
  Dependency dep = index_->Put(1, MakeRecord(1), data_dep);
  EXPECT_FALSE(dep.IsPersistent());
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_FALSE(dep.IsPersistent());  // run gated on the data dependency
  data_dep.MarkLeafPersistent();
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  EXPECT_TRUE(dep.IsPersistent());
}

TEST_F(LsmTest, RunNotIssuedBeforeDataDependency) {
  Dependency data_dep = Dependency::MakeLeaf();
  index_->Put(1, MakeRecord(1), data_dep);
  ASSERT_TRUE(index_->Flush().ok());
  scheduler_->Pump(100);
  // Metadata cannot be durable yet: its run is gated on unpersisted shard data.
  EXPECT_EQ(scheduler_->FlushAll().code(), StatusCode::kInternal);
  data_dep.MarkLeafPersistent();
  EXPECT_TRUE(scheduler_->FlushAll().ok());
}

TEST_F(LsmTest, CompactMergesRunsAndDropsTombstones) {
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Put(2, MakeRecord(2), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  index_->Delete(1);
  index_->Put(3, MakeRecord(3), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_EQ(index_->RunCount(), 2u);
  ASSERT_TRUE(index_->Compact().ok());
  EXPECT_EQ(index_->RunCount(), 1u);
  EXPECT_EQ(index_->Get(1).value(), std::nullopt);
  EXPECT_EQ(*index_->Get(2).value(), MakeRecord(2));
  EXPECT_EQ(*index_->Get(3).value(), MakeRecord(3));
}

TEST_F(LsmTest, RecoveryRestoresFlushedState) {
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Put(2, MakeRecord(2), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  Reopen();
  EXPECT_EQ(*index_->Get(1).value(), MakeRecord(1));
  EXPECT_EQ(*index_->Get(2).value(), MakeRecord(2));
  EXPECT_EQ(index_->RunCount(), 1u);
}

TEST_F(LsmTest, RecoveryDropsUnflushedMemtable) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  index_->Put(2, MakeRecord(2), Dependency());  // never flushed
  scheduler_->CrashDropAll();
  Reopen();
  EXPECT_TRUE(index_->Get(1).value().has_value());
  EXPECT_EQ(index_->Get(2).value(), std::nullopt);
}

TEST_F(LsmTest, RecoveryPicksHighestMetadataVersion) {
  for (uint32_t round = 0; round < 6; ++round) {
    index_->Put(round, MakeRecord(round), Dependency());
    ASSERT_TRUE(index_->Flush().ok());
  }
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  const uint64_t version = index_->MetadataVersion();
  Reopen();
  EXPECT_EQ(index_->MetadataVersion(), version);
  EXPECT_EQ(index_->Keys().value().size(), 6u);
}

TEST_F(LsmTest, MetadataPingPongAcrossExtents) {
  // Enough flushes to fill one metadata extent and force the switch + reset.
  for (uint32_t round = 0; round < 40; ++round) {
    index_->Put(round % 4, MakeRecord(round), Dependency());
    ASSERT_TRUE(index_->Flush().ok());
    if (round % 8 == 0) {
      ASSERT_TRUE(index_->Compact().ok());
    }
    ASSERT_TRUE(scheduler_->FlushAll().ok());
  }
  Reopen();
  EXPECT_EQ(index_->Keys().value().size(), 4u);
}

TEST_F(LsmTest, FindShardReferencingChecksLiveView) {
  ShardRecord record = MakeRecord(5);
  const Locator target = record.chunks[0];
  index_->Put(9, record, Dependency());
  EXPECT_EQ(index_->FindShardReferencing(target).value(), std::optional<ShardId>(9));
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_EQ(index_->FindShardReferencing(target).value(), std::optional<ShardId>(9));
  index_->Delete(9);
  EXPECT_EQ(index_->FindShardReferencing(target).value(), std::nullopt);
}

TEST_F(LsmTest, MetadataReferencesRunChunks) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  auto runs = index_->RunLocators();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(index_->MetadataReferences(runs[0]));
  EXPECT_FALSE(index_->MetadataReferences(Locator{1, 2, 3, 4}));
}

TEST_F(LsmTest, RelocateShardChunkRewritesRecord) {
  ShardRecord record = MakeRecord(5);
  const Locator old_loc = record.chunks[0];
  const Locator new_loc{70000, 1, 1, 64};
  index_->Put(9, record, Dependency());
  Dependency dep = index_->RelocateShardChunk(old_loc, new_loc, Dependency()).value();
  auto got = index_->Get(9).value();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->chunks[0], new_loc);
  // The relocation's dependency resolves at the next flush.
  EXPECT_FALSE(dep.IsPersistent());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  EXPECT_TRUE(dep.IsPersistent());
}

TEST_F(LsmTest, RelocateShardChunkNoOpWhenUnreferenced) {
  Dependency dep = index_->RelocateShardChunk(Locator{1, 1, 1, 64}, Locator{2, 2, 1, 64},
                                              Dependency())
                       .value();
  EXPECT_TRUE(dep.IsPersistent());  // trivially persistent no-op
}

TEST_F(LsmTest, RelocateRunChunkRewritesRunListAndPersists) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  const Locator old_run = index_->RunLocators()[0];
  const Locator new_run{60000, 0, 1, 64};
  const uint64_t version = index_->MetadataVersion();
  Dependency dep = index_->RelocateRunChunk(old_run, new_run, Dependency()).value();
  EXPECT_TRUE(index_->MetadataReferences(new_run));
  EXPECT_FALSE(index_->MetadataReferences(old_run));
  EXPECT_EQ(index_->MetadataVersion(), version + 1);
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  EXPECT_TRUE(dep.IsPersistent());
}

TEST_F(LsmTest, StateDurableGateResolvesWithFlush) {
  index_->Put(1, MakeRecord(1), Dependency());
  Dependency gate = index_->StateDurableGate();
  EXPECT_FALSE(gate.IsPersistent());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  EXPECT_TRUE(gate.IsPersistent());
}

TEST_F(LsmTest, StateDurableGateOnCleanIndexFollowsMetadata) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  EXPECT_TRUE(index_->StateDurableGate().IsPersistent());
}

TEST_F(LsmTest, NeedsShutdownFlushTracksInternalMutations) {
  EXPECT_FALSE(index_->NeedsShutdownFlush());
  ShardRecord record = MakeRecord(5);
  const Locator old_loc = record.chunks[0];
  index_->Put(9, record, Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_FALSE(index_->NeedsShutdownFlush());
  // A relocation is an internal mutation: the shutdown path must still flush.
  ASSERT_TRUE(index_->RelocateShardChunk(old_loc, Locator{70000, 1, 1, 64}, Dependency()).ok());
  EXPECT_TRUE(index_->NeedsShutdownFlush());
  {
    // Seeded bug #3 consults only the API flag and skips it.
    ScopedBug bug(SeededBug::kShutdownMetadataSkipAfterReset);
    EXPECT_FALSE(index_->NeedsShutdownFlush());
  }
}

TEST_F(LsmTest, AutoFlushAtThreshold) {
  index_.reset();
  LsmOptions options;
  options.memtable_flush_entries = 3;
  index_ = std::move(LsmIndex::Open(extents_.get(), chunks_.get(), options).value());
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Put(2, MakeRecord(2), Dependency());
  EXPECT_EQ(index_->RunCount(), 0u);
  index_->Put(3, MakeRecord(3), Dependency());
  EXPECT_EQ(index_->RunCount(), 1u);
  EXPECT_EQ(index_->MemtableEntries(), 0u);
}

// --- Range scans -----------------------------------------------------------------------

TEST_F(LsmTest, ScanMergesMemtableAndRuns) {
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Put(3, MakeRecord(3), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  index_->Put(2, MakeRecord(2), Dependency());   // memtable only
  index_->Put(3, MakeRecord(30), Dependency());  // memtable shadows the run
  auto items = index_->Scan(0, 100).value();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].id, 1u);
  EXPECT_EQ(items[1].id, 2u);
  EXPECT_EQ(items[2].id, 3u);
  EXPECT_EQ(items[2].record, MakeRecord(30));
}

TEST_F(LsmTest, ScanRespectsHalfOpenWindow) {
  for (ShardId id = 0; id < 6; ++id) {
    index_->Put(id, MakeRecord(static_cast<uint32_t>(id)), Dependency());
  }
  auto items = index_->Scan(2, 5).value();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].id, 2u);
  EXPECT_EQ(items[2].id, 4u);  // 5 excluded: half-open
}

TEST_F(LsmTest, ScanEmptyAndSingleKeyWindows) {
  index_->Put(4, MakeRecord(4), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_TRUE(index_->Scan(4, 4).value().empty());   // empty window
  EXPECT_TRUE(index_->Scan(9, 2).value().empty());   // inverted window
  auto single = index_->Scan(4, 5).value();          // single-key window
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].id, 4u);
  EXPECT_TRUE(index_->Scan(5, 100).value().empty());  // window past the only key
}

TEST_F(LsmTest, ScanSuppressesTombstones) {
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Put(2, MakeRecord(2), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  index_->Delete(1);  // memtable tombstone shadows the flushed value
  auto items = index_->Scan(0, 10).value();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].id, 2u);
  ASSERT_TRUE(index_->Flush().ok());  // tombstone now in a newer run
  items = index_->Scan(0, 10).value();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].id, 2u);
}

// --- Bloom filters ---------------------------------------------------------------------

TEST_F(LsmTest, BloomSkipsChunkReadsForAbsentKeys) {
  for (ShardId id = 0; id < 10; ++id) {
    index_->Put(id, MakeRecord(static_cast<uint32_t>(id)), Dependency());
  }
  ASSERT_TRUE(index_->Flush().ok());
  const uint64_t gets_before = chunks_->metrics().Snapshot().counter("chunk.gets");
  for (ShardId id = 1000; id < 1100; ++id) {
    EXPECT_EQ(index_->Get(id).value(), std::nullopt);
  }
  const uint64_t chunk_reads = chunks_->metrics().Snapshot().counter("chunk.gets") - gets_before;
  MetricsSnapshot snap = index_->metrics().Snapshot();
  // ~10 bits/key keeps the false-positive rate around 1%; even a lenient bound proves
  // the >=90% read-elimination target for absent keys.
  EXPECT_LE(chunk_reads, 10u);
  EXPECT_GE(snap.counter("lsm.bloom.miss"), 90u);
  EXPECT_EQ(snap.counter("lsm.bloom.miss") + snap.counter("lsm.bloom.false_positive"), 100u);
}

TEST_F(LsmTest, BloomCountsHitsOnPresentKeys) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_TRUE(index_->Get(1).value().has_value());
  EXPECT_GE(index_->metrics().Snapshot().counter("lsm.bloom.hit"), 1u);
}

TEST_F(LsmTest, BloomFiltersRebuiltOnRecovery) {
  for (ShardId id = 0; id < 8; ++id) {
    index_->Put(id, MakeRecord(static_cast<uint32_t>(id)), Dependency());
  }
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  Reopen();
  const uint64_t gets_before = chunks_->metrics().Snapshot().counter("chunk.gets");
  for (ShardId id = 500; id < 550; ++id) {
    EXPECT_EQ(index_->Get(id).value(), std::nullopt);
  }
  // The recovered index must have working filters, not nulls that force chunk reads.
  EXPECT_LE(chunks_->metrics().Snapshot().counter("chunk.gets") - gets_before, 5u);
  EXPECT_GE(index_->metrics().Snapshot().counter("lsm.bloom.miss"), 45u);
}

// --- Leveled compaction ----------------------------------------------------------------

TEST_F(LsmTest, CompactLevelMergesOneLevelDown) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  index_->Put(2, MakeRecord(2), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_EQ(index_->RunCountAtLevel(0), 2u);
  ASSERT_TRUE(index_->CompactLevel(0).ok());
  EXPECT_EQ(index_->RunCountAtLevel(0), 0u);
  EXPECT_EQ(index_->RunCountAtLevel(1), 1u);
  EXPECT_EQ(*index_->Get(1).value(), MakeRecord(1));
  EXPECT_EQ(*index_->Get(2).value(), MakeRecord(2));
}

TEST_F(LsmTest, CompactLevelRejectsNegativeLevel) {
  EXPECT_EQ(index_->CompactLevel(-1).code(), StatusCode::kInvalidArgument);
}

TEST_F(LsmTest, CompactLevelOnEmptyLevelIsNoOp) {
  const uint64_t version = index_->MetadataVersion();
  ASSERT_TRUE(index_->CompactLevel(0).ok());
  ASSERT_TRUE(index_->CompactLevel(3).ok());
  EXPECT_EQ(index_->MetadataVersion(), version);
}

TEST_F(LsmTest, LevelsPersistAcrossRecovery) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->CompactLevel(0).ok());
  index_->Put(2, MakeRecord(2), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  std::vector<int> levels = index_->RunLevels();
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  Reopen();
  EXPECT_EQ(index_->RunLevels(), levels);
}

// The satellite-1 regression: a tombstone must survive a compaction whose output is
// not the bottom level, or the deleted key resurrects once the younger run is merged
// away. Sequence: value pushed to the bottom, delete flushed to L0, L0 merged to L1
// (non-bottom), then recovery — the shard must stay dead at every step.
TEST_F(LsmTest, TombstoneSurvivesNonBottomCompactionAndRecovery) {
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Put(2, MakeRecord(2), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->CompactLevel(0).ok());
  ASSERT_TRUE(index_->CompactLevel(1).ok());  // value for key 1 now at the bottom (L2)
  index_->Delete(1);
  ASSERT_TRUE(index_->Flush().ok());          // tombstone in an L0 run
  ASSERT_TRUE(index_->CompactLevel(0).ok());  // merge to L1 — NOT the bottom
  EXPECT_EQ(index_->Get(1).value(), std::nullopt) << "tombstone dropped above the bottom";
  auto items = index_->Scan(0, 10).value();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].id, 2u);
  ASSERT_TRUE(scheduler_->FlushAll().ok());
  Reopen();
  EXPECT_EQ(index_->Get(1).value(), std::nullopt) << "deleted shard resurrected by recovery";
}

TEST_F(LsmTest, TombstonesDroppedAtBottomMerge) {
  index_->Put(1, MakeRecord(1), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  index_->Delete(1);
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->Compact().ok());  // full merge = bottom: tombstone reclaimed
  EXPECT_EQ(index_->Get(1).value(), std::nullopt);
  EXPECT_GE(index_->metrics().Snapshot().counter("lsm.tombstones_dropped"), 1u);
  EXPECT_EQ(index_->RunCount(), 0u);  // nothing left to write
}

// The seeded-bug demonstration: with the tombstone-lifetime rule broken, the same
// sequence as the regression test above resurrects the deleted shard.
TEST_F(LsmTest, SeededTombstoneDropBugResurrectsDeletedShard) {
  index_.reset();
  LsmOptions options;
  options.seeded_bug_drop_tombstones_above_bottom = true;
  index_ = std::move(LsmIndex::Open(extents_.get(), chunks_.get(), options).value());
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Put(2, MakeRecord(2), Dependency());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->CompactLevel(0).ok());
  ASSERT_TRUE(index_->CompactLevel(1).ok());
  index_->Delete(1);
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->CompactLevel(0).ok());  // buggy: drops the tombstone above bottom
  auto got = index_->Get(1).value();
  ASSERT_TRUE(got.has_value()) << "expected the seeded bug to resurrect the shard";
  EXPECT_EQ(*got, MakeRecord(1));
}

TEST_F(LsmTest, AutoTriggerKeepsLevelZeroBounded) {
  index_.reset();
  LsmOptions options;
  options.level0_compaction_trigger = 2;
  options.level_fanout = 2;
  index_ = std::move(LsmIndex::Open(extents_.get(), chunks_.get(), options).value());
  for (uint32_t round = 0; round < 8; ++round) {
    index_->Put(round, MakeRecord(round), Dependency());
    ASSERT_TRUE(index_->Flush().ok());
    EXPECT_LT(index_->RunCountAtLevel(0), 2u) << "flush must trigger the L0 merge";
  }
  for (uint32_t round = 0; round < 8; ++round) {
    EXPECT_EQ(*index_->Get(round).value(), MakeRecord(round));
  }
  EXPECT_GE(index_->metrics().Snapshot().counter("lsm.level_compactions"), 4u);
}

TEST_F(LsmTest, ScanUnchangedByCompactLevel) {
  for (ShardId id = 0; id < 6; ++id) {
    index_->Put(id, MakeRecord(static_cast<uint32_t>(id)), Dependency());
    if (id % 2 == 1) {
      ASSERT_TRUE(index_->Flush().ok());
    }
  }
  index_->Delete(3);
  ASSERT_TRUE(index_->Flush().ok());
  auto before = index_->Scan(0, 100).value();
  ASSERT_TRUE(index_->CompactLevel(0).ok());
  auto after = index_->Scan(0, 100).value();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].id, after[i].id);
    EXPECT_EQ(before[i].record, after[i].record);
  }
}

TEST_F(LsmTest, StatsAccumulate) {
  index_->Put(1, MakeRecord(1), Dependency());
  index_->Delete(2);
  (void)index_->Get(1);
  ASSERT_TRUE(index_->Flush().ok());
  MetricsSnapshot snap = index_->metrics().Snapshot();
  EXPECT_EQ(snap.counter("lsm.puts"), 1u);
  EXPECT_EQ(snap.counter("lsm.deletes"), 1u);
  EXPECT_GE(snap.counter("lsm.gets"), 1u);
  EXPECT_EQ(snap.counter("lsm.flushes"), 1u);
  EXPECT_GE(snap.counter("lsm.metadata_writes"), 1u);
}

}  // namespace
}  // namespace ss
