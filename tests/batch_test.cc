// Tests for the batched write pipeline: IoScheduler's coalescing window, the extent
// layer's shared soft-pointer updates, ShardStore::ApplyBatch group commit, the
// NodeServer PutBatch/DeleteBatch RPCs with their typed envelopes, and the batch
// crash contract (prefix-only persistence, never a torn item).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/dep/io_scheduler.h"
#include "src/faults/faults.h"
#include "src/kv/shard_store.h"
#include "src/obs/span.h"
#include "src/rpc/node_server.h"

namespace ss {
namespace {

Bytes Value(size_t size, uint8_t tag) { return Bytes(size, tag); }

// --- IoScheduler coalescing window ---------------------------------------------------

class CoalescingTest : public testing::Test {
 protected:
  CoalescingTest() : disk_({.extent_count = 4, .pages_per_extent = 8, .page_size = 64}),
                     scheduler_(&disk_) {
    FaultRegistry::Global().DisableAll();
  }

  uint64_t IoCounter(std::string_view name) const {
    return scheduler_.metrics().Snapshot().counter(name);
  }

  InMemoryDisk disk_;
  IoScheduler scheduler_;
};

TEST_F(CoalescingTest, MergesContiguousPagesIntoOneRecord) {
  scheduler_.BeginCoalescing();
  Dependency d0 = scheduler_.EnqueueDataPage(1, 0, Value(64, 1), {});
  Dependency d1 = scheduler_.EnqueueDataPage(1, 1, Value(64, 2), {});
  Dependency d2 = scheduler_.EnqueueDataPage(1, 2, Value(64, 3), {});
  scheduler_.EndCoalescing();

  EXPECT_EQ(scheduler_.PendingCount(), 1u);
  EXPECT_EQ(IoCounter("io.enqueued"), 1u);
  EXPECT_EQ(IoCounter("io.coalesced_pages"), 2u);

  ASSERT_TRUE(scheduler_.FlushAll().ok());
  // The merged pages share one done leaf: all three dependencies resolve together,
  // and the unit was issued as a single IO.
  EXPECT_TRUE(d0.IsPersistent());
  EXPECT_TRUE(d1.IsPersistent());
  EXPECT_TRUE(d2.IsPersistent());
  EXPECT_EQ(IoCounter("io.issued"), 1u);
}

TEST_F(CoalescingTest, NoMergeOutsideWindow) {
  Dependency d0 = scheduler_.EnqueueDataPage(1, 0, Value(64, 1), {});
  Dependency d1 = scheduler_.EnqueueDataPage(1, 1, Value(64, 2), {});
  (void)d0;
  (void)d1;
  EXPECT_EQ(scheduler_.PendingCount(), 2u);
  EXPECT_EQ(IoCounter("io.coalesced_pages"), 0u);
}

TEST_F(CoalescingTest, NoMergeForNonContiguousOrOtherExtent) {
  scheduler_.BeginCoalescing();
  (void)scheduler_.EnqueueDataPage(1, 0, Value(64, 1), {});
  (void)scheduler_.EnqueueDataPage(1, 3, Value(64, 2), {});  // gap
  (void)scheduler_.EnqueueDataPage(2, 1, Value(64, 3), {});  // different extent
  scheduler_.EndCoalescing();
  EXPECT_EQ(scheduler_.PendingCount(), 3u);
  EXPECT_EQ(IoCounter("io.coalesced_pages"), 0u);
}

TEST_F(CoalescingTest, NoMergeWhenInputNotPersistent) {
  // Merging a page whose input has not persisted would let the shared record's issue
  // outrun that input; the window must refuse it.
  Dependency promise = Dependency::MakePromise();
  scheduler_.BeginCoalescing();
  (void)scheduler_.EnqueueDataPage(1, 0, Value(64, 1), {});
  (void)scheduler_.EnqueueDataPage(1, 1, Value(64, 2), {promise});
  scheduler_.EndCoalescing();
  EXPECT_EQ(scheduler_.PendingCount(), 2u);
  EXPECT_EQ(IoCounter("io.coalesced_pages"), 0u);
}

TEST_F(CoalescingTest, CoalescedUnitIsDroppedAtomicallyByCrash) {
  scheduler_.BeginCoalescing();
  Dependency d0 = scheduler_.EnqueueDataPage(1, 0, Value(64, 1), {});
  Dependency d1 = scheduler_.EnqueueDataPage(1, 1, Value(64, 2), {});
  scheduler_.EndCoalescing();
  scheduler_.CrashDropAll();
  // One pending record dropped — both pages died with it, neither persisted.
  EXPECT_EQ(scheduler_.metrics().Snapshot().counter("io.dropped_by_crash"), 1u);
  EXPECT_FALSE(d0.IsPersistent());
  EXPECT_FALSE(d1.IsPersistent());
}

// --- ShardStore::ApplyBatch ----------------------------------------------------------

class ApplyBatchTest : public testing::Test {
 protected:
  ApplyBatchTest() : disk_({.extent_count = 24, .pages_per_extent = 16, .page_size = 256}) {
    FaultRegistry::Global().DisableAll();
  }

  void Open(ShardStoreOptions options = {}) {
    auto opened = ShardStore::Open(&disk_, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    store_ = std::move(opened).value();
  }

  uint64_t StoreCounter(std::string_view name) const {
    return store_->metrics().Snapshot().counter(name);
  }

  InMemoryDisk disk_;
  std::unique_ptr<ShardStore> store_;
};

TEST_F(ApplyBatchTest, MixedPutsAndDeletesCommitPerItem) {
  Open();
  ASSERT_TRUE(store_->Put(1, Value(100, 0x11)).ok());

  StoreBatchResult result = store_->ApplyBatch({
      {2, Value(300, 0x22)},   // put spanning two pages
      {1, std::nullopt},       // delete of the existing shard
      {3, Value(40, 0x33)},    // small put
  });
  ASSERT_EQ(result.items.size(), 3u);
  for (size_t i = 0; i < result.items.size(); ++i) {
    EXPECT_TRUE(result.items[i].status.ok()) << "item " << i;
  }

  auto got2 = store_->Get(2);
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got2.value(), Value(300, 0x22));
  EXPECT_EQ(store_->Get(1).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store_->Get(3).ok());

  EXPECT_EQ(StoreCounter("store.batch.applies"), 1u);
  EXPECT_EQ(StoreCounter("store.batch.items"), 3u);
  EXPECT_EQ(StoreCounter("lsm.batch.applies"), 1u);
  EXPECT_EQ(StoreCounter("lsm.batch.items"), 3u);
  // The batch's appends shared deferred soft-pointer updates.
  EXPECT_GE(StoreCounter("extent.batch.soft_wp_updates"), 1u);

  ASSERT_TRUE(store_->FlushAll().ok());
  for (const StoreBatchItemResult& item : result.items) {
    EXPECT_TRUE(item.dep.IsPersistent());
  }
  EXPECT_TRUE(result.dep.IsPersistent());
}

TEST_F(ApplyBatchTest, BatchAppendsCoalesceIntoFewerIoUnits) {
  Open();
  // Settle the data extent's ownership record first: the coalescing window only
  // merges pages whose inputs are already persistent, and a freshly claimed extent's
  // appends carry its (still-pending) ownership dependency.
  ASSERT_TRUE(store_->Put(99, Value(30, 9)).ok());
  ASSERT_TRUE(store_->FlushAll().ok());
  (void)store_->ApplyBatch({
      {1, Value(200, 1)},
      {2, Value(200, 2)},
      {3, Value(200, 3)},
  });
  // Adjacent chunk appends from one batch merged into shared IO units.
  EXPECT_GE(StoreCounter("io.coalesced_pages"), 1u);
}

TEST_F(ApplyBatchTest, OversizedItemFailsAloneRestOfBatchCommits) {
  ShardStoreOptions options;
  options.max_chunks_per_shard = 1;
  Open(options);
  const size_t max_payload = store_->chunks().max_payload_bytes();

  StoreBatchResult result = store_->ApplyBatch({
      {1, Value(max_payload, 0x44)},
      {2, Value(max_payload * 3, 0x55)},  // over the one-chunk cap
      {3, Value(10, 0x66)},
  });
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_TRUE(result.items[0].status.ok());
  EXPECT_EQ(result.items[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(result.items[2].status.ok());

  ASSERT_TRUE(store_->Get(1).ok());
  EXPECT_EQ(store_->Get(2).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store_->Get(3).ok());
  ASSERT_TRUE(store_->FlushAll().ok());
  EXPECT_TRUE(result.dep.IsPersistent());
}

TEST_F(ApplyBatchTest, EmptyBatchIsANoOp) {
  Open();
  StoreBatchResult result = store_->ApplyBatch({});
  EXPECT_TRUE(result.items.empty());
  EXPECT_TRUE(result.dep.IsPersistent());
  EXPECT_EQ(StoreCounter("store.batch.applies"), 0u);
}

TEST_F(ApplyBatchTest, FlushThresholdTriggersOneGroupFlush) {
  ShardStoreOptions options;
  options.lsm.memtable_flush_entries = 2;
  Open(options);
  StoreBatchResult result = store_->ApplyBatch({
      {1, Value(50, 1)},
      {2, Value(50, 2)},
      {3, Value(50, 3)},
  });
  for (const StoreBatchItemResult& item : result.items) {
    ASSERT_TRUE(item.status.ok());
  }
  // One flush for the whole batch — not one per item like looped Puts would pay.
  EXPECT_EQ(StoreCounter("store.batch.flushes"), 1u);
  EXPECT_EQ(StoreCounter("lsm.flushes"), 1u);
}

// The batch crash contract, checked exhaustively: enumerate every dependency-allowed
// block-level crash state after a batch + index flush. In each state every item must
// surface either its exact value or nothing (never torn, never an index entry without
// readable chunks), and the set of visible items must be a batch prefix — with the
// single shared metadata barrier, that prefix is none-or-all.
TEST_F(ApplyBatchTest, CrashPersistsOnlyBatchPrefixes) {
  const std::vector<std::pair<ShardId, Bytes>> kItems = {
      {1, Value(90, 0xa1)}, {2, Value(300, 0xb2)}, {3, Value(130, 0xc3)}};
  const size_t kMaxStates = 50000;

  std::vector<bool> plan;
  size_t states = 0;
  bool exhausted = false;
  while (states < kMaxStates) {
    InMemoryDisk disk({.extent_count = 24, .pages_per_extent = 16, .page_size = 256});
    auto opened = ShardStore::Open(&disk);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<ShardStore> store = std::move(opened).value();

    std::vector<StoreBatchItem> batch;
    for (const auto& [id, value] : kItems) {
      batch.push_back({id, value});
    }
    StoreBatchResult applied = store->ApplyBatch(batch);
    for (const StoreBatchItemResult& item : applied.items) {
      ASSERT_TRUE(item.status.ok());
    }
    ASSERT_TRUE(store->FlushIndex().ok());

    size_t used = 0;
    store->scheduler().CrashScripted(plan, &used);
    store.reset();
    disk.fault_injector().Clear();
    auto reopened = ShardStore::Open(&disk);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    store = std::move(reopened).value();
    ++states;

    size_t visible = 0;
    for (const auto& [id, value] : kItems) {
      auto got = store->Get(id);
      if (got.ok()) {
        // Atomic per item: a visible item is never torn.
        ASSERT_EQ(got.value(), value) << "torn item " << id << " (state " << states << ")";
        ++visible;
      } else {
        ASSERT_EQ(got.code(), StatusCode::kNotFound) << got.status().ToString();
      }
    }
    ASSERT_TRUE(visible == 0 || visible == kItems.size())
        << "crash state " << states << " split the batch: " << visible << " of "
        << kItems.size() << " items visible";

    // DFS odometer, as in EnumerateCrashStates.
    while (plan.size() < used) {
      plan.push_back(false);
    }
    while (!plan.empty() && plan.back()) {
      plan.pop_back();
    }
    if (plan.empty()) {
      exhausted = true;
      break;
    }
    plan.back() = true;
  }
  EXPECT_TRUE(exhausted) << "state cap hit after " << states << " states";
  EXPECT_GT(states, 10u);
}

// --- NodeServer batch RPCs + typed envelopes -----------------------------------------

class NodeBatchTest : public testing::Test {
 protected:
  NodeBatchTest() { FaultRegistry::Global().DisableAll(); }

  void Create(int disks = 3) {
    NodeServerOptions options;
    options.disk_count = disks;
    options.geometry = {.extent_count = 16, .pages_per_extent = 16, .page_size = 256};
    auto created = NodeServer::Create(options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    node_ = std::move(created).value();
  }

  uint64_t NodeCounter(std::string_view name) const {
    return node_->MetricsSnapshot().counter(name);
  }

  std::unique_ptr<NodeServer> node_;
};

TEST_F(NodeBatchTest, PutBatchRoutesPerItemAndReportsEnvelopes) {
  Create();
  std::vector<std::pair<ShardId, Bytes>> items;
  for (ShardId id = 0; id < 9; ++id) {
    items.emplace_back(id, Value(60 + id, static_cast<uint8_t>(id)));
  }
  BatchResult result = node_->PutBatch(items);
  ASSERT_EQ(result.items.size(), items.size());
  EXPECT_TRUE(result.all_ok());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_TRUE(result.items[i].status.ok()) << "item " << i;
    EXPECT_EQ(result.items[i].id, items[i].first);
    EXPECT_EQ(result.items[i].disk, node_->DiskFor(items[i].first));
  }
  // One trace event for the whole batch, carrying the item count (read before the
  // verification Gets below append their own events).
  std::vector<TraceEvent> events = node_->trace().Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, TraceKind::kPutBatch);
  EXPECT_EQ(events.back().shard, items.size());
  // The envelope's trace id is the batch's root span id; the flat trace event links
  // back to it through root_span.
  EXPECT_EQ(events.back().root_span, result.trace_id);

  for (const auto& [id, value] : items) {
    auto got = node_->Get(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), value);
  }

  EXPECT_EQ(NodeCounter("rpc.batch.puts"), 1u);
  EXPECT_EQ(NodeCounter("rpc.batch.item_ok"), items.size());
  EXPECT_EQ(NodeCounter("rpc.batch.item_err"), 0u);

  ASSERT_TRUE(node_->FlushAllDisks().ok());
  EXPECT_TRUE(result.dep.IsPersistent());
  for (const BatchItemResult& item : result.items) {
    EXPECT_TRUE(item.dep.IsPersistent());
  }
}

TEST_F(NodeBatchTest, BatchItemsCarryPerItemSpansUnderTheBatchRoot) {
  Create();
  // Degrade one item's home so the batch mixes a routing rejection with a commit:
  // both outcomes must still be attributable through their per-item spans.
  ASSERT_TRUE(node_->Put(1, Value(50, 1)).ok());
  const int sick = node_->DiskFor(1);
  ShardId healthy_key = 2;
  while (node_->DiskFor(healthy_key) == sick) {
    ++healthy_key;
  }
  ASSERT_TRUE(node_->MarkDiskDegraded(sick).ok());

  BatchResult result = node_->PutBatch({{1, Value(80, 3)}, {healthy_key, Value(80, 4)}});
  ASSERT_EQ(result.items.size(), 2u);
  EXPECT_EQ(result.items[0].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(result.items[1].status.ok());

  // Every item got its own span, distinct from each other and from the batch root.
  std::set<uint64_t> span_ids;
  for (const BatchItemResult& item : result.items) {
    EXPECT_GT(item.span_id, 0u);
    EXPECT_NE(item.span_id, result.trace_id);
    span_ids.insert(item.span_id);
  }
  EXPECT_EQ(span_ids.size(), result.items.size());

  // The item spans hang directly under the batch root and closed with each item's
  // final status — the rejected item's span carries the rejection code.
  std::map<uint64_t, SpanRecord> by_id;
  for (const SpanRecord& record : node_->spans().Tree(result.trace_id)) {
    by_id[record.id] = record;
  }
  for (size_t i = 0; i < result.items.size(); ++i) {
    ASSERT_TRUE(by_id.count(result.items[i].span_id)) << "item " << i;
    const SpanRecord& record = by_id[result.items[i].span_id];
    EXPECT_EQ(record.name, "rpc.batch.item");
    EXPECT_EQ(record.parent, result.trace_id);
    EXPECT_EQ(record.root, result.trace_id);
    EXPECT_FALSE(record.open);
    EXPECT_EQ(record.status, result.items[i].status.code()) << "item " << i;
  }
}

TEST_F(NodeBatchTest, PutBatchFailsOnlyItemsRoutedToSickDisks) {
  Create();
  // Home two shards while everything is healthy, then degrade one home: its directory
  // entry keeps routing mutations at the sick disk, which must refuse them.
  ASSERT_TRUE(node_->Put(1, Value(50, 1)).ok());
  const int sick = node_->DiskFor(1);
  ShardId healthy_key = 2;
  while (node_->DiskFor(healthy_key) == sick) {
    ++healthy_key;
  }
  ASSERT_TRUE(node_->Put(healthy_key, Value(50, 2)).ok());
  ASSERT_TRUE(node_->MarkDiskDegraded(sick).ok());

  BatchResult result = node_->PutBatch({{1, Value(80, 3)}, {healthy_key, Value(80, 4)}});
  ASSERT_EQ(result.items.size(), 2u);
  EXPECT_EQ(result.items[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result.items[0].disk, sick);
  EXPECT_TRUE(result.items[1].status.ok());
  EXPECT_FALSE(result.all_ok());
  EXPECT_EQ(NodeCounter("rpc.batch.item_err"), 1u);

  // The failed item's shard is untouched; the healthy item committed.
  auto got1 = node_->Get(1);
  ASSERT_TRUE(got1.ok());
  EXPECT_EQ(got1.value(), Value(50, 1));
  auto got2 = node_->Get(healthy_key);
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got2.value(), Value(80, 4));
}

TEST_F(NodeBatchTest, DeleteBatchRemovesAllRoutedItems) {
  Create();
  std::vector<ShardId> ids = {3, 4, 5, 6};
  for (ShardId id : ids) {
    ASSERT_TRUE(node_->Put(id, Value(70, static_cast<uint8_t>(id))).ok());
  }
  BatchResult result = node_->DeleteBatch(ids);
  ASSERT_EQ(result.items.size(), ids.size());
  EXPECT_TRUE(result.all_ok());
  std::vector<TraceEvent> events = node_->trace().Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, TraceKind::kDeleteBatch);
  for (ShardId id : ids) {
    EXPECT_EQ(node_->Get(id).code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(NodeCounter("rpc.batch.deletes"), 1u);
}

TEST_F(NodeBatchTest, TypedEnvelopesCarryRoutingAndTraceContext) {
  Create();
  auto put = node_->Put(7, Value(90, 0x77));
  ASSERT_TRUE(put.ok());
  PutResult envelope = put.value();
  EXPECT_EQ(envelope.disk, node_->DiskFor(7));
  std::vector<TraceEvent> events = node_->trace().Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().root_span, envelope.trace_id);
  EXPECT_EQ(events.back().kind, TraceKind::kPut);

  // Compatibility: the envelope still converts to its dependency.
  Dependency implicit = put.value();
  const Dependency& named = envelope.dependency();
  ASSERT_TRUE(node_->FlushAllDisks().ok());
  EXPECT_TRUE(implicit.IsPersistent());
  EXPECT_TRUE(named.IsPersistent());

  auto del = node_->Delete(7);
  ASSERT_TRUE(del.ok());
  DeleteResult delete_envelope = del.value();
  EXPECT_EQ(delete_envelope.disk, envelope.disk);
  EXPECT_GT(delete_envelope.trace_id, envelope.trace_id);
}

TEST_F(NodeBatchTest, BulkOperationsReportPerItemStatuses) {
  Create();
  std::vector<std::pair<ShardId, Bytes>> items = {
      {10, Value(40, 1)}, {11, Value(40, 2)}, {12, Value(40, 3)}};
  std::vector<Status> created = node_->BulkCreate(items);
  ASSERT_EQ(created.size(), items.size());
  for (size_t i = 0; i < created.size(); ++i) {
    EXPECT_TRUE(created[i].ok()) << "item " << i << ": " << created[i].ToString();
  }
  for (const auto& [id, value] : items) {
    ASSERT_TRUE(node_->Get(id).ok());
  }

  std::vector<Status> removed = node_->BulkRemove({10, 11, 12});
  ASSERT_EQ(removed.size(), 3u);
  for (const Status& status : removed) {
    EXPECT_TRUE(status.ok());
  }
  EXPECT_EQ(node_->Get(10).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ss
