// Section 4 conformance checking: the property-based harnesses must pass on the
// correct implementation across seeds (the paper's Figure 3 setup, here for the index
// component, the chunk store, the whole store, and the RPC layer), including the
// failure-injection mode of section 4.4. Coverage assertions (section 4.2) confirm the
// harnesses actually reach the interesting paths.

#include <gtest/gtest.h>

#include "src/common/cover.h"
#include "src/faults/faults.h"
#include "src/harness/component_harness.h"
#include "src/harness/kv_harness.h"
#include "src/kv/shard_store.h"
#include "src/harness/rpc_harness.h"
#include "src/obs/flight_recorder.h"

namespace ss {
namespace {

class ConformanceSeeds : public testing::TestWithParam<uint64_t> {
 protected:
  ConformanceSeeds() { FaultRegistry::Global().DisableAll(); }
};

TEST_P(ConformanceSeeds, IndexHarnessPasses) {
  IndexConformanceHarness harness{IndexHarnessOptions{}};
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 120});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

TEST_P(ConformanceSeeds, ChunkHarnessPasses) {
  ChunkConformanceHarness harness{ChunkHarnessOptions{}};
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 120});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

TEST_P(ConformanceSeeds, KvHarnessPasses) {
  KvConformanceHarness harness{KvHarnessOptions{}};
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 120});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

TEST_P(ConformanceSeeds, KvHarnessWithFailureInjectionPasses) {
  KvHarnessOptions options;
  options.failure_injection = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 120});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

// Scan/CompactLevel ride the crash alphabet too: after a DirtyReboot the model adopts
// the persisted state, so the exact scan-vs-oracle comparison inside the harness checks
// that a post-crash scan sees exactly the persisted prefix — no lost persisted keys, no
// resurrected deletes.
TEST_P(ConformanceSeeds, KvHarnessWithCrashesAndScansPasses) {
  KvHarnessOptions options;
  options.crashes = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 120});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

TEST_P(ConformanceSeeds, RpcHarnessPasses) {
  RpcConformanceHarness harness{RpcHarnessOptions{}};
  auto runner = harness.MakeRunner({.seed = GetParam(), .num_cases = 80});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformanceSeeds, testing::Values(1, 7, 42, 1234, 99999));

// Coverage monitoring (section 4.2): a modest run of the KV harness must reach the
// paths that matter — evacuation, cache misses, metadata recovery.
TEST(ConformanceCoverage, HarnessReachesInterestingStates) {
  FaultRegistry::Global().DisableAll();
  Coverage::Global().Reset();
  KvHarnessOptions options;
  options.crashes = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = 2024, .num_cases = 300, .max_ops = 70});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << failure->message;
  EXPECT_GT(Coverage::Global().Count("chunk_store.evacuate"), 0u);
  EXPECT_GT(Coverage::Global().Count("buffer_cache.miss"), 0u);
  EXPECT_GT(Coverage::Global().Count("lsm.recover_with_metadata"), 0u);
  EXPECT_GT(Coverage::Global().Count("lsm.relocate_shard_chunk"), 0u);
}

// Section 8.3's missed-bug story, reproduced: with an oversized cache every read hits,
// the cache-miss path is never reached, and only the coverage metric reveals the blind
// spot (the paper's motivation for monitoring coverage at all).
TEST(ConformanceCoverage, OversizedCacheCreatesBlindSpotMetricCatchesIt) {
  FaultRegistry::Global().DisableAll();
  // Steady-state misses (after a warm-up pass) under a given cache size.
  auto steady_state_misses = [](size_t cache_pages) {
    InMemoryDisk disk(DiskGeometry{.extent_count = 24, .pages_per_extent = 16,
                                   .page_size = 256});
    ShardStoreOptions options;
    options.cache_pages = cache_pages;
    auto store = std::move(ShardStore::Open(&disk, options).value());
    for (ShardId id = 0; id < 12; ++id) {
      EXPECT_TRUE(store->Put(id, Bytes(600, static_cast<uint8_t>(id))).ok());
    }
    EXPECT_TRUE(store->FlushAll().ok());
    // Warm-up pass (compulsory misses), then measure a steady-state pass.
    for (ShardId id = 0; id < 12; ++id) {
      (void)store->Get(id);
    }
    Coverage::Global().Reset();
    for (int round = 0; round < 3; ++round) {
      for (ShardId id = 0; id < 12; ++id) {
        (void)store->Get(id);
      }
    }
    return Coverage::Global().Count("buffer_cache.miss");
  };
  // A cache larger than the whole disk: the miss path goes completely dark — only the
  // coverage metric reveals that checking is no longer exercising it...
  EXPECT_EQ(steady_state_misses(1u << 20), 0u);
  // ...while a realistically small cache exercises it constantly.
  EXPECT_GT(steady_state_misses(8), 50u);
}

// The tentpole's seeded bug: CompactLevel drops tombstones above the bottom level,
// resurrecting deleted shards once the younger run is merged away. The property test
// must find it, minimize it, regenerate the original from the two-integer case seed,
// and capture exactly one flight-recorder artifact from the minimized re-run.
TEST(LsmSeededBug, TombstoneDropAboveBottomIsCaughtMinimizedAndRecorded) {
  FaultRegistry::Global().DisableAll();
  KvHarnessOptions options;
  options.store.lsm.seeded_bug_drop_tombstones_above_bottom = true;
  KvConformanceHarness harness(options);
  auto runner = harness.MakeRunner({.seed = 7, .num_cases = 2000, .max_ops = 60});
  auto failure = runner.Run();
  ASSERT_TRUE(failure.has_value()) << "seeded tombstone-lifetime bug survived the search";
  EXPECT_FALSE(failure->minimized.empty());
  EXPECT_LE(failure->minimized.size(), failure->original.size());
  // The failure needs the leveled-compaction machinery: the minimized sequence keeps
  // at least one CompactLevel and the delete whose tombstone it loses.
  bool has_compact_level = false;
  bool has_delete = false;
  for (const KvOp& op : failure->minimized) {
    has_compact_level |= op.kind == KvOpKind::kCompactLevel;
    has_delete |= op.kind == KvOpKind::kDelete;
  }
  EXPECT_TRUE(has_compact_level);
  EXPECT_TRUE(has_delete);
  // The case seed regenerates the original sequence exactly (two-integer replay).
  const std::vector<KvOp> regenerated = runner.Generate(failure->case_seed);
  ASSERT_EQ(regenerated.size(), failure->original.size());
  for (size_t i = 0; i < regenerated.size(); ++i) {
    EXPECT_EQ(regenerated[i].ToString(), failure->original[i].ToString());
  }
  // Re-run the minimized sequence once with the recorder armed: deterministic failure,
  // one artifact carrying the violation, the op list, and the metrics.
  FlightRecorder recorder("flight");
  recorder.set_case_seed(failure->case_seed);
  KvHarnessOptions armed = options;
  armed.recorder = &recorder;
  KvConformanceHarness rerun(armed);
  auto replay_error = rerun.Run(failure->minimized);
  ASSERT_TRUE(replay_error.has_value()) << "minimized sequence stopped failing";
  EXPECT_EQ(*replay_error, failure->message);
  ASSERT_EQ(recorder.written(), 1u);
}

// Determinism: a failing case replays identically (essential for minimization).
TEST(ConformanceDeterminism, SeededBugFailsIdenticallyTwice) {
  ScopedBug bug(SeededBug::kReclaimOffByOnePageSize);
  KvConformanceHarness harness{KvHarnessOptions{}};
  auto first = harness.MakeRunner({.seed = 42, .num_cases = 400}).Run();
  auto second = harness.MakeRunner({.seed = 42, .num_cases = 400}).Run();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->case_index, second->case_index);
  EXPECT_EQ(first->message, second->message);
  EXPECT_EQ(first->minimized.size(), second->minimized.size());
}

// Minimization quality (section 4.3): the minimized counterexample for a seeded bug is
// dramatically shorter than the first failing sequence.
TEST(ConformanceMinimization, ShrinksSeededBugCounterexample) {
  ScopedBug bug(SeededBug::kWriteMissingSoftPointerDep);
  KvHarnessOptions options;
  options.crashes = true;
  KvConformanceHarness harness(options);
  auto failure = harness.MakeRunner({.seed = 42, .num_cases = 2000, .max_ops = 80}).Run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_LT(failure->minimized.size(), failure->original.size());
  EXPECT_LE(failure->minimized.size(), 8u);
  // The minimized sequence still needs a put and a crash.
  bool has_put = false;
  bool has_crash = false;
  for (const KvOp& op : failure->minimized) {
    has_put |= op.kind == KvOpKind::kPut;
    has_crash |= op.kind == KvOpKind::kDirtyReboot;
  }
  EXPECT_TRUE(has_put);
  EXPECT_TRUE(has_crash);
}

}  // namespace
}  // namespace ss
