// Figure 5 end-to-end: every one of the 16 catalogued issues, seeded into the
// implementation (or its models), is detected by the checker class the paper credits.
// Parameterized over all bugs; each runs the full detection pipeline from fig5.h.

#include <gtest/gtest.h>

#include "src/harness/fig5.h"

namespace ss {
namespace {

class Fig5Detect : public testing::TestWithParam<int> {};

TEST_P(Fig5Detect, SeededBugIsDetected) {
  const auto bug = static_cast<SeededBug>(GetParam());
  Fig5Budget budget;
  Fig5Detection detection = DetectSeededBug(bug, budget);
  EXPECT_TRUE(detection.detected)
      << SeededBugName(bug) << " was not detected by " << detection.checker << " within "
      << detection.cases_or_execs << " cases/executions";
  if (detection.detected && detection.original_ops > 0) {
    // Minimization never grows the counterexample.
    EXPECT_LE(detection.minimized_ops, detection.original_ops);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, Fig5Detect, testing::Range(0, kSeededBugCount),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name(
                               SeededBugName(static_cast<SeededBug>(info.param)));
                           // Sanitize "#1 Foo" -> "Bug1_Foo" for gtest names.
                           std::string out = "Bug";
                           for (char c : name) {
                             if (isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             } else if (c == ' ') {
                               out += '_';
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace ss
