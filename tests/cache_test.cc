// Unit tests for the buffer cache: hit/miss accounting, LRU eviction, drain-on-reset.

#include <gtest/gtest.h>

#include "src/cache/buffer_cache.h"

namespace ss {
namespace {

class BufferCacheTest : public testing::Test {
 protected:
  BufferCacheTest()
      : disk_(DiskGeometry{.extent_count = 6, .pages_per_extent = 8, .page_size = 64}),
        scheduler_(&disk_),
        extents_(&disk_, &scheduler_),
        cache_(&extents_, /*capacity_pages=*/4) {
    extent_ = extents_.ClaimExtent(ExtentOwner::kChunkData).value();
  }

  void AppendPages(int n, uint8_t tag) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(extents_.Append(extent_, Bytes(64, tag), Dependency()).ok());
    }
  }

  uint64_t CacheCounter(std::string_view name) const {
    return cache_.metrics().Snapshot().counter(name);
  }

  InMemoryDisk disk_;
  IoScheduler scheduler_;
  ExtentManager extents_;
  BufferCache cache_;
  ExtentId extent_ = 0;
};

TEST_F(BufferCacheTest, MissThenHit) {
  AppendPages(1, 0x11);
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).value()[0], 0x11);
  EXPECT_EQ(CacheCounter("cache.misses"), 1u);
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).value()[0], 0x11);
  EXPECT_EQ(CacheCounter("cache.hits"), 1u);
  EXPECT_EQ(cache_.CachedPages(), 1u);
}

TEST_F(BufferCacheTest, MultiPageReadCachesEachPage) {
  AppendPages(3, 0x22);
  Bytes read = cache_.ReadPages(extent_, 0, 3).value();
  EXPECT_EQ(read.size(), 3u * 64u);
  EXPECT_EQ(cache_.CachedPages(), 3u);
}

TEST_F(BufferCacheTest, EvictionRespectsCapacity) {
  AppendPages(6, 0x33);
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 6).ok());
  EXPECT_LE(cache_.CachedPages(), 4u);
  EXPECT_GE(CacheCounter("cache.evictions"), 2u);
}

TEST_F(BufferCacheTest, LruKeepsRecentlyUsed) {
  AppendPages(5, 0x44);
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 4).ok());  // fill with 0..3
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 1).ok());  // touch page 0
  ASSERT_TRUE(cache_.ReadPages(extent_, 4, 1).ok());  // evicts LRU (page 1)
  const uint64_t hits_before = CacheCounter("cache.hits");
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 1).ok());  // page 0 still cached
  EXPECT_EQ(CacheCounter("cache.hits"), hits_before + 1);
}

TEST_F(BufferCacheTest, DrainExtentRemovesOnlyThatExtent) {
  const ExtentId other = extents_.ClaimExtent(ExtentOwner::kChunkData).value();
  AppendPages(2, 0x55);
  ASSERT_TRUE(extents_.Append(other, Bytes(64, 0x66), Dependency()).ok());
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 2).ok());
  ASSERT_TRUE(cache_.ReadPages(other, 0, 1).ok());
  cache_.DrainExtent(extent_);
  EXPECT_EQ(cache_.CachedPages(), 1u);
}

TEST_F(BufferCacheTest, ReadErrorIsNotCached) {
  AppendPages(1, 0x77);
  // Burst past the extent layer's retry budget so the error surfaces to the cache.
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailReadTimes(extent_, IoRetryOptions{}.max_attempts);
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).code(), StatusCode::kIoError);
  EXPECT_EQ(cache_.CachedPages(), 0u);
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).value()[0], 0x77);
}

TEST_F(BufferCacheTest, AbsorbedBlipStillFillsCache) {
  AppendPages(1, 0x79);
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailReadOnce(extent_);
  // A single blip is retried away below the cache; the miss fills normally.
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).value()[0], 0x79);
  EXPECT_EQ(cache_.CachedPages(), 1u);
  EXPECT_GE(extents_.metrics().Snapshot().counter("extent.retry.absorbed"), 1u);
}

// Regression: `invalidations` used to count drain *calls* (even no-op ones) rather
// than pages actually dropped, and Clear() counted nothing.
TEST_F(BufferCacheTest, DrainCountsPagesActuallyInvalidated) {
  const ExtentId untouched = extents_.ClaimExtent(ExtentOwner::kChunkData).value();
  AppendPages(2, 0x5a);
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 2).ok());
  // Draining an extent with no cached pages is a no-op and counts nothing.
  cache_.DrainExtent(untouched);
  EXPECT_EQ(CacheCounter("cache.invalidated_pages"), 0u);
  // Draining the populated extent counts each dropped page.
  cache_.DrainExtent(extent_);
  EXPECT_EQ(CacheCounter("cache.invalidated_pages"), 2u);
}

TEST_F(BufferCacheTest, ClearCountsDroppedPages) {
  AppendPages(3, 0x5b);
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 3).ok());
  cache_.Clear();
  EXPECT_EQ(CacheCounter("cache.invalidated_pages"), 3u);
  // An empty-cache Clear adds nothing.
  cache_.Clear();
  EXPECT_EQ(CacheCounter("cache.invalidated_pages"), 3u);
}

TEST_F(BufferCacheTest, ReadBeyondWritePointerPropagates) {
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).code(), StatusCode::kInvalidArgument);
}

TEST_F(BufferCacheTest, ClearEmptiesEverything) {
  AppendPages(2, 0x88);
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 2).ok());
  cache_.Clear();
  EXPECT_EQ(cache_.CachedPages(), 0u);
}

TEST_F(BufferCacheTest, StaleDataServedWithoutDrain) {
  // The scenario behind seeded bug #2, demonstrated at cache level: cache a page,
  // reset + rewrite the extent, and observe the stale page on a cached read.
  AppendPages(1, 0x99);
  ASSERT_TRUE(cache_.ReadPages(extent_, 0, 1).ok());
  extents_.Reset(extent_, Dependency());
  ASSERT_TRUE(extents_.Append(extent_, Bytes(64, 0xab), Dependency()).ok());
  // Without DrainExtent, the cache still holds the pre-reset byte.
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).value()[0], 0x99);
  // With the drain (what correct reclamation does) the fresh data is visible.
  cache_.DrainExtent(extent_);
  EXPECT_EQ(cache_.ReadPages(extent_, 0, 1).value()[0], 0xab);
}

}  // namespace
}  // namespace ss
