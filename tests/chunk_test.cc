// Unit + property tests for chunk framing, the chunk store, scanning, and reclamation.

#include <gtest/gtest.h>

#include <map>

#include "src/cache/buffer_cache.h"
#include "src/chunk/chunk_format.h"
#include "src/chunk/chunk_store.h"
#include "src/faults/faults.h"

namespace ss {
namespace {

TEST(ChunkFormat, RoundTrip) {
  Rng rng(1);
  Bytes payload = BytesOf("chunk payload");
  Bytes frame = EncodeChunkFrame(payload, Uuid::Random(rng));
  EXPECT_EQ(frame.size(), ChunkFrameBytes(payload.size()));
  EXPECT_EQ(DecodeChunkFrame(frame).value(), payload);
}

TEST(ChunkFormat, EmptyPayload) {
  Rng rng(2);
  Bytes frame = EncodeChunkFrame({}, Uuid::Random(rng));
  EXPECT_EQ(frame.size(), kChunkOverheadBytes);
  EXPECT_EQ(DecodeChunkFrame(frame).value(), Bytes{});
}

TEST(ChunkFormat, BadMagicIsCorruption) {
  Rng rng(3);
  Bytes frame = EncodeChunkFrame(BytesOf("x"), Uuid::Random(rng));
  frame[0] ^= 0xff;
  EXPECT_EQ(DecodeChunkFrame(frame).code(), StatusCode::kCorruption);
}

TEST(ChunkFormat, PayloadBitFlipIsCorruption) {
  Rng rng(4);
  Bytes frame = EncodeChunkFrame(BytesOf("payload"), Uuid::Random(rng));
  frame[kChunkHeaderBytes] ^= 0x01;
  EXPECT_EQ(DecodeChunkFrame(frame).code(), StatusCode::kCorruption);
}

TEST(ChunkFormat, TrailerMismatchIsCorruption) {
  Rng rng(5);
  Bytes frame = EncodeChunkFrame(BytesOf("payload"), Uuid::Random(rng));
  frame[frame.size() - 1] ^= 0x01;
  EXPECT_EQ(DecodeChunkFrame(frame).code(), StatusCode::kCorruption);
}

TEST(ChunkFormat, TruncatedFrameIsCorruption) {
  Rng rng(6);
  Bytes frame = EncodeChunkFrame(BytesOf("payload"), Uuid::Random(rng));
  frame.resize(frame.size() - 4);
  EXPECT_EQ(DecodeChunkFrame(frame).code(), StatusCode::kCorruption);
}

// Section 7: arbitrary bytes never crash the frame decoder.
class ChunkFormatFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(ChunkFormatFuzz, ArbitraryBytesNeverCrash) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk(rng.Below(200));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.Below(256));
    }
    auto result = DecodeChunkFrame(junk);
    if (result.ok()) {
      // If it decoded, re-encoding with the embedded uuid must reproduce the frame
      // prefix — i.e. only genuinely well-formed frames decode.
      auto header = ParseChunkHeader(junk).value();
      EXPECT_EQ(ChunkFrameBytes(result.value().size()),
                ChunkFrameBytes(header.payload_len));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkFormatFuzz, testing::Values(11, 22, 33, 44));

class ChunkStoreTest : public testing::Test {
 protected:
  ChunkStoreTest()
      : disk_(DiskGeometry{.extent_count = 10, .pages_per_extent = 8, .page_size = 128}),
        scheduler_(&disk_),
        extents_(&disk_, &scheduler_),
        cache_(&extents_, 64),
        chunks_(&extents_, &cache_, ChunkStoreOptions{.max_payload_bytes = 512}) {
    FaultRegistry::Global().DisableAll();
  }

  Locator PutAndUnpin(ByteSpan data) {
    ChunkPutResult result = chunks_.Put(data, Dependency()).value();
    chunks_.Unpin(result.locator.extent);
    return result.locator;
  }

  InMemoryDisk disk_;
  IoScheduler scheduler_;
  ExtentManager extents_;
  BufferCache cache_;
  ChunkStore chunks_;
};

// Reclaim client over an explicit reference map.
class MapReclaimClient : public ReclaimClient {
 public:
  std::map<Locator, Bytes> refs;

  Result<bool> IsReferenced(const Locator& loc) override { return refs.count(loc) != 0; }
  Result<Dependency> UpdateReference(const Locator& old_loc, const Locator& new_loc,
                                     const Dependency& new_dep) override {
    auto node = refs.extract(old_loc);
    node.key() = new_loc;
    refs.insert(std::move(node));
    return Dependency();
  }
  Dependency DropGate() override { return Dependency(); }
};

TEST_F(ChunkStoreTest, PutGetRoundTrip) {
  Bytes data = BytesOf("the quick brown fox");
  const Locator loc = PutAndUnpin(data);
  EXPECT_EQ(chunks_.Get(loc).value(), data);
}

TEST_F(ChunkStoreTest, PutTooLargeRejected) {
  Bytes big(513, 1);
  EXPECT_EQ(chunks_.Put(big, Dependency()).code(), StatusCode::kInvalidArgument);
}

TEST_F(ChunkStoreTest, LocatorsAreDistinct) {
  const Locator a = PutAndUnpin(BytesOf("aaa"));
  const Locator b = PutAndUnpin(BytesOf("bbb"));
  EXPECT_NE(a, b);
  EXPECT_EQ(chunks_.Get(a).value(), BytesOf("aaa"));
  EXPECT_EQ(chunks_.Get(b).value(), BytesOf("bbb"));
}

TEST_F(ChunkStoreTest, GetWithBogusLocatorFailsCleanly) {
  Locator bogus{3, 0, 1, 60};
  auto result = chunks_.Get(bogus);
  EXPECT_FALSE(result.ok());  // either read-beyond-wp or corruption, never a crash
}

TEST_F(ChunkStoreTest, GetValidatesLocatorShape) {
  Locator nonsense{1, 0, 9, 50};  // page_count inconsistent with frame_bytes
  EXPECT_EQ(chunks_.Get(nonsense).code(), StatusCode::kCorruption);
}

TEST_F(ChunkStoreTest, ScanFindsAllChunksInOrder) {
  std::vector<Bytes> payloads = {BytesOf("one"), Bytes(200, 0x22), BytesOf("three")};
  std::vector<Locator> locs;
  for (const Bytes& p : payloads) {
    locs.push_back(PutAndUnpin(p));
  }
  ASSERT_EQ(locs[0].extent, locs[1].extent);
  auto scanned = chunks_.ScanExtent(locs[0].extent).value();
  ASSERT_EQ(scanned.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scanned[i].locator, locs[i]);
    EXPECT_EQ(scanned[i].payload, payloads[i]);
  }
}

TEST_F(ChunkStoreTest, ReclaimEvacuatesReferencedDropsGarbage) {
  MapReclaimClient client;
  const Locator live = PutAndUnpin(BytesOf("live data"));
  const Locator dead = PutAndUnpin(BytesOf("dead data"));
  client.refs[live] = BytesOf("live data");
  const ExtentId victim = live.extent;
  ASSERT_EQ(dead.extent, victim);

  ASSERT_TRUE(chunks_.Reclaim(victim, &client).ok());
  ASSERT_TRUE(scheduler_.FlushAll().ok());

  // The live chunk moved and is readable at its new location.
  ASSERT_EQ(client.refs.size(), 1u);
  const Locator moved = client.refs.begin()->first;
  EXPECT_NE(moved.extent, victim);
  EXPECT_EQ(chunks_.Get(moved).value(), BytesOf("live data"));
  // The victim extent was reset.
  EXPECT_EQ(extents_.WritePointer(victim), 0u);
  EXPECT_EQ(chunks_.metrics().Snapshot().counter("chunk.evacuated"), 1u);
  EXPECT_EQ(chunks_.metrics().Snapshot().counter("chunk.dropped"), 1u);
}

TEST_F(ChunkStoreTest, ReclaimRefusesPinnedExtent) {
  ChunkPutResult pinned = chunks_.Put(BytesOf("pinned"), Dependency()).value();
  MapReclaimClient client;
  EXPECT_EQ(chunks_.Reclaim(pinned.locator.extent, &client).code(), StatusCode::kUnavailable);
  chunks_.Unpin(pinned.locator.extent);
  EXPECT_TRUE(chunks_.Reclaim(pinned.locator.extent, &client).ok());
}

TEST_F(ChunkStoreTest, PinsAreCounted) {
  ChunkPutResult a = chunks_.Put(BytesOf("a"), Dependency()).value();
  ChunkPutResult b = chunks_.Put(BytesOf("b"), Dependency()).value();
  ASSERT_EQ(a.locator.extent, b.locator.extent);
  chunks_.Unpin(a.locator.extent);
  MapReclaimClient client;
  EXPECT_EQ(chunks_.Reclaim(a.locator.extent, &client).code(), StatusCode::kUnavailable);
  chunks_.Unpin(a.locator.extent);
  EXPECT_TRUE(chunks_.Reclaim(a.locator.extent, &client).ok());
}

TEST_F(ChunkStoreTest, ReclaimedExtentIsReusedAfterResetSettles) {
  MapReclaimClient client;
  // Two 450-byte payloads (4 pages framed each) fill the 8-page extent exactly.
  const Locator dead = PutAndUnpin(Bytes(450, 1));
  const Locator dead2 = PutAndUnpin(Bytes(450, 1));
  ASSERT_EQ(dead.extent, dead2.extent);
  const ExtentId victim = dead.extent;
  ASSERT_TRUE(chunks_.Reclaim(victim, &client).ok());
  // Before the reset persists, the extent is not an allocation target.
  EXPECT_FALSE(extents_.ResetSettled(victim));
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  EXPECT_TRUE(extents_.ResetSettled(victim));
  // Now a big put can land there again.
  const Locator reused = PutAndUnpin(Bytes(450, 2));
  EXPECT_EQ(reused.extent, victim);
}

TEST_F(ChunkStoreTest, ReclaimAbortsOnReadError) {
  MapReclaimClient client;
  const Locator live = PutAndUnpin(BytesOf("live"));
  client.refs[live] = BytesOf("live");
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailReadTimes(live.extent, IoRetryOptions{}.max_attempts);
  EXPECT_EQ(chunks_.Reclaim(live.extent, &client).code(), StatusCode::kIoError);
  // The chunk survived the aborted reclaim.
  EXPECT_EQ(chunks_.Get(live).value(), BytesOf("live"));
}

TEST_F(ChunkStoreTest, Bug5DropsChunkOnReadError) {
  ScopedSeededBug bug(SeededBug::kReclaimForgetsChunkOnReadError);
  MapReclaimClient client;
  const Locator live = PutAndUnpin(BytesOf("live"));
  client.refs[live] = BytesOf("live");
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailReadTimes(live.extent, IoRetryOptions{}.max_attempts);
  ASSERT_TRUE(chunks_.Reclaim(live.extent, &client).ok());  // "succeeds", wrongly
  // The chunk was forgotten: reference unchanged but the extent was reset.
  EXPECT_EQ(client.refs.begin()->first, live);
  EXPECT_FALSE(chunks_.Get(live).ok());
}

TEST_F(ChunkStoreTest, Bug1OvershootSkipsPageAlignedNeighbour) {
  ScopedBug bug(SeededBug::kReclaimOffByOnePageSize);
  MapReclaimClient client;
  // First chunk's frame is exactly one page (128 - 43 = 85 payload bytes).
  const Locator first = PutAndUnpin(Bytes(85, 0xaa));
  const Locator second = PutAndUnpin(BytesOf("neighbour"));
  ASSERT_EQ(first.extent, second.extent);
  client.refs[first] = Bytes(85, 0xaa);
  client.refs[second] = BytesOf("neighbour");
  ASSERT_TRUE(chunks_.Reclaim(first.extent, &client).ok());
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  // The scan strode over the second chunk, so it was dropped by the reset.
  EXPECT_FALSE(chunks_.Get(client.refs.count(second) ? second : second).ok());
  EXPECT_EQ(chunks_.metrics().Snapshot().counter("chunk.evacuated"), 1u);
}

TEST_F(ChunkStoreTest, CorruptPageResynchronizesScan) {
  const Locator a = PutAndUnpin(BytesOf("aaa"));
  const Locator b = PutAndUnpin(BytesOf("bbb"));
  ASSERT_EQ(a.extent, b.extent);
  // Corrupt the first chunk's page directly on the volatile image via a fresh append
  // path is not possible; instead corrupt the persistent page and re-open the stack.
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  Bytes garbage(128, 0xee);
  ASSERT_TRUE(disk_.WritePage(a.extent, a.first_page, garbage).ok());
  IoScheduler scheduler2(&disk_);
  ExtentManager extents2(&disk_, &scheduler2);
  BufferCache cache2(&extents2, 64);
  ChunkStore chunks2(&extents2, &cache2, ChunkStoreOptions{.max_payload_bytes = 512});
  auto scanned = chunks2.ScanExtent(a.extent).value();
  ASSERT_EQ(scanned.size(), 1u);
  EXPECT_EQ(scanned[0].payload, BytesOf("bbb"));
  EXPECT_GE(chunks2.metrics().Snapshot().counter("chunk.corrupt_frames_skipped"), 1u);
}

TEST_F(ChunkStoreTest, ReclaimableExtentsExcludesActiveAndEmpty) {
  EXPECT_TRUE(chunks_.ReclaimableExtents().empty());
  PutAndUnpin(Bytes(450, 1));  // 4 pages
  PutAndUnpin(Bytes(450, 1));  // fills the 8-page extent -> sealed
  PutAndUnpin(BytesOf("x"));   // second extent becomes active
  auto reclaimable = chunks_.ReclaimableExtents();
  ASSERT_EQ(reclaimable.size(), 1u);
}

}  // namespace
}  // namespace ss
