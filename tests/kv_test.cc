// Unit + integration tests for ShardStore: API semantics, multi-chunk values,
// maintenance, dependency/durability behaviour, crash & recovery scenarios.

#include <gtest/gtest.h>

#include "src/faults/faults.h"
#include "src/kv/shard_store.h"

namespace ss {
namespace {

Bytes ValueOf(uint8_t tag, size_t size) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(tag ^ (i & 0xff));
  }
  return out;
}

class ShardStoreTest : public testing::Test {
 protected:
  ShardStoreTest() {
    FaultRegistry::Global().DisableAll();
    options_.chunk.max_payload_bytes = 256;
    store_ = std::move(ShardStore::Open(&disk_, options_).value());
  }

  void Reboot(bool clean) {
    if (clean) {
      ASSERT_TRUE(store_->FlushAll().ok());
    } else {
      store_->scheduler().CrashDropAll();
    }
    store_.reset();
    store_ = std::move(ShardStore::Open(&disk_, options_).value());
  }

  InMemoryDisk disk_{DiskGeometry{.extent_count = 20, .pages_per_extent = 16, .page_size = 256}};
  ShardStoreOptions options_;
  std::unique_ptr<ShardStore> store_;
};

TEST_F(ShardStoreTest, GetMissingIsNotFound) {
  EXPECT_EQ(store_->Get(99).code(), StatusCode::kNotFound);
}

TEST_F(ShardStoreTest, PutOverwriteDelete) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 100)).ok());
  EXPECT_EQ(store_->Get(1).value(), ValueOf(1, 100));
  ASSERT_TRUE(store_->Put(1, ValueOf(2, 50)).ok());
  EXPECT_EQ(store_->Get(1).value(), ValueOf(2, 50));
  ASSERT_TRUE(store_->Delete(1).ok());
  EXPECT_EQ(store_->Get(1).code(), StatusCode::kNotFound);
}

TEST_F(ShardStoreTest, EmptyValueRoundTrips) {
  ASSERT_TRUE(store_->Put(5, {}).ok());
  EXPECT_EQ(store_->Get(5).value(), Bytes{});
}

TEST_F(ShardStoreTest, MultiChunkValueSplitsAndReassembles) {
  // max chunk payload 256 -> 1000 bytes = 4 chunks.
  Bytes value = ValueOf(7, 1000);
  ASSERT_TRUE(store_->Put(2, value).ok());
  auto record = store_->index().Get(2).value();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->chunks.size(), 4u);
  EXPECT_EQ(store_->Get(2).value(), value);
}

TEST_F(ShardStoreTest, OversizedValueRejected) {
  Bytes huge(256 * 16 + 1, 1);
  EXPECT_EQ(store_->Put(3, huge).code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardStoreTest, ListReflectsLiveShards) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 10)).ok());
  ASSERT_TRUE(store_->Put(2, ValueOf(2, 10)).ok());
  ASSERT_TRUE(store_->Delete(1).ok());
  EXPECT_EQ(store_->List().value(), (std::vector<ShardId>{2}));
}

TEST_F(ShardStoreTest, DependencyLifecycle) {
  Dependency dep = store_->Put(1, ValueOf(1, 100)).value();
  EXPECT_FALSE(dep.IsPersistent());
  ASSERT_TRUE(store_->FlushIndex().ok());
  EXPECT_FALSE(dep.IsPersistent());  // writebacks still queued
  ASSERT_TRUE(store_->FlushAll().ok());
  EXPECT_TRUE(dep.IsPersistent());
}

TEST_F(ShardStoreTest, PumpIoMakesIncrementalProgress) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 100)).ok());
  ASSERT_TRUE(store_->FlushIndex().ok());
  const size_t pending = store_->scheduler().PendingCount();
  ASSERT_GT(pending, 0u);
  EXPECT_EQ(store_->PumpIo(1), 1u);
  EXPECT_EQ(store_->scheduler().PendingCount(), pending - 1);
}

TEST_F(ShardStoreTest, CleanRebootPreservesEverything) {
  for (ShardId id = 0; id < 8; ++id) {
    ASSERT_TRUE(store_->Put(id, ValueOf(static_cast<uint8_t>(id), 64 * id)).ok());
  }
  ASSERT_TRUE(store_->Delete(3).ok());
  Reboot(/*clean=*/true);
  for (ShardId id = 0; id < 8; ++id) {
    if (id == 3) {
      EXPECT_EQ(store_->Get(id).code(), StatusCode::kNotFound);
    } else {
      EXPECT_EQ(store_->Get(id).value(), ValueOf(static_cast<uint8_t>(id), 64 * id));
    }
  }
}

TEST_F(ShardStoreTest, CrashLosesOnlyUnflushedData) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 64)).ok());
  ASSERT_TRUE(store_->FlushAll().ok());
  ASSERT_TRUE(store_->Put(2, ValueOf(2, 64)).ok());
  Reboot(/*clean=*/false);
  EXPECT_TRUE(store_->Get(1).ok());
  EXPECT_EQ(store_->Get(2).code(), StatusCode::kNotFound);
}

TEST_F(ShardStoreTest, PersistedDeleteSurvivesCrash) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 64)).ok());
  ASSERT_TRUE(store_->FlushAll().ok());
  ASSERT_TRUE(store_->Delete(1).ok());
  ASSERT_TRUE(store_->FlushAll().ok());
  Reboot(/*clean=*/false);
  EXPECT_EQ(store_->Get(1).code(), StatusCode::kNotFound);
}

TEST_F(ShardStoreTest, ReclaimRecoversSpaceFromDeletedShards) {
  // Fill a few extents, delete everything, reclaim, and verify space returns.
  for (ShardId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store_->Put(id, ValueOf(static_cast<uint8_t>(id), 500)).ok());
  }
  for (ShardId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store_->Delete(id).ok());
  }
  ASSERT_TRUE(store_->FlushAll().ok());
  const uint64_t live_before = disk_.LivePages();
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(store_->ReclaimAny().ok());
  }
  ASSERT_TRUE(store_->FlushAll().ok());
  EXPECT_LT(disk_.LivePages(), live_before);
  EXPECT_GE(store_->metrics().Snapshot().counter("chunk.dropped"), 6u);
}

TEST_F(ShardStoreTest, ReclaimPreservesLiveData) {
  for (ShardId id = 0; id < 4; ++id) {
    ASSERT_TRUE(store_->Put(id, ValueOf(static_cast<uint8_t>(id), 300)).ok());
  }
  ASSERT_TRUE(store_->Delete(0).ok());
  ASSERT_TRUE(store_->FlushIndex().ok());
  // Reclaim every data extent.
  for (ExtentId e : store_->extents().ExtentsOwnedBy(ExtentOwner::kChunkData)) {
    Status status = store_->ReclaimExtent(e);
    ASSERT_TRUE(status.ok() || status.code() == StatusCode::kUnavailable)
        << status.ToString();
  }
  ASSERT_TRUE(store_->FlushAll().ok());
  for (ShardId id = 1; id < 4; ++id) {
    EXPECT_EQ(store_->Get(id).value(), ValueOf(static_cast<uint8_t>(id), 300));
  }
  Reboot(/*clean=*/true);
  for (ShardId id = 1; id < 4; ++id) {
    EXPECT_EQ(store_->Get(id).value(), ValueOf(static_cast<uint8_t>(id), 300));
  }
}

TEST_F(ShardStoreTest, CompactionPreservesData) {
  for (int round = 0; round < 4; ++round) {
    for (ShardId id = 0; id < 3; ++id) {
      ASSERT_TRUE(store_->Put(id, ValueOf(static_cast<uint8_t>(round), 100)).ok());
    }
    ASSERT_TRUE(store_->FlushIndex().ok());
  }
  EXPECT_GT(store_->index().RunCount(), 1u);
  ASSERT_TRUE(store_->CompactIndex().ok());
  EXPECT_EQ(store_->index().RunCount(), 1u);
  for (ShardId id = 0; id < 3; ++id) {
    EXPECT_EQ(store_->Get(id).value(), ValueOf(3, 100));
  }
}

TEST_F(ShardStoreTest, InjectedWriteFailureIsAtomicNoOp) {
  // Arm a write-failure burst (outlasting the retry budget) against the extent the
  // next put will use.
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 10)).ok());
  auto record = store_->index().Get(1).value();
  const ExtentId target = record->chunks[0].extent;
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailWriteTimes(target, options_.retry.max_attempts);
  EXPECT_EQ(store_->Put(2, ValueOf(2, 10)).code(), StatusCode::kIoError);
  EXPECT_EQ(store_->Get(2).code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->Get(1).value(), ValueOf(1, 10));  // old data unaffected
}

TEST_F(ShardStoreTest, TransientBlipIsInvisibleToTheApi) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 10)).ok());
  auto record = store_->index().Get(1).value();
  const ExtentId target = record->chunks[0].extent;
  ScopedFault guard(disk_.fault_injector());
  // A blip shorter than the retry budget never reaches the KV API.
  disk_.fault_injector().FailWriteOnce(target);
  EXPECT_TRUE(store_->Put(2, ValueOf(2, 10)).ok());
  disk_.fault_injector().FailReadOnce(target);
  EXPECT_EQ(store_->Get(1).value(), ValueOf(1, 10));
  EXPECT_GE(store_->metrics().Snapshot().counter("extent.retry.absorbed"), 1u);
}

TEST_F(ShardStoreTest, PermanentFaultSurfacesDiskFailed) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 10)).ok());
  auto record = store_->index().Get(1).value();
  const ExtentId target = record->chunks[0].extent;
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailAlways(target, true);
  // Reads of the failed extent classify as permanent, not transient.
  EXPECT_EQ(store_->Get(1).code(), StatusCode::kDiskFailed);
  EXPECT_EQ(store_->extents().health().health(), DiskHealth::kFailed);
}

TEST_F(ShardStoreTest, DiskFullSurfacesResourceExhausted) {
  InMemoryDisk tiny(DiskGeometry{.extent_count = 4, .pages_per_extent = 4, .page_size = 128});
  auto store = std::move(ShardStore::Open(&tiny, options_).value());
  Status last = Status::Ok();
  for (ShardId id = 0; id < 64 && last.ok(); ++id) {
    auto dep = store->Put(id, ValueOf(1, 200));
    last = dep.ok() ? Status::Ok() : dep.status();
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST_F(ShardStoreTest, StatsAccumulate) {
  ASSERT_TRUE(store_->Put(1, ValueOf(1, 10)).ok());
  (void)store_->Get(1);
  (void)store_->Delete(1);
  MetricsSnapshot snap = store_->metrics().Snapshot();
  EXPECT_EQ(snap.counter("store.puts"), 1u);
  EXPECT_EQ(snap.counter("store.gets"), 1u);
  EXPECT_EQ(snap.counter("store.deletes"), 1u);
}

TEST_F(ShardStoreTest, EpochBumpsOnEveryOpen) {
  const uint64_t before = disk_.epoch();
  Reboot(/*clean=*/true);
  EXPECT_EQ(disk_.epoch(), before + 1);
}

// Crash between every pair of pump steps: put a shard, flush the index, then for each
// prefix length of issued writebacks verify recovery is consistent (the shard is
// either fully present or cleanly absent — never corrupt).
class CrashPrefixSweep : public testing::TestWithParam<int> {};

TEST_P(CrashPrefixSweep, EveryIssuePrefixRecoversConsistently) {
  const int prefix = GetParam();
  InMemoryDisk disk(DiskGeometry{.extent_count = 12, .pages_per_extent = 16, .page_size = 256});
  ShardStoreOptions options;
  auto store = std::move(ShardStore::Open(&disk, options).value());
  Bytes value(300, 0x42);
  Dependency dep = store->Put(7, value).value();
  ASSERT_TRUE(store->FlushIndex().ok());
  store->PumpIo(static_cast<size_t>(prefix));
  store->scheduler().CrashDropAll();
  store.reset();

  auto recovered = std::move(ShardStore::Open(&disk, options).value());
  auto got = recovered->Get(7);
  if (dep.IsPersistent()) {
    ASSERT_TRUE(got.ok()) << "persisted shard lost at prefix " << prefix;
    EXPECT_EQ(got.value(), value);
  } else {
    // Not persisted: must be fully present (lucky prefix) or cleanly absent.
    if (got.ok()) {
      EXPECT_EQ(got.value(), value);
    } else {
      EXPECT_EQ(got.code(), StatusCode::kNotFound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Prefixes, CrashPrefixSweep, testing::Range(0, 12));

}  // namespace
}  // namespace ss
