// Observability layer: registry find-or-create semantics, histogram bucketing and
// quantiles, snapshot merging, trace-ring wraparound, span-tree causality, snapshot
// stability under model-checked concurrency, and the NodeServer surface (every
// subsystem visible in one snapshot, spans linked from trace events).

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "src/faults/faults.h"
#include "src/mc/mc.h"
#include "src/obs/cluster_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/rpc/node_server.h"
#include "src/sync/sync.h"

namespace ss {
namespace {

// --- MetricRegistry -----------------------------------------------------------------

TEST(MetricRegistry, CounterFindOrCreateReturnsTheSameObject) {
  MetricRegistry registry;
  Counter& a = registry.counter("x.events");
  Counter& b = registry.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.Increment();
  b.Increment(4);
  EXPECT_EQ(a.Value(), 5u);
  EXPECT_EQ(registry.Snapshot().counter("x.events"), 5u);
  // Distinct names are distinct objects.
  EXPECT_NE(&registry.counter("x.other"), &a);
}

TEST(MetricRegistry, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge& g = registry.gauge("queue.depth");
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
  EXPECT_EQ(registry.Snapshot().gauge("queue.depth"), 4);
  // Absent gauges read zero, same as counters.
  EXPECT_EQ(registry.Snapshot().gauge("never.registered"), 0);
}

TEST(MetricRegistry, HistogramBucketBoundsAreInclusive) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("ticks", {1, 2, 4});
  h.Record(1);  // <= 1
  h.Record(2);  // <= 2
  h.Record(3);  // <= 4
  h.Record(4);  // <= 4 (inclusive bound)
  h.Record(5);  // overflow
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<uint64_t>{1, 2, 4}));
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 15u);
}

TEST(MetricRegistry, HistogramBoundsApplyOnFirstRegistrationOnly) {
  MetricRegistry registry;
  Histogram& first = registry.histogram("h", {1, 2});
  Histogram& again = registry.histogram("h", {10, 20, 30});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds(), (std::vector<uint64_t>{1, 2}));
}

TEST(MetricRegistry, SnapshotIntoAccumulatesAcrossRegistries) {
  MetricRegistry a;
  MetricRegistry b;
  a.counter("shared").Increment(3);
  b.counter("shared").Increment(4);
  a.counter("only_a").Increment();
  b.gauge("g").Set(2);
  a.histogram("h", {8}).Record(5);
  b.histogram("h", {8}).Record(20);

  MetricsSnapshot merged;
  a.SnapshotInto(merged);
  b.SnapshotInto(merged);
  EXPECT_EQ(merged.counter("shared"), 7u);
  EXPECT_EQ(merged.counter("only_a"), 1u);
  EXPECT_EQ(merged.counter("absent"), 0u);
  EXPECT_EQ(merged.gauge("g"), 2);
  const HistogramSnapshot& h = merged.histograms.at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 25u);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);  // 5 <= 8
  EXPECT_EQ(h.counts[1], 1u);  // 20 overflows
}

TEST(MetricRegistry, CounterDeltaBetweenSnapshots) {
  MetricRegistry registry;
  registry.counter("ops").Increment(2);
  MetricsSnapshot before = registry.Snapshot();
  registry.counter("ops").Increment(5);
  registry.counter("fresh").Increment();  // registered after `before`
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(CounterDelta(before, after, "ops"), 5u);
  EXPECT_EQ(CounterDelta(before, after, "fresh"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "absent"), 0u);
}

TEST(MetricRegistry, ToStringListsEverySection) {
  MetricRegistry registry;
  registry.counter("c.one").Increment();
  registry.gauge("g.one").Set(-2);
  registry.histogram("h.one").Record(3);
  std::string out = registry.Snapshot().ToString();
  EXPECT_NE(out.find("c.one"), std::string::npos);
  EXPECT_NE(out.find("g.one"), std::string::npos);
  EXPECT_NE(out.find("h.one"), std::string::npos);
}

// --- MetricsSnapshot::MergeFrom (cluster-wide aggregation) --------------------------

TEST(MetricsMerge, EmptyRegistriesMergeToEmpty) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.MergeFrom(b);
  EXPECT_TRUE(a.counters.empty());
  EXPECT_TRUE(a.gauges.empty());
  EXPECT_TRUE(a.histograms.empty());
  // Merging into an empty snapshot adopts the other side wholesale.
  MetricRegistry registry;
  registry.counter("ops").Increment(3);
  registry.gauge("depth").Set(-1);
  registry.histogram("h", {4}).Record(2);
  MetricsSnapshot populated = registry.Snapshot();
  a.MergeFrom(populated);
  EXPECT_EQ(a.counter("ops"), 3u);
  EXPECT_EQ(a.gauge("depth"), -1);
  EXPECT_EQ(a.histograms.at("h").count, 1u);
  // And merging an empty snapshot changes nothing.
  populated.MergeFrom(MetricsSnapshot{});
  EXPECT_EQ(populated.counter("ops"), 3u);
}

TEST(MetricsMerge, MatchedBoundsHistogramsMergeBucketwise) {
  MetricRegistry a;
  MetricRegistry b;
  a.histogram("h", {10, 20}).Record(5);
  a.histogram("h", {10, 20}).Record(15);
  b.histogram("h", {10, 20}).Record(15);
  b.histogram("h", {10, 20}).Record(99);  // overflow bucket
  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  const HistogramSnapshot& h = merged.histograms.at("h");
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 134u);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 1u);  // 5
  EXPECT_EQ(h.counts[1], 2u);  // both 15s
  EXPECT_EQ(h.counts[2], 1u);  // 99 overflows
  EXPECT_EQ(h.ValueAtQuantile(0.5), 20u);
}

TEST(MetricsMerge, MismatchedBoundsFoldIntoCountAndSum) {
  MetricRegistry a;
  MetricRegistry b;
  a.histogram("h", {10}).Record(7);
  b.histogram("h", {1, 2, 3}).Record(2);
  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  // Bucket-wise addition would misfile samples, so only the scalars accumulate;
  // the receiver's bounds win and its bucket counts stay untouched.
  const HistogramSnapshot& h = merged.histograms.at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 9u);
  EXPECT_EQ(h.bounds, (std::vector<uint64_t>{10}));
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);  // only a's sample is bucketed
}

TEST(MetricsMerge, CounterOverflowWrapsAround) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.counters["ops"] = std::numeric_limits<uint64_t>::max();
  b.counters["ops"] = 3;
  a.MergeFrom(b);
  // uint64 wraparound is defined behaviour: max + 3 == 2.
  EXPECT_EQ(a.counter("ops"), 2u);
}

// --- HistogramSnapshot::ValueAtQuantile ---------------------------------------------

TEST(HistogramQuantile, EmptyHistogramReportsZero) {
  MetricRegistry registry;
  HistogramSnapshot snap = registry.histogram("h", {1, 2, 4}).Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 0u);
}

TEST(HistogramQuantile, ReportsBucketUpperBounds) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("h", {10, 20, 40});
  // 5 samples <= 10, 4 samples <= 20, 1 sample <= 40.
  for (int i = 0; i < 5; ++i) h.Record(3);
  for (int i = 0; i < 4; ++i) h.Record(15);
  h.Record(33);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(0.10), 10u);  // rank 1
  EXPECT_EQ(snap.ValueAtQuantile(0.50), 10u);  // rank 5, last sample of bucket 0
  EXPECT_EQ(snap.ValueAtQuantile(0.51), 20u);  // rank 6, first sample of bucket 1
  EXPECT_EQ(snap.ValueAtQuantile(0.90), 20u);
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 40u);
}

TEST(HistogramQuantile, QuantileIsClampedAndZeroMeansMinimum) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("h", {1, 8});
  h.Record(1);
  h.Record(6);
  HistogramSnapshot snap = h.Snapshot();
  // q below 0 / above 1 clamp; q=0 still resolves the rank-1 sample.
  EXPECT_EQ(snap.ValueAtQuantile(-3.0), 1u);
  EXPECT_EQ(snap.ValueAtQuantile(0.0), 1u);
  EXPECT_EQ(snap.ValueAtQuantile(7.0), 8u);
}

TEST(HistogramQuantile, OverflowSamplesReportOnePastTheLargestBound) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("h", {4});
  h.Record(2);
  h.Record(1000);  // overflow bucket
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 4u);
  // The histogram cannot resolve beyond its largest bound: it reports bound+1, not
  // the (unknown) sample value.
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 5u);
}

TEST(HistogramQuantile, BoundlessHistogramFallsBackToMean) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("h", std::vector<uint64_t>{});
  h.Record(10);
  h.Record(30);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 20u);
  EXPECT_EQ(snap.ValueAtQuantile(0.99), 20u);
}

// --- TraceRing ----------------------------------------------------------------------

TEST(TraceRing, WrapsAroundKeepingTheNewestEvents) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Record(TraceKind::kPut, /*shard=*/i, /*disk=*/0, StatusCode::kOk);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the last four survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].shard, 6 + i);
  }
}

TEST(TraceRing, RecordsStructuredFields) {
  TraceRing ring;
  ring.Record(TraceKind::kMigrateShard, /*shard=*/42, /*disk=*/2,
              StatusCode::kOk, /*duration_ticks=*/9);
  std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kMigrateShard);
  EXPECT_EQ(events[0].shard, 42u);
  EXPECT_EQ(events[0].disk, 2);
  EXPECT_EQ(events[0].status, StatusCode::kOk);
  EXPECT_EQ(events[0].duration_ticks, 9u);
  std::string text = ring.ToString();
  EXPECT_NE(text.find("MigrateShard"), std::string::npos);
}

// Regression: after wraparound, ToString must render the *newest* tail of the ring
// (the last max_events events by sequence number), not the oldest retained ones.
TEST(TraceRing, ToStringShowsTheNewestTailAfterWraparound) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Record(TraceKind::kPut, /*shard=*/i, /*disk=*/0, StatusCode::kOk);
  }
  // Retained: seqs 6..9. A 2-event rendering must show exactly #8 and #9.
  std::string text = ring.ToString(/*max_events=*/2);
  EXPECT_NE(text.find("last 2 of 10"), std::string::npos) << text;
  EXPECT_EQ(text.find("#6 "), std::string::npos) << text;
  EXPECT_EQ(text.find("#7 "), std::string::npos) << text;
  EXPECT_NE(text.find("#8 "), std::string::npos) << text;
  EXPECT_NE(text.find("#9 "), std::string::npos) << text;
}

// --- SpanTree -----------------------------------------------------------------------

// A fake clock whose ticks the test advances by hand.
class FakeTicks : public TickSource {
 public:
  uint64_t SpanTicksNow() const override { return now; }
  uint64_t now = 0;
};

TEST(SpanTree, ChildSpansRecordCausality) {
  SpanTree tree;
  FakeTicks clock;
  uint64_t root_id = 0;
  uint64_t child_id = 0;
  {
    Span root(&tree, &clock, "rpc.put");
    root_id = root.id();
    clock.now = 2;
    {
      Span child = root.scope().Child("lsm.insert");
      child_id = child.id();
      clock.now = 5;
    }
    clock.now = 7;
  }
  std::vector<SpanRecord> spans = tree.Tree(root_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].id, root_id);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].root, root_id);
  EXPECT_EQ(spans[0].name, "rpc.put");
  EXPECT_EQ(spans[0].duration_ticks, 7u);
  EXPECT_FALSE(spans[0].open);
  EXPECT_EQ(spans[1].id, child_id);
  EXPECT_EQ(spans[1].parent, root_id);
  EXPECT_EQ(spans[1].root, root_id);
  EXPECT_EQ(spans[1].name, "lsm.insert");
  EXPECT_EQ(spans[1].start_ticks, 2u);
  EXPECT_EQ(spans[1].duration_ticks, 3u);
}

TEST(SpanTree, InactiveScopeProducesNoSpans) {
  SpanTree tree;
  SpanScope inactive;
  EXPECT_FALSE(inactive.active());
  Span child = inactive.Child("lsm.insert");
  EXPECT_FALSE(child.active());
  EXPECT_EQ(tree.total_started(), 0u);
}

TEST(SpanTree, StatusAndExplicitTicksAreRecorded) {
  SpanTree tree;
  Span span(&tree, /*clock=*/nullptr, "rpc.put_batch");
  span.AddTicks(4);
  span.AddTicks(2);
  span.set_status(StatusCode::kUnavailable);
  const uint64_t id = span.id();
  EXPECT_EQ(span.End(), 6u);
  std::vector<SpanRecord> spans = tree.Tree(id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].duration_ticks, 6u);
  EXPECT_EQ(spans[0].status, StatusCode::kUnavailable);
}

TEST(SpanTree, TreeFiltersByRootAndWraparoundKeepsTotals) {
  SpanTree tree(/*capacity=*/4);
  FakeTicks clock;
  std::vector<uint64_t> roots;
  for (int i = 0; i < 6; ++i) {
    Span root(&tree, &clock, "rpc.get");
    roots.push_back(root.id());
    Span child = root.scope().Child("lsm.lookup");
  }
  EXPECT_EQ(tree.total_started(), 12u);
  // Capacity 4: only the last two trees survive; earlier roots render empty.
  EXPECT_TRUE(tree.Tree(roots[0]).empty());
  EXPECT_EQ(tree.Tree(roots.back()).size(), 2u);
  EXPECT_LE(tree.Spans().size(), 4u);
}

TEST(SpanTree, EndedSpansFeedPerStageHistograms) {
  MetricRegistry registry;
  SpanTree tree(SpanTree::kDefaultCapacity, &registry);
  FakeTicks clock;
  {
    Span root(&tree, &clock, "rpc.put");
    clock.now = 3;
    { Span child = root.scope().Child("lsm.insert"); }
  }
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(snap.histograms.count("span.rpc.put.ticks"));
  ASSERT_TRUE(snap.histograms.count("span.lsm.insert.ticks"));
  EXPECT_EQ(snap.histograms.at("span.rpc.put.ticks").count, 1u);
  EXPECT_EQ(snap.histograms.at("span.rpc.put.ticks").sum, 3u);
}

TEST(SpanTree, RenderingsShowHierarchy) {
  SpanTree tree;
  Span root(&tree, nullptr, "rpc.put");
  { Span child = root.scope().Child("store.put"); }
  const uint64_t root_id = root.id();
  root.End();
  std::string text = tree.ToString(root_id);
  EXPECT_NE(text.find("rpc.put"), std::string::npos);
  EXPECT_NE(text.find("store.put"), std::string::npos);
  std::string json = tree.ToJson(root_id);
  EXPECT_NE(json.find("\"name\":\"store.put\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent\":" + std::to_string(root_id)), std::string::npos) << json;
}

// --- Cross-tree trace propagation and assembly ---------------------------------------

TEST(RemoteSpans, StartRemoteSpanRecordsLinkageAndStaysLocallyRooted) {
  SpanTree tree;
  const uint64_t id = tree.StartRemoteSpan("rpc.put", TraceContext{40, 41});
  const uint64_t child = tree.StartSpan("lsm.insert", id, id);
  tree.EndSpan(child, StatusCode::kOk, 1);
  tree.EndSpan(id, StatusCode::kOk, 2);
  std::vector<SpanRecord> spans = tree.Tree(id);
  ASSERT_EQ(spans.size(), 2u);
  // The adopted span is a root in *this* tree — remote ids are recorded, never
  // resolved locally — and its children chain through plain parent/root links.
  EXPECT_EQ(spans[0].root, id);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].remote_root, 40u);
  EXPECT_EQ(spans[0].remote_parent, 41u);
  EXPECT_EQ(spans[1].remote_root, 0u) << "children must not inherit remote linkage";
  EXPECT_NE(spans[0].ToString().find("remote_root=40"), std::string::npos);
  // RemoteTrees surfaces exactly the adopted subtrees for a given sender root.
  EXPECT_EQ(tree.RemoteTrees(40), (std::vector<uint64_t>{id}));
  EXPECT_TRUE(tree.RemoteTrees(99).empty());
  const std::string json = tree.ToJson(id);
  EXPECT_NE(json.find("\"remote_parent\":41"), std::string::npos) << json;
}

TEST(ClusterTraceAssembly, StitchesNodeSubtreesUnderTheCoordinatorSpan) {
  // Hand-built trees: a coordinator root with one fan-out child, and a node tree
  // holding one adopted subtree for this trace plus an unrelated one that must not
  // leak in.
  SpanTree coord;
  const uint64_t root = coord.StartSpan("cluster.put");
  const uint64_t fanout = coord.StartSpan("cluster.fanout", root, root);
  SpanTree node;
  const uint64_t adopted = node.StartRemoteSpan("rpc.put", TraceContext{root, fanout});
  const uint64_t nested = node.StartSpan("lsm.insert", adopted, adopted);
  const uint64_t unrelated = node.StartRemoteSpan("rpc.get", TraceContext{777, 778});
  node.EndSpan(nested, StatusCode::kOk, 1);
  node.EndSpan(adopted, StatusCode::kOk, 2);
  node.EndSpan(unrelated, StatusCode::kOk, 1);
  coord.EndSpan(fanout, StatusCode::kOk, 3);
  coord.EndSpan(root, StatusCode::kOk, 4);

  const ClusterTrace trace = AssembleClusterTrace(root, coord, {{"node-7", &node}});
  EXPECT_EQ(trace.root, root);
  EXPECT_EQ(trace.Sources(), (std::vector<std::string>{"coord", "node-7"}));
  EXPECT_EQ(trace.CountFor("coord"), 2u);
  EXPECT_EQ(trace.CountFor("node-7"), 2u) << "unrelated remote subtree leaked in";
  // The node's adopted root points back at the coordinator span it was sent under.
  bool found_adopted = false;
  for (const ClusterTraceEntry& entry : trace.spans) {
    if (entry.source == "node-7" && entry.span.id == entry.span.root) {
      EXPECT_EQ(entry.span.remote_root, root);
      EXPECT_EQ(entry.span.remote_parent, fanout);
      found_adopted = true;
    }
  }
  EXPECT_TRUE(found_adopted);
  // Rendering nests the node subtree under the coordinator's fan-out span and tags
  // foreign lines with their source.
  const std::string text = trace.ToString();
  const size_t fanout_at = text.find("cluster.fanout");
  const size_t node_at = text.find("[node-7] #1 rpc.put");
  ASSERT_NE(fanout_at, std::string::npos) << text;
  ASSERT_NE(node_at, std::string::npos) << text;
  EXPECT_GT(node_at, fanout_at);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"root\":" + std::to_string(root)), std::string::npos) << json;
  EXPECT_NE(json.find("\"source\":\"coord\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"source\":\"node-7\""), std::string::npos) << json;
}

TEST(ClusterTraceAssembly, MissingRootAssemblesEmpty) {
  SpanTree coord;
  SpanTree node;
  const ClusterTrace trace = AssembleClusterTrace(123, coord, {{"node-0", &node}});
  EXPECT_EQ(trace.root, 123u);
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.Sources().empty());
  EXPECT_FALSE(trace.HasSource("coord"));
}

// --- Concurrency: snapshots are safe and exact against concurrent recorders ---------
//
// Recording uses plain atomics / leaf-mode locks on purpose (never a model-checker
// scheduling point), so the mc harness only controls the ss::Thread interleaving;
// the assertion is that a quiesced registry always shows exact totals and a
// mid-flight snapshot never tears the registry structure.

TEST(ObsConcurrency, QuiescedCountsAreExactUnderMcSchedules) {
  FaultRegistry::Global().DisableAll();
  McOptions options;
  options.strategy = McOptions::Strategy::kPct;
  options.iterations = 200;
  McResult result = McExplore(
      []() {
        MetricRegistry registry;
        Counter& ops = registry.counter("ops");
        TraceRing ring(8);
        Thread worker = Thread::Spawn([&]() {
          for (int i = 0; i < 3; ++i) {
            ops.Increment();
            ring.Record(TraceKind::kGet, i, 0, StatusCode::kOk);
            YieldThread();
          }
        });
        // Mid-flight reads: structurally safe, monotonic, never above the cap.
        MetricsSnapshot mid = registry.Snapshot();
        MC_CHECK(mid.counter("ops") <= 3, "counter overshot mid-flight");
        MC_CHECK(ring.total_recorded() <= 3, "trace overshot mid-flight");
        worker.Join();
        MC_CHECK(registry.Snapshot().counter("ops") == 3, "quiesced counter not exact");
        MC_CHECK(ring.total_recorded() == 3, "quiesced trace total not exact");
      },
      options);
  EXPECT_TRUE(result.ok) << result.error;
}

// --- NodeServer surface -------------------------------------------------------------

class NodeObsTest : public testing::Test {
 protected:
  NodeObsTest() {
    FaultRegistry::Global().DisableAll();
    NodeServerOptions options;
    options.disk_count = 2;
    options.geometry = DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                    .page_size = 256};
    node_ = std::move(NodeServer::Create(options).value());
  }

  std::unique_ptr<NodeServer> node_;
};

TEST_F(NodeObsTest, SnapshotCoversEverySubsystem) {
  // Touch every layer: puts/gets/deletes, a flush, a migration, a crash-recovery.
  for (ShardId id = 0; id < 8; ++id) {
    ASSERT_TRUE(node_->Put(id, BytesOf("v" + std::to_string(id))).ok());
    ASSERT_TRUE(node_->Get(id).ok());
  }
  ASSERT_TRUE(node_->Delete(7).ok());
  ASSERT_TRUE(node_->FlushAllDisks().ok());
  ASSERT_TRUE(node_->MigrateShard(0, 1 - node_->DiskFor(0)).ok());
  ASSERT_TRUE(node_->CrashAndRecoverDisk(0, /*crash_seed=*/3).ok());

  MetricsSnapshot snap = node_->MetricsSnapshot();
  // One representative counter per migrated subsystem must exist and be non-zero.
  EXPECT_GT(snap.counter("rpc.put.ok"), 0u);
  EXPECT_GT(snap.counter("rpc.get.ok"), 0u);
  EXPECT_GT(snap.counter("rpc.delete.ok"), 0u);
  EXPECT_GT(snap.counter("rpc.migrations"), 0u);
  EXPECT_GT(snap.counter("rpc.crash_recoveries"), 0u);
  EXPECT_GT(snap.counter("store.puts"), 0u);
  EXPECT_GT(snap.counter("lsm.puts"), 0u);
  EXPECT_GT(snap.counter("lsm.flushes"), 0u);
  EXPECT_GT(snap.counter("chunk.puts"), 0u);
  EXPECT_GT(snap.counter("cache.hits") + snap.counter("cache.misses"), 0u);
  EXPECT_GT(snap.counter("io.enqueued"), 0u);
  EXPECT_GT(snap.counter("extent.retry.attempts"), 0u);
  // Health and service state appear as per-disk gauges.
  EXPECT_EQ(snap.gauge("rpc.disk.0.in_service"), 1);
  EXPECT_EQ(snap.gauge("rpc.disk.1.in_service"), 1);
  EXPECT_EQ(snap.gauge("rpc.disk.0.health"), 0);
}

TEST_F(NodeObsTest, RequestCountsMatchCalls) {
  MetricsSnapshot before = node_->MetricsSnapshot();
  ASSERT_TRUE(node_->Put(1, BytesOf("a")).ok());
  ASSERT_TRUE(node_->Put(2, BytesOf("b")).ok());
  ASSERT_TRUE(node_->Get(1).ok());
  EXPECT_EQ(node_->Get(999).code(), StatusCode::kNotFound);
  ASSERT_TRUE(node_->Delete(2).ok());
  MetricsSnapshot after = node_->MetricsSnapshot();
  EXPECT_EQ(CounterDelta(before, after, "rpc.put.ok"), 2u);
  EXPECT_EQ(CounterDelta(before, after, "rpc.get.ok"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "rpc.get.err"), 1u);
  EXPECT_EQ(CounterDelta(before, after, "rpc.delete.ok"), 1u);
  EXPECT_EQ(node_->trace().total_recorded(), 5u);
}

TEST_F(NodeObsTest, DumpMetricsShowsCountersAndTrace) {
  ASSERT_TRUE(node_->Put(5, BytesOf("x")).ok());
  ASSERT_TRUE(node_->Get(5).ok());
  std::string dump = node_->DumpMetrics();
  EXPECT_NE(dump.find("rpc.put.ok"), std::string::npos);
  EXPECT_NE(dump.find("lsm.puts"), std::string::npos);
  EXPECT_NE(dump.find("trace"), std::string::npos);
  EXPECT_NE(dump.find("put"), std::string::npos);
}

TEST_F(NodeObsTest, EveryTraceEventLinksToARootSpanWithRealTicks) {
  ASSERT_TRUE(node_->Put(1, BytesOf("abc")).ok());
  ASSERT_TRUE(node_->Put(2, BytesOf("def")).ok());
  ASSERT_TRUE(node_->Get(1).ok());
  ASSERT_TRUE(node_->Delete(2).ok());
  ASSERT_TRUE(node_->FlushAllDisks().ok());
  ASSERT_TRUE(node_->MigrateShard(1, 1 - node_->DiskFor(1)).ok());
  ASSERT_TRUE(node_->MarkDiskDegraded(0).ok());
  ASSERT_TRUE(node_->ResetDiskHealth(0).ok());
  ASSERT_TRUE(node_->CrashAndRecoverDisk(0, /*crash_seed=*/1).ok());
  for (const TraceEvent& event : node_->trace().Events()) {
    EXPECT_GT(event.root_span, 0u) << event.ToString();
    // Each linked root span must actually exist (or have aged out — not here, the
    // tree's capacity far exceeds this test's span count) with a matching name class.
    std::vector<SpanRecord> tree = node_->spans().Tree(event.root_span);
    ASSERT_FALSE(tree.empty()) << event.ToString();
    EXPECT_EQ(tree.front().id, event.root_span);
    EXPECT_EQ(tree.front().name.rfind("rpc.", 0), 0u) << tree.front().name;
    EXPECT_FALSE(tree.front().open) << tree.front().ToString();
  }
  // The Put's causal tree carries store/lsm/chunk children under the rpc root. (Its
  // duration stays 0 here: the virtual clock only advances on retry backoff, and no
  // faults are armed.)
  std::vector<TraceEvent> events = node_->trace().Events();
  ASSERT_FALSE(events.empty());
  std::set<std::string> child_names;
  for (const SpanRecord& record : node_->spans().Tree(events[0].root_span)) {
    child_names.insert(record.name);
  }
  EXPECT_TRUE(child_names.count("store.put"));
  EXPECT_TRUE(child_names.count("lsm.insert"));
  EXPECT_TRUE(child_names.count("chunk.write"));
}

TEST_F(NodeObsTest, DumpMetricsJsonIsMachineReadable) {
  ASSERT_TRUE(node_->Put(3, BytesOf("xyz")).ok());
  ASSERT_TRUE(node_->Get(3).ok());
  std::string json = node_->DumpMetricsJson();
  // Top-level sections.
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  // Metric snapshot content, span-name content, trace-event content.
  EXPECT_NE(json.find("\"rpc.put.ok\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rpc.put\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"Put\""), std::string::npos);
  // Per-stage span histograms flow into the same snapshot.
  EXPECT_NE(json.find("\"span.rpc.put.ticks\""), std::string::npos);
  EXPECT_NE(json.find("\"span.lsm.insert.ticks\""), std::string::npos);
}

TEST_F(NodeObsTest, TraceRingCapacityIsConfigurable) {
  NodeServerOptions options;
  options.disk_count = 1;
  options.trace_capacity = 2;
  options.geometry = DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                  .page_size = 256};
  std::unique_ptr<NodeServer> node = std::move(NodeServer::Create(options).value());
  for (ShardId id = 0; id < 5; ++id) {
    ASSERT_TRUE(node->Put(id, BytesOf("v")).ok());
  }
  EXPECT_EQ(node->trace().capacity(), 2u);
  EXPECT_EQ(node->trace().Events().size(), 2u);
  EXPECT_EQ(node->trace().total_recorded(), 5u);
}

}  // namespace
}  // namespace ss
